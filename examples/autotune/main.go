// Autotune: the paper's headline use case. For every simulated platform,
// AutoTune transforms the kernel, times both versions, and picks the
// faster one — "an auto-tuning step for OpenCL kernels" (paper abstract).
// The same matmul kernel ends up *with* local memory on the NVIDIA-style
// GPUs and *without* it on several cache-only CPUs.
package main

import (
	"fmt"
	"log"

	"grover"
	"grover/opencl"
)

const matmulSource = `
#define BS 16
__kernel void matrixMul(__global float* C, __global float* A, __global float* B,
                        int N, int K) {
    __local float As[BS][BS];
    __local float Bs[BS][BS];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    float acc = 0.0f;
    for (int t = 0; t < K / BS; t++) {
        As[ly][lx] = A[gy*K + t*BS + lx];
        Bs[ly][lx] = B[(t*BS + ly)*N + gx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; k++) {
            acc += As[ly][k] * Bs[k][lx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[gy*N + gx] = acc;
}
`

func main() {
	const n = 128
	plat := opencl.NewPlatform()

	fmt.Println("auto-tuning matrixMul (disable staging of matrix A) per platform:")
	for _, dev := range plat.Devices() {
		ctx := opencl.NewContext(dev)
		prog, err := ctx.CompileProgram("mm.cl", matmulSource, nil)
		if err != nil {
			log.Fatal(err)
		}

		a := ctx.NewBuffer(n * n * 4)
		b := ctx.NewBuffer(n * n * 4)
		c := ctx.NewBuffer(n * n * 4)
		vals := make([]float32, n*n)
		for i := range vals {
			vals[i] = float32(i%17) * 0.25
		}
		a.WriteFloat32(vals)
		b.WriteFloat32(vals)

		q, err := ctx.NewProfilingQueue()
		if err != nil {
			log.Fatal(err)
		}
		nd := opencl.NDRange{Global: [3]int{n, n, 1}, Local: [3]int{16, 16, 1}}

		res, err := grover.AutoTune(prog, "matrixMul",
			grover.Options{Candidates: []string{"As"}}, 1,
			func(k *opencl.Kernel) (*opencl.Event, error) {
				return q.EnqueueNDRange(k, nd, c, a, b, int32(n), int32(n))
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s → %s\n", dev.Name(), res)
	}
}
