// Autotune: the paper's headline use case. AutoTuneAll compiles the
// kernel once, then tunes every simulated platform concurrently: each
// device times both versions and keeps the faster one — "an auto-tuning
// step for OpenCL kernels" (paper abstract). Staging matrix A clearly
// wins on the NVIDIA-style GPUs; on the cache-only CPUs the two versions
// land within a few percent of each other (the paper's Fig. 2 MM bars
// hover around 1.0 on the CPUs too — contrast the transpose example,
// where the CPUs decisively drop local memory).
package main

import (
	"fmt"
	"log"

	"grover"
	"grover/opencl"
)

const matmulSource = `
#define BS 16
__kernel void matrixMul(__global float* C, __global float* A, __global float* B,
                        int N, int K) {
    __local float As[BS][BS];
    __local float Bs[BS][BS];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    float acc = 0.0f;
    for (int t = 0; t < K / BS; t++) {
        As[ly][lx] = A[gy*K + t*BS + lx];
        Bs[ly][lx] = B[(t*BS + ly)*N + gx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; k++) {
            acc += As[ly][k] * Bs[k][lx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[gy*N + gx] = acc;
}
`

func main() {
	const n = 128
	fmt.Println("auto-tuning matrixMul (disable staging of matrix A) on all platforms concurrently:")

	results, err := grover.AutoTuneAll(matmulSource, "matrixMul", grover.LaunchSpec{
		Options: grover.Options{Candidates: []string{"As"}},
		ND:      opencl.NDRange{Global: [3]int{n, n, 1}, Local: [3]int{16, 16, 1}},
		Runs:    1,
		Args: func(ctx *opencl.Context) ([]interface{}, error) {
			a := ctx.NewBuffer(n * n * 4)
			b := ctx.NewBuffer(n * n * 4)
			c := ctx.NewBuffer(n * n * 4)
			vals := make([]float32, n*n)
			for i := range vals {
				vals[i] = float32(i%17) * 0.25
			}
			a.WriteFloat32(vals)
			b.WriteFloat32(vals)
			return []interface{}{c, a, b, int32(n), int32(n)}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Device, r.Err)
		}
		fmt.Printf("  %-8s → %s\n", r.Device, r.Result)
	}
}
