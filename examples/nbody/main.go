// NBody: a loop-dependent staging pattern. The kernel stages a moving
// tile of body positions (the staged region depends on the tile-loop
// variable), so the Grover pass must re-read the loop variable when it
// reconstructs the global load — the hardest of the paper's benchmark
// shapes. The example transforms the kernel, checks both versions agree,
// and compares simulated times on a CPU and a GPU.
package main

import (
	"fmt"
	"log"
	"math"

	"grover"
	"grover/opencl"
)

const nbodySource = `
#define P 64
__kernel void nbody(__global float4* pos, __global float4* accOut,
                    int numBodies, float eps) {
    __local float4 sharedPos[P];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    float4 myPos = pos[gx];
    float ax = 0.0f;
    float ay = 0.0f;
    float az = 0.0f;
    for (int t = 0; t < numBodies / P; t++) {
        sharedPos[lx] = pos[t*P + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int j = 0; j < P; j++) {
            float4 sp = sharedPos[j];
            float rx = sp.x - myPos.x;
            float ry = sp.y - myPos.y;
            float rz = sp.z - myPos.z;
            float d2 = rx*rx + ry*ry + rz*rz + eps;
            float inv = rsqrt(d2);
            float s = sp.w * (inv * inv * inv);
            ax += rx * s;
            ay += ry * s;
            az += rz * s;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    accOut[gx] = (float4)(ax, ay, az, myPos.w);
}
`

func main() {
	const n = 512
	for _, devName := range []string{"SNB", "Fermi"} {
		plat := opencl.NewPlatform()
		dev, err := plat.DeviceByName(devName)
		if err != nil {
			log.Fatal(err)
		}
		ctx := opencl.NewContext(dev)
		prog, err := ctx.CompileProgram("nbody.cl", nbodySource, nil)
		if err != nil {
			log.Fatal(err)
		}
		noLM, rep, err := grover.Disable(prog, "nbody", grover.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if devName == "SNB" {
			// Print the analysis once: note the loop variable t in nGL.
			fmt.Print(rep)
		}

		pos := ctx.NewBuffer(n * 16)
		out := ctx.NewBuffer(n * 16)
		bodies := make([]float32, n*4)
		for i := range bodies {
			bodies[i] = float32(math.Sin(float64(i))) * 10
		}
		pos.WriteFloat32(bodies)

		q, err := ctx.NewProfilingQueue()
		if err != nil {
			log.Fatal(err)
		}
		nd := opencl.NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{64, 1, 1}}

		var results [2][]float32
		var times [2]float64
		for i, p := range []*opencl.Program{prog, noLM} {
			k, err := p.Kernel("nbody")
			if err != nil {
				log.Fatal(err)
			}
			evt, err := q.EnqueueNDRange(k, nd, pos, out, int32(n), float32(0.01))
			if err != nil {
				log.Fatal(err)
			}
			times[i] = evt.Duration()
			results[i] = out.ReadFloat32(n * 4)
		}
		for i := range results[0] {
			if results[0][i] != results[1][i] {
				log.Fatalf("%s: versions disagree at %d: %g vs %g",
					devName, i, results[0][i], results[1][i])
			}
		}
		fmt.Printf("%-6s with LM %.4f ms, without LM %.4f ms (np=%.2f) — results identical\n",
			devName, times[0], times[1], times[0]/times[1])
	}
}
