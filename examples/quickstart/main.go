// Quickstart: compile a tiled-transpose kernel, let Grover disable its
// local-memory usage, run both versions on a simulated Sandy Bridge CPU,
// and print the normalized performance — the paper's core workflow in
// ~60 lines.
package main

import (
	"fmt"
	"log"

	"grover"
	"grover/opencl"
)

const kernelSource = `
#define TILE 16
__kernel void transpose(__global float* odata, __global float* idata,
                        int width, int height) {
    __local float tile[TILE][TILE+1];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    tile[ly][lx] = idata[(wy*TILE + ly)*width + wx*TILE + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    odata[(wx*TILE + ly)*height + wy*TILE + lx] = tile[lx][ly];
}
`

func main() {
	const n = 128

	// Pick a simulated device and build the kernel.
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		log.Fatal(err)
	}
	ctx := opencl.NewContext(dev)
	prog, err := ctx.CompileProgram("transpose.cl", kernelSource, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Run the Grover pass: it analyzes the staging pattern, solves the
	// local↔global index correspondence, and rewrites the kernel.
	noLM, report, err := grover.Disable(prog, "transpose", grover.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	// Prepare data.
	in := ctx.NewBuffer(n * n * 4)
	out := ctx.NewBuffer(n * n * 4)
	data := make([]float32, n*n)
	for i := range data {
		data[i] = float32(i)
	}
	in.WriteFloat32(data)

	nd := opencl.NDRange{Global: [3]int{n, n, 1}, Local: [3]int{16, 16, 1}}
	q, err := ctx.NewProfilingQueue()
	if err != nil {
		log.Fatal(err)
	}

	// Time both versions on the simulated device.
	for _, pv := range []struct {
		label string
		prog  *opencl.Program
	}{{"with local memory   ", prog}, {"without local memory", noLM}} {
		k, err := pv.prog.Kernel("transpose")
		if err != nil {
			log.Fatal(err)
		}
		evt, err := q.EnqueueNDRange(k, nd, out, in, int32(n), int32(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.4f ms\n", pv.label, evt.Duration())

		// Verify the transpose is still correct.
		res := out.ReadFloat32(n * n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if res[x*n+y] != data[y*n+x] {
					log.Fatalf("wrong result at (%d,%d)", x, y)
				}
			}
		}
	}
}
