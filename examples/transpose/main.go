// Transpose: the paper's Figure 2 motivation in miniature. The same
// tiled-transpose kernel runs with and without local memory on every
// simulated platform; GPUs lose when staging is removed (uncoalesced
// column reads), cache-only CPUs win (staging and barriers were pure
// overhead). Run it to see why "local memory for GPUs, no local memory
// for CPUs" is a real — if imperfect — rule of thumb.
package main

import (
	"fmt"
	"log"

	"grover"
	"grover/opencl"
)

const transposeSource = `
#define TILE 16
__kernel void transpose(__global float* odata, __global float* idata,
                        int width, int height) {
    __local float tile[TILE][TILE+1];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    tile[ly][lx] = idata[(wy*TILE + ly)*width + wx*TILE + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    odata[(wx*TILE + ly)*height + wy*TILE + lx] = tile[lx][ly];
}
`

func main() {
	const n = 128
	plat := opencl.NewPlatform()

	fmt.Printf("%-8s  %-12s %-12s %-6s verdict\n", "device", "with LM", "without LM", "np")
	for _, dev := range plat.Devices() {
		ctx := opencl.NewContext(dev)
		prog, err := ctx.CompileProgram("mt.cl", transposeSource, nil)
		if err != nil {
			log.Fatal(err)
		}
		noLM, _, err := grover.Disable(prog, "transpose", grover.Options{})
		if err != nil {
			log.Fatal(err)
		}

		in := ctx.NewBuffer(n * n * 4)
		out := ctx.NewBuffer(n * n * 4)
		vals := make([]float32, n*n)
		for i := range vals {
			vals[i] = float32(i)
		}
		in.WriteFloat32(vals)

		q, err := ctx.NewProfilingQueue()
		if err != nil {
			log.Fatal(err)
		}
		nd := opencl.NDRange{Global: [3]int{n, n, 1}, Local: [3]int{16, 16, 1}}
		time := func(p *opencl.Program) float64 {
			k, err := p.Kernel("transpose")
			if err != nil {
				log.Fatal(err)
			}
			evt, err := q.EnqueueNDRange(k, nd, out, in, int32(n), int32(n))
			if err != nil {
				log.Fatal(err)
			}
			return evt.Duration()
		}
		withLM := time(prog)
		withoutLM := time(noLM)
		np := withLM / withoutLM
		verdict := "similar"
		switch {
		case np > 1.05:
			verdict = "disable local memory"
		case np < 0.95:
			verdict = "keep local memory"
		}
		fmt.Printf("%-8s  %9.4f ms %9.4f ms %6.2f %s\n",
			dev.Name(), withLM, withoutLM, np, verdict)
	}
}
