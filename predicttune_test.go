package grover_test

import (
	"context"
	"testing"

	"grover"
	"grover/internal/predict"
	"grover/internal/telemetry/aiwc"
	"grover/opencl"
)

// TestPredictMode walks predict mode through its whole lifecycle on one
// program: empty store → measured fallback (recorded), repeat workload →
// exact feature hit with zero timed runs, repeat request key → zero-run
// alias answer without even a characterization.
func TestPredictMode(t *testing.T) {
	ctx, prog := setup(t, "SNB")
	const n = 64
	in := ctx.NewBuffer(n * n * 4)
	out := ctx.NewBuffer(n * n * 4)
	q, err := ctx.NewProfilingQueue()
	if err != nil {
		t.Fatal(err)
	}
	nd := opencl.NDRange{Global: [3]int{n, n, 1}, Local: [3]int{16, 16, 1}}
	args := []interface{}{out, in, int32(n), int32(n)}

	launches := 0
	launch := func(k *opencl.Kernel) (*opencl.Event, error) {
		launches++
		return q.EnqueueNDRange(k, nd, args...)
	}

	store, err := predict.OpenStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	pred := predict.NewPredictor(store, predict.Config{})
	plans := grover.DefaultPlanSpace(nd.Local)
	popts := grover.PlanSearchOptions{
		WorkGroup:    nd.Local,
		Global:       nd.Global,
		ArgInts:      grover.IntArgs(args),
		Predict:      true,
		Predictor:    pred,
		Characterize: grover.CharacterizeLaunch(prog, "transpose", nd, args),
		Device:       "SNB",
		ExactKey:     "req-mt-snb",
		Label:        "MT-test",
	}

	// 1. Empty store: the prediction cannot clear the threshold, so the
	// search falls back to measurement and records the outcome.
	res, err := grover.AutoTunePlansOpts(context.Background(), prog, "transpose",
		plans, 1, launch, popts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatalf("empty store did not fall back: %+v", res.Prediction)
	}
	if res.Prediction == nil || res.Prediction.Confidence >= grover.DefaultMinConfidence {
		t.Errorf("fallback prediction = %+v, want confidence below threshold", res.Prediction)
	}
	if res.OriginalMS <= 0 || launches == 0 {
		t.Errorf("fallback did not measure: originalMS=%v launches=%d", res.OriginalMS, launches)
	}
	if store.Len() != 1 {
		t.Fatalf("measured fallback recorded %d records, want 1", store.Len())
	}
	measuredPlan := res.Plan
	recs := store.Neighborhood("SNB")
	if recs[0].Label != "MT-test" || recs[0].Source != "measured" {
		t.Errorf("recorded %+v", recs[0])
	}

	// 2. Same workload again (no ExactKey): the characterization hashes to
	// the stored record — exact hit, zero timed runs.
	launches = 0
	popts2 := popts
	popts2.ExactKey = ""
	res2, err := grover.AutoTunePlansOpts(context.Background(), prog, "transpose",
		plans, 1, launch, popts2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fallback || res2.Prediction == nil || !res2.Prediction.Exact {
		t.Fatalf("repeat workload not answered exactly: fallback=%v prediction=%+v",
			res2.Fallback, res2.Prediction)
	}
	if launches != 0 {
		t.Errorf("exact hit executed %d timed runs, want 0", launches)
	}
	if res2.Plan != measuredPlan {
		t.Errorf("predicted plan %q, measured winner was %q", res2.Plan, measuredPlan)
	}
	if res2.OriginalMS != 0 || res2.TransformedMS != 0 {
		t.Errorf("prediction carries timings: %v %v", res2.OriginalMS, res2.TransformedMS)
	}
	if res2.Kernel == nil {
		t.Error("prediction returned no runnable kernel")
	}

	// 3. Same request key: answered from the alias with zero runs and zero
	// characterizations. (Step 2 ran with no ExactKey, so the alias written
	// by step 1's fallback is still the resolving entry.)
	launches = 0
	characterized := 0
	inner := popts.Characterize
	res3opts := popts
	res3opts.Characterize = func() (*aiwc.Features, error) {
		characterized++
		return inner()
	}
	res3, err := grover.AutoTunePlansOpts(context.Background(), prog, "transpose",
		plans, 1, launch, res3opts)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Fallback {
		t.Fatal("alias-keyed repeat request fell back to measurement")
	}
	if res3.Prediction == nil || !res3.Prediction.Exact || res3.Prediction.Confidence != 1 {
		t.Errorf("alias prediction = %+v", res3.Prediction)
	}
	if launches != 0 {
		t.Errorf("alias hit executed %d runs, want 0", launches)
	}
	if characterized != 0 {
		t.Errorf("alias hit characterized %d times, want 0", characterized)
	}
	if res3.Plan != measuredPlan {
		t.Errorf("alias answer plan %q, want %q", res3.Plan, measuredPlan)
	}
}
