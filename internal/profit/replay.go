package profit

import (
	"fmt"

	"grover/internal/analysis/memaccess"
	"grover/internal/clc"
	"grover/internal/device"
	"grover/internal/ir"
	"grover/internal/memsim"
)

// fallbackArena places synthetic streaming addresses for accesses whose
// index the evaluator cannot resolve, far from every real buffer.
const fallbackArena = uint64(1) << 44

// replay drives one work-group's schedule through the device cost
// mechanics: serially per work-item on CPU profiles, warp-by-warp in
// lockstep on GPU profiles (mirroring device.workerSim).
type replay struct {
	sum  *memaccess.Summary
	prof *device.Profile
	opts Options
	hier *memsim.Hierarchy

	issue, mem, local, barrier, priv float64
	transactions                     float64
	// coalescing / bank statistics (GPU).
	warpGlobal, warpGlobalLanes float64
	warpLocal, warpLocalDeg     float64
	// fallbackSites streams synthetic addresses per unresolved access.
	fallbackSites map[*memaccess.Access]*fallbackSite

	// lane environments of the group (CPU: one at a time; GPU: per warp).
	envs []*memaccess.Env
}

func newReplay(sum *memaccess.Summary, prof *device.Profile, opts Options) (*replay, error) {
	h, err := memsim.NewHierarchy(prof.Caches, prof.DRAMLatency)
	if err != nil {
		return nil, fmt.Errorf("profit: %w", err)
	}
	return &replay{sum: sum, prof: prof, opts: opts, hier: h,
		fallbackSites: map[*memaccess.Access]*fallbackSite{}}, nil
}

// fallbackSite tracks one unresolved access's synthetic stream.
type fallbackSite struct{ id, seq uint64 }

// numGroups sizes the group-count sample from the launch shape, 8 per
// dimension when unknown.
func (r *replay) numGroups() [3]int64 {
	var ng [3]int64
	for d := 0; d < 3; d++ {
		ng[d] = 8
		if r.opts.Global[d] > 0 && r.sum.WG[d] > 0 {
			ng[d] = int64((r.opts.Global[d] + r.sum.WG[d] - 1) / r.sum.WG[d])
		}
		if ng[d] < 1 {
			ng[d] = 1
		}
	}
	return ng
}

func (r *replay) laneEnv(lid [3]int64) *memaccess.Env {
	return &memaccess.Env{
		WG:        r.sum.WG,
		NumGroups: r.numGroups(),
		Lid:       lid,
		Group:     [3]int64{0, 0, 0},
		Vars:      map[*ir.Instr]int64{},
		ArgInts:   r.opts.ArgInts,
	}
}

func (r *replay) run() {
	wg := r.sum.WG
	n := wg[0] * wg[1] * wg[2]
	if r.prof.Kind == device.CPUKind {
		for i := 0; i < n; i++ {
			r.envs = []*memaccess.Env{r.laneEnv(linearLid(i, wg))}
			r.replayRegion(r.sum.Root, 1)
		}
		return
	}
	ww := r.prof.WarpWidth
	for start := 0; start < n; start += ww {
		end := start + ww
		if end > n {
			end = n
		}
		r.envs = r.envs[:0]
		for i := start; i < end; i++ {
			r.envs = append(r.envs, r.laneEnv(linearLid(i, wg)))
		}
		r.replayRegion(r.sum.Root, 1)
	}
}

// linearLid decomposes a linear work-item index into local ids with
// dimension 0 fastest (the warp-formation order of the VM).
func linearLid(i int, wg [3]int) [3]int64 {
	var lid [3]int64
	lid[0] = int64(i % wg[0])
	i /= wg[0]
	lid[1] = int64(i % wg[1])
	lid[2] = int64(i / wg[1])
	return lid
}

// replayRegion walks one region's events, iterating loops over a capped
// sample with linear extrapolation of the remainder.
func (r *replay) replayRegion(reg *memaccess.Region, scale float64) {
	if reg.Loop == nil {
		r.replayEvents(reg, scale)
		return
	}
	l := reg.Loop
	trip := l.Trip
	if trip <= 0 {
		return
	}
	sample := trip
	if sample > r.opts.SampleIters {
		sample = r.opts.SampleIters
	}
	extra := float64(trip) / float64(sample)
	step := l.Step
	if !l.StepOK {
		step = 1
	}
	for t := int64(0); t < sample; t++ {
		if l.IndVar != nil {
			v := l.Init + t*step
			for _, env := range r.envs {
				env.Vars[l.IndVar] = v
			}
		}
		r.replayEvents(reg, scale*extra)
	}
	if l.IndVar != nil {
		for _, env := range r.envs {
			delete(env.Vars, l.IndVar)
		}
	}
}

func (r *replay) replayEvents(reg *memaccess.Region, scale float64) {
	for i := range reg.Events {
		ev := &reg.Events[i]
		w := scale * ev.Weight
		if w == 0 {
			continue
		}
		switch ev.Kind {
		case memaccess.EvWork:
			// CPU: per work-item issue (one env per pass). GPU: lockstep
			// warp issue — the warp pays the instruction count once, and
			// uniform private positions pay PrivCost once per warp.
			r.issue += w * float64(ev.Instrs) * r.prof.IssueCost
			r.priv += w * float64(ev.PrivAccesses) * float64(r.prof.PrivCost)
		case memaccess.EvBarrier:
			// Per work-item on CPU (fiber switch), per warp on GPU.
			r.barrier += w * float64(r.prof.BarrierCost)
		case memaccess.EvLoop:
			// The child event's weight is the header's probability; the
			// region's own events carry their block weights relative to
			// one traversal, so descend with the plain scale.
			r.replayRegion(ev.Child, scale)
		case memaccess.EvAccess:
			r.replayAccess(ev.Access, w)
		}
	}
}

func (r *replay) replayAccess(a *memaccess.Access, w float64) {
	if r.prof.Kind == device.CPUKind {
		addr, ok := r.sum.Addr(a, r.envs[0])
		if !ok {
			addr = r.fallback(a, 1)[0]
		}
		if a.Space == clc.ASLocal {
			addr += memaccess.LocalBase
			r.local += w * float64(r.hier.Access(addr, a.Bytes, a.Store))
			return
		}
		r.mem += w * float64(r.hier.Access(addr, a.Bytes, a.Store))
		return
	}
	// GPU: gather the warp's lane addresses.
	addrs := make([]uint64, 0, len(r.envs))
	sizes := make([]int, 0, len(r.envs))
	resolved := true
	for _, env := range r.envs {
		addr, ok := r.sum.Addr(a, env)
		if !ok {
			resolved = false
			break
		}
		addrs = append(addrs, addr)
		sizes = append(sizes, a.Bytes)
	}
	if !resolved {
		addrs = r.fallback(a, len(r.envs))
		sizes = sizes[:0]
		for range addrs {
			sizes = append(sizes, a.Bytes)
		}
	}
	if a.Space == clc.ASLocal {
		deg := memsim.BankConflictDegree(addrsWithBase(addrs, memaccess.LocalBase), r.prof.SPMBanks, r.prof.BankWidth)
		r.local += w * float64(deg) * float64(r.prof.SPMLat)
		r.warpLocal += w
		r.warpLocalDeg += w * float64(deg)
		return
	}
	// Coalesce into segment transactions; each pays issue plus the
	// hierarchy cost of one segment (device.workerSim mechanics).
	seg := uint64(r.prof.Segment)
	seen := map[uint64]struct{}{}
	for i, addr := range addrs {
		first := addr / seg
		last := (addr + uint64(sizes[i]) - 1) / seg
		for s := first; s <= last; s++ {
			if _, dup := seen[s]; dup {
				continue
			}
			seen[s] = struct{}{}
			r.mem += w * float64(r.prof.TransCost+r.hier.Access(s*seg, r.prof.Segment, a.Store))
		}
	}
	r.transactions += w * float64(len(seen))
	r.warpGlobal += w
	r.warpGlobalLanes += w * float64(len(seen))
}

// fallback synthesizes streaming addresses for an access the evaluator
// cannot resolve: consecutive chunks per replayed occurrence in a
// per-site stream, lanes packed contiguously (a neutral, plan-invariant
// assumption).
func (r *replay) fallback(a *memaccess.Access, lanes int) []uint64 {
	st := r.fallbackSites[a]
	if st == nil {
		st = &fallbackSite{id: uint64(len(r.fallbackSites))}
		r.fallbackSites[a] = st
	}
	chunk := uint64(r.prof.Segment)
	if chunk == 0 {
		chunk = 64
	}
	base := fallbackArena + st.id<<30 + st.seq*chunk
	st.seq++
	out := make([]uint64, lanes)
	for i := range out {
		out[i] = base + uint64(i*a.Bytes)
	}
	return out
}

func addrsWithBase(addrs []uint64, base uint64) []uint64 {
	out := make([]uint64, len(addrs))
	for i, a := range addrs {
		out[i] = base + a
	}
	return out
}

func (r *replay) score() *Score {
	s := &Score{
		Device:       r.prof.Name,
		Kernel:       r.sum.Fn.Name,
		Issue:        r.issue,
		Mem:          r.mem,
		Local:        r.local,
		Barrier:      r.barrier,
		Priv:         r.priv,
		Transactions: r.transactions,
	}
	s.Cycles = s.Issue + s.Mem + s.Local + s.Barrier + s.Priv
	if r.warpGlobal > 0 {
		s.CoalesceEff = r.warpGlobal / r.warpGlobalLanes
	}
	if r.warpLocal > 0 {
		s.BankConflict = r.warpLocalDeg / r.warpLocal
	}
	return s
}
