// Package profit statically predicts rewrite-plan profitability: it
// replays one work-group's memaccess summary — the ordered schedule of
// affine/evaluable accesses, loops with trip estimates, and barriers —
// through the same per-device cost mechanics the trace-driven simulator
// uses (coalescing into segment transactions, scratch-pad bank
// conflicts, the set-associative cache hierarchy, per-warp or per-item
// issue and barrier costs), without executing the kernel. The result is
// a cycles-per-work-group score whose ordering across rewrite plans
// approximates the ordering of measured timings, so the autotuner can
// rank a plan space and execute only the most promising entries (the
// prune mode of grover.AutoTunePlans and groverd's "prune" field).
package profit

import (
	"fmt"
	"sort"

	"grover/internal/analysis/memaccess"
	"grover/internal/device"
	"grover/internal/ir"
	"grover/internal/rewrite"
)

// Options configure a scoring run.
type Options struct {
	// WorkGroup gives the launch's work-group extents (zero entries
	// default to 64×1×1).
	WorkGroup [3]int
	// Global gives the launch's global extents when known; they size the
	// group-count sample for get_num_groups/get_global_size.
	Global [3]int
	// ArgInts supplies known scalar argument values by parameter index.
	ArgInts map[int]int64
	// SampleIters caps the iterations replayed per loop; the remainder
	// is linearly extrapolated. 0 means 128.
	SampleIters int64
}

// Score is the static cost estimate for one kernel on one device:
// cycles for one work-group on one core / compute unit, with a
// component breakdown.
type Score struct {
	Device string  `json:"device"`
	Kernel string  `json:"kernel"`
	Cycles float64 `json:"cycles"`
	// Component cycles: instruction issue, global-memory hierarchy,
	// scratch-pad, barriers, private traffic.
	Issue   float64 `json:"issue"`
	Mem     float64 `json:"mem"`
	Local   float64 `json:"local"`
	Barrier float64 `json:"barrier"`
	Priv    float64 `json:"priv"`
	// Transactions counts coalesced global segment transactions (GPU).
	Transactions float64 `json:"transactions,omitempty"`
	// CoalesceEff is the mean fraction of a warp's global accesses
	// served per transaction (1 = perfectly coalesced), GPU only.
	CoalesceEff float64 `json:"coalesce_eff,omitempty"`
	// BankConflict is the mean scratch-pad bank-conflict degree of warp
	// local accesses (1 = conflict-free), GPU only.
	BankConflict float64 `json:"bank_conflict,omitempty"`
}

// ScoreKernel statically scores one kernel on one device profile.
func ScoreKernel(fn *ir.Function, prof *device.Profile, opts Options) (*Score, error) {
	if opts.SampleIters <= 0 {
		opts.SampleIters = 128
	}
	sum := memaccess.Summarize(fn, memaccess.Options{
		WorkGroup: opts.WorkGroup,
		ArgInts:   opts.ArgInts,
	})
	r, err := newReplay(sum, prof, opts)
	if err != nil {
		return nil, err
	}
	r.run()
	return r.score(), nil
}

// PlanScore is one plan's static verdict.
type PlanScore struct {
	Plan string `json:"plan"`
	// Applied is false when the plan was a no-op on this kernel.
	Applied bool   `json:"applied"`
	Err     string `json:"error,omitempty"`
	Score   *Score `json:"score,omitempty"`
}

// ScorePlan applies the plan to a clone of the module and scores the
// rewritten kernel. Plans that fail to parse or apply report the error
// instead of a score.
func ScorePlan(mod *ir.Module, kernel, plan string, prof *device.Profile, opts Options) *PlanScore {
	ps := &PlanScore{Plan: plan}
	p, err := rewrite.ParsePlan(plan)
	if err != nil {
		ps.Err = err.Error()
		return ps
	}
	out, rep, err := rewrite.Apply(mod, kernel, p)
	if err != nil {
		ps.Err = err.Error()
		return ps
	}
	ps.Applied = plan == "base" || plan == "" || rep.Changed()
	sc, err := ScoreKernel(out.Kernel(kernel), prof, opts)
	if err != nil {
		ps.Err = err.Error()
		return ps
	}
	sc.Kernel = kernel
	ps.Score = sc
	return ps
}

// RankPlans scores every plan and returns the list sorted best (fewest
// cycles) first; plans that failed to score sort last in input order.
func RankPlans(mod *ir.Module, kernel string, plans []string, prof *device.Profile, opts Options) ([]*PlanScore, error) {
	if mod.Kernel(kernel) == nil {
		return nil, fmt.Errorf("profit: no kernel %q in module", kernel)
	}
	out := make([]*PlanScore, 0, len(plans))
	for _, plan := range plans {
		out = append(out, ScorePlan(mod, kernel, plan, prof, opts))
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].Score, out[j].Score
		if (si == nil) != (sj == nil) {
			return si != nil
		}
		if si == nil {
			return false
		}
		return si.Cycles < sj.Cycles
	})
	return out, nil
}
