// Tests live in an external package so fixtures can be compiled through
// the opencl facade.
package profit_test

import (
	"testing"

	"grover/internal/device"
	"grover/internal/ir"
	"grover/internal/profit"
	"grover/opencl"
)

func compile(t *testing.T, source string) *ir.Module {
	t.Helper()
	m, err := opencl.CompileModule("t.cl", source, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func prof(t *testing.T, name string) *device.Profile {
	t.Helper()
	p := device.ByName(name)
	if p == nil {
		t.Fatalf("no device %q", name)
	}
	return p
}

const copySrc = `__kernel void unit(__global float* out, __global float* in) {
    int gid = get_global_id(0);
    out[gid] = in[gid];
}
__kernel void strided(__global float* out, __global float* in) {
    int gid = get_global_id(0);
    out[gid*33] = in[gid*33];
}
`

func TestCoalescingSeparatesGPUScores(t *testing.T) {
	m := compile(t, copySrc)
	fermi := prof(t, "Fermi")
	opts := profit.Options{WorkGroup: [3]int{64, 1, 1}}
	unit, err := profit.ScoreKernel(m.Kernel("unit"), fermi, opts)
	if err != nil {
		t.Fatalf("unit: %v", err)
	}
	strided, err := profit.ScoreKernel(m.Kernel("strided"), fermi, opts)
	if err != nil {
		t.Fatalf("strided: %v", err)
	}
	if unit.Cycles <= 0 || strided.Cycles <= 0 {
		t.Fatalf("non-positive cycles: unit=%v strided=%v", unit.Cycles, strided.Cycles)
	}
	if strided.Cycles <= unit.Cycles {
		t.Errorf("strided cycles %.0f <= unit cycles %.0f; coalescing not modeled",
			strided.Cycles, unit.Cycles)
	}
	if strided.Transactions <= unit.Transactions {
		t.Errorf("strided transactions %.0f <= unit %.0f", strided.Transactions, unit.Transactions)
	}
	if unit.CoalesceEff <= strided.CoalesceEff {
		t.Errorf("coalesce eff: unit %.3f <= strided %.3f", unit.CoalesceEff, strided.CoalesceEff)
	}
}

const bankSrc = `__kernel void clean(__global float* out) {
    __local float buf[2048];
    int lx = get_local_id(0);
    buf[lx] = (float)lx;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = buf[lx];
}
__kernel void conflicted(__global float* out) {
    __local float buf[2048];
    int lx = get_local_id(0);
    buf[lx*32] = (float)lx;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = buf[lx*32];
}
`

func TestBankConflictsSeparateGPUScores(t *testing.T) {
	m := compile(t, bankSrc)
	fermi := prof(t, "Fermi")
	opts := profit.Options{WorkGroup: [3]int{64, 1, 1}}
	clean, err := profit.ScoreKernel(m.Kernel("clean"), fermi, opts)
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	conf, err := profit.ScoreKernel(m.Kernel("conflicted"), fermi, opts)
	if err != nil {
		t.Fatalf("conflicted: %v", err)
	}
	if conf.BankConflict <= clean.BankConflict {
		t.Errorf("bank conflict degree: conflicted %.2f <= clean %.2f",
			conf.BankConflict, clean.BankConflict)
	}
	if conf.Local <= clean.Local {
		t.Errorf("local cycles: conflicted %.0f <= clean %.0f", conf.Local, clean.Local)
	}
}

const winsumSrc = `__kernel void winsum(__global float* out, __global float* a,
                     __global float* b, int n) {
    int gid = get_global_id(0);
    float acc = 0.0f;
    for (int i = 0; i < n; i++) {
        acc += a[gid] * b[i];
    }
    out[gid] = acc;
}
`

func TestScoreKernelCPU(t *testing.T) {
	m := compile(t, winsumSrc)
	snb := prof(t, "SNB")
	sc, err := profit.ScoreKernel(m.Kernel("winsum"), snb, profit.Options{
		WorkGroup: [3]int{64, 1, 1},
		ArgInts:   map[int]int64{3: 96},
	})
	if err != nil {
		t.Fatalf("score: %v", err)
	}
	if sc.Cycles <= 0 || sc.Mem <= 0 || sc.Issue <= 0 {
		t.Errorf("degenerate CPU score: %+v", sc)
	}
	if sc.Transactions != 0 {
		t.Errorf("CPU score reports GPU transactions: %+v", sc)
	}
}

func TestRankPlansOrdersByCycles(t *testing.T) {
	m := compile(t, winsumSrc)
	fermi := prof(t, "Fermi")
	plans := []string{"base", "stage-local(ls=64)", "hoist-addr"}
	ranked, err := profit.RankPlans(m, "winsum", plans, fermi, profit.Options{
		WorkGroup: [3]int{64, 1, 1},
		ArgInts:   map[int]int64{3: 96},
	})
	if err != nil {
		t.Fatalf("rank: %v", err)
	}
	if len(ranked) != len(plans) {
		t.Fatalf("ranked %d plans, want %d", len(ranked), len(plans))
	}
	for i, ps := range ranked {
		if ps.Err != "" {
			t.Fatalf("plan %q error: %s", ps.Plan, ps.Err)
		}
		if ps.Score == nil {
			t.Fatalf("plan %q missing score", ps.Plan)
		}
		if i > 0 && ranked[i-1].Score.Cycles > ps.Score.Cycles {
			t.Errorf("ranking not ascending at %d: %.0f > %.0f",
				i, ranked[i-1].Score.Cycles, ps.Score.Cycles)
		}
	}
}

func TestRankPlansUnknownKernel(t *testing.T) {
	m := compile(t, winsumSrc)
	if _, err := profit.RankPlans(m, "nope", []string{"base"}, prof(t, "Fermi"), profit.Options{}); err == nil {
		t.Fatalf("expected error for unknown kernel")
	}
}

func TestScorePlanBadPlan(t *testing.T) {
	m := compile(t, winsumSrc)
	ps := profit.ScorePlan(m, "winsum", "no-such-rule(", prof(t, "Fermi"), profit.Options{})
	if ps.Err == "" {
		t.Fatalf("expected parse error")
	}
}
