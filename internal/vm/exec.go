package vm

import (
	"fmt"
	"time"

	"grover/internal/clc"
	"grover/internal/ir"
)

// wiCtx is one work-item's resumable execution state.
type wiCtx struct {
	wi   int // linear id within the group
	fn   *ir.Function
	blk  *ir.Block
	idx  int
	regs []rv
	prms []rv
	mem  memView

	gid, lid, grp [3]int64

	frameBase int
	sp        int

	done    bool
	pending int64 // retired instructions not yet flushed to the tracer
	callRet rv    // return value stash for nested function calls

	// depth is the current call-nesting depth; frames pools one register
	// file per depth, reused across calls and across work-groups (the
	// contexts themselves are reused by groupExec) to avoid per-call
	// allocation. Calls are synchronous, so one frame per depth suffices.
	depth  int
	frames []*callFrame
}

// callFrame is a pooled register file and argument buffer for one call
// depth.
type callFrame struct {
	regs []rv
	args []rv
}

// frame returns the pooled frame for the work-item's current call depth.
func (c *wiCtx) frame() *callFrame {
	for len(c.frames) <= c.depth {
		c.frames = append(c.frames, &callFrame{})
	}
	return c.frames[c.depth]
}

// storeRet copies a call's return value into a caller register. Vector
// lanes are copied out of the pooled callee register file so the value
// stays valid after the frame is reused by a later call.
func storeRet(dst *rv, ret rv) {
	dst.i, dst.f = ret.i, ret.f
	if ret.vf != nil {
		copy(ensureVF(dst, len(ret.vf)), ret.vf)
	}
	if ret.vi != nil {
		copy(ensureVI(dst, len(ret.vi)), ret.vi)
	}
}

// groupExec runs the work-groups assigned to one worker.
type groupExec struct {
	p          *Program
	fn         *ir.Function
	cfg        Config
	gmem       *GlobalMem
	params     []rv
	localTotal int
	tracer     Tracer
	prof       *Profiler

	// Per-round profiler accumulators; harvested and reset by runGroup
	// at every barrier round when prof is set.
	profRetired int64
	profLoads   int64
	profStores  int64

	local []byte
	ctxs  []wiCtx
	priv  [][]byte

	// Scratch buffers for evalMath argument marshaling (never live across
	// a nested exec, so sharing them per worker is safe).
	mathArgs []rv
	mathF    []float64
	mathI    []int64
}

func (ge *groupExec) runGroup(group [3]int, linear int) error {
	lsz := ge.cfg.LocalSize
	n := lsz[0] * lsz[1] * lsz[2]

	// Grover-rewritten kernels have no __local memory at all; skip the
	// arena sizing and per-group clear entirely in that case.
	if ge.localTotal == 0 {
		ge.local = nil
	} else if cap(ge.local) < ge.localTotal {
		ge.local = make([]byte, ge.localTotal)
	} else {
		ge.local = ge.local[:ge.localTotal]
		clear(ge.local)
	}
	if len(ge.ctxs) < n {
		ge.ctxs = make([]wiCtx, n)
		ge.priv = make([][]byte, n)
	}
	nRegs := ge.p.regCount[ge.fn]
	stack := ge.p.stackBytes
	for wi := 0; wi < n; wi++ {
		c := &ge.ctxs[wi]
		if c.regs == nil || len(c.regs) < nRegs {
			c.regs = make([]rv, nRegs)
		}
		if ge.priv[wi] == nil || len(ge.priv[wi]) < stack {
			ge.priv[wi] = make([]byte, stack)
		}
		lz := wi / (lsz[0] * lsz[1])
		rem := wi % (lsz[0] * lsz[1])
		ly := rem / lsz[0]
		lx := rem % lsz[0]
		c.wi = wi
		c.fn = ge.fn
		c.blk = ge.fn.Entry()
		c.idx = 0
		c.prms = ge.params
		c.lid = [3]int64{int64(lx), int64(ly), int64(lz)}
		c.grp = [3]int64{int64(group[0]), int64(group[1]), int64(group[2])}
		c.gid = [3]int64{
			int64(group[0]*lsz[0] + lx),
			int64(group[1]*lsz[1] + ly),
			int64(group[2]*lsz[2] + lz),
		}
		c.frameBase = 0
		c.sp = ge.p.frames[ge.fn].size
		c.done = false
		c.pending = 0
		c.depth = 0
		c.mem = memView{global: ge.gmem.Data, local: ge.local, private: ge.priv[wi]}
	}

	if ge.tracer != nil {
		ge.tracer.GroupBegin(group, linear)
	}
	// Rounds: run every live work-item to its next barrier (or to
	// completion); repeat until all are done.
	round := 0
	var roundStart time.Time
	for {
		if ge.prof != nil {
			roundStart = time.Now()
			ge.profRetired, ge.profLoads, ge.profStores = 0, 0, 0
		}
		var barrierAt *ir.Instr
		liveBefore := 0
		atBarrier := 0
		doneNow := 0
		for wi := 0; wi < n; wi++ {
			c := &ge.ctxs[wi]
			if c.done {
				continue
			}
			liveBefore++
			hitBarrier, bInstr, err := ge.exec(c, true)
			if c.pending > 0 && (ge.tracer != nil || ge.prof != nil) {
				if ge.tracer != nil {
					ge.tracer.Instrs(c.wi, c.pending)
				}
				ge.profRetired += c.pending
				c.pending = 0
			}
			if err != nil {
				return fmt.Errorf("work-item %d: %w", wi, err)
			}
			if hitBarrier {
				atBarrier++
				if barrierAt == nil {
					barrierAt = bInstr
				} else if barrierAt != bInstr {
					return fmt.Errorf("barrier divergence: work-items reached different barriers")
				}
			} else {
				doneNow++
			}
		}
		if liveBefore == 0 {
			break
		}
		if ge.prof != nil {
			ge.prof.Region(round, time.Since(roundStart), ge.profRetired, ge.profLoads, ge.profStores, atBarrier > 0)
			round++
		}
		if atBarrier > 0 && doneNow > 0 {
			return fmt.Errorf("barrier divergence: %d work-items at a barrier while %d finished", atBarrier, doneNow)
		}
		if atBarrier > 0 && ge.tracer != nil {
			ge.tracer.Barrier(atBarrier)
		}
		if atBarrier == 0 {
			break
		}
	}
	if ge.tracer != nil {
		ge.tracer.GroupEnd()
	}
	return nil
}

// val resolves an operand to its runtime value.
func (c *wiCtx) val(v ir.Value) rv {
	switch t := v.(type) {
	case *ir.Instr:
		return c.regs[t.ID]
	case *ir.ConstInt:
		return rv{i: t.Val}
	case *ir.ConstFloat:
		return rv{f: t.Val}
	case *ir.Param:
		return c.prms[t.Index]
	}
	panic(fmt.Sprintf("vm: unknown value %T", v))
}

// exec runs c until a barrier (kernel level only), a return, or an error.
// It reports whether execution suspended at a barrier, and which barrier
// instruction it was.
func (ge *groupExec) exec(c *wiCtx, kernelLevel bool) (bool, *ir.Instr, error) {
	tr := ge.tracer
	for {
		if c.idx >= len(c.blk.Instrs) {
			return false, nil, fmt.Errorf("vm: fell off block %s", c.blk.Name)
		}
		in := c.blk.Instrs[c.idx]
		c.pending++
		switch in.Op {
		case ir.OpAlloca:
			var addr uint64
			if in.Space == clc.ASLocal {
				addr = MakeAddr(clc.ASLocal, uint64(ge.p.localOff[in]))
			} else {
				addr = MakeAddr(clc.ASPrivate, uint64(c.frameBase+ge.p.frames[c.fn].offsets[in]))
			}
			c.regs[in.ID] = rv{i: int64(addr)}
			c.idx++

		case ir.OpLoad:
			addr := uint64(c.val(in.Args[0]).i)
			if tr != nil {
				tr.Access(in, c.wi, addr, in.Typ.Size(), false)
			}
			if ge.prof != nil {
				ge.profLoads++
			}
			v, err := ge.loadTyped(c, addr, in.Typ, in)
			if err != nil {
				return false, nil, err
			}
			c.regs[in.ID] = v
			c.idx++

		case ir.OpStore:
			addr := uint64(c.val(in.Args[0]).i)
			val := c.val(in.Args[1])
			t := in.Args[1].Type()
			if tr != nil {
				tr.Access(in, c.wi, addr, t.Size(), true)
			}
			if ge.prof != nil {
				ge.profStores++
			}
			if err := ge.storeTyped(c, addr, t, val); err != nil {
				return false, nil, err
			}
			c.idx++

		case ir.OpIndex:
			base := c.val(in.Args[0]).i
			idx := c.val(in.Args[1]).i
			step := int64(ir.PointeeSize(in.Args[0].Type()))
			c.regs[in.ID] = rv{i: base + idx*step}
			c.idx++

		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
			v, err := ge.binArith(c, in)
			if err != nil {
				return false, nil, err
			}
			c.regs[in.ID] = v
			c.idx++

		case ir.OpNeg, ir.OpNot:
			v, err := ge.unArith(c, in)
			if err != nil {
				return false, nil, err
			}
			c.regs[in.ID] = v
			c.idx++

		case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			c.regs[in.ID] = ge.compare(c, in)
			c.idx++

		case ir.OpConvert:
			v, err := ge.convert(c, in)
			if err != nil {
				return false, nil, err
			}
			c.regs[in.ID] = v
			c.idx++

		case ir.OpExtract:
			src := c.val(in.Args[0])
			lane := in.Comps[0]
			vt := in.Args[0].Type().(*clc.VectorType)
			if vt.Elem.Kind.IsFloat() {
				c.regs[in.ID] = rv{f: src.vf[lane]}
			} else {
				c.regs[in.ID] = rv{i: src.vi[lane]}
			}
			c.idx++

		case ir.OpInsert:
			src := c.val(in.Args[0])
			sc := c.val(in.Args[1])
			vt := in.Typ.(*clc.VectorType)
			if vt.Elem.Kind.IsFloat() {
				dst := ensureVF(&c.regs[in.ID], vt.Len)
				copy(dst, src.vf)
				dst[in.Comps[0]] = sc.f
			} else {
				dst := ensureVI(&c.regs[in.ID], vt.Len)
				copy(dst, src.vi)
				dst[in.Comps[0]] = sc.i
			}
			c.idx++

		case ir.OpShuffle:
			src := c.val(in.Args[0])
			vt := in.Typ.(*clc.VectorType)
			if vt.Elem.Kind.IsFloat() {
				dst := ensureVF(&c.regs[in.ID], vt.Len)
				for i, l := range in.Comps {
					dst[i] = src.vf[l]
				}
			} else {
				dst := ensureVI(&c.regs[in.ID], vt.Len)
				for i, l := range in.Comps {
					dst[i] = src.vi[l]
				}
			}
			c.idx++

		case ir.OpBuild:
			vt := in.Typ.(*clc.VectorType)
			if vt.Elem.Kind.IsFloat() {
				dst := ensureVF(&c.regs[in.ID], vt.Len)
				for i, a := range in.Args {
					dst[i] = c.val(a).f
				}
			} else {
				dst := ensureVI(&c.regs[in.ID], vt.Len)
				for i, a := range in.Args {
					dst[i] = c.val(a).i
				}
			}
			c.idx++

		case ir.OpWorkItem:
			c.regs[in.ID] = ge.workItem(c, in)
			c.idx++

		case ir.OpMath:
			v, err := ge.evalMath(c, in)
			if err != nil {
				return false, nil, err
			}
			c.regs[in.ID] = v
			c.idx++

		case ir.OpBarrier:
			if !kernelLevel {
				return false, nil, fmt.Errorf("vm: barrier inside a function call is unsupported")
			}
			c.idx++
			return true, in, nil

		case ir.OpCall:
			fr := c.frame()
			if cap(fr.args) < len(in.Args) {
				fr.args = make([]rv, len(in.Args))
			}
			args := fr.args[:len(in.Args)]
			for i, a := range in.Args {
				args[i] = c.val(a)
			}
			ret, err := ge.call(c, in.Callee, fr, args)
			if err != nil {
				return false, nil, err
			}
			if in.Producing() {
				storeRet(&c.regs[in.ID], ret)
			}
			c.idx++

		case ir.OpBr:
			c.blk = in.Targets[0]
			c.idx = 0

		case ir.OpCondBr:
			cond := c.val(in.Args[0])
			taken := cond.i != 0
			if s, ok := in.Args[0].Type().(*clc.ScalarType); ok && s.Kind.IsFloat() {
				taken = cond.f != 0
			}
			if taken {
				c.blk = in.Targets[0]
			} else {
				c.blk = in.Targets[1]
			}
			c.idx = 0

		case ir.OpRet:
			if kernelLevel {
				c.done = true
				return false, nil, nil
			}
			var ret rv
			if len(in.Args) > 0 {
				ret = c.val(in.Args[0])
			}
			// Stash the return value in the context for call() to pick up.
			c.callRet = ret
			return false, nil, nil

		default:
			return false, nil, fmt.Errorf("vm: unhandled op %s", in.Op)
		}
	}
}

// call executes a user function synchronously within the work-item,
// running it in the pooled register file for the current call depth.
func (ge *groupExec) call(c *wiCtx, callee *ir.Function, fr *callFrame, args []rv) (rv, error) {
	saveFn, saveBlk, saveIdx := c.fn, c.blk, c.idx
	saveRegs, savePrms := c.regs, c.prms
	saveBase, saveSP := c.frameBase, c.sp

	frame := ge.p.frames[callee]
	nRegs := ge.p.regCount[callee]
	if cap(fr.regs) < nRegs {
		fr.regs = make([]rv, nRegs)
	}
	c.fn = callee
	c.blk = callee.Entry()
	c.idx = 0
	c.regs = fr.regs[:nRegs]
	c.prms = args
	c.frameBase = c.sp
	c.sp += frame.size
	c.depth++
	if c.sp > len(c.mem.private) {
		return rv{}, fmt.Errorf("vm: private stack overflow calling %s", callee.Name)
	}

	if _, _, err := ge.exec(c, false); err != nil {
		return rv{}, err
	}
	ret := c.callRet

	c.depth--
	c.fn, c.blk, c.idx = saveFn, saveBlk, saveIdx
	c.regs, c.prms = saveRegs, savePrms
	c.frameBase, c.sp = saveBase, saveSP
	return ret, nil
}

func (ge *groupExec) workItem(c *wiCtx, in *ir.Instr) rv {
	var d int64
	if len(in.Args) > 0 {
		d = c.val(in.Args[0]).i
	}
	if d < 0 || d > 2 {
		return rv{}
	}
	switch in.Func {
	case "get_global_id":
		return rv{i: c.gid[d]}
	case "get_local_id":
		return rv{i: c.lid[d]}
	case "get_group_id":
		return rv{i: c.grp[d]}
	case "get_global_size":
		return rv{i: int64(ge.cfg.GlobalSize[d])}
	case "get_local_size":
		return rv{i: int64(ge.cfg.LocalSize[d])}
	case "get_num_groups":
		return rv{i: int64(ge.cfg.GlobalSize[d] / ge.cfg.LocalSize[d])}
	case "get_work_dim":
		return rv{i: 3}
	}
	return rv{}
}

// ensureVF returns r's float-lane slice resized to n.
func ensureVF(r *rv, n int) []float64 {
	if cap(r.vf) < n {
		r.vf = make([]float64, n)
	} else {
		r.vf = r.vf[:n]
	}
	return r.vf
}

// ensureVI returns r's int-lane slice resized to n.
func ensureVI(r *rv, n int) []int64 {
	if cap(r.vi) < n {
		r.vi = make([]int64, n)
	} else {
		r.vi = r.vi[:n]
	}
	return r.vi
}

// loadTyped loads a value of type t at addr.
func (ge *groupExec) loadTyped(c *wiCtx, addr uint64, t clc.Type, in *ir.Instr) (rv, error) {
	switch tt := t.(type) {
	case *clc.ScalarType:
		return c.mem.loadScalar(addr, tt.Kind)
	case *clc.VectorType:
		// Load directly into the destination register's lane slice so the
		// hot path performs no allocation.
		dst := &c.regs[in.ID]
		es := tt.Elem.Size()
		if tt.Elem.Kind.IsFloat() {
			lanes := ensureVF(dst, tt.Len)
			for i := 0; i < tt.Len; i++ {
				v, err := c.mem.loadScalar(addr+uint64(i*es), tt.Elem.Kind)
				if err != nil {
					return rv{}, err
				}
				lanes[i] = v.f
			}
		} else {
			lanes := ensureVI(dst, tt.Len)
			for i := 0; i < tt.Len; i++ {
				v, err := c.mem.loadScalar(addr+uint64(i*es), tt.Elem.Kind)
				if err != nil {
					return rv{}, err
				}
				lanes[i] = v.i
			}
		}
		return *dst, nil
	case *clc.PointerType:
		v, err := c.mem.loadScalar(addr, clc.KULong)
		return v, err
	}
	return rv{}, fmt.Errorf("vm: load of unsupported type %s", t)
}

// storeTyped stores v of type t at addr.
func (ge *groupExec) storeTyped(c *wiCtx, addr uint64, t clc.Type, v rv) error {
	switch tt := t.(type) {
	case *clc.ScalarType:
		return c.mem.storeScalar(addr, tt.Kind, v)
	case *clc.VectorType:
		es := tt.Elem.Size()
		for i := 0; i < tt.Len; i++ {
			var lane rv
			if tt.Elem.Kind.IsFloat() {
				lane.f = v.vf[i]
			} else {
				lane.i = v.vi[i]
			}
			if err := c.mem.storeScalar(addr+uint64(i*es), tt.Elem.Kind, lane); err != nil {
				return err
			}
		}
		return nil
	case *clc.PointerType:
		return c.mem.storeScalar(addr, clc.KULong, v)
	}
	return fmt.Errorf("vm: store of unsupported type %s", t)
}

// normInt truncates x to the width and signedness of kind k.
func normInt(x int64, k clc.ScalarKind) int64 {
	switch k {
	case clc.KBool:
		if x != 0 {
			return 1
		}
		return 0
	case clc.KChar:
		return int64(int8(x))
	case clc.KUChar:
		return int64(uint8(x))
	case clc.KShort:
		return int64(int16(x))
	case clc.KUShort:
		return int64(uint16(x))
	case clc.KInt:
		return int64(int32(x))
	case clc.KUInt:
		return int64(uint32(x))
	}
	return x
}

func math32(k clc.ScalarKind, x float64) float64 {
	if k == clc.KFloat {
		return float64(float32(x))
	}
	return x
}
