package vm

import (
	"math"
	"testing"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/lower"
)

// compile parses, lowers and prepares a kernel source.
func compile(t *testing.T, src string) *Program {
	t.Helper()
	f, err := clc.Parse("test.cl", src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p, err := Prepare(m)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return p
}

func TestVectorAdd(t *testing.T) {
	p := compile(t, `
__kernel void vadd(__global float* a, __global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
`)
	const n = 100
	g := NewGlobalMem(1 << 16)
	a := g.Alloc(n * 4)
	b := g.Alloc(n * 4)
	cbuf := g.Alloc(n * 4)
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i)
		bv[i] = float32(2 * i)
	}
	a.WriteFloat32s(av)
	b.WriteFloat32s(bv)
	cfg := Config{
		GlobalSize: [3]int{128, 1, 1},
		LocalSize:  [3]int{32, 1, 1},
		Args:       []Arg{BufArg(a), BufArg(b), BufArg(cbuf), IntArg(n)},
	}
	if err := p.Launch("vadd", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := cbuf.ReadFloat32s(n)
	for i := range got {
		if got[i] != float32(3*i) {
			t.Fatalf("c[%d] = %g, want %g", i, got[i], float32(3*i))
		}
	}
}

func TestTransposeWithLocalMemory(t *testing.T) {
	p := compile(t, `
#define S 8
__kernel void transpose(__global float* out, __global float* in, int W, int H) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    lm[ly][lx] = in[(wy*S+ly)*W + (wx*S+lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];
    out[(wx*S+ly)*H + (wy*S+lx)] = val;
}
`)
	const W, H = 32, 16
	g := NewGlobalMem(1 << 16)
	in := g.Alloc(W * H * 4)
	out := g.Alloc(W * H * 4)
	iv := make([]float32, W*H)
	for i := range iv {
		iv[i] = float32(i)
	}
	in.WriteFloat32s(iv)
	cfg := Config{
		GlobalSize: [3]int{W, H, 1},
		LocalSize:  [3]int{8, 8, 1},
		Args:       []Arg{BufArg(out), BufArg(in), IntArg(W), IntArg(H)},
	}
	if err := p.Launch("transpose", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	ov := out.ReadFloat32s(W * H)
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			want := iv[y*W+x]
			got := ov[x*H+y]
			if got != want {
				t.Fatalf("out[%d][%d] = %g, want %g", x, y, got, want)
			}
		}
	}
}

func TestReductionInGroup(t *testing.T) {
	// Tree reduction exercises barrier loops and local read/write.
	p := compile(t, `
#define WG 64
__kernel void reduce(__global float* in, __global float* out) {
    __local float sm[WG];
    int lx = get_local_id(0);
    int g = get_group_id(0);
    sm[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = WG/2; s > 0; s >>= 1) {
        if (lx < s) sm[lx] += sm[lx + s];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lx == 0) out[g] = sm[0];
}
`)
	const n, wg = 256, 64
	g := NewGlobalMem(1 << 16)
	in := g.Alloc(n * 4)
	out := g.Alloc((n / wg) * 4)
	iv := make([]float32, n)
	var sums [n / wg]float32
	for i := range iv {
		iv[i] = float32(i % 7)
		sums[i/wg] += iv[i]
	}
	in.WriteFloat32s(iv)
	cfg := Config{
		GlobalSize: [3]int{n, 1, 1},
		LocalSize:  [3]int{wg, 1, 1},
		Args:       []Arg{BufArg(in), BufArg(out)},
	}
	if err := p.Launch("reduce", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	ov := out.ReadFloat32s(n / wg)
	for i, got := range ov {
		if math.Abs(float64(got-sums[i])) > 1e-3 {
			t.Errorf("group %d sum = %g, want %g", i, got, sums[i])
		}
	}
}

func TestFloat4Kernel(t *testing.T) {
	p := compile(t, `
__kernel void scale4(__global float4* v, float s) {
    int i = get_global_id(0);
    float4 x = v[i];
    x = x * (float4)(s, s, s, s);
    x.x = x.x + 1.0f;
    x.yz = x.zy;
    v[i] = x;
}
`)
	const n = 8
	g := NewGlobalMem(1 << 12)
	buf := g.Alloc(n * 16)
	iv := make([]float32, n*4)
	for i := range iv {
		iv[i] = float32(i)
	}
	buf.WriteFloat32s(iv)
	cfg := Config{
		GlobalSize: [3]int{n, 1, 1},
		LocalSize:  [3]int{4, 1, 1},
		Args:       []Arg{BufArg(buf), FloatArg(2.0)},
	}
	if err := p.Launch("scale4", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	ov := buf.ReadFloat32s(n * 4)
	for i := 0; i < n; i++ {
		base := float32(i * 4)
		wantX := base*2 + 1
		wantY := (base + 2) * 2 // swapped with z
		wantZ := (base + 1) * 2
		wantW := (base + 3) * 2
		got := ov[i*4 : i*4+4]
		if got[0] != wantX || got[1] != wantY || got[2] != wantZ || got[3] != wantW {
			t.Fatalf("v[%d] = %v, want [%g %g %g %g]", i, got, wantX, wantY, wantZ, wantW)
		}
	}
}

func TestUserFunctionCall(t *testing.T) {
	p := compile(t, `
float sq(float x) { return x * x; }
int fib(int n) {
    int a = 0;
    int b = 1;
    for (int i = 0; i < n; i++) { int t = a + b; a = b; b = t; }
    return a;
}
__kernel void k(__global float* f, __global int* iv) {
    int i = get_global_id(0);
    f[i] = sq((float)i);
    iv[i] = fib(i);
}
`)
	const n = 10
	g := NewGlobalMem(1 << 12)
	fb := g.Alloc(n * 4)
	ib := g.Alloc(n * 4)
	cfg := Config{
		GlobalSize: [3]int{n, 1, 1},
		LocalSize:  [3]int{1, 1, 1},
		Args:       []Arg{BufArg(fb), BufArg(ib)},
	}
	if err := p.Launch("k", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	fv := fb.ReadFloat32s(n)
	iv := ib.ReadInt32s(n)
	fibs := []int32{0, 1, 1, 2, 3, 5, 8, 13, 21, 34}
	for i := 0; i < n; i++ {
		if fv[i] != float32(i*i) {
			t.Errorf("sq(%d) = %g", i, fv[i])
		}
		if iv[i] != fibs[i] {
			t.Errorf("fib(%d) = %d, want %d", i, iv[i], fibs[i])
		}
	}
}

func TestControlFlowOps(t *testing.T) {
	p := compile(t, `
__kernel void k(__global int* out, int n) {
    int i = get_global_id(0);
    int acc = 0;
    for (int j = 0; j < n; j++) {
        if (j % 3 == 0) continue;
        if (j > 20) break;
        acc += j;
    }
    int x = (i < 2) ? 100 : 200;
    int y = (i > 0 && i < 3) ? 1 : 0;
    int z = (i == 0 || i == 3) ? 1 : 0;
    out[i] = acc + x + y + z;
}
`)
	const n = 4
	g := NewGlobalMem(1 << 12)
	out := g.Alloc(n * 4)
	cfg := Config{
		GlobalSize: [3]int{n, 1, 1},
		LocalSize:  [3]int{n, 1, 1},
		Args:       []Arg{BufArg(out), IntArg(30)},
	}
	if err := p.Launch("k", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	// acc = sum of j in 1..20 excluding multiples of 3 = 210 - (3+6+9+12+15+18) = 147
	acc := int32(147)
	want := []int32{acc + 100 + 0 + 1, acc + 100 + 1 + 0, acc + 200 + 1 + 0, acc + 200 + 0 + 1}
	got := out.ReadInt32s(n)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	p := compile(t, `
__kernel void k(__global float* out) {
    out[0] = sqrt(16.0f);
    out[1] = rsqrt(4.0f);
    out[2] = fabs(-3.5f);
    out[3] = mad(2.0f, 3.0f, 4.0f);
    out[4] = fmax(1.0f, 2.0f);
    out[5] = fmin(1.0f, 2.0f);
    out[6] = pow(2.0f, 10.0f);
    out[7] = clamp(5.0f, 0.0f, 3.0f);
    out[8] = floor(2.7f);
    out[9] = (float)min(3, 7);
    out[10] = (float)max(3, 7);
    out[11] = dot((float4)(1.0f,2.0f,3.0f,4.0f), (float4)(1.0f,1.0f,1.0f,1.0f));
    out[12] = native_recip(4.0f);
    out[13] = exp(0.0f);
    out[14] = log(1.0f);
}
`)
	g := NewGlobalMem(1 << 12)
	out := g.Alloc(16 * 4)
	cfg := Config{
		GlobalSize: [3]int{1, 1, 1},
		LocalSize:  [3]int{1, 1, 1},
		Args:       []Arg{BufArg(out)},
	}
	if err := p.Launch("k", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	want := []float32{4, 0.5, 3.5, 10, 2, 1, 1024, 3, 2, 3, 7, 10, 0.25, 1, 0}
	got := out.ReadFloat32s(len(want))
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-5 {
			t.Errorf("out[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestIntegerSemantics(t *testing.T) {
	p := compile(t, `
__kernel void k(__global int* out, __global uint* uout) {
    out[0] = -7 / 2;
    out[1] = -7 % 2;
    out[2] = (int)((uint)0xFFFFFFFF >> 28);
    out[3] = 1 << 31;
    out[4] = (int)(char)200;
    out[5] = (int)(uchar)200;
    out[6] = (int)(short)40000;
    out[7] = (int)(ushort)40000;
    uout[0] = (uint)0xFFFFFFFF / 2u;
}
`)
	g := NewGlobalMem(1 << 12)
	out := g.Alloc(8 * 4)
	uout := g.Alloc(4)
	cfg := Config{
		GlobalSize: [3]int{1, 1, 1},
		LocalSize:  [3]int{1, 1, 1},
		Args:       []Arg{BufArg(out), BufArg(uout)},
	}
	if err := p.Launch("k", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := out.ReadInt32s(8)
	want := []int32{-3, -1, 15, math.MinInt32, -56, 200, -25536, 40000}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if u := uint32(uout.ReadInt32s(1)[0]); u != 0x7FFFFFFF {
		t.Errorf("uout[0] = %#x, want 0x7FFFFFFF", u)
	}
}

func TestDivisionByZeroError(t *testing.T) {
	p := compile(t, `
__kernel void k(__global int* out, int z) { out[0] = 5 / z; }
`)
	g := NewGlobalMem(1 << 12)
	out := g.Alloc(4)
	cfg := Config{
		GlobalSize: [3]int{1, 1, 1},
		LocalSize:  [3]int{1, 1, 1},
		Args:       []Arg{BufArg(out), IntArg(0)},
	}
	if err := p.Launch("k", cfg, g, nil); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestBarrierDivergenceDetected(t *testing.T) {
	p := compile(t, `
__kernel void k(__global int* out) {
    int lx = get_local_id(0);
    if (lx == 0) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = lx;
}
`)
	g := NewGlobalMem(1 << 12)
	out := g.Alloc(16 * 4)
	cfg := Config{
		GlobalSize: [3]int{4, 1, 1},
		LocalSize:  [3]int{4, 1, 1},
		Args:       []Arg{BufArg(out)},
	}
	if err := p.Launch("k", cfg, g, nil); err == nil {
		t.Fatal("expected barrier divergence error")
	}
}

func TestDynamicLocalArg(t *testing.T) {
	p := compile(t, `
__kernel void k(__global float* out, __local float* sm) {
    int lx = get_local_id(0);
    sm[lx] = (float)lx * 2.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    int n = get_local_size(0);
    out[get_global_id(0)] = sm[(lx + 1) % n];
}
`)
	g := NewGlobalMem(1 << 12)
	out := g.Alloc(8 * 4)
	cfg := Config{
		GlobalSize: [3]int{8, 1, 1},
		LocalSize:  [3]int{8, 1, 1},
		Args:       []Arg{BufArg(out), LocalArg(8 * 4)},
	}
	if err := p.Launch("k", cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := out.ReadFloat32s(8)
	for i := 0; i < 8; i++ {
		want := float32(((i + 1) % 8) * 2)
		if got[i] != want {
			t.Errorf("out[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	p := compile(t, `
__kernel void k(__global int* out, int n) { out[n] = 1; }
`)
	g := NewGlobalMem(1 << 8)
	out := g.Alloc(4)
	cfg := Config{
		GlobalSize: [3]int{1, 1, 1},
		LocalSize:  [3]int{1, 1, 1},
		Args:       []Arg{BufArg(out), IntArg(1 << 20)},
	}
	if err := p.Launch("k", cfg, g, nil); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestTracerSeesAccesses(t *testing.T) {
	p := compile(t, `
__kernel void k(__global float* a, __global float* b) {
    int i = get_global_id(0);
    b[i] = a[i];
    barrier(CLK_LOCAL_MEM_FENCE);
    b[i] += 1.0f;
}
`)
	g := NewGlobalMem(1 << 12)
	a := g.Alloc(16 * 4)
	b := g.Alloc(16 * 4)
	tr := &countingTracer{}
	cfg := Config{
		GlobalSize: [3]int{16, 1, 1},
		LocalSize:  [3]int{8, 1, 1},
		Args:       []Arg{BufArg(a), BufArg(b)},
	}
	opts := &LaunchOpts{Workers: 1, TracerFor: func(int) Tracer { return tr }}
	if err := p.Launch("k", cfg, g, opts); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if tr.groups != 2 {
		t.Errorf("groups = %d, want 2", tr.groups)
	}
	// Per WI: load a[i], store b[i], load b[i], store b[i] = 4 global accesses.
	if tr.accesses != 16*4 {
		t.Errorf("accesses = %d, want %d", tr.accesses, 16*4)
	}
	if tr.barriers != 2 { // one barrier round per group
		t.Errorf("barrier rounds = %d, want 2", tr.barriers)
	}
	if tr.instrs == 0 {
		t.Error("no instruction counts reported")
	}
}

type countingTracer struct {
	groups, accesses, barriers int
	instrs                     int64
}

func (t *countingTracer) GroupBegin(g [3]int, lin int) { t.groups++ }
func (t *countingTracer) Access(in *ir.Instr, wi int, addr uint64, size int, store bool) {
	sp, _ := SplitAddr(addr)
	if sp == clc.ASGlobal {
		t.accesses++
	}
}
func (t *countingTracer) Barrier(n int)          { t.barriers++ }
func (t *countingTracer) Instrs(wi int, n int64) { t.instrs += n }
func (t *countingTracer) GroupEnd()              {}
