package vm

import (
	"context"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want substring %q", r, want)
		}
	}()
	f()
}

func TestRegisterBackendDuplicatePanics(t *testing.T) {
	build := func(context.Context, *Program) (Executor, error) { return nil, nil }
	RegisterBackend("backend-test-dup", build)
	t.Cleanup(func() {
		backendsMu.Lock()
		delete(backendBuilders, "backend-test-dup")
		backendsMu.Unlock()
	})
	mustPanic(t, `duplicate backend "backend-test-dup"`, func() {
		RegisterBackend("backend-test-dup", build)
	})
}

func TestRegisterBackendInterpPanics(t *testing.T) {
	mustPanic(t, "cannot replace the interpreter backend", func() {
		RegisterBackend(BackendInterp, nil)
	})
}

func TestResolveBackendUnknown(t *testing.T) {
	_, err := ResolveBackend("no-such-backend")
	if err == nil {
		t.Fatal("expected error for unknown backend")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-backend"`) {
		t.Errorf("error %q does not name the offending backend", msg)
	}
	// The error must list every registered backend so the user can fix
	// the name without consulting the source.
	for _, b := range Backends() {
		if !strings.Contains(msg, b) {
			t.Errorf("error %q does not list registered backend %q", msg, b)
		}
	}
}

func TestResolveBackendEnvValidation(t *testing.T) {
	t.Setenv(EnvBackend, "garbage-backend")
	_, err := ResolveBackend("")
	if err == nil {
		t.Fatal("expected error for invalid GROVER_BACKEND")
	}
	if !strings.Contains(err.Error(), EnvBackend) || !strings.Contains(err.Error(), "garbage-backend") {
		t.Errorf("error %q should blame %s=garbage-backend", err, EnvBackend)
	}
}

func TestResolveBackendDefaults(t *testing.T) {
	t.Setenv(EnvBackend, "")
	name, err := ResolveBackend("")
	if err != nil || name != BackendInterp {
		t.Fatalf("ResolveBackend(\"\") = %q, %v; want interp, nil", name, err)
	}
	if name, err := ResolveBackend(BackendInterp); err != nil || name != BackendInterp {
		t.Fatalf("ResolveBackend(interp) = %q, %v", name, err)
	}
}

func TestLaunchUnknownBackendEager(t *testing.T) {
	// An unknown Config.Backend must fail before any kernel lookup or
	// argument checking happens: the error mentions the backend, not a
	// missing kernel.
	p := &Program{}
	err := p.Launch("nope", Config{Backend: "no-such-backend"}, NewGlobalMem(64), nil)
	if err == nil || !strings.Contains(err.Error(), "no-such-backend") {
		t.Fatalf("Launch error = %v, want unknown-backend report", err)
	}
}
