package vm

import (
	"math"
	"testing"
	"testing/quick"

	"grover/internal/clc"
	"grover/internal/ir"
)

// TestIntBinMatchesGoInt32 property-checks the interpreter's 32-bit signed
// arithmetic against Go's int32 semantics.
func TestIntBinMatchesGoInt32(t *testing.T) {
	check := func(a, b int32) bool {
		ops := []struct {
			op   ir.Op
			want func(x, y int32) (int32, bool)
		}{
			{ir.OpAdd, func(x, y int32) (int32, bool) { return x + y, true }},
			{ir.OpSub, func(x, y int32) (int32, bool) { return x - y, true }},
			{ir.OpMul, func(x, y int32) (int32, bool) { return x * y, true }},
			{ir.OpAnd, func(x, y int32) (int32, bool) { return x & y, true }},
			{ir.OpOr, func(x, y int32) (int32, bool) { return x | y, true }},
			{ir.OpXor, func(x, y int32) (int32, bool) { return x ^ y, true }},
			{ir.OpDiv, func(x, y int32) (int32, bool) {
				if y == 0 || (x == math.MinInt32 && y == -1) {
					return 0, false
				}
				return x / y, true
			}},
			{ir.OpRem, func(x, y int32) (int32, bool) {
				if y == 0 || (x == math.MinInt32 && y == -1) {
					return 0, false
				}
				return x % y, true
			}},
		}
		for _, o := range ops {
			want, defined := o.want(a, b)
			if !defined {
				continue
			}
			got, err := intBin(o.op, clc.KInt, int64(a), int64(b))
			if err != nil {
				return false
			}
			if int32(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestIntBinUnsigned property-checks unsigned division/shift semantics.
func TestIntBinUnsigned(t *testing.T) {
	check := func(a, b uint32) bool {
		if b == 0 {
			b = 1
		}
		d, err := intBin(ir.OpDiv, clc.KUInt, int64(a), int64(b))
		if err != nil || uint32(d) != a/b {
			return false
		}
		r, err := intBin(ir.OpRem, clc.KUInt, int64(a), int64(b))
		if err != nil || uint32(r) != a%b {
			return false
		}
		sh := b & 31
		s, err := intBin(ir.OpShr, clc.KUInt, int64(a), int64(sh))
		if err != nil || uint32(s) != a>>sh {
			return false
		}
		l, err := intBin(ir.OpShl, clc.KUInt, int64(a), int64(sh))
		if err != nil || uint32(l) != a<<sh {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFloatBinRoundsToFloat32 checks single-precision rounding.
func TestFloatBinRoundsToFloat32(t *testing.T) {
	check := func(a, b float32) bool {
		fa, fb := float64(a), float64(b)
		cases := []struct {
			op   ir.Op
			want float32
		}{
			{ir.OpAdd, a + b},
			{ir.OpSub, a - b},
			{ir.OpMul, a * b},
		}
		for _, c := range cases {
			got, err := floatBin(c.op, clc.KFloat, fa, fb)
			if err != nil {
				return false
			}
			g := float32(got)
			if g != c.want && !(isNaN32(g) && isNaN32(c.want)) {
				return false
			}
		}
		// Division: IEEE, no traps.
		got, err := floatBin(ir.OpDiv, clc.KFloat, fa, fb)
		if err != nil {
			return false
		}
		w := a / b
		return float32(got) == w || (isNaN32(float32(got)) && isNaN32(w))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func isNaN32(f float32) bool { return f != f }

// TestConvertScalarProperties checks key conversion identities.
func TestConvertScalarProperties(t *testing.T) {
	check := func(x int32) bool {
		// int → float → int round trip is exact for |x| < 2^24.
		if x > -(1<<24) && x < (1<<24) {
			f := convertScalar(rv{i: int64(x)}, clc.KInt, clc.KFloat)
			back := convertScalar(f, clc.KFloat, clc.KInt)
			if int32(back.i) != x {
				return false
			}
		}
		// int → char truncates like Go.
		c := convertScalar(rv{i: int64(x)}, clc.KInt, clc.KChar)
		if int8(c.i) != int8(x) || c.i != int64(int8(x)) {
			return false
		}
		// int → uint reinterprets low 32 bits.
		u := convertScalar(rv{i: int64(x)}, clc.KInt, clc.KUInt)
		return uint32(u.i) == uint32(x) && u.i == int64(uint32(x))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// NaN → int is defined as 0 in this VM.
	if v := convertScalar(rv{f: math.NaN()}, clc.KFloat, clc.KInt); v.i != 0 {
		t.Errorf("NaN→int = %d, want 0", v.i)
	}
}

// TestNormIntWidths checks truncation per kind.
func TestNormIntWidths(t *testing.T) {
	cases := []struct {
		k    clc.ScalarKind
		in   int64
		want int64
	}{
		{clc.KChar, 200, -56},
		{clc.KUChar, 200, 200},
		{clc.KUChar, 256, 0},
		{clc.KShort, 40000, -25536},
		{clc.KUShort, 40000, 40000},
		{clc.KInt, 1 << 35, 0},
		{clc.KUInt, -1, int64(uint32(0xFFFFFFFF))},
		{clc.KLong, -5, -5},
		{clc.KBool, 7, 1},
		{clc.KBool, 0, 0},
	}
	for _, c := range cases {
		if got := normInt(c.in, c.k); got != c.want {
			t.Errorf("normInt(%d, %s) = %d, want %d", c.in, c.k, got, c.want)
		}
	}
}

// TestAddrEncoding round-trips address space tags.
func TestAddrEncoding(t *testing.T) {
	check := func(off uint32) bool {
		for _, sp := range []clc.AddrSpace{clc.ASPrivate, clc.ASGlobal, clc.ASLocal} {
			a := MakeAddr(sp, uint64(off))
			gotSp, gotOff := SplitAddr(a)
			if gotOff != uint64(off) {
				return false
			}
			wantSp := sp
			if gotSp != wantSp {
				return false
			}
		}
		// Constant space maps onto global.
		a := MakeAddr(clc.ASConstant, uint64(off))
		sp, _ := SplitAddr(a)
		return sp == clc.ASGlobal
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMemScalarRoundTrip round-trips every scalar kind through memory.
func TestMemScalarRoundTrip(t *testing.T) {
	m := &memView{global: make([]byte, 64)}
	addr := MakeAddr(clc.ASGlobal, 8)
	intKinds := []clc.ScalarKind{clc.KChar, clc.KUChar, clc.KShort, clc.KUShort,
		clc.KInt, clc.KUInt, clc.KLong, clc.KULong}
	for _, k := range intKinds {
		want := normInt(-123456789, k)
		if err := m.storeScalar(addr, k, rv{i: want}); err != nil {
			t.Fatalf("%s store: %v", k, err)
		}
		got, err := m.loadScalar(addr, k)
		if err != nil {
			t.Fatalf("%s load: %v", k, err)
		}
		if got.i != want {
			t.Errorf("%s round trip: %d != %d", k, got.i, want)
		}
	}
	for _, k := range []clc.ScalarKind{clc.KFloat, clc.KDouble} {
		want := 3.14159
		if k == clc.KFloat {
			want = float64(float32(want))
		}
		if err := m.storeScalar(addr, k, rv{f: want}); err != nil {
			t.Fatal(err)
		}
		got, err := m.loadScalar(addr, k)
		if err != nil {
			t.Fatal(err)
		}
		if got.f != want {
			t.Errorf("%s round trip: %g != %g", k, got.f, want)
		}
	}
}

// TestMemBoundsChecked verifies out-of-range accesses error out.
func TestMemBoundsChecked(t *testing.T) {
	m := &memView{global: make([]byte, 16), local: make([]byte, 8), private: make([]byte, 8)}
	if _, err := m.loadScalar(MakeAddr(clc.ASGlobal, 20), clc.KInt); err == nil {
		t.Error("global OOB load accepted")
	}
	if err := m.storeScalar(MakeAddr(clc.ASLocal, 8), clc.KInt, rv{}); err == nil {
		t.Error("local OOB store accepted")
	}
	if _, err := m.loadScalar(MakeAddr(clc.ASPrivate, 6), clc.KInt); err == nil {
		t.Error("private partially-OOB load accepted")
	}
}
