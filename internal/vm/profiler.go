package vm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profiler attributes one launch's execution to barrier-delimited
// regions: every work-group runs as a sequence of rounds (round 0 from
// entry to the first barrier, round 1 from there to the next, ...), and
// each backend reports one Region call per round per work-group with the
// round's wall time and retire/traffic counters. Regions are
// backend-invariant — retire and traffic accounting mirrors the tracer
// contract, which the differential suite holds bit-identical across
// backends — so the same kernel profiled on interp and jit shows the
// same counters with different wall columns.
//
// A nil *Profiler disables all accounting: backends gate every counter
// on one pointer check so untraced, unprofiled launches stay on their
// hot path.
type Profiler struct {
	mu       sync.Mutex
	kernel   string
	backend  string
	launches int
	wall     time.Duration
	regions  map[int]*regionStat
}

type regionStat struct {
	wall     time.Duration
	retired  int64
	loads    int64
	stores   int64
	groups   int64
	barriers int64
}

// NewProfiler creates an empty profiler; install it on LaunchOpts to
// profile a launch.
func NewProfiler() *Profiler { return &Profiler{regions: map[int]*regionStat{}} }

// LaunchBegin records the kernel/backend labels; called once per launch
// by the dispatching backend.
func (p *Profiler) LaunchBegin(kernel, backend string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.kernel, p.backend = kernel, backend
	p.mu.Unlock()
}

// LaunchDone accumulates one launch's total wall-clock.
func (p *Profiler) LaunchDone(wall time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.launches++
	p.wall += wall
	p.mu.Unlock()
}

// Region records one barrier-delimited round executed by one work-group:
// its wall time, retired instructions, memory traffic (one load/store
// per executed memory op per work-item, the tracer's Access cadence),
// and whether the round ended at a barrier (false for the exit round).
func (p *Profiler) Region(round int, wall time.Duration, retired, loads, stores int64, barrier bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	r := p.regions[round]
	if r == nil {
		r = &regionStat{}
		p.regions[round] = r
	}
	r.wall += wall
	r.retired += retired
	r.loads += loads
	r.stores += stores
	r.groups++
	if barrier {
		r.barriers++
	}
	p.mu.Unlock()
}

// RegionProfile is one barrier-delimited region aggregated over every
// work-group (and every launch, when the profiler spans repeated runs).
type RegionProfile struct {
	Round    int     `json:"round"`
	Region   string  `json:"region"`
	WallMS   float64 `json:"wall_ms"`
	Retired  int64   `json:"retired"`
	Loads    int64   `json:"loads"`
	Stores   int64   `json:"stores"`
	Groups   int64   `json:"groups"`
	Barriers int64   `json:"barriers"`
}

// ProfileReport is the exportable form of a profiled launch.
type ProfileReport struct {
	Kernel   string          `json:"kernel"`
	Backend  string          `json:"backend"`
	Launches int             `json:"launches"`
	WallMS   float64         `json:"wall_ms"`
	Retired  int64           `json:"retired"`
	Loads    int64           `json:"loads"`
	Stores   int64           `json:"stores"`
	Regions  []RegionProfile `json:"regions"`
}

// Report snapshots the profiler into its exportable form, regions in
// round order. Returns nil when nothing was recorded.
func (p *Profiler) Report() *ProfileReport {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.regions) == 0 && p.launches == 0 {
		return nil
	}
	rep := &ProfileReport{
		Kernel:   p.kernel,
		Backend:  p.backend,
		Launches: p.launches,
		WallMS:   float64(p.wall) / float64(time.Millisecond),
	}
	rounds := make([]int, 0, len(p.regions))
	for r := range p.regions {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	for _, round := range rounds {
		r := p.regions[round]
		label := fmt.Sprintf("round %d → barrier", round)
		if r.barriers == 0 {
			label = fmt.Sprintf("round %d → exit", round)
		} else if r.barriers < r.groups {
			label = fmt.Sprintf("round %d → barrier/exit", round)
		}
		rep.Regions = append(rep.Regions, RegionProfile{
			Round:    round,
			Region:   label,
			WallMS:   float64(r.wall) / float64(time.Millisecond),
			Retired:  r.retired,
			Loads:    r.loads,
			Stores:   r.stores,
			Groups:   r.groups,
			Barriers: r.barriers,
		})
		rep.Retired += r.retired
		rep.Loads += r.loads
		rep.Stores += r.stores
	}
	return rep
}

// Text renders the report as a flamegraph-style table: one bar per
// region, width proportional to that region's share of the summed
// region wall time.
func (r *ProfileReport) Text() string {
	if r == nil {
		return ""
	}
	var total float64
	for _, reg := range r.Regions {
		total += reg.WallMS
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s  backend %s  launches %d  wall %.3fms  retired %d  loads %d  stores %d\n",
		r.Kernel, r.Backend, r.Launches, r.WallMS, r.Retired, r.Loads, r.Stores)
	const barWidth = 40
	for _, reg := range r.Regions {
		share := 0.0
		if total > 0 {
			share = reg.WallMS / total
		}
		n := int(share*barWidth + 0.5)
		if n > barWidth {
			n = barWidth
		}
		bar := strings.Repeat("#", n) + strings.Repeat(".", barWidth-n)
		fmt.Fprintf(&sb, "  %-24s |%s| %6.1f%%  %9.3fms  retired %-10d loads %-8d stores %-8d groups %d\n",
			reg.Region, bar, share*100, reg.WallMS, reg.Retired, reg.Loads, reg.Stores, reg.Groups)
	}
	return sb.String()
}
