package vm

import (
	"fmt"
	"math"

	"grover/internal/clc"
	"grover/internal/ir"
)

// widthBits returns the bit width of an integer scalar kind.
func widthBits(k clc.ScalarKind) uint {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		return 8
	case clc.KShort, clc.KUShort:
		return 16
	case clc.KInt, clc.KUInt:
		return 32
	}
	return 64
}

// intBin evaluates one integer binary op with C wrapping semantics for the
// given kind.
func intBin(op ir.Op, k clc.ScalarKind, a, b int64) (int64, error) {
	uns := k.IsUnsigned()
	switch op {
	case ir.OpAdd:
		return normInt(a+b, k), nil
	case ir.OpSub:
		return normInt(a-b, k), nil
	case ir.OpMul:
		return normInt(a*b, k), nil
	case ir.OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("vm: integer division by zero")
		}
		if uns {
			return normInt(int64(uint64(a)/uint64(b)), k), nil
		}
		return normInt(a/b, k), nil
	case ir.OpRem:
		if b == 0 {
			return 0, fmt.Errorf("vm: integer remainder by zero")
		}
		if uns {
			return normInt(int64(uint64(a)%uint64(b)), k), nil
		}
		return normInt(a%b, k), nil
	case ir.OpAnd:
		return normInt(a&b, k), nil
	case ir.OpOr:
		return normInt(a|b, k), nil
	case ir.OpXor:
		return normInt(a^b, k), nil
	case ir.OpShl:
		sh := uint(b) & (widthBits(k) - 1)
		return normInt(a<<sh, k), nil
	case ir.OpShr:
		sh := uint(b) & (widthBits(k) - 1)
		if uns {
			// Logical shift on the value truncated to its width.
			mask := ^uint64(0)
			if w := widthBits(k); w < 64 {
				mask = (uint64(1) << w) - 1
			}
			return normInt(int64((uint64(a)&mask)>>sh), k), nil
		}
		return normInt(a>>sh, k), nil
	}
	return 0, fmt.Errorf("vm: bad integer op %s", op)
}

// floatBin evaluates one floating binary op, rounding to float32 when the
// kind is KFloat.
func floatBin(op ir.Op, k clc.ScalarKind, a, b float64) (float64, error) {
	var r float64
	switch op {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpDiv:
		r = a / b // IEEE: inf/nan allowed
	case ir.OpRem:
		r = math.Mod(a, b)
	default:
		return 0, fmt.Errorf("vm: bad float op %s", op)
	}
	return math32(k, r), nil
}

func (ge *groupExec) binArith(c *wiCtx, in *ir.Instr) (rv, error) {
	a := c.val(in.Args[0])
	b := c.val(in.Args[1])
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			r, err := floatBin(in.Op, tt.Kind, a.f, b.f)
			return rv{f: r}, err
		}
		r, err := intBin(in.Op, tt.Kind, a.i, b.i)
		return rv{i: r}, err
	case *clc.VectorType:
		var out rv
		if tt.Elem.Kind.IsFloat() {
			dst := ensureVF(&c.regs[in.ID], tt.Len)
			for i := 0; i < tt.Len; i++ {
				r, err := floatBin(in.Op, tt.Elem.Kind, a.vf[i], b.vf[i])
				if err != nil {
					return rv{}, err
				}
				dst[i] = r
			}
			out = c.regs[in.ID]
		} else {
			dst := ensureVI(&c.regs[in.ID], tt.Len)
			for i := 0; i < tt.Len; i++ {
				r, err := intBin(in.Op, tt.Elem.Kind, a.vi[i], b.vi[i])
				if err != nil {
					return rv{}, err
				}
				dst[i] = r
			}
			out = c.regs[in.ID]
		}
		return out, nil
	case *clc.PointerType:
		// Pointer arithmetic lowered through OpIndex normally; tolerate
		// raw add/sub on pointers measured in bytes.
		switch in.Op {
		case ir.OpAdd:
			return rv{i: a.i + b.i}, nil
		case ir.OpSub:
			return rv{i: a.i - b.i}, nil
		}
	}
	return rv{}, fmt.Errorf("vm: binary op %s on unsupported type %s", in.Op, in.Typ)
}

func (ge *groupExec) unArith(c *wiCtx, in *ir.Instr) (rv, error) {
	a := c.val(in.Args[0])
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			if in.Op == ir.OpNeg {
				return rv{f: -a.f}, nil
			}
			return rv{}, fmt.Errorf("vm: %s on float", in.Op)
		}
		if in.Op == ir.OpNeg {
			return rv{i: normInt(-a.i, tt.Kind)}, nil
		}
		return rv{i: normInt(^a.i, tt.Kind)}, nil
	case *clc.VectorType:
		if tt.Elem.Kind.IsFloat() {
			dst := ensureVF(&c.regs[in.ID], tt.Len)
			for i := range dst {
				dst[i] = -a.vf[i]
			}
		} else {
			dst := ensureVI(&c.regs[in.ID], tt.Len)
			for i := range dst {
				if in.Op == ir.OpNeg {
					dst[i] = normInt(-a.vi[i], tt.Elem.Kind)
				} else {
					dst[i] = normInt(^a.vi[i], tt.Elem.Kind)
				}
			}
		}
		return c.regs[in.ID], nil
	}
	return rv{}, fmt.Errorf("vm: unary op %s on unsupported type %s", in.Op, in.Typ)
}

func (ge *groupExec) compare(c *wiCtx, in *ir.Instr) rv {
	a := c.val(in.Args[0])
	b := c.val(in.Args[1])
	var res bool
	switch ot := in.Args[0].Type().(type) {
	case *clc.ScalarType:
		if ot.Kind.IsFloat() {
			switch in.Op {
			case ir.OpEq:
				res = a.f == b.f
			case ir.OpNe:
				res = a.f != b.f
			case ir.OpLt:
				res = a.f < b.f
			case ir.OpLe:
				res = a.f <= b.f
			case ir.OpGt:
				res = a.f > b.f
			case ir.OpGe:
				res = a.f >= b.f
			}
		} else if ot.Kind.IsUnsigned() {
			ua, ub := uint64(a.i), uint64(b.i)
			switch in.Op {
			case ir.OpEq:
				res = ua == ub
			case ir.OpNe:
				res = ua != ub
			case ir.OpLt:
				res = ua < ub
			case ir.OpLe:
				res = ua <= ub
			case ir.OpGt:
				res = ua > ub
			case ir.OpGe:
				res = ua >= ub
			}
		} else {
			switch in.Op {
			case ir.OpEq:
				res = a.i == b.i
			case ir.OpNe:
				res = a.i != b.i
			case ir.OpLt:
				res = a.i < b.i
			case ir.OpLe:
				res = a.i <= b.i
			case ir.OpGt:
				res = a.i > b.i
			case ir.OpGe:
				res = a.i >= b.i
			}
		}
	case *clc.PointerType:
		switch in.Op {
		case ir.OpEq:
			res = a.i == b.i
		case ir.OpNe:
			res = a.i != b.i
		case ir.OpLt:
			res = a.i < b.i
		case ir.OpLe:
			res = a.i <= b.i
		case ir.OpGt:
			res = a.i > b.i
		case ir.OpGe:
			res = a.i >= b.i
		}
	}
	if res {
		return rv{i: 1}
	}
	return rv{i: 0}
}

func convertScalar(v rv, from, to clc.ScalarKind) rv {
	switch {
	case from.IsFloat() && to.IsFloat():
		return rv{f: math32(to, v.f)}
	case from.IsFloat() && !to.IsFloat():
		f := v.f
		if math.IsNaN(f) {
			return rv{i: 0}
		}
		return rv{i: normInt(int64(f), to)}
	case !from.IsFloat() && to.IsFloat():
		if from.IsUnsigned() {
			return rv{f: math32(to, float64(uint64(v.i)))}
		}
		return rv{f: math32(to, float64(v.i))}
	default:
		return rv{i: normInt(v.i, to)}
	}
}

func (ge *groupExec) convert(c *wiCtx, in *ir.Instr) (rv, error) {
	v := c.val(in.Args[0])
	from := in.Args[0].Type()
	to := in.Typ
	switch tt := to.(type) {
	case *clc.ScalarType:
		switch ft := from.(type) {
		case *clc.ScalarType:
			return convertScalar(v, ft.Kind, tt.Kind), nil
		case *clc.PointerType:
			return rv{i: normInt(v.i, tt.Kind)}, nil
		}
	case *clc.PointerType:
		return rv{i: v.i}, nil
	case *clc.VectorType:
		ft, ok := from.(*clc.VectorType)
		if !ok || ft.Len != tt.Len {
			return rv{}, fmt.Errorf("vm: bad vector conversion %s → %s", from, to)
		}
		if tt.Elem.Kind.IsFloat() {
			dst := ensureVF(&c.regs[in.ID], tt.Len)
			for i := 0; i < tt.Len; i++ {
				var lane rv
				if ft.Elem.Kind.IsFloat() {
					lane = rv{f: v.vf[i]}
				} else {
					lane = rv{i: v.vi[i]}
				}
				dst[i] = convertScalar(lane, ft.Elem.Kind, tt.Elem.Kind).f
			}
		} else {
			dst := ensureVI(&c.regs[in.ID], tt.Len)
			for i := 0; i < tt.Len; i++ {
				var lane rv
				if ft.Elem.Kind.IsFloat() {
					lane = rv{f: v.vf[i]}
				} else {
					lane = rv{i: v.vi[i]}
				}
				dst[i] = convertScalar(lane, ft.Elem.Kind, tt.Elem.Kind).i
			}
		}
		return c.regs[in.ID], nil
	}
	return rv{}, fmt.Errorf("vm: unsupported conversion %s → %s", from, to)
}

// scalarMathF evaluates a float math builtin on scalar operands.
func scalarMathF(name string, k clc.ScalarKind, a []float64) (float64, error) {
	var r float64
	switch name {
	case "sqrt", "native_sqrt", "half_sqrt":
		r = math.Sqrt(a[0])
	case "rsqrt", "native_rsqrt", "half_rsqrt":
		r = 1 / math.Sqrt(a[0])
	case "fabs":
		r = math.Abs(a[0])
	case "exp", "native_exp":
		r = math.Exp(a[0])
	case "exp2":
		r = math.Exp2(a[0])
	case "log", "native_log":
		r = math.Log(a[0])
	case "log2":
		r = math.Log2(a[0])
	case "sin", "native_sin":
		r = math.Sin(a[0])
	case "cos", "native_cos":
		r = math.Cos(a[0])
	case "tan":
		r = math.Tan(a[0])
	case "floor":
		r = math.Floor(a[0])
	case "ceil":
		r = math.Ceil(a[0])
	case "trunc":
		r = math.Trunc(a[0])
	case "round":
		r = math.Round(a[0])
	case "native_recip":
		r = 1 / a[0]
	case "pow":
		r = math.Pow(a[0], a[1])
	case "fmin", "min":
		r = math.Min(a[0], a[1])
	case "fmax", "max":
		r = math.Max(a[0], a[1])
	case "fmod":
		r = math.Mod(a[0], a[1])
	case "native_divide":
		r = a[0] / a[1]
	case "atan2":
		r = math.Atan2(a[0], a[1])
	case "hypot":
		r = math.Hypot(a[0], a[1])
	case "mad", "fma":
		r = a[0]*a[1] + a[2]
	case "clamp":
		r = math.Min(math.Max(a[0], a[1]), a[2])
	case "mix":
		r = a[0] + (a[1]-a[0])*a[2]
	case "abs":
		r = math.Abs(a[0])
	default:
		return 0, fmt.Errorf("vm: unimplemented float builtin %q", name)
	}
	return math32(k, r), nil
}

// scalarMathI evaluates an integer math builtin.
func scalarMathI(name string, k clc.ScalarKind, a []int64) (int64, error) {
	cmpLess := func(x, y int64) bool {
		if k.IsUnsigned() {
			return uint64(x) < uint64(y)
		}
		return x < y
	}
	switch name {
	case "min":
		if cmpLess(a[0], a[1]) {
			return a[0], nil
		}
		return a[1], nil
	case "max":
		if cmpLess(a[0], a[1]) {
			return a[1], nil
		}
		return a[0], nil
	case "abs":
		if a[0] < 0 && !k.IsUnsigned() {
			return normInt(-a[0], k), nil
		}
		return a[0], nil
	case "clamp":
		v := a[0]
		if cmpLess(v, a[1]) {
			v = a[1]
		}
		if cmpLess(a[2], v) {
			v = a[2]
		}
		return v, nil
	case "mad":
		return normInt(a[0]*a[1]+a[2], k), nil
	}
	return 0, fmt.Errorf("vm: unimplemented integer builtin %q", name)
}

func (ge *groupExec) evalMath(c *wiCtx, in *ir.Instr) (rv, error) {
	// Argument marshaling uses per-worker scratch: evalMath never runs a
	// nested exec, so the buffers cannot be live twice.
	if cap(ge.mathArgs) < len(in.Args) {
		ge.mathArgs = make([]rv, len(in.Args))
	}
	args := ge.mathArgs[:len(in.Args)]
	for i, a := range in.Args {
		args[i] = c.val(a)
	}
	// Geometric reductions: vector args, scalar result.
	switch in.Func {
	case "dot":
		if vt, ok := in.Args[0].Type().(*clc.VectorType); ok {
			var sum float64
			for i := 0; i < vt.Len; i++ {
				sum += args[0].vf[i] * args[1].vf[i]
			}
			return rv{f: math32(vt.Elem.Kind, sum)}, nil
		}
		return rv{f: args[0].f * args[1].f}, nil
	case "length":
		if vt, ok := in.Args[0].Type().(*clc.VectorType); ok {
			var sum float64
			for i := 0; i < vt.Len; i++ {
				sum += args[0].vf[i] * args[0].vf[i]
			}
			return rv{f: math32(vt.Elem.Kind, math.Sqrt(sum))}, nil
		}
		return rv{f: math.Abs(args[0].f)}, nil
	}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			fa := ge.mathScratchF(len(args))
			for i := range args {
				fa[i] = args[i].f
			}
			r, err := scalarMathF(in.Func, tt.Kind, fa)
			return rv{f: r}, err
		}
		ia := ge.mathScratchI(len(args))
		for i := range args {
			ia[i] = args[i].i
		}
		r, err := scalarMathI(in.Func, tt.Kind, ia)
		return rv{i: r}, err
	case *clc.VectorType:
		if tt.Elem.Kind.IsFloat() {
			dst := ensureVF(&c.regs[in.ID], tt.Len)
			fa := ge.mathScratchF(len(args))
			for l := 0; l < tt.Len; l++ {
				for i := range args {
					fa[i] = args[i].vf[l]
				}
				r, err := scalarMathF(in.Func, tt.Elem.Kind, fa)
				if err != nil {
					return rv{}, err
				}
				dst[l] = r
			}
		} else {
			dst := ensureVI(&c.regs[in.ID], tt.Len)
			ia := ge.mathScratchI(len(args))
			for l := 0; l < tt.Len; l++ {
				for i := range args {
					ia[i] = args[i].vi[l]
				}
				r, err := scalarMathI(in.Func, tt.Elem.Kind, ia)
				if err != nil {
					return rv{}, err
				}
				dst[l] = r
			}
		}
		return c.regs[in.ID], nil
	}
	return rv{}, fmt.Errorf("vm: math builtin %q with unsupported type %s", in.Func, in.Typ)
}

// mathScratchF returns the worker's pooled float argument buffer.
func (ge *groupExec) mathScratchF(n int) []float64 {
	if cap(ge.mathF) < n {
		ge.mathF = make([]float64, n)
	}
	return ge.mathF[:n]
}

// mathScratchI returns the worker's pooled integer argument buffer.
func (ge *groupExec) mathScratchI(n int) []int64 {
	if cap(ge.mathI) < n {
		ge.mathI = make([]int64, n)
	}
	return ge.mathI[:n]
}
