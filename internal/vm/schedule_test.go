package vm

import (
	"sync"
	"testing"
)

// TestGroupScheduleStatic checks the deterministic policy is exactly the
// historical round-robin assignment.
func TestGroupScheduleStatic(t *testing.T) {
	const nGroups, workers = 23, 4
	s := NewGroupSchedule(nGroups, workers, true)
	for w := 0; w < workers; w++ {
		cur := s.Cursor(w)
		want := w
		for g := cur.Next(); g >= 0; g = cur.Next() {
			if g != want {
				t.Fatalf("worker %d: got group %d, want %d", w, g, want)
			}
			want += workers
		}
		if want < nGroups {
			t.Fatalf("worker %d: stopped early at %d of %d", w, want, nGroups)
		}
	}
}

// TestGroupScheduleDynamic runs the chunked-grab policy concurrently and
// checks every group index is handed out exactly once.
func TestGroupScheduleDynamic(t *testing.T) {
	for _, tc := range []struct{ nGroups, workers int }{
		{1, 1}, {7, 3}, {64, 8}, {1000, 7}, {4096, 16},
	} {
		s := NewGroupSchedule(tc.nGroups, tc.workers, false)
		var mu sync.Mutex
		seen := make([]int, tc.nGroups)
		var wg sync.WaitGroup
		for w := 0; w < tc.workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				cur := s.Cursor(worker)
				prev := -1
				var got []int
				for g := cur.Next(); g >= 0; g = cur.Next() {
					if g <= prev {
						t.Errorf("worker %d: non-ascending grab %d after %d", worker, g, prev)
					}
					prev = g
					got = append(got, g)
				}
				mu.Lock()
				for _, g := range got {
					seen[g]++
				}
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		for g, n := range seen {
			if n != 1 {
				t.Fatalf("nGroups=%d workers=%d: group %d executed %d times",
					tc.nGroups, tc.workers, g, n)
			}
		}
	}
}
