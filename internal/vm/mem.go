// Package vm executes IR kernels over an NDRange with OpenCL work-group
// semantics: work-items within a group run as resumable contexts that are
// suspended at barriers and resumed once the whole group arrives; work
// groups are independent and may be distributed over simulated cores.
//
// Addresses are uint64 values carrying a 2-bit address-space tag in the top
// bits; each space is a flat byte arena (global per launch, local per work
// group, private per work item).
package vm

import (
	"encoding/binary"
	"fmt"
	"math"

	"grover/internal/clc"
)

// Address-space tags (top 2 bits of a pointer).
const (
	tagPrivate uint64 = 0
	tagGlobal  uint64 = 1
	tagLocal   uint64 = 2

	tagShift = 62
	offMask  = (uint64(1) << tagShift) - 1
)

// MakeAddr builds a tagged pointer.
func MakeAddr(space clc.AddrSpace, off uint64) uint64 {
	var tag uint64
	switch space {
	case clc.ASGlobal, clc.ASConstant:
		tag = tagGlobal
	case clc.ASLocal:
		tag = tagLocal
	default:
		tag = tagPrivate
	}
	return tag<<tagShift | (off & offMask)
}

// SplitAddr decomposes a tagged pointer.
func SplitAddr(addr uint64) (space clc.AddrSpace, off uint64) {
	switch addr >> tagShift {
	case tagGlobal:
		return clc.ASGlobal, addr & offMask
	case tagLocal:
		return clc.ASLocal, addr & offMask
	default:
		return clc.ASPrivate, addr & offMask
	}
}

// GlobalMem is the device's global memory arena. Buffers are allocated
// sequentially; 256-byte alignment mirrors real device allocators.
type GlobalMem struct {
	Data []byte
}

// NewGlobalMem returns an arena with the given capacity in bytes.
func NewGlobalMem(capacity int) *GlobalMem {
	return &GlobalMem{Data: make([]byte, 0, capacity)}
}

// Buffer is a region of global memory.
type Buffer struct {
	Off  uint64
	Size int
	mem  *GlobalMem
}

// Alloc carves a new buffer out of the arena.
func (g *GlobalMem) Alloc(size int) *Buffer {
	const align = 256
	off := (len(g.Data) + align - 1) &^ (align - 1)
	need := off + size
	if need > cap(g.Data) {
		grown := make([]byte, len(g.Data), max(need, 2*cap(g.Data)))
		copy(grown, g.Data)
		g.Data = grown
	}
	g.Data = g.Data[:need]
	return &Buffer{Off: uint64(off), Size: size, mem: g}
}

// Addr returns the buffer's tagged base pointer.
func (b *Buffer) Addr() uint64 { return MakeAddr(clc.ASGlobal, b.Off) }

// Bytes returns the buffer's backing slice.
func (b *Buffer) Bytes() []byte { return b.mem.Data[b.Off : int(b.Off)+b.Size] }

// WriteFloat32s fills the buffer with float32 values starting at the front.
func (b *Buffer) WriteFloat32s(vals []float32) {
	bs := b.Bytes()
	for i, v := range vals {
		binary.LittleEndian.PutUint32(bs[i*4:], math.Float32bits(v))
	}
}

// ReadFloat32s reads n float32 values from the front of the buffer.
func (b *Buffer) ReadFloat32s(n int) []float32 {
	bs := b.Bytes()
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(bs[i*4:]))
	}
	return out
}

// WriteInt32s fills the buffer with int32 values.
func (b *Buffer) WriteInt32s(vals []int32) {
	bs := b.Bytes()
	for i, v := range vals {
		binary.LittleEndian.PutUint32(bs[i*4:], uint32(v))
	}
}

// ReadInt32s reads n int32 values.
func (b *Buffer) ReadInt32s(n int) []int32 {
	bs := b.Bytes()
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(bs[i*4:]))
	}
	return out
}

// WriteBytes copies raw bytes into the buffer.
func (b *Buffer) WriteBytes(p []byte) { copy(b.Bytes(), p) }

// memView bundles the three arenas a work-item sees.
type memView struct {
	global  []byte
	local   []byte
	private []byte
}

func (m *memView) arena(addr uint64) ([]byte, uint64, error) {
	off := addr & offMask
	switch addr >> tagShift {
	case tagGlobal:
		if int(off) >= len(m.global) {
			return nil, 0, fmt.Errorf("vm: global access at %d out of bounds (%d)", off, len(m.global))
		}
		return m.global, off, nil
	case tagLocal:
		if int(off) >= len(m.local) {
			return nil, 0, fmt.Errorf("vm: local access at %d out of bounds (%d)", off, len(m.local))
		}
		return m.local, off, nil
	default:
		if int(off) >= len(m.private) {
			return nil, 0, fmt.Errorf("vm: private access at %d out of bounds (%d)", off, len(m.private))
		}
		return m.private, off, nil
	}
}

// loadScalar reads a scalar of kind k at addr.
func (m *memView) loadScalar(addr uint64, k clc.ScalarKind) (rv, error) {
	a, off, err := m.arena(addr)
	if err != nil {
		return rv{}, err
	}
	if int(off)+k.Size() > len(a) {
		return rv{}, fmt.Errorf("vm: load of %d bytes at %d overruns arena (%d)", k.Size(), off, len(a))
	}
	var out rv
	switch k {
	case clc.KBool, clc.KUChar:
		out.i = int64(a[off])
	case clc.KChar:
		out.i = int64(int8(a[off]))
	case clc.KShort:
		out.i = int64(int16(binary.LittleEndian.Uint16(a[off:])))
	case clc.KUShort:
		out.i = int64(binary.LittleEndian.Uint16(a[off:]))
	case clc.KInt:
		out.i = int64(int32(binary.LittleEndian.Uint32(a[off:])))
	case clc.KUInt:
		out.i = int64(binary.LittleEndian.Uint32(a[off:]))
	case clc.KLong, clc.KULong:
		out.i = int64(binary.LittleEndian.Uint64(a[off:]))
	case clc.KFloat:
		out.f = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[off:])))
	case clc.KDouble:
		out.f = math.Float64frombits(binary.LittleEndian.Uint64(a[off:]))
	default:
		return rv{}, fmt.Errorf("vm: load of unsupported scalar %s", k)
	}
	return out, nil
}

// storeScalar writes a scalar of kind k at addr.
func (m *memView) storeScalar(addr uint64, k clc.ScalarKind, v rv) error {
	a, off, err := m.arena(addr)
	if err != nil {
		return err
	}
	if int(off)+k.Size() > len(a) {
		return fmt.Errorf("vm: store of %d bytes at %d overruns arena (%d)", k.Size(), off, len(a))
	}
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		a[off] = byte(v.i)
	case clc.KShort, clc.KUShort:
		binary.LittleEndian.PutUint16(a[off:], uint16(v.i))
	case clc.KInt, clc.KUInt:
		binary.LittleEndian.PutUint32(a[off:], uint32(v.i))
	case clc.KLong, clc.KULong:
		binary.LittleEndian.PutUint64(a[off:], uint64(v.i))
	case clc.KFloat:
		binary.LittleEndian.PutUint32(a[off:], math.Float32bits(float32(v.f)))
	case clc.KDouble:
		binary.LittleEndian.PutUint64(a[off:], math.Float64bits(v.f))
	default:
		return fmt.Errorf("vm: store of unsupported scalar %s", k)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
