package vm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/telemetry"
)

// rv is the runtime representation of one IR value: scalars use i or f
// (selected by the static type), vectors use vi or vf.
type rv struct {
	i  int64
	f  float64
	vi []int64
	vf []float64
}

// frameInfo is the private-memory layout of one function's allocas.
type frameInfo struct {
	size    int
	offsets map[*ir.Instr]int
}

// Program is a prepared module: alloca layouts are precomputed and
// instruction IDs are dense.
type Program struct {
	Module *ir.Module

	frames   map[*ir.Function]*frameInfo
	localOff map[*ir.Instr]int
	localSz  map[*ir.Function]int
	regCount map[*ir.Function]int
	// stackBytes is a conservative private-arena size: the sum of every
	// frame in the module (OpenCL forbids recursion).
	stackBytes int

	// execMu guards execs, the per-backend compiled executors cached so
	// each program is compiled once and executed many times.
	execMu sync.Mutex
	execs  map[string]Executor
}

// PrepareCtx is Prepare recording a vm.prepare span into the trace
// carried by ctx, if any.
func PrepareCtx(ctx context.Context, m *ir.Module) (*Program, error) {
	defer telemetry.StartSpan(ctx, "vm.prepare")()
	return Prepare(m)
}

// Prepare lays out allocas and numbers instructions for execution.
func Prepare(m *ir.Module) (*Program, error) {
	if err := ir.Verify(m); err != nil {
		return nil, err
	}
	p := &Program{
		Module:   m,
		frames:   map[*ir.Function]*frameInfo{},
		localOff: map[*ir.Instr]int{},
		localSz:  map[*ir.Function]int{},
		regCount: map[*ir.Function]int{},
	}
	for _, f := range m.Funcs {
		f.AssignIDs()
		n := 0
		fi := &frameInfo{offsets: map[*ir.Instr]int{}}
		localSz := 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Producing() {
					n++
				}
				if in.Op != ir.OpAlloca {
					continue
				}
				pt := in.Typ.(*clc.PointerType)
				sz := pt.Elem.Size()
				if sz == 0 {
					return nil, fmt.Errorf("vm: alloca of zero-size type in %s", f.Name)
				}
				const align = 16
				switch in.Space {
				case clc.ASLocal:
					localSz = (localSz + align - 1) &^ (align - 1)
					p.localOff[in] = localSz
					localSz += sz
				default:
					fi.size = (fi.size + align - 1) &^ (align - 1)
					fi.offsets[in] = fi.size
					fi.size += sz
				}
			}
		}
		p.frames[f] = fi
		p.localSz[f] = localSz
		p.regCount[f] = n
		p.stackBytes += fi.size + 64
	}
	return p, nil
}

// ArgKind classifies kernel arguments.
type ArgKind int

// Kernel argument kinds.
const (
	ArgBuffer ArgKind = iota
	ArgInt
	ArgFloat
	ArgLocalBuf
)

// Arg is one kernel argument.
type Arg struct {
	Kind ArgKind
	Buf  *Buffer
	I    int64
	F    float64
	// LocalBytes is the size of a dynamically allocated __local buffer.
	LocalBytes int
}

// BufArg wraps a buffer argument.
func BufArg(b *Buffer) Arg { return Arg{Kind: ArgBuffer, Buf: b} }

// IntArg wraps an integer scalar argument.
func IntArg(v int64) Arg { return Arg{Kind: ArgInt, I: v} }

// FloatArg wraps a float scalar argument.
func FloatArg(v float64) Arg { return Arg{Kind: ArgFloat, F: v} }

// LocalArg reserves a dynamically sized __local buffer.
func LocalArg(bytes int) Arg { return Arg{Kind: ArgLocalBuf, LocalBytes: bytes} }

// Config describes one NDRange launch.
type Config struct {
	GlobalSize [3]int
	LocalSize  [3]int
	Args       []Arg
	// Backend selects the execution backend ("interp", "bcode", ...).
	// Empty means DefaultBackend(): the GROVER_BACKEND environment
	// variable when set, else the interpreter.
	Backend string
}

// Normalized fills defaulted dimensions and checks divisibility.
func (c *Config) Normalized() (Config, error) {
	out := *c
	for d := 0; d < 3; d++ {
		if out.GlobalSize[d] == 0 {
			out.GlobalSize[d] = 1
		}
		if out.LocalSize[d] == 0 {
			out.LocalSize[d] = 1
		}
		if out.GlobalSize[d]%out.LocalSize[d] != 0 {
			return out, fmt.Errorf("vm: global size %d not divisible by local size %d in dim %d",
				out.GlobalSize[d], out.LocalSize[d], d)
		}
	}
	return out, nil
}

// Tracer observes one worker's execution stream (one worker models one
// simulated core; work-groups are distributed over workers round-robin and
// executed serially within a worker).
type Tracer interface {
	// GroupBegin starts a work-group with the given group coordinates.
	GroupBegin(group [3]int, linear int)
	// Access reports one memory access by work-item wi (linear id within
	// the group) executing instruction in.
	Access(in *ir.Instr, wi int, addr uint64, size int, store bool)
	// Barrier reports one work-group barrier executed by wiCount items.
	Barrier(wiCount int)
	// Instrs reports n retired non-memory instructions for work-item wi.
	Instrs(wi int, n int64)
	// GroupEnd finishes the current work-group.
	GroupEnd()
}

// LaunchOpts control scheduling, tracing, and profiling.
type LaunchOpts struct {
	// Workers is the number of concurrent group executors (simulated
	// cores when tracing). Defaults to GOMAXPROCS when zero.
	Workers int
	// TracerFor, when non-nil, supplies a tracer per worker.
	TracerFor func(worker int) Tracer
	// Profiler, when non-nil, attributes the launch's wall time and
	// retire/traffic counters to barrier-delimited regions. All four
	// backends implement the hook; nil keeps every hot path untouched.
	Profiler *Profiler
}

// Launch executes the named kernel over the NDRange on the backend
// selected by cfg.Backend. Traced launches distribute work-groups
// round-robin over workers, each worker running its groups in ascending
// order, so traced streams are deterministic regardless of backend;
// untraced launches balance groups dynamically (see GroupSchedule).
func (p *Program) Launch(kernel string, cfg Config, gmem *GlobalMem, opts *LaunchOpts) error {
	backend, err := ResolveBackend(cfg.Backend)
	if err != nil {
		return err
	}
	if backend != BackendInterp {
		ex, err := p.Executor(backend)
		if err != nil {
			return err
		}
		return ex.Launch(kernel, cfg, gmem, opts)
	}
	return p.launchInterp(kernel, cfg, gmem, opts)
}

// launchInterp runs a launch on the tree-walking interpreter.
func (p *Program) launchInterp(kernel string, cfg Config, gmem *GlobalMem, opts *LaunchOpts) error {
	fn := p.Module.Kernel(kernel)
	if fn == nil {
		return fmt.Errorf("vm: no kernel %q", kernel)
	}
	ncfg, err := cfg.Normalized()
	if err != nil {
		return err
	}
	if len(ncfg.Args) != len(fn.Params) {
		return fmt.Errorf("vm: kernel %s expects %d args, got %d", kernel, len(fn.Params), len(ncfg.Args))
	}
	workers := 1
	var tracerFor func(int) Tracer
	var prof *Profiler
	if opts != nil {
		workers = opts.Workers
		tracerFor = opts.TracerFor
		prof = opts.Profiler
	}
	if prof != nil {
		prof.LaunchBegin(kernel, BackendInterp)
		start := time.Now()
		defer func() { prof.LaunchDone(time.Since(start)) }()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	groups := [3]int{
		ncfg.GlobalSize[0] / ncfg.LocalSize[0],
		ncfg.GlobalSize[1] / ncfg.LocalSize[1],
		ncfg.GlobalSize[2] / ncfg.LocalSize[2],
	}
	nGroups := groups[0] * groups[1] * groups[2]
	if nGroups < workers {
		workers = nGroups
	}
	if workers == 0 {
		return nil
	}

	// Dynamic local buffers: lay out after the static local allocas.
	staticLocal := p.localSz[fn]
	dynOff := make([]int, len(ncfg.Args))
	localTotal := staticLocal
	for i, a := range ncfg.Args {
		if a.Kind == ArgLocalBuf {
			const align = 16
			localTotal = (localTotal + align - 1) &^ (align - 1)
			dynOff[i] = localTotal
			localTotal += a.LocalBytes
		}
	}

	// Parameter values shared by all work-items.
	params := make([]rv, len(ncfg.Args))
	for i, a := range ncfg.Args {
		switch a.Kind {
		case ArgBuffer:
			params[i] = rv{i: int64(a.Buf.Addr())}
		case ArgInt:
			params[i] = rv{i: a.I}
		case ArgFloat:
			params[i] = rv{f: a.F}
		case ArgLocalBuf:
			params[i] = rv{i: int64(MakeAddr(clc.ASLocal, uint64(dynOff[i])))}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	sched := NewGroupSchedule(nGroups, workers, tracerFor != nil)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var tr Tracer
			if tracerFor != nil {
				tr = tracerFor(worker)
			}
			ge := &groupExec{
				p: p, fn: fn, cfg: ncfg, gmem: gmem, params: params,
				localTotal: localTotal, tracer: tr, prof: prof,
			}
			cur := sched.Cursor(worker)
			for g := cur.Next(); g >= 0; g = cur.Next() {
				gz := g / (groups[0] * groups[1])
				rem := g % (groups[0] * groups[1])
				gy := rem / groups[0]
				gx := rem % groups[0]
				if err := ge.runGroup([3]int{gx, gy, gz}, g); err != nil {
					errs[worker] = fmt.Errorf("group (%d,%d,%d): %w", gx, gy, gz, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
