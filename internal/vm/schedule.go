package vm

import "sync/atomic"

// GroupSchedule hands out work-group indices to a launch's workers. Two
// policies exist:
//
//   - Static round-robin: worker w runs groups w, w+workers, w+2·workers,
//     … in ascending order. Deterministic, and required whenever
//     per-worker tracers are attached — each tracer models one simulated
//     core, so the set and order of groups a worker executes must not
//     depend on scheduling timing.
//   - Dynamic chunked grab: workers claim the next chunk of group indices
//     from a shared atomic counter, so heterogeneous group costs
//     (early-exit guards, divergent tails) no longer leave workers idle
//     behind a statically assigned straggler.
//
// Every backend (interp, bcode, wgvec) schedules through this type so the
// policy choice stays in one place.
type GroupSchedule struct {
	nGroups int
	workers int
	chunk   int
	static  bool
	next    atomic.Int64
}

// NewGroupSchedule builds a schedule over nGroups group indices for the
// given worker count. deterministic selects static round-robin; pass true
// whenever a tracer observes the launch.
func NewGroupSchedule(nGroups, workers int, deterministic bool) *GroupSchedule {
	s := &GroupSchedule{nGroups: nGroups, workers: workers, static: deterministic}
	if !s.static {
		// Several grabs per worker give load balance without hammering
		// the shared counter; the cap keeps the tail imbalance small
		// when a late chunk turns out expensive.
		s.chunk = nGroups / (workers * 8)
		if s.chunk < 1 {
			s.chunk = 1
		}
		if s.chunk > 64 {
			s.chunk = 64
		}
	}
	return s
}

// Cursor returns worker's iterator over its share of the schedule.
func (s *GroupSchedule) Cursor(worker int) GroupCursor {
	if s.static {
		return GroupCursor{s: s, pos: worker}
	}
	return GroupCursor{s: s}
}

// GroupCursor walks one worker's share of a GroupSchedule.
type GroupCursor struct {
	s   *GroupSchedule
	pos int
	end int
}

// Next returns the next group index for this worker, or -1 when the
// schedule is drained.
func (c *GroupCursor) Next() int {
	s := c.s
	if s.static {
		if c.pos >= s.nGroups {
			return -1
		}
		g := c.pos
		c.pos += s.workers
		return g
	}
	if c.pos >= c.end {
		start := int(s.next.Add(int64(s.chunk))) - s.chunk
		if start >= s.nGroups {
			return -1
		}
		c.pos = start
		c.end = start + s.chunk
		if c.end > s.nGroups {
			c.end = s.nGroups
		}
	}
	g := c.pos
	c.pos++
	return g
}
