package vm

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"

	"grover/internal/clc"
	"grover/internal/ir"
)

// BackendInterp names the built-in tree-walking interpreter backend.
const BackendInterp = "interp"

// EnvBackend is the environment variable that selects the default
// execution backend for launches whose Config.Backend is empty.
const EnvBackend = "GROVER_BACKEND"

// Executor is an alternative execution backend for a prepared Program.
// An Executor must preserve the VM contract exactly: identical results,
// identical memory-trace emission, and identical error behavior, so that
// simulated cycle counts are backend-invariant.
type Executor interface {
	Launch(kernel string, cfg Config, gmem *GlobalMem, opts *LaunchOpts) error
}

var backendsMu sync.RWMutex
var backendBuilders = map[string]func(context.Context, *Program) (Executor, error){}

// RegisterBackend makes a backend available under the given name.
// Backends register themselves from an init function; importing the
// backend package is enough to enable it. The builder receives the
// caller's context so backend compilation shows up as a span when the
// request is traced.
func RegisterBackend(name string, build func(context.Context, *Program) (Executor, error)) {
	if name == BackendInterp {
		panic("vm: cannot replace the interpreter backend")
	}
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if _, dup := backendBuilders[name]; dup {
		panic(fmt.Sprintf("vm: duplicate backend %q", name))
	}
	backendBuilders[name] = build
}

// Backends returns the names of all available backends, sorted, always
// including the built-in interpreter.
func Backends() []string {
	backendsMu.RLock()
	names := make([]string, 0, len(backendBuilders)+1)
	for n := range backendBuilders {
		names = append(names, n)
	}
	backendsMu.RUnlock()
	names = append(names, BackendInterp)
	sort.Strings(names)
	return names
}

// ValidBackend reports whether name refers to a registered backend.
func ValidBackend(name string) bool {
	if name == BackendInterp {
		return true
	}
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	_, ok := backendBuilders[name]
	return ok
}

// DefaultBackend returns the backend used when Config.Backend is empty:
// the GROVER_BACKEND environment variable when set, else the interpreter.
func DefaultBackend() string {
	if v := os.Getenv(EnvBackend); v != "" {
		return v
	}
	return BackendInterp
}

// ResolveBackend validates a requested backend name eagerly, before any
// launch work happens: the empty string resolves through DefaultBackend
// (so a bad GROVER_BACKEND value is caught here too), and an unknown
// name errors immediately, listing every registered backend.
func ResolveBackend(name string) (string, error) {
	src := "backend"
	if name == "" {
		name = DefaultBackend()
		src = EnvBackend
	}
	if !ValidBackend(name) {
		return "", fmt.Errorf("vm: unknown %s %q (available: %v)", src, name, Backends())
	}
	return name, nil
}

// Executor returns the named backend's executor for this program,
// compiling it on first use and caching it alongside the program.
func (p *Program) Executor(name string) (Executor, error) {
	return p.ExecutorCtx(context.Background(), name)
}

// ExecutorCtx is Executor with the caller's context threaded into the
// backend builder, so a first-use backend compile records its span into
// the request trace. Cache hits never touch the context.
func (p *Program) ExecutorCtx(ctx context.Context, name string) (Executor, error) {
	backendsMu.RLock()
	build, ok := backendBuilders[name]
	backendsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("vm: unknown backend %q (available: %v)", name, Backends())
	}
	p.execMu.Lock()
	defer p.execMu.Unlock()
	if e, ok := p.execs[name]; ok {
		return e, nil
	}
	e, err := build(ctx, p)
	if err != nil {
		return nil, fmt.Errorf("vm: backend %q: %w", name, err)
	}
	if p.execs == nil {
		p.execs = map[string]Executor{}
	}
	p.execs[name] = e
	return e, nil
}

// The accessors below expose the layouts Prepare computed so alternative
// backends can replicate the interpreter's memory model bit for bit.

// FrameSize returns the private-memory frame size of f in bytes.
func (p *Program) FrameSize(f *ir.Function) int { return p.frames[f].size }

// AllocaOffset returns the byte offset of an alloca within its arena:
// the function frame for private allocas, the group-local arena for
// __local allocas.
func (p *Program) AllocaOffset(in *ir.Instr, f *ir.Function) int {
	if in.Space == clc.ASLocal {
		return p.localOff[in]
	}
	return p.frames[f].offsets[in]
}

// LocalStaticSize returns the static __local arena size of f in bytes.
func (p *Program) LocalStaticSize(f *ir.Function) int { return p.localSz[f] }

// RegCount returns the number of producing instructions in f.
func (p *Program) RegCount(f *ir.Function) int { return p.regCount[f] }

// StackBytes returns the conservative per-work-item private arena size.
func (p *Program) StackBytes() int { return p.stackBytes }

// The helpers below export the interpreter's exact scalar semantics so
// alternative backends produce bit-identical values on every input.

// NormInt truncates x to the width and signedness of kind k.
func NormInt(x int64, k clc.ScalarKind) int64 { return normInt(x, k) }

// Round32 rounds x to float32 precision when k is KFloat.
func Round32(k clc.ScalarKind, x float64) float64 { return math32(k, x) }

// IntBin evaluates one integer binary op with C wrapping semantics.
func IntBin(op ir.Op, k clc.ScalarKind, a, b int64) (int64, error) { return intBin(op, k, a, b) }

// FloatBin evaluates one floating binary op, rounding to float32 when
// the kind is KFloat.
func FloatBin(op ir.Op, k clc.ScalarKind, a, b float64) (float64, error) {
	return floatBin(op, k, a, b)
}

// MathF evaluates a float math builtin on scalar operands.
func MathF(name string, k clc.ScalarKind, a []float64) (float64, error) {
	return scalarMathF(name, k, a)
}

// MathI evaluates an integer math builtin on scalar operands.
func MathI(name string, k clc.ScalarKind, a []int64) (int64, error) {
	return scalarMathI(name, k, a)
}

// ConvertKind converts one scalar value between kinds with the
// interpreter's exact semantics (float32 rounding, NaN→0, C truncation).
// Exactly one of the returned values is meaningful, selected by the
// destination kind's class.
func ConvertKind(i int64, f float64, from, to clc.ScalarKind) (int64, float64) {
	out := convertScalar(rv{i: i, f: f}, from, to)
	return out.i, out.f
}
