// Package ir defines the intermediate representation the Grover pass and
// the execution engine operate on. The IR is a typed, register-based,
// LLVM-like representation: functions contain basic blocks, blocks contain
// instructions, every instruction that produces a value is itself a Value
// usable as an operand. Mutable C variables are modeled with Alloca +
// Load/Store (no phi construction is performed); Grover's expression-tree
// builder forwards through single-store allocas, which plays the role the
// paper assigns to stopping at phi nodes.
//
// Memory is addressed through typed pointers that carry an OpenCL address
// space. Pointer arithmetic is expressed with the Index instruction (a
// single-index GEP).
package ir

import (
	"fmt"

	"grover/internal/clc"
)

// Op enumerates instruction opcodes.
type Op int

// Opcodes.
const (
	OpInvalid Op = iota

	// Memory.
	OpAlloca // allocate storage; Type is pointer to the allocated type
	OpLoad   // args: ptr
	OpStore  // args: ptr, value
	OpIndex  // args: ptr, idx → advanced pointer

	// Arithmetic (integer or floating, by result type).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot // bitwise complement

	// Comparisons (result: int 0/1). Signedness from operand types.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// OpConvert converts arg 0 to the instruction's result type.
	OpConvert

	// Vectors.
	OpExtract // args: vec; Comps[0] selects the lane
	OpInsert  // args: vec, scalar; Comps[0] selects the lane
	OpShuffle // args: vec; Comps selects lanes → smaller/reordered vector
	OpBuild   // args: lanes... → vector

	// Calls.
	OpCall     // user function; Callee set
	OpWorkItem // work-item query; Func set (get_local_id etc.), args: dim
	OpMath     // math builtin; Func set, args: operands
	OpBarrier  // work-group barrier; args: fence flags

	// Control flow (terminators).
	OpBr     // unconditional; Targets[0]
	OpCondBr // args: cond; Targets[0]=then, Targets[1]=else
	OpRet    // args: optional value
)

var opNames = map[Op]string{
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpIndex: "index",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpConvert: "convert",
	OpExtract: "extract", OpInsert: "insert", OpShuffle: "shuffle", OpBuild: "build",
	OpCall: "call", OpWorkItem: "workitem", OpMath: "math", OpBarrier: "barrier",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// Value is anything usable as an instruction operand.
type Value interface {
	// Type returns the value's type (clc types are reused by the IR).
	Type() clc.Type
	// String returns a short printable reference (e.g. "%5", "42").
	String() string
}

// ConstInt is an integer constant.
type ConstInt struct {
	Val int64
	Typ clc.Type
}

// Type returns the constant's type.
func (c *ConstInt) Type() clc.Type { return c.Typ }
func (c *ConstInt) String() string { return fmt.Sprintf("%d", c.Val) }

// ConstFloat is a floating-point constant.
type ConstFloat struct {
	Val float64
	Typ clc.Type
}

// Type returns the constant's type.
func (c *ConstFloat) Type() clc.Type { return c.Typ }
func (c *ConstFloat) String() string { return fmt.Sprintf("%g", c.Val) }

// IntConst returns an int-typed constant.
func IntConst(v int64) *ConstInt { return &ConstInt{Val: v, Typ: clc.TypeInt} }

// LongConst returns a long-typed constant.
func LongConst(v int64) *ConstInt { return &ConstInt{Val: v, Typ: clc.TypeLong} }

// FloatConst returns a float-typed constant.
func FloatConst(v float64) *ConstFloat { return &ConstFloat{Val: v, Typ: clc.TypeFloat} }

// Param is a function parameter.
type Param struct {
	Name_ string
	Typ   clc.Type
	Index int
	// Space is the address space of the pointee for pointer parameters.
	Space clc.AddrSpace
}

// Type returns the parameter type.
func (p *Param) Type() clc.Type { return p.Typ }
func (p *Param) String() string { return "%" + p.Name_ }

// Instr is a single IR instruction. Instructions producing a value
// implement Value.
type Instr struct {
	ID    int
	Op    Op
	Typ   clc.Type // result type; TypeVoid for non-producing instructions
	Args  []Value
	Block *Block

	// Func names the builtin for OpWorkItem/OpMath.
	Func string
	// Callee is the target for OpCall.
	Callee *Function
	// Targets are branch targets for OpBr/OpCondBr.
	Targets []*Block
	// Comps are lane selectors for vector ops.
	Comps []int
	// VarName records the source variable for OpAlloca (diagnostics and
	// Grover's reports).
	VarName string
	// Space is the address space for OpAlloca.
	Space clc.AddrSpace
	// Pos is the originating source position.
	Pos clc.Pos
}

// Type returns the instruction result type.
func (in *Instr) Type() clc.Type { return in.Typ }

func (in *Instr) String() string { return fmt.Sprintf("%%%d", in.ID) }

// Producing reports whether the instruction defines a value.
func (in *Instr) Producing() bool {
	return in.Typ != nil && !clc.TypesEqual(in.Typ, clc.TypeVoid)
}

// Block is a basic block.
type Block struct {
	Name   string
	Instrs []*Instr
	Fn     *Function
}

// Terminator returns the block's final instruction, or nil when the block
// is not yet terminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Function is an IR function.
type Function struct {
	Name     string
	IsKernel bool
	Ret      clc.Type
	Params   []*Param
	Blocks   []*Block

	nextID    int
	nextBlock int
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new basic block with a unique name derived from hint.
func (f *Function) NewBlock(hint string) *Block {
	b := &Block{Name: fmt.Sprintf("%s.%d", hint, f.nextBlock), Fn: f}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	return b
}

// AssignIDs renumbers all value-producing instructions (used after
// transformation passes insert or delete instructions).
func (f *Function) AssignIDs() {
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Producing() {
				in.ID = id
				id++
			} else {
				in.ID = -1
			}
		}
	}
	f.nextID = id
}

// Module is a compiled translation unit.
type Module struct {
	Name  string
	Funcs []*Function
}

// Kernel returns the kernel function with the given name, or nil.
func (m *Module) Kernel(name string) *Function {
	for _, f := range m.Funcs {
		if f.IsKernel && f.Name == name {
			return f
		}
	}
	return nil
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Kernels returns all kernel functions in declaration order.
func (m *Module) Kernels() []*Function {
	var out []*Function
	for _, f := range m.Funcs {
		if f.IsKernel {
			out = append(out, f)
		}
	}
	return out
}

// PointeeSize returns the byte size addressed by one Index step on ptr.
// For pointer-to-array it is the array element size; otherwise the pointee
// size.
func PointeeSize(ptr clc.Type) int {
	pt, ok := ptr.(*clc.PointerType)
	if !ok {
		return 0
	}
	if at, ok := pt.Elem.(*clc.ArrayType); ok {
		return at.Elem.Size()
	}
	return pt.Elem.Size()
}

// IndexResultType returns the pointer type produced by Index on ptr.
func IndexResultType(ptr clc.Type) clc.Type {
	pt, ok := ptr.(*clc.PointerType)
	if !ok {
		return ptr
	}
	if at, ok := pt.Elem.(*clc.ArrayType); ok {
		return &clc.PointerType{Elem: at.Elem, Space: pt.Space}
	}
	return pt
}

// PointerSpace returns the address space of a pointer-typed value, or
// ASPrivate for non-pointers.
func PointerSpace(t clc.Type) clc.AddrSpace {
	if pt, ok := t.(*clc.PointerType); ok {
		return pt.Space
	}
	return clc.ASPrivate
}
