package ir

// CloneModule deep-copies a module. The Grover pass transforms a clone so
// callers keep the original kernel for side-by-side comparison.
func CloneModule(m *Module) *Module {
	out := &Module{Name: m.Name}
	fnMap := map[*Function]*Function{}
	for _, f := range m.Funcs {
		nf := &Function{Name: f.Name, IsKernel: f.IsKernel, Ret: f.Ret,
			nextID: f.nextID, nextBlock: f.nextBlock}
		for _, p := range f.Params {
			np := *p
			nf.Params = append(nf.Params, &np)
		}
		out.Funcs = append(out.Funcs, nf)
		fnMap[f] = nf
	}
	for fi, f := range m.Funcs {
		nf := out.Funcs[fi]
		valMap := map[Value]Value{}
		for i, p := range f.Params {
			valMap[p] = nf.Params[i]
		}
		blkMap := map[*Block]*Block{}
		for _, b := range f.Blocks {
			nb := &Block{Name: b.Name, Fn: nf}
			nf.Blocks = append(nf.Blocks, nb)
			blkMap[b] = nb
		}
		// First pass: clone instructions (operands patched after, since
		// the IR permits uses that lexically precede definitions across
		// blocks).
		for _, b := range f.Blocks {
			nb := blkMap[b]
			for _, in := range b.Instrs {
				ni := &Instr{
					ID: in.ID, Op: in.Op, Typ: in.Typ, Func: in.Func,
					VarName: in.VarName, Space: in.Space, Pos: in.Pos,
					Block: nb,
				}
				if in.Callee != nil {
					ni.Callee = fnMap[in.Callee]
				}
				if len(in.Comps) > 0 {
					ni.Comps = append([]int(nil), in.Comps...)
				}
				nb.Instrs = append(nb.Instrs, ni)
				valMap[in] = ni
			}
		}
		// Second pass: patch operands and branch targets.
		for _, b := range f.Blocks {
			nb := blkMap[b]
			for ii, in := range b.Instrs {
				ni := nb.Instrs[ii]
				for _, a := range in.Args {
					na, ok := valMap[a]
					if !ok {
						na = a // constants are immutable and shareable
					}
					ni.Args = append(ni.Args, na)
				}
				for _, t := range in.Targets {
					ni.Targets = append(ni.Targets, blkMap[t])
				}
			}
		}
	}
	return out
}
