package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a readable textual form.
func (m *Module) String() string {
	var sb strings.Builder
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(f.Format())
	}
	return sb.String()
}

// Format renders the function in a readable textual form.
func (f *Function) Format() string {
	var sb strings.Builder
	kw := "func"
	if f.IsKernel {
		kw = "kernel"
	}
	var params []string
	for _, p := range f.Params {
		params = append(params, fmt.Sprintf("%s %%%s", p.Typ, p.Name_))
	}
	fmt.Fprintf(&sb, "%s %s %s(%s) {\n", kw, f.Ret, f.Name, strings.Join(params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(in.Format())
			sb.WriteString("\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Format renders one instruction.
func (in *Instr) Format() string {
	var sb strings.Builder
	if in.Producing() {
		fmt.Fprintf(&sb, "%%%d = ", in.ID)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&sb, " %s %s", in.Space, in.Typ.(interface{ String() string }))
		if in.VarName != "" {
			fmt.Fprintf(&sb, " ; %s", in.VarName)
		}
		return sb.String()
	case OpWorkItem, OpMath:
		fmt.Fprintf(&sb, " %s", in.Func)
	case OpCall:
		fmt.Fprintf(&sb, " %s", in.Callee.Name)
	}
	for i, a := range in.Args {
		if i == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	if len(in.Comps) > 0 {
		fmt.Fprintf(&sb, " lanes%v", in.Comps)
	}
	for i, t := range in.Targets {
		if i == 0 && len(in.Args) == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Name)
	}
	if in.Producing() {
		fmt.Fprintf(&sb, " : %s", in.Typ)
	}
	return sb.String()
}
