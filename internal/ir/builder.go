package ir

import (
	"grover/internal/clc"
)

// Builder emits instructions at the end of a current block.
type Builder struct {
	Fn  *Function
	Cur *Block
}

// NewBuilder returns a builder positioned at the function's entry block
// (creating one when missing).
func NewBuilder(f *Function) *Builder {
	b := &Builder{Fn: f}
	if len(f.Blocks) == 0 {
		b.Cur = f.NewBlock("entry")
	} else {
		b.Cur = f.Blocks[0]
	}
	return b
}

// SetBlock repositions the builder at the end of blk.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// emit appends in to the current block, assigning an ID when it produces a
// value.
func (b *Builder) emit(in *Instr) *Instr {
	if in.Producing() {
		in.ID = b.Fn.nextID
		b.Fn.nextID++
	} else {
		in.ID = -1
	}
	in.Block = b.Cur
	b.Cur.Instrs = append(b.Cur.Instrs, in)
	return in
}

// Terminated reports whether the current block already ends in a
// terminator; further emission would be dead and is skipped by callers.
func (b *Builder) Terminated() bool { return b.Cur.Terminator() != nil }

// Alloca allocates storage for typ in the given address space, returning a
// pointer value.
func (b *Builder) Alloca(typ clc.Type, space clc.AddrSpace, name string, pos clc.Pos) *Instr {
	return b.emit(&Instr{
		Op:      OpAlloca,
		Typ:     &clc.PointerType{Elem: typ, Space: space},
		Space:   space,
		VarName: name,
		Pos:     pos,
	})
}

// Load loads a value through ptr.
func (b *Builder) Load(ptr Value, pos clc.Pos) *Instr {
	pt := ptr.Type().(*clc.PointerType)
	return b.emit(&Instr{Op: OpLoad, Typ: pt.Elem, Args: []Value{ptr}, Pos: pos})
}

// Store writes val through ptr.
func (b *Builder) Store(ptr, val Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpStore, Typ: clc.TypeVoid, Args: []Value{ptr, val}, Pos: pos})
}

// Index advances ptr by idx elements (a one-index GEP).
func (b *Builder) Index(ptr, idx Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpIndex, Typ: IndexResultType(ptr.Type()), Args: []Value{ptr, idx}, Pos: pos})
}

// Bin emits a binary arithmetic instruction with the given result type.
func (b *Builder) Bin(op Op, typ clc.Type, l, r Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: op, Typ: typ, Args: []Value{l, r}, Pos: pos})
}

// Un emits a unary instruction.
func (b *Builder) Un(op Op, typ clc.Type, x Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: op, Typ: typ, Args: []Value{x}, Pos: pos})
}

// Cmp emits a comparison producing int 0/1.
func (b *Builder) Cmp(op Op, l, r Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: op, Typ: clc.TypeInt, Args: []Value{l, r}, Pos: pos})
}

// Convert converts x to typ (no-op conversions are elided).
func (b *Builder) Convert(x Value, typ clc.Type, pos clc.Pos) Value {
	if clc.TypesEqual(x.Type(), typ) {
		return x
	}
	return b.emit(&Instr{Op: OpConvert, Typ: typ, Args: []Value{x}, Pos: pos})
}

// Extract extracts lane comp from a vector.
func (b *Builder) Extract(vec Value, comp int, pos clc.Pos) *Instr {
	vt := vec.Type().(*clc.VectorType)
	return b.emit(&Instr{Op: OpExtract, Typ: vt.Elem, Args: []Value{vec}, Comps: []int{comp}, Pos: pos})
}

// Insert replaces lane comp of a vector with a scalar, yielding the new
// vector.
func (b *Builder) Insert(vec, scalar Value, comp int, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpInsert, Typ: vec.Type(), Args: []Value{vec, scalar}, Comps: []int{comp}, Pos: pos})
}

// Shuffle selects lanes comps from a vector.
func (b *Builder) Shuffle(vec Value, comps []int, typ clc.Type, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpShuffle, Typ: typ, Args: []Value{vec}, Comps: comps, Pos: pos})
}

// BuildVec constructs a vector from scalar lanes.
func (b *Builder) BuildVec(typ *clc.VectorType, lanes []Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpBuild, Typ: typ, Args: lanes, Pos: pos})
}

// Call emits a user-function call.
func (b *Builder) Call(callee *Function, args []Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpCall, Typ: callee.Ret, Callee: callee, Args: args, Pos: pos})
}

// WorkItem emits a work-item query builtin (get_local_id etc.).
func (b *Builder) WorkItem(fn string, dim Value, pos clc.Pos) *Instr {
	args := []Value{}
	if dim != nil {
		args = append(args, dim)
	}
	return b.emit(&Instr{Op: OpWorkItem, Typ: clc.TypeULong, Func: fn, Args: args, Pos: pos})
}

// Math emits a math builtin call.
func (b *Builder) Math(fn string, typ clc.Type, args []Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpMath, Typ: typ, Func: fn, Args: args, Pos: pos})
}

// Barrier emits a work-group barrier.
func (b *Builder) Barrier(flags Value, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpBarrier, Typ: clc.TypeVoid, Args: []Value{flags}, Pos: pos})
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *Block, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpBr, Typ: clc.TypeVoid, Targets: []*Block{target}, Pos: pos})
}

// CondBr branches to then/els on cond != 0.
func (b *Builder) CondBr(cond Value, then, els *Block, pos clc.Pos) *Instr {
	return b.emit(&Instr{Op: OpCondBr, Typ: clc.TypeVoid, Args: []Value{cond}, Targets: []*Block{then, els}, Pos: pos})
}

// Ret emits a return; val may be nil for void functions.
func (b *Builder) Ret(val Value, pos clc.Pos) *Instr {
	var args []Value
	if val != nil {
		args = []Value{val}
	}
	return b.emit(&Instr{Op: OpRet, Typ: clc.TypeVoid, Args: args, Pos: pos})
}

// InsertBefore inserts a new instruction before pos within pos's block,
// assigning it a fresh ID. Used by the Grover pass when materializing the
// new global load (nGL) chain in front of an LL instruction.
func InsertBefore(pos *Instr, in *Instr) *Instr {
	blk := pos.Block
	fn := blk.Fn
	if in.Producing() {
		in.ID = fn.nextID
		fn.nextID++
	} else {
		in.ID = -1
	}
	in.Block = blk
	for i, cur := range blk.Instrs {
		if cur == pos {
			blk.Instrs = append(blk.Instrs[:i], append([]*Instr{in}, blk.Instrs[i:]...)...)
			return in
		}
	}
	panic("ir: InsertBefore position not found in its block")
}

// RemoveInstr deletes in from its block. The caller is responsible for
// ensuring no remaining uses.
func RemoveInstr(in *Instr) {
	blk := in.Block
	for i, cur := range blk.Instrs {
		if cur == in {
			blk.Instrs = append(blk.Instrs[:i], blk.Instrs[i+1:]...)
			return
		}
	}
}

// ReplaceUses rewrites every operand use of old with new across fn.
func ReplaceUses(fn *Function, old, new Value) {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}
