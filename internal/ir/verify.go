package ir

import (
	"fmt"

	"grover/internal/clc"
)

// Verify checks structural invariants of the module: every block ends in
// exactly one terminator, operands are defined before use (within the
// block ordering of a reverse-post-order walk this is approximated by
// requiring operands to belong to the same function), branch targets belong
// to the same function, and memory ops have pointer operands.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := VerifyFunc(f); err != nil {
			return fmt.Errorf("function %s: %w", f.Name, err)
		}
	}
	return nil
}

// VerifyFunc checks one function.
func VerifyFunc(f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	// First pass: collect all defined instruction values (the IR is not
	// strictly SSA-ordered across blocks; dominance is not checked).
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Producing() {
				defined[in] = true
			}
		}
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if in.Op.IsTerminator() {
					return fmt.Errorf("block %s: terminator %s not at end", b.Name, in.Op)
				}
				return fmt.Errorf("block %s: missing terminator", b.Name)
			}
			if in.Block != b {
				return fmt.Errorf("block %s: instruction %s has wrong block link", b.Name, in.Format())
			}
			for _, a := range in.Args {
				switch a.(type) {
				case *ConstInt, *ConstFloat:
				default:
					if !defined[a] {
						return fmt.Errorf("block %s: %s uses undefined operand %s", b.Name, in.Format(), a)
					}
				}
			}
			for _, t := range in.Targets {
				if !blockSet[t] {
					return fmt.Errorf("block %s: branch to foreign block %s", b.Name, t.Name)
				}
			}
			switch in.Op {
			case OpLoad:
				if len(in.Args) != 1 {
					return fmt.Errorf("load needs 1 operand")
				}
				if _, ok := in.Args[0].Type().(*clc.PointerType); !ok {
					return fmt.Errorf("load operand is not a pointer: %s", in.Args[0].Type())
				}
			case OpStore:
				if len(in.Args) != 2 {
					return fmt.Errorf("store needs 2 operands")
				}
				if _, ok := in.Args[0].Type().(*clc.PointerType); !ok {
					return fmt.Errorf("store target is not a pointer: %s", in.Args[0].Type())
				}
			case OpIndex:
				if len(in.Args) != 2 {
					return fmt.Errorf("index needs 2 operands")
				}
				if _, ok := in.Args[0].Type().(*clc.PointerType); !ok {
					return fmt.Errorf("index base is not a pointer: %s", in.Args[0].Type())
				}
			case OpCondBr:
				if len(in.Targets) != 2 {
					return fmt.Errorf("condbr needs 2 targets")
				}
			case OpBr:
				if len(in.Targets) != 1 {
					return fmt.Errorf("br needs 1 target")
				}
			case OpCall:
				if in.Callee == nil {
					return fmt.Errorf("call without callee")
				}
				if len(in.Args) != len(in.Callee.Params) {
					return fmt.Errorf("call to %s: %d args, want %d", in.Callee.Name, len(in.Args), len(in.Callee.Params))
				}
			}
		}
	}
	return nil
}
