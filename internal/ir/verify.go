package ir

import (
	"fmt"

	"grover/internal/analysis/graph"
	"grover/internal/clc"
)

// Verify checks structural invariants of the module: every block ends in
// exactly one terminator, branch targets belong to the same function,
// memory ops have pointer operands, opcode-specific arity and type rules
// hold (OpBarrier, OpAlloca, OpWorkItem, ...), every use of an
// instruction value is dominated by its definition, and pointer values
// feeding OpIndex and load/store addresses obey the chain-shape rule
// (see verifyPointerProducer).
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := VerifyFunc(f); err != nil {
			return fmt.Errorf("function %s: %w", f.Name, err)
		}
	}
	return nil
}

// workItemFuncs are the valid OpWorkItem query names and whether they take
// a dimension argument.
var workItemFuncs = map[string]bool{
	"get_global_id": true, "get_local_id": true, "get_group_id": true,
	"get_global_size": true, "get_local_size": true, "get_num_groups": true,
	"get_work_dim": false,
}

// VerifyFunc checks one function.
func VerifyFunc(f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Producing() {
				defined[in] = true
			}
		}
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if in.Op.IsTerminator() {
					return fmt.Errorf("block %s: terminator %s not at end", b.Name, in.Op)
				}
				return fmt.Errorf("block %s: missing terminator", b.Name)
			}
			if in.Block != b {
				return fmt.Errorf("block %s: instruction %s has wrong block link", b.Name, in.Format())
			}
			for _, a := range in.Args {
				switch a.(type) {
				case *ConstInt, *ConstFloat:
				default:
					if !defined[a] {
						return fmt.Errorf("block %s: %s uses undefined operand %s", b.Name, in.Format(), a)
					}
				}
			}
			for _, t := range in.Targets {
				if !blockSet[t] {
					return fmt.Errorf("block %s: branch to foreign block %s", b.Name, t.Name)
				}
			}
			if err := verifyInstr(in); err != nil {
				return fmt.Errorf("block %s: %s: %w", b.Name, in.Format(), err)
			}
		}
	}
	return verifyDominance(f)
}

// verifyInstr applies per-opcode arity and type rules.
func verifyInstr(in *Instr) error {
	switch in.Op {
	case OpLoad:
		if len(in.Args) != 1 {
			return fmt.Errorf("load needs 1 operand")
		}
		if _, ok := in.Args[0].Type().(*clc.PointerType); !ok {
			return fmt.Errorf("load operand is not a pointer: %s", in.Args[0].Type())
		}
		if err := verifyPointerProducer(in.Args[0]); err != nil {
			return fmt.Errorf("load address: %w", err)
		}
	case OpStore:
		if len(in.Args) != 2 {
			return fmt.Errorf("store needs 2 operands")
		}
		if _, ok := in.Args[0].Type().(*clc.PointerType); !ok {
			return fmt.Errorf("store target is not a pointer: %s", in.Args[0].Type())
		}
		if err := verifyPointerProducer(in.Args[0]); err != nil {
			return fmt.Errorf("store address: %w", err)
		}
	case OpIndex:
		if len(in.Args) != 2 {
			return fmt.Errorf("index needs 2 operands")
		}
		if _, ok := in.Args[0].Type().(*clc.PointerType); !ok {
			return fmt.Errorf("index base is not a pointer: %s", in.Args[0].Type())
		}
		if err := verifyPointerProducer(in.Args[0]); err != nil {
			return fmt.Errorf("index base: %w", err)
		}
	case OpConvert:
		if _, ok := in.Typ.(*clc.PointerType); ok {
			if len(in.Args) != 1 {
				return fmt.Errorf("convert needs 1 operand")
			}
			if _, src := in.Args[0].Type().(*clc.PointerType); !src {
				return fmt.Errorf("pointer convert from non-pointer %s", in.Args[0].Type())
			}
		}
	case OpAlloca:
		if len(in.Args) != 0 {
			return fmt.Errorf("alloca takes no operands")
		}
		if _, ok := in.Typ.(*clc.PointerType); !ok {
			return fmt.Errorf("alloca result is not a pointer: %s", in.Typ)
		}
	case OpBarrier:
		if len(in.Args) > 1 {
			return fmt.Errorf("barrier takes at most 1 fence-flags operand")
		}
		if len(in.Args) == 1 {
			st, ok := in.Args[0].Type().(*clc.ScalarType)
			if !ok || !st.Kind.IsInteger() {
				return fmt.Errorf("barrier fence flags are not an integer: %s", in.Args[0].Type())
			}
		}
	case OpWorkItem:
		takesDim, known := workItemFuncs[in.Func]
		if !known {
			return fmt.Errorf("unknown work-item query %q", in.Func)
		}
		want := 0
		if takesDim {
			want = 1
		}
		if len(in.Args) != want {
			return fmt.Errorf("%s needs %d operand(s), has %d", in.Func, want, len(in.Args))
		}
		if want == 1 {
			st, ok := in.Args[0].Type().(*clc.ScalarType)
			if !ok || !st.Kind.IsInteger() {
				return fmt.Errorf("%s dimension is not an integer: %s", in.Func, in.Args[0].Type())
			}
		}
	case OpCondBr:
		if len(in.Targets) != 2 {
			return fmt.Errorf("condbr needs 2 targets")
		}
	case OpBr:
		if len(in.Targets) != 1 {
			return fmt.Errorf("br needs 1 target")
		}
	case OpCall:
		if in.Callee == nil {
			return fmt.Errorf("call without callee")
		}
		if len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("call to %s: %d args, want %d", in.Callee.Name, len(in.Args), len(in.Callee.Params))
		}
	}
	return nil
}

// verifyPointerProducer enforces the pointer chain-shape rule that the
// static access collector (analysis/memaccess) and the Grover
// correspondence solver rely on: every pointer value feeding an OpIndex
// base or a load/store address must be produced by a pointer-typed
// parameter, an OpAlloca, another OpIndex, a pointer-to-pointer
// OpConvert, or an OpLoad (a pointer variable; chains rooted there are
// opaque to the collector but legal IR). Pointer values synthesized by
// any other opcode — integer arithmetic cast back to a pointer, vector
// ops, calls — would make the collector's pointerRoot walk ill-founded,
// so Verify rejects them structurally.
//
// Note this is a shape rule over value edges, not a block rule: a chain
// link may live in a different block than its user (a loop-invariant
// row pointer in an outer loop body, or a prefix hoisted to a preheader
// by the hoist-addr rewrite), but only in a block that dominates the
// use — verifyDominance establishes that, so together the two checks
// guarantee every chain the collector walks is well-defined at its
// access site.
func verifyPointerProducer(v Value) error {
	switch x := v.(type) {
	case *Param:
		return nil // pointer-ness is checked by the caller's opcode rule
	case *Instr:
		switch x.Op {
		case OpAlloca, OpIndex, OpConvert, OpLoad:
			return nil
		}
		return fmt.Errorf("pointer produced by %s (want param, alloca, index, convert, or load)", x.Op)
	}
	return fmt.Errorf("pointer produced by non-instruction %T", v)
}

// verifyDominance enforces defs-dominate-uses over the dominator tree:
// every use of an instruction value must be in a block dominated by the
// definition's block, and within one block the definition must come first.
// Uses inside blocks unreachable from the entry are exempt (dominance is
// undefined there; dead blocks are sealed by the lowerer and removed by
// cleanup passes).
func verifyDominance(f *Function) error {
	idx := map[*Block]int{}
	for i, b := range f.Blocks {
		idx[b] = i
	}
	succ := make([][]int, len(f.Blocks))
	for i, b := range f.Blocks {
		for _, s := range b.Succs() {
			succ[i] = append(succ[i], idx[s])
		}
	}
	dom := graph.Dominators(len(f.Blocks), succ, 0)
	// pos gives each instruction's index within its block.
	pos := map[*Instr]int{}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pos[in] = i
		}
	}
	for bi, b := range f.Blocks {
		if !dom.Reachable(bi) {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				def, ok := a.(*Instr)
				if !ok {
					continue // constants and parameters dominate everything
				}
				di, known := idx[def.Block]
				if !known {
					return fmt.Errorf("block %s: %s uses value %s from a foreign function", b.Name, in.Format(), def)
				}
				if di == bi {
					if pos[def] >= pos[in] {
						return fmt.Errorf("block %s: %s uses %s before its definition", b.Name, in.Format(), def)
					}
					continue
				}
				if !dom.Dominates(di, bi) {
					return fmt.Errorf("block %s: %s uses %s whose definition (block %s) does not dominate the use",
						b.Name, in.Format(), def, def.Block.Name)
				}
			}
		}
	}
	return nil
}
