package ir

import (
	"strings"
	"testing"

	"grover/internal/clc"
)

// buildTestFunc constructs: kernel with one loop summing a buffer.
func buildTestFunc() (*Module, *Function) {
	fn := &Function{Name: "k", IsKernel: true, Ret: clc.TypeVoid}
	p := &Param{Name_: "buf", Typ: &clc.PointerType{Elem: clc.TypeFloat, Space: clc.ASGlobal}, Index: 0}
	fn.Params = []*Param{p}
	b := NewBuilder(fn)
	acc := b.Alloca(clc.TypeFloat, clc.ASPrivate, "acc", clc.Pos{})
	i := b.Alloca(clc.TypeInt, clc.ASPrivate, "i", clc.Pos{})
	b.Store(acc, FloatConst(0), clc.Pos{})
	b.Store(i, IntConst(0), clc.Pos{})
	cond := fn.NewBlock("cond")
	body := fn.NewBlock("body")
	exit := fn.NewBlock("exit")
	b.Br(cond, clc.Pos{})
	b.SetBlock(cond)
	iv := b.Load(i, clc.Pos{})
	cmp := b.Cmp(OpLt, iv, IntConst(8), clc.Pos{})
	b.CondBr(cmp, body, exit, clc.Pos{})
	b.SetBlock(body)
	iv2 := b.Load(i, clc.Pos{})
	idxL := b.Convert(iv2, clc.TypeLong, clc.Pos{})
	ptr := b.Index(p, idxL, clc.Pos{})
	v := b.Load(ptr, clc.Pos{})
	a := b.Load(acc, clc.Pos{})
	sum := b.Bin(OpAdd, clc.TypeFloat, a, v, clc.Pos{})
	b.Store(acc, sum, clc.Pos{})
	next := b.Bin(OpAdd, clc.TypeInt, iv2, IntConst(1), clc.Pos{})
	b.Store(i, next, clc.Pos{})
	b.Br(cond, clc.Pos{})
	b.SetBlock(exit)
	b.Ret(nil, clc.Pos{})
	m := &Module{Name: "t", Funcs: []*Function{fn}}
	return m, fn
}

func TestVerifyValid(t *testing.T) {
	m, _ := buildTestFunc()
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m, fn := buildTestFunc()
	// Chop the terminator off the last block.
	last := fn.Blocks[len(fn.Blocks)-1]
	last.Instrs = last.Instrs[:0]
	if err := Verify(m); err == nil {
		t.Fatal("expected error for empty/unterminated block")
	}
}

func TestVerifyCatchesBadOperand(t *testing.T) {
	m, fn := buildTestFunc()
	// Use a value from a different function.
	foreign := &Instr{Op: OpWorkItem, Typ: clc.TypeULong, Func: "get_local_id", ID: 999}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAdd {
				in.Args[0] = foreign
				if err := Verify(m); err == nil {
					t.Fatal("expected undefined-operand error")
				}
				return
			}
		}
	}
}

func TestVerifyCatchesNonPointerLoad(t *testing.T) {
	m, fn := buildTestFunc()
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpLoad {
				in.Args[0] = IntConst(3)
				if err := Verify(m); err == nil {
					t.Fatal("expected non-pointer load error")
				}
				return
			}
		}
	}
}

// TestVerifyPointerChainShape exercises the chain-shape rule: pointer
// values reaching an index base (or load/store address) must come from
// a param, alloca, index, pointer convert, or pointer load — never from
// arithmetic. The valid fixture already contains a param-rooted chain
// used across blocks (alloca in entry, loads in the loop body), which
// TestVerifyValid accepts; here we corrupt a base and expect rejection.
func TestVerifyPointerChainShape(t *testing.T) {
	m, fn := buildTestFunc()
	ptrTy := &clc.PointerType{Elem: clc.TypeFloat, Space: clc.ASGlobal}
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if in.Op != OpIndex {
				continue
			}
			// Synthesize a pointer with integer arithmetic and slide it in
			// as the index base, keeping defs-dominate-uses intact.
			bad := &Instr{Op: OpAdd, Typ: ptrTy, Args: []Value{in.Args[0], in.Args[0]}, Block: b}
			b.Instrs = append(b.Instrs[:i], append([]*Instr{bad}, b.Instrs[i:]...)...)
			in.Args[0] = bad
			err := Verify(m)
			if err == nil {
				t.Fatal("expected chain-shape error for arithmetic-produced pointer")
			}
			if !strings.Contains(err.Error(), "pointer produced by add") {
				t.Fatalf("wrong error: %v", err)
			}
			return
		}
	}
	t.Fatal("fixture has no OpIndex")
}

// TestVerifyPointerConvertSource: a pointer-typed convert must consume a
// pointer (pointer casts), never an integer.
func TestVerifyPointerConvertSource(t *testing.T) {
	m, fn := buildTestFunc()
	ptrTy := &clc.PointerType{Elem: clc.TypeFloat, Space: clc.ASGlobal}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpIndex {
				cast := &Instr{Op: OpConvert, Typ: ptrTy, Args: []Value{IntConst(64)}, Block: b}
				InsertBefore(in, cast)
				in.Args[0] = cast
				err := Verify(m)
				if err == nil {
					t.Fatal("expected pointer-convert-from-integer error")
				}
				if !strings.Contains(err.Error(), "pointer convert from non-pointer") {
					t.Fatalf("wrong error: %v", err)
				}
				return
			}
		}
	}
	t.Fatal("fixture has no OpIndex")
}

func TestCloneModuleIndependence(t *testing.T) {
	m, fn := buildTestFunc()
	clone := CloneModule(m)
	if err := Verify(clone); err != nil {
		t.Fatalf("clone verify: %v", err)
	}
	cfn := clone.Func("k")
	if cfn == nil || cfn == fn {
		t.Fatal("clone should contain a distinct function")
	}
	if len(cfn.Blocks) != len(fn.Blocks) {
		t.Fatalf("clone has %d blocks, want %d", len(cfn.Blocks), len(fn.Blocks))
	}
	// Mutating the clone must not affect the original.
	nInstr := func(f *Function) int {
		total := 0
		for _, b := range f.Blocks {
			total += len(b.Instrs)
		}
		return total
	}
	before := nInstr(fn)
	cfn.Blocks[0].Instrs = cfn.Blocks[0].Instrs[:1]
	if nInstr(fn) != before {
		t.Fatal("mutating clone affected original")
	}
	// Cloned instructions must not reference original blocks or values.
	origInstrs := map[*Instr]bool{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			origInstrs[in] = true
		}
	}
	for _, b := range clone.Func("k").Blocks {
		for _, in := range b.Instrs {
			if origInstrs[in] {
				t.Fatal("clone shares an instruction with the original")
			}
			for _, a := range in.Args {
				if ai, ok := a.(*Instr); ok && origInstrs[ai] {
					t.Fatal("clone references an original instruction")
				}
			}
		}
	}
}

func TestInsertRemoveReplace(t *testing.T) {
	m, fn := buildTestFunc()
	_ = m
	var add *Instr
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAdd && clc.TypesEqual(in.Typ, clc.TypeFloat) {
				add = in
			}
		}
	}
	if add == nil {
		t.Fatal("no add found")
	}
	neg := &Instr{Op: OpNeg, Typ: clc.TypeFloat, Args: []Value{add.Args[0]}}
	InsertBefore(add, neg)
	if neg.Block != add.Block {
		t.Error("InsertBefore should set block link")
	}
	pos := -1
	for i, in := range add.Block.Instrs {
		if in == neg {
			pos = i
		}
		if in == add && pos == -1 {
			t.Error("neg not inserted before add")
		}
	}
	ReplaceUses(fn, add.Args[0], neg)
	if add.Args[0] != neg {
		t.Error("ReplaceUses missed the add")
	}
	// Undo to keep the self-reference out, then remove.
	RemoveInstr(neg)
	for _, in := range add.Block.Instrs {
		if in == neg {
			t.Error("RemoveInstr left the instruction behind")
		}
	}
}

func TestAssignIDs(t *testing.T) {
	_, fn := buildTestFunc()
	fn.AssignIDs()
	seen := map[int]bool{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Producing() {
				if in.ID < 0 || seen[in.ID] {
					t.Fatalf("bad or duplicate ID %d", in.ID)
				}
				seen[in.ID] = true
			} else if in.ID != -1 {
				t.Fatalf("non-producing instruction has ID %d", in.ID)
			}
		}
	}
}

func TestPrinting(t *testing.T) {
	m, _ := buildTestFunc()
	s := m.String()
	for _, frag := range []string{"kernel void k", "alloca", "load", "store", "condbr", "ret", "index"} {
		if !strings.Contains(s, frag) {
			t.Errorf("printed IR missing %q:\n%s", frag, s)
		}
	}
}

func TestPointeeSize(t *testing.T) {
	fptr := &clc.PointerType{Elem: clc.TypeFloat, Space: clc.ASGlobal}
	if PointeeSize(fptr) != 4 {
		t.Error("float* step should be 4")
	}
	arr := &clc.PointerType{Elem: &clc.ArrayType{Elem: clc.TypeFloat, Len: 16}, Space: clc.ASLocal}
	if PointeeSize(arr) != 4 {
		t.Error("(*[16]float) step should be elem size 4")
	}
	arr2 := &clc.PointerType{Elem: &clc.ArrayType{Elem: &clc.ArrayType{Elem: clc.TypeFloat, Len: 16}, Len: 8}, Space: clc.ASLocal}
	if PointeeSize(arr2) != 64 {
		t.Error("(*[8][16]float) step should be inner array size 64")
	}
	it := IndexResultType(arr2).(*clc.PointerType)
	if _, ok := it.Elem.(*clc.ArrayType); !ok {
		t.Error("indexing [8][16] should yield pointer to [16]")
	}
}

func TestModuleLookups(t *testing.T) {
	m, fn := buildTestFunc()
	if m.Kernel("k") != fn {
		t.Error("Kernel lookup failed")
	}
	if m.Kernel("absent") != nil {
		t.Error("Kernel should return nil for unknown names")
	}
	if len(m.Kernels()) != 1 {
		t.Error("Kernels() should list the kernel")
	}
}
