package bcode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

// regFile is one register-file instance shaped for a BFunc: dense scalar
// banks plus per-register lane slices for the vector banks.
type regFile struct {
	ri []int64
	rf []float64
	vi [][]int64
	vf [][]float64
}

// ensure resizes the file to bf's shape, reusing backing storage.
func (r *regFile) ensure(bf *BFunc) {
	if cap(r.ri) < bf.NInt {
		r.ri = make([]int64, bf.NInt)
	}
	r.ri = r.ri[:bf.NInt]
	if cap(r.rf) < bf.NFlt {
		r.rf = make([]float64, bf.NFlt)
	}
	r.rf = r.rf[:bf.NFlt]
	if cap(r.vi) < len(bf.VecILens) {
		grown := make([][]int64, len(bf.VecILens))
		copy(grown, r.vi)
		r.vi = grown
	}
	r.vi = r.vi[:len(bf.VecILens)]
	for i, n := range bf.VecILens {
		if cap(r.vi[i]) < n {
			r.vi[i] = make([]int64, n)
		}
		r.vi[i] = r.vi[i][:n]
	}
	if cap(r.vf) < len(bf.VecFLens) {
		grown := make([][]float64, len(bf.VecFLens))
		copy(grown, r.vf)
		r.vf = grown
	}
	r.vf = r.vf[:len(bf.VecFLens)]
	for i, n := range bf.VecFLens {
		if cap(r.vf[i]) < n {
			r.vf[i] = make([]float64, n)
		}
		r.vf[i] = r.vf[i][:n]
	}
}

// bFrame is a pooled register file for one call depth.
type bFrame struct {
	regs regFile
}

// wCtx is one work-item's resumable execution state. The current register
// file is exposed as direct slice fields (swapped on call/return) so the
// dispatch loop indexes banks without indirection.
type wCtx struct {
	wi int
	bf *BFunc
	pc int32

	ri  []int64
	rfl []float64
	vi  [][]int64
	vf  [][]float64

	gid, lid, grp [3]int64
	frameBase, sp int

	done    bool
	pending int64 // retired instructions not yet flushed to the tracer

	gmem []byte
	lmem []byte
	pmem []byte

	// Return-value stash for nested calls. OpRet* clears the fields it
	// does not set, mirroring the interpreter's fresh boxed return value.
	retI  int64
	retF  float64
	retVI []int64
	retVF []float64

	kern   regFile // kernel-level register file
	depth  int
	frames []*bFrame
}

// frame returns the pooled frame for the current call depth.
func (c *wCtx) frame() *bFrame {
	for len(c.frames) <= c.depth {
		c.frames = append(c.frames, &bFrame{})
	}
	return c.frames[c.depth]
}

// Launch implements vm.Executor with the interpreter's exact scheduling:
// traced launches distribute work-groups round-robin over workers with
// each worker running its groups in ascending order, untraced launches
// balance groups dynamically, and work-items within a group advance in
// barrier-delimited rounds.
func (m *Machine) Launch(kernel string, cfg vm.Config, gmem *vm.GlobalMem, opts *vm.LaunchOpts) error {
	fn := m.p.Module.Kernel(kernel)
	if fn == nil {
		return fmt.Errorf("vm: no kernel %q", kernel)
	}
	bf := m.funcs[fn]
	ncfg, err := cfg.Normalized()
	if err != nil {
		return err
	}
	if len(ncfg.Args) != len(fn.Params) {
		return fmt.Errorf("vm: kernel %s expects %d args, got %d", kernel, len(fn.Params), len(ncfg.Args))
	}
	workers := 1
	var tracerFor func(int) vm.Tracer
	var prof *vm.Profiler
	if opts != nil {
		workers = opts.Workers
		tracerFor = opts.TracerFor
		prof = opts.Profiler
	}
	if prof != nil {
		prof.LaunchBegin(kernel, Name)
		start := time.Now()
		defer func() { prof.LaunchDone(time.Since(start)) }()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	groups := [3]int{
		ncfg.GlobalSize[0] / ncfg.LocalSize[0],
		ncfg.GlobalSize[1] / ncfg.LocalSize[1],
		ncfg.GlobalSize[2] / ncfg.LocalSize[2],
	}
	nGroups := groups[0] * groups[1] * groups[2]
	if nGroups < workers {
		workers = nGroups
	}
	if workers == 0 {
		return nil
	}

	// Dynamic local buffers: lay out after the static local allocas.
	staticLocal := bf.LocalSize
	dynOff := make([]int, len(ncfg.Args))
	localTotal := staticLocal
	for i, a := range ncfg.Args {
		if a.Kind == vm.ArgLocalBuf {
			const align = 16
			localTotal = (localTotal + align - 1) &^ (align - 1)
			dynOff[i] = localTotal
			localTotal += a.LocalBytes
		}
	}

	// Parameter payloads by Bank. Only the payload matching the argument's
	// kind is set; a parameter whose Bank reads the other payload sees
	// zero, exactly like reading the unused field of a boxed value.
	paramI := make([]int64, len(ncfg.Args))
	paramF := make([]float64, len(ncfg.Args))
	for i, a := range ncfg.Args {
		switch a.Kind {
		case vm.ArgBuffer:
			paramI[i] = int64(a.Buf.Addr())
		case vm.ArgInt:
			paramI[i] = a.I
		case vm.ArgFloat:
			paramF[i] = a.F
		case vm.ArgLocalBuf:
			paramI[i] = int64(vm.MakeAddr(clc.ASLocal, uint64(dynOff[i])))
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	sched := vm.NewGroupSchedule(nGroups, workers, tracerFor != nil)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var tr vm.Tracer
			if tracerFor != nil {
				tr = tracerFor(worker)
			}
			g := &groupRun{
				m: m, bf: bf, cfg: ncfg, gmem: gmem,
				paramI: paramI, paramF: paramF,
				localTotal: localTotal, tracer: tr, prof: prof,
			}
			for d := 0; d < 3; d++ {
				g.gsz[d] = int64(ncfg.GlobalSize[d])
				g.lsz[d] = int64(ncfg.LocalSize[d])
				g.ngrp[d] = int64(ncfg.GlobalSize[d] / ncfg.LocalSize[d])
			}
			cur := sched.Cursor(worker)
			for gi := cur.Next(); gi >= 0; gi = cur.Next() {
				gz := gi / (groups[0] * groups[1])
				rem := gi % (groups[0] * groups[1])
				gy := rem / groups[0]
				gx := rem % groups[0]
				if err := g.runGroup([3]int{gx, gy, gz}, gi); err != nil {
					errs[worker] = fmt.Errorf("group (%d,%d,%d): %w", gx, gy, gz, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// groupRun runs the work-groups assigned to one worker.
type groupRun struct {
	m          *Machine
	bf         *BFunc
	cfg        vm.Config
	gmem       *vm.GlobalMem
	paramI     []int64
	paramF     []float64
	localTotal int
	tracer     vm.Tracer
	prof       *vm.Profiler

	// Per-round profiler accumulators; harvested and reset by runGroup
	// at every barrier round when prof is set.
	profRetired int64
	profLoads   int64
	profStores  int64

	gsz, lsz, ngrp [3]int64

	local []byte
	ctxs  []wCtx
	priv  [][]byte

	// Scratch buffers for math-builtin argument marshaling (never live
	// across a nested exec, so sharing them per worker is safe).
	mathF []float64
	mathI []int64
}

func (g *groupRun) runGroup(group [3]int, linear int) error {
	lsz := g.cfg.LocalSize
	n := lsz[0] * lsz[1] * lsz[2]

	// Grover-rewritten kernels have no __local memory at all; skip the
	// arena sizing and per-group clear entirely in that case.
	if g.localTotal == 0 {
		g.local = nil
	} else if cap(g.local) < g.localTotal {
		g.local = make([]byte, g.localTotal)
	} else {
		g.local = g.local[:g.localTotal]
		clear(g.local)
	}
	if len(g.ctxs) < n {
		g.ctxs = make([]wCtx, n)
		g.priv = make([][]byte, n)
	}
	stack := g.m.p.StackBytes()
	bf := g.bf
	for wi := 0; wi < n; wi++ {
		c := &g.ctxs[wi]
		c.kern.ensure(bf)
		if g.priv[wi] == nil || len(g.priv[wi]) < stack {
			g.priv[wi] = make([]byte, stack)
		}
		copy(c.kern.ri, bf.IntConsts)
		copy(c.kern.rf, bf.FltConsts)
		for k, pr := range bf.Params {
			switch pr.Bank {
			case BankInt:
				c.kern.ri[pr.Idx] = g.paramI[k]
			case BankFlt:
				c.kern.rf[pr.Idx] = g.paramF[k]
			}
		}
		lz := wi / (lsz[0] * lsz[1])
		rem := wi % (lsz[0] * lsz[1])
		ly := rem / lsz[0]
		lx := rem % lsz[0]
		c.wi = wi
		c.bf = bf
		c.pc = 0
		c.ri, c.rfl = c.kern.ri, c.kern.rf
		c.vi, c.vf = c.kern.vi, c.kern.vf
		c.lid = [3]int64{int64(lx), int64(ly), int64(lz)}
		c.grp = [3]int64{int64(group[0]), int64(group[1]), int64(group[2])}
		c.gid = [3]int64{
			int64(group[0]*lsz[0] + lx),
			int64(group[1]*lsz[1] + ly),
			int64(group[2]*lsz[2] + lz),
		}
		c.frameBase = 0
		c.sp = bf.FrameSize
		c.done = false
		c.pending = 0
		c.depth = 0
		c.gmem, c.lmem, c.pmem = g.gmem.Data, g.local, g.priv[wi]
	}

	if g.tracer != nil {
		g.tracer.GroupBegin(group, linear)
	}
	// Rounds: run every live work-item to its next barrier (or to
	// completion); repeat until all are done.
	round := 0
	var roundStart time.Time
	for {
		if g.prof != nil {
			roundStart = time.Now()
			g.profRetired, g.profLoads, g.profStores = 0, 0, 0
		}
		var barrierAt *ir.Instr
		liveBefore := 0
		atBarrier := 0
		doneNow := 0
		for wi := 0; wi < n; wi++ {
			c := &g.ctxs[wi]
			if c.done {
				continue
			}
			liveBefore++
			hitBarrier, bInstr, err := g.exec(c, true)
			if c.pending > 0 && (g.tracer != nil || g.prof != nil) {
				if g.tracer != nil {
					g.tracer.Instrs(c.wi, c.pending)
				}
				g.profRetired += c.pending
				c.pending = 0
			}
			if err != nil {
				return fmt.Errorf("work-item %d: %w", wi, err)
			}
			if hitBarrier {
				atBarrier++
				if barrierAt == nil {
					barrierAt = bInstr
				} else if barrierAt != bInstr {
					return fmt.Errorf("barrier divergence: work-items reached different barriers")
				}
			} else {
				doneNow++
			}
		}
		if liveBefore == 0 {
			break
		}
		if g.prof != nil {
			g.prof.Region(round, time.Since(roundStart), g.profRetired, g.profLoads, g.profStores, atBarrier > 0)
			round++
		}
		if atBarrier > 0 && doneNow > 0 {
			return fmt.Errorf("barrier divergence: %d work-items at a barrier while %d finished", atBarrier, doneNow)
		}
		if atBarrier > 0 && g.tracer != nil {
			g.tracer.Barrier(atBarrier)
		}
		if atBarrier == 0 {
			break
		}
	}
	if g.tracer != nil {
		g.tracer.GroupEnd()
	}
	return nil
}

const kF32 = uint8(clc.KFloat)

// exec runs c until a barrier (kernel level only), a return, or an error.
func (g *groupRun) exec(c *wCtx, kernelLevel bool) (bool, *ir.Instr, error) {
	tr := g.tracer
	prof := g.prof != nil
	code := c.bf.Code
	auxs := c.bf.Aux
	ri, rf := c.ri, c.rfl
	vi, vf := c.vi, c.vf
	pc := int(c.pc)
	for {
		in := &code[pc]
		c.pending += int64(in.Retire)
		switch in.Op {
		case OpNop:

		case OpJmp:
			pc = int(in.Imm)
			continue
		case OpCondBrI:
			if ri[in.A] != 0 {
				pc = int(in.Imm)
			} else {
				pc = int(in.N)
			}
			continue
		case OpCondBrF:
			if rf[in.A] != 0 {
				pc = int(in.Imm)
			} else {
				pc = int(in.N)
			}
			continue

		case OpRet, OpRetI, OpRetF, OpRetVI, OpRetVF:
			if kernelLevel {
				c.done = true
				return false, nil, nil
			}
			c.retI, c.retF, c.retVI, c.retVF = 0, 0, nil, nil
			switch in.Op {
			case OpRetI:
				c.retI = ri[in.B]
			case OpRetF:
				c.retF = rf[in.B]
			case OpRetVI:
				c.retVI = vi[in.B]
			case OpRetVF:
				c.retVF = vf[in.B]
			}
			return false, nil, nil

		case OpBarrier:
			if !kernelLevel {
				return false, nil, errors.New("vm: barrier inside a function call is unsupported")
			}
			c.pc = int32(pc + 1)
			return true, in.In, nil

		case OpCall:
			if err := g.callFn(c, in, ri, rf, vi, vf); err != nil {
				return false, nil, err
			}

		case OpTrap:
			return false, nil, errors.New(auxs[in.Imm].Name)

		case OpConstI:
			ri[in.A] = in.Imm
		case OpZeroI:
			ri[in.A] = 0
		case OpZeroF:
			rf[in.A] = 0
		case OpMovI:
			ri[in.A] = ri[in.B]
		case OpMovF:
			rf[in.A] = rf[in.B]

		case OpGID:
			ri[in.A] = c.gid[in.Imm]
		case OpLID:
			ri[in.A] = c.lid[in.Imm]
		case OpGRP:
			ri[in.A] = c.grp[in.Imm]
		case OpGSZ:
			ri[in.A] = g.gsz[in.Imm]
		case OpLSZ:
			ri[in.A] = g.lsz[in.Imm]
		case OpNGRP:
			ri[in.A] = g.ngrp[in.Imm]
		case OpWIQ:
			ri[in.A] = g.wiQuery(c, in.N, ri[in.B])

		case OpAllocaP:
			ri[in.A] = int64(vm.MakeAddr(clc.ASPrivate, uint64(c.frameBase)+uint64(in.Imm)))
		case OpAllocaL:
			ri[in.A] = in.Imm

		case OpIndex:
			ri[in.A] = ri[in.B] + ri[in.C]*in.Imm
		case OpIndexC:
			ri[in.A] = ri[in.B] + in.Imm

		case OpLdI8, OpLdU8, OpLdI16, OpLdU16, OpLdI32, OpLdU32, OpLdI64, OpLdF32, OpLdF64:
			addr := uint64(ri[in.B])
			if tr != nil {
				tr.Access(in.In, c.wi, addr, int(in.N), false)
			}
			if prof {
				g.profLoads++
			}
			if err := c.load(in, addr); err != nil {
				return false, nil, err
			}
		case OpLdXI8, OpLdXU8, OpLdXI16, OpLdXU16, OpLdXI32, OpLdXU32, OpLdXI64, OpLdXF32, OpLdXF64:
			addr := uint64(ri[in.B] + ri[in.C]*in.Imm)
			if tr != nil {
				tr.Access(in.In, c.wi, addr, int(in.N), false)
			}
			if prof {
				g.profLoads++
			}
			if err := c.load(in, addr); err != nil {
				return false, nil, err
			}

		case OpStI8, OpStI16, OpStI32, OpStI64, OpStF32, OpStF64:
			addr := uint64(ri[in.B])
			if tr != nil {
				tr.Access(in.In, c.wi, addr, int(in.N), true)
			}
			if prof {
				g.profStores++
			}
			if err := c.store(in, addr); err != nil {
				return false, nil, err
			}
		case OpStXI8, OpStXI16, OpStXI32, OpStXI64, OpStXF32, OpStXF64:
			addr := uint64(ri[in.B] + ri[in.C]*in.Imm)
			if tr != nil {
				tr.Access(in.In, c.wi, addr, int(in.N), true)
			}
			if prof {
				g.profStores++
			}
			if err := c.store(in, addr); err != nil {
				return false, nil, err
			}

		case OpLdVI, OpLdVF:
			addr := uint64(ri[in.B])
			if tr != nil {
				tr.Access(in.In, c.wi, addr, int(in.N), false)
			}
			if prof {
				g.profLoads++
			}
			if err := c.loadVec(in, addr); err != nil {
				return false, nil, err
			}
		case OpLdXVI, OpLdXVF:
			addr := uint64(ri[in.B] + ri[in.C]*in.Imm)
			if tr != nil {
				tr.Access(in.In, c.wi, addr, int(in.N), false)
			}
			if prof {
				g.profLoads++
			}
			if err := c.loadVec(in, addr); err != nil {
				return false, nil, err
			}
		case OpStVI, OpStVF:
			addr := uint64(ri[in.B])
			if tr != nil {
				tr.Access(in.In, c.wi, addr, int(in.N), true)
			}
			if prof {
				g.profStores++
			}
			if err := c.storeVec(in, addr); err != nil {
				return false, nil, err
			}
		case OpStXVI, OpStXVF:
			addr := uint64(ri[in.B] + ri[in.C]*in.Imm)
			if tr != nil {
				tr.Access(in.In, c.wi, addr, int(in.N), true)
			}
			if prof {
				g.profStores++
			}
			if err := c.storeVec(in, addr); err != nil {
				return false, nil, err
			}

		case OpAddI:
			ri[in.A] = ri[in.B] + ri[in.C]
		case OpSubI:
			ri[in.A] = ri[in.B] - ri[in.C]
		case OpMulI:
			ri[in.A] = ri[in.B] * ri[in.C]
		case OpAndI:
			ri[in.A] = ri[in.B] & ri[in.C]
		case OpOrI:
			ri[in.A] = ri[in.B] | ri[in.C]
		case OpXorI:
			ri[in.A] = ri[in.B] ^ ri[in.C]
		case OpAddI32:
			ri[in.A] = int64(int32(ri[in.B] + ri[in.C]))
		case OpSubI32:
			ri[in.A] = int64(int32(ri[in.B] - ri[in.C]))
		case OpMulI32:
			ri[in.A] = int64(int32(ri[in.B] * ri[in.C]))
		case OpAddU32:
			ri[in.A] = int64(uint32(ri[in.B] + ri[in.C]))
		case OpSubU32:
			ri[in.A] = int64(uint32(ri[in.B] - ri[in.C]))
		case OpMulU32:
			ri[in.A] = int64(uint32(ri[in.B] * ri[in.C]))
		case OpIntBin:
			v, err := vm.IntBin(ir.Op(in.Sub), clc.ScalarKind(in.Kind), ri[in.B], ri[in.C])
			if err != nil {
				return false, nil, err
			}
			ri[in.A] = v

		case OpAddF:
			rf[in.A] = rf[in.B] + rf[in.C]
		case OpSubF:
			rf[in.A] = rf[in.B] - rf[in.C]
		case OpMulF:
			rf[in.A] = rf[in.B] * rf[in.C]
		case OpDivF:
			rf[in.A] = rf[in.B] / rf[in.C]
		case OpAddF32:
			rf[in.A] = float64(float32(rf[in.B] + rf[in.C]))
		case OpSubF32:
			rf[in.A] = float64(float32(rf[in.B] - rf[in.C]))
		case OpMulF32:
			rf[in.A] = float64(float32(rf[in.B] * rf[in.C]))
		case OpDivF32:
			rf[in.A] = float64(float32(rf[in.B] / rf[in.C]))
		case OpFltBin:
			v, err := vm.FloatBin(ir.Op(in.Sub), clc.ScalarKind(in.Kind), rf[in.B], rf[in.C])
			if err != nil {
				return false, nil, err
			}
			rf[in.A] = v

		case OpNegF:
			rf[in.A] = -rf[in.B]
		case OpNegI:
			ri[in.A] = vm.NormInt(-ri[in.B], clc.ScalarKind(in.Kind))
		case OpNotI:
			ri[in.A] = vm.NormInt(^ri[in.B], clc.ScalarKind(in.Kind))
		case OpVNegF:
			d, s := vf[in.A], vf[in.B]
			for i := range d {
				d[i] = -s[i]
			}
		case OpVNegI:
			k := clc.ScalarKind(in.Kind)
			d, s := vi[in.A], vi[in.B]
			for i := range d {
				d[i] = vm.NormInt(-s[i], k)
			}
		case OpVNotI:
			k := clc.ScalarKind(in.Kind)
			d, s := vi[in.A], vi[in.B]
			for i := range d {
				d[i] = vm.NormInt(^s[i], k)
			}

		case OpEqI:
			ri[in.A] = b2i(ri[in.B] == ri[in.C])
		case OpNeI:
			ri[in.A] = b2i(ri[in.B] != ri[in.C])
		case OpLtI:
			ri[in.A] = b2i(ri[in.B] < ri[in.C])
		case OpLeI:
			ri[in.A] = b2i(ri[in.B] <= ri[in.C])
		case OpGtI:
			ri[in.A] = b2i(ri[in.B] > ri[in.C])
		case OpGeI:
			ri[in.A] = b2i(ri[in.B] >= ri[in.C])
		case OpLtU:
			ri[in.A] = b2i(uint64(ri[in.B]) < uint64(ri[in.C]))
		case OpLeU:
			ri[in.A] = b2i(uint64(ri[in.B]) <= uint64(ri[in.C]))
		case OpGtU:
			ri[in.A] = b2i(uint64(ri[in.B]) > uint64(ri[in.C]))
		case OpGeU:
			ri[in.A] = b2i(uint64(ri[in.B]) >= uint64(ri[in.C]))
		case OpEqF:
			ri[in.A] = b2i(rf[in.B] == rf[in.C])
		case OpNeF:
			ri[in.A] = b2i(rf[in.B] != rf[in.C])
		case OpLtF:
			ri[in.A] = b2i(rf[in.B] < rf[in.C])
		case OpLeF:
			ri[in.A] = b2i(rf[in.B] <= rf[in.C])
		case OpGtF:
			ri[in.A] = b2i(rf[in.B] > rf[in.C])
		case OpGeF:
			ri[in.A] = b2i(rf[in.B] >= rf[in.C])

		case OpConvI:
			ri[in.A] = vm.NormInt(ri[in.B], clc.ScalarKind(in.Kind))
		case OpI2F:
			rf[in.A] = vm.Round32(clc.ScalarKind(in.Kind), float64(ri[in.B]))
		case OpU2F:
			rf[in.A] = vm.Round32(clc.ScalarKind(in.Kind), float64(uint64(ri[in.B])))
		case OpF2I:
			f := rf[in.B]
			if math.IsNaN(f) {
				ri[in.A] = 0
			} else {
				ri[in.A] = vm.NormInt(int64(f), clc.ScalarKind(in.Kind))
			}
		case OpF2F32:
			rf[in.A] = float64(float32(rf[in.B]))
		case OpVConv:
			c.vconv(in)

		case OpVAddF:
			d, x, y := vf[in.A], vf[in.B], vf[in.C]
			if in.Kind == kF32 {
				for i := range d {
					d[i] = float64(float32(x[i] + y[i]))
				}
			} else {
				for i := range d {
					d[i] = x[i] + y[i]
				}
			}
		case OpVSubF:
			d, x, y := vf[in.A], vf[in.B], vf[in.C]
			if in.Kind == kF32 {
				for i := range d {
					d[i] = float64(float32(x[i] - y[i]))
				}
			} else {
				for i := range d {
					d[i] = x[i] - y[i]
				}
			}
		case OpVMulF:
			d, x, y := vf[in.A], vf[in.B], vf[in.C]
			if in.Kind == kF32 {
				for i := range d {
					d[i] = float64(float32(x[i] * y[i]))
				}
			} else {
				for i := range d {
					d[i] = x[i] * y[i]
				}
			}
		case OpVDivF:
			d, x, y := vf[in.A], vf[in.B], vf[in.C]
			if in.Kind == kF32 {
				for i := range d {
					d[i] = float64(float32(x[i] / y[i]))
				}
			} else {
				for i := range d {
					d[i] = x[i] / y[i]
				}
			}
		case OpVBinF:
			d, x, y := vf[in.A], vf[in.B], vf[in.C]
			op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
			for i := range d {
				v, err := vm.FloatBin(op, k, x[i], y[i])
				if err != nil {
					return false, nil, err
				}
				d[i] = v
			}
		case OpVBinI:
			d, x, y := vi[in.A], vi[in.B], vi[in.C]
			op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
			for i := range d {
				v, err := vm.IntBin(op, k, x[i], y[i])
				if err != nil {
					return false, nil, err
				}
				d[i] = v
			}

		case OpExtI:
			ri[in.A] = vi[in.B][in.Imm]
		case OpExtF:
			rf[in.A] = vf[in.B][in.Imm]
		case OpInsI:
			d := vi[in.A]
			copy(d, vi[in.B])
			d[in.Imm] = ri[in.C]
		case OpInsF:
			d := vf[in.A]
			copy(d, vf[in.B])
			d[in.Imm] = rf[in.C]
		case OpShufI:
			d, s := vi[in.A], vi[in.B]
			for i, l := range auxs[in.Imm].Comps {
				d[i] = s[l]
			}
		case OpShufF:
			d, s := vf[in.A], vf[in.B]
			for i, l := range auxs[in.Imm].Comps {
				d[i] = s[l]
			}
		case OpBuildI:
			d := vi[in.A]
			for i, r := range auxs[in.Imm].Refs {
				d[i] = ri[r.Idx]
			}
		case OpBuildF:
			d := vf[in.A]
			for i, r := range auxs[in.Imm].Refs {
				d[i] = rf[r.Idx]
			}

		case OpDotVF:
			x, y := vf[in.B], vf[in.C]
			var sum float64
			for i := range x {
				sum += x[i] * y[i]
			}
			rf[in.A] = vm.Round32(clc.ScalarKind(in.Kind), sum)
		case OpDotSS:
			rf[in.A] = rf[in.B] * rf[in.C]
		case OpLenVF:
			x := vf[in.B]
			var sum float64
			for i := range x {
				sum += x[i] * x[i]
			}
			rf[in.A] = vm.Round32(clc.ScalarKind(in.Kind), math.Sqrt(sum))
		case OpLenSS:
			rf[in.A] = math.Abs(rf[in.B])
		case OpMathF:
			ax := &auxs[in.Imm]
			fa := g.scratchF(len(ax.Refs))
			for i, r := range ax.Refs {
				fa[i] = rf[r.Idx]
			}
			v, err := vm.MathF(ax.Name, clc.ScalarKind(in.Kind), fa)
			if err != nil {
				return false, nil, err
			}
			rf[in.A] = v
		case OpMathI:
			ax := &auxs[in.Imm]
			ia := g.scratchI(len(ax.Refs))
			for i, r := range ax.Refs {
				ia[i] = ri[r.Idx]
			}
			v, err := vm.MathI(ax.Name, clc.ScalarKind(in.Kind), ia)
			if err != nil {
				return false, nil, err
			}
			ri[in.A] = v
		case OpVMathF:
			ax := &auxs[in.Imm]
			d := vf[in.A]
			fa := g.scratchF(len(ax.Refs))
			k := clc.ScalarKind(in.Kind)
			for l := range d {
				for i, r := range ax.Refs {
					fa[i] = vf[r.Idx][l]
				}
				v, err := vm.MathF(ax.Name, k, fa)
				if err != nil {
					return false, nil, err
				}
				d[l] = v
			}
		case OpVMathI:
			ax := &auxs[in.Imm]
			d := vi[in.A]
			ia := g.scratchI(len(ax.Refs))
			k := clc.ScalarKind(in.Kind)
			for l := range d {
				for i, r := range ax.Refs {
					ia[i] = vi[r.Idx][l]
				}
				v, err := vm.MathI(ax.Name, k, ia)
				if err != nil {
					return false, nil, err
				}
				d[l] = v
			}

		default:
			return false, nil, fmt.Errorf("bcode: invalid opcode %d at pc %d", in.Op, pc)
		}
		pc++
	}
}

// callFn executes a user function synchronously within the work-item,
// running it in the pooled register file for the current call depth. The
// caller's Bank slices are passed in so the return value lands in the
// caller's registers after the context is restored.
func (g *groupRun) callFn(c *wCtx, in *Inst, ri []int64, rf []float64, vi [][]int64, vf [][]float64) error {
	ax := &c.bf.Aux[in.Imm]
	callee := ax.Callee
	fr := c.frame()
	fr.regs.ensure(callee)
	copy(fr.regs.ri, callee.IntConsts)
	copy(fr.regs.rf, callee.FltConsts)
	for i, r := range ax.Refs {
		p := callee.Params[i]
		switch p.Bank {
		case BankInt:
			fr.regs.ri[p.Idx] = ri[r.Idx]
		case BankFlt:
			fr.regs.rf[p.Idx] = rf[r.Idx]
		case BankVecI:
			copy(fr.regs.vi[p.Idx], vi[r.Idx])
		case BankVecF:
			copy(fr.regs.vf[p.Idx], vf[r.Idx])
		}
	}

	saveBf, savePC := c.bf, c.pc
	saveRi, saveRf, saveVi, saveVf := c.ri, c.rfl, c.vi, c.vf
	saveBase, saveSP := c.frameBase, c.sp

	c.bf = callee
	c.pc = 0
	c.ri, c.rfl = fr.regs.ri, fr.regs.rf
	c.vi, c.vf = fr.regs.vi, fr.regs.vf
	c.frameBase = c.sp
	c.sp += callee.FrameSize
	c.depth++
	if c.sp > len(c.pmem) {
		return fmt.Errorf("vm: private stack overflow calling %s", callee.Fn.Name)
	}
	_, _, err := g.exec(c, false)
	c.depth--
	c.bf, c.pc = saveBf, savePC
	c.ri, c.rfl = saveRi, saveRf
	c.vi, c.vf = saveVi, saveVf
	c.frameBase, c.sp = saveBase, saveSP
	if err != nil {
		return err
	}
	if in.A >= 0 {
		switch Bank(in.Sub) {
		case BankInt:
			ri[in.A] = c.retI
		case BankFlt:
			rf[in.A] = c.retF
		case BankVecI:
			if c.retVI != nil {
				copy(vi[in.A], c.retVI)
			}
		case BankVecF:
			if c.retVF != nil {
				copy(vf[in.A], c.retVF)
			}
		}
	}
	return nil
}

// wiQuery answers a runtime-dimension work-item query.
func (g *groupRun) wiQuery(c *wCtx, q int32, d int64) int64 {
	if d < 0 || d > 2 {
		return 0
	}
	switch q {
	case QGlobalID:
		return c.gid[d]
	case QLocalID:
		return c.lid[d]
	case QGroupID:
		return c.grp[d]
	case QGlobalSize:
		return g.gsz[d]
	case QLocalSize:
		return g.lsz[d]
	case QNumGroups:
		return g.ngrp[d]
	case QWorkDim:
		return 3
	}
	return 0
}

// arena resolves a tagged address to its backing byte arena, with the
// interpreter's exact bounds diagnostics.
func (c *wCtx) arena(addr uint64) ([]byte, uint64, error) {
	space, off := vm.SplitAddr(addr)
	switch space {
	case clc.ASGlobal:
		if int(off) >= len(c.gmem) {
			return nil, 0, fmt.Errorf("vm: global access at %d out of bounds (%d)", off, len(c.gmem))
		}
		return c.gmem, off, nil
	case clc.ASLocal:
		if int(off) >= len(c.lmem) {
			return nil, 0, fmt.Errorf("vm: local access at %d out of bounds (%d)", off, len(c.lmem))
		}
		return c.lmem, off, nil
	default:
		if int(off) >= len(c.pmem) {
			return nil, 0, fmt.Errorf("vm: private access at %d out of bounds (%d)", off, len(c.pmem))
		}
		return c.pmem, off, nil
	}
}

// load performs a scalar load. For scalar memory ops in.N is both the
// traced size and the access width.
func (c *wCtx) load(in *Inst, addr uint64) error {
	a, off, err := c.arena(addr)
	if err != nil {
		return err
	}
	sz := int(in.N)
	if int(off)+sz > len(a) {
		return fmt.Errorf("vm: load of %d bytes at %d overruns arena (%d)", sz, off, len(a))
	}
	switch in.Op {
	case OpLdI8, OpLdXI8:
		c.ri[in.A] = int64(int8(a[off]))
	case OpLdU8, OpLdXU8:
		c.ri[in.A] = int64(a[off])
	case OpLdI16, OpLdXI16:
		c.ri[in.A] = int64(int16(binary.LittleEndian.Uint16(a[off:])))
	case OpLdU16, OpLdXU16:
		c.ri[in.A] = int64(binary.LittleEndian.Uint16(a[off:]))
	case OpLdI32, OpLdXI32:
		c.ri[in.A] = int64(int32(binary.LittleEndian.Uint32(a[off:])))
	case OpLdU32, OpLdXU32:
		c.ri[in.A] = int64(binary.LittleEndian.Uint32(a[off:]))
	case OpLdI64, OpLdXI64:
		c.ri[in.A] = int64(binary.LittleEndian.Uint64(a[off:]))
	case OpLdF32, OpLdXF32:
		c.rfl[in.A] = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[off:])))
	case OpLdF64, OpLdXF64:
		c.rfl[in.A] = math.Float64frombits(binary.LittleEndian.Uint64(a[off:]))
	}
	return nil
}

// store performs a scalar store.
func (c *wCtx) store(in *Inst, addr uint64) error {
	a, off, err := c.arena(addr)
	if err != nil {
		return err
	}
	sz := int(in.N)
	if int(off)+sz > len(a) {
		return fmt.Errorf("vm: store of %d bytes at %d overruns arena (%d)", sz, off, len(a))
	}
	switch in.Op {
	case OpStI8, OpStXI8:
		a[off] = byte(c.ri[in.A])
	case OpStI16, OpStXI16:
		binary.LittleEndian.PutUint16(a[off:], uint16(c.ri[in.A]))
	case OpStI32, OpStXI32:
		binary.LittleEndian.PutUint32(a[off:], uint32(c.ri[in.A]))
	case OpStI64, OpStXI64:
		binary.LittleEndian.PutUint64(a[off:], uint64(c.ri[in.A]))
	case OpStF32, OpStXF32:
		binary.LittleEndian.PutUint32(a[off:], math.Float32bits(float32(c.rfl[in.A])))
	case OpStF64, OpStXF64:
		binary.LittleEndian.PutUint64(a[off:], math.Float64bits(c.rfl[in.A]))
	}
	return nil
}

// loadVec loads a vector lane by lane at element-size strides, with the
// interpreter's per-lane bounds checks.
func (c *wCtx) loadVec(in *Inst, addr uint64) error {
	k := clc.ScalarKind(in.Kind)
	es := k.Size()
	lanes := int(in.Sub)
	flt := in.Op == OpLdVF || in.Op == OpLdXVF
	for i := 0; i < lanes; i++ {
		a, off, err := c.arena(addr + uint64(i*es))
		if err != nil {
			return err
		}
		if int(off)+es > len(a) {
			return fmt.Errorf("vm: load of %d bytes at %d overruns arena (%d)", es, off, len(a))
		}
		if flt {
			if k == clc.KFloat {
				c.vf[in.A][i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[off:])))
			} else {
				c.vf[in.A][i] = math.Float64frombits(binary.LittleEndian.Uint64(a[off:]))
			}
		} else {
			c.vi[in.A][i] = loadIntLane(a, off, k)
		}
	}
	return nil
}

// storeVec stores a vector lane by lane.
func (c *wCtx) storeVec(in *Inst, addr uint64) error {
	k := clc.ScalarKind(in.Kind)
	es := k.Size()
	lanes := int(in.Sub)
	flt := in.Op == OpStVF || in.Op == OpStXVF
	for i := 0; i < lanes; i++ {
		a, off, err := c.arena(addr + uint64(i*es))
		if err != nil {
			return err
		}
		if int(off)+es > len(a) {
			return fmt.Errorf("vm: store of %d bytes at %d overruns arena (%d)", es, off, len(a))
		}
		if flt {
			if k == clc.KFloat {
				binary.LittleEndian.PutUint32(a[off:], math.Float32bits(float32(c.vf[in.A][i])))
			} else {
				binary.LittleEndian.PutUint64(a[off:], math.Float64bits(c.vf[in.A][i]))
			}
		} else {
			storeIntLane(a, off, k, c.vi[in.A][i])
		}
	}
	return nil
}

func loadIntLane(a []byte, off uint64, k clc.ScalarKind) int64 {
	switch k {
	case clc.KBool, clc.KUChar:
		return int64(a[off])
	case clc.KChar:
		return int64(int8(a[off]))
	case clc.KShort:
		return int64(int16(binary.LittleEndian.Uint16(a[off:])))
	case clc.KUShort:
		return int64(binary.LittleEndian.Uint16(a[off:]))
	case clc.KInt:
		return int64(int32(binary.LittleEndian.Uint32(a[off:])))
	case clc.KUInt:
		return int64(binary.LittleEndian.Uint32(a[off:]))
	default: // KLong, KULong
		return int64(binary.LittleEndian.Uint64(a[off:]))
	}
}

func storeIntLane(a []byte, off uint64, k clc.ScalarKind, v int64) {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		a[off] = byte(v)
	case clc.KShort, clc.KUShort:
		binary.LittleEndian.PutUint16(a[off:], uint16(v))
	case clc.KInt, clc.KUInt:
		binary.LittleEndian.PutUint32(a[off:], uint32(v))
	default: // KLong, KULong
		binary.LittleEndian.PutUint64(a[off:], uint64(v))
	}
}

// vconv performs a lane-wise vector conversion.
func (c *wCtx) vconv(in *Inst) {
	from := clc.ScalarKind(in.Sub)
	to := clc.ScalarKind(in.Kind)
	if from.IsFloat() {
		src := c.vf[in.B]
		if to.IsFloat() {
			d := c.vf[in.A]
			for i := range d {
				_, d[i] = vm.ConvertKind(0, src[i], from, to)
			}
		} else {
			d := c.vi[in.A]
			for i := range d {
				d[i], _ = vm.ConvertKind(0, src[i], from, to)
			}
		}
	} else {
		src := c.vi[in.B]
		if to.IsFloat() {
			d := c.vf[in.A]
			for i := range d {
				_, d[i] = vm.ConvertKind(src[i], 0, from, to)
			}
		} else {
			d := c.vi[in.A]
			for i := range d {
				d[i], _ = vm.ConvertKind(src[i], 0, from, to)
			}
		}
	}
}

// scratchF returns the worker's pooled float argument buffer.
func (g *groupRun) scratchF(n int) []float64 {
	if cap(g.mathF) < n {
		g.mathF = make([]float64, n)
	}
	return g.mathF[:n]
}

// scratchI returns the worker's pooled integer argument buffer.
func (g *groupRun) scratchI(n int) []int64 {
	if cap(g.mathI) < n {
		g.mathI = make([]int64, n)
	}
	return g.mathI[:n]
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
