package bcode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

// regFile is one register-file instance shaped for a bfunc: dense scalar
// banks plus per-register lane slices for the vector banks.
type regFile struct {
	ri []int64
	rf []float64
	vi [][]int64
	vf [][]float64
}

// ensure resizes the file to bf's shape, reusing backing storage.
func (r *regFile) ensure(bf *bfunc) {
	if cap(r.ri) < bf.nInt {
		r.ri = make([]int64, bf.nInt)
	}
	r.ri = r.ri[:bf.nInt]
	if cap(r.rf) < bf.nFlt {
		r.rf = make([]float64, bf.nFlt)
	}
	r.rf = r.rf[:bf.nFlt]
	if cap(r.vi) < len(bf.vecILens) {
		grown := make([][]int64, len(bf.vecILens))
		copy(grown, r.vi)
		r.vi = grown
	}
	r.vi = r.vi[:len(bf.vecILens)]
	for i, n := range bf.vecILens {
		if cap(r.vi[i]) < n {
			r.vi[i] = make([]int64, n)
		}
		r.vi[i] = r.vi[i][:n]
	}
	if cap(r.vf) < len(bf.vecFLens) {
		grown := make([][]float64, len(bf.vecFLens))
		copy(grown, r.vf)
		r.vf = grown
	}
	r.vf = r.vf[:len(bf.vecFLens)]
	for i, n := range bf.vecFLens {
		if cap(r.vf[i]) < n {
			r.vf[i] = make([]float64, n)
		}
		r.vf[i] = r.vf[i][:n]
	}
}

// bFrame is a pooled register file for one call depth.
type bFrame struct {
	regs regFile
}

// wCtx is one work-item's resumable execution state. The current register
// file is exposed as direct slice fields (swapped on call/return) so the
// dispatch loop indexes banks without indirection.
type wCtx struct {
	wi int
	bf *bfunc
	pc int32

	ri  []int64
	rfl []float64
	vi  [][]int64
	vf  [][]float64

	gid, lid, grp [3]int64
	frameBase, sp int

	done    bool
	pending int64 // retired instructions not yet flushed to the tracer

	gmem []byte
	lmem []byte
	pmem []byte

	// Return-value stash for nested calls. opRet* clears the fields it
	// does not set, mirroring the interpreter's fresh boxed return value.
	retI  int64
	retF  float64
	retVI []int64
	retVF []float64

	kern   regFile // kernel-level register file
	depth  int
	frames []*bFrame
}

// frame returns the pooled frame for the current call depth.
func (c *wCtx) frame() *bFrame {
	for len(c.frames) <= c.depth {
		c.frames = append(c.frames, &bFrame{})
	}
	return c.frames[c.depth]
}

// Launch implements vm.Executor with the interpreter's exact scheduling:
// work-groups are distributed round-robin over workers, each worker runs
// its groups in ascending order, and work-items within a group advance in
// barrier-delimited rounds.
func (m *Machine) Launch(kernel string, cfg vm.Config, gmem *vm.GlobalMem, opts *vm.LaunchOpts) error {
	fn := m.p.Module.Kernel(kernel)
	if fn == nil {
		return fmt.Errorf("vm: no kernel %q", kernel)
	}
	bf := m.funcs[fn]
	ncfg, err := cfg.Normalized()
	if err != nil {
		return err
	}
	if len(ncfg.Args) != len(fn.Params) {
		return fmt.Errorf("vm: kernel %s expects %d args, got %d", kernel, len(fn.Params), len(ncfg.Args))
	}
	workers := 1
	var tracerFor func(int) vm.Tracer
	if opts != nil {
		workers = opts.Workers
		tracerFor = opts.TracerFor
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	groups := [3]int{
		ncfg.GlobalSize[0] / ncfg.LocalSize[0],
		ncfg.GlobalSize[1] / ncfg.LocalSize[1],
		ncfg.GlobalSize[2] / ncfg.LocalSize[2],
	}
	nGroups := groups[0] * groups[1] * groups[2]
	if nGroups < workers {
		workers = nGroups
	}
	if workers == 0 {
		return nil
	}

	// Dynamic local buffers: lay out after the static local allocas.
	staticLocal := bf.localSize
	dynOff := make([]int, len(ncfg.Args))
	localTotal := staticLocal
	for i, a := range ncfg.Args {
		if a.Kind == vm.ArgLocalBuf {
			const align = 16
			localTotal = (localTotal + align - 1) &^ (align - 1)
			dynOff[i] = localTotal
			localTotal += a.LocalBytes
		}
	}

	// Parameter payloads by bank. Only the payload matching the argument's
	// kind is set; a parameter whose bank reads the other payload sees
	// zero, exactly like reading the unused field of a boxed value.
	paramI := make([]int64, len(ncfg.Args))
	paramF := make([]float64, len(ncfg.Args))
	for i, a := range ncfg.Args {
		switch a.Kind {
		case vm.ArgBuffer:
			paramI[i] = int64(a.Buf.Addr())
		case vm.ArgInt:
			paramI[i] = a.I
		case vm.ArgFloat:
			paramF[i] = a.F
		case vm.ArgLocalBuf:
			paramI[i] = int64(vm.MakeAddr(clc.ASLocal, uint64(dynOff[i])))
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var tr vm.Tracer
			if tracerFor != nil {
				tr = tracerFor(worker)
			}
			g := &groupRun{
				m: m, bf: bf, cfg: ncfg, gmem: gmem,
				paramI: paramI, paramF: paramF,
				localTotal: localTotal, tracer: tr,
			}
			for d := 0; d < 3; d++ {
				g.gsz[d] = int64(ncfg.GlobalSize[d])
				g.lsz[d] = int64(ncfg.LocalSize[d])
				g.ngrp[d] = int64(ncfg.GlobalSize[d] / ncfg.LocalSize[d])
			}
			for gi := worker; gi < nGroups; gi += workers {
				gz := gi / (groups[0] * groups[1])
				rem := gi % (groups[0] * groups[1])
				gy := rem / groups[0]
				gx := rem % groups[0]
				if err := g.runGroup([3]int{gx, gy, gz}, gi); err != nil {
					errs[worker] = fmt.Errorf("group (%d,%d,%d): %w", gx, gy, gz, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// groupRun runs the work-groups assigned to one worker.
type groupRun struct {
	m          *Machine
	bf         *bfunc
	cfg        vm.Config
	gmem       *vm.GlobalMem
	paramI     []int64
	paramF     []float64
	localTotal int
	tracer     vm.Tracer

	gsz, lsz, ngrp [3]int64

	local []byte
	ctxs  []wCtx
	priv  [][]byte

	// Scratch buffers for math-builtin argument marshaling (never live
	// across a nested exec, so sharing them per worker is safe).
	mathF []float64
	mathI []int64
}

func (g *groupRun) runGroup(group [3]int, linear int) error {
	lsz := g.cfg.LocalSize
	n := lsz[0] * lsz[1] * lsz[2]

	if cap(g.local) < g.localTotal {
		g.local = make([]byte, g.localTotal)
	} else {
		g.local = g.local[:g.localTotal]
		clear(g.local)
	}
	if len(g.ctxs) < n {
		g.ctxs = make([]wCtx, n)
		g.priv = make([][]byte, n)
	}
	stack := g.m.p.StackBytes()
	bf := g.bf
	for wi := 0; wi < n; wi++ {
		c := &g.ctxs[wi]
		c.kern.ensure(bf)
		if g.priv[wi] == nil || len(g.priv[wi]) < stack {
			g.priv[wi] = make([]byte, stack)
		}
		copy(c.kern.ri, bf.intConsts)
		copy(c.kern.rf, bf.fltConsts)
		for k, pr := range bf.params {
			switch pr.bank {
			case bInt:
				c.kern.ri[pr.idx] = g.paramI[k]
			case bFlt:
				c.kern.rf[pr.idx] = g.paramF[k]
			}
		}
		lz := wi / (lsz[0] * lsz[1])
		rem := wi % (lsz[0] * lsz[1])
		ly := rem / lsz[0]
		lx := rem % lsz[0]
		c.wi = wi
		c.bf = bf
		c.pc = 0
		c.ri, c.rfl = c.kern.ri, c.kern.rf
		c.vi, c.vf = c.kern.vi, c.kern.vf
		c.lid = [3]int64{int64(lx), int64(ly), int64(lz)}
		c.grp = [3]int64{int64(group[0]), int64(group[1]), int64(group[2])}
		c.gid = [3]int64{
			int64(group[0]*lsz[0] + lx),
			int64(group[1]*lsz[1] + ly),
			int64(group[2]*lsz[2] + lz),
		}
		c.frameBase = 0
		c.sp = bf.frameSize
		c.done = false
		c.pending = 0
		c.depth = 0
		c.gmem, c.lmem, c.pmem = g.gmem.Data, g.local, g.priv[wi]
	}

	if g.tracer != nil {
		g.tracer.GroupBegin(group, linear)
	}
	// Rounds: run every live work-item to its next barrier (or to
	// completion); repeat until all are done.
	for {
		var barrierAt *ir.Instr
		liveBefore := 0
		atBarrier := 0
		doneNow := 0
		for wi := 0; wi < n; wi++ {
			c := &g.ctxs[wi]
			if c.done {
				continue
			}
			liveBefore++
			hitBarrier, bInstr, err := g.exec(c, true)
			if g.tracer != nil && c.pending > 0 {
				g.tracer.Instrs(c.wi, c.pending)
				c.pending = 0
			}
			if err != nil {
				return fmt.Errorf("work-item %d: %w", wi, err)
			}
			if hitBarrier {
				atBarrier++
				if barrierAt == nil {
					barrierAt = bInstr
				} else if barrierAt != bInstr {
					return fmt.Errorf("barrier divergence: work-items reached different barriers")
				}
			} else {
				doneNow++
			}
		}
		if liveBefore == 0 {
			break
		}
		if atBarrier > 0 && doneNow > 0 {
			return fmt.Errorf("barrier divergence: %d work-items at a barrier while %d finished", atBarrier, doneNow)
		}
		if atBarrier > 0 && g.tracer != nil {
			g.tracer.Barrier(atBarrier)
		}
		if atBarrier == 0 {
			break
		}
	}
	if g.tracer != nil {
		g.tracer.GroupEnd()
	}
	return nil
}

const kF32 = uint8(clc.KFloat)

// exec runs c until a barrier (kernel level only), a return, or an error.
func (g *groupRun) exec(c *wCtx, kernelLevel bool) (bool, *ir.Instr, error) {
	tr := g.tracer
	code := c.bf.code
	auxs := c.bf.aux
	ri, rf := c.ri, c.rfl
	vi, vf := c.vi, c.vf
	pc := int(c.pc)
	for {
		in := &code[pc]
		c.pending += int64(in.retire)
		switch in.op {
		case opNop:

		case opJmp:
			pc = int(in.imm)
			continue
		case opCondBrI:
			if ri[in.a] != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.n)
			}
			continue
		case opCondBrF:
			if rf[in.a] != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.n)
			}
			continue

		case opRet, opRetI, opRetF, opRetVI, opRetVF:
			if kernelLevel {
				c.done = true
				return false, nil, nil
			}
			c.retI, c.retF, c.retVI, c.retVF = 0, 0, nil, nil
			switch in.op {
			case opRetI:
				c.retI = ri[in.b]
			case opRetF:
				c.retF = rf[in.b]
			case opRetVI:
				c.retVI = vi[in.b]
			case opRetVF:
				c.retVF = vf[in.b]
			}
			return false, nil, nil

		case opBarrier:
			if !kernelLevel {
				return false, nil, errors.New("vm: barrier inside a function call is unsupported")
			}
			c.pc = int32(pc + 1)
			return true, in.in, nil

		case opCall:
			if err := g.callFn(c, in, ri, rf, vi, vf); err != nil {
				return false, nil, err
			}

		case opTrap:
			return false, nil, errors.New(auxs[in.imm].name)

		case opConstI:
			ri[in.a] = in.imm
		case opZeroI:
			ri[in.a] = 0
		case opZeroF:
			rf[in.a] = 0
		case opMovI:
			ri[in.a] = ri[in.b]
		case opMovF:
			rf[in.a] = rf[in.b]

		case opGID:
			ri[in.a] = c.gid[in.imm]
		case opLID:
			ri[in.a] = c.lid[in.imm]
		case opGRP:
			ri[in.a] = c.grp[in.imm]
		case opGSZ:
			ri[in.a] = g.gsz[in.imm]
		case opLSZ:
			ri[in.a] = g.lsz[in.imm]
		case opNGRP:
			ri[in.a] = g.ngrp[in.imm]
		case opWIQ:
			ri[in.a] = g.wiQuery(c, in.n, ri[in.b])

		case opAllocaP:
			ri[in.a] = int64(vm.MakeAddr(clc.ASPrivate, uint64(c.frameBase)+uint64(in.imm)))
		case opAllocaL:
			ri[in.a] = in.imm

		case opIndex:
			ri[in.a] = ri[in.b] + ri[in.c]*in.imm
		case opIndexC:
			ri[in.a] = ri[in.b] + in.imm

		case opLdI8, opLdU8, opLdI16, opLdU16, opLdI32, opLdU32, opLdI64, opLdF32, opLdF64:
			addr := uint64(ri[in.b])
			if tr != nil {
				tr.Access(in.in, c.wi, addr, int(in.n), false)
			}
			if err := c.load(in, addr); err != nil {
				return false, nil, err
			}
		case opLdXI8, opLdXU8, opLdXI16, opLdXU16, opLdXI32, opLdXU32, opLdXI64, opLdXF32, opLdXF64:
			addr := uint64(ri[in.b] + ri[in.c]*in.imm)
			if tr != nil {
				tr.Access(in.in, c.wi, addr, int(in.n), false)
			}
			if err := c.load(in, addr); err != nil {
				return false, nil, err
			}

		case opStI8, opStI16, opStI32, opStI64, opStF32, opStF64:
			addr := uint64(ri[in.b])
			if tr != nil {
				tr.Access(in.in, c.wi, addr, int(in.n), true)
			}
			if err := c.store(in, addr); err != nil {
				return false, nil, err
			}
		case opStXI8, opStXI16, opStXI32, opStXI64, opStXF32, opStXF64:
			addr := uint64(ri[in.b] + ri[in.c]*in.imm)
			if tr != nil {
				tr.Access(in.in, c.wi, addr, int(in.n), true)
			}
			if err := c.store(in, addr); err != nil {
				return false, nil, err
			}

		case opLdVI, opLdVF:
			addr := uint64(ri[in.b])
			if tr != nil {
				tr.Access(in.in, c.wi, addr, int(in.n), false)
			}
			if err := c.loadVec(in, addr); err != nil {
				return false, nil, err
			}
		case opLdXVI, opLdXVF:
			addr := uint64(ri[in.b] + ri[in.c]*in.imm)
			if tr != nil {
				tr.Access(in.in, c.wi, addr, int(in.n), false)
			}
			if err := c.loadVec(in, addr); err != nil {
				return false, nil, err
			}
		case opStVI, opStVF:
			addr := uint64(ri[in.b])
			if tr != nil {
				tr.Access(in.in, c.wi, addr, int(in.n), true)
			}
			if err := c.storeVec(in, addr); err != nil {
				return false, nil, err
			}
		case opStXVI, opStXVF:
			addr := uint64(ri[in.b] + ri[in.c]*in.imm)
			if tr != nil {
				tr.Access(in.in, c.wi, addr, int(in.n), true)
			}
			if err := c.storeVec(in, addr); err != nil {
				return false, nil, err
			}

		case opAddI:
			ri[in.a] = ri[in.b] + ri[in.c]
		case opSubI:
			ri[in.a] = ri[in.b] - ri[in.c]
		case opMulI:
			ri[in.a] = ri[in.b] * ri[in.c]
		case opAndI:
			ri[in.a] = ri[in.b] & ri[in.c]
		case opOrI:
			ri[in.a] = ri[in.b] | ri[in.c]
		case opXorI:
			ri[in.a] = ri[in.b] ^ ri[in.c]
		case opAddI32:
			ri[in.a] = int64(int32(ri[in.b] + ri[in.c]))
		case opSubI32:
			ri[in.a] = int64(int32(ri[in.b] - ri[in.c]))
		case opMulI32:
			ri[in.a] = int64(int32(ri[in.b] * ri[in.c]))
		case opAddU32:
			ri[in.a] = int64(uint32(ri[in.b] + ri[in.c]))
		case opSubU32:
			ri[in.a] = int64(uint32(ri[in.b] - ri[in.c]))
		case opMulU32:
			ri[in.a] = int64(uint32(ri[in.b] * ri[in.c]))
		case opIntBin:
			v, err := vm.IntBin(ir.Op(in.sub), clc.ScalarKind(in.kind), ri[in.b], ri[in.c])
			if err != nil {
				return false, nil, err
			}
			ri[in.a] = v

		case opAddF:
			rf[in.a] = rf[in.b] + rf[in.c]
		case opSubF:
			rf[in.a] = rf[in.b] - rf[in.c]
		case opMulF:
			rf[in.a] = rf[in.b] * rf[in.c]
		case opDivF:
			rf[in.a] = rf[in.b] / rf[in.c]
		case opAddF32:
			rf[in.a] = float64(float32(rf[in.b] + rf[in.c]))
		case opSubF32:
			rf[in.a] = float64(float32(rf[in.b] - rf[in.c]))
		case opMulF32:
			rf[in.a] = float64(float32(rf[in.b] * rf[in.c]))
		case opDivF32:
			rf[in.a] = float64(float32(rf[in.b] / rf[in.c]))
		case opFltBin:
			v, err := vm.FloatBin(ir.Op(in.sub), clc.ScalarKind(in.kind), rf[in.b], rf[in.c])
			if err != nil {
				return false, nil, err
			}
			rf[in.a] = v

		case opNegF:
			rf[in.a] = -rf[in.b]
		case opNegI:
			ri[in.a] = vm.NormInt(-ri[in.b], clc.ScalarKind(in.kind))
		case opNotI:
			ri[in.a] = vm.NormInt(^ri[in.b], clc.ScalarKind(in.kind))
		case opVNegF:
			d, s := vf[in.a], vf[in.b]
			for i := range d {
				d[i] = -s[i]
			}
		case opVNegI:
			k := clc.ScalarKind(in.kind)
			d, s := vi[in.a], vi[in.b]
			for i := range d {
				d[i] = vm.NormInt(-s[i], k)
			}
		case opVNotI:
			k := clc.ScalarKind(in.kind)
			d, s := vi[in.a], vi[in.b]
			for i := range d {
				d[i] = vm.NormInt(^s[i], k)
			}

		case opEqI:
			ri[in.a] = b2i(ri[in.b] == ri[in.c])
		case opNeI:
			ri[in.a] = b2i(ri[in.b] != ri[in.c])
		case opLtI:
			ri[in.a] = b2i(ri[in.b] < ri[in.c])
		case opLeI:
			ri[in.a] = b2i(ri[in.b] <= ri[in.c])
		case opGtI:
			ri[in.a] = b2i(ri[in.b] > ri[in.c])
		case opGeI:
			ri[in.a] = b2i(ri[in.b] >= ri[in.c])
		case opLtU:
			ri[in.a] = b2i(uint64(ri[in.b]) < uint64(ri[in.c]))
		case opLeU:
			ri[in.a] = b2i(uint64(ri[in.b]) <= uint64(ri[in.c]))
		case opGtU:
			ri[in.a] = b2i(uint64(ri[in.b]) > uint64(ri[in.c]))
		case opGeU:
			ri[in.a] = b2i(uint64(ri[in.b]) >= uint64(ri[in.c]))
		case opEqF:
			ri[in.a] = b2i(rf[in.b] == rf[in.c])
		case opNeF:
			ri[in.a] = b2i(rf[in.b] != rf[in.c])
		case opLtF:
			ri[in.a] = b2i(rf[in.b] < rf[in.c])
		case opLeF:
			ri[in.a] = b2i(rf[in.b] <= rf[in.c])
		case opGtF:
			ri[in.a] = b2i(rf[in.b] > rf[in.c])
		case opGeF:
			ri[in.a] = b2i(rf[in.b] >= rf[in.c])

		case opConvI:
			ri[in.a] = vm.NormInt(ri[in.b], clc.ScalarKind(in.kind))
		case opI2F:
			rf[in.a] = vm.Round32(clc.ScalarKind(in.kind), float64(ri[in.b]))
		case opU2F:
			rf[in.a] = vm.Round32(clc.ScalarKind(in.kind), float64(uint64(ri[in.b])))
		case opF2I:
			f := rf[in.b]
			if math.IsNaN(f) {
				ri[in.a] = 0
			} else {
				ri[in.a] = vm.NormInt(int64(f), clc.ScalarKind(in.kind))
			}
		case opF2F32:
			rf[in.a] = float64(float32(rf[in.b]))
		case opVConv:
			c.vconv(in)

		case opVAddF:
			d, x, y := vf[in.a], vf[in.b], vf[in.c]
			if in.kind == kF32 {
				for i := range d {
					d[i] = float64(float32(x[i] + y[i]))
				}
			} else {
				for i := range d {
					d[i] = x[i] + y[i]
				}
			}
		case opVSubF:
			d, x, y := vf[in.a], vf[in.b], vf[in.c]
			if in.kind == kF32 {
				for i := range d {
					d[i] = float64(float32(x[i] - y[i]))
				}
			} else {
				for i := range d {
					d[i] = x[i] - y[i]
				}
			}
		case opVMulF:
			d, x, y := vf[in.a], vf[in.b], vf[in.c]
			if in.kind == kF32 {
				for i := range d {
					d[i] = float64(float32(x[i] * y[i]))
				}
			} else {
				for i := range d {
					d[i] = x[i] * y[i]
				}
			}
		case opVDivF:
			d, x, y := vf[in.a], vf[in.b], vf[in.c]
			if in.kind == kF32 {
				for i := range d {
					d[i] = float64(float32(x[i] / y[i]))
				}
			} else {
				for i := range d {
					d[i] = x[i] / y[i]
				}
			}
		case opVBinF:
			d, x, y := vf[in.a], vf[in.b], vf[in.c]
			op, k := ir.Op(in.sub), clc.ScalarKind(in.kind)
			for i := range d {
				v, err := vm.FloatBin(op, k, x[i], y[i])
				if err != nil {
					return false, nil, err
				}
				d[i] = v
			}
		case opVBinI:
			d, x, y := vi[in.a], vi[in.b], vi[in.c]
			op, k := ir.Op(in.sub), clc.ScalarKind(in.kind)
			for i := range d {
				v, err := vm.IntBin(op, k, x[i], y[i])
				if err != nil {
					return false, nil, err
				}
				d[i] = v
			}

		case opExtI:
			ri[in.a] = vi[in.b][in.imm]
		case opExtF:
			rf[in.a] = vf[in.b][in.imm]
		case opInsI:
			d := vi[in.a]
			copy(d, vi[in.b])
			d[in.imm] = ri[in.c]
		case opInsF:
			d := vf[in.a]
			copy(d, vf[in.b])
			d[in.imm] = rf[in.c]
		case opShufI:
			d, s := vi[in.a], vi[in.b]
			for i, l := range auxs[in.imm].comps {
				d[i] = s[l]
			}
		case opShufF:
			d, s := vf[in.a], vf[in.b]
			for i, l := range auxs[in.imm].comps {
				d[i] = s[l]
			}
		case opBuildI:
			d := vi[in.a]
			for i, r := range auxs[in.imm].refs {
				d[i] = ri[r.idx]
			}
		case opBuildF:
			d := vf[in.a]
			for i, r := range auxs[in.imm].refs {
				d[i] = rf[r.idx]
			}

		case opDotVF:
			x, y := vf[in.b], vf[in.c]
			var sum float64
			for i := range x {
				sum += x[i] * y[i]
			}
			rf[in.a] = vm.Round32(clc.ScalarKind(in.kind), sum)
		case opDotSS:
			rf[in.a] = rf[in.b] * rf[in.c]
		case opLenVF:
			x := vf[in.b]
			var sum float64
			for i := range x {
				sum += x[i] * x[i]
			}
			rf[in.a] = vm.Round32(clc.ScalarKind(in.kind), math.Sqrt(sum))
		case opLenSS:
			rf[in.a] = math.Abs(rf[in.b])
		case opMathF:
			ax := &auxs[in.imm]
			fa := g.scratchF(len(ax.refs))
			for i, r := range ax.refs {
				fa[i] = rf[r.idx]
			}
			v, err := vm.MathF(ax.name, clc.ScalarKind(in.kind), fa)
			if err != nil {
				return false, nil, err
			}
			rf[in.a] = v
		case opMathI:
			ax := &auxs[in.imm]
			ia := g.scratchI(len(ax.refs))
			for i, r := range ax.refs {
				ia[i] = ri[r.idx]
			}
			v, err := vm.MathI(ax.name, clc.ScalarKind(in.kind), ia)
			if err != nil {
				return false, nil, err
			}
			ri[in.a] = v
		case opVMathF:
			ax := &auxs[in.imm]
			d := vf[in.a]
			fa := g.scratchF(len(ax.refs))
			k := clc.ScalarKind(in.kind)
			for l := range d {
				for i, r := range ax.refs {
					fa[i] = vf[r.idx][l]
				}
				v, err := vm.MathF(ax.name, k, fa)
				if err != nil {
					return false, nil, err
				}
				d[l] = v
			}
		case opVMathI:
			ax := &auxs[in.imm]
			d := vi[in.a]
			ia := g.scratchI(len(ax.refs))
			k := clc.ScalarKind(in.kind)
			for l := range d {
				for i, r := range ax.refs {
					ia[i] = vi[r.idx][l]
				}
				v, err := vm.MathI(ax.name, k, ia)
				if err != nil {
					return false, nil, err
				}
				d[l] = v
			}

		default:
			return false, nil, fmt.Errorf("bcode: invalid opcode %d at pc %d", in.op, pc)
		}
		pc++
	}
}

// callFn executes a user function synchronously within the work-item,
// running it in the pooled register file for the current call depth. The
// caller's bank slices are passed in so the return value lands in the
// caller's registers after the context is restored.
func (g *groupRun) callFn(c *wCtx, in *inst, ri []int64, rf []float64, vi [][]int64, vf [][]float64) error {
	ax := &c.bf.aux[in.imm]
	callee := ax.callee
	fr := c.frame()
	fr.regs.ensure(callee)
	copy(fr.regs.ri, callee.intConsts)
	copy(fr.regs.rf, callee.fltConsts)
	for i, r := range ax.refs {
		p := callee.params[i]
		switch p.bank {
		case bInt:
			fr.regs.ri[p.idx] = ri[r.idx]
		case bFlt:
			fr.regs.rf[p.idx] = rf[r.idx]
		case bVecI:
			copy(fr.regs.vi[p.idx], vi[r.idx])
		case bVecF:
			copy(fr.regs.vf[p.idx], vf[r.idx])
		}
	}

	saveBf, savePC := c.bf, c.pc
	saveRi, saveRf, saveVi, saveVf := c.ri, c.rfl, c.vi, c.vf
	saveBase, saveSP := c.frameBase, c.sp

	c.bf = callee
	c.pc = 0
	c.ri, c.rfl = fr.regs.ri, fr.regs.rf
	c.vi, c.vf = fr.regs.vi, fr.regs.vf
	c.frameBase = c.sp
	c.sp += callee.frameSize
	c.depth++
	if c.sp > len(c.pmem) {
		return fmt.Errorf("vm: private stack overflow calling %s", callee.fn.Name)
	}
	_, _, err := g.exec(c, false)
	c.depth--
	c.bf, c.pc = saveBf, savePC
	c.ri, c.rfl = saveRi, saveRf
	c.vi, c.vf = saveVi, saveVf
	c.frameBase, c.sp = saveBase, saveSP
	if err != nil {
		return err
	}
	if in.a >= 0 {
		switch bank(in.sub) {
		case bInt:
			ri[in.a] = c.retI
		case bFlt:
			rf[in.a] = c.retF
		case bVecI:
			if c.retVI != nil {
				copy(vi[in.a], c.retVI)
			}
		case bVecF:
			if c.retVF != nil {
				copy(vf[in.a], c.retVF)
			}
		}
	}
	return nil
}

// wiQuery answers a runtime-dimension work-item query.
func (g *groupRun) wiQuery(c *wCtx, q int32, d int64) int64 {
	if d < 0 || d > 2 {
		return 0
	}
	switch q {
	case qGlobalID:
		return c.gid[d]
	case qLocalID:
		return c.lid[d]
	case qGroupID:
		return c.grp[d]
	case qGlobalSize:
		return g.gsz[d]
	case qLocalSize:
		return g.lsz[d]
	case qNumGroups:
		return g.ngrp[d]
	case qWorkDim:
		return 3
	}
	return 0
}

// arena resolves a tagged address to its backing byte arena, with the
// interpreter's exact bounds diagnostics.
func (c *wCtx) arena(addr uint64) ([]byte, uint64, error) {
	space, off := vm.SplitAddr(addr)
	switch space {
	case clc.ASGlobal:
		if int(off) >= len(c.gmem) {
			return nil, 0, fmt.Errorf("vm: global access at %d out of bounds (%d)", off, len(c.gmem))
		}
		return c.gmem, off, nil
	case clc.ASLocal:
		if int(off) >= len(c.lmem) {
			return nil, 0, fmt.Errorf("vm: local access at %d out of bounds (%d)", off, len(c.lmem))
		}
		return c.lmem, off, nil
	default:
		if int(off) >= len(c.pmem) {
			return nil, 0, fmt.Errorf("vm: private access at %d out of bounds (%d)", off, len(c.pmem))
		}
		return c.pmem, off, nil
	}
}

// load performs a scalar load. For scalar memory ops in.n is both the
// traced size and the access width.
func (c *wCtx) load(in *inst, addr uint64) error {
	a, off, err := c.arena(addr)
	if err != nil {
		return err
	}
	sz := int(in.n)
	if int(off)+sz > len(a) {
		return fmt.Errorf("vm: load of %d bytes at %d overruns arena (%d)", sz, off, len(a))
	}
	switch in.op {
	case opLdI8, opLdXI8:
		c.ri[in.a] = int64(int8(a[off]))
	case opLdU8, opLdXU8:
		c.ri[in.a] = int64(a[off])
	case opLdI16, opLdXI16:
		c.ri[in.a] = int64(int16(binary.LittleEndian.Uint16(a[off:])))
	case opLdU16, opLdXU16:
		c.ri[in.a] = int64(binary.LittleEndian.Uint16(a[off:]))
	case opLdI32, opLdXI32:
		c.ri[in.a] = int64(int32(binary.LittleEndian.Uint32(a[off:])))
	case opLdU32, opLdXU32:
		c.ri[in.a] = int64(binary.LittleEndian.Uint32(a[off:]))
	case opLdI64, opLdXI64:
		c.ri[in.a] = int64(binary.LittleEndian.Uint64(a[off:]))
	case opLdF32, opLdXF32:
		c.rfl[in.a] = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[off:])))
	case opLdF64, opLdXF64:
		c.rfl[in.a] = math.Float64frombits(binary.LittleEndian.Uint64(a[off:]))
	}
	return nil
}

// store performs a scalar store.
func (c *wCtx) store(in *inst, addr uint64) error {
	a, off, err := c.arena(addr)
	if err != nil {
		return err
	}
	sz := int(in.n)
	if int(off)+sz > len(a) {
		return fmt.Errorf("vm: store of %d bytes at %d overruns arena (%d)", sz, off, len(a))
	}
	switch in.op {
	case opStI8, opStXI8:
		a[off] = byte(c.ri[in.a])
	case opStI16, opStXI16:
		binary.LittleEndian.PutUint16(a[off:], uint16(c.ri[in.a]))
	case opStI32, opStXI32:
		binary.LittleEndian.PutUint32(a[off:], uint32(c.ri[in.a]))
	case opStI64, opStXI64:
		binary.LittleEndian.PutUint64(a[off:], uint64(c.ri[in.a]))
	case opStF32, opStXF32:
		binary.LittleEndian.PutUint32(a[off:], math.Float32bits(float32(c.rfl[in.a])))
	case opStF64, opStXF64:
		binary.LittleEndian.PutUint64(a[off:], math.Float64bits(c.rfl[in.a]))
	}
	return nil
}

// loadVec loads a vector lane by lane at element-size strides, with the
// interpreter's per-lane bounds checks.
func (c *wCtx) loadVec(in *inst, addr uint64) error {
	k := clc.ScalarKind(in.kind)
	es := k.Size()
	lanes := int(in.sub)
	flt := in.op == opLdVF || in.op == opLdXVF
	for i := 0; i < lanes; i++ {
		a, off, err := c.arena(addr + uint64(i*es))
		if err != nil {
			return err
		}
		if int(off)+es > len(a) {
			return fmt.Errorf("vm: load of %d bytes at %d overruns arena (%d)", es, off, len(a))
		}
		if flt {
			if k == clc.KFloat {
				c.vf[in.a][i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[off:])))
			} else {
				c.vf[in.a][i] = math.Float64frombits(binary.LittleEndian.Uint64(a[off:]))
			}
		} else {
			c.vi[in.a][i] = loadIntLane(a, off, k)
		}
	}
	return nil
}

// storeVec stores a vector lane by lane.
func (c *wCtx) storeVec(in *inst, addr uint64) error {
	k := clc.ScalarKind(in.kind)
	es := k.Size()
	lanes := int(in.sub)
	flt := in.op == opStVF || in.op == opStXVF
	for i := 0; i < lanes; i++ {
		a, off, err := c.arena(addr + uint64(i*es))
		if err != nil {
			return err
		}
		if int(off)+es > len(a) {
			return fmt.Errorf("vm: store of %d bytes at %d overruns arena (%d)", es, off, len(a))
		}
		if flt {
			if k == clc.KFloat {
				binary.LittleEndian.PutUint32(a[off:], math.Float32bits(float32(c.vf[in.a][i])))
			} else {
				binary.LittleEndian.PutUint64(a[off:], math.Float64bits(c.vf[in.a][i]))
			}
		} else {
			storeIntLane(a, off, k, c.vi[in.a][i])
		}
	}
	return nil
}

func loadIntLane(a []byte, off uint64, k clc.ScalarKind) int64 {
	switch k {
	case clc.KBool, clc.KUChar:
		return int64(a[off])
	case clc.KChar:
		return int64(int8(a[off]))
	case clc.KShort:
		return int64(int16(binary.LittleEndian.Uint16(a[off:])))
	case clc.KUShort:
		return int64(binary.LittleEndian.Uint16(a[off:]))
	case clc.KInt:
		return int64(int32(binary.LittleEndian.Uint32(a[off:])))
	case clc.KUInt:
		return int64(binary.LittleEndian.Uint32(a[off:]))
	default: // KLong, KULong
		return int64(binary.LittleEndian.Uint64(a[off:]))
	}
}

func storeIntLane(a []byte, off uint64, k clc.ScalarKind, v int64) {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		a[off] = byte(v)
	case clc.KShort, clc.KUShort:
		binary.LittleEndian.PutUint16(a[off:], uint16(v))
	case clc.KInt, clc.KUInt:
		binary.LittleEndian.PutUint32(a[off:], uint32(v))
	default: // KLong, KULong
		binary.LittleEndian.PutUint64(a[off:], uint64(v))
	}
}

// vconv performs a lane-wise vector conversion.
func (c *wCtx) vconv(in *inst) {
	from := clc.ScalarKind(in.sub)
	to := clc.ScalarKind(in.kind)
	if from.IsFloat() {
		src := c.vf[in.b]
		if to.IsFloat() {
			d := c.vf[in.a]
			for i := range d {
				_, d[i] = vm.ConvertKind(0, src[i], from, to)
			}
		} else {
			d := c.vi[in.a]
			for i := range d {
				d[i], _ = vm.ConvertKind(0, src[i], from, to)
			}
		}
	} else {
		src := c.vi[in.b]
		if to.IsFloat() {
			d := c.vf[in.a]
			for i := range d {
				_, d[i] = vm.ConvertKind(src[i], 0, from, to)
			}
		} else {
			d := c.vi[in.a]
			for i := range d {
				d[i], _ = vm.ConvertKind(src[i], 0, from, to)
			}
		}
	}
}

// scratchF returns the worker's pooled float argument buffer.
func (g *groupRun) scratchF(n int) []float64 {
	if cap(g.mathF) < n {
		g.mathF = make([]float64, n)
	}
	return g.mathF[:n]
}

// scratchI returns the worker's pooled integer argument buffer.
func (g *groupRun) scratchI(n int) []int64 {
	if cap(g.mathI) < n {
		g.mathI = make([]int64, n)
	}
	return g.mathI[:n]
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
