package bcode_test

import (
	"testing"

	"grover/internal/ir"
	"grover/internal/vm"
	"grover/opencl"
)

type countTracer struct{ n int64 }

func (t *countTracer) GroupBegin(group [3]int, linear int)                            {}
func (t *countTracer) Access(in *ir.Instr, wi int, addr uint64, size int, store bool) {}
func (t *countTracer) Barrier(wiCount int)                                            {}
func (t *countTracer) Instrs(wi int, n int64)                                         { t.n += n }
func (t *countTracer) GroupEnd()                                                      {}

func TestRetireParity(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"plain", `__kernel void k(__global int* o) { int g = get_global_id(0); o[g] = g + 1; }`},
		{"call", `int two(int a) { return a + 2; }
__kernel void k(__global int* o) { int g = get_global_id(0); o[g] = two(g); }`},
		{"ret", `__kernel void k(__global int* o, int n) { int g = get_global_id(0); if (g >= n) { return; } o[g] = g; }`},
		{"conv", `__kernel void k(__global int* o) { int g = get_global_id(0); uint u = (uint)g * 7u; o[g] = (int)(u >> 1); }`},
		{"div", `__kernel void k(__global int* o) { int g = get_global_id(0); o[g] = (g % 97) + (g << 2) - (g / 3); }`},
		{"vec", `__kernel void k(__global float4* o, __global float4* i) { int g = get_global_id(0); float4 v = i[g]; o[g] = v * (float4)(1.0f, 2.0f, 3.0f, 4.0f) + v.yxwz; }`},
		{"dot", `__kernel void k(__global float* o, __global float4* i) { int g = get_global_id(0); float4 v = i[g]; o[g] = dot(v, v) + rsqrt(fabs(v.x) + 1.0f); }`},
	}
	plat := opencl.NewPlatform()
	for _, tc := range cases {
		ctx := opencl.NewContext(plat.Devices()[0])
		prog, err := ctx.CompileProgram(tc.name, tc.src, nil)
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		o := ctx.NewBuffer(8 * 16)
		i := ctx.NewBuffer(8 * 16)
		var args []interface{}
		switch tc.name {
		case "ret":
			args = []interface{}{o, int32(6)}
		case "vec", "dot":
			args = []interface{}{o, i}
		default:
			args = []interface{}{o}
		}
		vargs, err := opencl.VMArgs(args...)
		if err != nil {
			t.Fatalf("%s: args: %v", tc.name, err)
		}
		got := make([]int64, len(backends))
		for bi, backend := range backends {
			tr := &countTracer{}
			cfg := vm.Config{GlobalSize: [3]int{8, 1, 1}, LocalSize: [3]int{8, 1, 1}, Backend: backend, Args: vargs}
			opts := &vm.LaunchOpts{Workers: 1, TracerFor: func(int) vm.Tracer { return tr }}
			if err := prog.VM().Launch("k", cfg, ctx.Mem(), opts); err != nil {
				t.Fatalf("%s/%s: %v", tc.name, backend, err)
			}
			got[bi] = tr.n
		}
		for bi := 1; bi < len(backends); bi++ {
			if got[bi] != got[0] {
				t.Errorf("%s: retired instruction counts differ: interp=%d %s=%d",
					tc.name, got[0], backends[bi], got[bi])
			}
		}
	}
}
