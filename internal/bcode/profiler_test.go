package bcode_test

import (
	"strings"
	"testing"

	"grover/internal/vm"
	"grover/opencl"
)

// TestProfilerParity profiles the same launch on every backend and
// asserts the region structure and retire/traffic counters are
// backend-invariant, and that the profiled retire count matches the
// traced retire count (the profiler reuses the tracer's accounting).
func TestProfilerParity(t *testing.T) {
	const src = `__kernel void k(__global int* o) {
	__local int tile[8];
	int l = get_local_id(0);
	int g = get_global_id(0);
	tile[l] = g * 2 + 1;
	barrier(CLK_LOCAL_MEM_FENCE);
	o[g] = tile[(l + 1) % 8] + tile[(l + 7) % 8];
}`
	testProfilerParity(t, src, 2)
}

// TestProfilerParityDivergent repeats the parity check with divergent
// control flow and a data-dependent loop, exercising the jit backend's
// per-run cost aggregates under mask splits.
func TestProfilerParityDivergent(t *testing.T) {
	const src = `__kernel void k(__global int* o) {
	__local int tile[8];
	int l = get_local_id(0);
	int g = get_global_id(0);
	int acc = 0;
	if (l % 2 == 0) {
		for (int i = 0; i < l + 1; i++) { acc += i * g; }
	} else {
		acc = g * 3;
	}
	tile[l] = acc;
	barrier(CLK_LOCAL_MEM_FENCE);
	o[g] = tile[7 - l];
}`
	testProfilerParity(t, src, 2)
}

func testProfilerParity(t *testing.T, src string, wantRegions int) {
	plat := opencl.NewPlatform()
	ctx := opencl.NewContext(plat.Devices()[0])
	prog, err := ctx.CompileProgram("prof", src, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	o := ctx.NewBuffer(4 * 16)
	vargs, err := opencl.VMArgs(o)
	if err != nil {
		t.Fatalf("args: %v", err)
	}

	reports := make([]*vm.ProfileReport, len(backends))
	for bi, backend := range backends {
		prof := vm.NewProfiler()
		cfg := vm.Config{GlobalSize: [3]int{16, 1, 1}, LocalSize: [3]int{8, 1, 1}, Backend: backend, Args: vargs}
		opts := &vm.LaunchOpts{Workers: 1, Profiler: prof}
		if err := prog.VM().Launch("k", cfg, ctx.Mem(), opts); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		rep := prof.Report()
		if rep == nil {
			t.Fatalf("%s: nil profile report", backend)
		}
		if rep.Backend != backend {
			t.Errorf("%s: report labeled backend %q", backend, rep.Backend)
		}
		if rep.Kernel != "k" {
			t.Errorf("%s: report labeled kernel %q", backend, rep.Kernel)
		}
		if rep.Launches != 1 {
			t.Errorf("%s: launches = %d, want 1", backend, rep.Launches)
		}
		reports[bi] = rep
	}

	ref := reports[0]
	if len(ref.Regions) != wantRegions {
		t.Fatalf("interp: regions = %d, want %d (one barrier round + one exit round): %+v", len(ref.Regions), wantRegions, ref.Regions)
	}
	if ref.Regions[0].Barriers != ref.Regions[0].Groups {
		t.Errorf("interp: round 0 should end at a barrier for every group: %+v", ref.Regions[0])
	}
	if ref.Regions[1].Barriers != 0 {
		t.Errorf("interp: round 1 should be the exit round: %+v", ref.Regions[1])
	}
	if ref.Regions[0].Groups != 2 {
		t.Errorf("interp: round 0 groups = %d, want 2", ref.Regions[0].Groups)
	}
	if ref.Retired == 0 || ref.Loads == 0 || ref.Stores == 0 {
		t.Errorf("interp: empty counters: %+v", ref)
	}
	for bi := 1; bi < len(backends); bi++ {
		rep := reports[bi]
		if len(rep.Regions) != len(ref.Regions) {
			t.Errorf("%s: %d regions, interp has %d", backends[bi], len(rep.Regions), len(ref.Regions))
			continue
		}
		for i, r := range rep.Regions {
			rr := ref.Regions[i]
			if r.Retired != rr.Retired || r.Loads != rr.Loads || r.Stores != rr.Stores ||
				r.Groups != rr.Groups || r.Barriers != rr.Barriers {
				t.Errorf("%s: region %d counters differ from interp:\n  interp: %+v\n  %s: %+v",
					backends[bi], i, rr, backends[bi], r)
			}
		}
	}

	// The profiled retire total must equal what a tracer observes.
	tr := &countTracer{}
	cfg := vm.Config{GlobalSize: [3]int{16, 1, 1}, LocalSize: [3]int{8, 1, 1}, Backend: vm.BackendInterp, Args: vargs}
	opts := &vm.LaunchOpts{Workers: 1, TracerFor: func(int) vm.Tracer { return tr }}
	if err := prog.VM().Launch("k", cfg, ctx.Mem(), opts); err != nil {
		t.Fatalf("traced launch: %v", err)
	}
	if tr.n != ref.Retired {
		t.Errorf("profiled retired %d != traced retired %d", ref.Retired, tr.n)
	}

	// The text rendering names every region.
	text := ref.Text()
	if !strings.Contains(text, "round 0") || !strings.Contains(text, "round 1 → exit") {
		t.Errorf("text report missing region rows:\n%s", text)
	}
}

// TestProfilerWithTracer asserts profiling composes with tracing (wgvec
// shares per-lane retire counters between the two consumers).
func TestProfilerWithTracer(t *testing.T) {
	const src = `__kernel void k(__global int* o) {
	__local int tile[4];
	int l = get_local_id(0);
	tile[l] = l;
	barrier(CLK_LOCAL_MEM_FENCE);
	o[get_global_id(0)] = tile[3 - l];
}`
	plat := opencl.NewPlatform()
	for _, backend := range []string{vm.BackendInterp, "bcode", "wgvec"} {
		ctx := opencl.NewContext(plat.Devices()[0])
		prog, err := ctx.CompileProgram("proftr", src, nil)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		o := ctx.NewBuffer(4 * 4)
		vargs, err := opencl.VMArgs(o)
		if err != nil {
			t.Fatalf("args: %v", err)
		}
		prof := vm.NewProfiler()
		tr := &countTracer{}
		cfg := vm.Config{GlobalSize: [3]int{4, 1, 1}, LocalSize: [3]int{4, 1, 1}, Backend: backend, Args: vargs}
		opts := &vm.LaunchOpts{Workers: 1, TracerFor: func(int) vm.Tracer { return tr }, Profiler: prof}
		if err := prog.VM().Launch("k", cfg, ctx.Mem(), opts); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		rep := prof.Report()
		if rep == nil {
			t.Fatalf("%s: nil report under tracing", backend)
		}
		if rep.Retired != tr.n {
			t.Errorf("%s: profiled retired %d != traced retired %d", backend, rep.Retired, tr.n)
		}
	}
}
