// Randomized differential property test: seeded random NDRange shapes,
// work-group sizes, scalar arguments and input buffers are run through
// every registered backend with a fixed worker count, and the full trace
// streams (hashed per worker, including instruction identity) plus the
// final memory images must agree exactly.
package bcode_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"unsafe"

	"grover/internal/ir"
	"grover/internal/vm"
	"grover/opencl"
)

// stageSrc exercises barriers, static and dynamic __local memory, and
// cross-work-item data flow through the local arena.
const stageSrc = `
#define T 8
__kernel void stage(__global float* out, __global float* in,
                    __local float* dyn, int n, float bias) {
    int l = get_local_id(0);
    int ls = get_local_size(0);
    int g = get_global_id(0) + get_global_size(0) * get_global_id(1);
    __local float sbuf[T];
    sbuf[l % T] = in[g % n] + bias;
    dyn[l] = in[g % n] * 2.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int i = 0; i < ls; i++) {
        acc += dyn[(l + i) % ls] + sbuf[i % T];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    out[g % n] = acc + sbuf[(T - 1) - (l % T)];
}
`

// scrambleSrc exercises helper-function calls, vector arithmetic and
// shuffles, math builtins, unsigned wrap-around and integer division.
const scrambleSrc = `
float mixup(float a, float b) {
    return mad(a, b, 1.5f) + fabs(a - b);
}
__kernel void scramble(__global float4* vout, __global float4* vin,
                       __global int* iout, int n, float s) {
    int g = get_global_id(0) + get_global_size(0) * get_global_id(1);
    if (g >= n) {
        return;
    }
    float4 v = vin[g];
    float d = dot(v, v) + 1.0f;
    float4 w = (float4)(mixup(v.x, s), sqrt(fabs(v.y) + 1.0f), v.z * s, rsqrt(d));
    vout[g] = w * (float4)(0.5f, 1.5f, -1.0f, 2.0f) + v.yxwz;
    uint u = (uint)g * 2654435761u;
    int k = (int)(u >> 7);
    iout[g] = (k % 97) + (g << 2) - (k / 3);
}
`

// hashTracer folds every trace event into one FNV-style accumulator.
// Instruction identity is hashed by pointer: both backends execute the
// same vm.Program in-process, so identical streams hash identically and
// any divergence in instruction attribution is caught.
type hashTracer struct{ h uint64 }

func (t *hashTracer) mix(vals ...uint64) {
	for _, v := range vals {
		t.h ^= v
		t.h *= 1099511628211
	}
}

func (t *hashTracer) GroupBegin(group [3]int, linear int) {
	t.mix(1, uint64(group[0]), uint64(group[1]), uint64(group[2]), uint64(linear))
}

func (t *hashTracer) Access(in *ir.Instr, wi int, addr uint64, size int, store bool) {
	s := uint64(0)
	if store {
		s = 1
	}
	t.mix(2, uint64(uintptr(unsafe.Pointer(in))), uint64(wi), addr, uint64(size), s)
}

func (t *hashTracer) Barrier(wiCount int)    { t.mix(3, uint64(wiCount)) }
func (t *hashTracer) Instrs(wi int, n int64) { t.mix(4, uint64(wi), uint64(n)) }
func (t *hashTracer) GroupEnd()              { t.mix(5) }

func TestBackendPropertyRandom(t *testing.T) {
	const (
		seed    = 0x5eed
		workers = 3
	)
	trials := 12
	if testing.Short() {
		trials = 4
	}
	rng := rand.New(rand.NewSource(seed))
	plat := opencl.NewPlatform()

	for trial := 0; trial < trials; trial++ {
		for _, kernel := range []string{"stage", "scramble"} {
			kernel := kernel
			// Draw the trial's shape deterministically, outside t.Run, so
			// the sequence does not depend on subtest scheduling.
			lx := 1 << rng.Intn(4) // 1..8
			ly := 1 + rng.Intn(2)
			gx := lx * (1 + rng.Intn(4))
			gy := ly * (1 + rng.Intn(3))
			scalar := float32(rng.NormFloat64())
			nitems := gx * gy
			input := make([]float32, 4*nitems)
			for i := range input {
				input[i] = float32(rng.NormFloat64())
			}
			t.Run(fmt.Sprintf("%s/trial%d", kernel, trial), func(t *testing.T) {
				ctx := opencl.NewContext(plat.Devices()[0])
				src, defs := stageSrc, map[string]string(nil)
				if kernel == "scramble" {
					src = scrambleSrc
				}
				prog, err := ctx.CompileProgram(kernel, src, defs)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}

				var args []interface{}
				var outBuf *opencl.Buffer
				switch kernel {
				case "stage":
					in := ctx.NewBuffer(nitems * 4)
					in.WriteFloat32(input[:nitems])
					outBuf = ctx.NewBuffer(nitems * 4)
					args = []interface{}{outBuf, in, opencl.LocalMem{Size: lx * ly * 4}, int32(nitems), scalar}
				case "scramble":
					vin := ctx.NewBuffer(nitems * 16)
					vin.WriteFloat32(input)
					outBuf = ctx.NewBuffer(nitems * 16)
					iout := ctx.NewBuffer(nitems * 4)
					args = []interface{}{outBuf, vin, iout, int32(nitems), scalar}
				}
				vargs, err := opencl.VMArgs(args...)
				if err != nil {
					t.Fatalf("args: %v", err)
				}
				cfg := vm.Config{
					GlobalSize: [3]int{gx, gy, 1},
					LocalSize:  [3]int{lx, ly, 1},
					Args:       vargs,
				}

				mem := ctx.Mem()
				initial := append([]byte(nil), mem.Data...)

				var wantMem []byte
				var wantHash []uint64
				for bi, backend := range backends {
					mem.Data = mem.Data[:len(initial)]
					copy(mem.Data, initial)
					tracers := make([]*hashTracer, workers)
					for i := range tracers {
						tracers[i] = &hashTracer{h: 1469598103934665603}
					}
					cfg.Backend = backend
					opts := &vm.LaunchOpts{
						Workers:   workers,
						TracerFor: func(w int) vm.Tracer { return tracers[w%workers] },
					}
					if err := prog.VM().Launch(kernel, cfg, mem, opts); err != nil {
						t.Fatalf("%s: launch %dx%d/%dx%d: %v", backend, gx, gy, lx, ly, err)
					}
					hashes := make([]uint64, workers)
					for i, tr := range tracers {
						hashes[i] = tr.h
					}
					if bi == 0 {
						wantMem = append([]byte(nil), mem.Data...)
						wantHash = hashes
						continue
					}
					if !bytes.Equal(mem.Data, wantMem) {
						t.Errorf("memory differs from interpreter (global %dx%d local %dx%d)", gx, gy, lx, ly)
					}
					for i := range hashes {
						if hashes[i] != wantHash[i] {
							t.Errorf("worker %d trace hash differs: interp %#x, %s %#x (global %dx%d local %dx%d)",
								i, wantHash[i], backend, hashes[i], gx, gy, lx, ly)
						}
					}
				}
			})
		}
	}
}
