// Differential gate for the compiled backends (bcode and wgvec): every
// benchmark app, in both its baseline and Grover-transformed form, must
// produce bit-identical global memory on the interpreter and on each
// compiled backend, and every device profile must report identical
// simulated counters (which requires all backends to emit identical
// memory-trace streams).
package bcode_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"grover/internal/apps"
	"grover/internal/bcode"
	"grover/internal/device"
	igrover "grover/internal/grover"
	"grover/internal/jit"
	"grover/internal/vm"
	"grover/internal/wgvec"
	"grover/opencl"
)

// backends under comparison; the interpreter is the reference.
var backends = []string{vm.BackendInterp, bcode.Name, wgvec.Name, jit.Name}

func TestBackendDifferentialApps(t *testing.T) {
	profiles := device.All()
	if testing.Short() {
		// One profile keeps the race pass fast now that the matrix
		// covers three backends; the full 6-profile sweep runs in the
		// (un-raced) backends CI job.
		profiles = profiles[:1]
	}
	plat := opencl.NewPlatform()
	for _, app := range apps.All() {
		app := app
		t.Run(app.ID, func(t *testing.T) {
			t.Parallel()
			ctx := opencl.NewContext(plat.Devices()[0])
			prog, err := ctx.CompileProgram(app.ID, app.Source, app.Defines)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			inst, err := app.Setup(ctx, 1)
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			vargs, err := opencl.VMArgs(inst.Args...)
			if err != nil {
				t.Fatalf("args: %v", err)
			}

			type version struct {
				name string
				p    *opencl.Program
			}
			versions := []version{{"base", prog}}
			nolm, _, err := prog.WithLocalMemoryDisabled(app.Kernel, igrover.Options{Candidates: app.Candidates})
			switch {
			case err == nil:
				versions = append(versions, version{"grover", nolm})
			case errors.Is(err, igrover.ErrNoCandidates):
				// No local staging to disable; the base version still runs.
			default:
				t.Fatalf("grover transform: %v", err)
			}

			mem := ctx.Mem()
			initial := append([]byte(nil), mem.Data...)
			restore := func() {
				mem.Data = mem.Data[:len(initial)]
				copy(mem.Data, initial)
			}

			for _, v := range versions {
				cfg := vm.Config{
					GlobalSize: inst.ND.Global,
					LocalSize:  inst.ND.Local,
					Args:       vargs,
				}

				// Functional runs: the interpreter produces the reference
				// memory image, every compiled backend must match byte for
				// byte and also pass the app's own numeric check.
				cfg.Backend = vm.BackendInterp
				restore()
				if err := v.p.VM().Launch(app.Kernel, cfg, mem, nil); err != nil {
					t.Fatalf("%s: interp launch: %v", v.name, err)
				}
				want := append([]byte(nil), mem.Data...)
				if err := inst.Check(); err != nil {
					t.Fatalf("%s: interp result: %v", v.name, err)
				}

				for _, backend := range backends[1:] {
					cfg.Backend = backend
					restore()
					if err := v.p.VM().Launch(app.Kernel, cfg, mem, nil); err != nil {
						t.Fatalf("%s: %s launch: %v", v.name, backend, err)
					}
					if !bytes.Equal(mem.Data, want) {
						t.Fatalf("%s: global memory differs between interp and %s", v.name, backend)
					}
					if err := inst.Check(); err != nil {
						t.Fatalf("%s: %s result: %v", v.name, backend, err)
					}
				}

				// Simulated runs: identical traces imply identical
				// counters on every device profile.
				for _, prof := range profiles {
					results := make([]device.Result, len(backends))
					for bi, backend := range backends {
						sim, err := device.NewSimulator(prof)
						if err != nil {
							t.Fatalf("%s: simulator %s: %v", v.name, prof.Name, err)
						}
						restore()
						cfg.Backend = backend
						if err := v.p.VM().Launch(app.Kernel, cfg, mem, sim.Opts()); err != nil {
							t.Fatalf("%s on %s via %s: %v", v.name, prof.Name, backend, err)
						}
						if !bytes.Equal(mem.Data, want) {
							t.Fatalf("%s on %s via %s: traced run changed results", v.name, prof.Name, backend)
						}
						results[bi] = sim.Result()
					}
					for bi := 1; bi < len(backends); bi++ {
						if !reflect.DeepEqual(results[0], results[bi]) {
							t.Errorf("%s on %s: device counters differ\n interp: %+v\n %s: %+v",
								v.name, prof.Name, results[0], backends[bi], results[bi])
						}
					}
				}
			}
		})
	}
}
