// Differential gate for the bytecode backend: every benchmark app, in
// both its baseline and Grover-transformed form, must produce
// bit-identical global memory on the interpreter and on bcode, and every
// device profile must report identical simulated counters (which requires
// the two backends to emit identical memory-trace streams).
package bcode_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"grover/internal/apps"
	"grover/internal/bcode"
	"grover/internal/device"
	igrover "grover/internal/grover"
	"grover/internal/vm"
	"grover/opencl"
)

// backends under comparison; the interpreter is the reference.
var backends = []string{vm.BackendInterp, bcode.Name}

func TestBackendDifferentialApps(t *testing.T) {
	profiles := device.All()
	if testing.Short() {
		profiles = profiles[:2]
	}
	plat := opencl.NewPlatform()
	for _, app := range apps.All() {
		app := app
		t.Run(app.ID, func(t *testing.T) {
			t.Parallel()
			ctx := opencl.NewContext(plat.Devices()[0])
			prog, err := ctx.CompileProgram(app.ID, app.Source, app.Defines)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			inst, err := app.Setup(ctx, 1)
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			vargs, err := opencl.VMArgs(inst.Args...)
			if err != nil {
				t.Fatalf("args: %v", err)
			}

			type version struct {
				name string
				p    *opencl.Program
			}
			versions := []version{{"base", prog}}
			nolm, _, err := prog.WithLocalMemoryDisabled(app.Kernel, igrover.Options{Candidates: app.Candidates})
			switch {
			case err == nil:
				versions = append(versions, version{"grover", nolm})
			case errors.Is(err, igrover.ErrNoCandidates):
				// No local staging to disable; the base version still runs.
			default:
				t.Fatalf("grover transform: %v", err)
			}

			mem := ctx.Mem()
			initial := append([]byte(nil), mem.Data...)
			restore := func() {
				mem.Data = mem.Data[:len(initial)]
				copy(mem.Data, initial)
			}

			for _, v := range versions {
				cfg := vm.Config{
					GlobalSize: inst.ND.Global,
					LocalSize:  inst.ND.Local,
					Args:       vargs,
				}

				// Functional runs: interpreter produces the reference
				// memory image, bcode must match byte for byte and also
				// pass the app's own numeric check.
				cfg.Backend = vm.BackendInterp
				restore()
				if err := v.p.VM().Launch(app.Kernel, cfg, mem, nil); err != nil {
					t.Fatalf("%s: interp launch: %v", v.name, err)
				}
				want := append([]byte(nil), mem.Data...)
				if err := inst.Check(); err != nil {
					t.Fatalf("%s: interp result: %v", v.name, err)
				}

				cfg.Backend = bcode.Name
				restore()
				if err := v.p.VM().Launch(app.Kernel, cfg, mem, nil); err != nil {
					t.Fatalf("%s: bcode launch: %v", v.name, err)
				}
				if !bytes.Equal(mem.Data, want) {
					t.Fatalf("%s: global memory differs between backends", v.name)
				}
				if err := inst.Check(); err != nil {
					t.Fatalf("%s: bcode result: %v", v.name, err)
				}

				// Simulated runs: identical traces imply identical
				// counters on every device profile.
				for _, prof := range profiles {
					var results [2]device.Result
					for bi, backend := range backends {
						sim, err := device.NewSimulator(prof)
						if err != nil {
							t.Fatalf("%s: simulator %s: %v", v.name, prof.Name, err)
						}
						restore()
						cfg.Backend = backend
						if err := v.p.VM().Launch(app.Kernel, cfg, mem, sim.Opts()); err != nil {
							t.Fatalf("%s on %s via %s: %v", v.name, prof.Name, backend, err)
						}
						if !bytes.Equal(mem.Data, want) {
							t.Fatalf("%s on %s via %s: traced run changed results", v.name, prof.Name, backend)
						}
						results[bi] = sim.Result()
					}
					if !reflect.DeepEqual(results[0], results[1]) {
						t.Errorf("%s on %s: device counters differ\n interp: %+v\n bcode:  %+v",
							v.name, prof.Name, results[0], results[1])
					}
				}
			}
		})
	}
}
