package bcode_test

import (
	"testing"

	"grover/internal/apps"
	"grover/internal/vm"
	"grover/opencl"
)

// BenchmarkBackends times functional (untraced) launches of three
// representative benchmarks on each backend. Run with
//
//	go test -bench BenchmarkBackends -run '^$' ./internal/bcode/
//
// The committed BENCH_vm.json holds the wall-clock comparison for the
// full Fig. 10 sweep (cmd/groverbench -experiment backends).
func BenchmarkBackends(b *testing.B) {
	plat := opencl.NewPlatform()
	for _, id := range []string{"NVD-MT", "AMD-MM", "NVD-NBody"} {
		app, err := apps.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		ctx := opencl.NewContext(plat.Devices()[0])
		prog, err := ctx.CompileProgram(app.ID, app.Source, app.Defines)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		inst, err := app.Setup(ctx, 1)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		vargs, err := opencl.VMArgs(inst.Args...)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		mem := ctx.Mem()
		initial := append([]byte(nil), mem.Data...)
		for _, backend := range backends {
			cfg := vm.Config{
				GlobalSize: inst.ND.Global,
				LocalSize:  inst.ND.Local,
				Args:       vargs,
				Backend:    backend,
			}
			b.Run(id+"/"+backend, func(b *testing.B) {
				b.SetBytes(int64(inst.Bytes))
				for i := 0; i < b.N; i++ {
					copy(mem.Data[:len(initial)], initial)
					if err := prog.VM().Launch(app.Kernel, cfg, mem, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
