// Package bcode is a register-bytecode execution backend for the kernel
// VM. Each ir.Function is compiled once into flat register-machine
// bytecode: values live in dense per-bank register slots (int64, float64,
// and vector lanes) instead of boxed interpreter values, operands and
// branch targets are resolved to indices at compile time, opcodes are
// specialized by scalar/vector type, and the GEP+load / GEP+store address
// chains that dominate the benchmark kernels are fused into
// superinstructions. The dispatch loop preserves the interpreter's
// contract exactly — cooperative barrier suspend/resume, divergence
// detection, and bit-identical memory-trace emission — so simulated cycle
// counts from internal/memsim are backend-invariant.
//
// The backend registers itself with the VM under the name "bcode";
// importing the package (a blank import suffices) enables it.
//
// The compiled form (Inst, BFunc, the Op* opcode space) is exported so
// other backends can consume bcode's output as their input IR; the
// work-group-vectorized backend in internal/wgvec compiles region
// programs directly from these instructions.
package bcode

import (
	"grover/internal/ir"
)

// Name is the backend's registration name.
const Name = "bcode"

// Opcode enumerates bytecode operations.
type Opcode uint16

// MemKind classifies an opcode's memory traffic for profiler accounting:
// MemLoad / MemStore for the opcodes that emit one tracer Access per
// executed lane, MemNone for everything else. The ranges lean on the
// opcode layout below (scalar and fused loads, then stores, then the
// vector forms) — keep them contiguous when adding opcodes.
type MemKind uint8

// Memory-op classes.
const (
	MemNone MemKind = iota
	MemLoad
	MemStore
)

// MemKind reports whether op is a load, a store, or neither.
func (op Opcode) MemKind() MemKind {
	switch {
	case op >= OpLdI8 && op <= OpLdXF64, op >= OpLdVI && op <= OpLdXVF:
		return MemLoad
	case op >= OpStI8 && op <= OpStXF64, op >= OpStVI && op <= OpStXVF:
		return MemStore
	}
	return MemNone
}

const (
	OpNop Opcode = iota

	// Control flow.
	OpJmp     // pc = imm
	OpCondBrI // pc = ri[a] != 0 ? imm : n
	OpCondBrF // pc = rf[a] != 0 ? imm : n
	OpRet     // return void (kernel level: work-item done)
	OpRetI    // return ri[b]
	OpRetF    // return rf[b]
	OpRetVI   // return vi[b]
	OpRetVF   // return vf[b]
	OpBarrier // suspend at a work-group barrier (kernel level only)
	OpCall    // aux[imm]: callee + arg refs; a = dst (-1 none), sub = dst bank
	OpTrap    // raise the error in aux[imm].Name (deferred semantic error)

	// Constants and moves.
	OpConstI // ri[a] = imm
	OpZeroI  // ri[a] = 0
	OpZeroF  // rf[a] = 0
	OpMovI   // ri[a] = ri[b]
	OpMovF   // rf[a] = rf[b]

	// Work-item queries with a compile-time dimension (imm = dim).
	OpGID  // ri[a] = get_global_id(imm)
	OpLID  // ri[a] = get_local_id(imm)
	OpGRP  // ri[a] = get_group_id(imm)
	OpGSZ  // ri[a] = get_global_size(imm)
	OpLSZ  // ri[a] = get_local_size(imm)
	OpNGRP // ri[a] = get_num_groups(imm)
	OpWIQ  // generic: n = query, b = dim register (runtime-bounded)

	// Allocas.
	OpAllocaP // ri[a] = private address frameBase+imm
	OpAllocaL // ri[a] = imm (precomputed tagged __local address)

	// Address computation (single-index GEP).
	OpIndex  // ri[a] = ri[b] + ri[c]*imm
	OpIndexC // ri[a] = ri[b] + imm

	// Scalar loads: a = dst, b = address register, n = traced size.
	OpLdI8
	OpLdU8
	OpLdI16
	OpLdU16
	OpLdI32
	OpLdU32
	OpLdI64
	OpLdF32
	OpLdF64
	// Fused index+load: address is ri[b] + ri[c]*imm.
	OpLdXI8
	OpLdXU8
	OpLdXI16
	OpLdXU16
	OpLdXI32
	OpLdXU32
	OpLdXI64
	OpLdXF32
	OpLdXF64
	// Scalar stores: a = src, b = address register, n = traced size.
	OpStI8
	OpStI16
	OpStI32
	OpStI64
	OpStF32
	OpStF64
	// Fused index+store: address is ri[b] + ri[c]*imm.
	OpStXI8
	OpStXI16
	OpStXI32
	OpStXI64
	OpStXF32
	OpStXF64
	// Vector loads/stores: kind = element kind, sub = lanes, n = traced
	// size; fused variants address through ri[b] + ri[c]*imm.
	OpLdVI
	OpLdVF
	OpLdXVI
	OpLdXVF
	OpStVI
	OpStVF
	OpStXVI
	OpStXVF

	// 64-bit integer arithmetic (no normalization: the kind's width is 64
	// or the op is normalization-transparent).
	OpAddI
	OpSubI
	OpMulI
	OpAndI
	OpOrI
	OpXorI
	// 32-bit integer arithmetic with C wrapping.
	OpAddI32
	OpSubI32
	OpMulI32
	OpAddU32
	OpSubU32
	OpMulU32
	// Generic integer binary op: sub = ir.Op, kind = scalar kind.
	OpIntBin
	// Double-precision float arithmetic.
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	// Single-precision float arithmetic (round to float32).
	OpAddF32
	OpSubF32
	OpMulF32
	OpDivF32
	// Generic float binary op: sub = ir.Op, kind = scalar kind.
	OpFltBin

	// Unary ops (kind = scalar kind for integer normalization).
	OpNegF
	OpNegI
	OpNotI
	OpVNegF
	OpVNegI
	OpVNotI

	// Comparisons (dst = int register; 0 or 1).
	OpEqI
	OpNeI
	OpLtI
	OpLeI
	OpGtI
	OpGeI
	OpLtU
	OpLeU
	OpGtU
	OpGeU
	OpEqF
	OpNeF
	OpLtF
	OpLeF
	OpGtF
	OpGeF

	// Conversions.
	OpConvI // ri[a] = normInt(ri[b], kind)
	OpI2F   // rf[a] = round(kind, float64(ri[b]))
	OpU2F   // rf[a] = round(kind, float64(uint64(ri[b])))
	OpF2I   // ri[a] = NaN ? 0 : normInt(int64(rf[b]), kind)
	OpF2F32 // rf[a] = float64(float32(rf[b]))
	OpVConv // lane-wise conversion; sub = from kind, kind = to kind

	// Vector arithmetic: a/b/c are vector registers, kind = element kind.
	OpVAddF
	OpVSubF
	OpVMulF
	OpVDivF
	OpVBinF // generic: sub = ir.Op
	OpVBinI // generic: sub = ir.Op

	// Vector shape ops.
	OpExtI   // ri[a] = vi[b][imm]
	OpExtF   // rf[a] = vf[b][imm]
	OpInsI   // vi[a] = vi[b] with lane imm set to ri[c]
	OpInsF   // vf[a] = vf[b] with lane imm set to rf[c]
	OpShufI  // vi[a][i] = vi[b][comps[i]] (aux[imm])
	OpShufF  // vf[a][i] = vf[b][comps[i]] (aux[imm])
	OpBuildI // vi[a][i] = ri[refs[i]] (aux[imm])
	OpBuildF // vf[a][i] = rf[refs[i]] (aux[imm])

	// Math builtins.
	OpDotVF  // rf[a] = round(kind, Σ vf[b]·vf[c])
	OpDotSS  // rf[a] = rf[b] * rf[c]
	OpLenVF  // rf[a] = round(kind, sqrt(Σ vf[b]²))
	OpLenSS  // rf[a] = |rf[b]|
	OpMathF  // rf[a] = builtin(aux[imm].Refs...); kind rounds
	OpMathI  // ri[a] = builtin(aux[imm].Refs...)
	OpVMathF // vf[a] = lane-wise builtin(aux[imm].Refs...)
	OpVMathI // vi[a] = lane-wise builtin(aux[imm].Refs...)
)

// Work-item query codes for OpWIQ (stored in Inst.N).
const (
	QNone int32 = iota
	QGlobalID
	QLocalID
	QGroupID
	QGlobalSize
	QLocalSize
	QNumGroups
	QWorkDim
)

// Bank identifies a register file.
type Bank uint8

const (
	BankInt Bank = iota
	BankFlt
	BankVecI
	BankVecF
)

// Ref names one register: a bank plus an index within it.
type Ref struct {
	Bank Bank
	Idx  int32
}

// Inst is one bytecode instruction. Operand registers A, B, C are indices
// into the bank implied by the opcode; Imm and N carry immediates, branch
// targets, or aux-table indices. Retire is the number of IR instructions
// this instruction accounts for in the trace (2 for fused
// superinstructions, 0 for synthetic traps covering fall-off-block).
// In is the originating IR instruction: memory ops and barriers need it
// so trace emission is pointer-identical to the interpreter's (the GPU
// warp model coalesces by instruction identity), and every other
// instruction carries it so downstream consumers (wgvec's uniformity
// mapping) can look up per-IR-value analysis facts.
type Inst struct {
	Op     Opcode
	Kind   uint8 // clc.ScalarKind operand
	Sub    uint8 // secondary operand: ir.Op, lane count, bank, or from-kind
	Retire uint8
	A      int32
	B      int32
	C      int32
	N      int32
	Imm    int64
	In     *ir.Instr
}

// Aux carries the variable-length operands that do not fit in an Inst.
type Aux struct {
	Name   string // math builtin name, or trap error message
	Callee *BFunc // OpCall target
	Refs   []Ref  // call arguments, math arguments, or build lanes
	Comps  []int32
}

// BFunc is one compiled function.
type BFunc struct {
	Fn   *ir.Function
	Code []Inst
	Aux  []Aux

	// BlockStart[i] is the pc of the first instruction emitted for
	// Fn.Blocks[i]. Blocks are emitted contiguously in order, so the
	// half-open pc range of block i ends at BlockStart[i+1] (or at
	// len(Code) for the last block).
	BlockStart []int32

	// Register-file shape: scalar bank sizes and per-register lane counts
	// for the vector banks.
	NInt     int
	NFlt     int
	VecILens []int
	VecFLens []int

	// Register-file initialization: the int/float banks open with a
	// constant region (preloaded from these templates) followed by the
	// parameter region; Params[i] names parameter i's register.
	IntConsts  []int64
	FltConsts  []float64
	IntInitLen int
	FltInitLen int
	Params     []Ref

	FrameSize int // private alloca frame, bytes
	LocalSize int // static __local arena, bytes
}
