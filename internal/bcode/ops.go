// Package bcode is a register-bytecode execution backend for the kernel
// VM. Each ir.Function is compiled once into flat register-machine
// bytecode: values live in dense per-bank register slots (int64, float64,
// and vector lanes) instead of boxed interpreter values, operands and
// branch targets are resolved to indices at compile time, opcodes are
// specialized by scalar/vector type, and the GEP+load / GEP+store address
// chains that dominate the benchmark kernels are fused into
// superinstructions. The dispatch loop preserves the interpreter's
// contract exactly — cooperative barrier suspend/resume, divergence
// detection, and bit-identical memory-trace emission — so simulated cycle
// counts from internal/memsim are backend-invariant.
//
// The backend registers itself with the VM under the name "bcode";
// importing the package (a blank import suffices) enables it.
package bcode

import (
	"grover/internal/ir"
)

// Name is the backend's registration name.
const Name = "bcode"

// opcode enumerates bytecode operations.
type opcode uint16

const (
	opNop opcode = iota

	// Control flow.
	opJmp     // pc = imm
	opCondBrI // pc = ri[a] != 0 ? imm : n
	opCondBrF // pc = rf[a] != 0 ? imm : n
	opRet     // return void (kernel level: work-item done)
	opRetI    // return ri[b]
	opRetF    // return rf[b]
	opRetVI   // return vi[b]
	opRetVF   // return vf[b]
	opBarrier // suspend at a work-group barrier (kernel level only)
	opCall    // aux[imm]: callee + arg refs; a = dst (-1 none), sub = dst bank
	opTrap    // raise the error in aux[imm].name (deferred semantic error)

	// Constants and moves.
	opConstI // ri[a] = imm
	opZeroI  // ri[a] = 0
	opZeroF  // rf[a] = 0
	opMovI   // ri[a] = ri[b]
	opMovF   // rf[a] = rf[b]

	// Work-item queries with a compile-time dimension (imm = dim).
	opGID  // ri[a] = get_global_id(imm)
	opLID  // ri[a] = get_local_id(imm)
	opGRP  // ri[a] = get_group_id(imm)
	opGSZ  // ri[a] = get_global_size(imm)
	opLSZ  // ri[a] = get_local_size(imm)
	opNGRP // ri[a] = get_num_groups(imm)
	opWIQ  // generic: n = query, b = dim register (runtime-bounded)

	// Allocas.
	opAllocaP // ri[a] = private address frameBase+imm
	opAllocaL // ri[a] = imm (precomputed tagged __local address)

	// Address computation (single-index GEP).
	opIndex  // ri[a] = ri[b] + ri[c]*imm
	opIndexC // ri[a] = ri[b] + imm

	// Scalar loads: a = dst, b = address register, n = traced size.
	opLdI8
	opLdU8
	opLdI16
	opLdU16
	opLdI32
	opLdU32
	opLdI64
	opLdF32
	opLdF64
	// Fused index+load: address is ri[b] + ri[c]*imm.
	opLdXI8
	opLdXU8
	opLdXI16
	opLdXU16
	opLdXI32
	opLdXU32
	opLdXI64
	opLdXF32
	opLdXF64
	// Scalar stores: a = src, b = address register, n = traced size.
	opStI8
	opStI16
	opStI32
	opStI64
	opStF32
	opStF64
	// Fused index+store: address is ri[b] + ri[c]*imm.
	opStXI8
	opStXI16
	opStXI32
	opStXI64
	opStXF32
	opStXF64
	// Vector loads/stores: kind = element kind, sub = lanes, n = traced
	// size; fused variants address through ri[b] + ri[c]*imm.
	opLdVI
	opLdVF
	opLdXVI
	opLdXVF
	opStVI
	opStVF
	opStXVI
	opStXVF

	// 64-bit integer arithmetic (no normalization: the kind's width is 64
	// or the op is normalization-transparent).
	opAddI
	opSubI
	opMulI
	opAndI
	opOrI
	opXorI
	// 32-bit integer arithmetic with C wrapping.
	opAddI32
	opSubI32
	opMulI32
	opAddU32
	opSubU32
	opMulU32
	// Generic integer binary op: sub = ir.Op, kind = scalar kind.
	opIntBin
	// Double-precision float arithmetic.
	opAddF
	opSubF
	opMulF
	opDivF
	// Single-precision float arithmetic (round to float32).
	opAddF32
	opSubF32
	opMulF32
	opDivF32
	// Generic float binary op: sub = ir.Op, kind = scalar kind.
	opFltBin

	// Unary ops (kind = scalar kind for integer normalization).
	opNegF
	opNegI
	opNotI
	opVNegF
	opVNegI
	opVNotI

	// Comparisons (dst = int register; 0 or 1).
	opEqI
	opNeI
	opLtI
	opLeI
	opGtI
	opGeI
	opLtU
	opLeU
	opGtU
	opGeU
	opEqF
	opNeF
	opLtF
	opLeF
	opGtF
	opGeF

	// Conversions.
	opConvI // ri[a] = normInt(ri[b], kind)
	opI2F   // rf[a] = round(kind, float64(ri[b]))
	opU2F   // rf[a] = round(kind, float64(uint64(ri[b])))
	opF2I   // ri[a] = NaN ? 0 : normInt(int64(rf[b]), kind)
	opF2F32 // rf[a] = float64(float32(rf[b]))
	opVConv // lane-wise conversion; sub = from kind, kind = to kind

	// Vector arithmetic: a/b/c are vector registers, kind = element kind.
	opVAddF
	opVSubF
	opVMulF
	opVDivF
	opVBinF // generic: sub = ir.Op
	opVBinI // generic: sub = ir.Op

	// Vector shape ops.
	opExtI   // ri[a] = vi[b][imm]
	opExtF   // rf[a] = vf[b][imm]
	opInsI   // vi[a] = vi[b] with lane imm set to ri[c]
	opInsF   // vf[a] = vf[b] with lane imm set to rf[c]
	opShufI  // vi[a][i] = vi[b][comps[i]] (aux[imm])
	opShufF  // vf[a][i] = vf[b][comps[i]] (aux[imm])
	opBuildI // vi[a][i] = ri[refs[i]] (aux[imm])
	opBuildF // vf[a][i] = rf[refs[i]] (aux[imm])

	// Math builtins.
	opDotVF  // rf[a] = round(kind, Σ vf[b]·vf[c])
	opDotSS  // rf[a] = rf[b] * rf[c]
	opLenVF  // rf[a] = round(kind, sqrt(Σ vf[b]²))
	opLenSS  // rf[a] = |rf[b]|
	opMathF  // rf[a] = builtin(aux[imm].refs...); kind rounds
	opMathI  // ri[a] = builtin(aux[imm].refs...)
	opVMathF // vf[a] = lane-wise builtin(aux[imm].refs...)
	opVMathI // vi[a] = lane-wise builtin(aux[imm].refs...)
)

// Work-item query codes for opWIQ (stored in inst.n).
const (
	qNone int32 = iota
	qGlobalID
	qLocalID
	qGroupID
	qGlobalSize
	qLocalSize
	qNumGroups
	qWorkDim
)

// bank identifies a register file.
type bank uint8

const (
	bInt bank = iota
	bFlt
	bVecI
	bVecF
)

// ref names one register: a bank plus an index within it.
type ref struct {
	bank bank
	idx  int32
}

// inst is one bytecode instruction. Operand registers a, b, c are indices
// into the bank implied by the opcode; imm and n carry immediates, branch
// targets, or aux-table indices. retire is the number of IR instructions
// this instruction accounts for in the trace (2 for fused
// superinstructions, 0 for synthetic traps covering fall-off-block).
// in is the originating IR instruction, kept so memory-trace emission is
// pointer-identical to the interpreter's (the GPU warp model coalesces by
// instruction identity).
type inst struct {
	op     opcode
	kind   uint8 // clc.ScalarKind operand
	sub    uint8 // secondary operand: ir.Op, lane count, bank, or from-kind
	retire uint8
	a      int32
	b      int32
	c      int32
	n      int32
	imm    int64
	in     *ir.Instr
}

// aux carries the variable-length operands that do not fit in an inst.
type aux struct {
	name   string // math builtin name, or trap error message
	callee *bfunc // opCall target
	refs   []ref  // call arguments, math arguments, or build lanes
	comps  []int32
}

// bfunc is one compiled function.
type bfunc struct {
	fn   *ir.Function
	code []inst
	aux  []aux

	// Register-file shape: scalar bank sizes and per-register lane counts
	// for the vector banks.
	nInt     int
	nFlt     int
	vecILens []int
	vecFLens []int

	// Register-file initialization: the int/float banks open with a
	// constant region (preloaded from these templates) followed by the
	// parameter region; params[i] names parameter i's register.
	intConsts  []int64
	fltConsts  []float64
	intInitLen int
	fltInitLen int
	params     []ref

	frameSize int // private alloca frame, bytes
	localSize int // static __local arena, bytes
}
