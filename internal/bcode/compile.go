package bcode

import (
	"fmt"
	"math"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

func init() {
	vm.RegisterBackend(Name, func(p *vm.Program) (vm.Executor, error) {
		return Compile(p)
	})
}

// Machine is a prepared program compiled to bytecode. It implements
// vm.Executor; the vm caches one Machine per program, so each function
// is compiled once and executed many times.
type Machine struct {
	p     *vm.Program
	funcs map[*ir.Function]*bfunc
}

// Compile translates every function of a prepared program to bytecode.
func Compile(p *vm.Program) (*Machine, error) {
	m := &Machine{p: p, funcs: map[*ir.Function]*bfunc{}}
	// Shells first so call sites can reference not-yet-compiled callees.
	for _, f := range p.Module.Funcs {
		m.funcs[f] = &bfunc{fn: f}
	}
	for _, f := range p.Module.Funcs {
		if err := m.compileFunc(f); err != nil {
			return nil, fmt.Errorf("bcode: %s: %w", f.Name, err)
		}
	}
	return m, nil
}

// fnCompiler holds per-function compilation state.
type fnCompiler struct {
	m  *Machine
	p  *vm.Program
	f  *ir.Function
	bf *bfunc

	refs   map[ir.Value]ref
	intIdx map[int64]int32
	fltIdx map[uint64]int32
	sealed bool // constant region closed; late interning is a bug

	fusedIdx map[*ir.Instr]bool      // index instrs folded into a memory op
	fuseWith map[*ir.Instr]*ir.Instr // memory op → its folded index

	code    []inst
	auxes   []aux
	blockPC map[*ir.Block]int32
	fixups  []fixup
}

// fixup is a branch-target patch applied after all block PCs are known.
type fixup struct {
	pc   int32
	slot uint8 // 0 patches imm, 1 patches n
	blk  *ir.Block
}

func (m *Machine) compileFunc(f *ir.Function) error {
	fc := &fnCompiler{
		m: m, p: m.p, f: f, bf: m.funcs[f],
		refs:     map[ir.Value]ref{},
		intIdx:   map[int64]int32{},
		fltIdx:   map[uint64]int32{},
		fusedIdx: map[*ir.Instr]bool{},
		fuseWith: map[*ir.Instr]*ir.Instr{},
		blockPC:  map[*ir.Block]int32{},
	}
	bf := fc.bf
	bf.frameSize = m.p.FrameSize(f)
	bf.localSize = m.p.LocalStaticSize(f)

	// Register numbering per bank: constants first (so the preload
	// templates are a literal prefix of the register file), then
	// parameters, then instruction results. Zero constants are always
	// present: they stand in for the interpreter's boxed-value semantics
	// where reading the float field of an integer value (or vice versa)
	// yields zero.
	fc.intConst(0)
	fc.fltConst(0)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				switch t := a.(type) {
				case *ir.ConstInt:
					fc.intConst(t.Val)
				case *ir.ConstFloat:
					fc.fltConst(t.Val)
				}
			}
		}
	}
	fc.sealed = true
	bf.params = make([]ref, len(f.Params))
	for i, p := range f.Params {
		r := fc.alloc(p.Typ)
		bf.params[i] = r
		fc.refs[p] = r
	}
	bf.intInitLen = bf.nInt
	bf.fltInitLen = bf.nFlt

	fc.analyzeFusion()
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Producing() && !fc.fusedIdx[in] {
				fc.refs[in] = fc.alloc(in.Typ)
			}
		}
	}

	for _, b := range f.Blocks {
		fc.blockPC[b] = int32(len(fc.code))
		for _, in := range b.Instrs {
			if fc.fusedIdx[in] {
				continue
			}
			fc.emit(in)
		}
		if b.Terminator() == nil {
			// The interpreter raises this before counting the fetch,
			// hence retire 0.
			fc.trap(fmt.Sprintf("vm: fell off block %s", b.Name), 0)
		}
	}
	if len(fc.code) == 0 {
		fc.trap(fmt.Sprintf("vm: fell off block entry in %s", f.Name), 0)
	}
	for _, fx := range fc.fixups {
		pc := fc.blockPC[fx.blk]
		if fx.slot == 0 {
			fc.code[fx.pc].imm = int64(pc)
		} else {
			fc.code[fx.pc].n = pc
		}
	}
	bf.code = fc.code
	bf.aux = fc.auxes
	return nil
}

// alloc assigns a fresh register for a value of type t.
func (fc *fnCompiler) alloc(t clc.Type) ref {
	bf := fc.bf
	switch tt := t.(type) {
	case *clc.VectorType:
		if tt.Elem.Kind.IsFloat() {
			bf.vecFLens = append(bf.vecFLens, tt.Len)
			return ref{bVecF, int32(len(bf.vecFLens) - 1)}
		}
		bf.vecILens = append(bf.vecILens, tt.Len)
		return ref{bVecI, int32(len(bf.vecILens) - 1)}
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			bf.nFlt++
			return ref{bFlt, int32(bf.nFlt - 1)}
		}
	}
	// Integers, pointers, and anything else addressable as a word.
	bf.nInt++
	return ref{bInt, int32(bf.nInt - 1)}
}

// intConst interns an integer constant into the int bank's const region.
func (fc *fnCompiler) intConst(v int64) int32 {
	if i, ok := fc.intIdx[v]; ok {
		return i
	}
	if fc.sealed {
		panic("bcode: constant interned after the const region was sealed")
	}
	i := int32(fc.bf.nInt)
	fc.bf.nInt++
	fc.bf.intConsts = append(fc.bf.intConsts, v)
	fc.intIdx[v] = i
	return i
}

// fltConst interns a float constant (keyed by bit pattern).
func (fc *fnCompiler) fltConst(v float64) int32 {
	key := math.Float64bits(v)
	if i, ok := fc.fltIdx[key]; ok {
		return i
	}
	if fc.sealed {
		panic("bcode: constant interned after the const region was sealed")
	}
	i := int32(fc.bf.nFlt)
	fc.bf.nFlt++
	fc.bf.fltConsts = append(fc.bf.fltConsts, v)
	fc.fltIdx[key] = i
	return i
}

// operand resolves v to its natural register.
func (fc *fnCompiler) operand(v ir.Value) (ref, bool) {
	switch t := v.(type) {
	case *ir.ConstInt:
		return ref{bInt, fc.intConst(t.Val)}, true
	case *ir.ConstFloat:
		return ref{bFlt, fc.fltConst(t.Val)}, true
	}
	r, ok := fc.refs[v]
	return r, ok
}

// scalarRef resolves v for a context that reads the given scalar bank.
// When the value's natural bank differs, the shared zero constant is
// substituted, mirroring the interpreter's boxed values where the unused
// field of an rv is zero.
func (fc *fnCompiler) scalarRef(v ir.Value, b bank) ref {
	r, ok := fc.operand(v)
	if ok && r.bank == b {
		return r
	}
	if b == bFlt {
		return ref{bFlt, fc.fltIdx[0]}
	}
	return ref{bInt, fc.intIdx[0]}
}

// vecRef resolves v for a context that reads the given vector bank, or
// reports failure (the interpreter would fault on a nil lane slice).
func (fc *fnCompiler) vecRef(v ir.Value, b bank) (ref, bool) {
	r, ok := fc.operand(v)
	if !ok || r.bank != b {
		return ref{}, false
	}
	return r, true
}

// analyzeFusion marks single-use same-block index instructions whose only
// consumer is the address operand of a load or store, with no barrier in
// between. Such a GEP folds into the memory op as a superinstruction; the
// fused op retires 2 IR instructions so per-round Instrs totals stay
// bit-identical to the interpreter. SSA form (defs dominate uses, each
// register written by exactly one instruction) makes moving the address
// computation to the memory op safe; barriers are excluded because fusing
// across one would shift the GEP's retirement into the next scheduling
// round.
func (fc *fnCompiler) analyzeFusion() {
	uses := map[*ir.Instr]int{}
	for _, b := range fc.f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok && ai.Op == ir.OpIndex {
					uses[ai]++
				}
			}
		}
	}
	for _, b := range fc.f.Blocks {
		pos := map[*ir.Instr]int{}
		barriers := make([]int, len(b.Instrs))
		nb := 0
		for i, in := range b.Instrs {
			pos[in] = i
			barriers[i] = nb
			if in.Op == ir.OpBarrier {
				nb++
			}
		}
		for i, in := range b.Instrs {
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			idx, ok := in.Args[0].(*ir.Instr)
			if !ok || idx.Op != ir.OpIndex || uses[idx] != 1 {
				continue
			}
			j, sameBlock := pos[idx]
			if !sameBlock || barriers[j] != barriers[i] {
				continue
			}
			fc.fusedIdx[idx] = true
			fc.fuseWith[in] = idx
		}
	}
}

func (fc *fnCompiler) add(i inst) int32 {
	if i.retire == 0 {
		i.retire = 1
	}
	fc.code = append(fc.code, i)
	return int32(len(fc.code) - 1)
}

// trap emits an instruction that raises msg when executed. It stands in
// for constructs whose error the interpreter only raises at runtime, so
// dead invalid code stays launchable on both backends.
func (fc *fnCompiler) trap(msg string, retire uint8) {
	ax := fc.auxAdd(aux{name: msg})
	fc.code = append(fc.code, inst{op: opTrap, retire: retire, imm: ax})
}

func (fc *fnCompiler) auxAdd(a aux) int64 {
	fc.auxes = append(fc.auxes, a)
	return int64(len(fc.auxes) - 1)
}

// dst returns the destination register of a producing instruction.
func (fc *fnCompiler) dst(in *ir.Instr) (ref, bool) {
	r, ok := fc.refs[in]
	return r, ok
}

// ldOp returns the specialized scalar-load opcode for a kind.
func ldOp(k clc.ScalarKind) opcode {
	switch k {
	case clc.KBool, clc.KUChar:
		return opLdU8
	case clc.KChar:
		return opLdI8
	case clc.KShort:
		return opLdI16
	case clc.KUShort:
		return opLdU16
	case clc.KInt:
		return opLdI32
	case clc.KUInt:
		return opLdU32
	case clc.KLong, clc.KULong:
		return opLdI64
	case clc.KFloat:
		return opLdF32
	case clc.KDouble:
		return opLdF64
	}
	return opNop
}

// stOp returns the specialized scalar-store opcode for a kind.
func stOp(k clc.ScalarKind) opcode {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		return opStI8
	case clc.KShort, clc.KUShort:
		return opStI16
	case clc.KInt, clc.KUInt:
		return opStI32
	case clc.KLong, clc.KULong:
		return opStI64
	case clc.KFloat:
		return opStF32
	case clc.KDouble:
		return opStF64
	}
	return opNop
}

// memAddr resolves the address operand of a load/store: either the fused
// base+index pair (retire 2) or a plain address register.
func (fc *fnCompiler) memAddr(in *ir.Instr) (base, idx ref, step int64, fused bool) {
	if gep := fc.fuseWith[in]; gep != nil {
		base = fc.scalarRef(gep.Args[0], bInt)
		idx = fc.scalarRef(gep.Args[1], bInt)
		step = int64(ir.PointeeSize(gep.Args[0].Type()))
		return base, idx, step, true
	}
	return fc.scalarRef(in.Args[0], bInt), ref{}, 0, false
}

// emit translates one IR instruction into bytecode.
func (fc *fnCompiler) emit(in *ir.Instr) {
	switch in.Op {
	case ir.OpAlloca:
		d, ok := fc.dst(in)
		if !ok || d.bank != bInt {
			fc.trap(fmt.Sprintf("vm: alloca %s without pointer register", in.VarName), 1)
			return
		}
		if in.Space == clc.ASLocal {
			addr := vm.MakeAddr(clc.ASLocal, uint64(fc.p.AllocaOffset(in, fc.f)))
			fc.add(inst{op: opAllocaL, a: d.idx, imm: int64(addr)})
		} else {
			fc.add(inst{op: opAllocaP, a: d.idx, imm: int64(fc.p.AllocaOffset(in, fc.f))})
		}

	case ir.OpLoad:
		fc.emitLoad(in)

	case ir.OpStore:
		fc.emitStore(in)

	case ir.OpIndex:
		d, ok := fc.dst(in)
		if !ok || d.bank != bInt {
			fc.trap("vm: index without pointer register", 1)
			return
		}
		base := fc.scalarRef(in.Args[0], bInt)
		step := int64(ir.PointeeSize(in.Args[0].Type()))
		if ci, isC := in.Args[1].(*ir.ConstInt); isC {
			fc.add(inst{op: opIndexC, a: d.idx, b: base.idx, imm: ci.Val * step})
		} else {
			idx := fc.scalarRef(in.Args[1], bInt)
			fc.add(inst{op: opIndex, a: d.idx, b: base.idx, c: idx.idx, imm: step})
		}

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		fc.emitBin(in)

	case ir.OpNeg, ir.OpNot:
		fc.emitUn(in)

	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		fc.emitCmp(in)

	case ir.OpConvert:
		fc.emitConvert(in)

	case ir.OpExtract:
		fc.emitExtract(in)

	case ir.OpInsert:
		fc.emitInsert(in)

	case ir.OpShuffle:
		fc.emitShuffle(in)

	case ir.OpBuild:
		fc.emitBuild(in)

	case ir.OpWorkItem:
		fc.emitWorkItem(in)

	case ir.OpMath:
		fc.emitMath(in)

	case ir.OpBarrier:
		fc.add(inst{op: opBarrier, in: in})

	case ir.OpCall:
		fc.emitCall(in)

	case ir.OpBr:
		pc := fc.add(inst{op: opJmp})
		fc.fixups = append(fc.fixups, fixup{pc: pc, slot: 0, blk: in.Targets[0]})

	case ir.OpCondBr:
		op := opCondBrI
		cb := bInt
		if s, ok := in.Args[0].Type().(*clc.ScalarType); ok && s.Kind.IsFloat() {
			op, cb = opCondBrF, bFlt
		}
		cond := fc.scalarRef(in.Args[0], cb)
		pc := fc.add(inst{op: op, a: cond.idx})
		fc.fixups = append(fc.fixups,
			fixup{pc: pc, slot: 0, blk: in.Targets[0]},
			fixup{pc: pc, slot: 1, blk: in.Targets[1]})

	case ir.OpRet:
		if len(in.Args) == 0 {
			fc.add(inst{op: opRet})
			return
		}
		r, ok := fc.operand(in.Args[0])
		if !ok {
			fc.add(inst{op: opRet})
			return
		}
		switch r.bank {
		case bInt:
			fc.add(inst{op: opRetI, b: r.idx})
		case bFlt:
			fc.add(inst{op: opRetF, b: r.idx})
		case bVecI:
			fc.add(inst{op: opRetVI, b: r.idx})
		case bVecF:
			fc.add(inst{op: opRetVF, b: r.idx})
		}

	default:
		fc.trap(fmt.Sprintf("vm: unhandled op %s", in.Op), 1)
	}
}

func (fc *fnCompiler) emitLoad(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap("vm: load without destination register", 1)
		return
	}
	base, idx, step, fused := fc.memAddr(in)
	retire := uint8(1)
	if fused {
		retire = 2
	}
	i := inst{a: d.idx, b: base.idx, c: idx.idx, imm: step,
		n: int32(in.Typ.Size()), retire: retire, in: in}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		i.op = ldOp(tt.Kind)
		if i.op == opNop {
			fc.trap(fmt.Sprintf("vm: load of unsupported scalar %s", tt.Kind), retire)
			return
		}
		if fused {
			i.op += opLdXI8 - opLdI8
		}
	case *clc.VectorType:
		i.kind = uint8(tt.Elem.Kind)
		i.sub = uint8(tt.Len)
		if tt.Elem.Kind.IsFloat() {
			i.op = opLdVF
		} else {
			i.op = opLdVI
		}
		if fused {
			i.op += opLdXVI - opLdVI
		}
	case *clc.PointerType:
		i.op = opLdI64
		if fused {
			i.op += opLdXI8 - opLdI8
		}
	default:
		fc.trap(fmt.Sprintf("vm: load of unsupported type %s", in.Typ), retire)
		return
	}
	fc.code = append(fc.code, i)
}

func (fc *fnCompiler) emitStore(in *ir.Instr) {
	base, idx, step, fused := fc.memAddr(in)
	retire := uint8(1)
	if fused {
		retire = 2
	}
	t := in.Args[1].Type()
	i := inst{b: base.idx, c: idx.idx, imm: step,
		n: int32(t.Size()), retire: retire, in: in}
	switch tt := t.(type) {
	case *clc.ScalarType:
		i.op = stOp(tt.Kind)
		if i.op == opNop {
			fc.trap(fmt.Sprintf("vm: store of unsupported scalar %s", tt.Kind), retire)
			return
		}
		vb := bInt
		if tt.Kind.IsFloat() {
			vb = bFlt
		}
		i.a = fc.scalarRef(in.Args[1], vb).idx
		if fused {
			i.op += opStXI8 - opStI8
		}
	case *clc.VectorType:
		vb := bVecI
		i.op = opStVI
		if tt.Elem.Kind.IsFloat() {
			vb, i.op = bVecF, opStVF
		}
		src, ok := fc.vecRef(in.Args[1], vb)
		if !ok {
			fc.trap(fmt.Sprintf("vm: store of unsupported type %s", t), retire)
			return
		}
		i.a = src.idx
		i.kind = uint8(tt.Elem.Kind)
		i.sub = uint8(tt.Len)
		if fused {
			i.op += opStXVI - opStVI
		}
	case *clc.PointerType:
		i.op = opStI64
		i.a = fc.scalarRef(in.Args[1], bInt).idx
		if fused {
			i.op += opStXI8 - opStI8
		}
	default:
		fc.trap(fmt.Sprintf("vm: store of unsupported type %s", t), retire)
		return
	}
	fc.code = append(fc.code, i)
}

func (fc *fnCompiler) emitBin(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap(fmt.Sprintf("vm: binary op %s without register", in.Op), 1)
		return
	}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			a := fc.scalarRef(in.Args[0], bFlt)
			b := fc.scalarRef(in.Args[1], bFlt)
			var op opcode
			switch in.Op {
			case ir.OpAdd:
				op = opAddF
			case ir.OpSub:
				op = opSubF
			case ir.OpMul:
				op = opMulF
			case ir.OpDiv:
				op = opDivF
			default:
				op = opFltBin
			}
			if op != opFltBin && tt.Kind == clc.KFloat {
				op += opAddF32 - opAddF
			}
			fc.add(inst{op: op, kind: uint8(tt.Kind), sub: uint8(in.Op),
				a: d.idx, b: a.idx, c: b.idx})
			return
		}
		a := fc.scalarRef(in.Args[0], bInt)
		b := fc.scalarRef(in.Args[1], bInt)
		op := opIntBin
		// Specializations hold for arbitrary (even unnormalized) inputs:
		// wrap-to-32 equals normInt after the raw 64-bit op, and 64-bit
		// kinds need no normalization at all. Narrow kinds and the
		// div/rem/shift family keep the generic path.
		switch in.Op {
		case ir.OpAdd:
			op = pickIntOp(tt.Kind, opAddI, opAddI32, opAddU32)
		case ir.OpSub:
			op = pickIntOp(tt.Kind, opSubI, opSubI32, opSubU32)
		case ir.OpMul:
			op = pickIntOp(tt.Kind, opMulI, opMulI32, opMulU32)
		case ir.OpAnd:
			op = pickIntOp(tt.Kind, opAndI, opIntBin, opIntBin)
		case ir.OpOr:
			op = pickIntOp(tt.Kind, opOrI, opIntBin, opIntBin)
		case ir.OpXor:
			op = pickIntOp(tt.Kind, opXorI, opIntBin, opIntBin)
		}
		fc.add(inst{op: op, kind: uint8(tt.Kind), sub: uint8(in.Op),
			a: d.idx, b: a.idx, c: b.idx})
	case *clc.VectorType:
		ek := tt.Elem.Kind
		if ek.IsFloat() {
			a, okA := fc.vecRef(in.Args[0], bVecF)
			b, okB := fc.vecRef(in.Args[1], bVecF)
			if !okA || !okB || d.bank != bVecF {
				fc.trap(fmt.Sprintf("vm: binary op %s on unsupported type %s", in.Op, in.Typ), 1)
				return
			}
			var op opcode
			switch in.Op {
			case ir.OpAdd:
				op = opVAddF
			case ir.OpSub:
				op = opVSubF
			case ir.OpMul:
				op = opVMulF
			case ir.OpDiv:
				op = opVDivF
			default:
				op = opVBinF
			}
			fc.add(inst{op: op, kind: uint8(ek), sub: uint8(in.Op),
				a: d.idx, b: a.idx, c: b.idx})
			return
		}
		a, okA := fc.vecRef(in.Args[0], bVecI)
		b, okB := fc.vecRef(in.Args[1], bVecI)
		if !okA || !okB || d.bank != bVecI {
			fc.trap(fmt.Sprintf("vm: binary op %s on unsupported type %s", in.Op, in.Typ), 1)
			return
		}
		fc.add(inst{op: opVBinI, kind: uint8(ek), sub: uint8(in.Op),
			a: d.idx, b: a.idx, c: b.idx})
	case *clc.PointerType:
		// Raw byte arithmetic on pointers, no normalization.
		a := fc.scalarRef(in.Args[0], bInt)
		b := fc.scalarRef(in.Args[1], bInt)
		switch in.Op {
		case ir.OpAdd:
			fc.add(inst{op: opAddI, a: d.idx, b: a.idx, c: b.idx})
		case ir.OpSub:
			fc.add(inst{op: opSubI, a: d.idx, b: a.idx, c: b.idx})
		default:
			fc.trap(fmt.Sprintf("vm: binary op %s on unsupported type %s", in.Op, in.Typ), 1)
		}
	default:
		fc.trap(fmt.Sprintf("vm: binary op %s on unsupported type %s", in.Op, in.Typ), 1)
	}
}

// pickIntOp selects the specialized opcode for an integer kind: raw64 for
// 64-bit kinds, the wrapping 32-bit variants for int/uint, generic
// otherwise.
func pickIntOp(k clc.ScalarKind, raw64, i32, u32 opcode) opcode {
	switch k {
	case clc.KLong, clc.KULong:
		return raw64
	case clc.KInt:
		return i32
	case clc.KUInt:
		return u32
	}
	return opIntBin
}

func (fc *fnCompiler) emitUn(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap(fmt.Sprintf("vm: unary op %s without register", in.Op), 1)
		return
	}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			if in.Op != ir.OpNeg {
				fc.trap(fmt.Sprintf("vm: %s on float", in.Op), 1)
				return
			}
			a := fc.scalarRef(in.Args[0], bFlt)
			fc.add(inst{op: opNegF, a: d.idx, b: a.idx})
			return
		}
		a := fc.scalarRef(in.Args[0], bInt)
		op := opNotI
		if in.Op == ir.OpNeg {
			op = opNegI
		}
		fc.add(inst{op: op, kind: uint8(tt.Kind), a: d.idx, b: a.idx})
	case *clc.VectorType:
		if tt.Elem.Kind.IsFloat() {
			a, okA := fc.vecRef(in.Args[0], bVecF)
			if !okA || d.bank != bVecF {
				fc.trap(fmt.Sprintf("vm: unary op %s on unsupported type %s", in.Op, in.Typ), 1)
				return
			}
			// The interpreter negates float vectors for both Neg and Not;
			// replicated bit for bit.
			fc.add(inst{op: opVNegF, a: d.idx, b: a.idx})
			return
		}
		a, okA := fc.vecRef(in.Args[0], bVecI)
		if !okA || d.bank != bVecI {
			fc.trap(fmt.Sprintf("vm: unary op %s on unsupported type %s", in.Op, in.Typ), 1)
			return
		}
		op := opVNotI
		if in.Op == ir.OpNeg {
			op = opVNegI
		}
		fc.add(inst{op: op, kind: uint8(tt.Elem.Kind), a: d.idx, b: a.idx})
	default:
		fc.trap(fmt.Sprintf("vm: unary op %s on unsupported type %s", in.Op, in.Typ), 1)
	}
}

func (fc *fnCompiler) emitCmp(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap(fmt.Sprintf("vm: compare %s without register", in.Op), 1)
		return
	}
	if d.bank == bFlt {
		// A float-typed compare result: the interpreter boxes {i: 0/1}
		// and any float-reading consumer sees zero.
		fc.add(inst{op: opZeroF, a: d.idx})
		return
	}
	if d.bank != bInt {
		fc.trap(fmt.Sprintf("vm: compare %s with vector result", in.Op), 1)
		return
	}
	rel := in.Op - ir.OpEq // OpEq..OpGe are contiguous
	switch ot := in.Args[0].Type().(type) {
	case *clc.ScalarType:
		if ot.Kind.IsFloat() {
			a := fc.scalarRef(in.Args[0], bFlt)
			b := fc.scalarRef(in.Args[1], bFlt)
			fc.add(inst{op: opEqF + opcode(rel), a: d.idx, b: a.idx, c: b.idx})
			return
		}
		a := fc.scalarRef(in.Args[0], bInt)
		b := fc.scalarRef(in.Args[1], bInt)
		op := opEqI + opcode(rel)
		if ot.Kind.IsUnsigned() && in.Op != ir.OpEq && in.Op != ir.OpNe {
			op = opLtU + opcode(in.Op-ir.OpLt)
		}
		fc.add(inst{op: op, a: d.idx, b: a.idx, c: b.idx})
	case *clc.PointerType:
		a := fc.scalarRef(in.Args[0], bInt)
		b := fc.scalarRef(in.Args[1], bInt)
		fc.add(inst{op: opEqI + opcode(rel), a: d.idx, b: a.idx, c: b.idx})
	default:
		// Vector (and any other) comparisons fall through to zero in the
		// interpreter.
		fc.add(inst{op: opZeroI, a: d.idx})
	}
}

func (fc *fnCompiler) emitConvert(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap("vm: convert without register", 1)
		return
	}
	from := in.Args[0].Type()
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		switch ft := from.(type) {
		case *clc.ScalarType:
			fc.emitScalarConvert(in, d, ft.Kind, tt.Kind)
			return
		case *clc.PointerType:
			a := fc.scalarRef(in.Args[0], bInt)
			if tt.Kind == clc.KLong || tt.Kind == clc.KULong {
				fc.add(inst{op: opMovI, a: d.idx, b: a.idx})
			} else {
				fc.add(inst{op: opConvI, kind: uint8(tt.Kind), a: d.idx, b: a.idx})
			}
			return
		}
		fc.trap(fmt.Sprintf("vm: unsupported conversion %s → %s", from, in.Typ), 1)
	case *clc.PointerType:
		// The interpreter reuses the boxed value's integer field; for a
		// float source that field is zero.
		r, okR := fc.operand(in.Args[0])
		if okR && r.bank == bInt {
			fc.add(inst{op: opMovI, a: d.idx, b: r.idx})
		} else {
			fc.add(inst{op: opZeroI, a: d.idx})
		}
	case *clc.VectorType:
		ft, okV := from.(*clc.VectorType)
		if !okV || ft.Len != tt.Len {
			fc.trap(fmt.Sprintf("vm: bad vector conversion %s → %s", from, in.Typ), 1)
			return
		}
		sb := bVecI
		if ft.Elem.Kind.IsFloat() {
			sb = bVecF
		}
		src, okS := fc.vecRef(in.Args[0], sb)
		if !okS {
			fc.trap(fmt.Sprintf("vm: bad vector conversion %s → %s", from, in.Typ), 1)
			return
		}
		fc.add(inst{op: opVConv, sub: uint8(ft.Elem.Kind), kind: uint8(tt.Elem.Kind),
			a: d.idx, b: src.idx})
	default:
		fc.trap(fmt.Sprintf("vm: unsupported conversion %s → %s", from, in.Typ), 1)
	}
}

// emitScalarConvert specializes scalar-to-scalar conversions.
func (fc *fnCompiler) emitScalarConvert(in *ir.Instr, d ref, from, to clc.ScalarKind) {
	switch {
	case from.IsFloat() && to.IsFloat():
		a := fc.scalarRef(in.Args[0], bFlt)
		if to == clc.KFloat {
			fc.add(inst{op: opF2F32, a: d.idx, b: a.idx})
		} else {
			fc.add(inst{op: opMovF, a: d.idx, b: a.idx})
		}
	case from.IsFloat():
		a := fc.scalarRef(in.Args[0], bFlt)
		fc.add(inst{op: opF2I, kind: uint8(to), a: d.idx, b: a.idx})
	case to.IsFloat():
		a := fc.scalarRef(in.Args[0], bInt)
		op := opI2F
		if from.IsUnsigned() {
			op = opU2F
		}
		fc.add(inst{op: op, kind: uint8(to), a: d.idx, b: a.idx})
	default:
		a := fc.scalarRef(in.Args[0], bInt)
		if to == clc.KLong || to == clc.KULong {
			fc.add(inst{op: opMovI, a: d.idx, b: a.idx})
		} else {
			fc.add(inst{op: opConvI, kind: uint8(to), a: d.idx, b: a.idx})
		}
	}
}

func (fc *fnCompiler) emitExtract(in *ir.Instr) {
	d, ok := fc.dst(in)
	vt, okT := in.Args[0].Type().(*clc.VectorType)
	if !ok || !okT {
		fc.trap("vm: extract on non-vector operand", 1)
		return
	}
	lane := int64(in.Comps[0])
	if vt.Elem.Kind.IsFloat() {
		src, okS := fc.vecRef(in.Args[0], bVecF)
		if !okS || d.bank != bFlt {
			fc.trap("vm: extract on non-vector operand", 1)
			return
		}
		fc.add(inst{op: opExtF, a: d.idx, b: src.idx, imm: lane})
		return
	}
	src, okS := fc.vecRef(in.Args[0], bVecI)
	if !okS || d.bank != bInt {
		fc.trap("vm: extract on non-vector operand", 1)
		return
	}
	fc.add(inst{op: opExtI, a: d.idx, b: src.idx, imm: lane})
}

func (fc *fnCompiler) emitInsert(in *ir.Instr) {
	d, ok := fc.dst(in)
	vt, okT := in.Typ.(*clc.VectorType)
	if !ok || !okT {
		fc.trap("vm: insert on non-vector operand", 1)
		return
	}
	lane := int64(in.Comps[0])
	if vt.Elem.Kind.IsFloat() {
		src, okS := fc.vecRef(in.Args[0], bVecF)
		if !okS || d.bank != bVecF {
			fc.trap("vm: insert on non-vector operand", 1)
			return
		}
		sc := fc.scalarRef(in.Args[1], bFlt)
		fc.add(inst{op: opInsF, a: d.idx, b: src.idx, c: sc.idx, imm: lane})
		return
	}
	src, okS := fc.vecRef(in.Args[0], bVecI)
	if !okS || d.bank != bVecI {
		fc.trap("vm: insert on non-vector operand", 1)
		return
	}
	sc := fc.scalarRef(in.Args[1], bInt)
	fc.add(inst{op: opInsI, a: d.idx, b: src.idx, c: sc.idx, imm: lane})
}

func (fc *fnCompiler) emitShuffle(in *ir.Instr) {
	d, ok := fc.dst(in)
	vt, okT := in.Typ.(*clc.VectorType)
	if !ok || !okT {
		fc.trap("vm: shuffle on non-vector operand", 1)
		return
	}
	comps := make([]int32, len(in.Comps))
	for i, c := range in.Comps {
		comps[i] = int32(c)
	}
	ax := fc.auxAdd(aux{comps: comps})
	if vt.Elem.Kind.IsFloat() {
		src, okS := fc.vecRef(in.Args[0], bVecF)
		if !okS || d.bank != bVecF {
			fc.trap("vm: shuffle on non-vector operand", 1)
			return
		}
		fc.add(inst{op: opShufF, a: d.idx, b: src.idx, imm: ax})
		return
	}
	src, okS := fc.vecRef(in.Args[0], bVecI)
	if !okS || d.bank != bVecI {
		fc.trap("vm: shuffle on non-vector operand", 1)
		return
	}
	fc.add(inst{op: opShufI, a: d.idx, b: src.idx, imm: ax})
}

func (fc *fnCompiler) emitBuild(in *ir.Instr) {
	d, ok := fc.dst(in)
	vt, okT := in.Typ.(*clc.VectorType)
	if !ok || !okT {
		fc.trap("vm: build on non-vector type", 1)
		return
	}
	eb := bInt
	op := opBuildI
	want := bVecI
	if vt.Elem.Kind.IsFloat() {
		eb, op, want = bFlt, opBuildF, bVecF
	}
	if d.bank != want {
		fc.trap("vm: build on non-vector type", 1)
		return
	}
	refs := make([]ref, len(in.Args))
	for i, a := range in.Args {
		refs[i] = fc.scalarRef(a, eb)
	}
	ax := fc.auxAdd(aux{refs: refs})
	fc.add(inst{op: op, a: d.idx, imm: ax})
}

func (fc *fnCompiler) emitWorkItem(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap("vm: work-item query without register", 1)
		return
	}
	if d.bank == bFlt {
		fc.add(inst{op: opZeroF, a: d.idx})
		return
	}
	if d.bank != bInt {
		fc.trap(fmt.Sprintf("vm: work-item query %s with vector result", in.Func), 1)
		return
	}
	var q int32
	switch in.Func {
	case "get_global_id":
		q = qGlobalID
	case "get_local_id":
		q = qLocalID
	case "get_group_id":
		q = qGroupID
	case "get_global_size":
		q = qGlobalSize
	case "get_local_size":
		q = qLocalSize
	case "get_num_groups":
		q = qNumGroups
	case "get_work_dim":
		q = qWorkDim
	default:
		q = qNone
	}
	// Dimension argument: constants (including the no-arg default 0) fold
	// into specialized opcodes; anything else is resolved at runtime.
	d64 := int64(0)
	dynamic := false
	if len(in.Args) > 0 {
		switch t := in.Args[0].(type) {
		case *ir.ConstInt:
			d64 = t.Val
		case *ir.ConstFloat:
			d64 = 0 // the interpreter reads the int field of the box: zero
		default:
			dynamic = true
		}
	}
	if dynamic {
		dim := fc.scalarRef(in.Args[0], bInt)
		fc.add(inst{op: opWIQ, a: d.idx, b: dim.idx, n: q})
		return
	}
	if d64 < 0 || d64 > 2 || q == qNone {
		fc.add(inst{op: opZeroI, a: d.idx})
		return
	}
	switch q {
	case qGlobalID:
		fc.add(inst{op: opGID, a: d.idx, imm: d64})
	case qLocalID:
		fc.add(inst{op: opLID, a: d.idx, imm: d64})
	case qGroupID:
		fc.add(inst{op: opGRP, a: d.idx, imm: d64})
	case qGlobalSize:
		fc.add(inst{op: opGSZ, a: d.idx, imm: d64})
	case qLocalSize:
		fc.add(inst{op: opLSZ, a: d.idx, imm: d64})
	case qNumGroups:
		fc.add(inst{op: opNGRP, a: d.idx, imm: d64})
	case qWorkDim:
		fc.add(inst{op: opConstI, a: d.idx, imm: 3})
	}
}

func (fc *fnCompiler) emitMath(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap(fmt.Sprintf("vm: math builtin %q without register", in.Func), 1)
		return
	}
	// Geometric reductions: vector args, scalar float result.
	switch in.Func {
	case "dot", "length":
		if vt, isVec := in.Args[0].Type().(*clc.VectorType); isVec {
			if d.bank != bFlt {
				// An integer-typed consumer of the boxed float sees zero.
				fc.add(inst{op: opZeroI, a: d.idx})
				return
			}
			a, okA := fc.vecRef(in.Args[0], bVecF)
			if !okA {
				fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Args[0].Type()), 1)
				return
			}
			if in.Func == "length" {
				fc.add(inst{op: opLenVF, kind: uint8(vt.Elem.Kind), a: d.idx, b: a.idx})
				return
			}
			b, okB := fc.vecRef(in.Args[1], bVecF)
			if !okB {
				fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Args[1].Type()), 1)
				return
			}
			fc.add(inst{op: opDotVF, kind: uint8(vt.Elem.Kind), a: d.idx, b: a.idx, c: b.idx})
			return
		}
		if d.bank != bFlt {
			fc.add(inst{op: opZeroI, a: d.idx})
			return
		}
		a := fc.scalarRef(in.Args[0], bFlt)
		if in.Func == "length" {
			fc.add(inst{op: opLenSS, a: d.idx, b: a.idx})
			return
		}
		b := fc.scalarRef(in.Args[1], bFlt)
		fc.add(inst{op: opDotSS, a: d.idx, b: a.idx, c: b.idx})
		return
	}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			refs := make([]ref, len(in.Args))
			for i, a := range in.Args {
				refs[i] = fc.scalarRef(a, bFlt)
			}
			ax := fc.auxAdd(aux{name: in.Func, refs: refs})
			fc.add(inst{op: opMathF, kind: uint8(tt.Kind), a: d.idx, imm: ax})
			return
		}
		refs := make([]ref, len(in.Args))
		for i, a := range in.Args {
			refs[i] = fc.scalarRef(a, bInt)
		}
		ax := fc.auxAdd(aux{name: in.Func, refs: refs})
		fc.add(inst{op: opMathI, kind: uint8(tt.Kind), a: d.idx, imm: ax})
	case *clc.VectorType:
		vb := bVecI
		op := opVMathI
		if tt.Elem.Kind.IsFloat() {
			vb, op = bVecF, opVMathF
		}
		if d.bank != vb {
			fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Typ), 1)
			return
		}
		refs := make([]ref, len(in.Args))
		for i, a := range in.Args {
			r, okR := fc.vecRef(a, vb)
			if !okR {
				fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Typ), 1)
				return
			}
			refs[i] = r
		}
		ax := fc.auxAdd(aux{name: in.Func, refs: refs})
		fc.add(inst{op: op, kind: uint8(tt.Elem.Kind), a: d.idx, imm: ax})
	default:
		fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Typ), 1)
	}
}

func (fc *fnCompiler) emitCall(in *ir.Instr) {
	callee := fc.m.funcs[in.Callee]
	if callee == nil {
		fc.trap("vm: call to unknown function", 1)
		return
	}
	if len(in.Args) != len(callee.fn.Params) {
		fc.trap(fmt.Sprintf("vm: call to %s with %d args, want %d",
			callee.fn.Name, len(in.Args), len(callee.fn.Params)), 1)
		return
	}
	refs := make([]ref, len(in.Args))
	for i, a := range in.Args {
		switch callee.params[i].bank {
		case bInt:
			refs[i] = fc.scalarRef(a, bInt)
		case bFlt:
			refs[i] = fc.scalarRef(a, bFlt)
		default:
			r, okR := fc.vecRef(a, callee.params[i].bank)
			if !okR {
				fc.trap(fmt.Sprintf("vm: call to %s with mismatched vector argument %d",
					callee.fn.Name, i), 1)
				return
			}
			refs[i] = r
		}
	}
	i := inst{op: opCall, a: -1, imm: fc.auxAdd(aux{callee: callee, refs: refs})}
	if in.Producing() {
		d, okD := fc.dst(in)
		if !okD {
			fc.trap("vm: call without destination register", 1)
			return
		}
		i.a = d.idx
		i.sub = uint8(d.bank)
	}
	fc.add(i)
}
