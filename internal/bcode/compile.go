package bcode

import (
	"context"
	"fmt"
	"math"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/telemetry"
	"grover/internal/vm"
)

func init() {
	vm.RegisterBackend(Name, func(ctx context.Context, p *vm.Program) (vm.Executor, error) {
		return CompileCtx(ctx, p)
	})
}

// Machine is a prepared program compiled to bytecode. It implements
// vm.Executor; the vm caches one Machine per program, so each function
// is compiled once and executed many times.
type Machine struct {
	p     *vm.Program
	funcs map[*ir.Function]*BFunc
}

// Compile translates every function of a prepared program to bytecode.
func Compile(p *vm.Program) (*Machine, error) {
	return CompileCtx(context.Background(), p)
}

// CompileCtx is Compile recording a bcode.compile span into the trace
// carried by ctx, if any.
func CompileCtx(ctx context.Context, p *vm.Program) (*Machine, error) {
	defer telemetry.StartSpan(ctx, "bcode.compile")()
	m := &Machine{p: p, funcs: map[*ir.Function]*BFunc{}}
	// Shells first so call sites can reference not-yet-compiled callees.
	for _, f := range p.Module.Funcs {
		m.funcs[f] = &BFunc{Fn: f}
	}
	for _, f := range p.Module.Funcs {
		if err := m.compileFunc(f); err != nil {
			return nil, fmt.Errorf("bcode: %s: %w", f.Name, err)
		}
	}
	return m, nil
}

// Program returns the prepared program this machine was compiled from.
func (m *Machine) Program() *vm.Program { return m.p }

// Func returns the compiled form of f, or nil if f is not part of the
// machine's module.
func (m *Machine) Func(f *ir.Function) *BFunc { return m.funcs[f] }

// fnCompiler holds per-function compilation state.
type fnCompiler struct {
	m  *Machine
	p  *vm.Program
	f  *ir.Function
	bf *BFunc

	vals   map[ir.Value]Ref
	intIdx map[int64]int32
	fltIdx map[uint64]int32
	sealed bool // constant region closed; late interning is a bug

	fusedIdx map[*ir.Instr]bool      // index instrs folded into a memory op
	fuseWith map[*ir.Instr]*ir.Instr // memory op → its folded index

	code    []Inst
	auxes   []Aux
	blockPC map[*ir.Block]int32
	fixups  []fixup
}

// fixup is a branch-target patch applied after all block PCs are known.
type fixup struct {
	pc   int32
	slot uint8 // 0 patches imm, 1 patches n
	blk  *ir.Block
}

func (m *Machine) compileFunc(f *ir.Function) error {
	fc := &fnCompiler{
		m: m, p: m.p, f: f, bf: m.funcs[f],
		vals:     map[ir.Value]Ref{},
		intIdx:   map[int64]int32{},
		fltIdx:   map[uint64]int32{},
		fusedIdx: map[*ir.Instr]bool{},
		fuseWith: map[*ir.Instr]*ir.Instr{},
		blockPC:  map[*ir.Block]int32{},
	}
	bf := fc.bf
	bf.FrameSize = m.p.FrameSize(f)
	bf.LocalSize = m.p.LocalStaticSize(f)

	// Register numbering per Bank: constants first (so the preload
	// templates are a literal prefix of the register file), then
	// parameters, then instruction results. Zero constants are always
	// present: they stand in for the interpreter's boxed-value semantics
	// where reading the float field of an integer value (or vice versa)
	// yields zero.
	fc.intConst(0)
	fc.fltConst(0)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				switch t := a.(type) {
				case *ir.ConstInt:
					fc.intConst(t.Val)
				case *ir.ConstFloat:
					fc.fltConst(t.Val)
				}
			}
		}
	}
	fc.sealed = true
	bf.Params = make([]Ref, len(f.Params))
	for i, p := range f.Params {
		r := fc.alloc(p.Typ)
		bf.Params[i] = r
		fc.vals[p] = r
	}
	bf.IntInitLen = bf.NInt
	bf.FltInitLen = bf.NFlt

	fc.analyzeFusion()
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Producing() && !fc.fusedIdx[in] {
				fc.vals[in] = fc.alloc(in.Typ)
			}
		}
	}

	bf.BlockStart = make([]int32, len(f.Blocks))
	for bi, b := range f.Blocks {
		fc.blockPC[b] = int32(len(fc.code))
		bf.BlockStart[bi] = int32(len(fc.code))
		for _, in := range b.Instrs {
			if fc.fusedIdx[in] {
				continue
			}
			start := len(fc.code)
			fc.emit(in)
			// Stamp the originating IR instruction on everything just
			// emitted; memory ops and barriers set it themselves.
			for j := start; j < len(fc.code); j++ {
				if fc.code[j].In == nil {
					fc.code[j].In = in
				}
			}
		}
		if b.Terminator() == nil {
			// The interpreter raises this before counting the fetch,
			// hence retire 0.
			fc.trap(fmt.Sprintf("vm: fell off block %s", b.Name), 0)
		}
	}
	if len(fc.code) == 0 {
		fc.trap(fmt.Sprintf("vm: fell off block entry in %s", f.Name), 0)
	}
	for _, fx := range fc.fixups {
		pc := fc.blockPC[fx.blk]
		if fx.slot == 0 {
			fc.code[fx.pc].Imm = int64(pc)
		} else {
			fc.code[fx.pc].N = pc
		}
	}
	bf.Code = fc.code
	bf.Aux = fc.auxes
	return nil
}

// alloc assigns a fresh register for a value of type t.
func (fc *fnCompiler) alloc(t clc.Type) Ref {
	bf := fc.bf
	switch tt := t.(type) {
	case *clc.VectorType:
		if tt.Elem.Kind.IsFloat() {
			bf.VecFLens = append(bf.VecFLens, tt.Len)
			return Ref{BankVecF, int32(len(bf.VecFLens) - 1)}
		}
		bf.VecILens = append(bf.VecILens, tt.Len)
		return Ref{BankVecI, int32(len(bf.VecILens) - 1)}
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			bf.NFlt++
			return Ref{BankFlt, int32(bf.NFlt - 1)}
		}
	}
	// Integers, pointers, and anything else addressable as a word.
	bf.NInt++
	return Ref{BankInt, int32(bf.NInt - 1)}
}

// intConst interns an integer constant into the int Bank's const region.
func (fc *fnCompiler) intConst(v int64) int32 {
	if i, ok := fc.intIdx[v]; ok {
		return i
	}
	if fc.sealed {
		panic("bcode: constant interned after the const region was sealed")
	}
	i := int32(fc.bf.NInt)
	fc.bf.NInt++
	fc.bf.IntConsts = append(fc.bf.IntConsts, v)
	fc.intIdx[v] = i
	return i
}

// fltConst interns a float constant (keyed by bit pattern).
func (fc *fnCompiler) fltConst(v float64) int32 {
	key := math.Float64bits(v)
	if i, ok := fc.fltIdx[key]; ok {
		return i
	}
	if fc.sealed {
		panic("bcode: constant interned after the const region was sealed")
	}
	i := int32(fc.bf.NFlt)
	fc.bf.NFlt++
	fc.bf.FltConsts = append(fc.bf.FltConsts, v)
	fc.fltIdx[key] = i
	return i
}

// operand resolves v to its natural register.
func (fc *fnCompiler) operand(v ir.Value) (Ref, bool) {
	switch t := v.(type) {
	case *ir.ConstInt:
		return Ref{BankInt, fc.intConst(t.Val)}, true
	case *ir.ConstFloat:
		return Ref{BankFlt, fc.fltConst(t.Val)}, true
	}
	r, ok := fc.vals[v]
	return r, ok
}

// scalarRef resolves v for a context that reads the given scalar Bank.
// When the value's natural Bank differs, the shared zero constant is
// substituted, mirroring the interpreter's boxed values where the unused
// field of an rv is zero.
func (fc *fnCompiler) scalarRef(v ir.Value, b Bank) Ref {
	r, ok := fc.operand(v)
	if ok && r.Bank == b {
		return r
	}
	if b == BankFlt {
		return Ref{BankFlt, fc.fltIdx[0]}
	}
	return Ref{BankInt, fc.intIdx[0]}
}

// vecRef resolves v for a context that reads the given vector Bank, or
// reports failure (the interpreter would fault on a nil lane slice).
func (fc *fnCompiler) vecRef(v ir.Value, b Bank) (Ref, bool) {
	r, ok := fc.operand(v)
	if !ok || r.Bank != b {
		return Ref{}, false
	}
	return r, true
}

// analyzeFusion marks single-use same-block index instructions whose only
// consumer is the address operand of a load or store, with no barrier in
// between. Such a GEP folds into the memory op as a superinstruction; the
// fused op retires 2 IR instructions so per-round Instrs totals stay
// bit-identical to the interpreter. SSA form (defs dominate uses, each
// register written by exactly one instruction) makes moving the address
// computation to the memory op safe; barriers are excluded because fusing
// across one would shift the GEP's retirement into the next scheduling
// round.
func (fc *fnCompiler) analyzeFusion() {
	uses := map[*ir.Instr]int{}
	for _, b := range fc.f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok && ai.Op == ir.OpIndex {
					uses[ai]++
				}
			}
		}
	}
	for _, b := range fc.f.Blocks {
		pos := map[*ir.Instr]int{}
		barriers := make([]int, len(b.Instrs))
		nb := 0
		for i, in := range b.Instrs {
			pos[in] = i
			barriers[i] = nb
			if in.Op == ir.OpBarrier {
				nb++
			}
		}
		for i, in := range b.Instrs {
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			idx, ok := in.Args[0].(*ir.Instr)
			if !ok || idx.Op != ir.OpIndex || uses[idx] != 1 {
				continue
			}
			j, sameBlock := pos[idx]
			if !sameBlock || barriers[j] != barriers[i] {
				continue
			}
			fc.fusedIdx[idx] = true
			fc.fuseWith[in] = idx
		}
	}
}

func (fc *fnCompiler) add(i Inst) int32 {
	if i.Retire == 0 {
		i.Retire = 1
	}
	fc.code = append(fc.code, i)
	return int32(len(fc.code) - 1)
}

// trap emits an instruction that raises msg when executed. It stands in
// for constructs whose error the interpreter only raises at runtime, so
// dead invalid code stays launchable on both backends.
func (fc *fnCompiler) trap(msg string, retire uint8) {
	ax := fc.auxAdd(Aux{Name: msg})
	fc.code = append(fc.code, Inst{Op: OpTrap, Retire: retire, Imm: ax})
}

func (fc *fnCompiler) auxAdd(a Aux) int64 {
	fc.auxes = append(fc.auxes, a)
	return int64(len(fc.auxes) - 1)
}

// dst returns the destination register of a producing instruction.
func (fc *fnCompiler) dst(in *ir.Instr) (Ref, bool) {
	r, ok := fc.vals[in]
	return r, ok
}

// ldOp returns the specialized scalar-load Opcode for a kind.
func ldOp(k clc.ScalarKind) Opcode {
	switch k {
	case clc.KBool, clc.KUChar:
		return OpLdU8
	case clc.KChar:
		return OpLdI8
	case clc.KShort:
		return OpLdI16
	case clc.KUShort:
		return OpLdU16
	case clc.KInt:
		return OpLdI32
	case clc.KUInt:
		return OpLdU32
	case clc.KLong, clc.KULong:
		return OpLdI64
	case clc.KFloat:
		return OpLdF32
	case clc.KDouble:
		return OpLdF64
	}
	return OpNop
}

// stOp returns the specialized scalar-store Opcode for a kind.
func stOp(k clc.ScalarKind) Opcode {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		return OpStI8
	case clc.KShort, clc.KUShort:
		return OpStI16
	case clc.KInt, clc.KUInt:
		return OpStI32
	case clc.KLong, clc.KULong:
		return OpStI64
	case clc.KFloat:
		return OpStF32
	case clc.KDouble:
		return OpStF64
	}
	return OpNop
}

// memAddr resolves the address operand of a load/store: either the fused
// base+index pair (retire 2) or a plain address register.
func (fc *fnCompiler) memAddr(in *ir.Instr) (base, idx Ref, step int64, fused bool) {
	if gep := fc.fuseWith[in]; gep != nil {
		base = fc.scalarRef(gep.Args[0], BankInt)
		idx = fc.scalarRef(gep.Args[1], BankInt)
		step = int64(ir.PointeeSize(gep.Args[0].Type()))
		return base, idx, step, true
	}
	return fc.scalarRef(in.Args[0], BankInt), Ref{}, 0, false
}

// emit translates one IR instruction into bytecode.
func (fc *fnCompiler) emit(in *ir.Instr) {
	switch in.Op {
	case ir.OpAlloca:
		d, ok := fc.dst(in)
		if !ok || d.Bank != BankInt {
			fc.trap(fmt.Sprintf("vm: alloca %s without pointer register", in.VarName), 1)
			return
		}
		if in.Space == clc.ASLocal {
			addr := vm.MakeAddr(clc.ASLocal, uint64(fc.p.AllocaOffset(in, fc.f)))
			fc.add(Inst{Op: OpAllocaL, A: d.Idx, Imm: int64(addr)})
		} else {
			fc.add(Inst{Op: OpAllocaP, A: d.Idx, Imm: int64(fc.p.AllocaOffset(in, fc.f))})
		}

	case ir.OpLoad:
		fc.emitLoad(in)

	case ir.OpStore:
		fc.emitStore(in)

	case ir.OpIndex:
		d, ok := fc.dst(in)
		if !ok || d.Bank != BankInt {
			fc.trap("vm: index without pointer register", 1)
			return
		}
		base := fc.scalarRef(in.Args[0], BankInt)
		step := int64(ir.PointeeSize(in.Args[0].Type()))
		if ci, isC := in.Args[1].(*ir.ConstInt); isC {
			fc.add(Inst{Op: OpIndexC, A: d.Idx, B: base.Idx, Imm: ci.Val * step})
		} else {
			idx := fc.scalarRef(in.Args[1], BankInt)
			fc.add(Inst{Op: OpIndex, A: d.Idx, B: base.Idx, C: idx.Idx, Imm: step})
		}

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		fc.emitBin(in)

	case ir.OpNeg, ir.OpNot:
		fc.emitUn(in)

	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		fc.emitCmp(in)

	case ir.OpConvert:
		fc.emitConvert(in)

	case ir.OpExtract:
		fc.emitExtract(in)

	case ir.OpInsert:
		fc.emitInsert(in)

	case ir.OpShuffle:
		fc.emitShuffle(in)

	case ir.OpBuild:
		fc.emitBuild(in)

	case ir.OpWorkItem:
		fc.emitWorkItem(in)

	case ir.OpMath:
		fc.emitMath(in)

	case ir.OpBarrier:
		fc.add(Inst{Op: OpBarrier, In: in})

	case ir.OpCall:
		fc.emitCall(in)

	case ir.OpBr:
		pc := fc.add(Inst{Op: OpJmp})
		fc.fixups = append(fc.fixups, fixup{pc: pc, slot: 0, blk: in.Targets[0]})

	case ir.OpCondBr:
		op := OpCondBrI
		cb := BankInt
		if s, ok := in.Args[0].Type().(*clc.ScalarType); ok && s.Kind.IsFloat() {
			op, cb = OpCondBrF, BankFlt
		}
		cond := fc.scalarRef(in.Args[0], cb)
		pc := fc.add(Inst{Op: op, A: cond.Idx})
		fc.fixups = append(fc.fixups,
			fixup{pc: pc, slot: 0, blk: in.Targets[0]},
			fixup{pc: pc, slot: 1, blk: in.Targets[1]})

	case ir.OpRet:
		if len(in.Args) == 0 {
			fc.add(Inst{Op: OpRet})
			return
		}
		r, ok := fc.operand(in.Args[0])
		if !ok {
			fc.add(Inst{Op: OpRet})
			return
		}
		switch r.Bank {
		case BankInt:
			fc.add(Inst{Op: OpRetI, B: r.Idx})
		case BankFlt:
			fc.add(Inst{Op: OpRetF, B: r.Idx})
		case BankVecI:
			fc.add(Inst{Op: OpRetVI, B: r.Idx})
		case BankVecF:
			fc.add(Inst{Op: OpRetVF, B: r.Idx})
		}

	default:
		fc.trap(fmt.Sprintf("vm: unhandled op %s", in.Op), 1)
	}
}

func (fc *fnCompiler) emitLoad(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap("vm: load without destination register", 1)
		return
	}
	base, idx, step, fused := fc.memAddr(in)
	retire := uint8(1)
	if fused {
		retire = 2
	}
	i := Inst{A: d.Idx, B: base.Idx, C: idx.Idx, Imm: step,
		N: int32(in.Typ.Size()), Retire: retire, In: in}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		i.Op = ldOp(tt.Kind)
		if i.Op == OpNop {
			fc.trap(fmt.Sprintf("vm: load of unsupported scalar %s", tt.Kind), retire)
			return
		}
		if fused {
			i.Op += OpLdXI8 - OpLdI8
		}
	case *clc.VectorType:
		i.Kind = uint8(tt.Elem.Kind)
		i.Sub = uint8(tt.Len)
		if tt.Elem.Kind.IsFloat() {
			i.Op = OpLdVF
		} else {
			i.Op = OpLdVI
		}
		if fused {
			i.Op += OpLdXVI - OpLdVI
		}
	case *clc.PointerType:
		i.Op = OpLdI64
		if fused {
			i.Op += OpLdXI8 - OpLdI8
		}
	default:
		fc.trap(fmt.Sprintf("vm: load of unsupported type %s", in.Typ), retire)
		return
	}
	fc.code = append(fc.code, i)
}

func (fc *fnCompiler) emitStore(in *ir.Instr) {
	base, idx, step, fused := fc.memAddr(in)
	retire := uint8(1)
	if fused {
		retire = 2
	}
	t := in.Args[1].Type()
	i := Inst{B: base.Idx, C: idx.Idx, Imm: step,
		N: int32(t.Size()), Retire: retire, In: in}
	switch tt := t.(type) {
	case *clc.ScalarType:
		i.Op = stOp(tt.Kind)
		if i.Op == OpNop {
			fc.trap(fmt.Sprintf("vm: store of unsupported scalar %s", tt.Kind), retire)
			return
		}
		vb := BankInt
		if tt.Kind.IsFloat() {
			vb = BankFlt
		}
		i.A = fc.scalarRef(in.Args[1], vb).Idx
		if fused {
			i.Op += OpStXI8 - OpStI8
		}
	case *clc.VectorType:
		vb := BankVecI
		i.Op = OpStVI
		if tt.Elem.Kind.IsFloat() {
			vb, i.Op = BankVecF, OpStVF
		}
		src, ok := fc.vecRef(in.Args[1], vb)
		if !ok {
			fc.trap(fmt.Sprintf("vm: store of unsupported type %s", t), retire)
			return
		}
		i.A = src.Idx
		i.Kind = uint8(tt.Elem.Kind)
		i.Sub = uint8(tt.Len)
		if fused {
			i.Op += OpStXVI - OpStVI
		}
	case *clc.PointerType:
		i.Op = OpStI64
		i.A = fc.scalarRef(in.Args[1], BankInt).Idx
		if fused {
			i.Op += OpStXI8 - OpStI8
		}
	default:
		fc.trap(fmt.Sprintf("vm: store of unsupported type %s", t), retire)
		return
	}
	fc.code = append(fc.code, i)
}

func (fc *fnCompiler) emitBin(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap(fmt.Sprintf("vm: binary op %s without register", in.Op), 1)
		return
	}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			a := fc.scalarRef(in.Args[0], BankFlt)
			b := fc.scalarRef(in.Args[1], BankFlt)
			var op Opcode
			switch in.Op {
			case ir.OpAdd:
				op = OpAddF
			case ir.OpSub:
				op = OpSubF
			case ir.OpMul:
				op = OpMulF
			case ir.OpDiv:
				op = OpDivF
			default:
				op = OpFltBin
			}
			if op != OpFltBin && tt.Kind == clc.KFloat {
				op += OpAddF32 - OpAddF
			}
			fc.add(Inst{Op: op, Kind: uint8(tt.Kind), Sub: uint8(in.Op),
				A: d.Idx, B: a.Idx, C: b.Idx})
			return
		}
		a := fc.scalarRef(in.Args[0], BankInt)
		b := fc.scalarRef(in.Args[1], BankInt)
		op := OpIntBin
		// Specializations hold for arbitrary (even unnormalized) inputs:
		// wrap-to-32 equals normInt after the raw 64-bit op, and 64-bit
		// kinds need no normalization at all. Narrow kinds and the
		// div/rem/shift family keep the generic path.
		switch in.Op {
		case ir.OpAdd:
			op = pickIntOp(tt.Kind, OpAddI, OpAddI32, OpAddU32)
		case ir.OpSub:
			op = pickIntOp(tt.Kind, OpSubI, OpSubI32, OpSubU32)
		case ir.OpMul:
			op = pickIntOp(tt.Kind, OpMulI, OpMulI32, OpMulU32)
		case ir.OpAnd:
			op = pickIntOp(tt.Kind, OpAndI, OpIntBin, OpIntBin)
		case ir.OpOr:
			op = pickIntOp(tt.Kind, OpOrI, OpIntBin, OpIntBin)
		case ir.OpXor:
			op = pickIntOp(tt.Kind, OpXorI, OpIntBin, OpIntBin)
		}
		fc.add(Inst{Op: op, Kind: uint8(tt.Kind), Sub: uint8(in.Op),
			A: d.Idx, B: a.Idx, C: b.Idx})
	case *clc.VectorType:
		ek := tt.Elem.Kind
		if ek.IsFloat() {
			a, okA := fc.vecRef(in.Args[0], BankVecF)
			b, okB := fc.vecRef(in.Args[1], BankVecF)
			if !okA || !okB || d.Bank != BankVecF {
				fc.trap(fmt.Sprintf("vm: binary op %s on unsupported type %s", in.Op, in.Typ), 1)
				return
			}
			var op Opcode
			switch in.Op {
			case ir.OpAdd:
				op = OpVAddF
			case ir.OpSub:
				op = OpVSubF
			case ir.OpMul:
				op = OpVMulF
			case ir.OpDiv:
				op = OpVDivF
			default:
				op = OpVBinF
			}
			fc.add(Inst{Op: op, Kind: uint8(ek), Sub: uint8(in.Op),
				A: d.Idx, B: a.Idx, C: b.Idx})
			return
		}
		a, okA := fc.vecRef(in.Args[0], BankVecI)
		b, okB := fc.vecRef(in.Args[1], BankVecI)
		if !okA || !okB || d.Bank != BankVecI {
			fc.trap(fmt.Sprintf("vm: binary op %s on unsupported type %s", in.Op, in.Typ), 1)
			return
		}
		fc.add(Inst{Op: OpVBinI, Kind: uint8(ek), Sub: uint8(in.Op),
			A: d.Idx, B: a.Idx, C: b.Idx})
	case *clc.PointerType:
		// Raw byte arithmetic on pointers, no normalization.
		a := fc.scalarRef(in.Args[0], BankInt)
		b := fc.scalarRef(in.Args[1], BankInt)
		switch in.Op {
		case ir.OpAdd:
			fc.add(Inst{Op: OpAddI, A: d.Idx, B: a.Idx, C: b.Idx})
		case ir.OpSub:
			fc.add(Inst{Op: OpSubI, A: d.Idx, B: a.Idx, C: b.Idx})
		default:
			fc.trap(fmt.Sprintf("vm: binary op %s on unsupported type %s", in.Op, in.Typ), 1)
		}
	default:
		fc.trap(fmt.Sprintf("vm: binary op %s on unsupported type %s", in.Op, in.Typ), 1)
	}
}

// pickIntOp selects the specialized Opcode for an integer Kind: raw64 for
// 64-bit kinds, the wrapping 32-bit variants for int/uint, generic
// otherwise.
func pickIntOp(k clc.ScalarKind, raw64, i32, u32 Opcode) Opcode {
	switch k {
	case clc.KLong, clc.KULong:
		return raw64
	case clc.KInt:
		return i32
	case clc.KUInt:
		return u32
	}
	return OpIntBin
}

func (fc *fnCompiler) emitUn(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap(fmt.Sprintf("vm: unary op %s without register", in.Op), 1)
		return
	}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			if in.Op != ir.OpNeg {
				fc.trap(fmt.Sprintf("vm: %s on float", in.Op), 1)
				return
			}
			a := fc.scalarRef(in.Args[0], BankFlt)
			fc.add(Inst{Op: OpNegF, A: d.Idx, B: a.Idx})
			return
		}
		a := fc.scalarRef(in.Args[0], BankInt)
		op := OpNotI
		if in.Op == ir.OpNeg {
			op = OpNegI
		}
		fc.add(Inst{Op: op, Kind: uint8(tt.Kind), A: d.Idx, B: a.Idx})
	case *clc.VectorType:
		if tt.Elem.Kind.IsFloat() {
			a, okA := fc.vecRef(in.Args[0], BankVecF)
			if !okA || d.Bank != BankVecF {
				fc.trap(fmt.Sprintf("vm: unary op %s on unsupported type %s", in.Op, in.Typ), 1)
				return
			}
			// The interpreter negates float vectors for both Neg and Not;
			// replicated bit for bit.
			fc.add(Inst{Op: OpVNegF, A: d.Idx, B: a.Idx})
			return
		}
		a, okA := fc.vecRef(in.Args[0], BankVecI)
		if !okA || d.Bank != BankVecI {
			fc.trap(fmt.Sprintf("vm: unary op %s on unsupported type %s", in.Op, in.Typ), 1)
			return
		}
		op := OpVNotI
		if in.Op == ir.OpNeg {
			op = OpVNegI
		}
		fc.add(Inst{Op: op, Kind: uint8(tt.Elem.Kind), A: d.Idx, B: a.Idx})
	default:
		fc.trap(fmt.Sprintf("vm: unary op %s on unsupported type %s", in.Op, in.Typ), 1)
	}
}

func (fc *fnCompiler) emitCmp(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap(fmt.Sprintf("vm: compare %s without register", in.Op), 1)
		return
	}
	if d.Bank == BankFlt {
		// A float-typed compare result: the interpreter boxes {i: 0/1}
		// and any float-reading consumer sees zero.
		fc.add(Inst{Op: OpZeroF, A: d.Idx})
		return
	}
	if d.Bank != BankInt {
		fc.trap(fmt.Sprintf("vm: compare %s with vector result", in.Op), 1)
		return
	}
	rel := in.Op - ir.OpEq // OpEq..OpGe are contiguous
	switch ot := in.Args[0].Type().(type) {
	case *clc.ScalarType:
		if ot.Kind.IsFloat() {
			a := fc.scalarRef(in.Args[0], BankFlt)
			b := fc.scalarRef(in.Args[1], BankFlt)
			fc.add(Inst{Op: OpEqF + Opcode(rel), A: d.Idx, B: a.Idx, C: b.Idx})
			return
		}
		a := fc.scalarRef(in.Args[0], BankInt)
		b := fc.scalarRef(in.Args[1], BankInt)
		op := OpEqI + Opcode(rel)
		if ot.Kind.IsUnsigned() && in.Op != ir.OpEq && in.Op != ir.OpNe {
			op = OpLtU + Opcode(in.Op-ir.OpLt)
		}
		fc.add(Inst{Op: op, A: d.Idx, B: a.Idx, C: b.Idx})
	case *clc.PointerType:
		a := fc.scalarRef(in.Args[0], BankInt)
		b := fc.scalarRef(in.Args[1], BankInt)
		fc.add(Inst{Op: OpEqI + Opcode(rel), A: d.Idx, B: a.Idx, C: b.Idx})
	default:
		// Vector (and any other) comparisons fall through to zero in the
		// interpreter.
		fc.add(Inst{Op: OpZeroI, A: d.Idx})
	}
}

func (fc *fnCompiler) emitConvert(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap("vm: convert without register", 1)
		return
	}
	from := in.Args[0].Type()
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		switch ft := from.(type) {
		case *clc.ScalarType:
			fc.emitScalarConvert(in, d, ft.Kind, tt.Kind)
			return
		case *clc.PointerType:
			a := fc.scalarRef(in.Args[0], BankInt)
			if tt.Kind == clc.KLong || tt.Kind == clc.KULong {
				fc.add(Inst{Op: OpMovI, A: d.Idx, B: a.Idx})
			} else {
				fc.add(Inst{Op: OpConvI, Kind: uint8(tt.Kind), A: d.Idx, B: a.Idx})
			}
			return
		}
		fc.trap(fmt.Sprintf("vm: unsupported conversion %s → %s", from, in.Typ), 1)
	case *clc.PointerType:
		// The interpreter reuses the boxed value's integer field; for a
		// float source that field is zero.
		r, okR := fc.operand(in.Args[0])
		if okR && r.Bank == BankInt {
			fc.add(Inst{Op: OpMovI, A: d.Idx, B: r.Idx})
		} else {
			fc.add(Inst{Op: OpZeroI, A: d.Idx})
		}
	case *clc.VectorType:
		ft, okV := from.(*clc.VectorType)
		if !okV || ft.Len != tt.Len {
			fc.trap(fmt.Sprintf("vm: bad vector conversion %s → %s", from, in.Typ), 1)
			return
		}
		sb := BankVecI
		if ft.Elem.Kind.IsFloat() {
			sb = BankVecF
		}
		src, okS := fc.vecRef(in.Args[0], sb)
		if !okS {
			fc.trap(fmt.Sprintf("vm: bad vector conversion %s → %s", from, in.Typ), 1)
			return
		}
		fc.add(Inst{Op: OpVConv, Sub: uint8(ft.Elem.Kind), Kind: uint8(tt.Elem.Kind),
			A: d.Idx, B: src.Idx})
	default:
		fc.trap(fmt.Sprintf("vm: unsupported conversion %s → %s", from, in.Typ), 1)
	}
}

// emitScalarConvert specializes scalar-to-scalar conversions.
func (fc *fnCompiler) emitScalarConvert(in *ir.Instr, d Ref, from, to clc.ScalarKind) {
	switch {
	case from.IsFloat() && to.IsFloat():
		a := fc.scalarRef(in.Args[0], BankFlt)
		if to == clc.KFloat {
			fc.add(Inst{Op: OpF2F32, A: d.Idx, B: a.Idx})
		} else {
			fc.add(Inst{Op: OpMovF, A: d.Idx, B: a.Idx})
		}
	case from.IsFloat():
		a := fc.scalarRef(in.Args[0], BankFlt)
		fc.add(Inst{Op: OpF2I, Kind: uint8(to), A: d.Idx, B: a.Idx})
	case to.IsFloat():
		a := fc.scalarRef(in.Args[0], BankInt)
		op := OpI2F
		if from.IsUnsigned() {
			op = OpU2F
		}
		fc.add(Inst{Op: op, Kind: uint8(to), A: d.Idx, B: a.Idx})
	default:
		a := fc.scalarRef(in.Args[0], BankInt)
		if to == clc.KLong || to == clc.KULong {
			fc.add(Inst{Op: OpMovI, A: d.Idx, B: a.Idx})
		} else {
			fc.add(Inst{Op: OpConvI, Kind: uint8(to), A: d.Idx, B: a.Idx})
		}
	}
}

func (fc *fnCompiler) emitExtract(in *ir.Instr) {
	d, ok := fc.dst(in)
	vt, okT := in.Args[0].Type().(*clc.VectorType)
	if !ok || !okT {
		fc.trap("vm: extract on non-vector operand", 1)
		return
	}
	lane := int64(in.Comps[0])
	if vt.Elem.Kind.IsFloat() {
		src, okS := fc.vecRef(in.Args[0], BankVecF)
		if !okS || d.Bank != BankFlt {
			fc.trap("vm: extract on non-vector operand", 1)
			return
		}
		fc.add(Inst{Op: OpExtF, A: d.Idx, B: src.Idx, Imm: lane})
		return
	}
	src, okS := fc.vecRef(in.Args[0], BankVecI)
	if !okS || d.Bank != BankInt {
		fc.trap("vm: extract on non-vector operand", 1)
		return
	}
	fc.add(Inst{Op: OpExtI, A: d.Idx, B: src.Idx, Imm: lane})
}

func (fc *fnCompiler) emitInsert(in *ir.Instr) {
	d, ok := fc.dst(in)
	vt, okT := in.Typ.(*clc.VectorType)
	if !ok || !okT {
		fc.trap("vm: insert on non-vector operand", 1)
		return
	}
	lane := int64(in.Comps[0])
	if vt.Elem.Kind.IsFloat() {
		src, okS := fc.vecRef(in.Args[0], BankVecF)
		if !okS || d.Bank != BankVecF {
			fc.trap("vm: insert on non-vector operand", 1)
			return
		}
		sc := fc.scalarRef(in.Args[1], BankFlt)
		fc.add(Inst{Op: OpInsF, A: d.Idx, B: src.Idx, C: sc.Idx, Imm: lane})
		return
	}
	src, okS := fc.vecRef(in.Args[0], BankVecI)
	if !okS || d.Bank != BankVecI {
		fc.trap("vm: insert on non-vector operand", 1)
		return
	}
	sc := fc.scalarRef(in.Args[1], BankInt)
	fc.add(Inst{Op: OpInsI, A: d.Idx, B: src.Idx, C: sc.Idx, Imm: lane})
}

func (fc *fnCompiler) emitShuffle(in *ir.Instr) {
	d, ok := fc.dst(in)
	vt, okT := in.Typ.(*clc.VectorType)
	if !ok || !okT {
		fc.trap("vm: shuffle on non-vector operand", 1)
		return
	}
	comps := make([]int32, len(in.Comps))
	for i, c := range in.Comps {
		comps[i] = int32(c)
	}
	ax := fc.auxAdd(Aux{Comps: comps})
	if vt.Elem.Kind.IsFloat() {
		src, okS := fc.vecRef(in.Args[0], BankVecF)
		if !okS || d.Bank != BankVecF {
			fc.trap("vm: shuffle on non-vector operand", 1)
			return
		}
		fc.add(Inst{Op: OpShufF, A: d.Idx, B: src.Idx, Imm: ax})
		return
	}
	src, okS := fc.vecRef(in.Args[0], BankVecI)
	if !okS || d.Bank != BankVecI {
		fc.trap("vm: shuffle on non-vector operand", 1)
		return
	}
	fc.add(Inst{Op: OpShufI, A: d.Idx, B: src.Idx, Imm: ax})
}

func (fc *fnCompiler) emitBuild(in *ir.Instr) {
	d, ok := fc.dst(in)
	vt, okT := in.Typ.(*clc.VectorType)
	if !ok || !okT {
		fc.trap("vm: build on non-vector type", 1)
		return
	}
	eb := BankInt
	op := OpBuildI
	want := BankVecI
	if vt.Elem.Kind.IsFloat() {
		eb, op, want = BankFlt, OpBuildF, BankVecF
	}
	if d.Bank != want {
		fc.trap("vm: build on non-vector type", 1)
		return
	}
	refs := make([]Ref, len(in.Args))
	for i, a := range in.Args {
		refs[i] = fc.scalarRef(a, eb)
	}
	ax := fc.auxAdd(Aux{Refs: refs})
	fc.add(Inst{Op: op, A: d.Idx, Imm: ax})
}

func (fc *fnCompiler) emitWorkItem(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap("vm: work-item query without register", 1)
		return
	}
	if d.Bank == BankFlt {
		fc.add(Inst{Op: OpZeroF, A: d.Idx})
		return
	}
	if d.Bank != BankInt {
		fc.trap(fmt.Sprintf("vm: work-item query %s with vector result", in.Func), 1)
		return
	}
	var q int32
	switch in.Func {
	case "get_global_id":
		q = QGlobalID
	case "get_local_id":
		q = QLocalID
	case "get_group_id":
		q = QGroupID
	case "get_global_size":
		q = QGlobalSize
	case "get_local_size":
		q = QLocalSize
	case "get_num_groups":
		q = QNumGroups
	case "get_work_dim":
		q = QWorkDim
	default:
		q = QNone
	}
	// Dimension argument: constants (including the no-arg default 0) fold
	// into specialized opcodes; anything else is resolved at runtime.
	d64 := int64(0)
	dynamic := false
	if len(in.Args) > 0 {
		switch t := in.Args[0].(type) {
		case *ir.ConstInt:
			d64 = t.Val
		case *ir.ConstFloat:
			d64 = 0 // the interpreter reads the int field of the box: zero
		default:
			dynamic = true
		}
	}
	if dynamic {
		dim := fc.scalarRef(in.Args[0], BankInt)
		fc.add(Inst{Op: OpWIQ, A: d.Idx, B: dim.Idx, N: q})
		return
	}
	if d64 < 0 || d64 > 2 || q == QNone {
		fc.add(Inst{Op: OpZeroI, A: d.Idx})
		return
	}
	switch q {
	case QGlobalID:
		fc.add(Inst{Op: OpGID, A: d.Idx, Imm: d64})
	case QLocalID:
		fc.add(Inst{Op: OpLID, A: d.Idx, Imm: d64})
	case QGroupID:
		fc.add(Inst{Op: OpGRP, A: d.Idx, Imm: d64})
	case QGlobalSize:
		fc.add(Inst{Op: OpGSZ, A: d.Idx, Imm: d64})
	case QLocalSize:
		fc.add(Inst{Op: OpLSZ, A: d.Idx, Imm: d64})
	case QNumGroups:
		fc.add(Inst{Op: OpNGRP, A: d.Idx, Imm: d64})
	case QWorkDim:
		fc.add(Inst{Op: OpConstI, A: d.Idx, Imm: 3})
	}
}

func (fc *fnCompiler) emitMath(in *ir.Instr) {
	d, ok := fc.dst(in)
	if !ok {
		fc.trap(fmt.Sprintf("vm: math builtin %q without register", in.Func), 1)
		return
	}
	// Geometric reductions: vector args, scalar float result.
	switch in.Func {
	case "dot", "length":
		if vt, isVec := in.Args[0].Type().(*clc.VectorType); isVec {
			if d.Bank != BankFlt {
				// An integer-typed consumer of the boxed float sees zero.
				fc.add(Inst{Op: OpZeroI, A: d.Idx})
				return
			}
			a, okA := fc.vecRef(in.Args[0], BankVecF)
			if !okA {
				fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Args[0].Type()), 1)
				return
			}
			if in.Func == "length" {
				fc.add(Inst{Op: OpLenVF, Kind: uint8(vt.Elem.Kind), A: d.Idx, B: a.Idx})
				return
			}
			b, okB := fc.vecRef(in.Args[1], BankVecF)
			if !okB {
				fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Args[1].Type()), 1)
				return
			}
			fc.add(Inst{Op: OpDotVF, Kind: uint8(vt.Elem.Kind), A: d.Idx, B: a.Idx, C: b.Idx})
			return
		}
		if d.Bank != BankFlt {
			fc.add(Inst{Op: OpZeroI, A: d.Idx})
			return
		}
		a := fc.scalarRef(in.Args[0], BankFlt)
		if in.Func == "length" {
			fc.add(Inst{Op: OpLenSS, A: d.Idx, B: a.Idx})
			return
		}
		b := fc.scalarRef(in.Args[1], BankFlt)
		fc.add(Inst{Op: OpDotSS, A: d.Idx, B: a.Idx, C: b.Idx})
		return
	}
	switch tt := in.Typ.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			refs := make([]Ref, len(in.Args))
			for i, a := range in.Args {
				refs[i] = fc.scalarRef(a, BankFlt)
			}
			ax := fc.auxAdd(Aux{Name: in.Func, Refs: refs})
			fc.add(Inst{Op: OpMathF, Kind: uint8(tt.Kind), A: d.Idx, Imm: ax})
			return
		}
		refs := make([]Ref, len(in.Args))
		for i, a := range in.Args {
			refs[i] = fc.scalarRef(a, BankInt)
		}
		ax := fc.auxAdd(Aux{Name: in.Func, Refs: refs})
		fc.add(Inst{Op: OpMathI, Kind: uint8(tt.Kind), A: d.Idx, Imm: ax})
	case *clc.VectorType:
		vb := BankVecI
		op := OpVMathI
		if tt.Elem.Kind.IsFloat() {
			vb, op = BankVecF, OpVMathF
		}
		if d.Bank != vb {
			fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Typ), 1)
			return
		}
		refs := make([]Ref, len(in.Args))
		for i, a := range in.Args {
			r, okR := fc.vecRef(a, vb)
			if !okR {
				fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Typ), 1)
				return
			}
			refs[i] = r
		}
		ax := fc.auxAdd(Aux{Name: in.Func, Refs: refs})
		fc.add(Inst{Op: op, Kind: uint8(tt.Elem.Kind), A: d.Idx, Imm: ax})
	default:
		fc.trap(fmt.Sprintf("vm: math builtin %q with unsupported type %s", in.Func, in.Typ), 1)
	}
}

func (fc *fnCompiler) emitCall(in *ir.Instr) {
	callee := fc.m.funcs[in.Callee]
	if callee == nil {
		fc.trap("vm: call to unknown function", 1)
		return
	}
	if len(in.Args) != len(callee.Fn.Params) {
		fc.trap(fmt.Sprintf("vm: call to %s with %d args, want %d",
			callee.Fn.Name, len(in.Args), len(callee.Fn.Params)), 1)
		return
	}
	refs := make([]Ref, len(in.Args))
	for i, a := range in.Args {
		switch callee.Params[i].Bank {
		case BankInt:
			refs[i] = fc.scalarRef(a, BankInt)
		case BankFlt:
			refs[i] = fc.scalarRef(a, BankFlt)
		default:
			r, okR := fc.vecRef(a, callee.Params[i].Bank)
			if !okR {
				fc.trap(fmt.Sprintf("vm: call to %s with mismatched vector argument %d",
					callee.Fn.Name, i), 1)
				return
			}
			refs[i] = r
		}
	}
	i := Inst{Op: OpCall, A: -1, Imm: fc.auxAdd(Aux{Callee: callee, Refs: refs})}
	if in.Producing() {
		d, okD := fc.dst(in)
		if !okD {
			fc.trap("vm: call without destination register", 1)
			return
		}
		i.A = d.Idx
		i.Sub = uint8(d.Bank)
	}
	fc.add(i)
}
