// Package debug gates the compiler's expensive self-checking mode.
// When the GROVER_DEBUG_VERIFY environment variable is non-empty, the
// optimizer re-verifies the IR after every pass, the Grover transform
// re-verifies after every candidate rewrite, and compilation runs the
// full static-analysis suite as a crash smoke-test. The checks are
// invariant assertions for developing the compiler, not user
// diagnostics; CI runs the test suite with the flag set.
package debug

import "os"

// Verify reports whether per-pass IR verification is enabled.
var Verify = os.Getenv("GROVER_DEBUG_VERIFY") != ""
