// Package linsolve provides exact rational linear algebra for Grover's
// index-correspondence analysis (paper §III-B, Equation 3). Systems are
// solved over affine forms: symbolic linear combinations of named terms
// with *big.Rat coefficients, so "x = ly" and "y = lx + 16·i" are first
// class right-hand sides and solutions.
package linsolve

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Affine is a linear combination of symbolic terms plus a constant:
// Σ Coeffs[k]·term_k + Const. Term keys are opaque strings chosen by the
// caller (the exprtree package uses canonical value names).
type Affine struct {
	Coeffs map[string]*big.Rat
	Const  *big.Rat
}

// NewAffine returns the zero affine form.
func NewAffine() *Affine {
	return &Affine{Coeffs: map[string]*big.Rat{}, Const: new(big.Rat)}
}

// ConstAffine returns an affine form holding only a constant.
func ConstAffine(c *big.Rat) *Affine {
	a := NewAffine()
	a.Const.Set(c)
	return a
}

// TermAffine returns an affine form equal to one term.
func TermAffine(key string) *Affine {
	a := NewAffine()
	a.Coeffs[key] = big.NewRat(1, 1)
	return a
}

// Clone deep-copies the affine form.
func (a *Affine) Clone() *Affine {
	out := NewAffine()
	out.Const.Set(a.Const)
	for k, v := range a.Coeffs {
		out.Coeffs[k] = new(big.Rat).Set(v)
	}
	return out
}

// AddScaled adds s·b to a in place and returns a.
func (a *Affine) AddScaled(b *Affine, s *big.Rat) *Affine {
	a.Const.Add(a.Const, new(big.Rat).Mul(b.Const, s))
	for k, v := range b.Coeffs {
		cur, ok := a.Coeffs[k]
		if !ok {
			cur = new(big.Rat)
			a.Coeffs[k] = cur
		}
		cur.Add(cur, new(big.Rat).Mul(v, s))
		if cur.Sign() == 0 {
			delete(a.Coeffs, k)
		}
	}
	return a
}

// Add adds b to a in place and returns a.
func (a *Affine) Add(b *Affine) *Affine { return a.AddScaled(b, big.NewRat(1, 1)) }

// Sub subtracts b from a in place and returns a.
func (a *Affine) Sub(b *Affine) *Affine { return a.AddScaled(b, big.NewRat(-1, 1)) }

// Scale multiplies a by s in place and returns a.
func (a *Affine) Scale(s *big.Rat) *Affine {
	a.Const.Mul(a.Const, s)
	for k, v := range a.Coeffs {
		v.Mul(v, s)
		if v.Sign() == 0 {
			delete(a.Coeffs, k)
		}
	}
	return a
}

// IsConst reports whether a has no symbolic terms.
func (a *Affine) IsConst() bool { return len(a.Coeffs) == 0 }

// IsZero reports whether a is identically zero.
func (a *Affine) IsZero() bool { return a.IsConst() && a.Const.Sign() == 0 }

// Coeff returns the coefficient of term key (zero when absent).
func (a *Affine) Coeff(key string) *big.Rat {
	if v, ok := a.Coeffs[key]; ok {
		return v
	}
	return new(big.Rat)
}

// Terms returns the term keys in sorted order.
func (a *Affine) Terms() []string {
	out := make([]string, 0, len(a.Coeffs))
	for k := range a.Coeffs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports structural equality of two affine forms.
func (a *Affine) Equal(b *Affine) bool {
	if a.Const.Cmp(b.Const) != 0 || len(a.Coeffs) != len(b.Coeffs) {
		return false
	}
	for k, v := range a.Coeffs {
		bv, ok := b.Coeffs[k]
		if !ok || v.Cmp(bv) != 0 {
			return false
		}
	}
	return true
}

// String renders the affine form as e.g. "ly + 16*i + 4".
func (a *Affine) String() string {
	var parts []string
	for _, k := range a.Terms() {
		c := a.Coeffs[k]
		switch {
		case c.Cmp(big.NewRat(1, 1)) == 0:
			parts = append(parts, k)
		case c.Cmp(big.NewRat(-1, 1)) == 0:
			parts = append(parts, "-"+k)
		default:
			parts = append(parts, ratString(c)+"*"+k)
		}
	}
	if a.Const.Sign() != 0 || len(parts) == 0 {
		parts = append(parts, ratString(a.Const))
	}
	s := strings.Join(parts, " + ")
	return strings.ReplaceAll(s, "+ -", "- ")
}

func ratString(r *big.Rat) string {
	if r.IsInt() {
		return r.Num().String()
	}
	return r.String()
}

// ErrSingular is returned when the linear system has no unique solution —
// in Grover's terms, the local-to-global correspondence is not reversible.
var ErrSingular = fmt.Errorf("linsolve: system has no unique solution")

// Solve solves A·x = b by Gauss-Jordan elimination over exact rationals,
// where b's entries (and hence the solutions) are affine forms. A must be
// square with one row per equation. It returns the solution vector x, or
// ErrSingular when A is singular.
func Solve(a [][]*big.Rat, b []*Affine) ([]*Affine, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("linsolve: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("linsolve: %d equations but %d right-hand sides", n, len(b))
	}
	// Working copies.
	m := make([][]*big.Rat, n)
	rhs := make([]*Affine, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linsolve: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = make([]*big.Rat, n)
		for j := range a[i] {
			m[i][j] = new(big.Rat).Set(a[i][j])
		}
		rhs[i] = b[i].Clone()
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		// Normalize pivot row.
		inv := new(big.Rat).Inv(m[col][col])
		for j := col; j < n; j++ {
			m[col][j].Mul(m[col][j], inv)
		}
		rhs[col].Scale(inv)
		// Eliminate column elsewhere.
		for r := 0; r < n; r++ {
			if r == col || m[r][col].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Neg(m[r][col])
			for j := col; j < n; j++ {
				m[r][j].Add(m[r][j], new(big.Rat).Mul(factor, m[col][j]))
			}
			rhs[r].AddScaled(rhs[col], factor)
		}
	}
	return rhs, nil
}

// DecomposeByStrides splits a flattened affine offset into per-dimension
// affine indices given the dimension strides (descending; the last stride
// is the element size). It performs greedy Euclidean decomposition of every
// coefficient: offset = Σ_d X_d·stride_d. An error is reported when a
// coefficient does not decompose exactly (non-integral division).
func DecomposeByStrides(offset *Affine, strides []int64) ([]*Affine, error) {
	n := len(strides)
	out := make([]*Affine, n)
	for i := range out {
		out[i] = NewAffine()
	}
	place := func(c *big.Rat, key string) error {
		rem := new(big.Rat).Set(c)
		for d := 0; d < n; d++ {
			s := big.NewRat(strides[d], 1)
			q := new(big.Rat).Quo(rem, s)
			if d == n-1 {
				if !q.IsInt() {
					return fmt.Errorf("linsolve: coefficient %s of %q is not a multiple of the element stride %d", ratString(c), key, strides[d])
				}
				addTerm(out[d], key, q)
				return nil
			}
			// Integer part of the quotient (toward zero).
			iq := new(big.Int).Quo(q.Num(), q.Denom())
			if iq.Sign() != 0 {
				addTerm(out[d], key, new(big.Rat).SetInt(iq))
				rem.Sub(rem, new(big.Rat).Mul(new(big.Rat).SetInt(iq), s))
			}
		}
		return nil
	}
	for k, v := range offset.Coeffs {
		if err := place(v, k); err != nil {
			return nil, err
		}
	}
	if err := place(offset.Const, ""); err != nil {
		return nil, err
	}
	return out, nil
}

func addTerm(a *Affine, key string, v *big.Rat) {
	if key == "" {
		a.Const.Add(a.Const, v)
		return
	}
	cur, ok := a.Coeffs[key]
	if !ok {
		cur = new(big.Rat)
		a.Coeffs[key] = cur
	}
	cur.Add(cur, v)
	if cur.Sign() == 0 {
		delete(a.Coeffs, key)
	}
}
