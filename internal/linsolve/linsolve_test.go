package linsolve

import (
	"math/big"
	"testing"
	"testing/quick"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestAffineArithmetic(t *testing.T) {
	a := TermAffine("lx")
	a.AddScaled(TermAffine("ly"), rat(2, 1))
	a.Const.SetInt64(3)
	if a.String() != "lx + 2*ly + 3" {
		t.Errorf("String = %q", a.String())
	}
	b := a.Clone()
	b.Sub(TermAffine("lx"))
	if b.Coeff("lx").Sign() != 0 {
		t.Error("lx should cancel")
	}
	b.Scale(rat(2, 1))
	if b.Coeff("ly").Cmp(rat(4, 1)) != 0 || b.Const.Cmp(rat(6, 1)) != 0 {
		t.Errorf("scale wrong: %s", b)
	}
	if !a.Clone().Equal(a) {
		t.Error("clone not equal")
	}
}

func TestSolveTransposeSwap(t *testing.T) {
	// Matrix Transpose (paper §III-C): LS index (x,y) = (ly, lx); LL index
	// (x_LL, y_LL) = (lx, ly) as symbolic constants. System:
	//   [0 1][lx]   [x_LL]          (x = ly)
	//   [1 0][ly] = [y_LL]          (y = lx)
	a := [][]*big.Rat{{rat(0, 1), rat(1, 1)}, {rat(1, 1), rat(0, 1)}}
	b := []*Affine{TermAffine("x_LL"), TermAffine("y_LL")}
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// lx = y_LL, ly = x_LL.
	if sol[0].String() != "y_LL" || sol[1].String() != "x_LL" {
		t.Errorf("solution = (%s, %s)", sol[0], sol[1])
	}
}

func TestSolveIdentity(t *testing.T) {
	a := [][]*big.Rat{{rat(1, 1)}}
	rhs := TermAffine("k")
	rhs.Const.SetInt64(5)
	sol, err := Solve(a, []*Affine{rhs})
	if err != nil {
		t.Fatal(err)
	}
	if sol[0].String() != "k + 5" {
		t.Errorf("solution = %s", sol[0])
	}
}

func TestSolveScaled(t *testing.T) {
	// 2*lx = x_LL → lx = x_LL/2 (non-integral solutions are the caller's
	// problem; the solver is exact).
	a := [][]*big.Rat{{rat(2, 1)}}
	sol, err := Solve(a, []*Affine{TermAffine("x")})
	if err != nil {
		t.Fatal(err)
	}
	if sol[0].Coeff("x").Cmp(rat(1, 2)) != 0 {
		t.Errorf("solution = %s", sol[0])
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]*big.Rat{{rat(1, 1), rat(1, 1)}, {rat(2, 1), rat(2, 1)}}
	_, err := Solve(a, []*Affine{TermAffine("x"), TermAffine("y")})
	if err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolve3x3(t *testing.T) {
	// x = lx + ly, y = ly + lz, z = lx + lz  →  solvable, det = 2.
	a := [][]*big.Rat{
		{rat(1, 1), rat(1, 1), rat(0, 1)},
		{rat(0, 1), rat(1, 1), rat(1, 1)},
		{rat(1, 1), rat(0, 1), rat(1, 1)},
	}
	b := []*Affine{TermAffine("x"), TermAffine("y"), TermAffine("z")}
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// lx = (x - y + z)/2
	want := TermAffine("x")
	want.Sub(TermAffine("y")).Add(TermAffine("z")).Scale(rat(1, 2))
	if !sol[0].Equal(want) {
		t.Errorf("lx = %s, want %s", sol[0], want)
	}
}

func TestSolveRandomInvertible(t *testing.T) {
	// Property: for random integer matrices with nonzero determinant,
	// substituting the solution back satisfies A·x = b.
	check := func(a11, a12, a21, a22 int8, c1, c2 int8) bool {
		det := int64(a11)*int64(a22) - int64(a12)*int64(a21)
		if det == 0 {
			return true
		}
		a := [][]*big.Rat{
			{rat(int64(a11), 1), rat(int64(a12), 1)},
			{rat(int64(a21), 1), rat(int64(a22), 1)},
		}
		b1 := TermAffine("u")
		b1.Const.SetInt64(int64(c1))
		b2 := TermAffine("v")
		b2.Const.SetInt64(int64(c2))
		sol, err := Solve(a, []*Affine{b1, b2})
		if err != nil {
			return false
		}
		// Verify: a11*x0 + a12*x1 == b1 and a21*x0 + a22*x1 == b2.
		r1 := sol[0].Clone().Scale(rat(int64(a11), 1)).AddScaled(sol[1], rat(int64(a12), 1))
		r2 := sol[0].Clone().Scale(rat(int64(a21), 1)).AddScaled(sol[1], rat(int64(a22), 1))
		return r1.Equal(b1) && r2.Equal(b2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeByStrides(t *testing.T) {
	// offset = ly*64 + lx*4 with strides [64, 4] (float lm[16][16]).
	off := NewAffine()
	off.AddScaled(TermAffine("ly"), rat(64, 1))
	off.AddScaled(TermAffine("lx"), rat(4, 1))
	dims, err := DecomposeByStrides(off, []int64{64, 4})
	if err != nil {
		t.Fatal(err)
	}
	if dims[0].String() != "ly" || dims[1].String() != "lx" {
		t.Errorf("dims = (%s, %s)", dims[0], dims[1])
	}
}

func TestDecomposeMixedCoefficient(t *testing.T) {
	// offset = i*68 + 8 with strides [64, 4]:
	// 68 = 1*64 + 1*4 → dim0 gets i, dim1 gets i; const 8 → dim1 gets 2.
	off := NewAffine()
	off.AddScaled(TermAffine("i"), rat(68, 1))
	off.Const.SetInt64(8)
	dims, err := DecomposeByStrides(off, []int64{64, 4})
	if err != nil {
		t.Fatal(err)
	}
	if dims[0].String() != "i" {
		t.Errorf("dim0 = %s", dims[0])
	}
	if dims[1].String() != "i + 2" {
		t.Errorf("dim1 = %s", dims[1])
	}
}

func TestDecompose1D(t *testing.T) {
	off := NewAffine()
	off.AddScaled(TermAffine("lx"), rat(4, 1))
	dims, err := DecomposeByStrides(off, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	if dims[0].String() != "lx" {
		t.Errorf("dim0 = %s", dims[0])
	}
}

func TestDecomposeNonIntegral(t *testing.T) {
	off := NewAffine()
	off.AddScaled(TermAffine("lx"), rat(3, 1)) // not a multiple of 4
	if _, err := DecomposeByStrides(off, []int64{4}); err == nil {
		t.Fatal("expected non-integral decomposition error")
	}
}

// TestDecomposeNegativeStride: accesses walking a buffer backwards
// (buf[base - i]) produce negative affine coefficients; decomposition
// must place them exactly and recompose to the original (Quo truncates
// toward zero, so both signs must round-trip).
func TestDecomposeNegativeStride(t *testing.T) {
	// offset = -68·i - 8 with strides [64, 4]:
	// -68 = -1·64 + -1·4, const -8 = -2·4.
	off := NewAffine()
	off.AddScaled(TermAffine("i"), rat(-68, 1))
	off.Const.SetInt64(-8)
	dims, err := DecomposeByStrides(off, []int64{64, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := dims[0].String(); got != "-1·i" && got != "-i" {
		t.Errorf("dim0 = %s", got)
	}
	recomposed := dims[0].Clone().Scale(rat(64, 1)).AddScaled(dims[1], rat(4, 1))
	if !recomposed.Equal(off) {
		t.Errorf("recomposed %s != %s", recomposed, off)
	}
}

// TestDecomposeNonUnitGCDStrides: element strides larger than one byte
// with a shared factor (a 12-byte struct tiled 8 to a row → strides
// [96, 12]) must decompose coefficients that are multiples of the GCD
// but not of the row stride.
func TestDecomposeNonUnitGCDStrides(t *testing.T) {
	// offset = 36·i + 24: 36 = 0·96 + 3·12, 24 = 2·12.
	off := NewAffine()
	off.AddScaled(TermAffine("i"), rat(36, 1))
	off.Const.SetInt64(24)
	dims, err := DecomposeByStrides(off, []int64{96, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !dims[0].IsZero() {
		t.Errorf("dim0 = %s, want 0", dims[0])
	}
	if got := dims[1].String(); got != "3*i + 2" {
		t.Errorf("dim1 = %s", got)
	}
	// A coefficient that is a multiple of the GCD of the strides but not
	// of the element stride must still be rejected: 30 = 2·12 + 6.
	bad := NewAffine()
	bad.AddScaled(TermAffine("i"), rat(30, 1))
	if _, err := DecomposeByStrides(bad, []int64{96, 12}); err == nil {
		t.Fatal("expected non-integral decomposition error for coefficient 30 over stride 12")
	}
}

// TestSolveNegativeAndRationalPivots: Gauss-Jordan over exact rationals
// with negative pivots and a fractional inverse; the solution must be
// exact, not merely close.
func TestSolveNegativeAndRationalPivots(t *testing.T) {
	// [-2  3] [x]   [GL0]
	// [ 4 -5] [y] = [GL1]
	a := [][]*big.Rat{
		{rat(-2, 1), rat(3, 1)},
		{rat(4, 1), rat(-5, 1)},
	}
	b := []*Affine{TermAffine("GL0"), TermAffine("GL1")}
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// det = 10 - 12 = -2, so the inverse is [ 5/2 3/2 ; 2 1 ].
	wantX := TermAffine("GL0").Scale(rat(5, 2)).AddScaled(TermAffine("GL1"), rat(3, 2))
	wantY := TermAffine("GL0").Scale(rat(2, 1)).AddScaled(TermAffine("GL1"), rat(1, 1))
	if !sol[0].Equal(wantX) || !sol[1].Equal(wantY) {
		t.Errorf("sol = (%s; %s), want (%s; %s)", sol[0], sol[1], wantX, wantY)
	}
}

// TestAffineBigCoefficientRoundTrip: coefficients far beyond int64 must
// survive scale/unscale and solve/recompose exactly — the big.Rat
// arithmetic may not silently saturate or round.
func TestAffineBigCoefficientRoundTrip(t *testing.T) {
	huge := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 96)) // 2^96
	a := TermAffine("gx").Scale(huge)
	a.Const.Add(a.Const, rat(1, 3))
	back := a.Clone().Scale(new(big.Rat).Inv(huge))
	if got := back.Coeff("gx"); got.Cmp(rat(1, 1)) != 0 {
		t.Errorf("gx coefficient after round-trip = %s, want 1", got)
	}
	wantConst := new(big.Rat).Quo(rat(1, 3), huge)
	if back.Const.Cmp(wantConst) != 0 {
		t.Errorf("const after round-trip = %s, want %s", back.Const, wantConst)
	}

	// Solve a 2x2 with a 2^80 entry and verify by substitution.
	big80 := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 80))
	m := [][]*big.Rat{
		{big80, rat(1, 1)},
		{rat(1, 1), rat(1, 1)},
	}
	rhs := []*Affine{TermAffine("u"), TermAffine("v")}
	sol, err := Solve(m, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		got := sol[0].Clone().Scale(m[i][0]).AddScaled(sol[1], m[i][1])
		if !got.Equal(rhs[i]) {
			t.Errorf("row %d: substitution = %s, want %s", i, got, rhs[i])
		}
	}
}

// TestDecomposeHugeStrideAndCoefficient: decomposition stays exact when
// strides and coefficients approach and exceed the int64 range.
func TestDecomposeHugeStrideAndCoefficient(t *testing.T) {
	row := int64(1) << 40
	off := NewAffine()
	// 2^97·k decomposes over [2^40, 4] as 2^57·k rows + 0 elements.
	c := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 97))
	off.AddScaled(TermAffine("k"), c)
	off.Const.SetInt64(row + 8) // one row plus two elements
	dims, err := DecomposeByStrides(off, []int64{row, 4})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 57))
	if got := dims[0].Coeff("k"); got.Cmp(wantRows) != 0 {
		t.Errorf("dim0 k coefficient = %s, want 2^57", got)
	}
	recomposed := dims[0].Clone().Scale(rat(row, 1)).AddScaled(dims[1], rat(4, 1))
	if !recomposed.Equal(off) {
		t.Errorf("recomposed %s != %s", recomposed, off)
	}
}

func TestDecomposeProperty(t *testing.T) {
	// Property: recomposing Σ dims[d]*stride[d] recovers the original.
	check := func(c0, c1, k int16) bool {
		off := NewAffine()
		off.AddScaled(TermAffine("a"), rat(int64(c0)*4, 1))
		off.AddScaled(TermAffine("b"), rat(int64(c1)*4, 1))
		off.Const.SetInt64(int64(k) * 4)
		dims, err := DecomposeByStrides(off, []int64{256, 4})
		if err != nil {
			return false
		}
		recomposed := dims[0].Clone().Scale(rat(256, 1)).AddScaled(dims[1], rat(4, 1))
		return recomposed.Equal(off)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
