package linsolve

import (
	"math/big"
	"testing"
	"testing/quick"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestAffineArithmetic(t *testing.T) {
	a := TermAffine("lx")
	a.AddScaled(TermAffine("ly"), rat(2, 1))
	a.Const.SetInt64(3)
	if a.String() != "lx + 2*ly + 3" {
		t.Errorf("String = %q", a.String())
	}
	b := a.Clone()
	b.Sub(TermAffine("lx"))
	if b.Coeff("lx").Sign() != 0 {
		t.Error("lx should cancel")
	}
	b.Scale(rat(2, 1))
	if b.Coeff("ly").Cmp(rat(4, 1)) != 0 || b.Const.Cmp(rat(6, 1)) != 0 {
		t.Errorf("scale wrong: %s", b)
	}
	if !a.Clone().Equal(a) {
		t.Error("clone not equal")
	}
}

func TestSolveTransposeSwap(t *testing.T) {
	// Matrix Transpose (paper §III-C): LS index (x,y) = (ly, lx); LL index
	// (x_LL, y_LL) = (lx, ly) as symbolic constants. System:
	//   [0 1][lx]   [x_LL]          (x = ly)
	//   [1 0][ly] = [y_LL]          (y = lx)
	a := [][]*big.Rat{{rat(0, 1), rat(1, 1)}, {rat(1, 1), rat(0, 1)}}
	b := []*Affine{TermAffine("x_LL"), TermAffine("y_LL")}
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// lx = y_LL, ly = x_LL.
	if sol[0].String() != "y_LL" || sol[1].String() != "x_LL" {
		t.Errorf("solution = (%s, %s)", sol[0], sol[1])
	}
}

func TestSolveIdentity(t *testing.T) {
	a := [][]*big.Rat{{rat(1, 1)}}
	rhs := TermAffine("k")
	rhs.Const.SetInt64(5)
	sol, err := Solve(a, []*Affine{rhs})
	if err != nil {
		t.Fatal(err)
	}
	if sol[0].String() != "k + 5" {
		t.Errorf("solution = %s", sol[0])
	}
}

func TestSolveScaled(t *testing.T) {
	// 2*lx = x_LL → lx = x_LL/2 (non-integral solutions are the caller's
	// problem; the solver is exact).
	a := [][]*big.Rat{{rat(2, 1)}}
	sol, err := Solve(a, []*Affine{TermAffine("x")})
	if err != nil {
		t.Fatal(err)
	}
	if sol[0].Coeff("x").Cmp(rat(1, 2)) != 0 {
		t.Errorf("solution = %s", sol[0])
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]*big.Rat{{rat(1, 1), rat(1, 1)}, {rat(2, 1), rat(2, 1)}}
	_, err := Solve(a, []*Affine{TermAffine("x"), TermAffine("y")})
	if err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolve3x3(t *testing.T) {
	// x = lx + ly, y = ly + lz, z = lx + lz  →  solvable, det = 2.
	a := [][]*big.Rat{
		{rat(1, 1), rat(1, 1), rat(0, 1)},
		{rat(0, 1), rat(1, 1), rat(1, 1)},
		{rat(1, 1), rat(0, 1), rat(1, 1)},
	}
	b := []*Affine{TermAffine("x"), TermAffine("y"), TermAffine("z")}
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// lx = (x - y + z)/2
	want := TermAffine("x")
	want.Sub(TermAffine("y")).Add(TermAffine("z")).Scale(rat(1, 2))
	if !sol[0].Equal(want) {
		t.Errorf("lx = %s, want %s", sol[0], want)
	}
}

func TestSolveRandomInvertible(t *testing.T) {
	// Property: for random integer matrices with nonzero determinant,
	// substituting the solution back satisfies A·x = b.
	check := func(a11, a12, a21, a22 int8, c1, c2 int8) bool {
		det := int64(a11)*int64(a22) - int64(a12)*int64(a21)
		if det == 0 {
			return true
		}
		a := [][]*big.Rat{
			{rat(int64(a11), 1), rat(int64(a12), 1)},
			{rat(int64(a21), 1), rat(int64(a22), 1)},
		}
		b1 := TermAffine("u")
		b1.Const.SetInt64(int64(c1))
		b2 := TermAffine("v")
		b2.Const.SetInt64(int64(c2))
		sol, err := Solve(a, []*Affine{b1, b2})
		if err != nil {
			return false
		}
		// Verify: a11*x0 + a12*x1 == b1 and a21*x0 + a22*x1 == b2.
		r1 := sol[0].Clone().Scale(rat(int64(a11), 1)).AddScaled(sol[1], rat(int64(a12), 1))
		r2 := sol[0].Clone().Scale(rat(int64(a21), 1)).AddScaled(sol[1], rat(int64(a22), 1))
		return r1.Equal(b1) && r2.Equal(b2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeByStrides(t *testing.T) {
	// offset = ly*64 + lx*4 with strides [64, 4] (float lm[16][16]).
	off := NewAffine()
	off.AddScaled(TermAffine("ly"), rat(64, 1))
	off.AddScaled(TermAffine("lx"), rat(4, 1))
	dims, err := DecomposeByStrides(off, []int64{64, 4})
	if err != nil {
		t.Fatal(err)
	}
	if dims[0].String() != "ly" || dims[1].String() != "lx" {
		t.Errorf("dims = (%s, %s)", dims[0], dims[1])
	}
}

func TestDecomposeMixedCoefficient(t *testing.T) {
	// offset = i*68 + 8 with strides [64, 4]:
	// 68 = 1*64 + 1*4 → dim0 gets i, dim1 gets i; const 8 → dim1 gets 2.
	off := NewAffine()
	off.AddScaled(TermAffine("i"), rat(68, 1))
	off.Const.SetInt64(8)
	dims, err := DecomposeByStrides(off, []int64{64, 4})
	if err != nil {
		t.Fatal(err)
	}
	if dims[0].String() != "i" {
		t.Errorf("dim0 = %s", dims[0])
	}
	if dims[1].String() != "i + 2" {
		t.Errorf("dim1 = %s", dims[1])
	}
}

func TestDecompose1D(t *testing.T) {
	off := NewAffine()
	off.AddScaled(TermAffine("lx"), rat(4, 1))
	dims, err := DecomposeByStrides(off, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	if dims[0].String() != "lx" {
		t.Errorf("dim0 = %s", dims[0])
	}
}

func TestDecomposeNonIntegral(t *testing.T) {
	off := NewAffine()
	off.AddScaled(TermAffine("lx"), rat(3, 1)) // not a multiple of 4
	if _, err := DecomposeByStrides(off, []int64{4}); err == nil {
		t.Fatal("expected non-integral decomposition error")
	}
}

func TestDecomposeProperty(t *testing.T) {
	// Property: recomposing Σ dims[d]*stride[d] recovers the original.
	check := func(c0, c1, k int16) bool {
		off := NewAffine()
		off.AddScaled(TermAffine("a"), rat(int64(c0)*4, 1))
		off.AddScaled(TermAffine("b"), rat(int64(c1)*4, 1))
		off.Const.SetInt64(int64(k) * 4)
		dims, err := DecomposeByStrides(off, []int64{256, 4})
		if err != nil {
			return false
		}
		recomposed := dims[0].Clone().Scale(rat(256, 1)).AddScaled(dims[1], rat(4, 1))
		return recomposed.Equal(off)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
