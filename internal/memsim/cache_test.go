package memsim

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, sets, ways, lineSize int, lat int64) (*Cache, *DRAM) {
	t.Helper()
	d := &DRAM{Latency: 100}
	c, err := NewCache("L1", sets, ways, lineSize, lat, d)
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

func TestCacheHitMiss(t *testing.T) {
	c, _ := mustCache(t, 8, 2, 64, 4)
	if cost := c.Access(0, 4, false); cost != 104 {
		t.Errorf("cold miss cost = %d, want 104", cost)
	}
	if cost := c.Access(0, 4, false); cost != 4 {
		t.Errorf("hit cost = %d, want 4", cost)
	}
	if cost := c.Access(60, 8, false); cost != 4+4+100 {
		// Bytes 60..67 straddle line 0 (hit) and line 1 (miss).
		t.Errorf("straddle cost = %d, want 108", cost)
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := mustCache(t, 1, 2, 64, 1) // one set, two ways
	c.Access(0*64, 4, false)          // A
	c.Access(1*64, 4, false)          // B
	c.Access(0*64, 4, false)          // A again (B becomes LRU)
	c.Access(2*64, 4, false)          // C evicts B
	if cost := c.Access(0*64, 4, false); cost != 1 {
		t.Error("A should still be resident")
	}
	if cost := c.Access(1*64, 4, false); cost == 1 {
		t.Error("B should have been evicted")
	}
}

func TestCacheConflictMisses(t *testing.T) {
	// Power-of-two stride equal to sets*lineSize maps every access to the
	// same set: with more lines than ways, every access misses. This is
	// the mechanism behind the paper's NVD-MM-B slowdown on CPUs.
	c, _ := mustCache(t, 8, 4, 64, 4)
	stride := uint64(8 * 64)
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 8; i++ { // 8 lines, 4 ways → thrash
			c.Access(i*stride, 4, false)
		}
	}
	st := c.Stats()
	if st.Hits != 0 {
		t.Errorf("conflict thrash should never hit; stats = %+v", st)
	}
	// Same footprint with unit stride fits easily.
	c.Reset()
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 8; i++ {
			c.Access(i*64, 4, false)
		}
	}
	st = c.Stats()
	if st.Hits != 16 {
		t.Errorf("sequential reuse: hits = %d, want 16", st.Hits)
	}
}

func TestCacheWriteback(t *testing.T) {
	c, d := mustCache(t, 1, 1, 64, 1)
	c.Access(0, 4, true)   // dirty line A
	c.Access(64, 4, false) // evicts dirty A → writeback
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
	if d.Accesses != 3 { // fetch A, fetch B, writeback A
		t.Errorf("dram accesses = %d, want 3", d.Accesses)
	}
}

func TestHierarchyChain(t *testing.T) {
	h, err := NewHierarchy([]CacheSpec{
		{Name: "L1", Sets: 8, Ways: 2, LineSize: 64, Latency: 4},
		{Name: "L2", Sets: 64, Ways: 4, LineSize: 64, Latency: 12},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	cold := h.Access(0, 4, false)
	if cold != 4+12+200 {
		t.Errorf("cold access = %d, want 216", cold)
	}
	if hot := h.Access(0, 4, false); hot != 4 {
		t.Errorf("hot access = %d, want 4", hot)
	}
	// Evict from L1 but not L2: stride covers L1 sets (8·64 = 512B) with
	// 3 lines in a 2-way set; all stay in the larger L2.
	h.Reset()
	for round := 0; round < 2; round++ {
		for i := uint64(0); i < 3; i++ {
			h.Access(i*512, 4, false)
		}
	}
	l2 := h.Levels[1].Stats()
	if l2.Hits == 0 {
		t.Error("L2 should absorb L1 conflict misses")
	}
}

func TestCacheGeometryErrors(t *testing.T) {
	d := &DRAM{Latency: 10}
	if _, err := NewCache("x", 7, 2, 64, 1, d); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := NewCache("x", 8, 0, 64, 1, d); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := NewCache("x", 8, 2, 48, 1, d); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := NewCache("x", 8, 2, 64, 1, nil); err == nil {
		t.Error("nil next level accepted")
	}
}

func TestCacheStatsProperty(t *testing.T) {
	// Property: hits + misses == accesses for arbitrary access streams.
	check := func(addrs []uint16, stores []bool) bool {
		c, _ := mustCacheQuick()
		for i, a := range addrs {
			st := i < len(stores) && stores[i]
			c.Access(uint64(a), 4, st)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mustCacheQuick() (*Cache, *DRAM) {
	d := &DRAM{Latency: 100}
	c, _ := NewCache("L1", 8, 2, 64, 4, d)
	return c, d
}

func TestCoalesce(t *testing.T) {
	// 32 consecutive 4-byte accesses span one 128B segment.
	var addrs []uint64
	var sizes []int
	for i := 0; i < 32; i++ {
		addrs = append(addrs, uint64(i*4))
		sizes = append(sizes, 4)
	}
	if n := Coalesce(addrs, sizes, 128); n != 1 {
		t.Errorf("sequential coalesce = %d, want 1", n)
	}
	// Stride-512 accesses: every lane its own segment.
	addrs = addrs[:0]
	for i := 0; i < 32; i++ {
		addrs = append(addrs, uint64(i*512))
	}
	if n := Coalesce(addrs, sizes, 128); n != 32 {
		t.Errorf("strided coalesce = %d, want 32", n)
	}
	// Broadcast: all lanes same address.
	addrs = addrs[:0]
	for i := 0; i < 32; i++ {
		addrs = append(addrs, 4096)
	}
	if n := Coalesce(addrs, sizes, 128); n != 1 {
		t.Errorf("broadcast coalesce = %d, want 1", n)
	}
	if n := Coalesce(nil, nil, 128); n != 0 {
		t.Errorf("empty coalesce = %d, want 0", n)
	}
	// A 16-byte access straddling a segment boundary costs 2.
	if n := Coalesce([]uint64{120}, []int{16}, 128); n != 2 {
		t.Errorf("straddle coalesce = %d, want 2", n)
	}
}

func TestBankConflicts(t *testing.T) {
	// Sequential 4B addresses over 32 banks: conflict-free.
	var addrs []uint64
	for i := 0; i < 32; i++ {
		addrs = append(addrs, uint64(i*4))
	}
	if d := BankConflictDegree(addrs, 32, 4); d != 1 {
		t.Errorf("sequential degree = %d, want 1", d)
	}
	// Stride of 32 words: all lanes hit bank 0 → degree 32.
	addrs = addrs[:0]
	for i := 0; i < 32; i++ {
		addrs = append(addrs, uint64(i*32*4))
	}
	if d := BankConflictDegree(addrs, 32, 4); d != 32 {
		t.Errorf("same-bank degree = %d, want 32", d)
	}
	// Broadcast: same address everywhere → no conflict.
	addrs = addrs[:0]
	for i := 0; i < 32; i++ {
		addrs = append(addrs, 64)
	}
	if d := BankConflictDegree(addrs, 32, 4); d != 1 {
		t.Errorf("broadcast degree = %d, want 1", d)
	}
}
