package memsim

// Coalesce computes the number of memory transactions a warp's
// simultaneous accesses generate: the count of distinct segment-aligned
// blocks touched (the classic NVIDIA/AMD coalescing rule). addrs are the
// byte addresses of the active lanes; segment is the transaction size in
// bytes (e.g. 128).
func Coalesce(addrs []uint64, sizes []int, segment int) int {
	if len(addrs) == 0 {
		return 0
	}
	seen := map[uint64]struct{}{}
	for i, a := range addrs {
		sz := 4
		if i < len(sizes) && sizes[i] > 0 {
			sz = sizes[i]
		}
		first := a / uint64(segment)
		last := (a + uint64(sz) - 1) / uint64(segment)
		for s := first; s <= last; s++ {
			seen[s] = struct{}{}
		}
	}
	return len(seen)
}

// BankConflictDegree computes the scratch-pad conflict factor of a warp
// access: the maximum number of distinct addresses mapping to one bank.
// Lanes reading the same address broadcast and do not conflict.
func BankConflictDegree(addrs []uint64, banks, bankWidth int) int {
	if len(addrs) == 0 {
		return 0
	}
	perBank := map[int]map[uint64]struct{}{}
	for _, a := range addrs {
		b := int((a / uint64(bankWidth)) % uint64(banks))
		if perBank[b] == nil {
			perBank[b] = map[uint64]struct{}{}
		}
		perBank[b][a/uint64(bankWidth)] = struct{}{}
	}
	maxDeg := 1
	for _, m := range perBank {
		if len(m) > maxDeg {
			maxDeg = len(m)
		}
	}
	return maxDeg
}
