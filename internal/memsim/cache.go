// Package memsim provides the trace-driven memory-hierarchy models behind
// the device profiles: set-associative write-back caches with LRU
// replacement, a DRAM backstop, a GPU coalescing unit, and a banked
// scratch-pad model. The paper's performance story (coalescing on GPUs,
// cache reuse versus staging overhead on CPUs, conflict misses on
// power-of-two strides) is exactly what these components reproduce.
package memsim

import "fmt"

// Stats aggregates one cache's activity.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Writebacks int64
}

// HitRate returns hits/accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Level is a stage of the memory hierarchy returning an access cost in
// cycles.
type Level interface {
	// Access touches [addr, addr+size) and returns the cost in cycles.
	Access(addr uint64, size int, store bool) int64
	// Name identifies the level in reports.
	Name() string
}

// DRAM is the hierarchy backstop with a fixed access latency.
type DRAM struct {
	Latency  int64
	Accesses int64
}

// Access counts the access and returns the fixed latency.
func (d *DRAM) Access(addr uint64, size int, store bool) int64 {
	d.Accesses++
	return d.Latency
}

// Name returns "dram".
func (d *DRAM) Name() string { return "dram" }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// age is the LRU timestamp.
	age uint64
}

// Cache is one set-associative, write-allocate, write-back cache level.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineSize int
	latency  int64
	next     Level

	lines []line // sets*ways
	clock uint64
	stats Stats
}

// NewCache builds a cache level in front of next. sets and lineSize must
// be powers of two.
func NewCache(name string, sets, ways, lineSize int, latency int64, next Level) (*Cache, error) {
	if sets <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("memsim: bad geometry for %s: sets=%d ways=%d line=%d", name, sets, ways, lineSize)
	}
	if sets&(sets-1) != 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("memsim: %s: sets (%d) and line size (%d) must be powers of two", name, sets, lineSize)
	}
	if next == nil {
		return nil, fmt.Errorf("memsim: %s has no next level", name)
	}
	return &Cache{
		name: name, sets: sets, ways: ways, lineSize: lineSize,
		latency: latency, next: next,
		lines: make([]line, sets*ways),
	}, nil
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// SizeBytes returns the total capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * c.lineSize }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access touches [addr, addr+size), splitting accesses that straddle cache
// lines, and returns the total cost in cycles.
func (c *Cache) Access(addr uint64, size int, store bool) int64 {
	if size <= 0 {
		size = 1
	}
	var cost int64
	first := addr / uint64(c.lineSize)
	last := (addr + uint64(size) - 1) / uint64(c.lineSize)
	for ln := first; ln <= last; ln++ {
		cost += c.accessLine(ln, store)
	}
	return cost
}

func (c *Cache) accessLine(lineAddr uint64, store bool) int64 {
	c.clock++
	c.stats.Accesses++
	set := int(lineAddr % uint64(c.sets))
	tag := lineAddr / uint64(c.sets)
	base := set * c.ways

	// Hit?
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == tag {
			c.stats.Hits++
			l.age = c.clock
			if store {
				l.dirty = true
			}
			return c.latency
		}
	}
	// Miss: fetch from the next level (write-allocate).
	c.stats.Misses++
	cost := c.latency + c.next.Access(lineAddr*uint64(c.lineSize), c.lineSize, false)

	// Choose victim: invalid way or LRU.
	victim := base
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if !l.valid {
			victim = base + i
			break
		}
		if l.age < c.lines[victim].age {
			victim = base + i
		}
	}
	v := &c.lines[victim]
	if v.valid && v.dirty {
		// Write back the evicted line.
		c.stats.Writebacks++
		cost += c.next.Access(v.tag*uint64(c.sets)*uint64(c.lineSize), c.lineSize, true) / 2
	}
	*v = line{tag: tag, valid: true, dirty: store, age: c.clock}
	return cost
}

// Hierarchy is a convenience bundle: an ordered cache chain plus the DRAM
// backstop, accessed from the innermost level.
type Hierarchy struct {
	Levels []*Cache
	Mem    *DRAM
}

// CacheSpec describes one level for NewHierarchy.
type CacheSpec struct {
	Name     string
	Sets     int
	Ways     int
	LineSize int
	Latency  int64
}

// NewHierarchy builds the chain innermost-first.
func NewHierarchy(specs []CacheSpec, dramLatency int64) (*Hierarchy, error) {
	h := &Hierarchy{Mem: &DRAM{Latency: dramLatency}}
	var next Level = h.Mem
	// Build outermost first.
	caches := make([]*Cache, len(specs))
	for i := len(specs) - 1; i >= 0; i-- {
		c, err := NewCache(specs[i].Name, specs[i].Sets, specs[i].Ways, specs[i].LineSize, specs[i].Latency, next)
		if err != nil {
			return nil, err
		}
		caches[i] = c
		next = c
	}
	h.Levels = caches
	return h, nil
}

// Access goes through the innermost level (or straight to DRAM when the
// hierarchy has no caches).
func (h *Hierarchy) Access(addr uint64, size int, store bool) int64 {
	if len(h.Levels) == 0 {
		return h.Mem.Access(addr, size, store)
	}
	return h.Levels[0].Access(addr, size, store)
}

// Reset clears every level.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
	h.Mem.Accesses = 0
}
