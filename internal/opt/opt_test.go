package opt

import (
	"testing"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/lower"
	"grover/internal/vm"
)

func compileNoOpt(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := clc.Parse("t.cl", src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

func countInstrs(fn *ir.Function) int {
	total := 0
	for _, b := range fn.Blocks {
		total += len(b.Instrs)
	}
	return total
}

func countInBlocks(fn *ir.Function, blocks map[*ir.Block]bool, op ir.Op) int {
	total := 0
	for _, b := range fn.Blocks {
		if blocks != nil && !blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == op {
				total++
			}
		}
	}
	return total
}

// runKernel executes kernel k over n work-items with one int buffer and
// returns the buffer contents.
func runKernel(t *testing.T, m *ir.Module, kernel string, n int, extra ...vm.Arg) []int32 {
	t.Helper()
	p, err := vm.Prepare(m)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	g := vm.NewGlobalMem(1 << 16)
	buf := g.Alloc(n * 4)
	args := append([]vm.Arg{vm.BufArg(buf)}, extra...)
	cfg := vm.Config{GlobalSize: [3]int{n, 1, 1}, LocalSize: [3]int{n, 1, 1}, Args: args}
	if err := p.Launch(kernel, cfg, g, nil); err != nil {
		t.Fatalf("launch: %v", err)
	}
	return buf.ReadInt32s(n)
}

const loopSrc = `
__kernel void k(__global int* out, int n) {
    int gx = get_global_id(0);
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc += (gx * 7 + 3) + i;   /* gx*7+3 is loop invariant */
    }
    out[gx] = acc;
}
`

func TestOptimizePreservesSemantics(t *testing.T) {
	ref := compileNoOpt(t, loopSrc)
	opt := compileNoOpt(t, loopSrc)
	Optimize(opt)
	const n = 8
	want := runKernel(t, ref, "k", n, vm.IntArg(10))
	got := runKernel(t, opt, "k", n, vm.IntArg(10))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	m := compileNoOpt(t, loopSrc)
	fn := m.Kernel("k")
	// Identify loop blocks by name prefix before optimizing.
	loopBlocks := map[*ir.Block]bool{}
	for _, b := range fn.Blocks {
		if len(b.Name) >= 3 && b.Name[:3] == "for" {
			loopBlocks[b] = true
		}
	}
	mulBefore := countInBlocks(fn, loopBlocks, ir.OpMul)
	if mulBefore == 0 {
		t.Fatal("expected the gx*7 multiply inside the loop before LICM")
	}
	Optimize(m)
	mulAfter := countInBlocks(fn, loopBlocks, ir.OpMul)
	if mulAfter != 0 {
		t.Errorf("gx*7 still inside the loop after LICM (%d muls)", mulAfter)
	}
}

func TestCSEMergesDuplicates(t *testing.T) {
	m := compileNoOpt(t, `
__kernel void k(__global int* out) {
    int gx = get_global_id(0);
    out[gx] = (gx * 3 + 1) + (gx * 3 + 1);
}
`)
	fn := m.Kernel("k")
	before := countInBlocks(fn, nil, ir.OpMul)
	Optimize(m)
	after := countInBlocks(fn, nil, ir.OpMul)
	if after >= before {
		t.Errorf("CSE did not merge: %d muls before, %d after", before, after)
	}
	got := runKernel(t, m, "k", 4)
	for i, v := range got {
		want := int32(2 * (i*3 + 1))
		if v != want {
			t.Errorf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := compileNoOpt(t, `
__kernel void k(__global int* out) {
    int gx = get_global_id(0);
    int unused = gx * 12345;
    out[gx] = gx;
}
`)
	fn := m.Kernel("k")
	before := countInstrs(fn)
	Optimize(m)
	after := countInstrs(fn)
	if after >= before {
		t.Errorf("DCE removed nothing: %d before, %d after", before, after)
	}
	if countInBlocks(fn, nil, ir.OpStore) == 0 {
		t.Error("DCE must keep stores")
	}
	got := runKernel(t, m, "k", 4)
	for i, v := range got {
		if v != int32(i) {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestPeepholeFoldsConvertChains(t *testing.T) {
	// Build a long→ulong→int chain by hand.
	fn := &ir.Function{Name: "k", IsKernel: true, Ret: clc.TypeVoid}
	p := &ir.Param{Name_: "out", Typ: &clc.PointerType{Elem: clc.TypeInt, Space: clc.ASGlobal}, Index: 0}
	fn.Params = []*ir.Param{p}
	b := ir.NewBuilder(fn)
	wi := b.WorkItem("get_local_id", ir.IntConst(0), clc.Pos{})
	c1 := b.Un(ir.OpConvert, clc.TypeLong, wi, clc.Pos{})
	c2 := b.Un(ir.OpConvert, clc.TypeULong, c1, clc.Pos{})
	c3 := b.Un(ir.OpConvert, clc.TypeInt, c2, clc.Pos{})
	c4 := b.Convert(c3, clc.TypeLong, clc.Pos{})
	ptr := b.Index(p, c4, clc.Pos{})
	b.Store(ptr, c3, clc.Pos{})
	b.Ret(nil, clc.Pos{})
	m := &ir.Module{Name: "t", Funcs: []*ir.Function{fn}}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	before := countInBlocks(fn, nil, ir.OpConvert)
	Optimize(m)
	after := countInBlocks(fn, nil, ir.OpConvert)
	if after >= before {
		t.Errorf("peephole did not shorten convert chain: %d → %d", before, after)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("optimized IR invalid: %v", err)
	}
}

func TestLICMDoesNotHoistVaryingLoads(t *testing.T) {
	m := compileNoOpt(t, `
__kernel void k(__global int* out, int n) {
    int gx = get_global_id(0);
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc += i;           /* i changes every iteration */
    }
    out[gx] = acc;
}
`)
	Optimize(m)
	got := runKernel(t, m, "k", 4, vm.IntArg(5))
	for i, v := range got {
		if v != 10 { // 0+1+2+3+4
			t.Errorf("out[%d] = %d, want 10", i, v)
		}
	}
}

func TestLICMDoesNotSpeculateDivision(t *testing.T) {
	// n/d inside a guarded loop: hoisting would trap when d == 0 while the
	// loop body never runs.
	m := compileNoOpt(t, `
__kernel void k(__global int* out, int n, int d) {
    int gx = get_global_id(0);
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc += 100 / d;
    }
    out[gx] = acc;
}
`)
	Optimize(m)
	// n = 0 → loop never executes → division by zero must not happen.
	got := runKernel(t, m, "k", 2, vm.IntArg(0), vm.IntArg(0))
	for i, v := range got {
		if v != 0 {
			t.Errorf("out[%d] = %d, want 0", i, v)
		}
	}
}

func TestOptimizeGroverTransformedKernel(t *testing.T) {
	// The optimizer must keep a transformed kernel valid and equivalent.
	src := `
#define S 8
__kernel void mm(__global float* C, __global float* A, __global float* B, int N) {
    __local float As[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    float acc = 0.0f;
    for (int t = 0; t < N/S; t++) {
        As[ly][lx] = A[gy*N + t*S + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < S; k++) {
            acc += As[ly][k] * B[(t*S+k)*N + gx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[gy*N + gx] = acc;
}
`
	m := compileNoOpt(t, src)
	// Sanity: optimize the original and verify.
	Optimize(m)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("optimized original invalid: %v", err)
	}
}
