// Package opt implements the scalar optimizations a production OpenCL
// compiler applies before execution: local common-subexpression
// elimination, loop-invariant code motion, and dead-code elimination. The
// simulated platforms run optimized IR so that kernel comparisons (with
// vs. without local memory) reflect what real drivers would execute —
// in particular, the index chains Grover materializes in front of former
// local loads are hoisted out of inner loops exactly like the originals.
package opt

import (
	"fmt"

	"grover/internal/clc"
	"grover/internal/debug"
	"grover/internal/ir"
)

// pass is one named scalar optimization.
type pass struct {
	name string
	run  func(*ir.Function) bool
}

// passes is the standard pipeline, named so the debug verifier can say
// which pass broke the IR — and so rewrite plans can select and reorder
// a subset by name (phase ordering as a tunable).
var passes = []pass{
	{"cse", CSE},
	{"load-forward", LoadForward},
	{"dse", DSE},
	{"peephole", Peephole},
	{"licm", LICM},
	{"dce", func(fn *ir.Function) bool { return DCE(fn) > 0 }},
}

// PassNames returns the standard pipeline's pass names in order.
func PassNames() []string {
	out := make([]string, len(passes))
	for i, p := range passes {
		out[i] = p.name
	}
	return out
}

// Optimize runs the standard pipeline (CSE, store/load forwarding,
// peephole, LICM and DCE) to fixpoint over every function. With
// GROVER_DEBUG_VERIFY set, the IR is re-verified after every pass that
// changed the function, and a violation panics naming the pass — an
// internal invariant failure, not a user error.
func Optimize(m *ir.Module) {
	optimize(m, passes)
}

// OptimizeWith runs a caller-selected pass pipeline (names from
// PassNames, in the given order, repeated names allowed) to fixpoint
// over every function. An empty list runs the standard pipeline. Unknown
// pass names are an error, reported before any function is touched.
func OptimizeWith(m *ir.Module, names []string) error {
	if len(names) == 0 {
		Optimize(m)
		return nil
	}
	pipeline := make([]pass, 0, len(names))
	for _, n := range names {
		found := false
		for _, p := range passes {
			if p.name == n {
				pipeline = append(pipeline, p)
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("opt: unknown pass %q (available: %v)", n, PassNames())
		}
	}
	optimize(m, pipeline)
	return nil
}

func optimize(m *ir.Module, pipeline []pass) {
	for _, fn := range m.Funcs {
		for i := 0; i < 32; i++ { // fixpoint, bounded
			changed := false
			for _, p := range pipeline {
				if !p.run(fn) {
					continue
				}
				changed = true
				if debug.Verify {
					if err := ir.VerifyFunc(fn); err != nil {
						panic(fmt.Sprintf("opt: pass %s broke %s: %v", p.name, fn.Name, err))
					}
				}
			}
			if !changed {
				break
			}
		}
		fn.AssignIDs()
	}
}

// pureNonFaulting reports whether the op may be duplicated, reordered or
// speculated freely (no side effects, no traps).
func pureNonFaulting(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpNeg, ir.OpNot,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpConvert, ir.OpIndex, ir.OpWorkItem, ir.OpMath,
		ir.OpExtract, ir.OpInsert, ir.OpShuffle, ir.OpBuild:
		return true
	}
	return false
}

// CSE eliminates duplicate pure expressions within each basic block.
func CSE(fn *ir.Function) bool {
	changed := false
	valID := map[ir.Value]string{}
	id := func(v ir.Value) string {
		switch t := v.(type) {
		case *ir.ConstInt:
			return fmt.Sprintf("ci:%d:%s", t.Val, t.Typ)
		case *ir.ConstFloat:
			return fmt.Sprintf("cf:%g:%s", t.Val, t.Typ)
		case *ir.Param:
			return "p:" + t.Name_
		}
		if s, ok := valID[v]; ok {
			return s
		}
		s := fmt.Sprintf("v:%p", v)
		valID[v] = s
		return s
	}
	for _, b := range fn.Blocks {
		seen := map[string]*ir.Instr{}
		var dead []*ir.Instr
		for _, in := range b.Instrs {
			if !pureNonFaulting(in.Op) || !in.Producing() {
				continue
			}
			key := fmt.Sprintf("%d|%s|%s|%v", in.Op, in.Typ, in.Func, in.Comps)
			for _, a := range in.Args {
				key += "|" + id(a)
			}
			if prev, ok := seen[key]; ok {
				ir.ReplaceUses(fn, in, prev)
				dead = append(dead, in)
				changed = true
				continue
			}
			seen[key] = in
		}
		for _, in := range dead {
			ir.RemoveInstr(in)
		}
	}
	return changed
}

// DCE removes value-producing instructions with no remaining uses,
// transitively, and returns the number removed.
func DCE(fn *ir.Function) int {
	removed := 0
	for {
		uses := map[ir.Value]int{}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					uses[a]++
				}
			}
		}
		var dead []*ir.Instr
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if uses[in] > 0 {
					continue
				}
				switch in.Op {
				case ir.OpStore, ir.OpCall, ir.OpBarrier, ir.OpBr, ir.OpCondBr, ir.OpRet:
					continue
				}
				dead = append(dead, in)
			}
		}
		if len(dead) == 0 {
			return removed
		}
		for _, in := range dead {
			ir.RemoveInstr(in)
			removed++
		}
	}
}

// ---------------------------------------------------------------- LICM

// cfg holds per-function analysis state for LICM.
type cfg struct {
	fn     *ir.Function
	index  map[*ir.Block]int
	preds  [][]int
	dom    []uint64 // dominator sets as bitsets (≤64 blocks) or spilled
	domBig [][]bool // used when >64 blocks
	n      int
}

func buildCFG(fn *ir.Function) *cfg {
	c := &cfg{fn: fn, index: map[*ir.Block]int{}, n: len(fn.Blocks)}
	for i, b := range fn.Blocks {
		c.index[b] = i
	}
	c.preds = make([][]int, c.n)
	for i, b := range fn.Blocks {
		for _, s := range b.Succs() {
			j := c.index[s]
			c.preds[j] = append(c.preds[j], i)
		}
	}
	c.computeDominators()
	return c
}

// computeDominators runs the classic iterative data-flow algorithm.
func (c *cfg) computeDominators() {
	if c.n <= 64 {
		full := uint64(0)
		for i := 0; i < c.n; i++ {
			full |= 1 << uint(i)
		}
		c.dom = make([]uint64, c.n)
		for i := range c.dom {
			c.dom[i] = full
		}
		c.dom[0] = 1
		for changed := true; changed; {
			changed = false
			for i := 1; i < c.n; i++ {
				nd := full
				if len(c.preds[i]) == 0 {
					nd = 0 // unreachable
				}
				for _, p := range c.preds[i] {
					nd &= c.dom[p]
				}
				nd |= 1 << uint(i)
				if nd != c.dom[i] {
					c.dom[i] = nd
					changed = true
				}
			}
		}
		return
	}
	c.domBig = make([][]bool, c.n)
	for i := range c.domBig {
		c.domBig[i] = make([]bool, c.n)
		for j := range c.domBig[i] {
			c.domBig[i][j] = true
		}
	}
	for j := 1; j < c.n; j++ {
		c.domBig[0][j] = false
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i < c.n; i++ {
			for j := 0; j < c.n; j++ {
				if j == i {
					continue
				}
				v := len(c.preds[i]) > 0
				for _, p := range c.preds[i] {
					if !c.domBig[p][j] {
						v = false
						break
					}
				}
				if v != c.domBig[i][j] {
					c.domBig[i][j] = v
					changed = true
				}
			}
		}
	}
}

// dominates reports whether block a dominates block b.
func (c *cfg) dominates(a, b int) bool {
	if c.dom != nil {
		return c.dom[b]&(1<<uint(a)) != 0
	}
	return c.domBig[b][a]
}

// idom returns b's immediate dominator, or -1 for the entry.
func (c *cfg) idom(b int) int {
	if b == 0 {
		return -1
	}
	best := -1
	for a := 0; a < c.n; a++ {
		if a == b || !c.dominates(a, b) {
			continue
		}
		if best == -1 {
			best = a
			continue
		}
		// The closest dominator is dominated by every other dominator.
		if c.dominates(best, a) {
			best = a
		}
	}
	return best
}

// naturalLoop returns the block set of the natural loop of back edge
// tail→head.
func (c *cfg) naturalLoop(tail, head int) map[int]bool {
	loop := map[int]bool{head: true}
	var stack []int
	if tail != head {
		loop[tail] = true
		stack = append(stack, tail)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range c.preds[b] {
			if !loop[p] {
				loop[p] = true
				stack = append(stack, p)
			}
		}
	}
	return loop
}

// LICM hoists loop-invariant pure instructions (and loads of variables not
// stored in the loop) to the loop header's immediate dominator. Returns
// whether anything moved.
func LICM(fn *ir.Function) bool {
	c := buildCFG(fn)
	changed := false
	// Collect back edges.
	type edge struct{ tail, head int }
	var backEdges []edge
	for i, b := range fn.Blocks {
		for _, s := range b.Succs() {
			j := c.index[s]
			if c.dominates(j, i) {
				backEdges = append(backEdges, edge{tail: i, head: j})
			}
		}
	}
	for _, e := range backEdges {
		loop := c.naturalLoop(e.tail, e.head)
		hoistTo := c.idom(e.head)
		if hoistTo < 0 || loop[hoistTo] {
			continue
		}
		hoistBlk := fn.Blocks[hoistTo]
		// Allocas stored inside the loop: loads of them are not invariant.
		storedAllocas := map[*ir.Instr]bool{}
		anyWildStore := false
		for bi := range loop {
			for _, in := range fn.Blocks[bi].Instrs {
				if in.Op == ir.OpStore {
					if tgt, ok := in.Args[0].(*ir.Instr); ok && tgt.Op == ir.OpAlloca {
						storedAllocas[tgt] = true
					} else {
						anyWildStore = true
					}
				}
				if in.Op == ir.OpCall {
					anyWildStore = true // calls may store anywhere
				}
			}
		}
		// operandOK reports whether v is already available at hoistBlk.
		operandOK := func(v ir.Value) bool {
			in, ok := v.(*ir.Instr)
			if !ok {
				return true // constants, parameters
			}
			bi, known := c.index[in.Block]
			if !known {
				return false
			}
			return !loop[bi] && c.dominates(bi, hoistTo)
		}
		// Iterate to drag whole invariant chains out.
		for pass := 0; pass < 16; pass++ {
			moved := false
			for bi := range loop {
				blk := fn.Blocks[bi]
				for _, in := range append([]*ir.Instr(nil), blk.Instrs...) {
					hoistable := false
					switch {
					case pureNonFaulting(in.Op) && in.Producing():
						hoistable = true
					case in.Op == ir.OpLoad && !anyWildStore:
						// A load of a variable with no stores inside the
						// loop is invariant.
						if src, ok := in.Args[0].(*ir.Instr); ok && src.Op == ir.OpAlloca && !storedAllocas[src] {
							hoistable = true
						}
					}
					if !hoistable {
						continue
					}
					ok := true
					for _, a := range in.Args {
						if !operandOK(a) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					ir.RemoveInstr(in)
					term := hoistBlk.Terminator()
					ir.InsertBefore(term, in)
					moved = true
					changed = true
				}
			}
			if !moved {
				break
			}
		}
	}
	return changed
}

// Peephole folds redundant conversion chains: an integer widening followed
// by another conversion collapses to a single conversion, and identity
// conversions disappear. The Grover materializer emits long→ulong→int
// chains that this pass cleans up, matching what instruction selection
// would do.
func Peephole(fn *ir.Function) bool {
	changed := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpConvert {
				continue
			}
			src, ok := in.Args[0].(*ir.Instr)
			if !ok || src.Op != ir.OpConvert {
				continue
			}
			// in converts B→C over src converting A→B: when A, B are
			// integers and B is at least as wide as A, the intermediate
			// conversion is value-preserving and can be skipped.
			a, aok := intScalar(src.Args[0].Type())
			bk, bok := intScalar(src.Typ)
			if _, cok := intScalar(in.Typ); aok && bok && cok && bk.Size() >= a.Size() {
				in.Args[0] = src.Args[0]
				changed = true
			}
		}
		// Identity conversions: forward the operand.
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if in.Op == ir.OpConvert && clc.TypesEqual(in.Typ, in.Args[0].Type()) {
				ir.ReplaceUses(fn, in, in.Args[0])
				ir.RemoveInstr(in)
				changed = true
			}
		}
	}
	return changed
}

// intScalar returns the scalar type when t is an integer scalar.
func intScalar(t clc.Type) (*clc.ScalarType, bool) {
	s, ok := t.(*clc.ScalarType)
	if !ok || !s.Kind.IsInteger() {
		return nil, false
	}
	return s, true
}

// allocaAccessInfo classifies how each private alloca is used.
type allocaAccessInfo struct {
	loads   int
	stores  int
	escapes bool // any use that is not a direct load or direct store target
}

func analyzeAllocas(fn *ir.Function) map[*ir.Instr]*allocaAccessInfo {
	info := map[*ir.Instr]*allocaAccessInfo{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.Space == clc.ASPrivate {
				info[in] = &allocaAccessInfo{}
			}
		}
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				src, ok := a.(*ir.Instr)
				if !ok {
					continue
				}
				ia, tracked := info[src]
				if !tracked {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && ai == 0:
					ia.loads++
				case in.Op == ir.OpStore && ai == 0:
					ia.stores++
				default:
					ia.escapes = true
				}
			}
		}
	}
	return info
}

// LoadForward performs block-local store-to-load forwarding and redundant
// load elimination for scalar private variables (a lightweight stand-in
// for mem2reg): within a block, a load of a variable whose current value
// is known — from a preceding store or load — is replaced by that value.
func LoadForward(fn *ir.Function) bool {
	info := analyzeAllocas(fn)
	changed := false
	for _, b := range fn.Blocks {
		known := map[*ir.Instr]ir.Value{}
		var dead []*ir.Instr
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				if tgt, ok := in.Args[0].(*ir.Instr); ok {
					if ia := info[tgt]; ia != nil && !ia.escapes {
						known[tgt] = in.Args[1]
						continue
					}
				}
				// A store through a computed pointer cannot alias a
				// tracked non-escaping private alloca; keep the map.
			case ir.OpLoad:
				if src, ok := in.Args[0].(*ir.Instr); ok {
					if ia := info[src]; ia != nil && !ia.escapes {
						if v, ok := known[src]; ok {
							ir.ReplaceUses(fn, in, v)
							dead = append(dead, in)
							changed = true
						} else {
							known[src] = in
						}
					}
				}
			case ir.OpCall:
				// Callees cannot reach caller-private non-escaping
				// allocas, but stay conservative.
				known = map[*ir.Instr]ir.Value{}
			}
		}
		for _, in := range dead {
			ir.RemoveInstr(in)
		}
	}
	return changed
}

// DSE removes stores to private variables that are never loaded and never
// escape (dead variables), so DCE can clean up their value chains.
func DSE(fn *ir.Function) bool {
	info := analyzeAllocas(fn)
	changed := false
	for _, b := range fn.Blocks {
		var keep []*ir.Instr
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				if tgt, ok := in.Args[0].(*ir.Instr); ok {
					if ia := info[tgt]; ia != nil && !ia.escapes && ia.loads == 0 {
						changed = true
						continue
					}
				}
			}
			keep = append(keep, in)
		}
		b.Instrs = keep
	}
	return changed
}

// Dominance exposes block dominance for other passes (the Grover
// transformation checks that reused subexpressions dominate their new use
// sites).
type Dominance struct{ c *cfg }

// ComputeDominance analyzes fn's control-flow graph.
func ComputeDominance(fn *ir.Function) *Dominance {
	return &Dominance{c: buildCFG(fn)}
}

// Dominates reports whether block a dominates block b. Unknown blocks
// (not part of the analyzed function) never dominate.
func (d *Dominance) Dominates(a, b *ir.Block) bool {
	ai, ok := d.c.index[a]
	if !ok {
		return false
	}
	bi, ok := d.c.index[b]
	if !ok {
		return false
	}
	return d.c.dominates(ai, bi)
}
