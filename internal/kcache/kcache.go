// Package kcache is a content-addressed cache for compiler artifacts:
// compiled programs, transformation reports and auto-tune verdicts, keyed
// by a SHA-256 digest of everything that determines the artifact (kernel
// source, preprocessor defines, Grover options, device profile).
//
// The cache is built for a concurrent service front-end:
//
//   - Singleflight deduplication: N concurrent requests for the same key
//     trigger exactly one compute; the other N-1 block and share the
//     result (and its error).
//   - LRU capacity bound: the cache never holds more than its configured
//     number of entries; the least-recently-used artifact is evicted.
//   - Counters: hits, misses, deduplicated waits and evictions are
//     tracked for the service's stats endpoint.
//
// Errors are never cached: a failed compute leaves no entry, so a
// transient failure does not poison the key.
package kcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Key derives the content address for a piece of compiler work. Every
// field is length-prefixed before hashing so that field boundaries cannot
// collide ("ab","c" never hashes like "a","bc").
func Key(fields ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, f := range fields {
		binary.LittleEndian.PutUint64(n[:], uint64(len(f)))
		h.Write(n[:])
		h.Write([]byte(f))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DefinesField renders a preprocessor-define map in canonical (sorted)
// form for use as a Key field.
func DefinesField(defines map[string]string) string {
	if len(defines) == 0 {
		return ""
	}
	keys := make([]string, 0, len(defines))
	for k := range defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s\n", k, defines[k])
	}
	return sb.String()
}

// Outcome classifies how a Do call was served.
type Outcome int

// Do outcomes.
const (
	// Miss means this call ran the compute function.
	Miss Outcome = iota
	// Hit means the artifact was already cached.
	Hit
	// Dedup means another in-flight call was already computing the same
	// key; this call waited and shared its result.
	Dedup
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Dedup:
		return "dedup"
	}
	return "miss"
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls served from a resident entry.
	Hits int64 `json:"hits"`
	// Misses counts Do calls that ran their compute function.
	Misses int64 `json:"misses"`
	// Dedups counts Do calls that piggybacked on an in-flight compute.
	Dedups int64 `json:"dedups"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// Entries and Capacity describe current occupancy.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// InFlight counts computes currently running.
	InFlight int `json:"in_flight"`
	// HitRatio is Hits / (Hits + Misses + Dedups), 0 with no lookups.
	HitRatio float64 `json:"hit_ratio"`
}

// DefaultCapacity bounds a Cache built with New(0).
const DefaultCapacity = 256

// Cache is the concurrent content-addressed LRU cache.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	inflight map[string]*flight

	hits, misses, dedups, evictions int64
}

type entry struct {
	key string
	val interface{}
}

type flight struct {
	done chan struct{}
	val  interface{}
	err  error
}

// New creates a cache bounded to capacity entries (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Get returns the cached artifact without computing, refreshing its LRU
// position on a hit. It does not wait for in-flight computes.
func (c *Cache) Get(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// Do returns the artifact for key, computing it at most once across all
// concurrent callers. The reported Outcome says whether this call hit the
// cache, ran the compute, or waited on another caller's compute.
func (c *Cache) Do(key string, compute func() (interface{}, error)) (interface{}, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, Hit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.dedups++
		c.mu.Unlock()
		<-f.done
		return f.val, Dedup, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	// Publish the result even if compute panics, so waiters never hang;
	// the panic then propagates to this caller.
	completed := false
	defer func() {
		if !completed {
			c.finish(key, f, nil, fmt.Errorf("kcache: compute for %s panicked", key))
		}
	}()
	val, err := compute()
	completed = true
	c.finish(key, f, val, err)
	return val, Miss, err
}

// finish stores a successful compute, wakes waiters, and enforces the LRU
// bound.
func (c *Cache) finish(key string, f *flight, val interface{}, err error) {
	c.mu.Lock()
	delete(c.inflight, key)
	f.val, f.err = val, err
	if err == nil {
		if el, ok := c.byKey[key]; ok {
			// A rare interleaving can land a second compute for the same
			// key; keep the resident entry authoritative.
			c.ll.MoveToFront(el)
			el.Value.(*entry).val = val
		} else {
			c.byKey[key] = c.ll.PushFront(&entry{key: key, val: val})
			for c.ll.Len() > c.capacity {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.byKey, oldest.Value.(*entry).key)
				c.evictions++
			}
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Hits: c.hits, Misses: c.misses, Dedups: c.dedups,
		Evictions: c.evictions,
		Entries:   c.ll.Len(), Capacity: c.capacity,
		InFlight: len(c.inflight),
	}
	if total := st.Hits + st.Misses + st.Dedups; total > 0 {
		st.HitRatio = float64(st.Hits) / float64(total)
	}
	return st
}
