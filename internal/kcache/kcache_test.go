package kcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyFieldBoundaries(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("length prefixing failed: shifted fields collide")
	}
	if Key("x") != Key("x") {
		t.Error("Key is not deterministic")
	}
	if Key("x") == Key("x", "") {
		t.Error("trailing empty field should change the key")
	}
}

func TestDefinesFieldCanonical(t *testing.T) {
	a := DefinesField(map[string]string{"TILE": "16", "N": "128"})
	b := DefinesField(map[string]string{"N": "128", "TILE": "16"})
	if a != b {
		t.Errorf("map order leaked into the field: %q vs %q", a, b)
	}
	if DefinesField(nil) != "" {
		t.Error("nil defines should render empty")
	}
}

func TestHitMiss(t *testing.T) {
	c := New(4)
	calls := 0
	compute := func() (interface{}, error) { calls++; return 42, nil }

	v, out, err := c.Do("k", compute)
	if err != nil || v.(int) != 42 || out != Miss {
		t.Fatalf("first Do = (%v, %v, %v), want (42, miss, nil)", v, out, err)
	}
	v, out, err = c.Do("k", compute)
	if err != nil || v.(int) != 42 || out != Hit {
		t.Fatalf("second Do = (%v, %v, %v), want (42, hit, nil)", v, out, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Dedups != 0 || st.Entries != 1 {
		t.Errorf("stats = %+v, want hits=1 misses=1 dedups=0 entries=1", st)
	}
}

func TestSingleflight(t *testing.T) {
	const waiters = 16
	c := New(8)
	var calls int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do("shared", func() (interface{}, error) {
				atomic.AddInt32(&calls, 1)
				<-release // hold the flight open until all waiters arrive
				return "artifact", nil
			})
			if err != nil || v.(string) != "artifact" {
				t.Errorf("waiter %d: got (%v, %v)", i, v, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Wait until the other waiters are parked on the in-flight compute,
	// then let it finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Snapshot()
		if st.Dedups == waiters-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	misses, dedups := 0, 0
	for _, o := range outcomes {
		switch o {
		case Miss:
			misses++
		case Dedup:
			dedups++
		default:
			t.Errorf("unexpected outcome %v", o)
		}
	}
	if misses != 1 || dedups != waiters-1 {
		t.Errorf("outcomes: %d misses, %d dedups; want 1, %d", misses, dedups, waiters-1)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	put := func(k string) {
		if _, _, err := c.Do(k, func() (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	// Touch "a" so "b" is now least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be resident")
	}
	put("c") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be resident")
	}
	st := c.Snapshot()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want evictions=1 entries=2", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	calls := 0
	boom := errors.New("transient")
	compute := func() (interface{}, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := c.Do("k", compute); err != boom {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute must not leave an entry")
	}
	v, out, err := c.Do("k", compute)
	if err != nil || v.(string) != "ok" || out != Miss {
		t.Fatalf("retry = (%v, %v, %v), want (ok, miss, nil)", v, out, err)
	}
}

func TestSharedErrorWakesWaiters(t *testing.T) {
	c := New(4)
	release := make(chan struct{})
	boom := errors.New("shared failure")
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do("k", func() (interface{}, error) {
				<-release
				return nil, boom
			})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Dedups != int64(len(errs)-1) {
		if time.Now().After(deadline) {
			t.Fatal("waiters never parked")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != boom {
			t.Errorf("waiter %d err = %v, want shared failure", i, err)
		}
	}
}

// TestConcurrentChurn hammers a small cache from many goroutines; run
// under -race it checks the lock discipline, and at the end every counter
// must reconcile.
func TestConcurrentChurn(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	const goroutines = 16
	const opsPer = 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%24) // 24 keys > capacity 8
				v, _, err := c.Do(key, func() (interface{}, error) { return key, nil })
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if v.(string) != key {
					t.Errorf("Do(%s) returned %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Snapshot()
	if st.Hits+st.Misses+st.Dedups != goroutines*opsPer {
		t.Errorf("counters do not reconcile: %+v", st)
	}
	if st.Entries > 8 {
		t.Errorf("capacity bound violated: %d entries", st.Entries)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight leak: %d", st.InFlight)
	}
}
