package kcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

type testRec struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	F    float64 `json:"f"`
}

func TestDiskStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenDiskStore(path, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]testRec{
		"a": {Name: "alpha", N: 1, F: 0.5},
		"b": {Name: "beta", N: 2, F: -1.25},
	}
	for k, v := range want {
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Replace a record: round-trip must see the latest value.
	want["a"] = testRec{Name: "alpha2", N: 11, F: 2}
	if err := s.Put("a", want["a"]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the process-restart half of the round trip.
	s2, err := OpenDiskStore(path, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("reopened store has %d records, want %d", s2.Len(), len(want))
	}
	for k, w := range want {
		var got testRec
		ok, err := s2.Get(k, &got)
		if err != nil || !ok {
			t.Fatalf("Get(%q) = %v, %v", k, ok, err)
		}
		if got != w {
			t.Errorf("Get(%q) = %+v, want %+v", k, got, w)
		}
	}
	if ok, _ := s2.Get("missing", nil); ok {
		t.Error("Get(missing) reported a record")
	}
}

func TestDiskStoreVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenDiskStore(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", testRec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if _, err := OpenDiskStore(path, 2, 0); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("open with version 2 = %v, want ErrVersionMismatch", err)
	}
	// The original version still opens.
	s3, err := OpenDiskStore(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 1 {
		t.Fatalf("reopen after rejected open lost records: %d", s3.Len())
	}
}

func TestDiskStoreEvictionAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenDiskStore(path, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var evicted []string
	s.OnEvict(func(k string) { evicted = append(evicted, k) })
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), testRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Records != 3 {
		t.Errorf("Records = %d, want 3", st.Records)
	}
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", st.Evictions)
	}
	if got := fmt.Sprint(evicted); got != "[k0 k1]" {
		t.Errorf("evicted keys = %s, want [k0 k1] (oldest first)", got)
	}
	if ok, _ := s.Get("k0", nil); ok {
		t.Error("evicted record k0 still resident")
	}
	// Bytes must account exactly for the live records.
	var sum int64
	s.Range(func(_ string, v json.RawMessage) bool { sum += int64(len(v)); return true })
	if st.Bytes != sum {
		t.Errorf("Bytes = %d, want %d (sum of live values)", st.Bytes, sum)
	}
	s.Close()

	// The bound and the eviction survive the restart; evictions are
	// process-lifetime counters and reset.
	s2, err := OpenDiskStore(path, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened store has %d records, want 3", s2.Len())
	}
	if ok, _ := s2.Get("k4", nil); !ok {
		t.Error("newest record k4 missing after reopen")
	}
}

func TestDiskStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenDiskStore(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite one key far past the compaction threshold: the log must
	// not grow without bound and every reopen still sees the latest.
	for i := 0; i < 500; i++ {
		if err := s.Put("hot", testRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2, err := OpenDiskStore(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var got testRec
	if ok, err := s2.Get("hot", &got); !ok || err != nil {
		t.Fatalf("Get(hot) = %v, %v", ok, err)
	}
	if got.N != 499 {
		t.Errorf("hot.N = %d, want 499", got.N)
	}
}

func TestDiskStoreConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenDiskStore(path, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-%d", w, i%10)
				if err := s.Put(key, testRec{N: i}); err != nil {
					t.Error(err)
					return
				}
				var r testRec
				if _, err := s.Get(key, &r); err != nil {
					t.Error(err)
					return
				}
				s.Range(func(string, json.RawMessage) bool { return false })
				s.Stats()
			}
		}(w)
	}
	wg.Wait()
}

func TestDiskStoreMemoryOnly(t *testing.T) {
	s, err := OpenDiskStore("", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), testRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 || s.Stats().Evictions != 1 {
		t.Errorf("memory-only store: len %d evictions %d, want 2 and 1", s.Len(), s.Stats().Evictions)
	}
}
