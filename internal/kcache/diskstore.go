package kcache

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// DiskStore is a persistent, versioned key→record store: the durable
// sibling of the in-memory artifact Cache. Records are JSON values in an
// append-only log (one line per Put), replayed into an in-memory index on
// Open, so lookups never touch the disk. The store is bounded: past
// MaxRecords the oldest record is evicted (and counted), and the log is
// compacted in place once dead lines outnumber live ones. A store opened
// with a different schema version is rejected, never silently migrated —
// the caller decides whether to rebuild.
//
// The zero path ("") is a memory-only store with identical semantics
// minus durability, for tests and embedded use.
type DiskStore struct {
	mu      sync.Mutex
	path    string
	version int
	max     int

	recs  map[string]json.RawMessage
	order []string // insertion order, oldest first (for eviction)
	bytes int64    // resident value bytes across live records

	dead int // replaced/evicted lines still in the log

	puts, lookups, hits, evictions int64

	// onEvict, when set, observes every eviction (outside no lock is
	// held on the caller's structures; the store's own lock is held).
	onEvict func(key string)

	f *os.File
}

// DiskStats is a snapshot of a DiskStore's occupancy and counters.
type DiskStats struct {
	// Records and Bytes describe the live index (bytes are the JSON
	// value sizes, an honest lower bound on disk usage).
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
	// MaxRecords is the eviction bound (0 = unbounded).
	MaxRecords int `json:"max_records"`
	// Puts, Lookups, Hits and Evictions are lifetime counters for this
	// process (not persisted).
	Puts      int64 `json:"puts"`
	Lookups   int64 `json:"lookups"`
	Hits      int64 `json:"hits"`
	Evictions int64 `json:"evictions"`
}

// ErrVersionMismatch reports a store written with a different schema
// version than the one requested on Open.
var ErrVersionMismatch = errors.New("kcache: store schema version mismatch")

// diskHeader is the first line of every store file.
type diskHeader struct {
	Magic   string `json:"kcache_store"`
	Version int    `json:"version"`
}

// diskLine is one Put in the log.
type diskLine struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

const diskMagic = "v1"

// OpenDiskStore opens (or creates) the store at path with the given
// schema version and record bound (maxRecords <= 0 means unbounded).
// An existing file written with a different version is rejected with
// ErrVersionMismatch. An empty path opens a memory-only store.
func OpenDiskStore(path string, version, maxRecords int) (*DiskStore, error) {
	s := &DiskStore{
		path:    path,
		version: version,
		max:     maxRecords,
		recs:    make(map[string]json.RawMessage),
	}
	if path == "" {
		return s, nil
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	// Replaying the log can leave dead lines (replaced keys, over-bound
	// evictions); start each process from a compact file.
	if err := s.compact(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.f = f
	return s, nil
}

// load replays an existing log into the index.
func (s *DiskStore) load() error {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 64<<20)
	if !sc.Scan() {
		return sc.Err() // empty file: treat as fresh
	}
	var hdr diskHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Magic != diskMagic {
		return fmt.Errorf("kcache: %s is not a store file", s.path)
	}
	if hdr.Version != s.version {
		return fmt.Errorf("%w: %s has version %d, want %d",
			ErrVersionMismatch, s.path, hdr.Version, s.version)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var dl diskLine
		if err := json.Unmarshal(line, &dl); err != nil {
			return fmt.Errorf("kcache: corrupt record in %s: %v", s.path, err)
		}
		s.insert(dl.Key, dl.Value)
	}
	return sc.Err()
}

// insert places one record in the index (no disk I/O), enforcing the
// bound. Callers hold the lock (or own the store exclusively, as load
// does).
func (s *DiskStore) insert(key string, val json.RawMessage) {
	if old, ok := s.recs[key]; ok {
		s.bytes -= int64(len(old))
		s.dead++
		// Keep the original insertion slot: replacing a record refreshes
		// the value, not its eviction age.
	} else {
		s.order = append(s.order, key)
	}
	s.recs[key] = val
	s.bytes += int64(len(val))
	for s.max > 0 && len(s.recs) > s.max {
		oldest := s.order[0]
		s.order = s.order[1:]
		if v, ok := s.recs[oldest]; ok {
			s.bytes -= int64(len(v))
			delete(s.recs, oldest)
			s.dead++
			s.evictions++
			if s.onEvict != nil {
				s.onEvict(oldest)
			}
		}
	}
}

// OnEvict registers a callback observing every evicted key (called with
// the store lock held; the callback must not call back into the store).
func (s *DiskStore) OnEvict(f func(key string)) {
	s.mu.Lock()
	s.onEvict = f
	s.mu.Unlock()
}

// Put stores value under key (marshalled to JSON), replacing any
// existing record and appending to the log.
func (s *DiskStore) Put(key string, value interface{}) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.insert(key, raw)
	if s.f != nil {
		line, err := json.Marshal(&diskLine{Key: key, Value: raw})
		if err != nil {
			return err
		}
		if _, err := s.f.Write(append(line, '\n')); err != nil {
			return err
		}
		// Compact once dead lines dominate, so the log stays within a
		// small factor of the live set.
		if s.dead > len(s.recs) && s.dead > 64 {
			return s.compactLocked()
		}
	}
	return nil
}

// Get unmarshals the record for key into value, reporting whether it
// exists.
func (s *DiskStore) Get(key string, value interface{}) (bool, error) {
	s.mu.Lock()
	raw, ok := s.recs[key]
	s.lookups++
	if ok {
		s.hits++
	}
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if value == nil {
		return true, nil
	}
	return true, json.Unmarshal(raw, value)
}

// Range calls f for every live record until f returns false. The
// iteration order is insertion order (oldest first). The raw value must
// not be mutated.
func (s *DiskStore) Range(f func(key string, value json.RawMessage) bool) {
	s.mu.Lock()
	keys := append([]string(nil), s.order...)
	recs := make(map[string]json.RawMessage, len(s.recs))
	for k, v := range s.recs {
		recs[k] = v
	}
	s.mu.Unlock()
	for _, k := range keys {
		if v, ok := recs[k]; ok {
			if !f(k, v) {
				return
			}
		}
	}
}

// Len returns the number of live records.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Stats snapshots occupancy and counters.
func (s *DiskStore) Stats() DiskStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DiskStats{
		Records: len(s.recs), Bytes: s.bytes, MaxRecords: s.max,
		Puts: s.puts, Lookups: s.lookups, Hits: s.hits, Evictions: s.evictions,
	}
}

// compact rewrites the log to hold exactly the live records.
func (s *DiskStore) compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *DiskStore) compactLocked() error {
	if s.path == "" {
		s.dead = 0
		return nil
	}
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	hdr, _ := json.Marshal(&diskHeader{Magic: diskMagic, Version: s.version})
	w.Write(append(hdr, '\n'))
	for _, k := range s.order {
		v, ok := s.recs[k]
		if !ok {
			continue
		}
		line, err := json.Marshal(&diskLine{Key: k, Value: v})
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		w.Write(append(line, '\n'))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Swap the live file handle to the compacted log.
	hadFile := s.f != nil
	if hadFile {
		s.f.Close()
		s.f = nil
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	s.dead = 0
	if hadFile {
		nf, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.f = nf
	}
	return nil
}

// Close flushes and releases the log file. The store must not be used
// afterwards.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
