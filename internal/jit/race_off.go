//go:build !race

package jit

const raceEnabled = false
