package jit

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"grover/internal/bcode"
	"grover/internal/clc"
	"grover/internal/ir"
)

// Private-slot promotion.
//
// Work-item private memory is unobservable: the host never reads the
// private arena back, and no other lane can address it. Kernels still
// pay real memory traffic for it — accumulators and loop counters
// compiled from addressable locals round-trip through the byte arena
// (decode + bounds check + encode) on every loop iteration, and that
// traffic dominates the flat profile of the accumulator-heavy apps
// (n-body is ~9 private round-trips per inner iteration).
//
// When every private access in a kernel hits a statically known,
// in-frame, non-overlapping byte range, those ranges are promoted to Go
// locals and the arena traffic disappears. The promotion is still
// observationally exact, including the one way private memory *can*
// leak across executions — a later launch or group reusing the same
// arena buffer and reading bytes a previous kernel left behind:
//
//   - on fresh entry each promoted slot is decoded from its arena bytes
//     (reproducing whatever a previous occupant left there, zero or
//     stale), and
//   - on kernel return each slot is encoded back to its arena bytes.
//
// Int slots hold the zero-extended stored bits, so differently-signed
// loads of one slot each apply their own decode; float slots hold the
// decoded float64 (for 4-byte slots that value is exactly
// float64(float32(x)) — the same double rounding the arena round-trip
// performs). Anything the analysis cannot prove — a call (callees
// address the frame through fb), a fused or vector-indexed private
// access, an address register that is not a compile-time constant, an
// access whose address space is not statically known — disables
// promotion for the whole kernel, never just one slot: a single
// untracked private access could alias a promoted range.

// pmSlot is one promoted private-frame byte range held in Go locals.
type pmSlot struct {
	idx   int   // local name is pm<idx>
	off   int64 // frame byte offset
	es    int   // element size in bytes
	lanes int   // 1 for scalar slots, else a vector register's lane count
	flt   bool  // float bank (decoded float64) vs int bank (zero-extended bits)
}

func (s *pmSlot) name() string { return fmt.Sprintf("pm%d", s.idx) }
func (s *pmSlot) size() int64  { return int64(s.es * s.lanes) }

// elem is the Go lvalue for lane j of the slot.
func (s *pmSlot) elem(j int) string {
	if s.lanes == 1 {
		return s.name()
	}
	return fmt.Sprintf("%s[%d]", s.name(), j)
}

// pmAccess is one classified private-memory access.
type pmAccess struct {
	pc    int
	off   int64
	es    int
	lanes int
	flt   bool
}

// scalarMemClass classifies the plain (unfused) scalar memory opcodes:
// element size, bank, the element decode kind, and store-ness.
func scalarMemClass(op bcode.Opcode) (es int, flt bool, k clc.ScalarKind, store, ok bool) {
	switch op {
	case bcode.OpLdI8:
		return 1, false, clc.KChar, false, true
	case bcode.OpLdU8:
		return 1, false, clc.KUChar, false, true
	case bcode.OpLdI16:
		return 2, false, clc.KShort, false, true
	case bcode.OpLdU16:
		return 2, false, clc.KUShort, false, true
	case bcode.OpLdI32:
		return 4, false, clc.KInt, false, true
	case bcode.OpLdU32:
		return 4, false, clc.KUInt, false, true
	case bcode.OpLdI64:
		return 8, false, clc.KLong, false, true
	case bcode.OpLdF32:
		return 4, true, clc.KFloat, false, true
	case bcode.OpLdF64:
		return 8, true, clc.KDouble, false, true
	case bcode.OpStI8:
		return 1, false, clc.KChar, true, true
	case bcode.OpStI16:
		return 2, false, clc.KShort, true, true
	case bcode.OpStI32:
		return 4, false, clc.KInt, true, true
	case bcode.OpStI64:
		return 8, false, clc.KLong, true, true
	case bcode.OpStF32:
		return 4, true, clc.KFloat, true, true
	case bcode.OpStF64:
		return 8, true, clc.KDouble, true, true
	}
	return 0, false, 0, false, false
}

// isMemOp reports whether the opcode addresses memory at all (scalar or
// vector, plain or fused).
func isMemOp(op bcode.Opcode) bool {
	if _, _, _, _, ok := scalarMemClass(op); ok {
		return true
	}
	if fusedMem(op) {
		return true
	}
	switch op {
	case bcode.OpLdVI, bcode.OpLdVF, bcode.OpStVI, bcode.OpStVF:
		return true
	}
	return false
}

// memSpace returns the access's statically known address space from
// its IR operand; known=false when the operand is unavailable (the
// codegen then falls back to the runtime tag decode).
func memSpace(in *bcode.Inst) (clc.AddrSpace, bool) {
	if in.In != nil && len(in.In.Args) > 0 {
		t := in.In.Args[0].Type()
		if _, ok := t.(*clc.PointerType); ok {
			return ir.PointerSpace(t), true
		}
	}
	return 0, false
}

// writeLine matches an int-register assignment at the start of an
// emitted line; emitInst produces every int-register write in exactly
// this shape (there are no compound assignments), so scanning the dry
// render recovers each instruction's destination set without a
// per-opcode operand table.
var writeLine = regexp.MustCompile(`(?m)^r([0-9]+) = `)

// computePromote decides the kernel's promoted private slots. It must
// run after scan (barrier sites are needed by the dry render) and
// before computeBarLive (the liveness render must see the promoted
// emission, so promoted slots spill across barriers and dropped
// address registers do not).
func (fe *fnEmit) computePromote() {
	bf := fe.bf
	code := bf.Code
	for pc := range code {
		// Callees reach the frame through fb with their own bounds
		// discipline; promotion cannot see those accesses.
		if code[pc].Op == bcode.OpCall {
			return
		}
	}

	// Per-register write sites, from a dry render of the unpromoted code.
	var sb strings.Builder
	fe.buf, fe.dry = &sb, true
	writes := make(map[int][]int)
	for pc := range code {
		sb.Reset()
		fe.emitInst(pc, &code[pc])
		seen := map[int]bool{}
		for _, m := range writeLine.FindAllStringSubmatch(sb.String(), -1) {
			r, _ := strconv.Atoi(m[1])
			if !seen[r] {
				seen[r] = true
				writes[r] = append(writes[r], pc)
			}
		}
	}
	fe.buf, fe.dry = nil, false

	// Stable int registers: registers whose value is the same
	// compile-time constant at every point after their (unique)
	// definition. Seeds are never-written constant-region registers;
	// the closure follows single-write const/alloca/move/index chains.
	// Dominance (defs execute before uses) makes the single write's
	// value the register's value at every use.
	isParam := map[int]bool{}
	for _, p := range bf.Params {
		if p.Bank == bcode.BankInt {
			isParam[int(p.Idx)] = true
		}
	}
	stable := make(map[int]int64)
	for r, v := range bf.IntConsts {
		if len(writes[r]) == 0 && !isParam[r] {
			stable[r] = v
		}
	}
	for changed := true; changed; {
		changed = false
		for r := 0; r < bf.NInt; r++ {
			if _, ok := stable[r]; ok {
				continue
			}
			ws := writes[r]
			if len(ws) != 1 || isParam[r] {
				continue
			}
			in := &code[ws[0]]
			if int(in.A) != r {
				continue
			}
			var v int64
			switch in.Op {
			case bcode.OpConstI, bcode.OpAllocaP:
				// Kernel AllocaP yields the raw frame offset (private
				// tag is 0); the callee form is excluded by the no-call
				// check above.
				v = in.Imm
			case bcode.OpZeroI:
				v = 0
			case bcode.OpMovI:
				b, ok := stable[int(in.B)]
				if !ok {
					continue
				}
				v = b
			case bcode.OpIndexC:
				b, ok := stable[int(in.B)]
				if !ok {
					continue
				}
				v = b + in.Imm
			case bcode.OpIndex:
				b, okB := stable[int(in.B)]
				c, okC := stable[int(in.C)]
				if !okB || !okC {
					continue
				}
				v = b + c*in.Imm
			default:
				continue
			}
			stable[r] = v
			changed = true
		}
	}

	// Classify every private access; any access the analysis cannot pin
	// to a constant in-frame range disables promotion for the kernel.
	var accs []pmAccess
	for pc := range code {
		in := &code[pc]
		if !isMemOp(in.Op) {
			continue
		}
		sp, known := memSpace(in)
		if !known {
			return // runtime tag decode could select the private arena
		}
		if sp != clc.ASPrivate {
			continue
		}
		if fusedMem(in.Op) {
			return // dynamically indexed private access
		}
		a := pmAccess{pc: pc}
		switch in.Op {
		case bcode.OpLdVI, bcode.OpStVI:
			k := clc.ScalarKind(in.Kind)
			a.es, a.lanes, a.flt = k.Size(), int(in.Sub), false
		case bcode.OpLdVF, bcode.OpStVF:
			k := clc.ScalarKind(in.Kind)
			a.es, a.lanes, a.flt = k.Size(), int(in.Sub), true
		default:
			es, flt, _, _, ok := scalarMemClass(in.Op)
			if !ok || es != int(in.N) {
				return
			}
			a.es, a.lanes, a.flt = es, 1, flt
		}
		v, ok := stable[int(in.B)]
		if !ok || v < 0 || v>>62 != 0 {
			return
		}
		a.off = v
		if a.off+int64(a.es*a.lanes) > int64(bf.FrameSize) {
			return
		}
		accs = append(accs, a)
	}
	if len(accs) == 0 {
		return
	}

	// Group by offset; an offset is promotable when every access agrees
	// on shape, and survives only if no access at another offset
	// overlaps its range (an overlapping arena access would see the
	// slot's stale bytes mid-kernel).
	byOff := make(map[int64][]pmAccess)
	for _, a := range accs {
		byOff[a.off] = append(byOff[a.off], a)
	}
	var slots []*pmSlot
	for off, as := range byOff {
		base := as[0]
		ok := true
		for _, a := range as[1:] {
			if a.es != base.es || a.lanes != base.lanes || a.flt != base.flt {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s := &pmSlot{off: off, es: base.es, lanes: base.lanes, flt: base.flt}
		overlap := false
		for _, a := range accs {
			if a.off != off && a.off < off+s.size() && off < a.off+int64(a.es*a.lanes) {
				overlap = true
				break
			}
		}
		if !overlap {
			slots = append(slots, s)
		}
	}
	if len(slots) == 0 {
		return
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].off < slots[j].off })
	bySlotOff := make(map[int64]*pmSlot, len(slots))
	for i, s := range slots {
		s.idx = i
		bySlotOff[s.off] = s
	}
	fe.promList = slots
	fe.promAt = make(map[int]*pmSlot)
	for _, a := range accs {
		if s := bySlotOff[a.off]; s != nil {
			fe.promAt[a.pc] = s
		}
	}
}

// pmIntDecode is the register value of an int slot element (the
// zero-extended stored bits) under the load's kind — the same result
// the arena decode of the stored bytes produces.
func pmIntDecode(k clc.ScalarKind, x string) string {
	switch k {
	case clc.KBool, clc.KUChar:
		return fmt.Sprintf("int64(uint8(%s))", x)
	case clc.KChar:
		return fmt.Sprintf("int64(int8(%s))", x)
	case clc.KShort:
		return fmt.Sprintf("int64(int16(%s))", x)
	case clc.KUShort:
		return fmt.Sprintf("int64(uint16(%s))", x)
	case clc.KInt:
		return fmt.Sprintf("int64(int32(%s))", x)
	case clc.KUInt:
		return fmt.Sprintf("int64(uint32(%s))", x)
	}
	return x
}

// pmIntEncode zero-extends a stored register value to the slot's
// element width — the bits the arena encode would have written.
func pmIntEncode(es int, x string) string {
	switch es {
	case 1:
		return fmt.Sprintf("int64(uint8(%s))", x)
	case 2:
		return fmt.Sprintf("int64(uint16(%s))", x)
	case 4:
		return fmt.Sprintf("int64(uint32(%s))", x)
	}
	return x
}

// pmFltEncode is the decoded float64 a store leaves in a float slot:
// 4-byte slots keep the float32 double rounding the arena round-trip
// performs.
func pmFltEncode(es int, x string) string {
	if es == 4 {
		return fmt.Sprintf("float64(float32(%s))", x)
	}
	return x
}

// emitPromAccess lowers a promoted private access: no address
// computation, no bounds check, no arena traffic.
func (fe *fnEmit) emitPromAccess(in *bcode.Inst, s *pmSlot) {
	A := in.A
	k := clc.ScalarKind(in.Kind)
	switch in.Op {
	case bcode.OpLdVI:
		for j := 0; j < s.lanes; j++ {
			fe.wl("v%d[%d] = %s", A, j, pmIntDecode(k, s.elem(j)))
		}
	case bcode.OpLdVF:
		for j := 0; j < s.lanes; j++ {
			fe.wl("w%d[%d] = %s", A, j, s.elem(j))
		}
	case bcode.OpStVI:
		for j := 0; j < s.lanes; j++ {
			fe.wl("%s = %s", s.elem(j), pmIntEncode(s.es, fmt.Sprintf("v%d[%d]", A, j)))
		}
	case bcode.OpStVF:
		for j := 0; j < s.lanes; j++ {
			fe.wl("%s = %s", s.elem(j), pmFltEncode(s.es, fmt.Sprintf("w%d[%d]", A, j)))
		}
	default:
		_, flt, kind, store, _ := scalarMemClass(in.Op)
		switch {
		case !store && flt:
			fe.wl("f%d = %s", A, s.elem(0))
		case !store:
			fe.wl("r%d = %s", A, pmIntDecode(kind, s.elem(0)))
		case flt:
			fe.wl("%s = %s", s.elem(0), pmFltEncode(s.es, fmt.Sprintf("f%d", A)))
		default:
			fe.wl("%s = %s", s.elem(0), pmIntEncode(s.es, fmt.Sprintf("r%d", A)))
		}
	}
}

// emitPmInit decodes every promoted slot from its arena bytes on fresh
// kernel entry, reproducing exactly what the first arena load of each
// element would have seen (zero-filled or stale from a previous
// occupant of the buffer). In-frame offsets make the slice bounds
// checks unfailing: the private arena is at least FrameSize bytes.
func (fe *fnEmit) emitPmInit() {
	for _, s := range fe.promList {
		for j := 0; j < s.lanes; j++ {
			off := s.off + int64(j*s.es)
			fe.wl("%s = %s", s.elem(j), pmMemDecode(s, off))
		}
	}
}

// emitPmWriteback encodes every promoted slot back to its arena bytes;
// emitted before each kernel return so a later kernel reusing the
// buffer sees exactly the bytes the arena stores would have left.
func (fe *fnEmit) emitPmWriteback() {
	for _, s := range fe.promList {
		for j := 0; j < s.lanes; j++ {
			off := s.off + int64(j*s.es)
			fe.wl("%s", pmMemEncode(s, off, s.elem(j)))
		}
	}
}

func pmMemDecode(s *pmSlot, off int64) string {
	if s.flt {
		if s.es == 4 {
			return fmt.Sprintf("float64(math.Float32frombits(binary.LittleEndian.Uint32(e.pmem[%d:])))", off)
		}
		return fmt.Sprintf("math.Float64frombits(binary.LittleEndian.Uint64(e.pmem[%d:]))", off)
	}
	switch s.es {
	case 1:
		return fmt.Sprintf("int64(e.pmem[%d])", off)
	case 2:
		return fmt.Sprintf("int64(binary.LittleEndian.Uint16(e.pmem[%d:]))", off)
	case 4:
		return fmt.Sprintf("int64(binary.LittleEndian.Uint32(e.pmem[%d:]))", off)
	}
	return fmt.Sprintf("int64(binary.LittleEndian.Uint64(e.pmem[%d:]))", off)
}

func pmMemEncode(s *pmSlot, off int64, x string) string {
	if s.flt {
		if s.es == 4 {
			return fmt.Sprintf("binary.LittleEndian.PutUint32(e.pmem[%d:], math.Float32bits(float32(%s)))", off, x)
		}
		return fmt.Sprintf("binary.LittleEndian.PutUint64(e.pmem[%d:], math.Float64bits(%s))", off, x)
	}
	switch s.es {
	case 1:
		return fmt.Sprintf("e.pmem[%d] = byte(%s)", off, x)
	case 2:
		return fmt.Sprintf("binary.LittleEndian.PutUint16(e.pmem[%d:], uint16(%s))", off, x)
	case 4:
		return fmt.Sprintf("binary.LittleEndian.PutUint32(e.pmem[%d:], uint32(%s))", off, x)
	}
	return fmt.Sprintf("binary.LittleEndian.PutUint64(e.pmem[%d:], uint64(%s))", off, x)
}

// spillNeeds sizes the per-lane barrier spill arrays including the
// promoted slots (which append after the vector lanes in both banks).
func (fe *fnEmit) spillNeeds() (nI, nF int) {
	nI, nF = spillSlots(fe.bf)
	for _, s := range fe.promList {
		if s.flt {
			nF += s.lanes
		} else {
			nI += s.lanes
		}
	}
	return nI, nF
}
