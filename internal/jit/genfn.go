package jit

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"grover/internal/bcode"
	"grover/internal/clc"
)

// fnEmit emits one bcode function as a native Go lane function.
// Kernels become `kern<i>(e *env, resume int) (int, error)` state
// machines (0 = done, k>0 = suspended at barrier site k); callees
// become `fn<i>(e *env, fb int, args...) (int64, float64, []int64,
// []float64, error)` with bcode's return-stash semantics.
type fnEmit struct {
	g       *srcGen
	bf      *bcode.BFunc
	kernel  bool
	name    string
	targets map[int]bool
	barSite map[int]int
	// buf redirects wl output during the computeBarLive dry render;
	// dry additionally suppresses barrier spill emission there.
	buf     *strings.Builder
	dry     bool
	barLive map[int]map[string]bool
	// Promoted private slots (see genpromote.go): promAt intercepts the
	// promoted access pcs, promList orders the slots for declaration,
	// entry init, writeback, and barrier spill.
	promAt   map[int]*pmSlot
	promList []*pmSlot
}

// prepFunc runs the emission-independent analyses (goto targets,
// barrier sites, private-slot promotion, barrier liveness) so the
// dispatch table can size spill arrays before any body is emitted.
func (g *srcGen) prepFunc(bf *bcode.BFunc, id int, kernel bool) *fnEmit {
	fe := &fnEmit{g: g, bf: bf, kernel: kernel}
	if kernel {
		fe.name = fmt.Sprintf("kern%d", id)
	} else {
		fe.name = fmt.Sprintf("fn%d", id)
	}
	fe.scan()
	if kernel {
		fe.computePromote()
	}
	if len(fe.barSite) > 0 {
		fe.computeBarLive()
	}
	return fe
}

func (fe *fnEmit) emit() {
	fe.header()
	fe.body()
	fe.g.wl("}")
	fe.g.wl("")
}

func (g *srcGen) emitFunc(bf *bcode.BFunc, id int, kernel bool) {
	g.prepFunc(bf, id, kernel).emit()
}

// scan collects goto targets (only pcs an emitted goto will reference)
// and numbers barrier sites in pc order.
func (fe *fnEmit) scan() {
	fe.targets = map[int]bool{}
	fe.barSite = map[int]int{}
	code := fe.bf.Code
	for pc := range code {
		in := &code[pc]
		switch in.Op {
		case bcode.OpJmp:
			if int(in.Imm) != pc+1 {
				fe.targets[int(in.Imm)] = true
			}
		case bcode.OpCondBrI, bcode.OpCondBrF:
			t, f := int(in.Imm), int(in.N)
			switch {
			case f == pc+1:
				fe.targets[t] = true
			case t == pc+1:
				fe.targets[f] = true
			default:
				fe.targets[t] = true
				fe.targets[f] = true
			}
		case bcode.OpBarrier:
			if fe.kernel {
				fe.barSite[pc] = len(fe.barSite) + 1
			}
		}
	}
}

func (fe *fnEmit) wl(f string, a ...any) {
	if fe.buf != nil {
		fmt.Fprintf(fe.buf, f+"\n", a...)
		return
	}
	fe.g.wl(f, a...)
}

// regToken matches the register and promoted-slot names (r0, f3, v1,
// w2, pm4) an emitted instruction references; every such reference
// emitInst produces has exactly this shape, so scanning the rendered
// text recovers the instruction's register set without a per-opcode
// operand table. ("pm" never matches inside "e.pmem" — no digit
// follows.)
var regToken = regexp.MustCompile(`\b(?:pm|[rfvw])[0-9]+\b`)

// computeBarLive renders every instruction once into a scratch buffer
// and computes, per barrier site, the register names referenced in
// code reachable from that barrier's resume point. Only those
// registers spill across the barrier — a superset of the live set (a
// referenced register may be redefined before any read), never a
// subset, so a resumed lane always sees every value it can still read.
// Barrier-heavy kernels with large register files (tiled matmul,
// n-body) otherwise pay a full register-file round-trip through e.si/
// e.sf per lane per round.
func (fe *fnEmit) computeBarLive() {
	code := fe.bf.Code
	refs := make([][]string, len(code))
	var sb strings.Builder
	fe.buf, fe.dry = &sb, true
	for pc := range code {
		sb.Reset()
		fe.emitInst(pc, &code[pc])
		refs[pc] = regToken.FindAllString(sb.String(), -1)
	}
	fe.buf, fe.dry = nil, false

	succ := func(pc int) []int {
		in := &code[pc]
		switch in.Op {
		case bcode.OpJmp:
			return []int{int(in.Imm)}
		case bcode.OpCondBrI, bcode.OpCondBrF:
			return []int{int(in.Imm), int(in.N)}
		case bcode.OpRet, bcode.OpRetI, bcode.OpRetF, bcode.OpRetVI, bcode.OpRetVF, bcode.OpTrap:
			return nil
		}
		if pc+1 < len(code) {
			return []int{pc + 1}
		}
		return nil
	}

	fe.barLive = make(map[int]map[string]bool, len(fe.barSite))
	for pc, site := range fe.barSite {
		live := map[string]bool{}
		seen := make([]bool, len(code))
		stack := succ(pc)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if p >= len(code) || seen[p] {
				continue
			}
			seen[p] = true
			for _, r := range refs[p] {
				live[r] = true
			}
			stack = append(stack, succ(p)...)
		}
		fe.barLive[site] = live
	}
}

// errRet returns the error-return statement for this function shape.
func (fe *fnEmit) errRet(expr string) string {
	if fe.kernel {
		return "return 0, " + expr
	}
	return "return 0, 0, nil, nil, " + expr
}

// header emits the signature, register declarations, the barrier
// resume prologue, and constant/parameter initialization.
func (fe *fnEmit) header() {
	bf := fe.bf
	if fe.kernel {
		fe.wl("func %s(e *env, resume int) (int, error) {", fe.name)
	} else {
		params := []string{"e *env", "fb int"}
		for i, p := range bf.Params {
			params = append(params, fmt.Sprintf("p%d %s", i, bankType(bf, p)))
		}
		fe.wl("func %s(%s) (int64, float64, []int64, []float64, error) {",
			fe.name, strings.Join(params, ", "))
	}

	// Register file as locals. Everything is declared up front so gotos
	// never jump over declarations, then blank-used so dead registers
	// stay legal.
	var names []string
	if bf.NInt > 0 {
		fe.wl("var %s int64", regList("r", bf.NInt))
		names = append(names, regNames("r", bf.NInt)...)
	}
	if bf.NFlt > 0 {
		fe.wl("var %s float64", regList("f", bf.NFlt))
		names = append(names, regNames("f", bf.NFlt)...)
	}
	for i, l := range bf.VecILens {
		fe.wl("var v%d [%d]int64", i, l)
		names = append(names, fmt.Sprintf("v%d", i))
	}
	for i, l := range bf.VecFLens {
		fe.wl("var w%d [%d]float64", i, l)
		names = append(names, fmt.Sprintf("w%d", i))
	}
	for _, s := range fe.promList {
		typ := "int64"
		if s.flt {
			typ = "float64"
		}
		if s.lanes == 1 {
			fe.wl("var %s %s", s.name(), typ)
		} else {
			fe.wl("var %s [%d]%s", s.name(), s.lanes, typ)
		}
		names = append(names, s.name())
	}
	fe.wl("var ta, tb uint64")
	fe.wl("var ab []byte")
	fe.wl("var ts float64")
	names = append(names, "ta", "tb", "ab", "ts")
	for i := 0; i < len(names); i += 12 {
		end := min(i+12, len(names))
		chunk := names[i:end]
		fe.wl("%s = %s", strings.Repeat("_, ", len(chunk)-1)+"_", strings.Join(chunk, ", "))
	}

	if fe.kernel && len(fe.barSite) > 0 {
		fe.wl("if resume != 0 {")
		fe.wl("switch resume {")
		for pc := 0; pc < len(bf.Code); pc++ {
			if site, ok := fe.barSite[pc]; ok {
				fe.wl("case %d:", site)
				fe.emitSpill(fe.barLive[site], true)
				fe.wl("goto B%d", site)
			}
		}
		fe.wl("}")
		fe.wl("}")
	}

	// Constant region: locals are zero-valued, so only non-zero
	// constants need stores. Float constants go through exact bits.
	for ci, v := range bf.IntConsts {
		if v != 0 {
			fe.wl("r%d = %d", ci, v)
		}
	}
	for ci, v := range bf.FltConsts {
		if bits := math.Float64bits(v); bits != 0 {
			fe.wl("f%d = math.Float64frombits(0x%016x)", ci, bits)
		}
	}
	// Parameter region.
	for k, p := range bf.Params {
		if fe.kernel {
			switch p.Bank {
			case bcode.BankInt:
				fe.wl("r%d = e.pi[%d]", p.Idx, k)
			case bcode.BankFlt:
				fe.wl("f%d = e.pf[%d]", p.Idx, k)
			}
			continue
		}
		switch p.Bank {
		case bcode.BankInt:
			fe.wl("r%d = p%d", p.Idx, k)
		case bcode.BankFlt:
			fe.wl("f%d = p%d", p.Idx, k)
		case bcode.BankVecI:
			fe.wl("v%d = p%d", p.Idx, k)
		case bcode.BankVecF:
			fe.wl("w%d = p%d", p.Idx, k)
		}
	}
	// Promoted private slots pick up whatever bytes the arena holds on
	// fresh entry; barrier resumes restore them from the spill arrays
	// instead (the resume switch jumps past this).
	fe.emitPmInit()
}

// emitSpill writes the barrier spill (restore=false) or restore
// (restore=true) of the registers in set against e.si/e.sf; a nil set
// means the full register file. Slot layout is fixed — scalars first,
// then vector lanes in register order — so skipped registers never
// shift the slots of spilled ones, and a site's spill and restore
// always agree.
func (fe *fnEmit) emitSpill(set map[string]bool, restore bool) {
	bf := fe.bf
	want := func(name string) bool { return set == nil || set[name] }
	mov := func(slot int, si bool, reg string) {
		arr := "e.si"
		if !si {
			arr = "e.sf"
		}
		if restore {
			fe.wl("%s = %s[%d]", reg, arr, slot)
		} else {
			fe.wl("%s[%d] = %s", arr, slot, reg)
		}
	}
	s := 0
	for i := 0; i < bf.NInt; i++ {
		if want(fmt.Sprintf("r%d", i)) {
			mov(s, true, fmt.Sprintf("r%d", i))
		}
		s++
	}
	for i, l := range bf.VecILens {
		for j := 0; j < l; j++ {
			if want(fmt.Sprintf("v%d", i)) {
				mov(s, true, fmt.Sprintf("v%d[%d]", i, j))
			}
			s++
		}
	}
	for _, sl := range fe.promList {
		if sl.flt {
			continue
		}
		for j := 0; j < sl.lanes; j++ {
			if want(sl.name()) {
				mov(s, true, sl.elem(j))
			}
			s++
		}
	}
	s = 0
	for i := 0; i < bf.NFlt; i++ {
		if want(fmt.Sprintf("f%d", i)) {
			mov(s, false, fmt.Sprintf("f%d", i))
		}
		s++
	}
	for i, l := range bf.VecFLens {
		for j := 0; j < l; j++ {
			if want(fmt.Sprintf("w%d", i)) {
				mov(s, false, fmt.Sprintf("w%d[%d]", i, j))
			}
			s++
		}
	}
	for _, sl := range fe.promList {
		if !sl.flt {
			continue
		}
		for j := 0; j < sl.lanes; j++ {
			if want(sl.name()) {
				mov(s, false, sl.elem(j))
			}
			s++
		}
	}
}

// body emits the flat pc-ordered instruction stream with labels at
// goto targets and barrier suspend/resume points.
func (fe *fnEmit) body() {
	code := fe.bf.Code
	for pc := range code {
		if fe.targets[pc] {
			fe.wl("L%d:", pc)
		}
		fe.emitInst(pc, &code[pc])
	}
	// Defensive terminator: bcode functions always end in a terminator,
	// and this also guarantees Go's termination analysis is satisfied
	// when the last instruction is a goto or label.
	fe.wl("%s", fe.errRet(`errors.New("jit: fell off end of code")`))
}

// --- expression helpers -------------------------------------------------

func regNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

func regList(prefix string, n int) string {
	return strings.Join(regNames(prefix, n), ", ")
}

// bankType is the Go parameter type for a callee parameter register.
func bankType(bf *bcode.BFunc, p bcode.Ref) string {
	switch p.Bank {
	case bcode.BankFlt:
		return "float64"
	case bcode.BankVecI:
		return fmt.Sprintf("[%d]int64", bf.VecILens[p.Idx])
	case bcode.BankVecF:
		return fmt.Sprintf("[%d]float64", bf.VecFLens[p.Idx])
	}
	return "int64"
}

// widthOf mirrors vm.widthBits.
func widthOf(k clc.ScalarKind) uint {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		return 8
	case clc.KShort, clc.KUShort:
		return 16
	case clc.KInt, clc.KUInt:
		return 32
	}
	return 64
}

// normE wraps x in vm.normInt's width normalization for the kind.
func normE(k clc.ScalarKind, x string) string {
	switch k {
	case clc.KBool:
		return fmt.Sprintf("nb(%s)", x)
	case clc.KChar:
		return fmt.Sprintf("int64(int8(%s))", x)
	case clc.KUChar:
		return fmt.Sprintf("int64(uint8(%s))", x)
	case clc.KShort:
		return fmt.Sprintf("int64(int16(%s))", x)
	case clc.KUShort:
		return fmt.Sprintf("int64(uint16(%s))", x)
	case clc.KInt:
		return fmt.Sprintf("int64(int32(%s))", x)
	case clc.KUInt:
		return fmt.Sprintf("int64(uint32(%s))", x)
	}
	return x
}

// roundE wraps x in vm.math32's float32 rounding when the kind is
// KFloat.
func roundE(k clc.ScalarKind, x string) string {
	if k == clc.KFloat {
		return fmt.Sprintf("float64(float32(%s))", x)
	}
	return x
}

// ldIntE is bcode loadIntLane's decode expression for one element.
func ldIntE(k clc.ScalarKind, off string) string {
	switch k {
	case clc.KBool, clc.KUChar:
		return fmt.Sprintf("int64(ab[%s])", off)
	case clc.KChar:
		return fmt.Sprintf("int64(int8(ab[%s]))", off)
	case clc.KShort:
		return fmt.Sprintf("int64(int16(binary.LittleEndian.Uint16(ab[%s:])))", off)
	case clc.KUShort:
		return fmt.Sprintf("int64(binary.LittleEndian.Uint16(ab[%s:]))", off)
	case clc.KInt:
		return fmt.Sprintf("int64(int32(binary.LittleEndian.Uint32(ab[%s:])))", off)
	case clc.KUInt:
		return fmt.Sprintf("int64(binary.LittleEndian.Uint32(ab[%s:]))", off)
	}
	return fmt.Sprintf("int64(binary.LittleEndian.Uint64(ab[%s:]))", off)
}

// stIntS is bcode storeIntLane's encode statement for one element.
func stIntS(k clc.ScalarKind, off, x string) string {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		return fmt.Sprintf("ab[%s] = byte(%s)", off, x)
	case clc.KShort, clc.KUShort:
		return fmt.Sprintf("binary.LittleEndian.PutUint16(ab[%s:], uint16(%s))", off, x)
	case clc.KInt, clc.KUInt:
		return fmt.Sprintf("binary.LittleEndian.PutUint32(ab[%s:], uint32(%s))", off, x)
	}
	return fmt.Sprintf("binary.LittleEndian.PutUint64(ab[%s:], uint64(%s))", off, x)
}

func ldFltE(k clc.ScalarKind, off string) string {
	if k == clc.KFloat {
		return fmt.Sprintf("float64(math.Float32frombits(binary.LittleEndian.Uint32(ab[%s:])))", off)
	}
	return fmt.Sprintf("math.Float64frombits(binary.LittleEndian.Uint64(ab[%s:]))", off)
}

func stFltS(k clc.ScalarKind, off, x string) string {
	if k == clc.KFloat {
		return fmt.Sprintf("binary.LittleEndian.PutUint32(ab[%s:], math.Float32bits(float32(%s)))", off, x)
	}
	return fmt.Sprintf("binary.LittleEndian.PutUint64(ab[%s:], math.Float64bits(%s))", off, x)
}

// mathFExpr is scalarMathF's expression for a builtin over the given
// argument expressions; ok=false for builtins the VM itself rejects.
func mathFExpr(name string, a []string) (string, bool) {
	arg := func(i int) string {
		if i < len(a) {
			return a[i]
		}
		return "0"
	}
	switch name {
	case "sqrt", "native_sqrt", "half_sqrt":
		return fmt.Sprintf("math.Sqrt(%s)", arg(0)), true
	case "rsqrt", "native_rsqrt", "half_rsqrt":
		return fmt.Sprintf("1 / math.Sqrt(%s)", arg(0)), true
	case "fabs", "abs":
		return fmt.Sprintf("math.Abs(%s)", arg(0)), true
	case "exp", "native_exp":
		return fmt.Sprintf("math.Exp(%s)", arg(0)), true
	case "exp2":
		return fmt.Sprintf("math.Exp2(%s)", arg(0)), true
	case "log", "native_log":
		return fmt.Sprintf("math.Log(%s)", arg(0)), true
	case "log2":
		return fmt.Sprintf("math.Log2(%s)", arg(0)), true
	case "sin", "native_sin":
		return fmt.Sprintf("math.Sin(%s)", arg(0)), true
	case "cos", "native_cos":
		return fmt.Sprintf("math.Cos(%s)", arg(0)), true
	case "tan":
		return fmt.Sprintf("math.Tan(%s)", arg(0)), true
	case "floor":
		return fmt.Sprintf("math.Floor(%s)", arg(0)), true
	case "ceil":
		return fmt.Sprintf("math.Ceil(%s)", arg(0)), true
	case "trunc":
		return fmt.Sprintf("math.Trunc(%s)", arg(0)), true
	case "round":
		return fmt.Sprintf("math.Round(%s)", arg(0)), true
	case "native_recip":
		return fmt.Sprintf("1 / %s", arg(0)), true
	case "pow":
		return fmt.Sprintf("math.Pow(%s, %s)", arg(0), arg(1)), true
	case "fmin", "min":
		return fmt.Sprintf("math.Min(%s, %s)", arg(0), arg(1)), true
	case "fmax", "max":
		return fmt.Sprintf("math.Max(%s, %s)", arg(0), arg(1)), true
	case "fmod":
		return fmt.Sprintf("math.Mod(%s, %s)", arg(0), arg(1)), true
	case "native_divide":
		return fmt.Sprintf("%s / %s", arg(0), arg(1)), true
	case "atan2":
		return fmt.Sprintf("math.Atan2(%s, %s)", arg(0), arg(1)), true
	case "hypot":
		return fmt.Sprintf("math.Hypot(%s, %s)", arg(0), arg(1)), true
	case "mad", "fma":
		return fmt.Sprintf("%s*%s + %s", arg(0), arg(1), arg(2)), true
	case "clamp":
		return fmt.Sprintf("math.Min(math.Max(%s, %s), %s)", arg(0), arg(1), arg(2)), true
	case "mix":
		return fmt.Sprintf("%s + (%s-%s)*%s", arg(0), arg(1), arg(0), arg(2)), true
	}
	return "", false
}
