package jit

// Test-only exports for the external native_test package.
var (
	ResetNativeForTest = resetNativeForTest
	NativeCacheDirFor  = nativeCacheDir
)
