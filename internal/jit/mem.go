package jit

import (
	"encoding/binary"
	"fmt"
	"math"

	"grover/internal/bcode"
	"grover/internal/clc"
	"grover/internal/vm"
)

// Address-space tags, mirroring the vm pointer encoding (top 2 bits; see
// vm.MakeAddr). Decoded locally so hotArena stays within the inlining
// budget of the per-lane memory loops.
const (
	tagPrivate uint64 = 0
	tagGlobal  uint64 = 1
	tagLocal   uint64 = 2
	tagShift          = 62
	offMask           = (uint64(1) << tagShift) - 1
)

// hotArena resolves a lane address with a combined tag decode and bounds
// check and no error construction, so it inlines into the per-lane load
// and store loops. ok=false sends the access down the checked resolvers,
// which produce the canonical out-of-bounds diagnostics.
func (g *groupState) hotArena(addr uint64, l int32, sz int) ([]byte, uint64, bool) {
	off := addr & offMask
	var a []byte
	switch addr >> tagShift {
	case tagGlobal:
		a = g.gmem
	case tagLocal:
		a = g.local
	default:
		a = g.priv[l]
	}
	if int(off)+sz > len(a) {
		return nil, 0, false
	}
	return a, off, true
}

// arenaLane resolves a tagged address against one lane's arenas, with
// the interpreter's exact bounds diagnostics.
func (g *groupState) arenaLane(addr uint64, l int32) ([]byte, uint64, error) {
	space, off := vm.SplitAddr(addr)
	switch space {
	case clc.ASGlobal:
		if int(off) >= len(g.gmem) {
			return nil, 0, fmt.Errorf("vm: global access at %d out of bounds (%d)", off, len(g.gmem))
		}
		return g.gmem, off, nil
	case clc.ASLocal:
		if int(off) >= len(g.local) {
			return nil, 0, fmt.Errorf("vm: local access at %d out of bounds (%d)", off, len(g.local))
		}
		return g.local, off, nil
	default:
		p := g.priv[l]
		if int(off) >= len(p) {
			return nil, 0, fmt.Errorf("vm: private access at %d out of bounds (%d)", off, len(p))
		}
		return p, off, nil
	}
}

// ldArena is arenaLane plus the load-width bounds check, with errors
// already attributed to the lane.
func (g *groupState) ldArena(addr uint64, l int32, sz int) ([]byte, uint64, error) {
	a, off, err := g.arenaLane(addr, l)
	if err != nil {
		return nil, 0, laneErr(l, err)
	}
	if int(off)+sz > len(a) {
		return nil, 0, laneErr(l, fmt.Errorf("vm: load of %d bytes at %d overruns arena (%d)", sz, off, len(a)))
	}
	return a, off, nil
}

// stArena is arenaLane plus the store-width bounds check.
func (g *groupState) stArena(addr uint64, l int32, sz int) ([]byte, uint64, error) {
	a, off, err := g.arenaLane(addr, l)
	if err != nil {
		return nil, 0, laneErr(l, err)
	}
	if int(off)+sz > len(a) {
		return nil, 0, laneErr(l, fmt.Errorf("vm: store of %d bytes at %d overruns arena (%d)", sz, off, len(a)))
	}
	return a, off, nil
}

// fusedMem reports whether the opcode is a fused GEP+access
// superinstruction (base register + index register × element size).
func fusedMem(op bcode.Opcode) bool {
	switch op {
	case bcode.OpLdXI8, bcode.OpLdXU8, bcode.OpLdXI16, bcode.OpLdXU16,
		bcode.OpLdXI32, bcode.OpLdXU32, bcode.OpLdXI64, bcode.OpLdXF32, bcode.OpLdXF64,
		bcode.OpStXI8, bcode.OpStXI16, bcode.OpStXI32, bcode.OpStXI64,
		bcode.OpStXF32, bcode.OpStXF64,
		bcode.OpLdXVI, bcode.OpLdXVF, bcode.OpStXVI, bcode.OpStXVF:
		return true
	}
	return false
}

// compileMem lowers a memory instruction to a single-pass closure that
// resolves the address, decodes the arena tag, bounds-checks, and
// performs the access per lane — no separate address pass and no trace
// bookkeeping on the untraced hot path. Returns nil for non-memory ops.
func (pr *program) compileMem(in *bcode.Inst, uni bool) opFn {
	switch in.Op {
	case bcode.OpLdI8, bcode.OpLdXI8, bcode.OpLdU8, bcode.OpLdXU8,
		bcode.OpLdI16, bcode.OpLdXI16, bcode.OpLdU16, bcode.OpLdXU16,
		bcode.OpLdI32, bcode.OpLdXI32, bcode.OpLdU32, bcode.OpLdXU32,
		bcode.OpLdI64, bcode.OpLdXI64, bcode.OpLdF32, bcode.OpLdXF32,
		bcode.OpLdF64, bcode.OpLdXF64:
		return compileLoad(in, uni)
	case bcode.OpStI8, bcode.OpStXI8, bcode.OpStI16, bcode.OpStXI16,
		bcode.OpStI32, bcode.OpStXI32, bcode.OpStI64, bcode.OpStXI64,
		bcode.OpStF32, bcode.OpStXF32, bcode.OpStF64, bcode.OpStXF64:
		return compileStore(in, uni)
	case bcode.OpLdVI, bcode.OpLdXVI, bcode.OpLdVF, bcode.OpLdXVF:
		return compileLoadVec(in)
	case bcode.OpStVI, bcode.OpStXVI, bcode.OpStVF, bcode.OpStXVF:
		return compileStoreVec(in)
	}
	return nil
}

// uniformLoadWrap applies wgvec's uniform load treatment: under a full
// mask a statically uniform, non-private load executes once on lane 0
// and broadcasts. Private memory is per-lane storage even at a uniform
// address, so those fall through to the per-lane path.
func uniformLoadWrap(base opFn, flt bool, a, b, c int32, m int64, fused bool) opFn {
	return func(g *groupState, fr *frame, mask []int32, full bool) error {
		if full {
			addr := uint64(fr.ri[b][0])
			if fused {
				addr = uint64(fr.ri[b][0] + fr.ri[c][0]*m)
			}
			if sp, _ := vm.SplitAddr(addr); sp != clc.ASPrivate {
				if err := base(g, fr, lane0Mask, false); err != nil {
					return err
				}
				if flt {
					broadcastLaneF(fr.rf[a])
				} else {
					broadcastLaneI(fr.ri[a])
				}
				return nil
			}
		}
		return base(g, fr, mask, full)
	}
}

// uniformStoreWrap applies wgvec's uniform store treatment: under a full
// mask a statically uniform, non-private store writes once (the write is
// idempotent across lanes).
func uniformStoreWrap(base opFn, b, c int32, m int64, fused bool) opFn {
	return func(g *groupState, fr *frame, mask []int32, full bool) error {
		if full {
			addr := uint64(fr.ri[b][0])
			if fused {
				addr = uint64(fr.ri[b][0] + fr.ri[c][0]*m)
			}
			if sp, _ := vm.SplitAddr(addr); sp != clc.ASPrivate {
				return base(g, fr, mask[:1], false)
			}
		}
		return base(g, fr, mask, full)
	}
}

// compileLoad builds the scalar load closure for one width.
func compileLoad(in *bcode.Inst, uni bool) opFn {
	a, b, c, m := in.A, in.B, in.C, in.Imm
	sz := int(in.N)
	fused := fusedMem(in.Op)
	var base opFn
	switch in.Op {
	case bcode.OpLdI8, bcode.OpLdXI8:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = int64(int8(arr[off]))
			}
			return nil
		}
	case bcode.OpLdU8, bcode.OpLdXU8:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = int64(arr[off])
			}
			return nil
		}
	case bcode.OpLdI16, bcode.OpLdXI16:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = int64(int16(binary.LittleEndian.Uint16(arr[off:])))
			}
			return nil
		}
	case bcode.OpLdU16, bcode.OpLdXU16:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = int64(binary.LittleEndian.Uint16(arr[off:]))
			}
			return nil
		}
	case bcode.OpLdI32, bcode.OpLdXI32:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = int64(int32(binary.LittleEndian.Uint32(arr[off:])))
			}
			return nil
		}
	case bcode.OpLdU32, bcode.OpLdXU32:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = int64(binary.LittleEndian.Uint32(arr[off:]))
			}
			return nil
		}
	case bcode.OpLdI64, bcode.OpLdXI64:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = int64(binary.LittleEndian.Uint64(arr[off:]))
			}
			return nil
		}
	case bcode.OpLdF32, bcode.OpLdXF32:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.rf[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = float64(math.Float32frombits(binary.LittleEndian.Uint32(arr[off:])))
			}
			return nil
		}
	case bcode.OpLdF64, bcode.OpLdXF64:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, pb := fr.rf[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.ldArena(addr, l, sz); err != nil {
						return err
					}
				}
				d[l] = math.Float64frombits(binary.LittleEndian.Uint64(arr[off:]))
			}
			return nil
		}
	}
	if uni {
		flt := in.Op == bcode.OpLdF32 || in.Op == bcode.OpLdXF32 ||
			in.Op == bcode.OpLdF64 || in.Op == bcode.OpLdXF64
		return uniformLoadWrap(base, flt, a, b, c, m, fused)
	}
	return base
}

// compileStore builds the scalar store closure for one width.
func compileStore(in *bcode.Inst, uni bool) opFn {
	a, b, c, m := in.A, in.B, in.C, in.Imm
	sz := int(in.N)
	fused := fusedMem(in.Op)
	var base opFn
	switch in.Op {
	case bcode.OpStI8, bcode.OpStXI8:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			src, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.stArena(addr, l, sz); err != nil {
						return err
					}
				}
				arr[off] = byte(src[l])
			}
			return nil
		}
	case bcode.OpStI16, bcode.OpStXI16:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			src, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.stArena(addr, l, sz); err != nil {
						return err
					}
				}
				binary.LittleEndian.PutUint16(arr[off:], uint16(src[l]))
			}
			return nil
		}
	case bcode.OpStI32, bcode.OpStXI32:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			src, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.stArena(addr, l, sz); err != nil {
						return err
					}
				}
				binary.LittleEndian.PutUint32(arr[off:], uint32(src[l]))
			}
			return nil
		}
	case bcode.OpStI64, bcode.OpStXI64:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			src, pb := fr.ri[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.stArena(addr, l, sz); err != nil {
						return err
					}
				}
				binary.LittleEndian.PutUint64(arr[off:], uint64(src[l]))
			}
			return nil
		}
	case bcode.OpStF32, bcode.OpStXF32:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			src, pb := fr.rf[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.stArena(addr, l, sz); err != nil {
						return err
					}
				}
				binary.LittleEndian.PutUint32(arr[off:], math.Float32bits(float32(src[l])))
			}
			return nil
		}
	case bcode.OpStF64, bcode.OpStXF64:
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			src, pb := fr.rf[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				arr, off, ok := g.hotArena(addr, l, sz)
				if !ok {
					var err error
					if arr, off, err = g.stArena(addr, l, sz); err != nil {
						return err
					}
				}
				binary.LittleEndian.PutUint64(arr[off:], math.Float64bits(src[l]))
			}
			return nil
		}
	}
	if uni {
		return uniformStoreWrap(base, b, c, m, fused)
	}
	return base
}

// compileLoadVec builds the vector load closure: whole-vector fast path
// when the vector sits in one arena, per-element checked slow path with
// the interpreter's error attribution otherwise.
func compileLoadVec(in *bcode.Inst) opFn {
	a, b, c, m := in.A, in.B, in.C, in.Imm
	k := clc.ScalarKind(in.Kind)
	es := k.Size()
	lanes := int(in.Sub)
	fused := fusedMem(in.Op)
	if in.Op == bcode.OpLdVF || in.Op == bcode.OpLdXVF {
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			ld := fr.bf.VecFLens[a]
			d, pb := fr.vf[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				o := int(l) * ld
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				if arr, off, ok := g.hotArena(addr, l, lanes*es); ok {
					v := arr[off:]
					if k == clc.KFloat {
						for i := 0; i < lanes; i++ {
							d[o+i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(v[i*4:])))
						}
					} else {
						for i := 0; i < lanes; i++ {
							d[o+i] = math.Float64frombits(binary.LittleEndian.Uint64(v[i*8:]))
						}
					}
					continue
				}
				for i := 0; i < lanes; i++ {
					arr, off, err := g.ldArena(addr+uint64(i*es), l, es)
					if err != nil {
						return err
					}
					if k == clc.KFloat {
						d[o+i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(arr[off:])))
					} else {
						d[o+i] = math.Float64frombits(binary.LittleEndian.Uint64(arr[off:]))
					}
				}
			}
			return nil
		}
	}
	return func(g *groupState, fr *frame, mask []int32, full bool) error {
		ld := fr.bf.VecILens[a]
		d, pb := fr.vi[a], fr.ri[b]
		px := pb
		if fused {
			px = fr.ri[c]
		}
		for _, l := range mask {
			o := int(l) * ld
			addr := uint64(pb[l])
			if fused {
				addr = uint64(pb[l] + px[l]*m)
			}
			if arr, off, ok := g.hotArena(addr, l, lanes*es); ok {
				v := arr[off:]
				for i := 0; i < lanes; i++ {
					d[o+i] = loadIntLane(v, uint64(i*es), k)
				}
				continue
			}
			for i := 0; i < lanes; i++ {
				arr, off, err := g.ldArena(addr+uint64(i*es), l, es)
				if err != nil {
					return err
				}
				d[o+i] = loadIntLane(arr, off, k)
			}
		}
		return nil
	}
}

// compileStoreVec builds the vector store closure, mirroring
// compileLoadVec's fast/slow split.
func compileStoreVec(in *bcode.Inst) opFn {
	a, b, c, m := in.A, in.B, in.C, in.Imm
	k := clc.ScalarKind(in.Kind)
	es := k.Size()
	lanes := int(in.Sub)
	fused := fusedMem(in.Op)
	if in.Op == bcode.OpStVF || in.Op == bcode.OpStXVF {
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			ls := fr.bf.VecFLens[a]
			s, pb := fr.vf[a], fr.ri[b]
			px := pb
			if fused {
				px = fr.ri[c]
			}
			for _, l := range mask {
				o := int(l) * ls
				addr := uint64(pb[l])
				if fused {
					addr = uint64(pb[l] + px[l]*m)
				}
				if arr, off, ok := g.hotArena(addr, l, lanes*es); ok {
					v := arr[off:]
					if k == clc.KFloat {
						for i := 0; i < lanes; i++ {
							binary.LittleEndian.PutUint32(v[i*4:], math.Float32bits(float32(s[o+i])))
						}
					} else {
						for i := 0; i < lanes; i++ {
							binary.LittleEndian.PutUint64(v[i*8:], math.Float64bits(s[o+i]))
						}
					}
					continue
				}
				for i := 0; i < lanes; i++ {
					arr, off, err := g.stArena(addr+uint64(i*es), l, es)
					if err != nil {
						return err
					}
					if k == clc.KFloat {
						binary.LittleEndian.PutUint32(arr[off:], math.Float32bits(float32(s[o+i])))
					} else {
						binary.LittleEndian.PutUint64(arr[off:], math.Float64bits(s[o+i]))
					}
				}
			}
			return nil
		}
	}
	return func(g *groupState, fr *frame, mask []int32, full bool) error {
		ls := fr.bf.VecILens[a]
		s, pb := fr.vi[a], fr.ri[b]
		px := pb
		if fused {
			px = fr.ri[c]
		}
		for _, l := range mask {
			o := int(l) * ls
			addr := uint64(pb[l])
			if fused {
				addr = uint64(pb[l] + px[l]*m)
			}
			if arr, off, ok := g.hotArena(addr, l, lanes*es); ok {
				v := arr[off:]
				for i := 0; i < lanes; i++ {
					storeIntLane(v, uint64(i*es), k, s[o+i])
				}
				continue
			}
			for i := 0; i < lanes; i++ {
				arr, off, err := g.stArena(addr+uint64(i*es), l, es)
				if err != nil {
					return err
				}
				storeIntLane(arr, off, k, s[o+i])
			}
		}
		return nil
	}
}

func loadIntLane(a []byte, off uint64, k clc.ScalarKind) int64 {
	switch k {
	case clc.KBool, clc.KUChar:
		return int64(a[off])
	case clc.KChar:
		return int64(int8(a[off]))
	case clc.KShort:
		return int64(int16(binary.LittleEndian.Uint16(a[off:])))
	case clc.KUShort:
		return int64(binary.LittleEndian.Uint16(a[off:]))
	case clc.KInt:
		return int64(int32(binary.LittleEndian.Uint32(a[off:])))
	case clc.KUInt:
		return int64(binary.LittleEndian.Uint32(a[off:]))
	default: // KLong, KULong
		return int64(binary.LittleEndian.Uint64(a[off:]))
	}
}

func storeIntLane(a []byte, off uint64, k clc.ScalarKind, v int64) {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		a[off] = byte(v)
	case clc.KShort, clc.KUShort:
		binary.LittleEndian.PutUint16(a[off:], uint16(v))
	case clc.KInt, clc.KUInt:
		binary.LittleEndian.PutUint32(a[off:], uint32(v))
	default: // KLong, KULong
		binary.LittleEndian.PutUint64(a[off:], uint64(v))
	}
}
