package jit_test

import (
	"os"
	"path/filepath"
	"testing"

	"grover/internal/debug"
	"grover/internal/jit"
	"grover/opencl"
)

// scaleSrc is a minimal one-buffer kernel; the OFF define makes cheap
// source variants whose generated code (and so cache keys) must differ.
const scaleSrc = `
__kernel void scale(__global float* a, int n) {
  int i = get_global_id(0);
  if (i < n) a[i] = a[i] * 2.0f + OFF;
}
`

// runNativeOnce compiles and launches scaleSrc (with the given OFF
// value) on the jit backend with native codegen forced on and the
// artifact cache pointed at dir. It returns the result buffer.
func runNativeOnce(t *testing.T, dir, off string) []float32 {
	t.Helper()
	os.Setenv("GROVER_JIT_CACHE", dir)
	t.Cleanup(func() { os.Unsetenv("GROVER_JIT_CACHE") })
	jit.SetNative(true)
	t.Cleanup(func() { jit.SetNative(false) })

	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		t.Fatal(err)
	}
	ctx := opencl.NewContext(dev)
	if err := ctx.SetBackend("jit"); err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CompileProgram("scale.cl", scaleSrc, map[string]string{"OFF": off})
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.Kernel("scale")
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	buf := ctx.NewBuffer(n * 4)
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i)
	}
	buf.WriteFloat32(in)
	nd := opencl.NDRange{Global: [3]int{n}, Local: [3]int{16}}
	if _, err := ctx.NewQueue().EnqueueNDRange(k, nd, buf, int32(n)); err != nil {
		t.Fatal(err)
	}
	return buf.ReadFloat32(n)
}

func checkScaled(t *testing.T, got []float32, off float32) {
	t.Helper()
	for i, v := range got {
		want := float32(i)*2 + off
		if v != want {
			t.Fatalf("lane %d = %g, want %g", i, v, want)
		}
	}
}

// TestNativeSingleCodegen verifies the compile cache: preparing the same
// kernel twice (two independent contexts) triggers exactly one
// codegen+build; the second prepare reuses the in-process module.
func TestNativeSingleCodegen(t *testing.T) {
	dir := t.TempDir()
	jit.ResetNativeForTest()
	b0, _ := jit.NativeStats()
	checkScaled(t, runNativeOnce(t, dir, "1.0f"), 1)
	b1, _ := jit.NativeStats()
	if b1-b0 != 1 {
		t.Fatalf("first prepare: builds delta = %d, want 1 (native codegen did not run?)", b1-b0)
	}
	checkScaled(t, runNativeOnce(t, dir, "1.0f"), 1)
	b2, h2 := jit.NativeStats()
	if b2 != b1 {
		t.Fatalf("second prepare of the identical kernel rebuilt (builds %d -> %d); singleflight/cache broken", b1, b2)
	}
	_ = h2
}

// TestNativeDistinctPlansDistinctKeys verifies that different kernel
// variants never collide in the content-addressed cache: a second
// variant must build its own artifact, and both must compute their own
// results.
func TestNativeDistinctPlansDistinctKeys(t *testing.T) {
	dir := t.TempDir()
	jit.ResetNativeForTest()
	b0, _ := jit.NativeStats()
	checkScaled(t, runNativeOnce(t, dir, "1.0f"), 1)
	checkScaled(t, runNativeOnce(t, dir, "3.0f"), 3)
	b1, _ := jit.NativeStats()
	if b1-b0 != 2 {
		t.Fatalf("two distinct kernel variants: builds delta = %d, want 2 (cache key collision?)", b1-b0)
	}
	sos, _ := filepath.Glob(filepath.Join(dir, "*.so"))
	bins, _ := filepath.Glob(filepath.Join(dir, "*.bin"))
	if len(sos)+len(bins) < 2 {
		t.Fatalf("expected 2 distinct artifacts in %s, found %d .so + %d .bin", dir, len(sos), len(bins))
	}
}

// TestNativeCorruptArtifactRebuilds verifies the disk cache's recovery
// path: a corrupted cached artifact is rebuilt, not trusted. The test
// pins the subprocess worker transport — the plugin transport dedups
// plugin.Open by file path in-process, so only the worker transport
// actually re-reads the artifact bytes within one process.
func TestNativeCorruptArtifactRebuilds(t *testing.T) {
	os.Setenv("GROVER_JIT_TRANSPORT", "worker")
	t.Cleanup(func() { os.Unsetenv("GROVER_JIT_TRANSPORT") })
	dir := t.TempDir()
	jit.ResetNativeForTest()
	checkScaled(t, runNativeOnce(t, dir, "5.0f"), 5)

	arts, _ := filepath.Glob(filepath.Join(dir, "*.so"))
	arts2, _ := filepath.Glob(filepath.Join(dir, "*.bin"))
	arts = append(arts, arts2...)
	if len(arts) == 0 {
		t.Fatal("no artifact produced")
	}
	for _, a := range arts {
		// Unlink before rewriting: the original artifact may still be
		// mapped by the already-loaded plugin, and truncating a mapped
		// file in place faults the process.
		if err := os.Remove(a); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(a, []byte("garbage, not a loadable artifact"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Drop the in-process module cache so the next prepare must go back
	// to disk and discover the corruption.
	jit.ResetNativeForTest()

	b0, _ := jit.NativeStats()
	checkScaled(t, runNativeOnce(t, dir, "5.0f"), 5)
	b1, h1 := jit.NativeStats()
	if b1-b0 < 1 {
		t.Fatalf("corrupted artifact was not rebuilt (builds delta %d)", b1-b0)
	}
	_ = h1
}

// TestNativeDebugVerify runs a native compile+launch with the IR
// verifier forced on: codegen input must be verifier-clean.
func TestNativeDebugVerify(t *testing.T) {
	old := debug.Verify
	debug.Verify = true
	defer func() { debug.Verify = old }()
	jit.ResetNativeForTest()
	checkScaled(t, runNativeOnce(t, t.TempDir(), "7.0f"), 7)
}
