package jit

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"plugin"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grover/internal/kcache"
)

// moduleTransport is a loaded native module's execution transport:
// exactly one of newRunner (in-process plugin) or worker (subprocess)
// is set.
type moduleTransport struct {
	newRunner func() nativeGroupFn
	worker    *workerProc
}

// modCache deduplicates concurrent native builds of identical generated
// source in-process: groverd's worker pool preparing the same program on
// several goroutines triggers one codegen+build, not N.
var modCache = kcache.New(16)

// buildSeq makes every plugin build's pluginpath unique, so a rebuild
// after artifact corruption loads as a distinct plugin instead of
// colliding with the previously opened one.
var buildSeq atomic.Int64

// resetNativeForTest drops the in-process module cache so tests can
// force a fresh load/build cycle (e.g. after corrupting an artifact).
func resetNativeForTest() {
	modCache = kcache.New(16)
}

// nativeCacheDir is the on-disk artifact cache location.
func nativeCacheDir() string {
	if d := os.Getenv("GROVER_JIT_CACHE"); d != "" {
		return d
	}
	return filepath.Join(os.TempDir(), "grover-jit")
}

// nativeTransport picks the transport: the in-process plugin by
// default, the subprocess worker when the host is race-instrumented
// (a race-built host cannot load a non-race plugin) or when forced via
// GROVER_JIT_TRANSPORT=worker.
func nativeTransport() string {
	if raceEnabled || os.Getenv("GROVER_JIT_TRANSPORT") == "worker" {
		return "worker"
	}
	return "plugin"
}

func jitDebugf(format string, a ...any) {
	if os.Getenv("GROVER_JIT_DEBUG") != "" {
		fmt.Fprintf(os.Stderr, "jit: "+format+"\n", a...)
	}
}

// buildNativeModule generates Go source for the machine's eligible
// kernels and loads it through the content-addressed build cache.
// Best-effort: any failure returns nil and execution stays on the
// closure-threaded floor.
func buildNativeModule(ctx context.Context, m *Machine) *nativeModule {
	src, kernels, ok := genModule(m)
	if !ok {
		return nil
	}
	transport := nativeTransport()
	key := kcache.Key("grover-jit-native-v1", runtime.Version(), transport, src)
	v, _, err := modCache.Do(key, func() (interface{}, error) {
		return loadOrBuild(ctx, key, transport, src)
	})
	if err != nil {
		jitDebugf("native build unavailable: %v", err)
		return nil
	}
	mt := v.(*moduleTransport)
	nm := &nativeModule{
		kernels:   make(map[string]*nativeKernel, len(kernels)),
		newRunner: mt.newRunner,
		worker:    mt.worker,
	}
	for name, idx := range kernels {
		nm.kernels[name] = &nativeKernel{index: idx, mod: nm}
	}
	return nm
}

// artifactRecord is the DiskStore metadata for one built artifact.
type artifactRecord struct {
	Path      string `json:"path"`
	Transport string `json:"transport"`
	GoVersion string `json:"go_version"`
	BuildMS   int64  `json:"build_ms"`
}

var artifactStoreMu sync.Mutex

// recordArtifact appends build metadata to the cache directory's
// artifact index. Best-effort: the artifact file itself is the source
// of truth.
func recordArtifact(dir, key string, rec artifactRecord) {
	artifactStoreMu.Lock()
	defer artifactStoreMu.Unlock()
	st, err := kcache.OpenDiskStore(filepath.Join(dir, "artifacts.json"), 1, 64)
	if err != nil {
		return
	}
	defer st.Close()
	_ = st.Put(key, rec)
}

// loadOrBuild loads a cached artifact for the key or builds one: write
// the generated source into a temp module, run the Go toolchain, move
// the artifact into the content-addressed cache, and load it through
// the requested transport. A plugin that fails to build or open falls
// back to the subprocess worker before giving up.
func loadOrBuild(ctx context.Context, key, transport, src string) (*moduleTransport, error) {
	dir := nativeCacheDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var firstErr error
	if transport == "plugin" {
		mt, err := loadOrBuildOne(ctx, dir, key, "plugin", src)
		if err == nil {
			return mt, nil
		}
		firstErr = err
		jitDebugf("plugin transport failed, trying worker: %v", err)
	}
	mt, err := loadOrBuildOne(ctx, dir, key, "worker", src)
	if err == nil {
		return mt, nil
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w; worker fallback: %v", firstErr, err)
	}
	return nil, err
}

func loadOrBuildOne(ctx context.Context, dir, key, transport, src string) (*moduleTransport, error) {
	ext := ".so"
	if transport == "worker" {
		ext = ".bin"
	}
	artifact := filepath.Join(dir, key[:24]+ext)

	if _, err := os.Stat(artifact); err == nil {
		mt, err := loadArtifact(artifact, transport)
		if err == nil {
			nativeHits.Add(1)
			return mt, nil
		}
		jitDebugf("cached artifact %s unusable, rebuilding: %v", artifact, err)
	}

	t0 := time.Now()
	if err := buildArtifact(ctx, dir, key, transport, src, artifact); err != nil {
		return nil, err
	}
	d := time.Since(t0)
	nativeBuilds.Add(1)
	observeBuild(d)
	recordArtifact(dir, key+":"+transport, artifactRecord{
		Path:      artifact,
		Transport: transport,
		GoVersion: runtime.Version(),
		BuildMS:   d.Milliseconds(),
	})
	return loadArtifact(artifact, transport)
}

// goLangVersion returns the running toolchain's language version
// ("1.24" from "go1.24.0") for the generated module's go directive —
// the plugin must be built by the same toolchain that loads it, so the
// directive must never exceed what is installed.
func goLangVersion() string {
	v := strings.TrimPrefix(runtime.Version(), "go")
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		if _, err := strconv.Atoi(parts[0]); err == nil {
			if _, err := strconv.Atoi(parts[1]); err == nil {
				return parts[0] + "." + parts[1]
			}
		}
	}
	return "1.22" // devel toolchains: the repo's own minimum
}

// buildArtifact compiles the generated source with the host toolchain
// and renames the result into place (never overwriting a potentially
// mapped artifact in-place).
func buildArtifact(ctx context.Context, cacheDir, key, transport, src, artifact string) error {
	gobin, err := exec.LookPath("go")
	if err != nil {
		return fmt.Errorf("jit: go toolchain unavailable: %w", err)
	}
	mod, err := os.MkdirTemp("", "grover-jit-build-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(mod)
	// The module path doubles as the pluginpath (go build derives it from
	// the main package's import path, and the symbol names must match it),
	// so it is made unique per build: a rebuild after artifact corruption
	// then loads as a distinct plugin instead of colliding with the
	// already-opened one.
	seq := buildSeq.Add(1)
	modPath := fmt.Sprintf("groverjit/%s/p%d-%d", key[:16], os.Getpid(), seq)
	gomod := fmt.Sprintf("module %s\n\ngo %s\n", modPath, goLangVersion())
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte(gomod), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(mod, "main.go"), []byte(src), 0o644); err != nil {
		return err
	}
	if dump := os.Getenv("GROVER_JIT_DUMP"); dump != "" {
		_ = os.WriteFile(filepath.Join(dump, key[:16]+".go"), []byte(src), 0o644)
	}

	out := fmt.Sprintf("%s.tmp%d.%d", artifact, os.Getpid(), seq)
	args := []string{"build"}
	if transport == "plugin" {
		args = append(args, "-buildmode=plugin")
	}
	args = append(args, "-o", out, ".")
	cmd := exec.CommandContext(ctx, gobin, args...)
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "CGO_ENABLED=1", "GOWORK=off")
	if b, err := cmd.CombinedOutput(); err != nil {
		os.Remove(out)
		msg := string(b)
		if len(msg) > 2000 {
			msg = msg[:2000] + "..."
		}
		return fmt.Errorf("jit: go build (%s) failed: %v\n%s", transport, err, msg)
	}
	return os.Rename(out, artifact)
}

// loadArtifact opens a built artifact through its transport.
func loadArtifact(path, transport string) (*moduleTransport, error) {
	if transport == "worker" {
		w, err := startWorker(path)
		if err != nil {
			return nil, err
		}
		return &moduleTransport{worker: w}, nil
	}
	p, err := plugin.Open(path)
	if err != nil {
		return nil, err
	}
	sym, err := p.Lookup("NewRunner")
	if err != nil {
		return nil, err
	}
	fn, ok := sym.(func() nativeGroupFn)
	if !ok {
		return nil, fmt.Errorf("jit: NewRunner has unexpected type %T", sym)
	}
	return &moduleTransport{newRunner: fn}, nil
}

// workerProc is the subprocess transport: a long-lived worker built
// from the generated source, spoken to over a gob pipe. Launches are
// whole-launch requests, serialized by the mutex (the worker itself is
// single-threaded).
type workerProc struct {
	mu  sync.Mutex
	cmd *exec.Cmd
	bw  *bufio.Writer
	enc *gob.Encoder
	dec *gob.Decoder
}

// workerReq/workerResp mirror the generated worker's gob frames (gob
// matches by struct field names, so the host-side type names are free).
type workerReq struct {
	Kernel     int
	Gmem       []byte
	LocalBytes int
	PrivBytes  int
	ParamI     []int64
	ParamF     []float64
	Geom       []int64 // gsz0..2, lsz0..2, ngrp0..2
}

type workerResp struct {
	Gmem []byte
	Err  string
}

func startWorker(path string) (*workerProc, error) {
	cmd := exec.Command(path)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(stdin)
	return &workerProc{
		cmd: cmd,
		bw:  bw,
		enc: gob.NewEncoder(bw),
		dec: gob.NewDecoder(bufio.NewReader(stdout)),
	}, nil
}

// launch runs one whole kernel launch in the worker and returns the
// worker's view of global memory.
func (w *workerProc) launch(req *workerReq) (*workerResp, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("jit: native worker send: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return nil, fmt.Errorf("jit: native worker send: %w", err)
	}
	var resp workerResp
	if err := w.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("jit: native worker receive: %w", err)
	}
	return &resp, nil
}

// launchNativeWorker runs a whole launch through the subprocess
// transport and copies the resulting global memory back.
func launchNativeWorker(nat *nativeKernel, gmem []byte,
	localTotal, stack int, paramI []int64, paramF []float64, geom9 []int64) error {
	resp, err := nat.mod.worker.launch(&workerReq{
		Kernel:     nat.index,
		Gmem:       gmem,
		LocalBytes: localTotal,
		PrivBytes:  stack,
		ParamI:     paramI,
		ParamF:     paramF,
		Geom:       geom9,
	})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	copy(gmem, resp.Gmem)
	return nil
}
