package jit

import (
	"errors"
	"fmt"

	"grover/internal/analysis"
	"grover/internal/analysis/graph"
	"grover/internal/bcode"
	"grover/internal/ir"
)

// stepFn is one pre-bound step of a closure-threaded program: it
// executes the instruction run starting at its pc for the masked lanes
// and returns the next pc to thread to, or stepDone when the masked
// lanes left the segment (divergence, return, barrier) with fr.pcs
// already updated.
type stepFn func(g *groupState, depth int, fr *frame, mask []int32) (int32, error)

// opFn is one pre-bound non-control instruction. full is true when mask
// is the identity permutation of all lanes, letting the closure take a
// dense bounds-check-eliminated loop instead of a masked sweep.
type opFn func(g *groupState, fr *frame, mask []int32, full bool) error

// program is one function compiled to a closure-threaded region
// program: a step closure per pc plus the scheduling metadata the
// reconvergence scheduler shares with wgvec.
type program struct {
	bf      *bcode.BFunc
	blockOf []int32 // pc → block index
	prio    []int32 // block index → scheduling priority (RPO position)
	steps   []stepFn
	// costs[pc] aggregates the retire/traffic counters (per lane) of every
	// instruction the step at pc executes — the whole straight-line run
	// including its terminator, or the fused compare+branch pair — so the
	// profiler can account one lookup per step invocation.
	costs []runCost
}

// runCost is the per-lane profiler cost of one step closure.
type runCost struct {
	retire int64
	loads  int64
	stores int64
}

func instCost(in *bcode.Inst) runCost {
	c := runCost{retire: int64(in.Retire)}
	switch in.Op.MemKind() {
	case bcode.MemLoad:
		c.loads = 1
	case bcode.MemStore:
		c.stores = 1
	}
	return c
}

func (a runCost) add(b runCost) runCost {
	return runCost{retire: a.retire + b.retire, loads: a.loads + b.loads, stores: a.stores + b.stores}
}

var errBarrierInCall = errors.New("vm: barrier inside a function call is unsupported")

// lane0Mask is the shared single-lane mask for uniform execute-once.
var lane0Mask = []int32{0}

// isControl reports whether the opcode ends a straight-line run: the
// scheduler and step terminators handle these, never opFns.
func isControl(op bcode.Opcode) bool {
	switch op {
	case bcode.OpJmp, bcode.OpCondBrI, bcode.OpCondBrF,
		bcode.OpRet, bcode.OpRetI, bcode.OpRetF, bcode.OpRetVI, bcode.OpRetVF,
		bcode.OpBarrier, bcode.OpCall, bcode.OpTrap:
		return true
	}
	return false
}

// newProgram compiles one function to a closure-threaded program. root
// marks functions whose parameters are work-group-uniform (kernels
// never called as functions); only those get uniform execute-once
// treatment, mirroring wgvec so the two backends broadcast in exactly
// the same cases.
func newProgram(bf *bcode.BFunc, root bool) *program {
	fn := bf.Fn
	pr := &program{
		bf:      bf,
		blockOf: make([]int32, len(bf.Code)),
	}
	nb := len(fn.Blocks)
	if nb == 0 {
		pr.prio = []int32{0}
	} else {
		for bi := 0; bi < nb; bi++ {
			start := bf.BlockStart[bi]
			end := int32(len(bf.Code))
			if bi+1 < nb {
				end = bf.BlockStart[bi+1]
			}
			for pc := start; pc < end; pc++ {
				pr.blockOf[pc] = int32(bi)
			}
		}
		cfg := analysis.NewCFG(fn)
		// Reverse post-order places every block of a divergence region
		// before the region's immediate post-dominator (for reducible
		// CFGs), so the min-priority scheduler keeps divergent work-items
		// inside the region until all of them arrive at the reconvergence
		// point.
		pr.prio = make([]int32, nb)
		for i := range pr.prio {
			pr.prio[i] = int32(nb) // unreachable blocks last; never executed
		}
		for i, b := range graph.ReversePostOrder(nb, cfg.Succ, 0) {
			pr.prio[b] = int32(i)
		}
	}

	uniform := make([]bool, len(bf.Code))
	if root && nb > 0 {
		cfg := analysis.NewCFG(fn)
		u := analysis.ComputeUniformity(cfg, analysis.ComputeReachingDefs(cfg))
		for pc := range bf.Code {
			uniform[pc] = uniformInst(&bf.Code[pc], u)
		}
	}

	pr.compileSteps(uniform)
	return pr
}

// compileSteps lowers the bytecode to one step closure per pc. Steps
// are built back to front so a straight-line run can capture its
// terminator step directly. A compare feeding an immediately following
// conditional branch is fused into one closure that writes the compare
// column and splits the mask in a single sweep.
func (pr *program) compileSteps(uniform []bool) {
	bf := pr.bf
	code := bf.Code
	n := len(code)
	pr.steps = make([]stepFn, n)

	// Fused compare+branch sites: the compare pc acts as a run
	// terminator. The compare column is still written, so any other
	// reader of the register sees the same value as under wgvec.
	fused := make([]bool, n)
	for pc := 0; pc+1 < n; pc++ {
		if code[pc+1].Op == bcode.OpCondBrI && code[pc+1].A == code[pc].A &&
			isFusableCmp(code[pc].Op) && pr.blockOf[pc] == pr.blockOf[pc+1] {
			fused[pc] = true
		}
	}

	// Per-step profiler cost aggregates, back to front: a control step
	// covers itself, a fused compare covers the pair, and a straight-line
	// pc covers its own op plus everything the following step executes
	// (runs capture their terminator, so the chain bottoms out there).
	pr.costs = make([]runCost, n)
	for pc := n - 1; pc >= 0; pc-- {
		in := &code[pc]
		switch {
		case fused[pc]:
			pr.costs[pc] = instCost(in).add(instCost(&code[pc+1]))
		case isControl(in.Op):
			pr.costs[pc] = instCost(in)
		default:
			pr.costs[pc] = instCost(in)
			if pc+1 < n {
				pr.costs[pc] = pr.costs[pc].add(pr.costs[pc+1])
			}
		}
	}

	// Pre-compile every non-control instruction to its opFn.
	ops := make([]opFn, n)
	for pc := 0; pc < n; pc++ {
		in := &code[pc]
		if isControl(in.Op) || fused[pc] {
			continue
		}
		ops[pc] = pr.compileOp(in, uniform[pc])
	}

	for pc := n - 1; pc >= 0; pc-- {
		in := &code[pc]
		switch {
		case fused[pc]:
			pr.steps[pc] = makeCmpBr(in, &code[pc+1])
		case isControl(in.Op):
			pr.steps[pc] = pr.compileControl(int32(pc), in)
		default:
			// Straight-line run: all opFns up to the next terminator,
			// then the terminator step itself.
			end := pc + 1
			for end < n && ops[end] != nil {
				end++
			}
			var term stepFn
			if end < n {
				term = pr.steps[end]
			} else {
				// bcode functions always end in a terminator; defend
				// against a malformed program anyway.
				term = func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
					return stepDone, laneErr(mask[0], errors.New("jit: fell off end of code"))
				}
			}
			pr.steps[pc] = makeRun(ops[pc:end], term)
		}
	}
}

// makeRun chains a straight-line run of pre-bound ops into one step.
func makeRun(run []opFn, term stepFn) stepFn {
	if len(run) == 1 {
		op := run[0]
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			if err := op(g, fr, mask, len(mask) == fr.n); err != nil {
				return stepDone, err
			}
			return term(g, depth, fr, mask)
		}
	}
	return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
		full := len(mask) == fr.n
		for _, op := range run {
			if err := op(g, fr, mask, full); err != nil {
				return stepDone, err
			}
		}
		return term(g, depth, fr, mask)
	}
}

// compileControl builds the step for one control instruction.
func (pr *program) compileControl(pc int32, in *bcode.Inst) stepFn {
	switch in.Op {
	case bcode.OpJmp:
		tgt := int32(in.Imm)
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			return tgt, nil
		}

	case bcode.OpCondBrI:
		a, t, f := in.A, int32(in.Imm), in.N
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			x := fr.ri[a]
			segT, segF := g.maskT[:0], g.maskF[:0]
			for _, l := range mask {
				if x[l] != 0 {
					segT = append(segT, l)
				} else {
					segF = append(segF, l)
				}
			}
			g.maskT, g.maskF = segT, segF
			return branchOutcome(fr, segT, segF, t, f)
		}

	case bcode.OpCondBrF:
		a, t, f := in.A, int32(in.Imm), in.N
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			x := fr.rf[a]
			segT, segF := g.maskT[:0], g.maskF[:0]
			for _, l := range mask {
				if x[l] != 0 {
					segT = append(segT, l)
				} else {
					segF = append(segF, l)
				}
			}
			g.maskT, g.maskF = segT, segF
			return branchOutcome(fr, segT, segF, t, f)
		}

	case bcode.OpRet, bcode.OpRetI, bcode.OpRetF, bcode.OpRetVI, bcode.OpRetVF:
		op, b := in.Op, in.B
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			if depth == 0 {
				for _, l := range mask {
					fr.pcs[l] = -1
				}
				return stepDone, nil
			}
			retLanes(fr, op, b, mask)
			return stepDone, nil
		}

	case bcode.OpBarrier:
		irIn := in.In
		resume := pc + 1
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			if depth != 0 {
				return stepDone, laneErr(mask[0], errBarrierInCall)
			}
			for _, l := range mask {
				fr.pcs[l] = -2
				g.barInstr[l] = irIn
				g.resumePC[l] = resume
			}
			return stepDone, nil
		}

	case bcode.OpTrap:
		err := errors.New(pr.bf.Aux[in.Imm].Name)
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			return stepDone, laneErr(mask[0], err)
		}

	case bcode.OpCall:
		inst := in
		next := pc + 1
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			if err := g.callStep(depth, fr, inst, mask); err != nil {
				return stepDone, err
			}
			return next, nil
		}
	}
	panic(fmt.Sprintf("jit: compileControl on non-control opcode %d", in.Op))
}

// branchOutcome resolves a conditional branch after the mask split: a
// branch all active lanes agree on continues the segment inline; only
// genuine divergence parks the lanes and returns to the scheduler.
func branchOutcome(fr *frame, segT, segF []int32, t, f int32) (int32, error) {
	if len(segF) == 0 {
		return t, nil
	}
	if len(segT) == 0 {
		return f, nil
	}
	for _, l := range segT {
		fr.pcs[l] = t
	}
	for _, l := range segF {
		fr.pcs[l] = f
	}
	return stepDone, nil
}

// uniformInst mirrors wgvec's uniform-instruction predicate exactly:
// the two backends must broadcast in the same cases to stay
// bit-identical even where the uniformity analysis is conservative.
func uniformInst(in *bcode.Inst, u *analysis.Uniformity) bool {
	switch in.Op {
	case bcode.OpNop, bcode.OpJmp, bcode.OpCondBrI, bcode.OpCondBrF,
		bcode.OpRet, bcode.OpRetI, bcode.OpRetF, bcode.OpRetVI, bcode.OpRetVF,
		bcode.OpBarrier, bcode.OpCall, bcode.OpTrap:
		return false
	}
	src := in.In
	if src == nil || src.Block == nil || u.DivergentBlock(src.Block) {
		return false
	}
	if src.Op == ir.OpStore {
		for _, a := range src.Args {
			if u.Divergent(a) {
				return false
			}
		}
		return true
	}
	if !src.Producing() {
		return false
	}
	return !u.Divergent(src)
}
