package jit

import (
	"fmt"

	"grover/internal/bcode"
	"grover/internal/clc"
	"grover/internal/ir"
)

// arenaExpr is the arena-selection expression for a memory
// instruction. When the access's IR pointer type pins the address
// space statically (the usual case — sema tracks spaces through index
// and convert chains, and the verifier enforces pointer chain shape),
// the arena is named directly, skipping the runtime tag switch and
// letting the compiler see a loop-invariant slice for bounds-check
// elimination. The mapping mirrors vm.MakeAddr (constant shares the
// global arena). Falls back to the runtime decode when the IR operand
// is unavailable.
func arenaExpr(in *bcode.Inst) string {
	if sp, ok := memSpace(in); ok {
		switch sp {
		case clc.ASGlobal, clc.ASConstant:
			return "e.gmem"
		case clc.ASLocal:
			return "e.lmem"
		case clc.ASPrivate:
			return "e.pmem"
		}
	}
	return "e.arena(ta >> 62)"
}

// memCheck emits the scalar-access prologue: address, tag decode, and
// the combined bounds check with bcode's diagnostics on failure.
// Leaves ab/tb bound for the access expression.
func (fe *fnEmit) memCheck(in *bcode.Inst, sz int, store bool) {
	if fusedMem(in.Op) {
		fe.wl("ta = uint64(r%d + r%d*%d)", in.B, in.C, in.Imm)
	} else {
		fe.wl("ta = uint64(r%d)", in.B)
	}
	fe.wl("tb = ta & addrMask")
	fe.wl("ab = %s", arenaExpr(in))
	fe.wl("if int(tb)+%d > len(ab) {", sz)
	fe.wl("%s", fe.errRet(fmt.Sprintf("e.memErr(ta, %d, %v)", sz, store)))
	fe.wl("}")
}

// vecCheck is memCheck for a whole contiguous vector access; the error
// path re-scans per element for bcode's exact first-failure diagnostic.
func (fe *fnEmit) vecCheck(in *bcode.Inst, es, lanes int, store bool) {
	if fusedMem(in.Op) {
		fe.wl("ta = uint64(r%d + r%d*%d)", in.B, in.C, in.Imm)
	} else {
		fe.wl("ta = uint64(r%d)", in.B)
	}
	fe.wl("tb = ta & addrMask")
	fe.wl("ab = %s", arenaExpr(in))
	fe.wl("if int(tb)+%d > len(ab) {", lanes*es)
	fe.wl("%s", fe.errRet(fmt.Sprintf("e.vecErr(ta, %d, %d, %v)", es, lanes, store)))
	fe.wl("}")
}

func elemOff(i, es int) string {
	if i == 0 {
		return "tb"
	}
	return fmt.Sprintf("tb+%d", i*es)
}

// emitInst lowers one bytecode instruction to Go statements with the
// per-lane interpreter's exact value semantics and error strings.
func (fe *fnEmit) emitInst(pc int, in *bcode.Inst) {
	bf := fe.bf
	A, B, C := in.A, in.B, in.C
	k := clc.ScalarKind(in.Kind)
	if s := fe.promAt[pc]; s != nil {
		fe.emitPromAccess(in, s)
		return
	}
	switch in.Op {
	case bcode.OpNop:

	case bcode.OpJmp:
		if int(in.Imm) != pc+1 {
			fe.wl("goto L%d", in.Imm)
		}
	case bcode.OpCondBrI, bcode.OpCondBrF:
		cond := fmt.Sprintf("r%d != 0", A)
		if in.Op == bcode.OpCondBrF {
			cond = fmt.Sprintf("f%d != 0", A)
		}
		t, f := int(in.Imm), int(in.N)
		switch {
		case f == pc+1:
			fe.wl("if %s {", cond)
			fe.wl("goto L%d", t)
			fe.wl("}")
		case t == pc+1:
			fe.wl("if !(%s) {", cond)
			fe.wl("goto L%d", f)
			fe.wl("}")
		default:
			fe.wl("if %s {", cond)
			fe.wl("goto L%d", t)
			fe.wl("}")
			fe.wl("goto L%d", f)
		}

	case bcode.OpRet, bcode.OpRetI, bcode.OpRetF, bcode.OpRetVI, bcode.OpRetVF:
		if fe.kernel {
			fe.emitPmWriteback()
			fe.wl("return 0, nil")
			return
		}
		switch in.Op {
		case bcode.OpRetI:
			fe.wl("return r%d, 0, nil, nil, nil", B)
		case bcode.OpRetF:
			fe.wl("return 0, f%d, nil, nil, nil", B)
		case bcode.OpRetVI:
			fe.wl("return 0, 0, v%d[:], nil, nil", B)
		case bcode.OpRetVF:
			fe.wl("return 0, 0, nil, w%d[:], nil", B)
		default:
			fe.wl("return 0, 0, nil, nil, nil")
		}

	case bcode.OpBarrier:
		if !fe.kernel {
			fe.wl("%s", fe.errRet("errBarrierCall"))
			return
		}
		site := fe.barSite[pc]
		if !fe.dry {
			fe.emitSpill(fe.barLive[site], false)
		}
		fe.wl("return %d, nil", site)
		fe.wl("B%d:", site)

	case bcode.OpTrap:
		fe.wl("%s", fe.errRet(fmt.Sprintf("errors.New(%q)", bf.Aux[in.Imm].Name)))

	case bcode.OpCall:
		fe.emitCall(in)

	case bcode.OpConstI:
		fe.wl("r%d = %d", A, in.Imm)
	case bcode.OpZeroI:
		fe.wl("r%d = 0", A)
	case bcode.OpZeroF:
		fe.wl("f%d = 0", A)
	case bcode.OpMovI:
		fe.wl("r%d = r%d", A, B)
	case bcode.OpMovF:
		fe.wl("f%d = f%d", A, B)

	case bcode.OpGID:
		fe.wl("r%d = e.gid[%d]", A, in.Imm)
	case bcode.OpLID:
		fe.wl("r%d = e.lid[%d]", A, in.Imm)
	case bcode.OpGRP:
		fe.wl("r%d = e.grp[%d]", A, in.Imm)
	case bcode.OpGSZ:
		fe.wl("r%d = e.gsz[%d]", A, in.Imm)
	case bcode.OpLSZ:
		fe.wl("r%d = e.lsz[%d]", A, in.Imm)
	case bcode.OpNGRP:
		fe.wl("r%d = e.ngrp[%d]", A, in.Imm)

	case bcode.OpWIQ:
		// Runtime dimension: out-of-range dims answer 0. ta snapshots the
		// dim register before the destination (possibly the same register)
		// is written.
		fe.wl("ta = uint64(r%d)", B)
		fe.wl("r%d = 0", A)
		var field string
		switch in.N {
		case bcode.QGlobalID:
			field = "e.gid[ta]"
		case bcode.QLocalID:
			field = "e.lid[ta]"
		case bcode.QGroupID:
			field = "e.grp[ta]"
		case bcode.QGlobalSize:
			field = "e.gsz[ta]"
		case bcode.QLocalSize:
			field = "e.lsz[ta]"
		case bcode.QNumGroups:
			field = "e.ngrp[ta]"
		case bcode.QWorkDim:
			field = "3"
		}
		if field != "" {
			fe.wl("if ta < 3 {")
			fe.wl("r%d = %s", A, field)
			fe.wl("}")
		}

	case bcode.OpAllocaP:
		// Private tag is 0, so the tagged address is the frame offset.
		if fe.kernel {
			fe.wl("r%d = %d", A, in.Imm)
		} else {
			fe.wl("r%d = int64(fb) + %d", A, in.Imm)
		}
	case bcode.OpAllocaL:
		fe.wl("r%d = %d", A, in.Imm)
	case bcode.OpIndex:
		fe.wl("r%d = r%d + r%d*%d", A, B, C, in.Imm)
	case bcode.OpIndexC:
		fe.wl("r%d = r%d + %d", A, B, in.Imm)

	case bcode.OpLdI8, bcode.OpLdXI8:
		fe.memCheck(in, int(in.N), false)
		fe.wl("r%d = int64(int8(ab[tb]))", A)
	case bcode.OpLdU8, bcode.OpLdXU8:
		fe.memCheck(in, int(in.N), false)
		fe.wl("r%d = int64(ab[tb])", A)
	case bcode.OpLdI16, bcode.OpLdXI16:
		fe.memCheck(in, int(in.N), false)
		fe.wl("r%d = int64(int16(binary.LittleEndian.Uint16(ab[tb:])))", A)
	case bcode.OpLdU16, bcode.OpLdXU16:
		fe.memCheck(in, int(in.N), false)
		fe.wl("r%d = int64(binary.LittleEndian.Uint16(ab[tb:]))", A)
	case bcode.OpLdI32, bcode.OpLdXI32:
		fe.memCheck(in, int(in.N), false)
		fe.wl("r%d = int64(int32(binary.LittleEndian.Uint32(ab[tb:])))", A)
	case bcode.OpLdU32, bcode.OpLdXU32:
		fe.memCheck(in, int(in.N), false)
		fe.wl("r%d = int64(binary.LittleEndian.Uint32(ab[tb:]))", A)
	case bcode.OpLdI64, bcode.OpLdXI64:
		fe.memCheck(in, int(in.N), false)
		fe.wl("r%d = int64(binary.LittleEndian.Uint64(ab[tb:]))", A)
	case bcode.OpLdF32, bcode.OpLdXF32:
		fe.memCheck(in, int(in.N), false)
		fe.wl("f%d = float64(math.Float32frombits(binary.LittleEndian.Uint32(ab[tb:])))", A)
	case bcode.OpLdF64, bcode.OpLdXF64:
		fe.memCheck(in, int(in.N), false)
		fe.wl("f%d = math.Float64frombits(binary.LittleEndian.Uint64(ab[tb:]))", A)

	case bcode.OpStI8, bcode.OpStXI8:
		fe.memCheck(in, int(in.N), true)
		fe.wl("ab[tb] = byte(r%d)", A)
	case bcode.OpStI16, bcode.OpStXI16:
		fe.memCheck(in, int(in.N), true)
		fe.wl("binary.LittleEndian.PutUint16(ab[tb:], uint16(r%d))", A)
	case bcode.OpStI32, bcode.OpStXI32:
		fe.memCheck(in, int(in.N), true)
		fe.wl("binary.LittleEndian.PutUint32(ab[tb:], uint32(r%d))", A)
	case bcode.OpStI64, bcode.OpStXI64:
		fe.memCheck(in, int(in.N), true)
		fe.wl("binary.LittleEndian.PutUint64(ab[tb:], uint64(r%d))", A)
	case bcode.OpStF32, bcode.OpStXF32:
		fe.memCheck(in, int(in.N), true)
		fe.wl("binary.LittleEndian.PutUint32(ab[tb:], math.Float32bits(float32(f%d)))", A)
	case bcode.OpStF64, bcode.OpStXF64:
		fe.memCheck(in, int(in.N), true)
		fe.wl("binary.LittleEndian.PutUint64(ab[tb:], math.Float64bits(f%d))", A)

	case bcode.OpLdVI, bcode.OpLdXVI:
		es, lanes := k.Size(), int(in.Sub)
		fe.vecCheck(in, es, lanes, false)
		for i := 0; i < lanes; i++ {
			fe.wl("v%d[%d] = %s", A, i, ldIntE(k, elemOff(i, es)))
		}
	case bcode.OpLdVF, bcode.OpLdXVF:
		es, lanes := k.Size(), int(in.Sub)
		fe.vecCheck(in, es, lanes, false)
		for i := 0; i < lanes; i++ {
			fe.wl("w%d[%d] = %s", A, i, ldFltE(k, elemOff(i, es)))
		}
	case bcode.OpStVI, bcode.OpStXVI:
		es, lanes := k.Size(), int(in.Sub)
		fe.vecCheck(in, es, lanes, true)
		for i := 0; i < lanes; i++ {
			fe.wl("%s", stIntS(k, elemOff(i, es), fmt.Sprintf("v%d[%d]", A, i)))
		}
	case bcode.OpStVF, bcode.OpStXVF:
		es, lanes := k.Size(), int(in.Sub)
		fe.vecCheck(in, es, lanes, true)
		for i := 0; i < lanes; i++ {
			fe.wl("%s", stFltS(k, elemOff(i, es), fmt.Sprintf("w%d[%d]", A, i)))
		}

	case bcode.OpAddI:
		fe.wl("r%d = r%d + r%d", A, B, C)
	case bcode.OpSubI:
		fe.wl("r%d = r%d - r%d", A, B, C)
	case bcode.OpMulI:
		fe.wl("r%d = r%d * r%d", A, B, C)
	case bcode.OpAndI:
		fe.wl("r%d = r%d & r%d", A, B, C)
	case bcode.OpOrI:
		fe.wl("r%d = r%d | r%d", A, B, C)
	case bcode.OpXorI:
		fe.wl("r%d = r%d ^ r%d", A, B, C)
	case bcode.OpAddI32:
		fe.wl("r%d = int64(int32(r%d + r%d))", A, B, C)
	case bcode.OpSubI32:
		fe.wl("r%d = int64(int32(r%d - r%d))", A, B, C)
	case bcode.OpMulI32:
		fe.wl("r%d = int64(int32(r%d * r%d))", A, B, C)
	case bcode.OpAddU32:
		fe.wl("r%d = int64(uint32(r%d + r%d))", A, B, C)
	case bcode.OpSubU32:
		fe.wl("r%d = int64(uint32(r%d - r%d))", A, B, C)
	case bcode.OpMulU32:
		fe.wl("r%d = int64(uint32(r%d * r%d))", A, B, C)

	case bcode.OpIntBin:
		fe.emitIntBin(fmt.Sprintf("r%d", A), fmt.Sprintf("r%d", B), fmt.Sprintf("r%d", C),
			ir.Op(in.Sub), k)

	case bcode.OpAddF:
		fe.wl("f%d = f%d + f%d", A, B, C)
	case bcode.OpSubF:
		fe.wl("f%d = f%d - f%d", A, B, C)
	case bcode.OpMulF:
		fe.wl("f%d = f%d * f%d", A, B, C)
	case bcode.OpDivF:
		fe.wl("f%d = f%d / f%d", A, B, C)
	case bcode.OpAddF32:
		fe.wl("f%d = float64(float32(f%d + f%d))", A, B, C)
	case bcode.OpSubF32:
		fe.wl("f%d = float64(float32(f%d - f%d))", A, B, C)
	case bcode.OpMulF32:
		fe.wl("f%d = float64(float32(f%d * f%d))", A, B, C)
	case bcode.OpDivF32:
		fe.wl("f%d = float64(float32(f%d / f%d))", A, B, C)

	case bcode.OpFltBin:
		fe.wl("f%d = %s", A, fltBinE(ir.Op(in.Sub), k,
			fmt.Sprintf("f%d", B), fmt.Sprintf("f%d", C)))

	case bcode.OpNegF:
		fe.wl("f%d = -f%d", A, B)
	case bcode.OpNegI:
		fe.wl("r%d = %s", A, normE(k, fmt.Sprintf("-r%d", B)))
	case bcode.OpNotI:
		fe.wl("r%d = %s", A, normE(k, fmt.Sprintf("^r%d", B)))

	case bcode.OpVNegF:
		for i := 0; i < bf.VecFLens[A]; i++ {
			fe.wl("w%d[%d] = -w%d[%d]", A, i, B, i)
		}
	case bcode.OpVNegI:
		for i := 0; i < bf.VecILens[A]; i++ {
			fe.wl("v%d[%d] = %s", A, i, normE(k, fmt.Sprintf("-v%d[%d]", B, i)))
		}
	case bcode.OpVNotI:
		for i := 0; i < bf.VecILens[A]; i++ {
			fe.wl("v%d[%d] = %s", A, i, normE(k, fmt.Sprintf("^v%d[%d]", B, i)))
		}

	case bcode.OpEqI:
		fe.wl("r%d = b2i(r%d == r%d)", A, B, C)
	case bcode.OpNeI:
		fe.wl("r%d = b2i(r%d != r%d)", A, B, C)
	case bcode.OpLtI:
		fe.wl("r%d = b2i(r%d < r%d)", A, B, C)
	case bcode.OpLeI:
		fe.wl("r%d = b2i(r%d <= r%d)", A, B, C)
	case bcode.OpGtI:
		fe.wl("r%d = b2i(r%d > r%d)", A, B, C)
	case bcode.OpGeI:
		fe.wl("r%d = b2i(r%d >= r%d)", A, B, C)
	case bcode.OpLtU:
		fe.wl("r%d = b2i(uint64(r%d) < uint64(r%d))", A, B, C)
	case bcode.OpLeU:
		fe.wl("r%d = b2i(uint64(r%d) <= uint64(r%d))", A, B, C)
	case bcode.OpGtU:
		fe.wl("r%d = b2i(uint64(r%d) > uint64(r%d))", A, B, C)
	case bcode.OpGeU:
		fe.wl("r%d = b2i(uint64(r%d) >= uint64(r%d))", A, B, C)
	case bcode.OpEqF:
		fe.wl("r%d = b2i(f%d == f%d)", A, B, C)
	case bcode.OpNeF:
		fe.wl("r%d = b2i(f%d != f%d)", A, B, C)
	case bcode.OpLtF:
		fe.wl("r%d = b2i(f%d < f%d)", A, B, C)
	case bcode.OpLeF:
		fe.wl("r%d = b2i(f%d <= f%d)", A, B, C)
	case bcode.OpGtF:
		fe.wl("r%d = b2i(f%d > f%d)", A, B, C)
	case bcode.OpGeF:
		fe.wl("r%d = b2i(f%d >= f%d)", A, B, C)

	case bcode.OpConvI:
		fe.wl("r%d = %s", A, normE(k, fmt.Sprintf("r%d", B)))
	case bcode.OpI2F:
		fe.wl("f%d = %s", A, roundE(k, fmt.Sprintf("float64(r%d)", B)))
	case bcode.OpU2F:
		fe.wl("f%d = %s", A, roundE(k, fmt.Sprintf("float64(uint64(r%d))", B)))
	case bcode.OpF2I:
		fe.wl("if f%d != f%d {", B, B)
		fe.wl("r%d = 0", A)
		fe.wl("} else {")
		fe.wl("r%d = %s", A, normE(k, fmt.Sprintf("int64(f%d)", B)))
		fe.wl("}")
	case bcode.OpF2F32:
		fe.wl("f%d = float64(float32(f%d))", A, B)

	case bcode.OpVConv:
		fe.emitVConv(in)

	case bcode.OpVAddF, bcode.OpVSubF, bcode.OpVMulF, bcode.OpVDivF:
		op := map[bcode.Opcode]string{
			bcode.OpVAddF: "+", bcode.OpVSubF: "-", bcode.OpVMulF: "*", bcode.OpVDivF: "/",
		}[in.Op]
		for i := 0; i < bf.VecFLens[A]; i++ {
			fe.wl("w%d[%d] = %s", A, i,
				roundE(k, fmt.Sprintf("w%d[%d] %s w%d[%d]", B, i, op, C, i)))
		}
	case bcode.OpVBinF:
		for i := 0; i < bf.VecFLens[A]; i++ {
			fe.wl("w%d[%d] = %s", A, i, fltBinE(ir.Op(in.Sub), k,
				fmt.Sprintf("w%d[%d]", B, i), fmt.Sprintf("w%d[%d]", C, i)))
		}
	case bcode.OpVBinI:
		for i := 0; i < bf.VecILens[A]; i++ {
			fe.emitIntBin(fmt.Sprintf("v%d[%d]", A, i), fmt.Sprintf("v%d[%d]", B, i),
				fmt.Sprintf("v%d[%d]", C, i), ir.Op(in.Sub), k)
		}

	case bcode.OpExtI:
		fe.wl("r%d = v%d[%d]", A, B, in.Imm)
	case bcode.OpExtF:
		fe.wl("f%d = w%d[%d]", A, B, in.Imm)
	case bcode.OpInsI:
		if A != B {
			m := min(bf.VecILens[A], bf.VecILens[B])
			for i := 0; i < m; i++ {
				fe.wl("v%d[%d] = v%d[%d]", A, i, B, i)
			}
		}
		fe.wl("v%d[%d] = r%d", A, in.Imm, C)
	case bcode.OpInsF:
		if A != B {
			m := min(bf.VecFLens[A], bf.VecFLens[B])
			for i := 0; i < m; i++ {
				fe.wl("w%d[%d] = w%d[%d]", A, i, B, i)
			}
		}
		fe.wl("w%d[%d] = f%d", A, in.Imm, C)
	case bcode.OpShufI:
		// Sequential ascending assignments replicate bcode's behaviour when
		// destination and source alias.
		for i, c := range bf.Aux[in.Imm].Comps {
			fe.wl("v%d[%d] = v%d[%d]", A, i, B, c)
		}
	case bcode.OpShufF:
		for i, c := range bf.Aux[in.Imm].Comps {
			fe.wl("w%d[%d] = w%d[%d]", A, i, B, c)
		}
	case bcode.OpBuildI:
		for i, r := range bf.Aux[in.Imm].Refs {
			fe.wl("v%d[%d] = r%d", A, i, r.Idx)
		}
	case bcode.OpBuildF:
		for i, r := range bf.Aux[in.Imm].Refs {
			fe.wl("w%d[%d] = f%d", A, i, r.Idx)
		}

	case bcode.OpDotVF:
		fe.wl("ts = 0")
		for i := 0; i < bf.VecFLens[B]; i++ {
			fe.wl("ts += w%d[%d] * w%d[%d]", B, i, C, i)
		}
		fe.wl("f%d = %s", A, roundE(k, "ts"))
	case bcode.OpDotSS:
		fe.wl("f%d = f%d * f%d", A, B, C)
	case bcode.OpLenVF:
		fe.wl("ts = 0")
		for i := 0; i < bf.VecFLens[B]; i++ {
			fe.wl("ts += w%d[%d] * w%d[%d]", B, i, B, i)
		}
		fe.wl("f%d = %s", A, roundE(k, "math.Sqrt(ts)"))
	case bcode.OpLenSS:
		fe.wl("f%d = math.Abs(f%d)", A, B)

	case bcode.OpMathF:
		ax := &bf.Aux[in.Imm]
		args := make([]string, len(ax.Refs))
		for i, r := range ax.Refs {
			args[i] = fmt.Sprintf("f%d", r.Idx)
		}
		expr, ok := mathFExpr(ax.Name, args)
		if !ok {
			fe.wl("%s", fe.errRet(fmt.Sprintf("errors.New(%q)",
				fmt.Sprintf("vm: unimplemented float builtin %q", ax.Name))))
			return
		}
		fe.wl("f%d = %s", A, roundE(k, expr))
	case bcode.OpMathI:
		ax := &bf.Aux[in.Imm]
		args := make([]string, len(ax.Refs))
		for i, r := range ax.Refs {
			args[i] = fmt.Sprintf("r%d", r.Idx)
		}
		fe.emitMathI(fmt.Sprintf("r%d", A), ax.Name, k, args)
	case bcode.OpVMathF:
		ax := &bf.Aux[in.Imm]
		args := make([]string, len(ax.Refs))
		for j := 0; j < bf.VecFLens[A]; j++ {
			for i, r := range ax.Refs {
				args[i] = fmt.Sprintf("w%d[%d]", r.Idx, j)
			}
			expr, ok := mathFExpr(ax.Name, args)
			if !ok {
				fe.wl("%s", fe.errRet(fmt.Sprintf("errors.New(%q)",
					fmt.Sprintf("vm: unimplemented float builtin %q", ax.Name))))
				return
			}
			fe.wl("w%d[%d] = %s", A, j, roundE(k, expr))
		}
	case bcode.OpVMathI:
		ax := &bf.Aux[in.Imm]
		args := make([]string, len(ax.Refs))
		for j := 0; j < bf.VecILens[A]; j++ {
			for i, r := range ax.Refs {
				args[i] = fmt.Sprintf("v%d[%d]", r.Idx, j)
			}
			fe.emitMathI(fmt.Sprintf("v%d[%d]", A, j), ax.Name, k, args)
		}

	default:
		// supported() whitelists opcodes before emission; an unhandled one
		// here is a generator bug worth failing loudly on at build time.
		fe.wl("UNHANDLED_OPCODE_%d", in.Op)
	}
}

// emitIntBin emits one vm.intBin evaluation: dst = op(x, y) with C
// wrapping semantics, division guards, and width-masked shifts.
func (fe *fnEmit) emitIntBin(dst, x, y string, op ir.Op, k clc.ScalarKind) {
	uns := k.IsUnsigned()
	w := widthOf(k)
	switch op {
	case ir.OpAdd:
		fe.wl("%s = %s", dst, normE(k, x+" + "+y))
	case ir.OpSub:
		fe.wl("%s = %s", dst, normE(k, x+" - "+y))
	case ir.OpMul:
		fe.wl("%s = %s", dst, normE(k, x+" * "+y))
	case ir.OpAnd:
		fe.wl("%s = %s", dst, normE(k, x+" & "+y))
	case ir.OpOr:
		fe.wl("%s = %s", dst, normE(k, x+" | "+y))
	case ir.OpXor:
		fe.wl("%s = %s", dst, normE(k, x+" ^ "+y))
	case ir.OpDiv:
		fe.wl("if %s == 0 {", y)
		fe.wl("%s", fe.errRet("errDivZero"))
		fe.wl("}")
		if uns {
			fe.wl("%s = %s", dst, normE(k, fmt.Sprintf("int64(uint64(%s) / uint64(%s))", x, y)))
		} else {
			fe.wl("%s = %s", dst, normE(k, x+" / "+y))
		}
	case ir.OpRem:
		fe.wl("if %s == 0 {", y)
		fe.wl("%s", fe.errRet("errRemZero"))
		fe.wl("}")
		if uns {
			fe.wl("%s = %s", dst, normE(k, fmt.Sprintf("int64(uint64(%s) %% uint64(%s))", x, y)))
		} else {
			fe.wl("%s = %s", dst, normE(k, x+" % "+y))
		}
	case ir.OpShl:
		fe.wl("%s = %s", dst, normE(k, fmt.Sprintf("%s << (uint64(%s) & %d)", x, y, w-1)))
	case ir.OpShr:
		if uns {
			mask := "^uint64(0)"
			if w < 64 {
				mask = fmt.Sprintf("uint64(0x%x)", (uint64(1)<<w)-1)
			}
			fe.wl("%s = %s", dst, normE(k,
				fmt.Sprintf("int64((uint64(%s) & %s) >> (uint64(%s) & %d))", x, mask, y, w-1)))
		} else {
			fe.wl("%s = %s", dst, normE(k, fmt.Sprintf("%s >> (uint64(%s) & %d)", x, y, w-1)))
		}
	}
}

// fltBinE is vm.floatBin's expression: the raw op rounded to float32
// when the kind is KFloat.
func fltBinE(op ir.Op, k clc.ScalarKind, x, y string) string {
	var expr string
	switch op {
	case ir.OpAdd:
		expr = x + " + " + y
	case ir.OpSub:
		expr = x + " - " + y
	case ir.OpMul:
		expr = x + " * " + y
	case ir.OpDiv:
		expr = x + " / " + y
	default: // ir.OpRem (supported() admits nothing else)
		expr = fmt.Sprintf("math.Mod(%s, %s)", x, y)
	}
	return roundE(k, expr)
}

// emitMathI emits one vm.scalarMathI evaluation with the kind's
// signedness driving min/max/clamp comparisons.
func (fe *fnEmit) emitMathI(dst, name string, k clc.ScalarKind, a []string) {
	uns := k.IsUnsigned()
	mn, mx := "minS", "maxS"
	if uns {
		mn, mx = "minU", "maxU"
	}
	arg := func(i int) string {
		if i < len(a) {
			return a[i]
		}
		return "0"
	}
	switch name {
	case "min":
		fe.wl("%s = %s(%s, %s)", dst, mn, arg(0), arg(1))
	case "max":
		fe.wl("%s = %s(%s, %s)", dst, mx, arg(0), arg(1))
	case "abs":
		if uns {
			fe.wl("%s = %s", dst, arg(0))
		} else {
			fe.wl("if %s < 0 {", arg(0))
			fe.wl("%s = %s", dst, normE(k, "-"+arg(0)))
			fe.wl("} else {")
			fe.wl("%s = %s", dst, arg(0))
			fe.wl("}")
		}
	case "clamp":
		fe.wl("%s = %s(%s(%s, %s), %s)", dst, mn, mx, arg(0), arg(1), arg(2))
	case "mad":
		fe.wl("%s = %s", dst, normE(k, fmt.Sprintf("%s*%s + %s", arg(0), arg(1), arg(2))))
	default:
		fe.wl("%s", fe.errRet(fmt.Sprintf("errors.New(%q)",
			fmt.Sprintf("vm: unimplemented integer builtin %q", name))))
	}
}

// emitVConv emits a lane-wise vector conversion (vm.convertScalar per
// element; source and destination lane counts match by construction).
func (fe *fnEmit) emitVConv(in *bcode.Inst) {
	from := clc.ScalarKind(in.Sub)
	to := clc.ScalarKind(in.Kind)
	A, B := in.A, in.B
	switch {
	case from.IsFloat() && to.IsFloat():
		for i := 0; i < fe.bf.VecFLens[A]; i++ {
			fe.wl("w%d[%d] = %s", A, i, roundE(to, fmt.Sprintf("w%d[%d]", B, i)))
		}
	case from.IsFloat():
		for i := 0; i < fe.bf.VecILens[A]; i++ {
			fe.wl("if w%d[%d] != w%d[%d] {", B, i, B, i)
			fe.wl("v%d[%d] = 0", A, i)
			fe.wl("} else {")
			fe.wl("v%d[%d] = %s", A, i, normE(to, fmt.Sprintf("int64(w%d[%d])", B, i)))
			fe.wl("}")
		}
	case to.IsFloat():
		src := "float64(v%d[%d])"
		if from.IsUnsigned() {
			src = "float64(uint64(v%d[%d]))"
		}
		for i := 0; i < fe.bf.VecFLens[A]; i++ {
			fe.wl("w%d[%d] = %s", A, i, roundE(to, fmt.Sprintf(src, B, i)))
		}
	default:
		for i := 0; i < fe.bf.VecILens[A]; i++ {
			fe.wl("v%d[%d] = %s", A, i, normE(to, fmt.Sprintf("v%d[%d]", B, i)))
		}
	}
}

// emitCall emits a user-function call with bcode's exact frame, stash,
// and return-merge semantics: scalar destinations zero on a stash-tag
// mismatch, vector destinations stay untouched.
func (fe *fnEmit) emitCall(in *bcode.Inst) {
	bf := fe.bf
	ax := &bf.Aux[in.Imm]
	callee := ax.Callee
	id := fe.g.fnRef(callee)
	spExpr := fmt.Sprintf("%d", bf.FrameSize)
	if !fe.kernel {
		spExpr = fmt.Sprintf("fb + %d", bf.FrameSize)
	}
	fe.wl("{")
	fe.wl("if %s+%d > len(e.pmem) {", spExpr, callee.FrameSize)
	fe.wl("%s", fe.errRet(fmt.Sprintf("errors.New(%q)",
		fmt.Sprintf("vm: private stack overflow calling %s", callee.Fn.Name))))
	fe.wl("}")
	args := make([]string, len(ax.Refs))
	for i, r := range ax.Refs {
		p := callee.Params[i]
		switch p.Bank {
		case bcode.BankInt:
			args[i] = fmt.Sprintf("r%d", r.Idx)
		case bcode.BankFlt:
			args[i] = fmt.Sprintf("f%d", r.Idx)
		case bcode.BankVecI:
			ld, ls := callee.VecILens[p.Idx], bf.VecILens[r.Idx]
			if ld == ls {
				args[i] = fmt.Sprintf("v%d", r.Idx)
				continue
			}
			fe.wl("var ca%d [%d]int64", i, ld)
			for j := 0; j < min(ld, ls); j++ {
				fe.wl("ca%d[%d] = v%d[%d]", i, j, r.Idx, j)
			}
			args[i] = fmt.Sprintf("ca%d", i)
		case bcode.BankVecF:
			ld, ls := callee.VecFLens[p.Idx], bf.VecFLens[r.Idx]
			if ld == ls {
				args[i] = fmt.Sprintf("w%d", r.Idx)
				continue
			}
			fe.wl("var ca%d [%d]float64", i, ld)
			for j := 0; j < min(ld, ls); j++ {
				fe.wl("ca%d[%d] = w%d[%d]", i, j, r.Idx, j)
			}
			args[i] = fmt.Sprintf("ca%d", i)
		}
	}
	call := fmt.Sprintf("fn%d(e, %s", id, spExpr)
	for _, a := range args {
		call += ", " + a
	}
	call += ")"
	fe.wl("ci, cf, cvi, cvf, cerr := %s", call)
	fe.wl("_, _, _, _ = ci, cf, cvi, cvf")
	fe.wl("if cerr != nil {")
	fe.wl("%s", fe.errRet("cerr"))
	fe.wl("}")
	if in.A >= 0 {
		switch bcode.Bank(in.Sub) {
		case bcode.BankInt:
			fe.wl("r%d = ci", in.A)
		case bcode.BankFlt:
			fe.wl("f%d = cf", in.A)
		case bcode.BankVecI:
			fe.wl("if cvi != nil {")
			fe.wl("copy(v%d[:], cvi)", in.A)
			fe.wl("}")
		case bcode.BankVecF:
			fe.wl("if cvf != nil {")
			fe.wl("copy(w%d[:], cvf)", in.A)
			fe.wl("}")
		}
	}
	fe.wl("}")
}
