package jit

import (
	"fmt"
	"math"

	"grover/internal/bcode"
	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

// execGeneric is the shared sweep for the long tail of non-control,
// non-memory opcodes — vector arithmetic, shapes, conversions, and
// runtime-dimension queries. Semantics match wgvec's execOp case for
// case; the hot scalar opcodes never reach here (compileScalar gives
// them dedicated closures), but every opcode stays covered so a
// compiler change cannot silently produce an unexecutable program.
func (g *groupState) execGeneric(fr *frame, in *bcode.Inst, mask []int32) error {
	ri, rf := fr.ri, fr.rf
	switch in.Op {
	case bcode.OpNop:

	case bcode.OpWIQ:
		d, dim := ri[in.A], ri[in.B]
		for _, l := range mask {
			d[l] = g.wiQueryLane(l, in.N, dim[l])
		}

	case bcode.OpVNegF:
		ld := fr.bf.VecFLens[in.A]
		d, s := fr.vf[in.A], fr.vf[in.B]
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				d[o+i] = -s[o+i]
			}
		}
	case bcode.OpVNegI:
		ld := fr.bf.VecILens[in.A]
		d, s := fr.vi[in.A], fr.vi[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				d[o+i] = vm.NormInt(-s[o+i], k)
			}
		}
	case bcode.OpVNotI:
		ld := fr.bf.VecILens[in.A]
		d, s := fr.vi[in.A], fr.vi[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				d[o+i] = vm.NormInt(^s[o+i], k)
			}
		}

	case bcode.OpVConv:
		g.vconvCol(fr, in, mask)

	case bcode.OpVAddF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		if in.Kind == kF32 {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = float64(float32(x[o+i] + y[o+i]))
				}
			}
		} else {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = x[o+i] + y[o+i]
				}
			}
		}
	case bcode.OpVSubF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		if in.Kind == kF32 {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = float64(float32(x[o+i] - y[o+i]))
				}
			}
		} else {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = x[o+i] - y[o+i]
				}
			}
		}
	case bcode.OpVMulF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		if in.Kind == kF32 {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = float64(float32(x[o+i] * y[o+i]))
				}
			}
		} else {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = x[o+i] * y[o+i]
				}
			}
		}
	case bcode.OpVDivF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		if in.Kind == kF32 {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = float64(float32(x[o+i] / y[o+i]))
				}
			}
		} else {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = x[o+i] / y[o+i]
				}
			}
		}
	case bcode.OpVBinF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				v, err := vm.FloatBin(op, k, x[o+i], y[o+i])
				if err != nil {
					return laneErr(l, err)
				}
				d[o+i] = v
			}
		}
	case bcode.OpVBinI:
		ld := fr.bf.VecILens[in.A]
		d, x, y := fr.vi[in.A], fr.vi[in.B], fr.vi[in.C]
		op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				v, err := vm.IntBin(op, k, x[o+i], y[o+i])
				if err != nil {
					return laneErr(l, err)
				}
				d[o+i] = v
			}
		}

	case bcode.OpExtI:
		ls := fr.bf.VecILens[in.B]
		d, s := ri[in.A], fr.vi[in.B]
		for _, l := range mask {
			d[l] = s[int(l)*ls+int(in.Imm)]
		}
	case bcode.OpExtF:
		ls := fr.bf.VecFLens[in.B]
		d, s := rf[in.A], fr.vf[in.B]
		for _, l := range mask {
			d[l] = s[int(l)*ls+int(in.Imm)]
		}
	case bcode.OpInsI:
		ld, ls := fr.bf.VecILens[in.A], fr.bf.VecILens[in.B]
		m := min(ld, ls)
		d, s, v := fr.vi[in.A], fr.vi[in.B], ri[in.C]
		for _, l := range mask {
			copy(d[int(l)*ld:int(l)*ld+m], s[int(l)*ls:int(l)*ls+m])
			d[int(l)*ld+int(in.Imm)] = v[l]
		}
	case bcode.OpInsF:
		ld, ls := fr.bf.VecFLens[in.A], fr.bf.VecFLens[in.B]
		m := min(ld, ls)
		d, s, v := fr.vf[in.A], fr.vf[in.B], rf[in.C]
		for _, l := range mask {
			copy(d[int(l)*ld:int(l)*ld+m], s[int(l)*ls:int(l)*ls+m])
			d[int(l)*ld+int(in.Imm)] = v[l]
		}
	case bcode.OpShufI:
		ld, ls := fr.bf.VecILens[in.A], fr.bf.VecILens[in.B]
		comps := fr.bf.Aux[in.Imm].Comps
		d, s := fr.vi[in.A], fr.vi[in.B]
		for _, l := range mask {
			od, os := int(l)*ld, int(l)*ls
			for i, c := range comps {
				d[od+i] = s[os+int(c)]
			}
		}
	case bcode.OpShufF:
		ld, ls := fr.bf.VecFLens[in.A], fr.bf.VecFLens[in.B]
		comps := fr.bf.Aux[in.Imm].Comps
		d, s := fr.vf[in.A], fr.vf[in.B]
		for _, l := range mask {
			od, os := int(l)*ld, int(l)*ls
			for i, c := range comps {
				d[od+i] = s[os+int(c)]
			}
		}
	case bcode.OpBuildI:
		ld := fr.bf.VecILens[in.A]
		refs := fr.bf.Aux[in.Imm].Refs
		d := fr.vi[in.A]
		for _, l := range mask {
			o := int(l) * ld
			for i, r := range refs {
				d[o+i] = ri[r.Idx][l]
			}
		}
	case bcode.OpBuildF:
		ld := fr.bf.VecFLens[in.A]
		refs := fr.bf.Aux[in.Imm].Refs
		d := fr.vf[in.A]
		for _, l := range mask {
			o := int(l) * ld
			for i, r := range refs {
				d[o+i] = rf[r.Idx][l]
			}
		}

	case bcode.OpDotVF:
		ls := fr.bf.VecFLens[in.B]
		d, x, y := rf[in.A], fr.vf[in.B], fr.vf[in.C]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ls
			var sum float64
			for i := 0; i < ls; i++ {
				sum += x[o+i] * y[o+i]
			}
			d[l] = vm.Round32(k, sum)
		}
	case bcode.OpLenVF:
		ls := fr.bf.VecFLens[in.B]
		d, x := rf[in.A], fr.vf[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ls
			var sum float64
			for i := 0; i < ls; i++ {
				sum += x[o+i] * x[o+i]
			}
			d[l] = vm.Round32(k, math.Sqrt(sum))
		}

	case bcode.OpVMathF:
		ax := &fr.bf.Aux[in.Imm]
		ld := fr.bf.VecFLens[in.A]
		d := fr.vf[in.A]
		fa := g.scratchF(len(ax.Refs))
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for j := 0; j < ld; j++ {
				for i, r := range ax.Refs {
					fa[i] = fr.vf[r.Idx][o+j]
				}
				v, err := vm.MathF(ax.Name, k, fa)
				if err != nil {
					return laneErr(l, err)
				}
				d[o+j] = v
			}
		}
	case bcode.OpVMathI:
		ax := &fr.bf.Aux[in.Imm]
		ld := fr.bf.VecILens[in.A]
		d := fr.vi[in.A]
		ia := g.scratchI(len(ax.Refs))
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for j := 0; j < ld; j++ {
				for i, r := range ax.Refs {
					ia[i] = fr.vi[r.Idx][o+j]
				}
				v, err := vm.MathI(ax.Name, k, ia)
				if err != nil {
					return laneErr(l, err)
				}
				d[o+j] = v
			}
		}

	default:
		return laneErr(mask[0], fmt.Errorf("jit: invalid opcode %d", in.Op))
	}
	return nil
}

// vconvCol performs a lane-wise vector conversion for all masked lanes.
// The source and destination lane counts match (the compiler traps
// mismatched conversions), so one offset walks both columns.
func (g *groupState) vconvCol(fr *frame, in *bcode.Inst, mask []int32) {
	from := clc.ScalarKind(in.Sub)
	to := clc.ScalarKind(in.Kind)
	if from.IsFloat() {
		s := fr.vf[in.B]
		if to.IsFloat() {
			ld := fr.bf.VecFLens[in.A]
			d := fr.vf[in.A]
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					_, d[o+i] = vm.ConvertKind(0, s[o+i], from, to)
				}
			}
		} else {
			ld := fr.bf.VecILens[in.A]
			d := fr.vi[in.A]
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i], _ = vm.ConvertKind(0, s[o+i], from, to)
				}
			}
		}
	} else {
		s := fr.vi[in.B]
		if to.IsFloat() {
			ld := fr.bf.VecFLens[in.A]
			d := fr.vf[in.A]
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					_, d[o+i] = vm.ConvertKind(s[o+i], 0, from, to)
				}
			}
		} else {
			ld := fr.bf.VecILens[in.A]
			d := fr.vi[in.A]
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i], _ = vm.ConvertKind(s[o+i], 0, from, to)
				}
			}
		}
	}
}

// wiQueryLane answers a runtime-dimension work-item query for one lane.
func (g *groupState) wiQueryLane(l int32, q int32, d int64) int64 {
	if d < 0 || d > 2 {
		return 0
	}
	switch q {
	case bcode.QGlobalID:
		return g.gidCol[d][l]
	case bcode.QLocalID:
		return g.lidCol[d][l]
	case bcode.QGroupID:
		return g.grp[d]
	case bcode.QGlobalSize:
		return g.gsz[d]
	case bcode.QLocalSize:
		return g.lsz[d]
	case bcode.QNumGroups:
		return g.ngrp[d]
	case bcode.QWorkDim:
		return 3
	}
	return 0
}
