package jit

import (
	"context"
	"os"
	"sync/atomic"
	"time"
)

// nativeModule holds the stage-2 natively compiled kernels for one
// program, together with the transport that executes them: an in-process
// plugin (per-group calls, zero-copy arenas) or a subprocess worker
// (whole-launch calls over a gob pipe). A nil module (build disabled or
// failed) means closure-threaded execution.
type nativeModule struct {
	kernels map[string]*nativeKernel

	// newRunner creates a per-worker group runner when the plugin
	// transport loaded; nil under the subprocess transport.
	newRunner func() nativeGroupFn

	// worker is the subprocess transport; nil under the plugin transport.
	worker *workerProc
}

// nativeGroupFn executes one work-group of kernel `index` inside the
// plugin. The signature uses only builtin types so the host and the
// plugin never exchange package-level types.
type nativeGroupFn = func(kernel int, gmem, local []byte, priv [][]byte,
	paramI []int64, paramF []float64, geom []int64) error

// nativeKernel is one kernel's native entry point: its index in the
// generated module plus the module transport.
type nativeKernel struct {
	index int
	mod   *nativeModule
}

// kernel returns the native entry for a kernel, or nil when it was not
// eligible for native compilation (the closure-threaded program runs it).
func (nm *nativeModule) kernel(name string) *nativeKernel {
	if nm == nil {
		return nil
	}
	return nm.kernels[name]
}

// NativeEnabled reports whether stage-2 native compilation is requested,
// via GROVER_JIT=native or a programmatic override (see SetNative).
func NativeEnabled() bool {
	if o := nativeOverride.Load(); o != 0 {
		return o > 0
	}
	return os.Getenv("GROVER_JIT") == "native"
}

// nativeOverride: 0 = follow GROVER_JIT, >0 = force on, <0 = force off.
var nativeOverride atomic.Int32

// SetNative overrides the GROVER_JIT environment gate programmatically
// (the CLIs' -jit-native flag). Call before programs are prepared.
func SetNative(on bool) {
	if on {
		nativeOverride.Store(1)
	} else {
		nativeOverride.Store(-1)
	}
}

// Native compile counters, exported for groverd's /metrics endpoint:
// builds counts actual codegen+go-build runs, hits counts artifacts
// served from the content-addressed disk cache (in-process singleflight
// dedups are counted by the module cache itself and reported neither
// way).
var (
	nativeBuilds atomic.Int64
	nativeHits   atomic.Int64

	// buildObserver, when set, observes every native build's wall-clock
	// (groverd's build-time histogram).
	buildObserver atomic.Value // func(time.Duration)
)

// NativeStats returns the process-wide native compile counters.
func NativeStats() (builds, cacheHits int64) {
	return nativeBuilds.Load(), nativeHits.Load()
}

// SetBuildObserver registers a callback observing every native plugin
// build's duration. Used by groverd's metrics histogram.
func SetBuildObserver(f func(time.Duration)) {
	buildObserver.Store(f)
}

func observeBuild(d time.Duration) {
	if f, ok := buildObserver.Load().(func(time.Duration)); ok && f != nil {
		f(d)
	}
}

// buildNative emits, builds, and loads native code for every eligible
// kernel of the machine. Best-effort: nil on any failure (no toolchain,
// incompatible host build, no eligible kernels), leaving the
// closure-threaded programs as the executable floor.
func buildNative(ctx context.Context, m *Machine) *nativeModule {
	return buildNativeModule(ctx, m)
}

// runGroupNative executes one work-group through the plugin transport,
// lazily creating this worker's runner closure.
func (g *groupState) runGroupNative(nat *nativeKernel, group [3]int) error {
	if g.natRun == nil {
		g.natRun = nat.mod.newRunner()
	}
	g.resetGroup(group)
	g.geom[9], g.geom[10], g.geom[11] = int64(group[0]), int64(group[1]), int64(group[2])
	return g.natRun(nat.index, g.gmem, g.local, g.priv, g.paramI, g.paramF, g.geom)
}
