package jit

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"grover/internal/bcode"
	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

// Return-value tags for the per-lane stash of a columnar call frame,
// mirroring bcode's clear-then-set return fields.
const (
	retNone = iota
	retInt
	retFlt
	retVecI
	retVecF
)

// Sentinel step results (see stepFn): a non-negative result continues
// the segment inline at that pc; the sentinels end the segment.
const (
	// stepDone: the masked lanes left the segment (returned, suspended
	// at a barrier, or parked at divergent branch targets); their pcs
	// are already updated.
	stepDone = int32(-1)
)

// frame is the pooled columnar register file for one call depth:
// scalar banks as [register][lane] columns, vector banks as flat
// lane-major columns.
type frame struct {
	bf *bcode.BFunc
	pr *program
	n  int

	ri [][]int64
	rf [][]float64
	vi [][]int64
	vf [][]float64

	pcs []int32 // per-lane pending pc; -1 done/returned, -2 at a barrier
	seg []int32 // current segment mask (scratch, rebuilt per pick)

	frameBase, sp int

	// Per-lane return stash (callee side). Vector stashes are strided by
	// the frame's maximal vector length.
	retSet       []uint8
	retI         []int64
	retF         []float64
	retVI        []int64
	retVF        []float64
	retVILen     int
	retVFLen     int
	maxVI, maxVF int
}

// growCols shapes a scalar column set to nregs columns of n lanes.
func growCols[T int64 | float64](cols [][]T, nregs, n int) [][]T {
	if cap(cols) < nregs {
		grown := make([][]T, nregs)
		copy(grown, cols)
		cols = grown
	}
	cols = cols[:nregs]
	for i := range cols {
		if cap(cols[i]) < n {
			cols[i] = make([]T, n)
		}
		cols[i] = cols[i][:n]
	}
	return cols
}

// growVecCols shapes a vector column set: column i holds lens[i] lanes
// per work-item, flat lane-major.
func growVecCols[T int64 | float64](cols [][]T, lens []int, n int) [][]T {
	if cap(cols) < len(lens) {
		grown := make([][]T, len(lens))
		copy(grown, cols)
		cols = grown
	}
	cols = cols[:len(lens)]
	for i, ln := range lens {
		sz := ln * n
		if cap(cols[i]) < sz {
			cols[i] = make([]T, sz)
		}
		cols[i] = cols[i][:sz]
	}
	return cols
}

// ensure shapes the frame for pr with n lanes, refilling constant
// columns only when the shape changes (constant and parameter registers
// are never written by compiled code, so a matching shape stays valid).
func (fr *frame) ensure(pr *program, n int) {
	bf := pr.bf
	fr.pr = pr
	if fr.bf == bf && fr.n == n {
		return
	}
	fr.bf, fr.n = bf, n
	fr.ri = growCols(fr.ri, bf.NInt, n)
	fr.rf = growCols(fr.rf, bf.NFlt, n)
	fr.vi = growVecCols(fr.vi, bf.VecILens, n)
	fr.vf = growVecCols(fr.vf, bf.VecFLens, n)
	fr.maxVI, fr.maxVF = 0, 0
	for _, ln := range bf.VecILens {
		fr.maxVI = max(fr.maxVI, ln)
	}
	for _, ln := range bf.VecFLens {
		fr.maxVF = max(fr.maxVF, ln)
	}
	if cap(fr.pcs) < n {
		fr.pcs = make([]int32, n)
		fr.seg = make([]int32, 0, n)
		fr.retSet = make([]uint8, n)
		fr.retI = make([]int64, n)
		fr.retF = make([]float64, n)
	}
	fr.pcs = fr.pcs[:n]
	fr.retSet = fr.retSet[:n]
	fr.retI = fr.retI[:n]
	fr.retF = fr.retF[:n]
	if sz := fr.maxVI * n; cap(fr.retVI) < sz {
		fr.retVI = make([]int64, sz)
	}
	if sz := fr.maxVF * n; cap(fr.retVF) < sz {
		fr.retVF = make([]float64, sz)
	}
	for ci, v := range bf.IntConsts {
		col := fr.ri[ci]
		for i := range col {
			col[i] = v
		}
	}
	for ci, v := range bf.FltConsts {
		col := fr.rf[ci]
		for i := range col {
			col[i] = v
		}
	}
}

// broadcastI copies lane 0's value column-wide after a uniform
// execute-once.
func broadcastLaneI(col []int64) {
	v := col[0]
	for i := 1; i < len(col); i++ {
		col[i] = v
	}
}

func broadcastLaneF(col []float64) {
	v := col[0]
	for i := 1; i < len(col); i++ {
		col[i] = v
	}
}

// Launch implements vm.Executor with bcode's exact launch contract.
// Traced launches delegate to wgvec (identical trace streams by
// construction); untraced launches run generated code — natively
// compiled kernels when stage 2 built them, closure chains otherwise.
func (m *Machine) Launch(kernel string, cfg vm.Config, gmem *vm.GlobalMem, opts *vm.LaunchOpts) error {
	if opts != nil && opts.TracerFor != nil {
		d, err := m.traceDelegate()
		if err != nil {
			return err
		}
		return d.Launch(kernel, cfg, gmem, opts)
	}
	p := m.bm.Program()
	fn := p.Module.Kernel(kernel)
	if fn == nil {
		return fmt.Errorf("vm: no kernel %q", kernel)
	}
	bf := m.bm.Func(fn)
	ncfg, err := cfg.Normalized()
	if err != nil {
		return err
	}
	if len(ncfg.Args) != len(fn.Params) {
		return fmt.Errorf("vm: kernel %s expects %d args, got %d", kernel, len(fn.Params), len(ncfg.Args))
	}
	workers := 1
	var prof *vm.Profiler
	if opts != nil {
		workers = opts.Workers
		prof = opts.Profiler
	}
	if prof != nil {
		prof.LaunchBegin(kernel, Name)
		start := time.Now()
		defer func() { prof.LaunchDone(time.Since(start)) }()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	groups := [3]int{
		ncfg.GlobalSize[0] / ncfg.LocalSize[0],
		ncfg.GlobalSize[1] / ncfg.LocalSize[1],
		ncfg.GlobalSize[2] / ncfg.LocalSize[2],
	}
	nGroups := groups[0] * groups[1] * groups[2]
	if nGroups < workers {
		workers = nGroups
	}
	if workers == 0 {
		return nil
	}

	// Dynamic local buffers: lay out after the static local allocas.
	staticLocal := bf.LocalSize
	dynOff := make([]int, len(ncfg.Args))
	localTotal := staticLocal
	for i, a := range ncfg.Args {
		if a.Kind == vm.ArgLocalBuf {
			const align = 16
			localTotal = (localTotal + align - 1) &^ (align - 1)
			dynOff[i] = localTotal
			localTotal += a.LocalBytes
		}
	}

	paramI := make([]int64, len(ncfg.Args))
	paramF := make([]float64, len(ncfg.Args))
	for i, a := range ncfg.Args {
		switch a.Kind {
		case vm.ArgBuffer:
			paramI[i] = int64(a.Buf.Addr())
		case vm.ArgInt:
			paramI[i] = a.I
		case vm.ArgFloat:
			paramF[i] = a.F
		case vm.ArgLocalBuf:
			paramI[i] = int64(vm.MakeAddr(clc.ASLocal, uint64(dynOff[i])))
		}
	}

	n := ncfg.LocalSize[0] * ncfg.LocalSize[1] * ncfg.LocalSize[2]
	stack := p.StackBytes()

	// Profiled launches run the closure path: region attribution needs
	// the threaded dispatch loop, which natively compiled kernels bypass.
	var nat *nativeKernel
	if m.native != nil && prof == nil {
		nat = m.native.kernel(kernel)
	}

	// Subprocess transport: the worker runs the whole launch (all groups)
	// and wraps errors itself, so its result passes through unwrapped.
	if nat != nil && nat.mod.worker != nil {
		geom9 := make([]int64, 9)
		for d := 0; d < 3; d++ {
			geom9[d] = int64(ncfg.GlobalSize[d])
			geom9[3+d] = int64(ncfg.LocalSize[d])
			geom9[6+d] = int64(groups[d])
		}
		return launchNativeWorker(nat, gmem.Data, localTotal, stack, paramI, paramF, geom9)
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	sched := vm.NewGroupSchedule(nGroups, workers, false)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			g := newGroupState(m, m.progs[fn], ncfg, gmem.Data, paramI, paramF, localTotal, stack, n)
			g.prof = prof
			cur := sched.Cursor(worker)
			for gi := cur.Next(); gi >= 0; gi = cur.Next() {
				gz := gi / (groups[0] * groups[1])
				rem := gi % (groups[0] * groups[1])
				gy := rem / groups[0]
				gx := rem % groups[0]
				var err error
				if nat != nil {
					err = g.runGroupNative(nat, [3]int{gx, gy, gz})
				} else {
					err = g.runGroup([3]int{gx, gy, gz})
				}
				if err != nil {
					errs[worker] = fmt.Errorf("group (%d,%d,%d): %w", gx, gy, gz, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// groupState executes the work-groups assigned to one worker. Columns,
// frames, and scratch buffers are allocated once per worker and reused
// across all its groups.
type groupState struct {
	m          *Machine
	gmem       []byte
	local      []byte
	localTotal int
	stack      int
	n          int
	prof       *vm.Profiler

	// Per-round profiler accumulators; harvested and reset by runGroup
	// at every barrier round when prof is set.
	profRetired int64
	profLoads   int64
	profStores  int64

	gsz, lsz, ngrp, grp [3]int64
	gidCol, lidCol      [3][]int64

	priv   [][]byte
	frames []*frame

	// Native (stage-2) execution state: launch parameters and geometry in
	// the plugin's flat calling convention, plus this worker's lazily
	// created runner closure.
	paramI []int64
	paramF []float64
	geom   []int64 // gsz 0-2, lsz 3-5, ngrp 6-8, grp 9-11
	natRun nativeGroupFn

	allLanes []int32
	barInstr []*ir.Instr
	resumePC []int32

	maskT, maskF []int32
	mathF        []float64
	mathI        []int64
}

func newGroupState(m *Machine, pr *program, cfg vm.Config, gmem []byte,
	paramI []int64, paramF []float64, localTotal, stack, n int) *groupState {
	g := &groupState{
		m: m, gmem: gmem, localTotal: localTotal, stack: stack, n: n,
		paramI: paramI, paramF: paramF, geom: make([]int64, 12),
	}
	for d := 0; d < 3; d++ {
		g.gsz[d] = int64(cfg.GlobalSize[d])
		g.lsz[d] = int64(cfg.LocalSize[d])
		g.ngrp[d] = int64(cfg.GlobalSize[d] / cfg.LocalSize[d])
		g.gidCol[d] = make([]int64, n)
		g.lidCol[d] = make([]int64, n)
		g.geom[d] = g.gsz[d]
		g.geom[3+d] = g.lsz[d]
		g.geom[6+d] = g.ngrp[d]
	}
	lx0, lx1 := cfg.LocalSize[0], cfg.LocalSize[1]
	for wi := 0; wi < n; wi++ {
		lz := wi / (lx0 * lx1)
		rem := wi % (lx0 * lx1)
		g.lidCol[0][wi] = int64(rem % lx0)
		g.lidCol[1][wi] = int64(rem / lx0)
		g.lidCol[2][wi] = int64(lz)
	}
	g.priv = make([][]byte, n)
	for wi := range g.priv {
		g.priv[wi] = make([]byte, stack)
	}
	g.allLanes = make([]int32, n)
	for i := range g.allLanes {
		g.allLanes[i] = int32(i)
	}
	g.barInstr = make([]*ir.Instr, n)
	g.resumePC = make([]int32, n)
	g.maskT = make([]int32, 0, n)
	g.maskF = make([]int32, 0, n)

	bf := pr.bf
	fr := g.frame(0)
	fr.ensure(pr, n)
	for k, pp := range bf.Params {
		switch pp.Bank {
		case bcode.BankInt:
			col := fr.ri[pp.Idx]
			v := paramI[k]
			for i := range col {
				col[i] = v
			}
		case bcode.BankFlt:
			col := fr.rf[pp.Idx]
			v := paramF[k]
			for i := range col {
				col[i] = v
			}
		}
	}
	return g
}

// frame returns the pooled columnar frame for a call depth.
func (g *groupState) frame(depth int) *frame {
	for len(g.frames) <= depth {
		g.frames = append(g.frames, &frame{})
	}
	return g.frames[depth]
}

func laneErr(l int32, err error) error {
	return fmt.Errorf("work-item %d: %w", l, err)
}

// runGroup executes one work-group in barrier-delimited rounds with the
// closure-threaded programs: each round runs lockstep segments until
// every lane is done or suspended at a barrier, checks barrier
// divergence with the interpreter's exact diagnostics, then releases
// the suspended lanes into the next round.
func (g *groupState) runGroup(group [3]int) error {
	n := g.n
	g.resetGroup(group)
	fr := g.frames[0]
	fr.frameBase, fr.sp = 0, fr.bf.FrameSize
	for l := 0; l < n; l++ {
		fr.pcs[l] = 0
	}

	doneBefore := 0
	round := 0
	var roundStart time.Time
	for {
		if g.prof != nil {
			roundStart = time.Now()
			g.profRetired, g.profLoads, g.profStores = 0, 0, 0
		}
		if err := g.schedule(0, fr, g.allLanes); err != nil {
			return err
		}
		var barrierAt *ir.Instr
		atBarrier, doneTotal := 0, 0
		for l := 0; l < n; l++ {
			switch fr.pcs[l] {
			case -1:
				doneTotal++
			case -2:
				atBarrier++
				if barrierAt == nil {
					barrierAt = g.barInstr[l]
				} else if barrierAt != g.barInstr[l] {
					return fmt.Errorf("barrier divergence: work-items reached different barriers")
				}
			}
		}
		if g.prof != nil {
			g.prof.Region(round, time.Since(roundStart), g.profRetired, g.profLoads, g.profStores, atBarrier > 0)
			round++
		}
		doneNow := doneTotal - doneBefore
		if atBarrier > 0 && doneNow > 0 {
			return fmt.Errorf("barrier divergence: %d work-items at a barrier while %d finished", atBarrier, doneNow)
		}
		if atBarrier == 0 {
			return nil
		}
		doneBefore = doneTotal
		for l := 0; l < n; l++ {
			if fr.pcs[l] == -2 {
				fr.pcs[l] = g.resumePC[l]
			}
		}
	}
}

// resetGroup points the group state at a new work-group: fresh group
// ids, recomputed global-id columns, and a cleared local arena.
// Grover-rewritten kernels have no __local memory at all; the arena
// sizing and per-group clear are skipped entirely in that case.
func (g *groupState) resetGroup(group [3]int) {
	n := g.n
	if g.localTotal == 0 {
		g.local = nil
	} else if cap(g.local) < g.localTotal {
		g.local = make([]byte, g.localTotal)
	} else {
		g.local = g.local[:g.localTotal]
		clear(g.local)
	}
	for d := 0; d < 3; d++ {
		g.grp[d] = int64(group[d])
		base := g.grp[d] * g.lsz[d]
		gid, lid := g.gidCol[d], g.lidCol[d]
		for wi := 0; wi < n; wi++ {
			gid[wi] = base + lid[wi]
		}
	}
}

// schedule runs the given lanes to completion of the current function
// activation (or to a barrier at kernel level): it repeatedly picks the
// pending program point with minimal (block priority, pc) and threads
// the pre-bound step closures from there with the mask of all lanes
// waiting at it. Masks are built in ascending lane order, so a mask of
// n lanes is always the identity permutation — step closures exploit
// that with dense bounds-check-eliminated loops.
func (g *groupState) schedule(depth int, fr *frame, lanes []int32) error {
	pr := fr.pr
	steps := pr.steps
	profiled := g.prof != nil
	const inf = int64(1) << 62
	for {
		best := inf
		for _, l := range lanes {
			pc := fr.pcs[l]
			if pc < 0 {
				continue
			}
			key := int64(pr.prio[pr.blockOf[pc]])<<32 | int64(pc)
			if key < best {
				best = key
			}
		}
		if best == inf {
			return nil
		}
		pc := int32(best)
		seg := fr.seg[:0]
		for _, l := range lanes {
			if fr.pcs[l] == pc {
				seg = append(seg, l)
			}
		}
		fr.seg = seg
		// Thread the closure chain: each step returns the next pc while
		// the whole mask agrees on control; divergence, returns, and
		// barriers end the chain and go back to the pick loop.
		if profiled {
			// Accounting mirrors wgvec's runSeg: Retire and memory
			// traffic per masked lane per instruction. costs[pc] is the
			// precomputed aggregate of every instruction the step runs.
			for pc >= 0 {
				c := &pr.costs[pc]
				lanes := int64(len(seg))
				g.profRetired += c.retire * lanes
				g.profLoads += c.loads * lanes
				g.profStores += c.stores * lanes
				next, err := steps[pc](g, depth, fr, seg)
				if err != nil {
					return err
				}
				pc = next
			}
			continue
		}
		for pc >= 0 {
			next, err := steps[pc](g, depth, fr, seg)
			if err != nil {
				return err
			}
			pc = next
		}
	}
}

// retLanes stashes per-lane return values and retires the mask from the
// current activation.
func retLanes(fr *frame, op bcode.Opcode, src int32, mask []int32) {
	switch op {
	case bcode.OpRet:
		for _, l := range mask {
			fr.retSet[l] = retNone
			fr.pcs[l] = -1
		}
	case bcode.OpRetI:
		s := fr.ri[src]
		for _, l := range mask {
			fr.retSet[l] = retInt
			fr.retI[l] = s[l]
			fr.pcs[l] = -1
		}
	case bcode.OpRetF:
		s := fr.rf[src]
		for _, l := range mask {
			fr.retSet[l] = retFlt
			fr.retF[l] = s[l]
			fr.pcs[l] = -1
		}
	case bcode.OpRetVI:
		ls := fr.bf.VecILens[src]
		s := fr.vi[src]
		fr.retVILen = ls
		for _, l := range mask {
			fr.retSet[l] = retVecI
			copy(fr.retVI[int(l)*fr.maxVI:int(l)*fr.maxVI+ls], s[int(l)*ls:int(l)*ls+ls])
			fr.pcs[l] = -1
		}
	case bcode.OpRetVF:
		ls := fr.bf.VecFLens[src]
		s := fr.vf[src]
		fr.retVFLen = ls
		for _, l := range mask {
			fr.retSet[l] = retVecF
			copy(fr.retVF[int(l)*fr.maxVF:int(l)*fr.maxVF+ls], s[int(l)*ls:int(l)*ls+ls])
			fr.pcs[l] = -1
		}
	}
}

// callStep executes a user function for all masked lanes as a nested
// columnar activation, exactly like wgvec's callCol: arguments copy
// column-to-column, the callee runs under the segment scheduler one
// depth down, and return values copy out per lane from the stash (a
// lane whose stash tag mismatches the destination bank gets zero).
func (g *groupState) callStep(depth int, fr *frame, in *bcode.Inst, mask []int32) error {
	ax := &fr.bf.Aux[in.Imm]
	callee := ax.Callee
	child := g.frame(depth + 1)
	child.ensure(g.m.progs[callee.Fn], g.n)
	for i, r := range ax.Refs {
		p := callee.Params[i]
		switch p.Bank {
		case bcode.BankInt:
			dst, src := child.ri[p.Idx], fr.ri[r.Idx]
			for _, l := range mask {
				dst[l] = src[l]
			}
		case bcode.BankFlt:
			dst, src := child.rf[p.Idx], fr.rf[r.Idx]
			for _, l := range mask {
				dst[l] = src[l]
			}
		case bcode.BankVecI:
			ld, ls := callee.VecILens[p.Idx], fr.bf.VecILens[r.Idx]
			m := min(ld, ls)
			dst, src := child.vi[p.Idx], fr.vi[r.Idx]
			for _, l := range mask {
				copy(dst[int(l)*ld:int(l)*ld+m], src[int(l)*ls:int(l)*ls+m])
			}
		case bcode.BankVecF:
			ld, ls := callee.VecFLens[p.Idx], fr.bf.VecFLens[r.Idx]
			m := min(ld, ls)
			dst, src := child.vf[p.Idx], fr.vf[r.Idx]
			for _, l := range mask {
				copy(dst[int(l)*ld:int(l)*ld+m], src[int(l)*ls:int(l)*ls+m])
			}
		}
	}
	child.frameBase = fr.sp
	child.sp = fr.sp + callee.FrameSize
	if child.sp > g.stack {
		return laneErr(mask[0], fmt.Errorf("vm: private stack overflow calling %s", callee.Fn.Name))
	}
	for _, l := range mask {
		child.pcs[l] = 0
	}
	if err := g.schedule(depth+1, child, mask); err != nil {
		return err
	}
	if in.A >= 0 {
		switch bcode.Bank(in.Sub) {
		case bcode.BankInt:
			d := fr.ri[in.A]
			for _, l := range mask {
				if child.retSet[l] == retInt {
					d[l] = child.retI[l]
				} else {
					d[l] = 0
				}
			}
		case bcode.BankFlt:
			d := fr.rf[in.A]
			for _, l := range mask {
				if child.retSet[l] == retFlt {
					d[l] = child.retF[l]
				} else {
					d[l] = 0
				}
			}
		case bcode.BankVecI:
			ld := fr.bf.VecILens[in.A]
			d := fr.vi[in.A]
			for _, l := range mask {
				if child.retSet[l] == retVecI {
					m := min(ld, child.retVILen)
					copy(d[int(l)*ld:int(l)*ld+m], child.retVI[int(l)*child.maxVI:int(l)*child.maxVI+m])
				}
			}
		case bcode.BankVecF:
			ld := fr.bf.VecFLens[in.A]
			d := fr.vf[in.A]
			for _, l := range mask {
				if child.retSet[l] == retVecF {
					m := min(ld, child.retVFLen)
					copy(d[int(l)*ld:int(l)*ld+m], child.retVF[int(l)*child.maxVF:int(l)*child.maxVF+m])
				}
			}
		}
	}
	return nil
}

// scratchF returns the worker's pooled float argument buffer.
func (g *groupState) scratchF(n int) []float64 {
	if cap(g.mathF) < n {
		g.mathF = make([]float64, n)
	}
	return g.mathF[:n]
}

// scratchI returns the worker's pooled integer argument buffer.
func (g *groupState) scratchI(n int) []int64 {
	if cap(g.mathI) < n {
		g.mathI = make([]int64, n)
	}
	return g.mathI[:n]
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
