//go:build race

package jit

// raceEnabled forces the subprocess worker transport: a race-instrumented
// host cannot load a plugin built without -race.
const raceEnabled = true
