package jit

import (
	"fmt"
	"strings"

	"grover/internal/bcode"
	"grover/internal/ir"
)

// genModule emits a self-contained Go source file ("package main",
// stdlib imports only) containing one native lane function per eligible
// kernel plus the group runner and subprocess-worker machinery. The
// same source builds as a plugin (NewRunner is the exported entry) and
// as a worker executable (main → workerMain), so one artifact key
// covers both transports. Returns the source, the kernel-name → index
// map, and ok=false when no kernel is eligible.
//
// The generated code is a statement-for-statement transliteration of
// bcode's per-lane interpreter: identical expression forms (so Go
// compiles identical float operations — no FMA contraction on amd64,
// no reassociation), identical arena-decode order, and identical error
// strings. Bit-identical results are by construction, and the
// differential suites enforce it.
func genModule(m *Machine) (src string, kernels map[string]int, ok bool) {
	p := m.bm.Program()
	g := &srcGen{m: m, fnID: map[*bcode.BFunc]int{}}
	kernels = map[string]int{}
	var kerns []*bcode.BFunc
	for _, f := range p.Module.Funcs {
		if !f.IsKernel {
			continue
		}
		bf := m.bm.Func(f)
		if bf == nil || !g.supported(bf, map[*bcode.BFunc]bool{}) {
			continue
		}
		kernels[f.Name] = len(kerns)
		kerns = append(kerns, bf)
	}
	if len(kerns) == 0 {
		return "", nil, false
	}

	g.raw(genPreamble)

	// Analyses (barrier liveness, private-slot promotion) run for every
	// kernel before any emission: the dispatch table needs each kernel's
	// spill sizes, which include promoted slots.
	fes := make([]*fnEmit, len(kerns))
	for i, bf := range kerns {
		fes[i] = g.prepFunc(bf, i, true)
	}

	// Kernel dispatch: one case per kernel with its barrier-spill sizes.
	g.wl("func (s *runnerState) run(kernel int, gmem, local []byte, priv [][]byte, pi []int64, pf []float64, geom []int64) error {")
	g.wl("switch kernel {")
	for i, fe := range fes {
		nI, nF := fe.spillNeeds()
		g.wl("case %d:", i)
		g.wl("return s.runGroup(kern%d, %d, %d, gmem, local, priv, pi, pf, geom)", i, nI, nF)
	}
	g.wl("}")
	g.wl("return fmt.Errorf(\"jit: unknown native kernel %%d\", kernel)")
	g.wl("}")
	g.wl("")

	for _, fe := range fes {
		fe.emit()
	}
	// Callees discovered at call sites, in deterministic first-use order.
	for qi := 0; qi < len(g.fnQueue); qi++ {
		g.emitFunc(g.fnQueue[qi], g.fnID[g.fnQueue[qi]], false)
	}
	return g.b.String(), kernels, true
}

// srcGen accumulates the generated source and the callee emission queue.
type srcGen struct {
	m       *Machine
	b       strings.Builder
	fnID    map[*bcode.BFunc]int
	fnQueue []*bcode.BFunc
}

func (g *srcGen) raw(s string)          { g.b.WriteString(s) }
func (g *srcGen) wl(f string, a ...any) { fmt.Fprintf(&g.b, f+"\n", a...) }

// fnRef returns the generated-function id for a callee, queueing it for
// emission on first use.
func (g *srcGen) fnRef(bf *bcode.BFunc) int {
	id, have := g.fnID[bf]
	if !have {
		// Callee ids live above the kernel index space; uniqueness is all
		// that matters for the generated fn<N> names.
		id = 1000 + len(g.fnQueue)
		g.fnID[bf] = id
		g.fnQueue = append(g.fnQueue, bf)
	}
	return id
}

// spillSlots sizes the per-lane barrier spill arrays: every scalar
// register plus every vector lane of each bank.
func spillSlots(bf *bcode.BFunc) (nI, nF int) {
	nI, nF = bf.NInt, bf.NFlt
	for _, l := range bf.VecILens {
		nI += l
	}
	for _, l := range bf.VecFLens {
		nF += l
	}
	return nI, nF
}

// supported reports whether every opcode reachable from bf (through
// calls) has a native lowering. Unsupported kernels stay on the
// closure-threaded floor.
func (g *srcGen) supported(bf *bcode.BFunc, seen map[*bcode.BFunc]bool) bool {
	if seen[bf] {
		return true
	}
	seen[bf] = true
	for i := range bf.Code {
		in := &bf.Code[i]
		switch in.Op {
		case bcode.OpNop, bcode.OpJmp, bcode.OpCondBrI, bcode.OpCondBrF,
			bcode.OpRet, bcode.OpRetI, bcode.OpRetF, bcode.OpRetVI, bcode.OpRetVF,
			bcode.OpBarrier, bcode.OpTrap,
			bcode.OpConstI, bcode.OpZeroI, bcode.OpZeroF, bcode.OpMovI, bcode.OpMovF,
			bcode.OpGID, bcode.OpLID, bcode.OpGRP, bcode.OpGSZ, bcode.OpLSZ, bcode.OpNGRP,
			bcode.OpWIQ, bcode.OpAllocaP, bcode.OpAllocaL, bcode.OpIndex, bcode.OpIndexC,
			bcode.OpLdI8, bcode.OpLdU8, bcode.OpLdI16, bcode.OpLdU16, bcode.OpLdI32,
			bcode.OpLdU32, bcode.OpLdI64, bcode.OpLdF32, bcode.OpLdF64,
			bcode.OpLdXI8, bcode.OpLdXU8, bcode.OpLdXI16, bcode.OpLdXU16, bcode.OpLdXI32,
			bcode.OpLdXU32, bcode.OpLdXI64, bcode.OpLdXF32, bcode.OpLdXF64,
			bcode.OpStI8, bcode.OpStI16, bcode.OpStI32, bcode.OpStI64, bcode.OpStF32, bcode.OpStF64,
			bcode.OpStXI8, bcode.OpStXI16, bcode.OpStXI32, bcode.OpStXI64, bcode.OpStXF32, bcode.OpStXF64,
			bcode.OpLdVI, bcode.OpLdVF, bcode.OpLdXVI, bcode.OpLdXVF,
			bcode.OpStVI, bcode.OpStVF, bcode.OpStXVI, bcode.OpStXVF,
			bcode.OpAddI, bcode.OpSubI, bcode.OpMulI, bcode.OpAndI, bcode.OpOrI, bcode.OpXorI,
			bcode.OpAddI32, bcode.OpSubI32, bcode.OpMulI32,
			bcode.OpAddU32, bcode.OpSubU32, bcode.OpMulU32,
			bcode.OpAddF, bcode.OpSubF, bcode.OpMulF, bcode.OpDivF,
			bcode.OpAddF32, bcode.OpSubF32, bcode.OpMulF32, bcode.OpDivF32,
			bcode.OpNegF, bcode.OpNegI, bcode.OpNotI,
			bcode.OpVNegF, bcode.OpVNegI, bcode.OpVNotI,
			bcode.OpEqI, bcode.OpNeI, bcode.OpLtI, bcode.OpLeI, bcode.OpGtI, bcode.OpGeI,
			bcode.OpLtU, bcode.OpLeU, bcode.OpGtU, bcode.OpGeU,
			bcode.OpEqF, bcode.OpNeF, bcode.OpLtF, bcode.OpLeF, bcode.OpGtF, bcode.OpGeF,
			bcode.OpConvI, bcode.OpI2F, bcode.OpU2F, bcode.OpF2I, bcode.OpF2F32, bcode.OpVConv,
			bcode.OpVAddF, bcode.OpVSubF, bcode.OpVMulF, bcode.OpVDivF,
			bcode.OpExtI, bcode.OpExtF, bcode.OpInsI, bcode.OpInsF,
			bcode.OpShufI, bcode.OpShufF, bcode.OpBuildI, bcode.OpBuildF,
			bcode.OpDotVF, bcode.OpDotSS, bcode.OpLenVF, bcode.OpLenSS,
			bcode.OpMathF, bcode.OpMathI, bcode.OpVMathF, bcode.OpVMathI:
		case bcode.OpIntBin, bcode.OpVBinI:
			switch ir.Op(in.Sub) {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
				ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
			default:
				return false
			}
		case bcode.OpFltBin, bcode.OpVBinF:
			switch ir.Op(in.Sub) {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem:
			default:
				return false
			}
		case bcode.OpCall:
			if !g.supported(bf.Aux[in.Imm].Callee, seen) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// genPreamble is the static part of every generated module: the lane
// environment, the arena decode with its exact bcode error diagnostics,
// the group runner with bcode's round structure and divergence
// messages, and the subprocess worker loop.
const genPreamble = `// Code generated by grover/internal/jit. DO NOT EDIT.
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
)

var (
	_ = binary.LittleEndian
	_ = math.Sqrt
	_ = errors.New
	_ = bufio.NewReader
	_ = gob.NewDecoder
	_ = os.Stdin
)

const addrMask = 0x3fffffffffffffff

// env is one work-item's execution environment. Arenas and parameter
// banks are shared slices bound per group; ids and spill arrays are
// per lane.
type env struct {
	gmem, lmem, pmem []byte
	pi               []int64
	pf               []float64
	gid, lid, grp    [3]int64
	gsz, lsz, ngrp   [3]int64
	si               []int64
	sf               []float64
}

// arena selects the byte arena for a tag (addr >> 62).
func (e *env) arena(tag uint64) []byte {
	switch tag {
	case 1:
		return e.gmem
	case 2:
		return e.lmem
	}
	return e.pmem
}

// memErr reproduces bcode's two-stage bounds diagnostics for a failed
// scalar access.
func (e *env) memErr(addr uint64, sz int, store bool) error {
	off := addr & addrMask
	name := "private"
	switch addr >> 62 {
	case 1:
		name = "global"
	case 2:
		name = "local"
	}
	a := e.arena(addr >> 62)
	if int(off) >= len(a) {
		return fmt.Errorf("vm: %s access at %d out of bounds (%d)", name, off, len(a))
	}
	verb := "load"
	if store {
		verb = "store"
	}
	return fmt.Errorf("vm: %s of %d bytes at %d overruns arena (%d)", verb, sz, off, len(a))
}

// vecErr attributes a failed vector access to its first failing
// element, matching bcode's per-element decode order.
func (e *env) vecErr(addr uint64, es, lanes int, store bool) error {
	for i := 0; i < lanes; i++ {
		a := addr + uint64(i*es)
		off := a & addrMask
		if int(off)+es > len(e.arena(a>>62)) {
			return e.memErr(a, es, store)
		}
	}
	return errors.New("vm: vector access error")
}

var (
	errDivZero     = errors.New("vm: integer division by zero")
	errRemZero     = errors.New("vm: integer remainder by zero")
	errBarrierCall = errors.New("vm: barrier inside a function call is unsupported")
)

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func nb(x int64) int64 {
	if x != 0 {
		return 1
	}
	return 0
}

func minS(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxS(a, b int64) int64 {
	if a < b {
		return b
	}
	return a
}

func minU(a, b int64) int64 {
	if uint64(a) < uint64(b) {
		return a
	}
	return b
}

func maxU(a, b int64) int64 {
	if uint64(a) < uint64(b) {
		return b
	}
	return a
}

// runnerState holds per-worker lane state reused across groups.
type runnerState struct {
	envs   []env
	resume []int
	done   []bool
}

// NewRunner is the plugin entry point: it returns a group runner bound
// to fresh per-worker state. geom is [gsz0..2, lsz0..2, ngrp0..2,
// grp0..2]; the runner executes exactly one work-group per call.
func NewRunner() func(kernel int, gmem, local []byte, priv [][]byte, pi []int64, pf []float64, geom []int64) error {
	s := &runnerState{}
	return s.run
}

// runGroup executes one work-group in barrier-delimited rounds with
// bcode's exact divergence diagnostics: a lane function returns 0 when
// the work-item finished and a positive barrier-site id when it
// suspended there.
func (s *runnerState) runGroup(kern func(*env, int) (int, error), needI, needF int,
	gmem, local []byte, priv [][]byte, pi []int64, pf []float64, geom []int64) error {
	n := int(geom[3] * geom[4] * geom[5])
	if cap(s.envs) < n {
		s.envs = make([]env, n)
		s.resume = make([]int, n)
		s.done = make([]bool, n)
	}
	envs, resume, done := s.envs[:n], s.resume[:n], s.done[:n]
	lx, lp := int(geom[3]), int(geom[3]*geom[4])
	for l := 0; l < n; l++ {
		e := &envs[l]
		e.gmem, e.lmem, e.pmem = gmem, local, priv[l]
		e.pi, e.pf = pi, pf
		for d := 0; d < 3; d++ {
			e.gsz[d], e.lsz[d], e.ngrp[d], e.grp[d] = geom[d], geom[3+d], geom[6+d], geom[9+d]
		}
		e.lid[0], e.lid[1], e.lid[2] = int64(l%lx), int64((l%lp)/lx), int64(l/lp)
		for d := 0; d < 3; d++ {
			e.gid[d] = e.grp[d]*e.lsz[d] + e.lid[d]
		}
		if cap(e.si) < needI {
			e.si = make([]int64, needI)
		}
		e.si = e.si[:needI]
		if cap(e.sf) < needF {
			e.sf = make([]float64, needF)
		}
		e.sf = e.sf[:needF]
		resume[l] = 0
		done[l] = false
	}
	doneBefore := 0
	for {
		barrierAt := -1
		atBarrier, doneTotal := 0, 0
		for l := 0; l < n; l++ {
			if done[l] {
				doneTotal++
				continue
			}
			site, err := kern(&envs[l], resume[l])
			if err != nil {
				return fmt.Errorf("work-item %d: %w", l, err)
			}
			if site == 0 {
				done[l] = true
				doneTotal++
				continue
			}
			resume[l] = site
			atBarrier++
			if barrierAt < 0 {
				barrierAt = site
			} else if barrierAt != site {
				return fmt.Errorf("barrier divergence: work-items reached different barriers")
			}
		}
		doneNow := doneTotal - doneBefore
		if atBarrier > 0 && doneNow > 0 {
			return fmt.Errorf("barrier divergence: %d work-items at a barrier while %d finished", atBarrier, doneNow)
		}
		if atBarrier == 0 {
			return nil
		}
		doneBefore = doneTotal
	}
}

// workerReq/workerResp are the gob frames of the subprocess transport;
// the host mirrors these shapes (gob matches by field name).
type workerReq struct {
	Kernel     int
	Gmem       []byte
	LocalBytes int
	PrivBytes  int
	ParamI     []int64
	ParamF     []float64
	Geom       []int64 // gsz0..2, lsz0..2, ngrp0..2
}

type workerResp struct {
	Gmem []byte
	Err  string
}

// workerMain is the subprocess transport: one whole launch per request,
// groups run in ascending linear order with bcode's group error wrap.
func workerMain() {
	dec := gob.NewDecoder(bufio.NewReader(os.Stdin))
	bw := bufio.NewWriter(os.Stdout)
	enc := gob.NewEncoder(bw)
	run := NewRunner()
	for {
		var req workerReq
		if err := dec.Decode(&req); err != nil {
			return
		}
		n := int(req.Geom[3] * req.Geom[4] * req.Geom[5])
		priv := make([][]byte, n)
		for i := range priv {
			priv[i] = make([]byte, req.PrivBytes)
		}
		var local []byte
		geom := make([]int64, 12)
		copy(geom, req.Geom[:9])
		ng0, ng1, ng2 := int(req.Geom[6]), int(req.Geom[7]), int(req.Geom[8])
		var err error
		for gi := 0; gi < ng0*ng1*ng2 && err == nil; gi++ {
			gz := gi / (ng0 * ng1)
			rem := gi % (ng0 * ng1)
			gy, gx := rem/ng0, rem%ng0
			if req.LocalBytes > 0 {
				if local == nil {
					local = make([]byte, req.LocalBytes)
				} else {
					clear(local)
				}
			}
			geom[9], geom[10], geom[11] = int64(gx), int64(gy), int64(gz)
			if e := run(req.Kernel, req.Gmem, local, priv, req.ParamI, req.ParamF, geom); e != nil {
				err = fmt.Errorf("group (%d,%d,%d): %w", gx, gy, gz, e)
			}
		}
		resp := workerResp{Gmem: req.Gmem}
		if err != nil {
			resp.Err = err.Error()
		}
		if e := enc.Encode(&resp); e != nil {
			return
		}
		if e := bw.Flush(); e != nil {
			return
		}
	}
}

func main() { workerMain() }

`
