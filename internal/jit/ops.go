package jit

import (
	"math"

	"grover/internal/bcode"
	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

const kF32 = uint8(clc.KFloat)

// destBank maps an opcode to its scalar destination bank for the
// uniform execute-once path — an exact mirror of wgvec's table, so both
// backends broadcast in the same cases.
func destBank(op bcode.Opcode) (bcode.Bank, bool) {
	switch op {
	case bcode.OpConstI, bcode.OpZeroI, bcode.OpMovI, bcode.OpGRP, bcode.OpGSZ,
		bcode.OpLSZ, bcode.OpNGRP, bcode.OpWIQ, bcode.OpAllocaP, bcode.OpAllocaL,
		bcode.OpIndex, bcode.OpIndexC,
		bcode.OpAddI, bcode.OpSubI, bcode.OpMulI, bcode.OpAndI, bcode.OpOrI, bcode.OpXorI,
		bcode.OpAddI32, bcode.OpSubI32, bcode.OpMulI32,
		bcode.OpAddU32, bcode.OpSubU32, bcode.OpMulU32,
		bcode.OpIntBin, bcode.OpNegI, bcode.OpNotI,
		bcode.OpEqI, bcode.OpNeI, bcode.OpLtI, bcode.OpLeI, bcode.OpGtI, bcode.OpGeI,
		bcode.OpLtU, bcode.OpLeU, bcode.OpGtU, bcode.OpGeU,
		bcode.OpEqF, bcode.OpNeF, bcode.OpLtF, bcode.OpLeF, bcode.OpGtF, bcode.OpGeF,
		bcode.OpConvI, bcode.OpF2I, bcode.OpExtI, bcode.OpMathI:
		return bcode.BankInt, true
	case bcode.OpZeroF, bcode.OpMovF,
		bcode.OpAddF, bcode.OpSubF, bcode.OpMulF, bcode.OpDivF,
		bcode.OpAddF32, bcode.OpSubF32, bcode.OpMulF32, bcode.OpDivF32,
		bcode.OpFltBin, bcode.OpNegF, bcode.OpI2F, bcode.OpU2F, bcode.OpF2F32,
		bcode.OpExtF, bcode.OpDotVF, bcode.OpDotSS, bcode.OpLenVF, bcode.OpLenSS,
		bcode.OpMathF:
		return bcode.BankFlt, true
	}
	return 0, false
}

// uniformWrapI runs the base op on lane 0 only and broadcasts its int
// destination column when the mask is full, exactly like wgvec's
// execute-once path (retire accounting is a traced concern and traced
// launches delegate, so only the value semantics matter here).
func uniformWrapI(base opFn, a int32) opFn {
	return func(g *groupState, fr *frame, mask []int32, full bool) error {
		if full {
			if err := base(g, fr, lane0Mask, false); err != nil {
				return err
			}
			broadcastLaneI(fr.ri[a])
			return nil
		}
		return base(g, fr, mask, full)
	}
}

func uniformWrapF(base opFn, a int32) opFn {
	return func(g *groupState, fr *frame, mask []int32, full bool) error {
		if full {
			if err := base(g, fr, lane0Mask, false); err != nil {
				return err
			}
			broadcastLaneF(fr.rf[a])
			return nil
		}
		return base(g, fr, mask, full)
	}
}

// compileOp lowers one non-control instruction to its pre-bound
// closure: memory ops get fused single-pass closures, the hot scalar
// ops get dense specialized loops, and the long tail (vector arithmetic
// and shapes) shares a generic sweep equivalent to wgvec's.
func (pr *program) compileOp(in *bcode.Inst, uni bool) opFn {
	if f := pr.compileMem(in, uni); f != nil {
		return f
	}
	base := pr.compileScalar(in)
	if base == nil {
		inst := in
		base = func(g *groupState, fr *frame, mask []int32, full bool) error {
			return g.execGeneric(fr, inst, mask)
		}
	}
	if uni {
		if bank, ok := destBank(in.Op); ok {
			if bank == bcode.BankInt {
				return uniformWrapI(base, in.A)
			}
			return uniformWrapF(base, in.A)
		}
	}
	return base
}

// compileScalar builds the dense specialized closure for one scalar
// instruction, or nil when the opcode has no dedicated form.
func (pr *program) compileScalar(in *bcode.Inst) opFn {
	a, b, c := in.A, in.B, in.C
	switch in.Op {
	case bcode.OpConstI:
		v := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d := fr.ri[a]
			if full {
				for l := range d {
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				d[l] = v
			}
			return nil
		}
	case bcode.OpZeroI:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d := fr.ri[a]
			if full {
				for l := range d {
					d[l] = 0
				}
				return nil
			}
			for _, l := range mask {
				d[l] = 0
			}
			return nil
		}
	case bcode.OpZeroF:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d := fr.rf[a]
			if full {
				for l := range d {
					d[l] = 0
				}
				return nil
			}
			for _, l := range mask {
				d[l] = 0
			}
			return nil
		}
	case bcode.OpMovI:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.ri[a], fr.ri[b]
			if full {
				copy(d, s)
				return nil
			}
			for _, l := range mask {
				d[l] = s[l]
			}
			return nil
		}
	case bcode.OpMovF:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.rf[a], fr.rf[b]
			if full {
				copy(d, s)
				return nil
			}
			for _, l := range mask {
				d[l] = s[l]
			}
			return nil
		}

	case bcode.OpGID:
		dim := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.ri[a], g.gidCol[dim]
			if full {
				copy(d, s)
				return nil
			}
			for _, l := range mask {
				d[l] = s[l]
			}
			return nil
		}
	case bcode.OpLID:
		dim := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.ri[a], g.lidCol[dim]
			if full {
				copy(d, s)
				return nil
			}
			for _, l := range mask {
				d[l] = s[l]
			}
			return nil
		}
	case bcode.OpGRP:
		dim := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, v := fr.ri[a], g.grp[dim]
			if full {
				for l := range d {
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				d[l] = v
			}
			return nil
		}
	case bcode.OpGSZ:
		dim := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, v := fr.ri[a], g.gsz[dim]
			if full {
				for l := range d {
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				d[l] = v
			}
			return nil
		}
	case bcode.OpLSZ:
		dim := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, v := fr.ri[a], g.lsz[dim]
			if full {
				for l := range d {
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				d[l] = v
			}
			return nil
		}
	case bcode.OpNGRP:
		dim := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, v := fr.ri[a], g.ngrp[dim]
			if full {
				for l := range d {
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				d[l] = v
			}
			return nil
		}

	case bcode.OpAllocaP:
		// Private allocas resolve against the lane's own arena, so the
		// tagged address itself is uniform across the group; frameBase is
		// bound at activation time, not compile time.
		imm := uint64(in.Imm)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, v := fr.ri[a], int64(vm.MakeAddr(clc.ASPrivate, uint64(fr.frameBase)+imm))
			if full {
				for l := range d {
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				d[l] = v
			}
			return nil
		}
	case bcode.OpAllocaL:
		v := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d := fr.ri[a]
			if full {
				for l := range d {
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				d[l] = v
			}
			return nil
		}

	case bcode.OpIndex:
		m := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] + y[l]*m
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] + y[l]*m
			}
			return nil
		}
	case bcode.OpIndexC:
		m := in.Imm
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x := fr.ri[a], fr.ri[b]
			if full {
				x = x[:len(d)]
				for l := range d {
					d[l] = x[l] + m
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] + m
			}
			return nil
		}

	case bcode.OpAddI:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] + y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] + y[l]
			}
			return nil
		}
	case bcode.OpSubI:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] - y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] - y[l]
			}
			return nil
		}
	case bcode.OpMulI:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] * y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] * y[l]
			}
			return nil
		}
	case bcode.OpAndI:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] & y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] & y[l]
			}
			return nil
		}
	case bcode.OpOrI:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] | y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] | y[l]
			}
			return nil
		}
	case bcode.OpXorI:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] ^ y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] ^ y[l]
			}
			return nil
		}
	case bcode.OpAddI32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = int64(int32(x[l] + y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = int64(int32(x[l] + y[l]))
			}
			return nil
		}
	case bcode.OpSubI32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = int64(int32(x[l] - y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = int64(int32(x[l] - y[l]))
			}
			return nil
		}
	case bcode.OpMulI32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = int64(int32(x[l] * y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = int64(int32(x[l] * y[l]))
			}
			return nil
		}
	case bcode.OpAddU32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = int64(uint32(x[l] + y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = int64(uint32(x[l] + y[l]))
			}
			return nil
		}
	case bcode.OpSubU32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = int64(uint32(x[l] - y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = int64(uint32(x[l] - y[l]))
			}
			return nil
		}
	case bcode.OpMulU32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = int64(uint32(x[l] * y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = int64(uint32(x[l] * y[l]))
			}
			return nil
		}
	case bcode.OpIntBin:
		op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					v, err := vm.IntBin(op, k, x[l], y[l])
					if err != nil {
						return laneErr(int32(l), err)
					}
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				v, err := vm.IntBin(op, k, x[l], y[l])
				if err != nil {
					return laneErr(l, err)
				}
				d[l] = v
			}
			return nil
		}

	case bcode.OpAddF:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] + y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] + y[l]
			}
			return nil
		}
	case bcode.OpSubF:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] - y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] - y[l]
			}
			return nil
		}
	case bcode.OpMulF:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] * y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] * y[l]
			}
			return nil
		}
	case bcode.OpDivF:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] / y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] / y[l]
			}
			return nil
		}
	case bcode.OpAddF32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = float64(float32(x[l] + y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = float64(float32(x[l] + y[l]))
			}
			return nil
		}
	case bcode.OpSubF32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = float64(float32(x[l] - y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = float64(float32(x[l] - y[l]))
			}
			return nil
		}
	case bcode.OpMulF32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = float64(float32(x[l] * y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = float64(float32(x[l] * y[l]))
			}
			return nil
		}
	case bcode.OpDivF32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = float64(float32(x[l] / y[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = float64(float32(x[l] / y[l]))
			}
			return nil
		}
	case bcode.OpFltBin:
		op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					v, err := vm.FloatBin(op, k, x[l], y[l])
					if err != nil {
						return laneErr(int32(l), err)
					}
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				v, err := vm.FloatBin(op, k, x[l], y[l])
				if err != nil {
					return laneErr(l, err)
				}
				d[l] = v
			}
			return nil
		}

	case bcode.OpNegF:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.rf[a], fr.rf[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					d[l] = -s[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = -s[l]
			}
			return nil
		}
	case bcode.OpNegI:
		k := clc.ScalarKind(in.Kind)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.ri[a], fr.ri[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					d[l] = vm.NormInt(-s[l], k)
				}
				return nil
			}
			for _, l := range mask {
				d[l] = vm.NormInt(-s[l], k)
			}
			return nil
		}
	case bcode.OpNotI:
		k := clc.ScalarKind(in.Kind)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.ri[a], fr.ri[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					d[l] = vm.NormInt(^s[l], k)
				}
				return nil
			}
			for _, l := range mask {
				d[l] = vm.NormInt(^s[l], k)
			}
			return nil
		}

	case bcode.OpEqI, bcode.OpNeI, bcode.OpLtI, bcode.OpLeI, bcode.OpGtI, bcode.OpGeI,
		bcode.OpLtU, bcode.OpLeU, bcode.OpGtU, bcode.OpGeU:
		cmp := intCmp(in.Op)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = cmp(x[l], y[l])
				}
				return nil
			}
			for _, l := range mask {
				d[l] = cmp(x[l], y[l])
			}
			return nil
		}

	case bcode.OpEqF, bcode.OpNeF, bcode.OpLtF, bcode.OpLeF, bcode.OpGtF, bcode.OpGeF:
		cmp := fltCmp(in.Op)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.ri[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = cmp(x[l], y[l])
				}
				return nil
			}
			for _, l := range mask {
				d[l] = cmp(x[l], y[l])
			}
			return nil
		}

	case bcode.OpConvI:
		k := clc.ScalarKind(in.Kind)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.ri[a], fr.ri[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					d[l] = vm.NormInt(s[l], k)
				}
				return nil
			}
			for _, l := range mask {
				d[l] = vm.NormInt(s[l], k)
			}
			return nil
		}
	case bcode.OpI2F:
		k := clc.ScalarKind(in.Kind)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.rf[a], fr.ri[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					d[l] = vm.Round32(k, float64(s[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = vm.Round32(k, float64(s[l]))
			}
			return nil
		}
	case bcode.OpU2F:
		k := clc.ScalarKind(in.Kind)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.rf[a], fr.ri[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					d[l] = vm.Round32(k, float64(uint64(s[l])))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = vm.Round32(k, float64(uint64(s[l])))
			}
			return nil
		}
	case bcode.OpF2I:
		k := clc.ScalarKind(in.Kind)
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.ri[a], fr.rf[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					f := s[l]
					if math.IsNaN(f) {
						d[l] = 0
					} else {
						d[l] = vm.NormInt(int64(f), k)
					}
				}
				return nil
			}
			for _, l := range mask {
				f := s[l]
				if math.IsNaN(f) {
					d[l] = 0
				} else {
					d[l] = vm.NormInt(int64(f), k)
				}
			}
			return nil
		}
	case bcode.OpF2F32:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.rf[a], fr.rf[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					d[l] = float64(float32(s[l]))
				}
				return nil
			}
			for _, l := range mask {
				d[l] = float64(float32(s[l]))
			}
			return nil
		}

	case bcode.OpDotSS:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, x, y := fr.rf[a], fr.rf[b], fr.rf[c]
			if full {
				x = x[:len(d)]
				y = y[:len(d)]
				for l := range d {
					d[l] = x[l] * y[l]
				}
				return nil
			}
			for _, l := range mask {
				d[l] = x[l] * y[l]
			}
			return nil
		}
	case bcode.OpLenSS:
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d, s := fr.rf[a], fr.rf[b]
			if full {
				s = s[:len(d)]
				for l := range d {
					d[l] = math.Abs(s[l])
				}
				return nil
			}
			for _, l := range mask {
				d[l] = math.Abs(s[l])
			}
			return nil
		}

	case bcode.OpMathF:
		ax := &pr.bf.Aux[in.Imm]
		name, k := ax.Name, clc.ScalarKind(in.Kind)
		refs := ax.Refs
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d := fr.rf[a]
			fa := g.scratchF(len(refs))
			if full {
				for l := range d {
					for i, r := range refs {
						fa[i] = fr.rf[r.Idx][l]
					}
					v, err := vm.MathF(name, k, fa)
					if err != nil {
						return laneErr(int32(l), err)
					}
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				for i, r := range refs {
					fa[i] = fr.rf[r.Idx][l]
				}
				v, err := vm.MathF(name, k, fa)
				if err != nil {
					return laneErr(l, err)
				}
				d[l] = v
			}
			return nil
		}
	case bcode.OpMathI:
		ax := &pr.bf.Aux[in.Imm]
		name, k := ax.Name, clc.ScalarKind(in.Kind)
		refs := ax.Refs
		return func(g *groupState, fr *frame, mask []int32, full bool) error {
			d := fr.ri[a]
			ia := g.scratchI(len(refs))
			if full {
				for l := range d {
					for i, r := range refs {
						ia[i] = fr.ri[r.Idx][l]
					}
					v, err := vm.MathI(name, k, ia)
					if err != nil {
						return laneErr(int32(l), err)
					}
					d[l] = v
				}
				return nil
			}
			for _, l := range mask {
				for i, r := range refs {
					ia[i] = fr.ri[r.Idx][l]
				}
				v, err := vm.MathI(name, k, ia)
				if err != nil {
					return laneErr(l, err)
				}
				d[l] = v
			}
			return nil
		}
	}
	return nil
}

// intCmp returns the 0/1 comparison function for an integer compare
// opcode.
func intCmp(op bcode.Opcode) func(x, y int64) int64 {
	switch op {
	case bcode.OpEqI:
		return func(x, y int64) int64 { return b2i(x == y) }
	case bcode.OpNeI:
		return func(x, y int64) int64 { return b2i(x != y) }
	case bcode.OpLtI:
		return func(x, y int64) int64 { return b2i(x < y) }
	case bcode.OpLeI:
		return func(x, y int64) int64 { return b2i(x <= y) }
	case bcode.OpGtI:
		return func(x, y int64) int64 { return b2i(x > y) }
	case bcode.OpGeI:
		return func(x, y int64) int64 { return b2i(x >= y) }
	case bcode.OpLtU:
		return func(x, y int64) int64 { return b2i(uint64(x) < uint64(y)) }
	case bcode.OpLeU:
		return func(x, y int64) int64 { return b2i(uint64(x) <= uint64(y)) }
	case bcode.OpGtU:
		return func(x, y int64) int64 { return b2i(uint64(x) > uint64(y)) }
	default: // OpGeU
		return func(x, y int64) int64 { return b2i(uint64(x) >= uint64(y)) }
	}
}

// fltCmp returns the 0/1 comparison function for a float compare opcode.
func fltCmp(op bcode.Opcode) func(x, y float64) int64 {
	switch op {
	case bcode.OpEqF:
		return func(x, y float64) int64 { return b2i(x == y) }
	case bcode.OpNeF:
		return func(x, y float64) int64 { return b2i(x != y) }
	case bcode.OpLtF:
		return func(x, y float64) int64 { return b2i(x < y) }
	case bcode.OpLeF:
		return func(x, y float64) int64 { return b2i(x <= y) }
	case bcode.OpGtF:
		return func(x, y float64) int64 { return b2i(x > y) }
	default: // OpGeF
		return func(x, y float64) int64 { return b2i(x >= y) }
	}
}

// isFusableCmp reports whether a compare opcode can fuse into an
// immediately following conditional branch.
func isFusableCmp(op bcode.Opcode) bool {
	switch op {
	case bcode.OpEqI, bcode.OpNeI, bcode.OpLtI, bcode.OpLeI, bcode.OpGtI, bcode.OpGeI,
		bcode.OpLtU, bcode.OpLeU, bcode.OpGtU, bcode.OpGeU,
		bcode.OpEqF, bcode.OpNeF, bcode.OpLtF, bcode.OpLeF, bcode.OpGtF, bcode.OpGeF:
		return true
	}
	return false
}

// makeCmpBr fuses a compare and the conditional branch reading it into
// one step: the compare column is written (any other reader sees the
// same value as under wgvec) and the mask splits in the same sweep,
// saving the branch's separate re-read of the column.
func makeCmpBr(cmp, br *bcode.Inst) stepFn {
	a, t, f := cmp.A, int32(br.Imm), br.N
	if fc := fltCmpOrNil(cmp.Op); fc != nil {
		b, c := cmp.B, cmp.C
		return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
			d, x, y := fr.ri[a], fr.rf[b], fr.rf[c]
			segT, segF := g.maskT[:0], g.maskF[:0]
			for _, l := range mask {
				v := fc(x[l], y[l])
				d[l] = v
				if v != 0 {
					segT = append(segT, l)
				} else {
					segF = append(segF, l)
				}
			}
			g.maskT, g.maskF = segT, segF
			return branchOutcome(fr, segT, segF, t, f)
		}
	}
	ic := intCmp(cmp.Op)
	b, c := cmp.B, cmp.C
	return func(g *groupState, depth int, fr *frame, mask []int32) (int32, error) {
		d, x, y := fr.ri[a], fr.ri[b], fr.ri[c]
		segT, segF := g.maskT[:0], g.maskF[:0]
		for _, l := range mask {
			v := ic(x[l], y[l])
			d[l] = v
			if v != 0 {
				segT = append(segT, l)
			} else {
				segF = append(segF, l)
			}
		}
		g.maskT, g.maskF = segT, segF
		return branchOutcome(fr, segT, segF, t, f)
	}
}

// fltCmpOrNil returns the float comparison for op, or nil when op is an
// integer compare.
func fltCmpOrNil(op bcode.Opcode) func(x, y float64) int64 {
	switch op {
	case bcode.OpEqF, bcode.OpNeF, bcode.OpLtF, bcode.OpLeF, bcode.OpGtF, bcode.OpGeF:
		return fltCmp(op)
	}
	return nil
}
