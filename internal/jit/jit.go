// Package jit is a code-generating execution backend for the kernel VM.
// Where bcode interprets register bytecode and wgvec sweeps it over
// columnar lanes, jit eliminates the fetch/decode loop entirely: every
// bcode region program is lowered at compile time into chains of
// pre-bound Go closures — one specialized closure per instruction, with
// operand registers, immediates, scalar kinds, and branch targets all
// resolved before the first launch. Straight-line instruction runs
// execute as a flat closure slice with no per-op program-counter
// bookkeeping, full-mask segments take dense bounds-check-eliminated
// loops instead of mask-indirected sweeps, and the fused GEP+load /
// GEP+store superinstructions resolve the address, decode the arena tag,
// bounds-check, and access memory in a single pass per lane.
//
// The backend reuses wgvec's execution structure wholesale: barrier-
// delimited rounds, per-work-item active masks, and a reconvergence
// scheduler that always runs the pending program point with minimal
// (reverse-post-order block priority, pc). Results, error behavior, and
// memory contents are bit-identical to the other backends.
//
// Traced launches (profiling queues, memsim) delegate to the wgvec
// executor for the same program: trace streams and simulated counters
// stay backend-invariant by construction, while the untraced hot path —
// the one the Fig. 10 wall-clock sweep times — always runs generated
// code. See EXPERIMENTS.md for the invariance argument.
//
// Stage 2, gated behind GROVER_JIT=native (or the -jit-native flag on
// the CLIs), goes one step further: it emits real Go source per kernel,
// builds it with `go build -buildmode=plugin` (with a subprocess worker
// as fallback transport), and content-addresses the built artifact in a
// kcache.DiskStore so a fleet of groverd processes compiles each
// kernel×plan once. When no Go toolchain is available, or the build
// fails for any reason, the closure-threaded stage remains the floor.
//
// The backend registers itself with the VM under the name "jit";
// importing the package (a blank import suffices) enables it.
package jit

import (
	"context"

	"grover/internal/bcode"
	"grover/internal/ir"
	"grover/internal/telemetry"
	"grover/internal/vm"
	"grover/internal/wgvec"
)

// Name is the backend's registration name.
const Name = "jit"

func init() {
	vm.RegisterBackend(Name, func(ctx context.Context, p *vm.Program) (vm.Executor, error) {
		return CompileCtx(ctx, p)
	})
}

// Machine is a prepared program compiled to closure-threaded code: one
// program of pre-bound step closures per function, plus (in native mode)
// the natively compiled kernels. It implements vm.Executor; the vm
// caches one Machine per program, and a Machine is safe for concurrent
// launches from many workers.
type Machine struct {
	bm    *bcode.Machine
	progs map[*ir.Function]*program

	// native holds the stage-2 module when GROVER_JIT=native produced
	// one; nil means closure-threaded execution only.
	native *nativeModule
}

// Compile lowers every function of a prepared program to closure chains.
func Compile(p *vm.Program) (*Machine, error) {
	return CompileCtx(context.Background(), p)
}

// CompileCtx is Compile with span recording: the embedded bytecode
// compile reports as bcode.compile, the closure lowering (and, in
// native mode, the source emission and plugin build) as jit.compile.
func CompileCtx(ctx context.Context, p *vm.Program) (*Machine, error) {
	bm, err := bcode.CompileCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	defer telemetry.StartSpan(ctx, "jit.compile")()
	m := &Machine{bm: bm, progs: map[*ir.Function]*program{}}
	// Uniform execute-once facts assume work-group-uniform parameters,
	// which holds for launch arguments but not for call arguments; only
	// kernels that are never themselves called qualify.
	called := map[*ir.Function]bool{}
	for _, f := range p.Module.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil {
					called[in.Callee] = true
				}
			}
		}
	}
	for _, f := range p.Module.Funcs {
		m.progs[f] = newProgram(bm.Func(f), f.IsKernel && !called[f])
	}
	if NativeEnabled() {
		// Native compilation is best-effort: any failure (no toolchain,
		// incompatible host build, unsupported kernel) leaves the
		// closure-threaded programs as the executable floor.
		m.native = buildNative(ctx, m)
	}
	return m, nil
}

// Program returns the prepared program this machine executes.
func (m *Machine) Program() *vm.Program { return m.bm.Program() }

// traceDelegate returns the wgvec executor for the same program. It
// goes through the program's executor cache, so a traced jit launch and
// a direct wgvec launch share one compiled wgvec machine.
func (m *Machine) traceDelegate() (vm.Executor, error) {
	return m.bm.Program().Executor(wgvec.Name)
}
