package device

import (
	"fmt"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/memsim"
	"grover/internal/vm"
)

// Simulator turns a VM execution trace into simulated device time for one
// profile. It supplies one tracer per VM worker (one worker models one
// core / compute unit); workers accumulate cycles independently and the
// device time is the maximum across workers (they run in parallel).
type Simulator struct {
	Prof    *Profile
	workers []*workerSim
}

// NewSimulator prepares per-core state for the profile.
func NewSimulator(p *Profile) (*Simulator, error) {
	s := &Simulator{Prof: p, workers: make([]*workerSim, p.Cores)}
	for i := range s.workers {
		h, err := memsim.NewHierarchy(p.Caches, p.DRAMLatency)
		if err != nil {
			return nil, fmt.Errorf("device %s: %w", p.Name, err)
		}
		s.workers[i] = &workerSim{prof: p, hier: h}
	}
	return s, nil
}

// Opts returns the launch options wiring this simulator into a VM launch.
func (s *Simulator) Opts() *vm.LaunchOpts {
	return &vm.LaunchOpts{
		Workers:   s.Prof.Cores,
		TracerFor: func(w int) vm.Tracer { return s.workers[w%len(s.workers)] },
	}
}

// LevelStats is one cache level's aggregate activity across all workers.
type LevelStats struct {
	Name string
	memsim.Stats
}

// Result summarizes one simulated launch.
type Result struct {
	// Cycles is the device makespan: the maximum worker cycle count.
	Cycles int64
	// TotalCycles sums all workers (device throughput work).
	TotalCycles int64
	// Instrs, Accesses, Transactions aggregate the whole launch.
	Instrs       int64
	Accesses     int64
	Transactions int64
	// TimeMS converts the makespan to milliseconds at the profile clock.
	TimeMS float64
	// Caches aggregates every cache level's counters across workers, and
	// DRAMAccesses the backstop traffic — the evidence behind the
	// conflict-miss explanations in EXPERIMENTS.md.
	Caches       []LevelStats
	DRAMAccesses int64
}

// Result collects the per-worker counters (counters keep accumulating
// until Reset).
func (s *Simulator) Result() Result {
	var r Result
	for wi, w := range s.workers {
		if w.cycles > r.Cycles {
			r.Cycles = w.cycles
		}
		r.TotalCycles += w.cycles
		r.Instrs += w.instrs
		r.Accesses += w.accesses
		r.Transactions += w.transactions
		for li, lvl := range w.hier.Levels {
			if wi == 0 {
				r.Caches = append(r.Caches, LevelStats{Name: lvl.Name()})
			}
			st := lvl.Stats()
			agg := &r.Caches[li]
			agg.Accesses += st.Accesses
			agg.Hits += st.Hits
			agg.Misses += st.Misses
			agg.Writebacks += st.Writebacks
		}
		r.DRAMAccesses += w.hier.Mem.Accesses
	}
	r.TimeMS = float64(r.Cycles) / (s.Prof.FreqGHz * 1e6)
	return r
}

// Reset clears all worker state (cycles and cache contents).
func (s *Simulator) Reset() {
	for _, w := range s.workers {
		w.cycles, w.instrs, w.accesses, w.transactions = 0, 0, 0, 0
		w.hier.Reset()
		w.group = nil
	}
}

// access is one buffered GPU access record.
type access struct {
	in    *ir.Instr
	addr  uint64
	size  int
	store bool
	space clc.AddrSpace
}

// workerSim is one simulated core / compute unit implementing vm.Tracer.
type workerSim struct {
	prof *Profile
	hier *memsim.Hierarchy

	cycles       int64
	instrs       int64
	accesses     int64
	transactions int64

	// group buffers per-work-item access streams (GPU mode only).
	group    [][]access
	wiInstrs []int64
	groupN   int
}

// localBase maps the per-core local-memory arena into a distinct region of
// the simulated physical address space. The arena is reused from group to
// group on the same core, exactly like a CPU OpenCL runtime's per-thread
// local buffer, so it stays cache-resident.
const localBase = uint64(1) << 40

// privBase maps private (stack) memory; CPU profiles charge a flat cost
// instead, so this is only used for completeness.
const privBase = uint64(1) << 41

// GroupBegin implements vm.Tracer.
func (w *workerSim) GroupBegin(group [3]int, linear int) {
	if w.prof.Kind != GPUKind {
		return
	}
	w.group = w.group[:0]
	w.wiInstrs = w.wiInstrs[:0]
	w.groupN = 0
}

// Access implements vm.Tracer.
func (w *workerSim) Access(in *ir.Instr, wi int, addr uint64, size int, store bool) {
	w.accesses++
	space, off := vm.SplitAddr(addr)
	if w.prof.Kind == CPUKind {
		switch space {
		case clc.ASPrivate:
			w.cycles += w.prof.PrivCost
		case clc.ASLocal:
			// Local memory on a cache-only processor is ordinary memory.
			w.cycles += w.hier.Access(localBase+off, size, store)
		default:
			w.cycles += w.hier.Access(off, size, store)
		}
		return
	}
	// GPU: buffer for warp-level processing at GroupEnd.
	for wi >= len(w.group) {
		w.group = append(w.group, nil)
	}
	w.group[wi] = append(w.group[wi], access{in: in, addr: addr, size: size, store: store, space: space})
	if wi >= w.groupN {
		w.groupN = wi + 1
	}
}

// Barrier implements vm.Tracer.
func (w *workerSim) Barrier(wiCount int) {
	if w.prof.Kind == CPUKind {
		w.cycles += int64(wiCount) * w.prof.BarrierCost
		return
	}
	warps := (wiCount + w.prof.WarpWidth - 1) / w.prof.WarpWidth
	w.cycles += int64(warps) * w.prof.BarrierCost
}

// Instrs implements vm.Tracer.
func (w *workerSim) Instrs(wi int, n int64) {
	w.instrs += n
	if w.prof.Kind == CPUKind {
		w.cycles += int64(float64(n) * w.prof.IssueCost)
		return
	}
	for wi >= len(w.wiInstrs) {
		w.wiInstrs = append(w.wiInstrs, 0)
	}
	w.wiInstrs[wi] += n
	if wi >= w.groupN {
		w.groupN = wi + 1
	}
}

// GroupEnd implements vm.Tracer. For GPUs this is where warps are formed
// and the coalescing/bank models run.
func (w *workerSim) GroupEnd() {
	if w.prof.Kind != GPUKind {
		return
	}
	ww := w.prof.WarpWidth
	for warpStart := 0; warpStart < w.groupN; warpStart += ww {
		warpEnd := warpStart + ww
		if warpEnd > w.groupN {
			warpEnd = w.groupN
		}
		w.processWarp(warpStart, warpEnd)
	}
	w.group = w.group[:0]
	w.wiInstrs = w.wiInstrs[:0]
	w.groupN = 0
}

func (w *workerSim) processWarp(lo, hi int) {
	// Instruction issue: lockstep execution costs the longest lane.
	var maxInstr int64
	for wi := lo; wi < hi && wi < len(w.wiInstrs); wi++ {
		if w.wiInstrs[wi] > maxInstr {
			maxInstr = w.wiInstrs[wi]
		}
	}
	w.cycles += int64(float64(maxInstr) * w.prof.IssueCost)

	// Memory: align lanes position-by-position. Uniform kernels produce
	// identical access sequences per lane; on divergence (differing
	// instructions at one position) each lane is charged separately.
	maxLen := 0
	for wi := lo; wi < hi && wi < len(w.group); wi++ {
		if n := len(w.group[wi]); n > maxLen {
			maxLen = n
		}
	}
	addrs := make([]uint64, 0, hi-lo)
	sizes := make([]int, 0, hi-lo)
	for k := 0; k < maxLen; k++ {
		addrs = addrs[:0]
		sizes = sizes[:0]
		var first *ir.Instr
		uniform := true
		var store bool
		var space clc.AddrSpace
		for wi := lo; wi < hi && wi < len(w.group); wi++ {
			lane := w.group[wi]
			if k >= len(lane) {
				continue
			}
			a := lane[k]
			if first == nil {
				first = a.in
				store = a.store
				space = a.space
			} else if a.in != first {
				uniform = false
			}
			_, off := vm.SplitAddr(a.addr)
			addrs = append(addrs, off)
			sizes = append(sizes, a.size)
		}
		if len(addrs) == 0 {
			continue
		}
		if !uniform {
			// Divergent warp position: serialize each lane.
			for i, a := range addrs {
				w.chargeWarpAccess([]uint64{a}, sizes[i:i+1], space, store)
			}
			continue
		}
		w.chargeWarpAccess(addrs, sizes, space, store)
	}
}

func (w *workerSim) chargeWarpAccess(addrs []uint64, sizes []int, space clc.AddrSpace, store bool) {
	switch space {
	case clc.ASPrivate:
		w.cycles += w.prof.PrivCost
	case clc.ASLocal:
		deg := memsim.BankConflictDegree(addrsWithBase(addrs, localBase), w.prof.SPMBanks, w.prof.BankWidth)
		w.cycles += int64(deg) * w.prof.SPMLat
	default:
		n := memsim.Coalesce(addrs, sizes, w.prof.Segment)
		w.transactions += int64(n)
		// Each transaction pays the issue cost plus the hierarchy cost of
		// one segment.
		seen := map[uint64]struct{}{}
		for i, a := range addrs {
			sz := 4
			if i < len(sizes) {
				sz = sizes[i]
			}
			firstSeg := a / uint64(w.prof.Segment)
			lastSeg := (a + uint64(sz) - 1) / uint64(w.prof.Segment)
			for s := firstSeg; s <= lastSeg; s++ {
				if _, ok := seen[s]; ok {
					continue
				}
				seen[s] = struct{}{}
				w.cycles += w.prof.TransCost + w.hier.Access(s*uint64(w.prof.Segment), w.prof.Segment, store)
			}
		}
	}
}

func addrsWithBase(addrs []uint64, base uint64) []uint64 {
	out := make([]uint64, len(addrs))
	for i, a := range addrs {
		out[i] = base + a
	}
	return out
}
