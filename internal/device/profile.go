// Package device models the six platforms of the paper's evaluation
// (Fermi, Kepler, Tahiti GPUs; Nehalem, Sandy Bridge CPUs; Knights Corner
// MIC) as trace-driven cost models over the memsim hierarchy:
//
//   - CPU-class devices execute a work-group's items serially on one core
//     (as the Intel OpenCL runtime does), every global and __local access
//     goes through that core's cache hierarchy (local memory is ordinary
//     cached memory on CPUs), and barriers pay a per-work-item fiber
//     switch cost.
//   - GPU-class devices execute in warps/wavefronts: per-warp instruction
//     issue, a coalescing unit turning warp accesses into segment
//     transactions that then go through the device cache hierarchy, a
//     banked scratch-pad for __local, and cheap hardware barriers.
//
// Cache geometries are scaled down ~8× from the real parts, matching the
// benchmark datasets which are scaled down ~8-64× from the paper's; this
// keeps every capacity/conflict regime (which side of the cache a working
// set falls on) the same while keeping simulation times reasonable. See
// DESIGN.md §2.
package device

import "grover/internal/memsim"

// Kind classifies the execution model.
type Kind int

// Device kinds.
const (
	// CPUKind devices serialize work-items per core and have no
	// scratch-pad: __local lives in cached ordinary memory.
	CPUKind Kind = iota
	// GPUKind devices execute warps in lockstep with a coalescing unit
	// and an on-chip scratch-pad.
	GPUKind
)

func (k Kind) String() string {
	if k == GPUKind {
		return "gpu"
	}
	return "cpu"
}

// Profile is one simulated platform.
type Profile struct {
	Name string
	Kind Kind
	// Cores is the number of CPU cores or GPU compute units; the VM
	// schedules one worker per core.
	Cores int
	// FreqGHz converts cycles to wall-clock time.
	FreqGHz float64

	// IssueCost is cycles per retired instruction: per work-item on CPUs,
	// per warp on GPUs.
	IssueCost float64
	// BarrierCost is cycles per work-item (CPU fiber switch) or per warp
	// (GPU hardware barrier).
	BarrierCost int64
	// PrivCost is cycles per private-memory access (registers/stack).
	PrivCost int64

	// Caches is the per-core hierarchy, innermost first. For shared last
	// level caches the spec models one core's share. GPU profiles may
	// leave out levels (e.g. Fermi/Kepler do not cache global loads in
	// L1).
	Caches []memsim.CacheSpec
	// DRAMLatency is the backstop cost in cycles.
	DRAMLatency int64

	// GPU-only knobs.
	WarpWidth int // lanes per warp/wavefront
	Segment   int // coalescing transaction size in bytes
	TransCost int64
	SPMLat    int64
	SPMBanks  int
	BankWidth int
}

// line64 is the line size shared by every profile.
const line64 = 64

// SNB is the Sandy Bridge CPU profile (paper: dual Xeon E5-2650, here one
// socket scaled). Unified, inclusive LLC.
func SNB() *Profile {
	return &Profile{
		Name: "SNB", Kind: CPUKind, Cores: 8, FreqGHz: 2.0,
		IssueCost: 1.0, BarrierCost: 40, PrivCost: 1,
		Caches: []memsim.CacheSpec{
			{Name: "L1", Sets: 8, Ways: 8, LineSize: line64, Latency: 4},      // 4 KiB (32 KiB /8)
			{Name: "L2", Sets: 64, Ways: 8, LineSize: line64, Latency: 12},    // 32 KiB (256 KiB /8)
			{Name: "LLC", Sets: 256, Ways: 16, LineSize: line64, Latency: 28}, // 256 KiB share (2.5 MiB/core /8 ≈)
		},
		DRAMLatency: 180,
	}
}

// Nehalem is the previous-generation Intel CPU: same core counts, slower
// uncore, smaller LLC share, higher memory latency.
func Nehalem() *Profile {
	return &Profile{
		Name: "Nehalem", Kind: CPUKind, Cores: 8, FreqGHz: 2.26,
		IssueCost: 1.25, BarrierCost: 55, PrivCost: 1,
		Caches: []memsim.CacheSpec{
			{Name: "L1", Sets: 8, Ways: 8, LineSize: line64, Latency: 4},
			{Name: "L2", Sets: 64, Ways: 8, LineSize: line64, Latency: 14},
			{Name: "LLC", Sets: 128, Ways: 16, LineSize: line64, Latency: 38}, // 128 KiB share
		},
		DRAMLatency: 220,
	}
}

// MIC is the Xeon Phi (Knights Corner) profile: many slow in-order cores,
// a private L2 per core and a *distributed* last-level (no shared LLC
// level at all — the architectural difference §VI-C credits for the small
// with/without-local-memory gaps).
func MIC() *Profile {
	return &Profile{
		Name: "MIC", Kind: CPUKind, Cores: 60, FreqGHz: 1.05,
		IssueCost: 5.0, BarrierCost: 20, PrivCost: 1,
		Caches: []memsim.CacheSpec{
			{Name: "L1", Sets: 8, Ways: 8, LineSize: line64, Latency: 3},
			{Name: "L2", Sets: 128, Ways: 8, LineSize: line64, Latency: 22}, // 64 KiB (512 KiB /8)
		},
		DRAMLatency: 260,
	}
}

// Fermi is the NVIDIA GTX580-class GPU: global loads bypass L1 and go to
// a modest shared L2 (per-SM share modeled), strong coalescing
// sensitivity, fast scratch-pad.
func Fermi() *Profile {
	return &Profile{
		Name: "Fermi", Kind: GPUKind, Cores: 16, FreqGHz: 1.54,
		IssueCost: 1.0, BarrierCost: 24, PrivCost: 0,
		WarpWidth: 32, Segment: 128, TransCost: 2,
		SPMLat: 2, SPMBanks: 32, BankWidth: 4,
		Caches: []memsim.CacheSpec{
			{Name: "L2", Sets: 64, Ways: 6, LineSize: 128, Latency: 10}, // 48 KiB share of 768 KiB
		},
		DRAMLatency: 60,
	}
}

// Kepler is the NVIDIA GTX680-class GPU: more, slower warps per SMX,
// global loads uncached in L1, larger L2 share.
func Kepler() *Profile {
	return &Profile{
		Name: "Kepler", Kind: GPUKind, Cores: 8, FreqGHz: 1.06,
		IssueCost: 0.5, BarrierCost: 20, PrivCost: 0,
		WarpWidth: 32, Segment: 128, TransCost: 2,
		SPMLat: 2, SPMBanks: 32, BankWidth: 4,
		Caches: []memsim.CacheSpec{
			{Name: "L2", Sets: 64, Ways: 8, LineSize: 128, Latency: 8}, // 64 KiB share of 512 KiB
		},
		DRAMLatency: 55,
	}
}

// Tahiti is the AMD HD7970-class GPU: 64-lane wavefronts, a read/write
// per-CU L1 vector cache in front of the L2 share — the cache that lets
// de-staged matmul keep its data on chip.
func Tahiti() *Profile {
	return &Profile{
		Name: "Tahiti", Kind: GPUKind, Cores: 32, FreqGHz: 0.925,
		IssueCost: 1.0, BarrierCost: 20, PrivCost: 0,
		WarpWidth: 64, Segment: 64, TransCost: 5,
		SPMLat: 10, SPMBanks: 32, BankWidth: 4,
		Caches: []memsim.CacheSpec{
			{Name: "L1", Sets: 32, Ways: 4, LineSize: 128, Latency: 1}, // 16 KiB per CU
			{Name: "L2", Sets: 32, Ways: 6, LineSize: 128, Latency: 8}, // 24 KiB share of 768 KiB
		},
		DRAMLatency: 25,
	}
}

// All returns the six paper platforms in the paper's order.
func All() []*Profile {
	return []*Profile{Fermi(), Kepler(), Tahiti(), SNB(), Nehalem(), MIC()}
}

// CPUs returns the three cache-only platforms of Figure 10.
func CPUs() []*Profile {
	return []*Profile{SNB(), Nehalem(), MIC()}
}

// ByName returns the named profile, or nil.
func ByName(name string) *Profile {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}
