package device

import (
	"testing"

	"grover/internal/clc"
	"grover/internal/lower"
	"grover/internal/vm"
)

func TestProfiles(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("All() = %d profiles, want the paper's 6", len(all))
	}
	names := map[string]Kind{
		"Fermi": GPUKind, "Kepler": GPUKind, "Tahiti": GPUKind,
		"SNB": CPUKind, "Nehalem": CPUKind, "MIC": CPUKind,
	}
	for _, p := range all {
		want, ok := names[p.Name]
		if !ok {
			t.Errorf("unexpected profile %s", p.Name)
			continue
		}
		if p.Kind != want {
			t.Errorf("%s kind = %v, want %v", p.Name, p.Kind, want)
		}
		if p.Cores <= 0 || p.FreqGHz <= 0 {
			t.Errorf("%s has bad cores/frequency", p.Name)
		}
		if p.Kind == GPUKind && (p.WarpWidth <= 0 || p.Segment <= 0 || p.SPMBanks <= 0) {
			t.Errorf("%s missing GPU parameters", p.Name)
		}
		if _, err := NewSimulator(p); err != nil {
			t.Errorf("NewSimulator(%s): %v", p.Name, err)
		}
	}
	if ByName("SNB") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
	if len(CPUs()) != 3 {
		t.Error("CPUs() should return the three cache-only platforms")
	}
	// MIC's architectural signature: no shared LLC level.
	if len(MIC().Caches) != 2 {
		t.Error("MIC should have exactly L1+L2 (distributed last level)")
	}
	if len(SNB().Caches) != 3 || len(Nehalem().Caches) != 3 {
		t.Error("SNB/Nehalem should have L1+L2+LLC")
	}
}

func compile(t *testing.T, src string) *vm.Program {
	t.Helper()
	f, err := clc.Parse("t.cl", src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p, err := vm.Prepare(m)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return p
}

// launchWith runs a simple strided-copy kernel through a simulator and
// returns the result.
func launchWith(t *testing.T, prof *Profile, stride int) Result {
	t.Helper()
	p := compile(t, `
__kernel void copy(__global float* dst, __global float* src, int stride) {
    int i = get_global_id(0);
    dst[i] = src[i * stride];
}
`)
	const n = 1024
	g := vm.NewGlobalMem(1 << 24)
	dst := g.Alloc(n * 4)
	src := g.Alloc(n * 4 * max(stride, 1))
	sim, err := NewSimulator(prof)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.Config{
		GlobalSize: [3]int{n, 1, 1},
		LocalSize:  [3]int{64, 1, 1},
		Args:       []vm.Arg{vm.BufArg(dst), vm.BufArg(src), vm.IntArg(int64(stride))},
	}
	if err := p.Launch("copy", cfg, g, sim.Opts()); err != nil {
		t.Fatal(err)
	}
	return sim.Result()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestStridePenaltyOnGPU(t *testing.T) {
	// Uncoalesced (strided) access must cost more than unit stride on a
	// GPU profile — the coalescing model at work.
	seq := launchWith(t, Fermi(), 1)
	strided := launchWith(t, Fermi(), 32)
	if strided.Cycles <= seq.Cycles {
		t.Errorf("strided (%d cycles) should exceed sequential (%d cycles) on Fermi",
			strided.Cycles, seq.Cycles)
	}
	if seq.Transactions == 0 || strided.Transactions <= seq.Transactions {
		t.Errorf("transactions: seq=%d strided=%d", seq.Transactions, strided.Transactions)
	}
}

func TestStridePenaltyOnCPU(t *testing.T) {
	// The CPU cache model must also punish large strides (one line per
	// element instead of 16 elements per line).
	seq := launchWith(t, SNB(), 1)
	strided := launchWith(t, SNB(), 32)
	if strided.Cycles <= seq.Cycles {
		t.Errorf("strided (%d) should exceed sequential (%d) on SNB",
			strided.Cycles, seq.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	a := launchWith(t, SNB(), 7)
	b := launchWith(t, SNB(), 7)
	if a.Cycles != b.Cycles || a.Instrs != b.Instrs {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
	c := launchWith(t, Kepler(), 7)
	d := launchWith(t, Kepler(), 7)
	if c.Cycles != d.Cycles {
		t.Errorf("GPU simulation not deterministic: %d vs %d", c.Cycles, d.Cycles)
	}
}

func TestSimulatorReset(t *testing.T) {
	prof := SNB()
	sim, err := NewSimulator(prof)
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, `
__kernel void k(__global float* a) { a[get_global_id(0)] = 1.0f; }
`)
	g := vm.NewGlobalMem(1 << 16)
	buf := g.Alloc(256 * 4)
	cfg := vm.Config{
		GlobalSize: [3]int{256, 1, 1},
		LocalSize:  [3]int{64, 1, 1},
		Args:       []vm.Arg{vm.BufArg(buf)},
	}
	if err := p.Launch("k", cfg, g, sim.Opts()); err != nil {
		t.Fatal(err)
	}
	r1 := sim.Result()
	sim.Reset()
	if err := p.Launch("k", cfg, g, sim.Opts()); err != nil {
		t.Fatal(err)
	}
	r2 := sim.Result()
	if r1.Cycles != r2.Cycles {
		t.Errorf("Reset not clean: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
	if r1.TimeMS <= 0 {
		t.Error("TimeMS should be positive")
	}
}

func TestBarrierCostCharged(t *testing.T) {
	withBarrier := compile(t, `
__kernel void k(__global float* a) {
    __local float sm[64];
    int lx = get_local_id(0);
    sm[lx] = 1.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    a[get_global_id(0)] = sm[lx];
}
`)
	withoutBarrier := compile(t, `
__kernel void k(__global float* a) {
    __local float sm[64];
    int lx = get_local_id(0);
    sm[lx] = 1.0f;
    a[get_global_id(0)] = sm[lx];
}
`)
	run := func(p *vm.Program) Result {
		g := vm.NewGlobalMem(1 << 16)
		buf := g.Alloc(256 * 4)
		sim, _ := NewSimulator(SNB())
		cfg := vm.Config{
			GlobalSize: [3]int{256, 1, 1},
			LocalSize:  [3]int{64, 1, 1},
			Args:       []vm.Arg{vm.BufArg(buf)},
		}
		if err := p.Launch("k", cfg, g, sim.Opts()); err != nil {
			t.Fatal(err)
		}
		return sim.Result()
	}
	a := run(withBarrier)
	b := run(withoutBarrier)
	if a.Cycles <= b.Cycles {
		t.Errorf("barrier version (%d) should cost more than barrier-free (%d)", a.Cycles, b.Cycles)
	}
}
