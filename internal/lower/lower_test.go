package lower

import (
	"testing"

	"grover/internal/clc"
	"grover/internal/ir"
)

func lowerSrc(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := clc.Parse("t.cl", src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

func count(fn *ir.Function, op ir.Op) int {
	n := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestLoweredIRVerifies(t *testing.T) {
	m := lowerSrc(t, `
float helper(float a) { return a * 2.0f; }
__kernel void k(__global float* out, __global float4* v, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < n; j++) {
        if (j % 2 == 0) acc += helper((float)j);
        else acc -= 0.5f;
    }
    float4 x = v[i];
    out[i] = acc + x.x + x.w + dot(x, x);
}
`)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalIDExpansion(t *testing.T) {
	// get_global_id must lower to group*size+lid so Grover's analysis sees
	// the local-id dependence.
	m := lowerSrc(t, `
__kernel void k(__global float* out) { out[get_global_id(0)] = 1.0f; }
`)
	fn := m.Kernel("k")
	var funcs []string
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpWorkItem {
				funcs = append(funcs, in.Func)
			}
		}
	}
	want := map[string]bool{"get_group_id": false, "get_local_size": false, "get_local_id": false}
	for _, f := range funcs {
		if _, ok := want[f]; ok {
			want[f] = true
		}
		if f == "get_global_id" {
			t.Error("get_global_id should be expanded away")
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("expansion missing %s", f)
		}
	}
}

func TestAllocasHoistedToEntry(t *testing.T) {
	m := lowerSrc(t, `
__kernel void k(__global int* out, int n) {
    for (int i = 0; i < n; i++) {
        int tmp = i * 2;
        out[i] = tmp;
    }
}
`)
	fn := m.Kernel("k")
	entry := fn.Entry()
	total := count(fn, ir.OpAlloca)
	inEntry := 0
	for _, in := range entry.Instrs {
		if in.Op == ir.OpAlloca {
			inEntry++
		}
	}
	if total != inEntry {
		t.Errorf("%d allocas total but only %d in the entry block", total, inEntry)
	}
}

func TestImmutableParamsUsedDirectly(t *testing.T) {
	m := lowerSrc(t, `
__kernel void k(__global float* a, int n) {
    a[get_global_id(0)] = (float)n;
}
`)
	fn := m.Kernel("k")
	// n is never assigned → no alloca for it (only buffers indexed).
	if got := count(fn, ir.OpAlloca); got != 0 {
		t.Errorf("expected no allocas for immutable params, got %d", got)
	}
}

func TestMutatedParamGetsSlot(t *testing.T) {
	m := lowerSrc(t, `
__kernel void k(__global float* a, int n) {
    n = n + 1;
    a[get_global_id(0)] = (float)n;
}
`)
	fn := m.Kernel("k")
	if got := count(fn, ir.OpAlloca); got != 1 {
		t.Errorf("expected one alloca for the mutated param, got %d", got)
	}
}

func TestShortCircuitBranches(t *testing.T) {
	m := lowerSrc(t, `
__kernel void k(__global int* out, __global int* guard) {
    int i = get_global_id(0);
    /* guard[1000000] would fault if && did not short-circuit */
    if (i < 0 && guard[1000000] > 0) out[i] = 1;
    else out[i] = 2;
}
`)
	fn := m.Kernel("k")
	if count(fn, ir.OpCondBr) < 2 {
		t.Error("short-circuit && should lower to multiple conditional branches")
	}
}

func TestLocalDeclSpaces(t *testing.T) {
	m := lowerSrc(t, `
__kernel void k(__global float* out) {
    __local float sm[32];
    int lx = get_local_id(0);
    sm[lx] = 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[lx] = sm[lx];
}
`)
	fn := m.Kernel("k")
	locals, privates := 0, 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				if in.Space == clc.ASLocal {
					locals++
				} else {
					privates++
				}
			}
		}
	}
	if locals != 1 {
		t.Errorf("local allocas = %d, want 1", locals)
	}
	if privates != 1 { // lx
		t.Errorf("private allocas = %d, want 1", privates)
	}
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	f, err := clc.Parse("t.cl", `__kernel void k(__global int* a) { break; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Module(f); err == nil {
		t.Error("break outside loop must be a lowering error")
	}
}

func TestVectorSwizzleLowering(t *testing.T) {
	m := lowerSrc(t, `
__kernel void k(__global float4* v) {
    int i = get_global_id(0);
    float4 x = v[i];
    x.xy = x.yx;
    x.w = 5.0f;
    v[i] = x;
}
`)
	fn := m.Kernel("k")
	if count(fn, ir.OpInsert) == 0 {
		t.Error("swizzle assignment should lower to insert instructions")
	}
	if count(fn, ir.OpExtract)+count(fn, ir.OpShuffle) == 0 {
		t.Error("swizzle read should lower to extract/shuffle")
	}
}
