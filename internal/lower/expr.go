package lower

import (
	"grover/internal/clc"
	"grover/internal/ir"
)

// convert inserts the conversion of v to type to, including scalar→vector
// splats.
func (lw *lowerer) convert(v ir.Value, to clc.Type, pos clc.Pos) (ir.Value, error) {
	from := v.Type()
	if clc.TypesEqual(from, to) {
		return v, nil
	}
	switch tt := to.(type) {
	case *clc.ScalarType:
		if _, ok := from.(*clc.ScalarType); ok {
			return lw.b.Convert(v, tt, pos), nil
		}
		if _, ok := from.(*clc.PointerType); ok {
			return lw.b.Convert(v, tt, pos), nil
		}
	case *clc.VectorType:
		if fs, ok := from.(*clc.ScalarType); ok && fs.Kind != clc.KVoid {
			s, err := lw.convert(v, tt.Elem, pos)
			if err != nil {
				return nil, err
			}
			lanes := make([]ir.Value, tt.Len)
			for i := range lanes {
				lanes[i] = s
			}
			return lw.b.BuildVec(tt, lanes, pos), nil
		}
		if fv, ok := from.(*clc.VectorType); ok && fv.Len == tt.Len {
			return lw.b.Convert(v, tt, pos), nil
		}
	case *clc.PointerType:
		if _, ok := from.(*clc.PointerType); ok {
			return lw.b.Convert(v, tt, pos), nil
		}
	}
	return nil, errAt(pos, "unsupported conversion %s → %s", from, to)
}

// lvalue lowers e to a pointer value addressing its storage.
func (lw *lowerer) lvalue(e clc.Expr) (ir.Value, error) {
	switch ex := e.(type) {
	case *clc.Ident:
		if slot, ok := lw.storage[ex.Sym]; ok {
			return slot, nil
		}
		if _, ok := lw.direct[ex.Sym]; ok {
			return nil, errAt(ex.Pos, "internal: parameter %s is not addressable (not marked mutated)", ex.Name)
		}
		return nil, errAt(ex.Pos, "internal: no storage for %s", ex.Name)

	case *clc.Index:
		var base ir.Value
		var err error
		switch ex.X.ExprType().(type) {
		case *clc.PointerType:
			base, err = lw.expr(ex.X)
		case *clc.ArrayType:
			base, err = lw.lvalue(ex.X)
		default:
			return nil, errAt(ex.Pos, "cannot index %s", ex.X.ExprType())
		}
		if err != nil {
			return nil, err
		}
		idx, err := lw.expr(ex.I)
		if err != nil {
			return nil, err
		}
		idxL, err := lw.convert(idx, clc.TypeLong, ex.Pos)
		if err != nil {
			return nil, err
		}
		return lw.b.Index(base, idxL, ex.Pos), nil

	case *clc.Unary:
		if ex.Op == "*" {
			return lw.expr(ex.X)
		}
	}
	return nil, errAt(e.NodePos(), "expression is not addressable")
}

// rvalueOfLValue loads the current value of an lvalue expression.
func (lw *lowerer) rvalueOfLValue(e clc.Expr) (ir.Value, error) {
	if m, ok := e.(*clc.Member); ok {
		vec, err := lw.expr(m.X)
		if err != nil {
			return nil, err
		}
		return lw.extractSwizzle(vec, m.Comps, m.ExprType(), m.Pos), nil
	}
	ptr, err := lw.lvalue(e)
	if err != nil {
		return nil, err
	}
	return lw.b.Load(ptr, e.NodePos()), nil
}

func (lw *lowerer) extractSwizzle(vec ir.Value, comps []int, typ clc.Type, pos clc.Pos) ir.Value {
	if len(comps) == 1 {
		return lw.b.Extract(vec, comps[0], pos)
	}
	return lw.b.Shuffle(vec, comps, typ, pos)
}

// storeLValue assigns val (already of the lvalue's type) to the lvalue.
func (lw *lowerer) storeLValue(e clc.Expr, val ir.Value) error {
	if m, ok := e.(*clc.Member); ok {
		// Read-modify-write on the underlying vector.
		basePtr, err := lw.lvalue(m.X)
		if err != nil {
			return err
		}
		cur := lw.b.Load(basePtr, m.Pos)
		var next ir.Value = cur
		if len(m.Comps) == 1 {
			next = lw.b.Insert(next, val, m.Comps[0], m.Pos)
		} else {
			for i, c := range m.Comps {
				lane := lw.b.Extract(val, i, m.Pos)
				next = lw.b.Insert(next, lane, c, m.Pos)
			}
		}
		lw.b.Store(basePtr, next, m.Pos)
		return nil
	}
	ptr, err := lw.lvalue(e)
	if err != nil {
		return err
	}
	lw.b.Store(ptr, val, e.NodePos())
	return nil
}

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpShr,
}

var cmpOps = map[string]ir.Op{
	"==": ir.OpEq, "!=": ir.OpNe, "<": ir.OpLt, "<=": ir.OpLe, ">": ir.OpGt, ">=": ir.OpGe,
}

func (lw *lowerer) expr(e clc.Expr) (ir.Value, error) {
	switch ex := e.(type) {
	case *clc.IntLit:
		return &ir.ConstInt{Val: ex.Value, Typ: ex.ExprType()}, nil
	case *clc.FloatLit:
		return &ir.ConstFloat{Val: ex.Value, Typ: ex.ExprType()}, nil
	case *clc.StringLit:
		return nil, errAt(ex.Pos, "string literals are not supported in kernels")

	case *clc.Ident:
		if v, ok := lw.direct[ex.Sym]; ok {
			return v, nil
		}
		if slot, ok := lw.storage[ex.Sym]; ok {
			// Arrays decay to a pointer to their first element.
			if _, isArr := ex.Sym.Type.(*clc.ArrayType); isArr {
				return slot, nil
			}
			return lw.b.Load(slot, ex.Pos), nil
		}
		return nil, errAt(ex.Pos, "internal: unresolved identifier %s", ex.Name)

	case *clc.Unary:
		return lw.unary(ex)

	case *clc.Postfix:
		old, err := lw.rvalueOfLValue(ex.X)
		if err != nil {
			return nil, err
		}
		one := onefor(ex.X.ExprType())
		op := ir.OpAdd
		if ex.Op == "--" {
			op = ir.OpSub
		}
		next := lw.b.Bin(op, ex.X.ExprType(), old, one, ex.Pos)
		if err := lw.storeLValue(ex.X, next); err != nil {
			return nil, err
		}
		return old, nil

	case *clc.Binary:
		return lw.binary(ex)

	case *clc.Assign:
		return lw.assign(ex)

	case *clc.Cond:
		return lw.ternary(ex)

	case *clc.Index:
		ptr, err := lw.lvalue(ex)
		if err != nil {
			return nil, err
		}
		// Indexing a multi-dimensional array yields the sub-array pointer,
		// which is already the decayed value.
		if _, isArr := ex.ExprType().(*clc.ArrayType); isArr {
			return ptr, nil
		}
		return lw.b.Load(ptr, ex.Pos), nil

	case *clc.Member:
		vec, err := lw.expr(ex.X)
		if err != nil {
			return nil, err
		}
		return lw.extractSwizzle(vec, ex.Comps, ex.ExprType(), ex.Pos), nil

	case *clc.Call:
		return lw.call(ex)

	case *clc.Cast:
		v, err := lw.expr(ex.X)
		if err != nil {
			return nil, err
		}
		return lw.convert(v, ex.To, ex.Pos)

	case *clc.VecLit:
		return lw.vecLit(ex)

	case *clc.SizeofExpr:
		return &ir.ConstInt{Val: int64(ex.Of.Size()), Typ: clc.TypeULong}, nil
	}
	return nil, errAt(e.NodePos(), "lower: unhandled expression %T", e)
}

func onefor(t clc.Type) ir.Value {
	if s, ok := t.(*clc.ScalarType); ok && s.Kind.IsFloat() {
		return &ir.ConstFloat{Val: 1, Typ: s}
	}
	return &ir.ConstInt{Val: 1, Typ: t}
}

func (lw *lowerer) unary(ex *clc.Unary) (ir.Value, error) {
	switch ex.Op {
	case "+":
		return lw.expr(ex.X)
	case "-":
		x, err := lw.expr(ex.X)
		if err != nil {
			return nil, err
		}
		return lw.b.Un(ir.OpNeg, ex.ExprType(), x, ex.Pos), nil
	case "~":
		x, err := lw.expr(ex.X)
		if err != nil {
			return nil, err
		}
		return lw.b.Un(ir.OpNot, ex.ExprType(), x, ex.Pos), nil
	case "!":
		x, err := lw.expr(ex.X)
		if err != nil {
			return nil, err
		}
		return lw.b.Cmp(ir.OpEq, x, zeroLike(x.Type()), ex.Pos), nil
	case "*":
		p, err := lw.expr(ex.X)
		if err != nil {
			return nil, err
		}
		return lw.b.Load(p, ex.Pos), nil
	case "&":
		return lw.lvalue(ex.X)
	case "++", "--":
		old, err := lw.rvalueOfLValue(ex.X)
		if err != nil {
			return nil, err
		}
		op := ir.OpAdd
		if ex.Op == "--" {
			op = ir.OpSub
		}
		next := lw.b.Bin(op, ex.X.ExprType(), old, onefor(ex.X.ExprType()), ex.Pos)
		if err := lw.storeLValue(ex.X, next); err != nil {
			return nil, err
		}
		return next, nil
	}
	return nil, errAt(ex.Pos, "unsupported unary %q", ex.Op)
}

func zeroLike(t clc.Type) ir.Value {
	if s, ok := t.(*clc.ScalarType); ok && s.Kind.IsFloat() {
		return &ir.ConstFloat{Val: 0, Typ: s}
	}
	return &ir.ConstInt{Val: 0, Typ: t}
}

func (lw *lowerer) binary(ex *clc.Binary) (ir.Value, error) {
	switch ex.Op {
	case "&&", "||":
		return lw.shortCircuit(ex)
	}
	l, err := lw.expr(ex.L)
	if err != nil {
		return nil, err
	}
	// Pointer arithmetic.
	if _, isPtr := l.Type().(*clc.PointerType); isPtr && (ex.Op == "+" || ex.Op == "-") {
		r, err := lw.expr(ex.R)
		if err != nil {
			return nil, err
		}
		rl, err := lw.convert(r, clc.TypeLong, ex.Pos)
		if err != nil {
			return nil, err
		}
		if ex.Op == "-" {
			rl = lw.b.Un(ir.OpNeg, clc.TypeLong, rl, ex.Pos)
		}
		return lw.b.Index(l, rl, ex.Pos), nil
	}
	r, err := lw.expr(ex.R)
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[ex.Op]; ok {
		pt := clc.Promote(l.Type(), r.Type())
		lc, err := lw.convert(l, pt, ex.Pos)
		if err != nil {
			return nil, err
		}
		rc, err := lw.convert(r, pt, ex.Pos)
		if err != nil {
			return nil, err
		}
		return lw.b.Cmp(op, lc, rc, ex.Pos), nil
	}
	op, ok := binOps[ex.Op]
	if !ok {
		return nil, errAt(ex.Pos, "unsupported binary operator %q", ex.Op)
	}
	rt := ex.ExprType()
	lc, err := lw.convert(l, rt, ex.Pos)
	if err != nil {
		return nil, err
	}
	rc, err := lw.convert(r, rt, ex.Pos)
	if err != nil {
		return nil, err
	}
	return lw.b.Bin(op, rt, lc, rc, ex.Pos), nil
}

// shortCircuit lowers && and || via control flow into an int temp.
func (lw *lowerer) shortCircuit(ex *clc.Binary) (ir.Value, error) {
	tmp := lw.emitAlloca(clc.TypeInt, clc.ASPrivate, "sc.tmp", ex.Pos)
	l, err := lw.expr(ex.L)
	if err != nil {
		return nil, err
	}
	lBool := lw.b.Cmp(ir.OpNe, l, zeroLike(l.Type()), ex.Pos)
	evalR := lw.irf.NewBlock("sc.rhs")
	short := lw.irf.NewBlock("sc.short")
	done := lw.irf.NewBlock("sc.done")
	if ex.Op == "&&" {
		lw.b.CondBr(lBool, evalR, short, ex.Pos)
	} else {
		lw.b.CondBr(lBool, short, evalR, ex.Pos)
	}
	// Short-circuit value: 0 for &&, 1 for ||.
	lw.b.SetBlock(short)
	sv := int64(0)
	if ex.Op == "||" {
		sv = 1
	}
	lw.b.Store(tmp, ir.IntConst(sv), ex.Pos)
	lw.b.Br(done, ex.Pos)

	lw.b.SetBlock(evalR)
	r, err := lw.expr(ex.R)
	if err != nil {
		return nil, err
	}
	rBool := lw.b.Cmp(ir.OpNe, r, zeroLike(r.Type()), ex.Pos)
	lw.b.Store(tmp, rBool, ex.Pos)
	lw.b.Br(done, ex.Pos)

	lw.b.SetBlock(done)
	return lw.b.Load(tmp, ex.Pos), nil
}

func (lw *lowerer) ternary(ex *clc.Cond) (ir.Value, error) {
	rt := ex.ExprType()
	tmp := lw.emitAlloca(rt, clc.ASPrivate, "cond.tmp", ex.Pos)
	c, err := lw.expr(ex.C)
	if err != nil {
		return nil, err
	}
	thenBlk := lw.irf.NewBlock("cond.t")
	elseBlk := lw.irf.NewBlock("cond.f")
	done := lw.irf.NewBlock("cond.done")
	lw.b.CondBr(c, thenBlk, elseBlk, ex.Pos)

	lw.b.SetBlock(thenBlk)
	tv, err := lw.expr(ex.T)
	if err != nil {
		return nil, err
	}
	tc, err := lw.convert(tv, rt, ex.Pos)
	if err != nil {
		return nil, err
	}
	lw.b.Store(tmp, tc, ex.Pos)
	lw.b.Br(done, ex.Pos)

	lw.b.SetBlock(elseBlk)
	fv, err := lw.expr(ex.F)
	if err != nil {
		return nil, err
	}
	fc, err := lw.convert(fv, rt, ex.Pos)
	if err != nil {
		return nil, err
	}
	lw.b.Store(tmp, fc, ex.Pos)
	lw.b.Br(done, ex.Pos)

	lw.b.SetBlock(done)
	return lw.b.Load(tmp, ex.Pos), nil
}

func (lw *lowerer) assign(ex *clc.Assign) (ir.Value, error) {
	r, err := lw.expr(ex.R)
	if err != nil {
		return nil, err
	}
	lt := ex.L.ExprType()
	if ex.Op == "=" {
		rc, err := lw.convert(r, lt, ex.Pos)
		if err != nil {
			return nil, err
		}
		if err := lw.storeLValue(ex.L, rc); err != nil {
			return nil, err
		}
		return rc, nil
	}
	// Compound assignment: load, op, store.
	op, ok := binOps[ex.Op[:len(ex.Op)-1]]
	if !ok {
		return nil, errAt(ex.Pos, "unsupported compound assignment %q", ex.Op)
	}
	cur, err := lw.rvalueOfLValue(ex.L)
	if err != nil {
		return nil, err
	}
	rc, err := lw.convert(r, lt, ex.Pos)
	if err != nil {
		return nil, err
	}
	next := lw.b.Bin(op, lt, cur, rc, ex.Pos)
	if err := lw.storeLValue(ex.L, next); err != nil {
		return nil, err
	}
	return next, nil
}

func (lw *lowerer) call(ex *clc.Call) (ir.Value, error) {
	var args []ir.Value
	for _, a := range ex.Args {
		v, err := lw.expr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	if ex.Builtin != nil {
		switch ex.Builtin.Kind {
		case clc.BWorkItem:
			var dim ir.Value
			if len(args) > 0 {
				d, err := lw.convert(args[0], clc.TypeInt, ex.Pos)
				if err != nil {
					return nil, err
				}
				dim = d
			}
			// get_global_id(d) is canonicalized to
			// get_group_id(d)*get_local_size(d) + get_local_id(d) so that
			// index analyses (Grover) see the local-id dependence that a
			// global id hides.
			if ex.FuncName == "get_global_id" {
				grp := lw.b.WorkItem("get_group_id", dim, ex.Pos)
				lsz := lw.b.WorkItem("get_local_size", dim, ex.Pos)
				lid := lw.b.WorkItem("get_local_id", dim, ex.Pos)
				mul := lw.b.Bin(ir.OpMul, clc.TypeULong, grp, lsz, ex.Pos)
				return lw.b.Bin(ir.OpAdd, clc.TypeULong, mul, lid, ex.Pos), nil
			}
			return lw.b.WorkItem(ex.FuncName, dim, ex.Pos), nil
		case clc.BBarrier:
			flags := args[0]
			return lw.b.Barrier(flags, ex.Pos), nil
		case clc.BMath:
			rt := ex.ExprType()
			conv := make([]ir.Value, len(args))
			for i, a := range args {
				c, err := lw.convert(a, rt, ex.Pos)
				if err != nil {
					return nil, err
				}
				conv[i] = c
			}
			return lw.b.Math(ex.FuncName, rt, conv, ex.Pos), nil
		case clc.BGeom:
			// Geometric builtins keep vector argument types.
			conv := make([]ir.Value, len(args))
			conv[0] = args[0]
			for i := 1; i < len(args); i++ {
				c, err := lw.convert(args[i], args[0].Type(), ex.Pos)
				if err != nil {
					return nil, err
				}
				conv[i] = c
			}
			return lw.b.Math(ex.FuncName, ex.ExprType(), conv, ex.Pos), nil
		}
	}
	callee := lw.funcs[ex.FuncName]
	if callee == nil {
		return nil, errAt(ex.Pos, "call to unknown function %q", ex.FuncName)
	}
	for i := range args {
		c, err := lw.convert(args[i], callee.Params[i].Typ, ex.Pos)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	return lw.b.Call(callee, args, ex.Pos), nil
}

func (lw *lowerer) vecLit(ex *clc.VecLit) (ir.Value, error) {
	var lanes []ir.Value
	for _, el := range ex.Elems {
		v, err := lw.expr(el)
		if err != nil {
			return nil, err
		}
		if vt, ok := v.Type().(*clc.VectorType); ok {
			for i := 0; i < vt.Len; i++ {
				lanes = append(lanes, lw.b.Extract(v, i, ex.Pos))
			}
			continue
		}
		c, err := lw.convert(v, ex.To.Elem, ex.Pos)
		if err != nil {
			return nil, err
		}
		lanes = append(lanes, c)
	}
	// A single scalar element splats.
	if len(lanes) == 1 && ex.To.Len > 1 {
		s := lanes[0]
		lanes = make([]ir.Value, ex.To.Len)
		for i := range lanes {
			lanes[i] = s
		}
	}
	if len(lanes) != ex.To.Len {
		return nil, errAt(ex.Pos, "vector literal lane count %d != %d", len(lanes), ex.To.Len)
	}
	return lw.b.BuildVec(ex.To, lanes, ex.Pos), nil
}
