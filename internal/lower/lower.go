// Package lower translates the clc AST into the ir form. Mutable variables
// become entry-block allocas; parameters that are never reassigned are used
// directly. Control flow (if, for, while, short-circuit logic, the
// conditional operator) is lowered to basic blocks.
package lower

import (
	"fmt"

	"grover/internal/clc"
	"grover/internal/ir"
)

// Module lowers a parsed file into an IR module.
func Module(f *clc.File) (*ir.Module, error) {
	m := &ir.Module{Name: f.Name}
	// Create function shells first so calls can resolve.
	shells := map[string]*ir.Function{}
	for _, fn := range f.Funcs {
		irf := &ir.Function{Name: fn.Name, IsKernel: fn.IsKernel, Ret: fn.Ret}
		for i, p := range fn.Params {
			irf.Params = append(irf.Params, &ir.Param{Name_: p.Name, Typ: p.Type, Index: i, Space: p.Space})
		}
		m.Funcs = append(m.Funcs, irf)
		shells[fn.Name] = irf
	}
	for _, fn := range f.Funcs {
		lw := &lowerer{
			fn:      fn,
			irf:     shells[fn.Name],
			funcs:   shells,
			storage: map[*clc.Symbol]ir.Value{},
			direct:  map[*clc.Symbol]ir.Value{},
		}
		if err := lw.lowerBody(); err != nil {
			return nil, err
		}
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("lower: produced invalid IR: %w", err)
	}
	return m, nil
}

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type lowerer struct {
	fn    *clc.FuncDecl
	irf   *ir.Function
	funcs map[string]*ir.Function
	b     *ir.Builder
	// storage maps mutable symbols to their alloca pointer.
	storage map[*clc.Symbol]ir.Value
	// direct maps immutable parameters to their Param value.
	direct map[*clc.Symbol]ir.Value
	loops  []loopCtx
	// allocaBlk is the dedicated first block that holds all allocas.
	allocaBlk *ir.Block
}

func (lw *lowerer) lowerBody() error {
	lw.b = ir.NewBuilder(lw.irf)
	lw.allocaBlk = lw.b.Cur // entry block holds allocas only
	body := lw.irf.NewBlock("body")

	mutated := collectMutatedParams(lw.fn)
	for i, p := range lw.fn.Params {
		prm := lw.irf.Params[i]
		psym := paramSymbol(lw.fn, i)
		if psym == nil {
			continue
		}
		if mutated[p.Name] {
			slot := lw.b.Alloca(p.Type, clc.ASPrivate, p.Name, p.Pos)
			lw.b.Store(slot, prm, p.Pos)
			lw.storage[psym] = slot
		} else {
			lw.direct[psym] = prm
		}
	}

	lw.b.SetBlock(body)
	if err := lw.stmt(lw.fn.Body); err != nil {
		return err
	}
	if !lw.b.Terminated() {
		if clc.TypesEqual(lw.fn.Ret, clc.TypeVoid) {
			lw.b.Ret(nil, lw.fn.Pos)
		} else {
			lw.b.Ret(zeroValue(lw.fn.Ret), lw.fn.Pos)
		}
	}
	// Terminate the alloca block with a branch to the body.
	save := lw.b.Cur
	lw.b.SetBlock(lw.allocaBlk)
	lw.b.Br(body, lw.fn.Pos)
	lw.b.SetBlock(save)

	// Remove unterminated unreachable blocks created by break/continue
	// lowering (e.g. a block after "break;" with no instructions).
	lw.sealDeadBlocks()
	return nil
}

// sealDeadBlocks gives every unterminated block a trailing return so the
// verifier's invariants hold; such blocks are unreachable by construction.
func (lw *lowerer) sealDeadBlocks() {
	for _, blk := range lw.irf.Blocks {
		if blk.Terminator() == nil {
			save := lw.b.Cur
			lw.b.SetBlock(blk)
			if clc.TypesEqual(lw.fn.Ret, clc.TypeVoid) {
				lw.b.Ret(nil, lw.fn.Pos)
			} else {
				lw.b.Ret(zeroValue(lw.fn.Ret), lw.fn.Pos)
			}
			lw.b.SetBlock(save)
		}
	}
}

// emitAlloca emits an alloca into the dedicated alloca block.
func (lw *lowerer) emitAlloca(typ clc.Type, space clc.AddrSpace, name string, pos clc.Pos) *ir.Instr {
	save := lw.b.Cur
	lw.b.SetBlock(lw.allocaBlk)
	a := lw.b.Alloca(typ, space, name, pos)
	lw.b.SetBlock(save)
	return a
}

// paramSymbol finds the resolved Symbol for parameter index i by scanning
// the body's identifier uses; returns a fresh symbol when the parameter is
// unused.
func paramSymbol(fn *clc.FuncDecl, i int) *clc.Symbol {
	var found *clc.Symbol
	walkExprs(fn.Body, func(e clc.Expr) {
		if id, ok := e.(*clc.Ident); ok && id.Sym != nil && id.Sym.Param && id.Sym.Index == i {
			found = id.Sym
		}
	})
	return found
}

// collectMutatedParams returns the set of parameter names assigned in the
// body (including ++/--).
func collectMutatedParams(fn *clc.FuncDecl) map[string]bool {
	out := map[string]bool{}
	mark := func(e clc.Expr) {
		if id, ok := e.(*clc.Ident); ok && id.Sym != nil && id.Sym.Param {
			out[id.Name] = true
		}
	}
	walkExprs(fn.Body, func(e clc.Expr) {
		switch ex := e.(type) {
		case *clc.Assign:
			mark(ex.L)
			if m, ok := ex.L.(*clc.Member); ok {
				mark(m.X)
			}
		case *clc.Unary:
			if ex.Op == "++" || ex.Op == "--" || ex.Op == "&" {
				mark(ex.X)
			}
		case *clc.Postfix:
			mark(ex.X)
		}
	})
	return out
}

// walkExprs applies f to every expression node under s.
func walkExprs(s clc.Stmt, f func(clc.Expr)) {
	var we func(clc.Expr)
	we = func(e clc.Expr) {
		if e == nil {
			return
		}
		f(e)
		switch ex := e.(type) {
		case *clc.Unary:
			we(ex.X)
		case *clc.Postfix:
			we(ex.X)
		case *clc.Binary:
			we(ex.L)
			we(ex.R)
		case *clc.Assign:
			we(ex.L)
			we(ex.R)
		case *clc.Cond:
			we(ex.C)
			we(ex.T)
			we(ex.F)
		case *clc.Index:
			we(ex.X)
			we(ex.I)
		case *clc.Member:
			we(ex.X)
		case *clc.Call:
			for _, a := range ex.Args {
				we(a)
			}
		case *clc.Cast:
			we(ex.X)
		case *clc.VecLit:
			for _, el := range ex.Elems {
				we(el)
			}
		}
	}
	var ws func(clc.Stmt)
	ws = func(s clc.Stmt) {
		switch st := s.(type) {
		case nil:
		case *clc.BlockStmt:
			for _, sub := range st.Stmts {
				ws(sub)
			}
		case *clc.DeclStmt:
			we(st.Init)
		case *clc.ExprStmt:
			we(st.X)
		case *clc.IfStmt:
			we(st.Cond)
			ws(st.Then)
			if st.Else != nil {
				ws(st.Else)
			}
		case *clc.ForStmt:
			if st.Init != nil {
				ws(st.Init)
			}
			we(st.Cond)
			we(st.Post)
			ws(st.Body)
		case *clc.WhileStmt:
			we(st.Cond)
			ws(st.Body)
		case *clc.ReturnStmt:
			we(st.X)
		}
	}
	ws(s)
}

func zeroValue(t clc.Type) ir.Value {
	switch tt := t.(type) {
	case *clc.ScalarType:
		if tt.Kind.IsFloat() {
			return &ir.ConstFloat{Val: 0, Typ: tt}
		}
		return &ir.ConstInt{Val: 0, Typ: tt}
	case *clc.VectorType:
		return &ir.ConstFloat{Val: 0, Typ: tt.Elem} // splatted on use
	}
	return ir.IntConst(0)
}
