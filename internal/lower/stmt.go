package lower

import (
	"fmt"

	"grover/internal/clc"
	"grover/internal/ir"
)

func (lw *lowerer) stmt(s clc.Stmt) error {
	switch st := s.(type) {
	case *clc.BlockStmt:
		for _, sub := range st.Stmts {
			if lw.b.Terminated() {
				// Statements after return/break/continue are unreachable;
				// lower them into a fresh dead block to keep IR well formed.
				dead := lw.irf.NewBlock("dead")
				lw.b.SetBlock(dead)
			}
			if err := lw.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *clc.DeclStmt:
		slot := lw.emitAlloca(st.Type, st.Space, st.Name, st.Pos)
		lw.storage[st.Sym] = slot
		if st.Init != nil {
			v, err := lw.expr(st.Init)
			if err != nil {
				return err
			}
			cv, err := lw.convert(v, st.Type, st.Pos)
			if err != nil {
				return err
			}
			lw.b.Store(slot, cv, st.Pos)
		}
		return nil

	case *clc.ExprStmt:
		_, err := lw.expr(st.X)
		return err

	case *clc.IfStmt:
		cond, err := lw.expr(st.Cond)
		if err != nil {
			return err
		}
		thenBlk := lw.irf.NewBlock("if.then")
		var elseBlk *ir.Block
		after := lw.irf.NewBlock("if.end")
		if st.Else != nil {
			elseBlk = lw.irf.NewBlock("if.else")
			lw.b.CondBr(cond, thenBlk, elseBlk, st.Pos)
		} else {
			lw.b.CondBr(cond, thenBlk, after, st.Pos)
		}
		lw.b.SetBlock(thenBlk)
		if err := lw.stmt(st.Then); err != nil {
			return err
		}
		if !lw.b.Terminated() {
			lw.b.Br(after, st.Pos)
		}
		if st.Else != nil {
			lw.b.SetBlock(elseBlk)
			if err := lw.stmt(st.Else); err != nil {
				return err
			}
			if !lw.b.Terminated() {
				lw.b.Br(after, st.Pos)
			}
		}
		lw.b.SetBlock(after)
		return nil

	case *clc.ForStmt:
		if st.Init != nil {
			if err := lw.stmt(st.Init); err != nil {
				return err
			}
		}
		condBlk := lw.irf.NewBlock("for.cond")
		bodyBlk := lw.irf.NewBlock("for.body")
		postBlk := lw.irf.NewBlock("for.post")
		after := lw.irf.NewBlock("for.end")
		lw.b.Br(condBlk, st.Pos)
		lw.b.SetBlock(condBlk)
		if st.Cond != nil {
			cond, err := lw.expr(st.Cond)
			if err != nil {
				return err
			}
			lw.b.CondBr(cond, bodyBlk, after, st.Pos)
		} else {
			lw.b.Br(bodyBlk, st.Pos)
		}
		lw.b.SetBlock(bodyBlk)
		lw.loops = append(lw.loops, loopCtx{breakTo: after, continueTo: postBlk})
		if err := lw.stmt(st.Body); err != nil {
			return err
		}
		lw.loops = lw.loops[:len(lw.loops)-1]
		if !lw.b.Terminated() {
			lw.b.Br(postBlk, st.Pos)
		}
		lw.b.SetBlock(postBlk)
		if st.Post != nil {
			if _, err := lw.expr(st.Post); err != nil {
				return err
			}
		}
		lw.b.Br(condBlk, st.Pos)
		lw.b.SetBlock(after)
		return nil

	case *clc.WhileStmt:
		condBlk := lw.irf.NewBlock("while.cond")
		bodyBlk := lw.irf.NewBlock("while.body")
		after := lw.irf.NewBlock("while.end")
		if st.DoWhile {
			lw.b.Br(bodyBlk, st.Pos)
		} else {
			lw.b.Br(condBlk, st.Pos)
		}
		lw.b.SetBlock(condBlk)
		cond, err := lw.expr(st.Cond)
		if err != nil {
			return err
		}
		lw.b.CondBr(cond, bodyBlk, after, st.Pos)
		lw.b.SetBlock(bodyBlk)
		lw.loops = append(lw.loops, loopCtx{breakTo: after, continueTo: condBlk})
		if err := lw.stmt(st.Body); err != nil {
			return err
		}
		lw.loops = lw.loops[:len(lw.loops)-1]
		if !lw.b.Terminated() {
			lw.b.Br(condBlk, st.Pos)
		}
		lw.b.SetBlock(after)
		return nil

	case *clc.ReturnStmt:
		if st.X == nil {
			lw.b.Ret(nil, st.Pos)
			return nil
		}
		v, err := lw.expr(st.X)
		if err != nil {
			return err
		}
		cv, err := lw.convert(v, lw.fn.Ret, st.Pos)
		if err != nil {
			return err
		}
		lw.b.Ret(cv, st.Pos)
		return nil

	case *clc.BreakStmt:
		if len(lw.loops) == 0 {
			return errAt(st.Pos, "break outside loop")
		}
		lw.b.Br(lw.loops[len(lw.loops)-1].breakTo, st.Pos)
		dead := lw.irf.NewBlock("dead")
		lw.b.SetBlock(dead)
		return nil

	case *clc.ContinueStmt:
		if len(lw.loops) == 0 {
			return errAt(st.Pos, "continue outside loop")
		}
		lw.b.Br(lw.loops[len(lw.loops)-1].continueTo, st.Pos)
		dead := lw.irf.NewBlock("dead")
		lw.b.SetBlock(dead)
		return nil
	}
	return fmt.Errorf("lower: unhandled statement %T", s)
}

func errAt(pos clc.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}
