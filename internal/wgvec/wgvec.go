// Package wgvec is a work-group-vectorized execution backend for the
// kernel VM. It consumes the register bytecode produced by internal/bcode
// and flips bcode's loop nest: instead of dispatching every instruction
// once per work-item, the executor walks instructions once per work-group
// and sweeps all active work-items over columnar (struct-of-arrays)
// register banks — ri[reg][wi], rf[reg][wi] — so the dispatch overhead of
// a barrier region is paid once instead of local_size times and the inner
// loops are tight, bounds-check-friendly sweeps over contiguous columns.
//
// Control flow is handled with per-work-item active masks: the CFG of
// each function is annotated with reverse-post-order block priorities,
// and a scheduler repeatedly runs the pending program point with minimal
// (block priority, pc), with the mask of all work-items waiting there.
// For the reducible, structured CFGs the frontend emits this reconverges
// divergent work-items exactly at the immediate post-dominator of the
// branch (the divergence-region machinery of internal/analysis); on
// adversarial shapes it degrades to smaller masks, never to wrong
// results. Instructions proven work-group-uniform by the uniformity
// analysis execute once per group and broadcast, guarded at runtime by a
// full-mask check.
//
// The backend preserves the PR 3 execution contract exactly: cooperative
// barrier semantics with barrier-divergence detection, and
// backend-invariant simulated counters. Memory-trace events are buffered
// per work-item during lockstep execution and replayed to the tracer in
// work-item-major order at the end of each barrier round, so memsim
// observes the same stream as the interpreter and bcode.
//
// The backend registers itself with the VM under the name "wgvec";
// importing the package (a blank import suffices) enables it.
package wgvec

import (
	"context"

	"grover/internal/analysis"
	"grover/internal/analysis/graph"
	"grover/internal/bcode"
	"grover/internal/ir"
	"grover/internal/telemetry"
	"grover/internal/vm"
)

// Name is the backend's registration name.
const Name = "wgvec"

func init() {
	vm.RegisterBackend(Name, func(ctx context.Context, p *vm.Program) (vm.Executor, error) {
		return CompileCtx(ctx, p)
	})
}

// Machine is a prepared program compiled to region programs: the shared
// bytecode plus per-function scheduling and uniformity metadata. It
// implements vm.Executor; the vm caches one Machine per program.
type Machine struct {
	bm    *bcode.Machine
	progs map[*ir.Function]*regionProgram
}

// Compile lowers every function of a prepared program to a region
// program over its bytecode.
func Compile(p *vm.Program) (*Machine, error) {
	return CompileCtx(context.Background(), p)
}

// CompileCtx is Compile with span recording: the embedded bytecode
// compile reports as bcode.compile, the region lowering as
// wgvec.compile.
func CompileCtx(ctx context.Context, p *vm.Program) (*Machine, error) {
	bm, err := bcode.CompileCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	defer telemetry.StartSpan(ctx, "wgvec.compile")()
	m := &Machine{bm: bm, progs: map[*ir.Function]*regionProgram{}}
	// Uniform execute-once facts assume work-group-uniform parameters,
	// which holds for launch arguments but not for call arguments; only
	// kernels that are never themselves called qualify.
	called := map[*ir.Function]bool{}
	for _, f := range p.Module.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil {
					called[in.Callee] = true
				}
			}
		}
	}
	for _, f := range p.Module.Funcs {
		m.progs[f] = newRegionProgram(bm.Func(f), f.IsKernel && !called[f])
	}
	return m, nil
}

// Program returns the prepared program this machine executes.
func (m *Machine) Program() *vm.Program { return m.bm.Program() }

// regionProgram is the per-function execution metadata layered over the
// bytecode: the pc→block map, reverse-post-order block priorities for the
// reconvergence scheduler, the barrier-region count, and the set of
// instructions that may execute once per group.
type regionProgram struct {
	bf      *bcode.BFunc
	blockOf []int32 // pc → block index
	prio    []int32 // block index → scheduling priority (RPO position)
	uniform []bool  // pc → eligible for execute-once-and-broadcast
	regions int     // barrier-delimited region count (metadata)
}

// newRegionProgram builds the metadata for one compiled function. root
// marks functions whose parameters are work-group-uniform (kernels never
// called as functions); only those get uniform execute-once flags.
func newRegionProgram(bf *bcode.BFunc, root bool) *regionProgram {
	fn := bf.Fn
	rp := &regionProgram{
		bf:      bf,
		blockOf: make([]int32, len(bf.Code)),
		uniform: make([]bool, len(bf.Code)),
		regions: 1,
	}
	for i := range bf.Code {
		if bf.Code[i].Op == bcode.OpBarrier {
			rp.regions++
		}
	}
	nb := len(fn.Blocks)
	if nb == 0 {
		rp.prio = []int32{0}
		return rp
	}
	for bi := 0; bi < nb; bi++ {
		start := bf.BlockStart[bi]
		end := int32(len(bf.Code))
		if bi+1 < nb {
			end = bf.BlockStart[bi+1]
		}
		for pc := start; pc < end; pc++ {
			rp.blockOf[pc] = int32(bi)
		}
	}
	cfg := analysis.NewCFG(fn)
	// Reverse post-order places every block of a divergence region before
	// the region's immediate post-dominator (for reducible CFGs), so the
	// min-priority scheduler keeps divergent work-items inside the region
	// until all of them arrive at the reconvergence point.
	rp.prio = make([]int32, nb)
	for i := range rp.prio {
		rp.prio[i] = int32(nb) // unreachable blocks last; never executed
	}
	for i, b := range graph.ReversePostOrder(nb, cfg.Succ, 0) {
		rp.prio[b] = int32(i)
	}
	if !root {
		return rp
	}
	u := analysis.ComputeUniformity(cfg, analysis.ComputeReachingDefs(cfg))
	for pc := range bf.Code {
		rp.uniform[pc] = uniformInst(&bf.Code[pc], u)
	}
	return rp
}

// uniformInst reports whether one bytecode instruction is statically
// work-group-uniform: its originating IR instruction produces the same
// value for every work-item and sits in a control-uniform block. The
// executor additionally requires a full active mask at runtime before
// applying execute-once-and-broadcast.
func uniformInst(in *bcode.Inst, u *analysis.Uniformity) bool {
	switch in.Op {
	case bcode.OpNop, bcode.OpJmp, bcode.OpCondBrI, bcode.OpCondBrF,
		bcode.OpRet, bcode.OpRetI, bcode.OpRetF, bcode.OpRetVI, bcode.OpRetVF,
		bcode.OpBarrier, bcode.OpCall, bcode.OpTrap:
		// Control flow is handled by the scheduler; calls execute
		// per-work-item so nested trace and retire accounting stay exact.
		return false
	}
	src := in.In
	if src == nil || src.Block == nil || u.DivergentBlock(src.Block) {
		return false
	}
	if src.Op == ir.OpStore {
		// A store is uniform when address and value are; for fused
		// superinstructions Args[0] is the folded index instruction,
		// whose divergence covers the address chain.
		for _, a := range src.Args {
			if u.Divergent(a) {
				return false
			}
		}
		return true
	}
	if !src.Producing() {
		return false
	}
	return !u.Divergent(src)
}
