package wgvec

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"grover/internal/bcode"
	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

// Return-value tags for the per-lane stash of a columnar call frame. A
// lane's copy-out reads the stash only when the tag matches the
// destination bank, mirroring bcode's clear-then-set return fields.
const (
	retNone = iota
	retInt
	retFlt
	retVecI
	retVecF
)

// traceEv is one buffered memory access. Events are appended per lane
// during lockstep execution and replayed work-item-major at the end of
// each barrier round, reproducing the interpreter's trace stream.
// The instruction is stored as an index into the group's evInstrs table
// rather than a pointer, keeping the (large, frequently appended) event
// buffers pointer-free: the garbage collector neither scans them nor
// needs write barriers on append.
type traceEv struct {
	addr  uint64
	instr int32
	size  int32
	store bool
}

// colFrame is the pooled columnar register file for one call depth:
// scalar banks as [register][lane] columns, vector banks as flat
// lane-major columns (lane l of register r occupies
// vi[r][l*L:(l+1)*L] with L the register's lane count).
type colFrame struct {
	bf *bcode.BFunc
	rp *regionProgram
	n  int

	ri [][]int64
	rf [][]float64
	vi [][]int64
	vf [][]float64

	pcs []int32 // per-lane pending pc; -1 done/returned, -2 at a barrier
	seg []int32 // current segment mask (scratch, rebuilt per pick)

	frameBase, sp int

	// Per-lane return stash (callee side). Vector stashes are strided by
	// the frame's maximal vector length.
	retSet       []uint8
	retI         []int64
	retF         []float64
	retVI        []int64
	retVF        []float64
	retVILen     int
	retVFLen     int
	maxVI, maxVF int
}

// growCols shapes a scalar column set to nregs columns of n lanes.
func growCols[T int64 | float64](cols [][]T, nregs, n int) [][]T {
	if cap(cols) < nregs {
		grown := make([][]T, nregs)
		copy(grown, cols)
		cols = grown
	}
	cols = cols[:nregs]
	for i := range cols {
		if cap(cols[i]) < n {
			cols[i] = make([]T, n)
		}
		cols[i] = cols[i][:n]
	}
	return cols
}

// growVecCols shapes a vector column set: column i holds lens[i] lanes
// per work-item, flat lane-major.
func growVecCols[T int64 | float64](cols [][]T, lens []int, n int) [][]T {
	if cap(cols) < len(lens) {
		grown := make([][]T, len(lens))
		copy(grown, cols)
		cols = grown
	}
	cols = cols[:len(lens)]
	for i, ln := range lens {
		sz := ln * n
		if cap(cols[i]) < sz {
			cols[i] = make([]T, sz)
		}
		cols[i] = cols[i][:sz]
	}
	return cols
}

// ensure shapes the frame for bf with n lanes, refilling constant
// columns only when the shape changes (constant and parameter registers
// are never written by compiled code, so a matching shape stays valid).
func (fr *colFrame) ensure(bf *bcode.BFunc, rp *regionProgram, n int) {
	fr.rp = rp
	if fr.bf == bf && fr.n == n {
		return
	}
	fr.bf, fr.n = bf, n
	fr.ri = growCols(fr.ri, bf.NInt, n)
	fr.rf = growCols(fr.rf, bf.NFlt, n)
	fr.vi = growVecCols(fr.vi, bf.VecILens, n)
	fr.vf = growVecCols(fr.vf, bf.VecFLens, n)
	fr.maxVI, fr.maxVF = 0, 0
	for _, ln := range bf.VecILens {
		fr.maxVI = max(fr.maxVI, ln)
	}
	for _, ln := range bf.VecFLens {
		fr.maxVF = max(fr.maxVF, ln)
	}
	if cap(fr.pcs) < n {
		fr.pcs = make([]int32, n)
		fr.seg = make([]int32, 0, n)
		fr.retSet = make([]uint8, n)
		fr.retI = make([]int64, n)
		fr.retF = make([]float64, n)
	}
	fr.pcs = fr.pcs[:n]
	fr.retSet = fr.retSet[:n]
	fr.retI = fr.retI[:n]
	fr.retF = fr.retF[:n]
	if sz := fr.maxVI * n; cap(fr.retVI) < sz {
		fr.retVI = make([]int64, sz)
	}
	if sz := fr.maxVF * n; cap(fr.retVF) < sz {
		fr.retVF = make([]float64, sz)
	}
	for ci, v := range bf.IntConsts {
		col := fr.ri[ci]
		for i := range col {
			col[i] = v
		}
	}
	for ci, v := range bf.FltConsts {
		col := fr.rf[ci]
		for i := range col {
			col[i] = v
		}
	}
}

// Launch implements vm.Executor with bcode's exact launch contract:
// traced launches distribute work-groups round-robin over workers,
// untraced launches balance groups dynamically, and work-items within a
// group advance in barrier-delimited rounds — here as lockstep segments
// over columnar registers rather than one work-item at a time.
func (m *Machine) Launch(kernel string, cfg vm.Config, gmem *vm.GlobalMem, opts *vm.LaunchOpts) error {
	p := m.bm.Program()
	fn := p.Module.Kernel(kernel)
	if fn == nil {
		return fmt.Errorf("vm: no kernel %q", kernel)
	}
	bf := m.bm.Func(fn)
	ncfg, err := cfg.Normalized()
	if err != nil {
		return err
	}
	if len(ncfg.Args) != len(fn.Params) {
		return fmt.Errorf("vm: kernel %s expects %d args, got %d", kernel, len(fn.Params), len(ncfg.Args))
	}
	workers := 1
	var tracerFor func(int) vm.Tracer
	var prof *vm.Profiler
	if opts != nil {
		workers = opts.Workers
		tracerFor = opts.TracerFor
		prof = opts.Profiler
	}
	if prof != nil {
		prof.LaunchBegin(kernel, Name)
		start := time.Now()
		defer func() { prof.LaunchDone(time.Since(start)) }()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	groups := [3]int{
		ncfg.GlobalSize[0] / ncfg.LocalSize[0],
		ncfg.GlobalSize[1] / ncfg.LocalSize[1],
		ncfg.GlobalSize[2] / ncfg.LocalSize[2],
	}
	nGroups := groups[0] * groups[1] * groups[2]
	if nGroups < workers {
		workers = nGroups
	}
	if workers == 0 {
		return nil
	}

	// Dynamic local buffers: lay out after the static local allocas.
	staticLocal := bf.LocalSize
	dynOff := make([]int, len(ncfg.Args))
	localTotal := staticLocal
	for i, a := range ncfg.Args {
		if a.Kind == vm.ArgLocalBuf {
			const align = 16
			localTotal = (localTotal + align - 1) &^ (align - 1)
			dynOff[i] = localTotal
			localTotal += a.LocalBytes
		}
	}

	paramI := make([]int64, len(ncfg.Args))
	paramF := make([]float64, len(ncfg.Args))
	for i, a := range ncfg.Args {
		switch a.Kind {
		case vm.ArgBuffer:
			paramI[i] = int64(a.Buf.Addr())
		case vm.ArgInt:
			paramI[i] = a.I
		case vm.ArgFloat:
			paramF[i] = a.F
		case vm.ArgLocalBuf:
			paramI[i] = int64(vm.MakeAddr(clc.ASLocal, uint64(dynOff[i])))
		}
	}

	n := ncfg.LocalSize[0] * ncfg.LocalSize[1] * ncfg.LocalSize[2]
	stack := p.StackBytes()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	sched := vm.NewGroupSchedule(nGroups, workers, tracerFor != nil)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var tr vm.Tracer
			if tracerFor != nil {
				tr = tracerFor(worker)
			}
			g := newGroupState(m, bf, ncfg, gmem.Data, paramI, paramF, localTotal, stack, n, tr)
			g.prof = prof
			if prof != nil && g.retired == nil {
				// Retire accounting reuses the tracer's per-lane counters.
				g.retired = make([]int64, n)
			}
			cur := sched.Cursor(worker)
			for gi := cur.Next(); gi >= 0; gi = cur.Next() {
				gz := gi / (groups[0] * groups[1])
				rem := gi % (groups[0] * groups[1])
				gy := rem / groups[0]
				gx := rem % groups[0]
				if err := g.runGroup([3]int{gx, gy, gz}, gi); err != nil {
					errs[worker] = fmt.Errorf("group (%d,%d,%d): %w", gx, gy, gz, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// groupState executes the work-groups assigned to one worker. Columns,
// frames, and scratch buffers are allocated once per worker and reused
// across all its groups.
type groupState struct {
	m          *Machine
	gmem       []byte
	local      []byte
	localTotal int
	stack      int
	tracer     vm.Tracer
	prof       *vm.Profiler
	n          int

	// Per-round profiler accumulators; harvested and reset by runGroup
	// at every barrier round when prof is set.
	profLoads  int64
	profStores int64

	gsz, lsz, ngrp, grp [3]int64
	gidCol, lidCol      [3][]int64

	priv   [][]byte
	frames []*colFrame

	allLanes []int32
	lane0    []int32
	barInstr []*ir.Instr
	resumePC []int32

	events  [][]traceEv
	retired []int64

	// Dedup table mapping buffered events back to their IR instruction;
	// lastIn/lastIdx cache the previous lookup since events arrive in
	// per-instruction runs.
	evInstrs []*ir.Instr
	evIdx    map[*ir.Instr]int32
	lastIn   *ir.Instr
	lastIdx  int32

	maskT, maskF []int32
	addrs        []uint64
	mathF        []float64
	mathI        []int64
}

func newGroupState(m *Machine, bf *bcode.BFunc, cfg vm.Config, gmem []byte,
	paramI []int64, paramF []float64, localTotal, stack, n int, tr vm.Tracer) *groupState {
	g := &groupState{
		m: m, gmem: gmem, localTotal: localTotal, stack: stack,
		tracer: tr, n: n,
	}
	for d := 0; d < 3; d++ {
		g.gsz[d] = int64(cfg.GlobalSize[d])
		g.lsz[d] = int64(cfg.LocalSize[d])
		g.ngrp[d] = int64(cfg.GlobalSize[d] / cfg.LocalSize[d])
		g.gidCol[d] = make([]int64, n)
		g.lidCol[d] = make([]int64, n)
	}
	lx0, lx1 := cfg.LocalSize[0], cfg.LocalSize[1]
	for wi := 0; wi < n; wi++ {
		lz := wi / (lx0 * lx1)
		rem := wi % (lx0 * lx1)
		g.lidCol[0][wi] = int64(rem % lx0)
		g.lidCol[1][wi] = int64(rem / lx0)
		g.lidCol[2][wi] = int64(lz)
	}
	g.priv = make([][]byte, n)
	for wi := range g.priv {
		g.priv[wi] = make([]byte, stack)
	}
	g.allLanes = make([]int32, n)
	for i := range g.allLanes {
		g.allLanes[i] = int32(i)
	}
	g.lane0 = []int32{0}
	g.barInstr = make([]*ir.Instr, n)
	g.resumePC = make([]int32, n)
	g.maskT = make([]int32, 0, n)
	g.maskF = make([]int32, 0, n)
	g.addrs = make([]uint64, n)
	if tr != nil {
		g.events = make([][]traceEv, n)
		g.retired = make([]int64, n)
		g.evIdx = make(map[*ir.Instr]int32)
	}

	fr := g.frame(0)
	fr.ensure(bf, m.progs[bf.Fn], n)
	for k, pr := range bf.Params {
		switch pr.Bank {
		case bcode.BankInt:
			col := fr.ri[pr.Idx]
			v := paramI[k]
			for i := range col {
				col[i] = v
			}
		case bcode.BankFlt:
			col := fr.rf[pr.Idx]
			v := paramF[k]
			for i := range col {
				col[i] = v
			}
		}
	}
	return g
}

// frame returns the pooled columnar frame for a call depth.
func (g *groupState) frame(depth int) *colFrame {
	for len(g.frames) <= depth {
		g.frames = append(g.frames, &colFrame{})
	}
	return g.frames[depth]
}

func laneErr(l int32, err error) error {
	return fmt.Errorf("work-item %d: %w", l, err)
}

// runGroup executes one work-group in barrier-delimited rounds. Each
// round runs lockstep segments until every lane is done or suspended at
// a barrier, replays the buffered trace in work-item-major order, checks
// barrier divergence with the interpreter's exact diagnostics, then
// releases the suspended lanes into the next round.
func (g *groupState) runGroup(group [3]int, linear int) error {
	n := g.n
	// Grover-rewritten kernels have no __local memory at all; skip the
	// arena sizing and per-group clear entirely in that case.
	if g.localTotal == 0 {
		g.local = nil
	} else if cap(g.local) < g.localTotal {
		g.local = make([]byte, g.localTotal)
	} else {
		g.local = g.local[:g.localTotal]
		clear(g.local)
	}
	for d := 0; d < 3; d++ {
		g.grp[d] = int64(group[d])
		base := g.grp[d] * g.lsz[d]
		gid, lid := g.gidCol[d], g.lidCol[d]
		for wi := 0; wi < n; wi++ {
			gid[wi] = base + lid[wi]
		}
	}
	fr := g.frames[0]
	fr.frameBase, fr.sp = 0, fr.bf.FrameSize
	for l := 0; l < n; l++ {
		fr.pcs[l] = 0
	}

	if g.tracer != nil {
		g.tracer.GroupBegin(group, linear)
	}
	doneBefore := 0
	round := 0
	var roundStart time.Time
	for {
		if g.prof != nil {
			roundStart = time.Now()
			g.profLoads, g.profStores = 0, 0
		}
		err := g.schedule(0, fr, g.allLanes)
		var roundRetired int64
		if g.prof != nil {
			// Harvest before replay flushes the per-lane counters to the
			// tracer (which zeroes them); zero manually when untraced.
			for l := 0; l < n; l++ {
				roundRetired += g.retired[l]
			}
			if g.tracer == nil {
				clear(g.retired)
			}
		}
		if g.tracer != nil {
			g.replay()
		}
		if err != nil {
			return err
		}
		var barrierAt *ir.Instr
		atBarrier, doneTotal := 0, 0
		for l := 0; l < n; l++ {
			switch fr.pcs[l] {
			case -1:
				doneTotal++
			case -2:
				atBarrier++
				if barrierAt == nil {
					barrierAt = g.barInstr[l]
				} else if barrierAt != g.barInstr[l] {
					return fmt.Errorf("barrier divergence: work-items reached different barriers")
				}
			}
		}
		if g.prof != nil {
			g.prof.Region(round, time.Since(roundStart), roundRetired, g.profLoads, g.profStores, atBarrier > 0)
			round++
		}
		doneNow := doneTotal - doneBefore
		if atBarrier > 0 && doneNow > 0 {
			return fmt.Errorf("barrier divergence: %d work-items at a barrier while %d finished", atBarrier, doneNow)
		}
		if atBarrier == 0 {
			break
		}
		if g.tracer != nil {
			g.tracer.Barrier(atBarrier)
		}
		doneBefore = doneTotal
		for l := 0; l < n; l++ {
			if fr.pcs[l] == -2 {
				fr.pcs[l] = g.resumePC[l]
			}
		}
	}
	if g.tracer != nil {
		g.tracer.GroupEnd()
	}
	return nil
}

// replay flushes each lane's buffered accesses and retire count to the
// tracer in work-item-major order, matching the per-round stream the
// work-item-at-a-time backends produce.
func (g *groupState) replay() {
	for l := 0; l < g.n; l++ {
		evs := g.events[l]
		for i := range evs {
			ev := &evs[i]
			g.tracer.Access(g.evInstrs[ev.instr], l, ev.addr, int(ev.size), ev.store)
		}
		g.events[l] = evs[:0]
		if g.retired[l] > 0 {
			g.tracer.Instrs(l, g.retired[l])
			g.retired[l] = 0
		}
	}
}

// schedule runs the given lanes to completion of the current function
// activation (or to a barrier at kernel level): it repeatedly picks the
// pending program point with minimal (block priority, pc) and executes
// one lockstep segment there with the mask of all lanes waiting at it.
// For structured CFGs the minimum is never past a divergence region's
// post-dominator while lanes remain inside the region, so divergent
// lanes reconverge exactly there.
func (g *groupState) schedule(depth int, fr *colFrame, lanes []int32) error {
	rp := fr.rp
	const inf = int64(1) << 62
	for {
		best := inf
		for _, l := range lanes {
			pc := fr.pcs[l]
			if pc < 0 {
				continue
			}
			key := int64(rp.prio[rp.blockOf[pc]])<<32 | int64(pc)
			if key < best {
				best = key
			}
		}
		if best == inf {
			return nil
		}
		pc := int32(best)
		seg := fr.seg[:0]
		for _, l := range lanes {
			if fr.pcs[l] == pc {
				seg = append(seg, l)
			}
		}
		fr.seg = seg
		if err := g.runSeg(depth, fr, seg, pc); err != nil {
			return err
		}
	}
}

// runSeg executes one lockstep segment: starting at pc with the given
// active mask, it advances instruction by instruction — sweeping all
// masked lanes per instruction — until control diverges, the activation
// returns, or (kernel level) a barrier suspends the mask.
func (g *groupState) runSeg(depth int, fr *colFrame, mask []int32, pc int32) error {
	bf := fr.bf
	code := bf.Code
	rp := fr.rp
	n := g.n
	acct := g.tracer != nil || g.prof != nil
	for {
		in := &code[pc]
		if acct && in.Retire != 0 {
			r := int64(in.Retire)
			for _, l := range mask {
				g.retired[l] += r
			}
		}
		switch in.Op {
		case bcode.OpNop:

		case bcode.OpJmp:
			pc = int32(in.Imm)
			continue

		case bcode.OpCondBrI, bcode.OpCondBrF:
			t, f := int32(in.Imm), in.N
			segT, segF := g.maskT[:0], g.maskF[:0]
			if in.Op == bcode.OpCondBrI {
				x := fr.ri[in.A]
				for _, l := range mask {
					if x[l] != 0 {
						segT = append(segT, l)
					} else {
						segF = append(segF, l)
					}
				}
			} else {
				x := fr.rf[in.A]
				for _, l := range mask {
					if x[l] != 0 {
						segT = append(segT, l)
					} else {
						segF = append(segF, l)
					}
				}
			}
			g.maskT, g.maskF = segT, segF
			// A branch all active lanes agree on continues the segment
			// inline; only genuine divergence goes back to the scheduler.
			if len(segF) == 0 {
				pc = t
				continue
			}
			if len(segT) == 0 {
				pc = f
				continue
			}
			for _, l := range segT {
				fr.pcs[l] = t
			}
			for _, l := range segF {
				fr.pcs[l] = f
			}
			return nil

		case bcode.OpRet, bcode.OpRetI, bcode.OpRetF, bcode.OpRetVI, bcode.OpRetVF:
			if depth == 0 {
				for _, l := range mask {
					fr.pcs[l] = -1
				}
				return nil
			}
			g.retLanes(fr, in, mask)
			return nil

		case bcode.OpBarrier:
			if depth != 0 {
				return laneErr(mask[0], errors.New("vm: barrier inside a function call is unsupported"))
			}
			for _, l := range mask {
				fr.pcs[l] = -2
				g.barInstr[l] = in.In
				g.resumePC[l] = pc + 1
			}
			return nil

		case bcode.OpTrap:
			return laneErr(mask[0], errors.New(bf.Aux[in.Imm].Name))

		case bcode.OpCall:
			if err := g.callCol(depth, fr, in, mask); err != nil {
				return err
			}

		case bcode.OpLdI8, bcode.OpLdU8, bcode.OpLdI16, bcode.OpLdU16, bcode.OpLdI32,
			bcode.OpLdU32, bcode.OpLdI64, bcode.OpLdF32, bcode.OpLdF64:
			if err := g.loadCol(fr, in, mask, false, rp.uniform[pc] && len(mask) == n); err != nil {
				return err
			}
		case bcode.OpLdXI8, bcode.OpLdXU8, bcode.OpLdXI16, bcode.OpLdXU16, bcode.OpLdXI32,
			bcode.OpLdXU32, bcode.OpLdXI64, bcode.OpLdXF32, bcode.OpLdXF64:
			if err := g.loadCol(fr, in, mask, true, rp.uniform[pc] && len(mask) == n); err != nil {
				return err
			}

		case bcode.OpStI8, bcode.OpStI16, bcode.OpStI32, bcode.OpStI64, bcode.OpStF32, bcode.OpStF64:
			if err := g.storeCol(fr, in, mask, false, rp.uniform[pc] && len(mask) == n); err != nil {
				return err
			}
		case bcode.OpStXI8, bcode.OpStXI16, bcode.OpStXI32, bcode.OpStXI64, bcode.OpStXF32, bcode.OpStXF64:
			if err := g.storeCol(fr, in, mask, true, rp.uniform[pc] && len(mask) == n); err != nil {
				return err
			}

		case bcode.OpLdVI, bcode.OpLdVF:
			if err := g.loadVecCol(fr, in, mask, false); err != nil {
				return err
			}
		case bcode.OpLdXVI, bcode.OpLdXVF:
			if err := g.loadVecCol(fr, in, mask, true); err != nil {
				return err
			}
		case bcode.OpStVI, bcode.OpStVF:
			if err := g.storeVecCol(fr, in, mask, false); err != nil {
				return err
			}
		case bcode.OpStXVI, bcode.OpStXVF:
			if err := g.storeVecCol(fr, in, mask, true); err != nil {
				return err
			}

		default:
			if rp.uniform[pc] && len(mask) == n {
				if bank, ok := destBank(in.Op); ok {
					// Execute once on lane 0 and broadcast the result
					// column-wide; retire was already counted per lane.
					if err := g.execOp(fr, in, g.lane0, pc); err != nil {
						return err
					}
					fr.broadcast(bank, in.A, n)
					pc++
					continue
				}
			}
			if err := g.execOp(fr, in, mask, pc); err != nil {
				return err
			}
		}
		pc++
	}
}

// retLanes stashes per-lane return values and retires the mask from the
// current activation.
func (g *groupState) retLanes(fr *colFrame, in *bcode.Inst, mask []int32) {
	switch in.Op {
	case bcode.OpRet:
		for _, l := range mask {
			fr.retSet[l] = retNone
			fr.pcs[l] = -1
		}
	case bcode.OpRetI:
		src := fr.ri[in.B]
		for _, l := range mask {
			fr.retSet[l] = retInt
			fr.retI[l] = src[l]
			fr.pcs[l] = -1
		}
	case bcode.OpRetF:
		src := fr.rf[in.B]
		for _, l := range mask {
			fr.retSet[l] = retFlt
			fr.retF[l] = src[l]
			fr.pcs[l] = -1
		}
	case bcode.OpRetVI:
		ls := fr.bf.VecILens[in.B]
		src := fr.vi[in.B]
		fr.retVILen = ls
		for _, l := range mask {
			fr.retSet[l] = retVecI
			copy(fr.retVI[int(l)*fr.maxVI:int(l)*fr.maxVI+ls], src[int(l)*ls:int(l)*ls+ls])
			fr.pcs[l] = -1
		}
	case bcode.OpRetVF:
		ls := fr.bf.VecFLens[in.B]
		src := fr.vf[in.B]
		fr.retVFLen = ls
		for _, l := range mask {
			fr.retSet[l] = retVecF
			copy(fr.retVF[int(l)*fr.maxVF:int(l)*fr.maxVF+ls], src[int(l)*ls:int(l)*ls+ls])
			fr.pcs[l] = -1
		}
	}
}

// callCol executes a user function for all masked lanes as a nested
// columnar activation: arguments copy column-to-column, the callee runs
// under the same segment scheduler one depth down, and return values
// copy out per lane from the stash (a lane whose stash tag mismatches
// the destination bank gets zero, exactly like reading the unused field
// of a boxed return value).
func (g *groupState) callCol(depth int, fr *colFrame, in *bcode.Inst, mask []int32) error {
	ax := &fr.bf.Aux[in.Imm]
	callee := ax.Callee
	child := g.frame(depth + 1)
	child.ensure(callee, g.m.progs[callee.Fn], g.n)
	for i, r := range ax.Refs {
		p := callee.Params[i]
		switch p.Bank {
		case bcode.BankInt:
			dst, src := child.ri[p.Idx], fr.ri[r.Idx]
			for _, l := range mask {
				dst[l] = src[l]
			}
		case bcode.BankFlt:
			dst, src := child.rf[p.Idx], fr.rf[r.Idx]
			for _, l := range mask {
				dst[l] = src[l]
			}
		case bcode.BankVecI:
			ld, ls := callee.VecILens[p.Idx], fr.bf.VecILens[r.Idx]
			m := min(ld, ls)
			dst, src := child.vi[p.Idx], fr.vi[r.Idx]
			for _, l := range mask {
				copy(dst[int(l)*ld:int(l)*ld+m], src[int(l)*ls:int(l)*ls+m])
			}
		case bcode.BankVecF:
			ld, ls := callee.VecFLens[p.Idx], fr.bf.VecFLens[r.Idx]
			m := min(ld, ls)
			dst, src := child.vf[p.Idx], fr.vf[r.Idx]
			for _, l := range mask {
				copy(dst[int(l)*ld:int(l)*ld+m], src[int(l)*ls:int(l)*ls+m])
			}
		}
	}
	child.frameBase = fr.sp
	child.sp = fr.sp + callee.FrameSize
	if child.sp > g.stack {
		return laneErr(mask[0], fmt.Errorf("vm: private stack overflow calling %s", callee.Fn.Name))
	}
	for _, l := range mask {
		child.pcs[l] = 0
	}
	if err := g.schedule(depth+1, child, mask); err != nil {
		return err
	}
	if in.A >= 0 {
		switch bcode.Bank(in.Sub) {
		case bcode.BankInt:
			d := fr.ri[in.A]
			for _, l := range mask {
				if child.retSet[l] == retInt {
					d[l] = child.retI[l]
				} else {
					d[l] = 0
				}
			}
		case bcode.BankFlt:
			d := fr.rf[in.A]
			for _, l := range mask {
				if child.retSet[l] == retFlt {
					d[l] = child.retF[l]
				} else {
					d[l] = 0
				}
			}
		case bcode.BankVecI:
			ld := fr.bf.VecILens[in.A]
			d := fr.vi[in.A]
			for _, l := range mask {
				if child.retSet[l] == retVecI {
					m := min(ld, child.retVILen)
					copy(d[int(l)*ld:int(l)*ld+m], child.retVI[int(l)*child.maxVI:int(l)*child.maxVI+m])
				}
			}
		case bcode.BankVecF:
			ld := fr.bf.VecFLens[in.A]
			d := fr.vf[in.A]
			for _, l := range mask {
				if child.retSet[l] == retVecF {
					m := min(ld, child.retVFLen)
					copy(d[int(l)*ld:int(l)*ld+m], child.retVF[int(l)*child.maxVF:int(l)*child.maxVF+m])
				}
			}
		}
	}
	return nil
}
