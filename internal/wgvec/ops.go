package wgvec

import (
	"encoding/binary"
	"fmt"
	"math"

	"grover/internal/bcode"
	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

const kF32 = uint8(clc.KFloat)

// destBank maps an opcode to its scalar destination bank for the
// uniform execute-once path. Opcodes with vector destinations, memory
// effects, or control behavior are excluded (they either have dedicated
// uniform handling or always run the full mask).
func destBank(op bcode.Opcode) (bcode.Bank, bool) {
	switch op {
	case bcode.OpConstI, bcode.OpZeroI, bcode.OpMovI, bcode.OpGRP, bcode.OpGSZ,
		bcode.OpLSZ, bcode.OpNGRP, bcode.OpWIQ, bcode.OpAllocaP, bcode.OpAllocaL,
		bcode.OpIndex, bcode.OpIndexC,
		bcode.OpAddI, bcode.OpSubI, bcode.OpMulI, bcode.OpAndI, bcode.OpOrI, bcode.OpXorI,
		bcode.OpAddI32, bcode.OpSubI32, bcode.OpMulI32,
		bcode.OpAddU32, bcode.OpSubU32, bcode.OpMulU32,
		bcode.OpIntBin, bcode.OpNegI, bcode.OpNotI,
		bcode.OpEqI, bcode.OpNeI, bcode.OpLtI, bcode.OpLeI, bcode.OpGtI, bcode.OpGeI,
		bcode.OpLtU, bcode.OpLeU, bcode.OpGtU, bcode.OpGeU,
		bcode.OpEqF, bcode.OpNeF, bcode.OpLtF, bcode.OpLeF, bcode.OpGtF, bcode.OpGeF,
		bcode.OpConvI, bcode.OpF2I, bcode.OpExtI, bcode.OpMathI:
		return bcode.BankInt, true
	case bcode.OpZeroF, bcode.OpMovF,
		bcode.OpAddF, bcode.OpSubF, bcode.OpMulF, bcode.OpDivF,
		bcode.OpAddF32, bcode.OpSubF32, bcode.OpMulF32, bcode.OpDivF32,
		bcode.OpFltBin, bcode.OpNegF, bcode.OpI2F, bcode.OpU2F, bcode.OpF2F32,
		bcode.OpExtF, bcode.OpDotVF, bcode.OpDotSS, bcode.OpLenVF, bcode.OpLenSS,
		bcode.OpMathF:
		return bcode.BankFlt, true
	}
	return 0, false
}

// broadcast copies lane 0's value of a scalar register column to all n
// lanes after a uniform execute-once.
func (fr *colFrame) broadcast(bank bcode.Bank, reg int32, n int) {
	if bank == bcode.BankInt {
		col := fr.ri[reg]
		v := col[0]
		for i := 1; i < n; i++ {
			col[i] = v
		}
	} else {
		col := fr.rf[reg]
		v := col[0]
		for i := 1; i < n; i++ {
			col[i] = v
		}
	}
}

// execOp executes one non-control, non-memory instruction for every lane
// in the mask, sweeping the columnar register banks. Errors carry the
// lane they occurred at.
func (g *groupState) execOp(fr *colFrame, in *bcode.Inst, mask []int32, pc int32) error {
	ri, rf := fr.ri, fr.rf
	switch in.Op {
	case bcode.OpConstI:
		d, v := ri[in.A], in.Imm
		for _, l := range mask {
			d[l] = v
		}
	case bcode.OpZeroI:
		d := ri[in.A]
		for _, l := range mask {
			d[l] = 0
		}
	case bcode.OpZeroF:
		d := rf[in.A]
		for _, l := range mask {
			d[l] = 0
		}
	case bcode.OpMovI:
		d, s := ri[in.A], ri[in.B]
		for _, l := range mask {
			d[l] = s[l]
		}
	case bcode.OpMovF:
		d, s := rf[in.A], rf[in.B]
		for _, l := range mask {
			d[l] = s[l]
		}

	case bcode.OpGID:
		d, s := ri[in.A], g.gidCol[in.Imm]
		for _, l := range mask {
			d[l] = s[l]
		}
	case bcode.OpLID:
		d, s := ri[in.A], g.lidCol[in.Imm]
		for _, l := range mask {
			d[l] = s[l]
		}
	case bcode.OpGRP:
		d, v := ri[in.A], g.grp[in.Imm]
		for _, l := range mask {
			d[l] = v
		}
	case bcode.OpGSZ:
		d, v := ri[in.A], g.gsz[in.Imm]
		for _, l := range mask {
			d[l] = v
		}
	case bcode.OpLSZ:
		d, v := ri[in.A], g.lsz[in.Imm]
		for _, l := range mask {
			d[l] = v
		}
	case bcode.OpNGRP:
		d, v := ri[in.A], g.ngrp[in.Imm]
		for _, l := range mask {
			d[l] = v
		}
	case bcode.OpWIQ:
		d, dim := ri[in.A], ri[in.B]
		for _, l := range mask {
			d[l] = g.wiQueryLane(l, in.N, dim[l])
		}

	case bcode.OpAllocaP:
		// Private allocas resolve against the lane's own arena, so the
		// tagged address itself is uniform across the group.
		d, v := ri[in.A], int64(vm.MakeAddr(clc.ASPrivate, uint64(fr.frameBase)+uint64(in.Imm)))
		for _, l := range mask {
			d[l] = v
		}
	case bcode.OpAllocaL:
		d, v := ri[in.A], in.Imm
		for _, l := range mask {
			d[l] = v
		}

	case bcode.OpIndex:
		d, b, c, m := ri[in.A], ri[in.B], ri[in.C], in.Imm
		for _, l := range mask {
			d[l] = b[l] + c[l]*m
		}
	case bcode.OpIndexC:
		d, b, m := ri[in.A], ri[in.B], in.Imm
		for _, l := range mask {
			d[l] = b[l] + m
		}

	case bcode.OpAddI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = x[l] + y[l]
		}
	case bcode.OpSubI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = x[l] - y[l]
		}
	case bcode.OpMulI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = x[l] * y[l]
		}
	case bcode.OpAndI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = x[l] & y[l]
		}
	case bcode.OpOrI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = x[l] | y[l]
		}
	case bcode.OpXorI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = x[l] ^ y[l]
		}
	case bcode.OpAddI32:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = int64(int32(x[l] + y[l]))
		}
	case bcode.OpSubI32:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = int64(int32(x[l] - y[l]))
		}
	case bcode.OpMulI32:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = int64(int32(x[l] * y[l]))
		}
	case bcode.OpAddU32:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = int64(uint32(x[l] + y[l]))
		}
	case bcode.OpSubU32:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = int64(uint32(x[l] - y[l]))
		}
	case bcode.OpMulU32:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = int64(uint32(x[l] * y[l]))
		}
	case bcode.OpIntBin:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
		for _, l := range mask {
			v, err := vm.IntBin(op, k, x[l], y[l])
			if err != nil {
				return laneErr(l, err)
			}
			d[l] = v
		}

	case bcode.OpAddF:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = x[l] + y[l]
		}
	case bcode.OpSubF:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = x[l] - y[l]
		}
	case bcode.OpMulF:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = x[l] * y[l]
		}
	case bcode.OpDivF:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = x[l] / y[l]
		}
	case bcode.OpAddF32:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = float64(float32(x[l] + y[l]))
		}
	case bcode.OpSubF32:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = float64(float32(x[l] - y[l]))
		}
	case bcode.OpMulF32:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = float64(float32(x[l] * y[l]))
		}
	case bcode.OpDivF32:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = float64(float32(x[l] / y[l]))
		}
	case bcode.OpFltBin:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
		for _, l := range mask {
			v, err := vm.FloatBin(op, k, x[l], y[l])
			if err != nil {
				return laneErr(l, err)
			}
			d[l] = v
		}

	case bcode.OpNegF:
		d, s := rf[in.A], rf[in.B]
		for _, l := range mask {
			d[l] = -s[l]
		}
	case bcode.OpNegI:
		d, s := ri[in.A], ri[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			d[l] = vm.NormInt(-s[l], k)
		}
	case bcode.OpNotI:
		d, s := ri[in.A], ri[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			d[l] = vm.NormInt(^s[l], k)
		}
	case bcode.OpVNegF:
		ld := fr.bf.VecFLens[in.A]
		d, s := fr.vf[in.A], fr.vf[in.B]
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				d[o+i] = -s[o+i]
			}
		}
	case bcode.OpVNegI:
		ld := fr.bf.VecILens[in.A]
		d, s := fr.vi[in.A], fr.vi[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				d[o+i] = vm.NormInt(-s[o+i], k)
			}
		}
	case bcode.OpVNotI:
		ld := fr.bf.VecILens[in.A]
		d, s := fr.vi[in.A], fr.vi[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				d[o+i] = vm.NormInt(^s[o+i], k)
			}
		}

	case bcode.OpEqI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] == y[l])
		}
	case bcode.OpNeI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] != y[l])
		}
	case bcode.OpLtI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] < y[l])
		}
	case bcode.OpLeI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] <= y[l])
		}
	case bcode.OpGtI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] > y[l])
		}
	case bcode.OpGeI:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] >= y[l])
		}
	case bcode.OpLtU:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(uint64(x[l]) < uint64(y[l]))
		}
	case bcode.OpLeU:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(uint64(x[l]) <= uint64(y[l]))
		}
	case bcode.OpGtU:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(uint64(x[l]) > uint64(y[l]))
		}
	case bcode.OpGeU:
		d, x, y := ri[in.A], ri[in.B], ri[in.C]
		for _, l := range mask {
			d[l] = b2i(uint64(x[l]) >= uint64(y[l]))
		}
	case bcode.OpEqF:
		d, x, y := ri[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] == y[l])
		}
	case bcode.OpNeF:
		d, x, y := ri[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] != y[l])
		}
	case bcode.OpLtF:
		d, x, y := ri[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] < y[l])
		}
	case bcode.OpLeF:
		d, x, y := ri[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] <= y[l])
		}
	case bcode.OpGtF:
		d, x, y := ri[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] > y[l])
		}
	case bcode.OpGeF:
		d, x, y := ri[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = b2i(x[l] >= y[l])
		}

	case bcode.OpConvI:
		d, s := ri[in.A], ri[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			d[l] = vm.NormInt(s[l], k)
		}
	case bcode.OpI2F:
		d, s := rf[in.A], ri[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			d[l] = vm.Round32(k, float64(s[l]))
		}
	case bcode.OpU2F:
		d, s := rf[in.A], ri[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			d[l] = vm.Round32(k, float64(uint64(s[l])))
		}
	case bcode.OpF2I:
		d, s := ri[in.A], rf[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			f := s[l]
			if math.IsNaN(f) {
				d[l] = 0
			} else {
				d[l] = vm.NormInt(int64(f), k)
			}
		}
	case bcode.OpF2F32:
		d, s := rf[in.A], rf[in.B]
		for _, l := range mask {
			d[l] = float64(float32(s[l]))
		}
	case bcode.OpVConv:
		g.vconvCol(fr, in, mask)

	case bcode.OpVAddF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		if in.Kind == kF32 {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = float64(float32(x[o+i] + y[o+i]))
				}
			}
		} else {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = x[o+i] + y[o+i]
				}
			}
		}
	case bcode.OpVSubF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		if in.Kind == kF32 {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = float64(float32(x[o+i] - y[o+i]))
				}
			}
		} else {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = x[o+i] - y[o+i]
				}
			}
		}
	case bcode.OpVMulF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		if in.Kind == kF32 {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = float64(float32(x[o+i] * y[o+i]))
				}
			}
		} else {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = x[o+i] * y[o+i]
				}
			}
		}
	case bcode.OpVDivF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		if in.Kind == kF32 {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = float64(float32(x[o+i] / y[o+i]))
				}
			}
		} else {
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i] = x[o+i] / y[o+i]
				}
			}
		}
	case bcode.OpVBinF:
		ld := fr.bf.VecFLens[in.A]
		d, x, y := fr.vf[in.A], fr.vf[in.B], fr.vf[in.C]
		op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				v, err := vm.FloatBin(op, k, x[o+i], y[o+i])
				if err != nil {
					return laneErr(l, err)
				}
				d[o+i] = v
			}
		}
	case bcode.OpVBinI:
		ld := fr.bf.VecILens[in.A]
		d, x, y := fr.vi[in.A], fr.vi[in.B], fr.vi[in.C]
		op, k := ir.Op(in.Sub), clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for i := 0; i < ld; i++ {
				v, err := vm.IntBin(op, k, x[o+i], y[o+i])
				if err != nil {
					return laneErr(l, err)
				}
				d[o+i] = v
			}
		}

	case bcode.OpExtI:
		ls := fr.bf.VecILens[in.B]
		d, s := ri[in.A], fr.vi[in.B]
		for _, l := range mask {
			d[l] = s[int(l)*ls+int(in.Imm)]
		}
	case bcode.OpExtF:
		ls := fr.bf.VecFLens[in.B]
		d, s := rf[in.A], fr.vf[in.B]
		for _, l := range mask {
			d[l] = s[int(l)*ls+int(in.Imm)]
		}
	case bcode.OpInsI:
		ld, ls := fr.bf.VecILens[in.A], fr.bf.VecILens[in.B]
		m := min(ld, ls)
		d, s, v := fr.vi[in.A], fr.vi[in.B], ri[in.C]
		for _, l := range mask {
			copy(d[int(l)*ld:int(l)*ld+m], s[int(l)*ls:int(l)*ls+m])
			d[int(l)*ld+int(in.Imm)] = v[l]
		}
	case bcode.OpInsF:
		ld, ls := fr.bf.VecFLens[in.A], fr.bf.VecFLens[in.B]
		m := min(ld, ls)
		d, s, v := fr.vf[in.A], fr.vf[in.B], rf[in.C]
		for _, l := range mask {
			copy(d[int(l)*ld:int(l)*ld+m], s[int(l)*ls:int(l)*ls+m])
			d[int(l)*ld+int(in.Imm)] = v[l]
		}
	case bcode.OpShufI:
		ld, ls := fr.bf.VecILens[in.A], fr.bf.VecILens[in.B]
		comps := fr.bf.Aux[in.Imm].Comps
		d, s := fr.vi[in.A], fr.vi[in.B]
		for _, l := range mask {
			od, os := int(l)*ld, int(l)*ls
			for i, c := range comps {
				d[od+i] = s[os+int(c)]
			}
		}
	case bcode.OpShufF:
		ld, ls := fr.bf.VecFLens[in.A], fr.bf.VecFLens[in.B]
		comps := fr.bf.Aux[in.Imm].Comps
		d, s := fr.vf[in.A], fr.vf[in.B]
		for _, l := range mask {
			od, os := int(l)*ld, int(l)*ls
			for i, c := range comps {
				d[od+i] = s[os+int(c)]
			}
		}
	case bcode.OpBuildI:
		ld := fr.bf.VecILens[in.A]
		refs := fr.bf.Aux[in.Imm].Refs
		d := fr.vi[in.A]
		for _, l := range mask {
			o := int(l) * ld
			for i, r := range refs {
				d[o+i] = ri[r.Idx][l]
			}
		}
	case bcode.OpBuildF:
		ld := fr.bf.VecFLens[in.A]
		refs := fr.bf.Aux[in.Imm].Refs
		d := fr.vf[in.A]
		for _, l := range mask {
			o := int(l) * ld
			for i, r := range refs {
				d[o+i] = rf[r.Idx][l]
			}
		}

	case bcode.OpDotVF:
		ls := fr.bf.VecFLens[in.B]
		d, x, y := rf[in.A], fr.vf[in.B], fr.vf[in.C]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ls
			var sum float64
			for i := 0; i < ls; i++ {
				sum += x[o+i] * y[o+i]
			}
			d[l] = vm.Round32(k, sum)
		}
	case bcode.OpDotSS:
		d, x, y := rf[in.A], rf[in.B], rf[in.C]
		for _, l := range mask {
			d[l] = x[l] * y[l]
		}
	case bcode.OpLenVF:
		ls := fr.bf.VecFLens[in.B]
		d, x := rf[in.A], fr.vf[in.B]
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ls
			var sum float64
			for i := 0; i < ls; i++ {
				sum += x[o+i] * x[o+i]
			}
			d[l] = vm.Round32(k, math.Sqrt(sum))
		}
	case bcode.OpLenSS:
		d, s := rf[in.A], rf[in.B]
		for _, l := range mask {
			d[l] = math.Abs(s[l])
		}

	case bcode.OpMathF:
		ax := &fr.bf.Aux[in.Imm]
		d := rf[in.A]
		fa := g.scratchF(len(ax.Refs))
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			for i, r := range ax.Refs {
				fa[i] = rf[r.Idx][l]
			}
			v, err := vm.MathF(ax.Name, k, fa)
			if err != nil {
				return laneErr(l, err)
			}
			d[l] = v
		}
	case bcode.OpMathI:
		ax := &fr.bf.Aux[in.Imm]
		d := ri[in.A]
		ia := g.scratchI(len(ax.Refs))
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			for i, r := range ax.Refs {
				ia[i] = ri[r.Idx][l]
			}
			v, err := vm.MathI(ax.Name, k, ia)
			if err != nil {
				return laneErr(l, err)
			}
			d[l] = v
		}
	case bcode.OpVMathF:
		ax := &fr.bf.Aux[in.Imm]
		ld := fr.bf.VecFLens[in.A]
		d := fr.vf[in.A]
		fa := g.scratchF(len(ax.Refs))
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for j := 0; j < ld; j++ {
				for i, r := range ax.Refs {
					fa[i] = fr.vf[r.Idx][o+j]
				}
				v, err := vm.MathF(ax.Name, k, fa)
				if err != nil {
					return laneErr(l, err)
				}
				d[o+j] = v
			}
		}
	case bcode.OpVMathI:
		ax := &fr.bf.Aux[in.Imm]
		ld := fr.bf.VecILens[in.A]
		d := fr.vi[in.A]
		ia := g.scratchI(len(ax.Refs))
		k := clc.ScalarKind(in.Kind)
		for _, l := range mask {
			o := int(l) * ld
			for j := 0; j < ld; j++ {
				for i, r := range ax.Refs {
					ia[i] = fr.vi[r.Idx][o+j]
				}
				v, err := vm.MathI(ax.Name, k, ia)
				if err != nil {
					return laneErr(l, err)
				}
				d[o+j] = v
			}
		}

	default:
		return laneErr(mask[0], fmt.Errorf("wgvec: invalid opcode %d at pc %d", in.Op, pc))
	}
	return nil
}

// vconvCol performs a lane-wise vector conversion for all masked lanes.
// The source and destination lane counts match (the compiler traps
// mismatched conversions), so one offset walks both columns.
func (g *groupState) vconvCol(fr *colFrame, in *bcode.Inst, mask []int32) {
	from := clc.ScalarKind(in.Sub)
	to := clc.ScalarKind(in.Kind)
	if from.IsFloat() {
		s := fr.vf[in.B]
		if to.IsFloat() {
			ld := fr.bf.VecFLens[in.A]
			d := fr.vf[in.A]
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					_, d[o+i] = vm.ConvertKind(0, s[o+i], from, to)
				}
			}
		} else {
			ld := fr.bf.VecILens[in.A]
			d := fr.vi[in.A]
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i], _ = vm.ConvertKind(0, s[o+i], from, to)
				}
			}
		}
	} else {
		s := fr.vi[in.B]
		if to.IsFloat() {
			ld := fr.bf.VecFLens[in.A]
			d := fr.vf[in.A]
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					_, d[o+i] = vm.ConvertKind(s[o+i], 0, from, to)
				}
			}
		} else {
			ld := fr.bf.VecILens[in.A]
			d := fr.vi[in.A]
			for _, l := range mask {
				o := int(l) * ld
				for i := 0; i < ld; i++ {
					d[o+i], _ = vm.ConvertKind(s[o+i], 0, from, to)
				}
			}
		}
	}
}

// wiQueryLane answers a runtime-dimension work-item query for one lane.
func (g *groupState) wiQueryLane(l int32, q int32, d int64) int64 {
	if d < 0 || d > 2 {
		return 0
	}
	switch q {
	case bcode.QGlobalID:
		return g.gidCol[d][l]
	case bcode.QLocalID:
		return g.lidCol[d][l]
	case bcode.QGroupID:
		return g.grp[d]
	case bcode.QGlobalSize:
		return g.gsz[d]
	case bcode.QLocalSize:
		return g.lsz[d]
	case bcode.QNumGroups:
		return g.ngrp[d]
	case bcode.QWorkDim:
		return 3
	}
	return 0
}

// arenaLane resolves a tagged address against one lane's arenas, with
// the interpreter's exact bounds diagnostics.
// Address-space tags, mirroring the vm pointer encoding (top 2 bits; see
// vm.MakeAddr). Decoded locally so hotArena stays within the inlining
// budget of the per-lane memory loops.
const (
	tagPrivate uint64 = 0
	tagGlobal  uint64 = 1
	tagLocal   uint64 = 2
	tagShift          = 62
	offMask           = (uint64(1) << tagShift) - 1
)

// hotArena resolves a lane address with a combined tag decode and bounds
// check and no error construction, so it inlines into the per-lane load
// and store loops. ok=false sends the access down the checked resolvers,
// which produce the canonical out-of-bounds diagnostics.
func (g *groupState) hotArena(addr uint64, l int32, sz int) ([]byte, uint64, bool) {
	off := addr & offMask
	var a []byte
	switch addr >> tagShift {
	case tagGlobal:
		a = g.gmem
	case tagLocal:
		a = g.local
	default:
		a = g.priv[l]
	}
	if int(off)+sz > len(a) {
		return nil, 0, false
	}
	return a, off, true
}

func (g *groupState) arenaLane(addr uint64, l int32) ([]byte, uint64, error) {
	space, off := vm.SplitAddr(addr)
	switch space {
	case clc.ASGlobal:
		if int(off) >= len(g.gmem) {
			return nil, 0, fmt.Errorf("vm: global access at %d out of bounds (%d)", off, len(g.gmem))
		}
		return g.gmem, off, nil
	case clc.ASLocal:
		if int(off) >= len(g.local) {
			return nil, 0, fmt.Errorf("vm: local access at %d out of bounds (%d)", off, len(g.local))
		}
		return g.local, off, nil
	default:
		p := g.priv[l]
		if int(off) >= len(p) {
			return nil, 0, fmt.Errorf("vm: private access at %d out of bounds (%d)", off, len(p))
		}
		return p, off, nil
	}
}

// addrPass computes every masked lane's effective address into the
// shared scratch and, when tracing, buffers one access event per lane.
// Events are emitted before bounds are checked, matching the
// interpreter's trace-then-fault ordering.
func (g *groupState) addrPass(fr *colFrame, in *bcode.Inst, mask []int32, fused, store bool) []uint64 {
	base := fr.ri[in.B]
	addrs := g.addrs
	if fused {
		idx := fr.ri[in.C]
		for _, l := range mask {
			addrs[l] = uint64(base[l] + idx[l]*in.Imm)
		}
	} else {
		for _, l := range mask {
			addrs[l] = uint64(base[l])
		}
	}
	if g.tracer != nil {
		ei := g.instrIdx(in.In)
		sz := in.N
		for _, l := range mask {
			g.events[l] = append(g.events[l], traceEv{addr: addrs[l], instr: ei, size: sz, store: store})
		}
	}
	if g.prof != nil {
		if store {
			g.profStores += int64(len(mask))
		} else {
			g.profLoads += int64(len(mask))
		}
	}
	return addrs
}

// instrIdx interns an IR instruction into the group's event table. The
// single-entry cache covers the per-instruction lane sweeps that produce
// event runs.
func (g *groupState) instrIdx(in *ir.Instr) int32 {
	if in == g.lastIn {
		return g.lastIdx
	}
	idx, ok := g.evIdx[in]
	if !ok {
		idx = int32(len(g.evInstrs))
		g.evInstrs = append(g.evInstrs, in)
		g.evIdx[in] = idx
	}
	g.lastIn, g.lastIdx = in, idx
	return idx
}

// loadCol performs a scalar load for all masked lanes. With uni set (a
// statically uniform access under a full mask) the value is loaded once
// and broadcast; trace events are still buffered per lane. Private
// memory is per-lane storage even at a uniform address, so uniform
// treatment only applies to the shared global and local arenas.
func (g *groupState) loadCol(fr *colFrame, in *bcode.Inst, mask []int32, fused, uni bool) error {
	addrs := g.addrPass(fr, in, mask, fused, false)
	sz := int(in.N)
	if uni {
		if sp, _ := vm.SplitAddr(addrs[mask[0]]); sp == clc.ASPrivate {
			uni = false
		}
	}
	if uni {
		l0 := mask[0]
		a, off, err := g.arenaLane(addrs[l0], l0)
		if err != nil {
			return laneErr(l0, err)
		}
		if int(off)+sz > len(a) {
			return laneErr(l0, fmt.Errorf("vm: load of %d bytes at %d overruns arena (%d)", sz, off, len(a)))
		}
		switch in.Op {
		case bcode.OpLdI8, bcode.OpLdXI8:
			broadcastI(fr.ri[in.A], mask, int64(int8(a[off])))
		case bcode.OpLdU8, bcode.OpLdXU8:
			broadcastI(fr.ri[in.A], mask, int64(a[off]))
		case bcode.OpLdI16, bcode.OpLdXI16:
			broadcastI(fr.ri[in.A], mask, int64(int16(binary.LittleEndian.Uint16(a[off:]))))
		case bcode.OpLdU16, bcode.OpLdXU16:
			broadcastI(fr.ri[in.A], mask, int64(binary.LittleEndian.Uint16(a[off:])))
		case bcode.OpLdI32, bcode.OpLdXI32:
			broadcastI(fr.ri[in.A], mask, int64(int32(binary.LittleEndian.Uint32(a[off:]))))
		case bcode.OpLdU32, bcode.OpLdXU32:
			broadcastI(fr.ri[in.A], mask, int64(binary.LittleEndian.Uint32(a[off:])))
		case bcode.OpLdI64, bcode.OpLdXI64:
			broadcastI(fr.ri[in.A], mask, int64(binary.LittleEndian.Uint64(a[off:])))
		case bcode.OpLdF32, bcode.OpLdXF32:
			broadcastF(fr.rf[in.A], mask, float64(math.Float32frombits(binary.LittleEndian.Uint32(a[off:]))))
		case bcode.OpLdF64, bcode.OpLdXF64:
			broadcastF(fr.rf[in.A], mask, math.Float64frombits(binary.LittleEndian.Uint64(a[off:])))
		}
		return nil
	}
	switch in.Op {
	case bcode.OpLdI8, bcode.OpLdXI8:
		d := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = int64(int8(a[off]))
		}
	case bcode.OpLdU8, bcode.OpLdXU8:
		d := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = int64(a[off])
		}
	case bcode.OpLdI16, bcode.OpLdXI16:
		d := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = int64(int16(binary.LittleEndian.Uint16(a[off:])))
		}
	case bcode.OpLdU16, bcode.OpLdXU16:
		d := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = int64(binary.LittleEndian.Uint16(a[off:]))
		}
	case bcode.OpLdI32, bcode.OpLdXI32:
		d := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = int64(int32(binary.LittleEndian.Uint32(a[off:])))
		}
	case bcode.OpLdU32, bcode.OpLdXU32:
		d := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = int64(binary.LittleEndian.Uint32(a[off:]))
		}
	case bcode.OpLdI64, bcode.OpLdXI64:
		d := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = int64(binary.LittleEndian.Uint64(a[off:]))
		}
	case bcode.OpLdF32, bcode.OpLdXF32:
		d := fr.rf[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[off:])))
		}
	case bcode.OpLdF64, bcode.OpLdXF64:
		d := fr.rf[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.ldArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			d[l] = math.Float64frombits(binary.LittleEndian.Uint64(a[off:]))
		}
	}
	return nil
}

// ldArena is arenaLane plus the load-width bounds check, with errors
// already attributed to the lane.
func (g *groupState) ldArena(addr uint64, l int32, sz int) ([]byte, uint64, error) {
	a, off, err := g.arenaLane(addr, l)
	if err != nil {
		return nil, 0, laneErr(l, err)
	}
	if int(off)+sz > len(a) {
		return nil, 0, laneErr(l, fmt.Errorf("vm: load of %d bytes at %d overruns arena (%d)", sz, off, len(a)))
	}
	return a, off, nil
}

// stArena is arenaLane plus the store-width bounds check.
func (g *groupState) stArena(addr uint64, l int32, sz int) ([]byte, uint64, error) {
	a, off, err := g.arenaLane(addr, l)
	if err != nil {
		return nil, 0, laneErr(l, err)
	}
	if int(off)+sz > len(a) {
		return nil, 0, laneErr(l, fmt.Errorf("vm: store of %d bytes at %d overruns arena (%d)", sz, off, len(a)))
	}
	return a, off, nil
}

// storeCol performs a scalar store for all masked lanes. A uniform store
// writes once (the write is idempotent across lanes) but still buffers
// one trace event per lane. As with loadCol, private memory is per-lane
// storage, so the write-once shortcut only applies to the shared global
// and local arenas.
func (g *groupState) storeCol(fr *colFrame, in *bcode.Inst, mask []int32, fused, uni bool) error {
	addrs := g.addrPass(fr, in, mask, fused, true)
	sz := int(in.N)
	if uni {
		if sp, _ := vm.SplitAddr(addrs[mask[0]]); sp != clc.ASPrivate {
			mask = mask[:1]
		}
	}
	switch in.Op {
	case bcode.OpStI8, bcode.OpStXI8:
		src := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.stArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			a[off] = byte(src[l])
		}
	case bcode.OpStI16, bcode.OpStXI16:
		src := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.stArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint16(a[off:], uint16(src[l]))
		}
	case bcode.OpStI32, bcode.OpStXI32:
		src := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.stArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint32(a[off:], uint32(src[l]))
		}
	case bcode.OpStI64, bcode.OpStXI64:
		src := fr.ri[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.stArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint64(a[off:], uint64(src[l]))
		}
	case bcode.OpStF32, bcode.OpStXF32:
		src := fr.rf[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.stArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint32(a[off:], math.Float32bits(float32(src[l])))
		}
	case bcode.OpStF64, bcode.OpStXF64:
		src := fr.rf[in.A]
		for _, l := range mask {
			a, off, ok := g.hotArena(addrs[l], l, sz)
			if !ok {
				var err error
				if a, off, err = g.stArena(addrs[l], l, sz); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint64(a[off:], math.Float64bits(src[l]))
		}
	}
	return nil
}

// loadVecCol loads a vector register lane by lane at element-size
// strides for all masked lanes.
func (g *groupState) loadVecCol(fr *colFrame, in *bcode.Inst, mask []int32, fused bool) error {
	addrs := g.addrPass(fr, in, mask, fused, false)
	k := clc.ScalarKind(in.Kind)
	es := k.Size()
	lanes := int(in.Sub)
	if in.Op == bcode.OpLdVF || in.Op == bcode.OpLdXVF {
		ld := fr.bf.VecFLens[in.A]
		d := fr.vf[in.A]
		for _, l := range mask {
			o := int(l) * ld
			addr := addrs[l]
			// Fast path: the whole vector sits in one arena, so resolve
			// and bounds-check once and decode with a tight loop.
			if a, off, ok := g.hotArena(addr, l, lanes*es); ok {
				v := a[off:]
				if k == clc.KFloat {
					for i := 0; i < lanes; i++ {
						d[o+i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(v[i*4:])))
					}
				} else {
					for i := 0; i < lanes; i++ {
						d[o+i] = math.Float64frombits(binary.LittleEndian.Uint64(v[i*8:]))
					}
				}
				continue
			}
			// Slow path keeps the interpreter's per-element bounds checks
			// and error attribution.
			for i := 0; i < lanes; i++ {
				a, off, err := g.ldArena(addr+uint64(i*es), l, es)
				if err != nil {
					return err
				}
				if k == clc.KFloat {
					d[o+i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[off:])))
				} else {
					d[o+i] = math.Float64frombits(binary.LittleEndian.Uint64(a[off:]))
				}
			}
		}
	} else {
		ld := fr.bf.VecILens[in.A]
		d := fr.vi[in.A]
		for _, l := range mask {
			o := int(l) * ld
			addr := addrs[l]
			if a, off, ok := g.hotArena(addr, l, lanes*es); ok {
				v := a[off:]
				for i := 0; i < lanes; i++ {
					d[o+i] = loadIntLane(v, uint64(i*es), k)
				}
				continue
			}
			for i := 0; i < lanes; i++ {
				a, off, err := g.ldArena(addr+uint64(i*es), l, es)
				if err != nil {
					return err
				}
				d[o+i] = loadIntLane(a, off, k)
			}
		}
	}
	return nil
}

// storeVecCol stores a vector register lane by lane for all masked lanes.
func (g *groupState) storeVecCol(fr *colFrame, in *bcode.Inst, mask []int32, fused bool) error {
	addrs := g.addrPass(fr, in, mask, fused, true)
	k := clc.ScalarKind(in.Kind)
	es := k.Size()
	lanes := int(in.Sub)
	if in.Op == bcode.OpStVF || in.Op == bcode.OpStXVF {
		ls := fr.bf.VecFLens[in.A]
		s := fr.vf[in.A]
		for _, l := range mask {
			o := int(l) * ls
			addr := addrs[l]
			// Fast path mirrors loadVecCol: one resolve + one bounds
			// check when the whole vector fits in the arena.
			if a, off, ok := g.hotArena(addr, l, lanes*es); ok {
				v := a[off:]
				if k == clc.KFloat {
					for i := 0; i < lanes; i++ {
						binary.LittleEndian.PutUint32(v[i*4:], math.Float32bits(float32(s[o+i])))
					}
				} else {
					for i := 0; i < lanes; i++ {
						binary.LittleEndian.PutUint64(v[i*8:], math.Float64bits(s[o+i]))
					}
				}
				continue
			}
			for i := 0; i < lanes; i++ {
				a, off, err := g.stArena(addr+uint64(i*es), l, es)
				if err != nil {
					return err
				}
				if k == clc.KFloat {
					binary.LittleEndian.PutUint32(a[off:], math.Float32bits(float32(s[o+i])))
				} else {
					binary.LittleEndian.PutUint64(a[off:], math.Float64bits(s[o+i]))
				}
			}
		}
	} else {
		ls := fr.bf.VecILens[in.A]
		s := fr.vi[in.A]
		for _, l := range mask {
			o := int(l) * ls
			addr := addrs[l]
			if a, off, ok := g.hotArena(addr, l, lanes*es); ok {
				v := a[off:]
				for i := 0; i < lanes; i++ {
					storeIntLane(v, uint64(i*es), k, s[o+i])
				}
				continue
			}
			for i := 0; i < lanes; i++ {
				a, off, err := g.stArena(addr+uint64(i*es), l, es)
				if err != nil {
					return err
				}
				storeIntLane(a, off, k, s[o+i])
			}
		}
	}
	return nil
}

func loadIntLane(a []byte, off uint64, k clc.ScalarKind) int64 {
	switch k {
	case clc.KBool, clc.KUChar:
		return int64(a[off])
	case clc.KChar:
		return int64(int8(a[off]))
	case clc.KShort:
		return int64(int16(binary.LittleEndian.Uint16(a[off:])))
	case clc.KUShort:
		return int64(binary.LittleEndian.Uint16(a[off:]))
	case clc.KInt:
		return int64(int32(binary.LittleEndian.Uint32(a[off:])))
	case clc.KUInt:
		return int64(binary.LittleEndian.Uint32(a[off:]))
	default: // KLong, KULong
		return int64(binary.LittleEndian.Uint64(a[off:]))
	}
}

func storeIntLane(a []byte, off uint64, k clc.ScalarKind, v int64) {
	switch k {
	case clc.KBool, clc.KChar, clc.KUChar:
		a[off] = byte(v)
	case clc.KShort, clc.KUShort:
		binary.LittleEndian.PutUint16(a[off:], uint16(v))
	case clc.KInt, clc.KUInt:
		binary.LittleEndian.PutUint32(a[off:], uint32(v))
	default: // KLong, KULong
		binary.LittleEndian.PutUint64(a[off:], uint64(v))
	}
}

func broadcastI(col []int64, mask []int32, v int64) {
	for _, l := range mask {
		col[l] = v
	}
}

func broadcastF(col []float64, mask []int32, v float64) {
	for _, l := range mask {
		col[l] = v
	}
}

// scratchF returns the worker's pooled float argument buffer.
func (g *groupState) scratchF(n int) []float64 {
	if cap(g.mathF) < n {
		g.mathF = make([]float64, n)
	}
	return g.mathF[:n]
}

// scratchI returns the worker's pooled integer argument buffer.
func (g *groupState) scratchI(n int) []int64 {
	if cap(g.mathI) < n {
		g.mathI = make([]int64, n)
	}
	return g.mathI[:n]
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
