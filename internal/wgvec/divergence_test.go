// Divergence-stress fixtures for the lockstep backend: kernels chosen
// to force mask partitioning, reconvergence, and uniform-branch barrier
// placement. Every kernel must produce bit-identical memory and retire
// the same instruction count on the interpreter, bcode and wgvec.
package wgvec_test

import (
	"bytes"
	"testing"

	"grover/internal/bcode"
	"grover/internal/ir"
	"grover/internal/jit"
	"grover/internal/vm"
	"grover/internal/wgvec"
	"grover/opencl"
)

var backends = []string{vm.BackendInterp, bcode.Name, wgvec.Name, jit.Name}

// nestedSrc: both loop trip counts depend on the work-item id, so lanes
// leave the inner and outer loops at different iterations and must
// reconverge at each loop exit.
const nestedSrc = `
__kernel void nested(__global int* out, int n) {
    int g = get_global_id(0);
    int acc = 0;
    for (int i = 0; i < (g % 4) + 1; i++) {
        for (int j = 0; j < ((i + g) % 3) + 1; j++) {
            acc += i * 10 + j + 1;
        }
    }
    out[g] = acc;
}
`

// breakSrc: divergent continue and break, plus a divergent early return.
const breakSrc = `
__kernel void breaker(__global int* out, int n) {
    int g = get_global_id(0);
    if (g >= n) {
        return;
    }
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        if (((i + g) % 5) == 0) {
            continue;
        }
        if (i > (g % 7) + 6) {
            break;
        }
        acc += i + 1;
    }
    out[g] = acc;
}
`

// ubarSrc: a barrier pair inside a branch on a uniform kernel argument —
// legal because every work-item takes the same arm. Exercises wgvec's
// all-lanes-agree inline continuation around barrier suspension.
const ubarSrc = `
__kernel void ubar(__global float* out, __global float* in,
                   __local float* tile, int mode) {
    int l = get_local_id(0);
    int ls = get_local_size(0);
    int g = get_global_id(0);
    float v = in[g];
    if (mode > 0) {
        tile[l] = v;
        barrier(CLK_LOCAL_MEM_FENCE);
        v += tile[(l + 1) % ls];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[g] = v;
}
`

// diamondSrc: a divergent if/else diamond feeding a local-memory
// exchange, so reconvergence must be complete before the barrier.
const diamondSrc = `
__kernel void diamond(__global float* out, __global float* in,
                      __local float* tile, int n) {
    int l = get_local_id(0);
    int ls = get_local_size(0);
    int g = get_global_id(0);
    float v;
    if ((g % 2) == 0) {
        v = in[g] * 2.0f;
    } else {
        v = in[g] + 3.0f;
    }
    tile[l] = v;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[g] = tile[ls - 1 - l];
}
`

// privSrc: regression for uniform loads/stores of private variables. The
// loop counter and accumulator live at statically uniform private
// addresses, but private storage is per-lane: a second work-group must
// not observe the first group's accumulator.
const privSrc = `
__kernel void priv(__global float* out, __global float* in,
                   __local float* dyn, int n) {
    int l = get_local_id(0);
    int ls = get_local_size(0);
    int g = get_global_id(0);
    dyn[l] = in[g % n];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int i = 0; i < ls; i++) {
        acc += dyn[(l + i) % ls];
    }
    out[g % n] = acc + (float)l;
}
`

type retireTracer struct{ n int64 }

func (t *retireTracer) GroupBegin(group [3]int, linear int)                            {}
func (t *retireTracer) Access(in *ir.Instr, wi int, addr uint64, size int, store bool) {}
func (t *retireTracer) Barrier(wiCount int)                                            {}
func (t *retireTracer) Instrs(wi int, n int64)                                         { t.n += n }
func (t *retireTracer) GroupEnd()                                                      {}

type fixture struct {
	name, src, kernel string
	global, local     [3]int
	scalar            int64 // trailing int argument (n or mode)
	dynBytes          int   // dynamic __local size; 0 = no __local argument
	floats            bool  // float in/out buffers instead of one int buffer
}

func runFixture(t *testing.T, fx fixture) {
	t.Helper()
	plat := opencl.NewPlatform()
	var wantMem []byte
	var wantRetired int64
	for bi, backend := range backends {
		ctx := opencl.NewContext(plat.Devices()[0])
		prog, err := ctx.CompileProgram(fx.name, fx.src, nil)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		var args []interface{}
		if fx.floats {
			out := ctx.NewBuffer(4 * 256)
			in := ctx.NewBuffer(4 * 256)
			vals := make([]float32, 256)
			for i := range vals {
				vals[i] = float32(i%13) + 0.5
			}
			in.WriteFloat32(vals)
			args = []interface{}{out, in}
		} else {
			args = []interface{}{ctx.NewBuffer(4 * 256)}
		}
		if fx.dynBytes > 0 {
			args = append(args, opencl.LocalMem{Size: fx.dynBytes})
		}
		args = append(args, fx.scalar)
		vargs, err := opencl.VMArgs(args...)
		if err != nil {
			t.Fatalf("args: %v", err)
		}
		tr := &retireTracer{}
		cfg := vm.Config{GlobalSize: fx.global, LocalSize: fx.local, Backend: backend, Args: vargs}
		opts := &vm.LaunchOpts{Workers: 1, TracerFor: func(int) vm.Tracer { return tr }}
		if err := prog.VM().Launch(fx.kernel, cfg, ctx.Mem(), opts); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if bi == 0 {
			wantMem = append([]byte(nil), ctx.Mem().Data...)
			wantRetired = tr.n
			continue
		}
		if !bytes.Equal(ctx.Mem().Data, wantMem) {
			t.Errorf("%s: memory differs from interpreter", backend)
		}
		if tr.n != wantRetired {
			t.Errorf("%s: retired %d instructions, interpreter retired %d", backend, tr.n, wantRetired)
		}
	}
}

func TestDivergenceFixtures(t *testing.T) {
	fixtures := []fixture{
		{name: "nested", src: nestedSrc, kernel: "nested",
			global: [3]int{64, 1, 1}, local: [3]int{16, 1, 1}, scalar: 64},
		{name: "break", src: breakSrc, kernel: "breaker",
			global: [3]int{64, 1, 1}, local: [3]int{16, 1, 1}, scalar: 50},
		{name: "ubar-on", src: ubarSrc, kernel: "ubar",
			global: [3]int{64, 1, 1}, local: [3]int{8, 1, 1}, scalar: 1,
			dynBytes: 4 * 8, floats: true},
		{name: "ubar-off", src: ubarSrc, kernel: "ubar",
			global: [3]int{64, 1, 1}, local: [3]int{8, 1, 1}, scalar: 0,
			dynBytes: 4 * 8, floats: true},
		{name: "diamond", src: diamondSrc, kernel: "diamond",
			global: [3]int{64, 1, 1}, local: [3]int{8, 1, 1}, scalar: 64,
			dynBytes: 4 * 8, floats: true},
		{name: "priv", src: privSrc, kernel: "priv",
			global: [3]int{32, 2, 1}, local: [3]int{8, 1, 1}, scalar: 60,
			dynBytes: 4 * 8, floats: true},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			runFixture(t, fx)
		})
	}
}
