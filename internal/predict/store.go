package predict

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"grover/internal/kcache"
	"grover/internal/telemetry/aiwc"
)

// StoreVersion is the feature-store schema version. Bumping it rejects
// (never silently migrates) stores written by older builds.
const StoreVersion = 1

// PlanOutcome is one measured plan in a Record.
type PlanOutcome struct {
	// Plan is the canonical plan string as measured; Shape its
	// option-free rule sequence (the cross-kernel transfer key).
	Plan  string `json:"plan"`
	Shape string `json:"shape"`
	// MS is the measured mean simulated time; Applied is false for plans
	// that did not change the kernel (they carry no timing).
	MS      float64 `json:"ms,omitempty"`
	Applied bool    `json:"applied"`
}

// Record is one committed measurement: a workload (feature vector) on a
// device, with every measured plan outcome.
type Record struct {
	// Hash is the feature-vector content address; Device the profile
	// name the timings were measured on.
	Hash   string `json:"hash"`
	Device string `json:"device"`
	// Label names the workload for humans ("NVD-MT", a request ID);
	// Kernel is the entry point.
	Label  string `json:"label,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	// Features is the raw characterization; Vector the normalized form
	// (stored so lookups need no recomputation, recomputed on version
	// drift).
	Features *aiwc.Features `json:"features,omitempty"`
	Vector   []float64      `json:"vector"`
	// BaseMS is the measured base-plan time; Best the measured-best
	// plan; BestShape its shape; Plans every evaluated plan.
	BaseMS    float64       `json:"base_ms"`
	Best      string        `json:"best"`
	BestShape string        `json:"best_shape"`
	Plans     []PlanOutcome `json:"plans"`
	// Source records provenance: "seed" (committed benchmark sweeps) or
	// "measured" (a fallback measurement recorded under traffic).
	Source string `json:"source,omitempty"`
}

// BestShapes returns the shapes of every plan tying the record's best
// measured time (within tieEps relative tolerance).
func (r *Record) BestShapes() map[string]bool {
	best := 0.0
	for _, p := range r.Plans {
		if p.Applied && p.MS > 0 && (best == 0 || p.MS < best) {
			best = p.MS
		}
	}
	out := map[string]bool{}
	if best == 0 {
		return out
	}
	for _, p := range r.Plans {
		if p.Applied && p.MS > 0 && p.MS <= best*(1+tieEps) {
			out[p.Shape] = true
		}
	}
	return out
}

// ShapeRatio returns the record's measured ms ratio for a plan shape
// against its base plan (np⁻¹: < 1 means the shape beat base), and
// whether the shape was measured.
func (r *Record) ShapeRatio(shape string) (float64, bool) {
	if r.BaseMS <= 0 {
		return 0, false
	}
	best := 0.0
	found := false
	for _, p := range r.Plans {
		if p.Shape != shape || !p.Applied || p.MS <= 0 {
			continue
		}
		if !found || p.MS < best {
			best, found = p.MS, true
		}
	}
	if !found {
		return 0, false
	}
	return best / r.BaseMS, true
}

// tieEps is the relative tolerance treating two measured times as tied.
const tieEps = 1e-9

// Store is the persistent feature→outcome store: records keyed by
// feature-vector hash + device on a kcache.DiskStore, with an alias
// index mapping exact request keys (content address of source, kernel,
// device, launch) to records so repeat requests answer with zero runs —
// not even the characterization one.
type Store struct {
	mu       sync.Mutex
	ds       *kcache.DiskStore
	byDevice map[string][]*Record          // device → records, insertion order
	byKey    map[string]map[string]*Record // device → hash → record
	aliases  map[string]string             // exact key → record key
}

const (
	recPrefix   = "rec/"
	aliasPrefix = "key/"
)

func recordKey(hash, device string) string { return recPrefix + hash + "/" + device }

// OpenStore opens (or creates) the feature store at path, bounded to
// maxRecords records (<= 0 means unbounded). An empty path yields a
// memory-only store. A store written by a different schema version is
// rejected with kcache.ErrVersionMismatch.
func OpenStore(path string, maxRecords int) (*Store, error) {
	ds, err := kcache.OpenDiskStore(path, StoreVersion, maxRecords)
	if err != nil {
		return nil, err
	}
	s := &Store{
		ds:       ds,
		byDevice: map[string][]*Record{},
		byKey:    map[string]map[string]*Record{},
		aliases:  map[string]string{},
	}
	ds.OnEvict(s.evicted)
	// Rebuild the in-memory neighborhoods from the persisted log.
	var loadErr error
	ds.Range(func(key string, raw json.RawMessage) bool {
		switch {
		case strings.HasPrefix(key, recPrefix):
			var rec Record
			if err := json.Unmarshal(raw, &rec); err != nil {
				loadErr = fmt.Errorf("predict: corrupt record %s: %v", key, err)
				return false
			}
			s.index(&rec)
		case strings.HasPrefix(key, aliasPrefix):
			var ref string
			if err := json.Unmarshal(raw, &ref); err != nil {
				loadErr = fmt.Errorf("predict: corrupt alias %s: %v", key, err)
				return false
			}
			s.aliases[strings.TrimPrefix(key, aliasPrefix)] = ref
		}
		return true
	})
	if loadErr != nil {
		ds.Close()
		return nil, loadErr
	}
	return s, nil
}

// evicted drops an evicted disk record from the in-memory indexes. The
// DiskStore calls it under its own lock; Store state is guarded by s.mu,
// which every path into the DiskStore already holds.
func (s *Store) evicted(key string) {
	switch {
	case strings.HasPrefix(key, recPrefix):
		rest := strings.TrimPrefix(key, recPrefix)
		i := strings.LastIndexByte(rest, '/')
		if i < 0 {
			return
		}
		hash, device := rest[:i], rest[i+1:]
		if m := s.byKey[device]; m != nil {
			delete(m, hash)
		}
		recs := s.byDevice[device]
		for j, r := range recs {
			if r.Hash == hash {
				s.byDevice[device] = append(recs[:j:j], recs[j+1:]...)
				break
			}
		}
	case strings.HasPrefix(key, aliasPrefix):
		delete(s.aliases, strings.TrimPrefix(key, aliasPrefix))
	}
}

// index adds rec to the in-memory neighborhoods (caller holds s.mu or
// owns the store exclusively).
func (s *Store) index(rec *Record) {
	if len(rec.Vector) != len(dims) && rec.Features != nil {
		// Recompute vectors persisted by an older dimension basis; the
		// raw features are the durable truth.
		rec.Vector = Vector(rec.Features)
	}
	if m := s.byKey[rec.Device]; m != nil {
		if old, ok := m[rec.Hash]; ok {
			// Replace in place, keeping neighborhood order.
			*old = *rec
			return
		}
	} else {
		s.byKey[rec.Device] = map[string]*Record{}
	}
	s.byKey[rec.Device][rec.Hash] = rec
	s.byDevice[rec.Device] = append(s.byDevice[rec.Device], rec)
}

// Put records one measurement, persisting it and updating the device
// neighborhood. aliasKeys (exact request content addresses) become
// zero-run lookup handles for the record.
func (s *Store) Put(rec *Record, aliasKeys ...string) error {
	if rec.Hash == "" || rec.Device == "" {
		return fmt.Errorf("predict: record needs a feature hash and a device")
	}
	if len(rec.Vector) == 0 && rec.Features != nil {
		rec.Vector = Vector(rec.Features)
	}
	if rec.BestShape == "" && rec.Best != "" {
		rec.BestShape = PlanShape(rec.Best)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := recordKey(rec.Hash, rec.Device)
	if err := s.ds.Put(key, rec); err != nil {
		return err
	}
	cp := *rec
	s.index(&cp)
	for _, ak := range aliasKeys {
		if ak == "" {
			continue
		}
		if err := s.ds.Put(aliasPrefix+ak, key); err != nil {
			return err
		}
		s.aliases[ak] = key
	}
	return nil
}

// Alias points an exact request key at an existing record, so future
// identical requests resolve with zero runs (no characterization).
func (s *Store) Alias(key, hash, device string) error {
	if key == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := recordKey(hash, device)
	if err := s.ds.Put(aliasPrefix+key, ref); err != nil {
		return err
	}
	s.aliases[key] = ref
	return nil
}

// Lookup returns the record for a feature hash on a device.
func (s *Store) Lookup(hash, device string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.byKey[device]
	if m == nil {
		return nil, false
	}
	rec, ok := m[hash]
	if !ok {
		return nil, false
	}
	cp := *rec
	return &cp, true
}

// LookupAlias resolves an exact request key to its record, if one was
// recorded. This is the zero-run path: no characterization needed.
func (s *Store) LookupAlias(key string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.aliases[key]
	if !ok {
		return nil, false
	}
	rest := strings.TrimPrefix(ref, recPrefix)
	i := strings.LastIndexByte(rest, '/')
	if i < 0 {
		return nil, false
	}
	m := s.byKey[rest[i+1:]]
	if m == nil {
		return nil, false
	}
	rec, ok := m[rest[:i]]
	if !ok {
		return nil, false
	}
	cp := *rec
	return &cp, true
}

// Neighborhood returns the records measured on a device (copies, in
// insertion order).
func (s *Store) Neighborhood(device string) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.byDevice[device]
	out := make([]*Record, len(recs))
	for i, r := range recs {
		cp := *r
		out[i] = &cp
	}
	return out
}

// Devices lists the devices with at least one record, sorted.
func (s *Store) Devices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byDevice))
	for d, recs := range s.byDevice {
		if len(recs) > 0 {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// Len counts live records (aliases excluded).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, recs := range s.byDevice {
		n += len(recs)
	}
	return n
}

// Stats exposes the underlying disk-store counters.
func (s *Store) Stats() kcache.DiskStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Stats()
}

// Close releases the underlying log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Close()
}
