package predict

import (
	"fmt"
	"math"
	"sort"

	"grover/internal/telemetry/aiwc"
)

// Config tunes the predictor. The zero value selects the defaults below.
type Config struct {
	// K is the neighborhood size (default 3).
	K int
	// Tau is the distance scale: a neighbor at distance Tau carries
	// weight 1/e relative to an identical workload (default 0.18).
	Tau float64
	// PriorWeight blends the static profitability prior into the
	// predicted ratios: 0 = pure k-NN, 1 = pure static (default 0.25).
	PriorWeight float64
}

const (
	defaultK           = 3
	defaultTau         = 0.18
	defaultPriorWeight = 0.25

	// DefaultMinConfidence is the measured-fallback threshold used when a
	// caller enables predict mode without choosing one.
	DefaultMinConfidence = 0.6

	// divergenceGuard is the normalized divergence level above which a
	// workload enters the static model's documented blind spot
	// (data-dependent early exits); guardCap bounds confidence when the
	// neighborhood cannot vouch for such a workload.
	divergenceGuard = 0.5
	guardCap        = 0.35
)

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = defaultK
	}
	if c.Tau <= 0 {
		c.Tau = defaultTau
	}
	if c.PriorWeight < 0 {
		c.PriorWeight = 0
	} else if c.PriorWeight == 0 {
		c.PriorWeight = defaultPriorWeight
	} else if c.PriorWeight > 1 {
		c.PriorWeight = 1
	}
	return c
}

// Query is one prediction request: a characterized workload, the device
// to predict for, and the candidate plan shapes under consideration.
type Query struct {
	// Features is the workload's characterization; Vector and Hash are
	// derived from it when unset.
	Features *aiwc.Features
	Vector   []float64
	Hash     string
	// Device names the device profile to predict for.
	Device string
	// Shapes lists the candidate plan shapes ("base" is implied).
	Shapes []string
	// Prior maps plan shapes to the static model's predicted
	// cycles-per-group ratio against base (optional; from profit.RankPlans).
	Prior map[string]float64
	// Exclude drops records with these labels from the neighborhood, and
	// ExcludeHashes drops records by feature hash — leave-one-out
	// cross-validation must hold out behavioral twins (workloads whose
	// dynamic features are identical to the held-out one), not just the
	// label.
	Exclude       map[string]bool
	ExcludeHashes map[string]bool
}

// Neighbor is one store record consulted for a prediction.
type Neighbor struct {
	Label    string  `json:"label,omitempty"`
	Hash     string  `json:"hash"`
	Distance float64 `json:"distance"`
	Weight   float64 `json:"weight"`
	Best     string  `json:"best"`
}

// Prediction is the predictor's answer: a verdict (the plan shape
// expected to win, "base" meaning "keep local memory"), the predicted
// time ratio for it, and a calibrated confidence in [0, 1].
type Prediction struct {
	Device string `json:"device"`
	Hash   string `json:"hash"`
	// Verdict is the predicted best plan shape; Plan is the concrete
	// measured plan when the prediction comes from an exact store hit.
	Verdict string `json:"verdict"`
	Plan    string `json:"plan,omitempty"`
	// Ratio is the predicted ms/base for the verdict shape (< 1 means it
	// beats base); Ratios covers every predictable candidate shape.
	Ratio  float64            `json:"ratio"`
	Ratios map[string]float64 `json:"ratios,omitempty"`
	// Confidence calibrates how much to trust the verdict; Exact marks a
	// feature-hash store hit (the workload itself was measured before).
	Confidence float64 `json:"confidence"`
	Exact      bool    `json:"exact"`
	// Neighbors lists the consulted records, nearest first.
	Neighbors []Neighbor `json:"neighbors,omitempty"`
	// Note explains a capped confidence.
	Note string `json:"note,omitempty"`
}

// Predictor answers autotune queries from the feature store.
type Predictor struct {
	store *Store
	cfg   Config
}

// NewPredictor wraps a store with the given configuration.
func NewPredictor(store *Store, cfg Config) *Predictor {
	return &Predictor{store: store, cfg: cfg.withDefaults()}
}

// Store returns the underlying feature store.
func (p *Predictor) Store() *Store { return p.store }

// Predict answers one query. It never fails: with an empty neighborhood
// it returns a zero-confidence "base" verdict, which any sane
// MinConfidence routes to measured fallback.
func (p *Predictor) Predict(q Query) *Prediction {
	if q.Vector == nil && q.Features != nil {
		q.Vector = Vector(q.Features)
	}
	if q.Hash == "" && q.Features != nil {
		q.Hash = Hash(q.Features)
	}
	pr := &Prediction{Device: q.Device, Hash: q.Hash, Verdict: "base", Ratio: 1}

	// Exact feature-hash hit: this very workload was measured on this
	// device — answer from the record.
	if q.Hash != "" && !q.ExcludeHashes[q.Hash] {
		if rec, ok := p.store.Lookup(q.Hash, q.Device); ok && !q.Exclude[rec.Label] {
			pr.Exact = true
			pr.Confidence = 1
			pr.Verdict = rec.BestShape
			pr.Plan = rec.Best
			if r, ok := rec.ShapeRatio(rec.BestShape); ok {
				pr.Ratio = r
			}
			pr.Neighbors = []Neighbor{{
				Label: rec.Label, Hash: rec.Hash, Distance: 0, Weight: 1, Best: rec.BestShape,
			}}
			return pr
		}
	}
	if len(q.Vector) == 0 {
		pr.Note = "no feature vector"
		return pr
	}

	neighbors := p.nearest(q)
	if len(neighbors) == 0 {
		pr.Note = "empty neighborhood"
		return pr
	}

	// Predict each candidate shape's ms/base ratio: a distance-weighted
	// mean of the neighbors' measured ratios, blended with the static
	// prior when available.
	shapes := map[string]bool{"base": true}
	for _, s := range q.Shapes {
		shapes[PlanShape(s)] = true
	}
	ratios := map[string]float64{"base": 1}
	for shape := range shapes {
		if shape == "base" || shape == "" {
			continue
		}
		var sum, wsum float64
		for _, n := range neighbors {
			if r, ok := n.rec.ShapeRatio(shape); ok {
				sum += n.weight * r
				wsum += n.weight
			}
		}
		knn, hasKNN := 0.0, wsum > 0
		if hasKNN {
			knn = sum / wsum
		}
		prior, hasPrior := q.Prior[shape]
		switch {
		case hasKNN && hasPrior && prior > 0:
			w := p.cfg.PriorWeight
			ratios[shape] = (1-w)*knn + w*prior
		case hasKNN:
			ratios[shape] = knn
		case hasPrior && prior > 0:
			ratios[shape] = prior
		}
	}
	pr.Ratios = ratios

	best, bestRatio := "base", 1.0
	for shape, r := range ratios {
		if r < bestRatio || (r == bestRatio && shape < best && r < 1) {
			best, bestRatio = shape, r
		}
	}
	pr.Verdict = best
	pr.Ratio = bestRatio

	// Confidence: how close the nearest evidence is, times how unanimous
	// the neighborhood is about the verdict.
	var wsum, agree float64
	for _, n := range neighbors {
		wsum += n.weight
		bests := n.rec.BestShapes()
		if bests[best] || (best == "base" && len(bests) == 0) {
			agree += n.weight
		}
		pr.Neighbors = append(pr.Neighbors, Neighbor{
			Label: n.rec.Label, Hash: n.rec.Hash,
			Distance: n.dist, Weight: n.weight, Best: n.rec.BestShape,
		})
	}
	proximity := math.Exp(-neighbors[0].dist / p.cfg.Tau)
	agreement := agree / wsum
	pr.Confidence = agreement * (0.4 + 0.6*proximity)

	// Early-exit guard: highly divergent workloads are where both the
	// static model and smooth feature interpolation break down. Unless a
	// comparably divergent neighbor vouches for the verdict, cap the
	// confidence so the caller measures instead.
	if div := divergenceSignal(q.Vector); div >= divergenceGuard {
		vouched := false
		for _, n := range neighbors {
			if divergenceSignal(n.rec.Vector) >= divergenceGuard &&
				n.dist <= p.cfg.Tau*2 && n.rec.BestShapes()[best] {
				vouched = true
				break
			}
		}
		if !vouched && pr.Confidence > guardCap {
			pr.Confidence = guardCap
			pr.Note = fmt.Sprintf("divergence %.2f ≥ %.2f with no divergence-similar neighbor vouching for %q",
				div, divergenceGuard, best)
		}
	}
	return pr
}

// scored pairs a record with its query distance.
type scored struct {
	rec    *Record
	dist   float64
	weight float64
}

// nearest returns the k nearest records on the query device, nearest
// first, with exp(-d/τ) weights.
func (p *Predictor) nearest(q Query) []scored {
	recs := p.store.Neighborhood(q.Device)
	out := make([]scored, 0, len(recs))
	for _, r := range recs {
		if len(r.Vector) != len(q.Vector) || q.Exclude[r.Label] || q.ExcludeHashes[r.Hash] {
			continue
		}
		d := Distance(q.Vector, r.Vector)
		out = append(out, scored{rec: r, dist: d, weight: math.Exp(-d / p.cfg.Tau)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].dist < out[j].dist })
	if len(out) > p.cfg.K {
		out = out[:p.cfg.K]
	}
	return out
}

// divergenceSignal reads the divergence coordinates out of a normalized
// vector: the larger of branch divergence and instruction-spread CV.
func divergenceSignal(vec []float64) float64 {
	bd, cv := dimValue(vec, "branch_divergence"), dimValue(vec, "item_instr_cv")
	return math.Max(bd, cv)
}

var dimIndex = func() map[string]int {
	m := make(map[string]int, len(dims))
	for i, d := range dims {
		m[d.Name] = i
	}
	return m
}()

func dimValue(vec []float64, name string) float64 {
	i, ok := dimIndex[name]
	if !ok || i >= len(vec) {
		return 0
	}
	return vec[i]
}
