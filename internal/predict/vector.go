// Package predict turns the repository's measured auto-tuning history
// into answers: a persistent feature→outcome store (layered on
// kcache.DiskStore) keyed by AIWC feature-vector hash and device, and a
// distance-weighted k-nearest-neighbor predictor over normalized feature
// vectors, blended with the static profitability model as a prior. Given
// one cheap characterization run — or none, on an exact store hit — it
// answers the autotuner's question ("Grover or not, and which plan?")
// with a predicted best plan and a calibrated confidence, so the serving
// layer only falls back to measurement when the prediction is shaky.
//
// The design follows Chilukuri & Milthorpe (PAPERS.md):
// architecture-independent workload features predict memory-optimization
// benefit across devices; and Han & Abdelrahman: a learned model replaces
// exhaustive local-memory autotuning. The features come from
// telemetry/aiwc, which is backend-invariant by construction, so a
// vector computed anywhere identifies the same workload everywhere.
package predict

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"grover/internal/kcache"
	"grover/internal/telemetry/aiwc"
)

// Dim is one normalized feature dimension: a name, a bounded value
// extractor, and the weight it carries in the distance metric.
type Dim struct {
	Name   string
	Weight float64
	f      func(*aiwc.Features) float64
}

// squash maps an unbounded non-negative rate into [0, 1).
func squash(x float64) float64 { return x / (x + 1) }

// ratio returns a/b, 0 when b is 0.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// dims is the fixed normalized feature basis. Every dimension is in
// [0, 1] so the weighted Euclidean distance is scale-free: two kernels
// with the same access *structure* at different dataset sizes sit at
// distance ~0. The divergence dimensions carry double weight — they are
// the static model's documented blind spot (data-dependent early exits),
// so the neighborhood must separate along them.
var dims = []Dim{
	{"local_share", 2.0, func(f *aiwc.Features) float64 {
		return ratio(float64(f.LocalLoads+f.LocalStores), float64(accesses(f)))
	}},
	{"local_load_ratio", 1.0, func(f *aiwc.Features) float64 {
		return ratio(float64(f.LocalLoads), float64(f.LocalLoads+f.LocalStores))
	}},
	{"store_share", 1.0, func(f *aiwc.Features) float64 {
		return ratio(float64(f.GlobalStores+f.LocalStores+f.PrivateStores), float64(accesses(f)))
	}},
	{"mem_intensity", 1.0, func(f *aiwc.Features) float64 {
		return ratio(float64(accesses(f)), float64(f.Instructions))
	}},
	{"global_reuse", 1.5, func(f *aiwc.Features) float64 {
		ga := f.GlobalLoads + f.GlobalStores
		if ga == 0 {
			return 0
		}
		return 1 - ratio(float64(f.UniqueGlobalAddrs), float64(ga))
	}},
	{"local_reuse", 1.5, func(f *aiwc.Features) float64 {
		la := f.LocalLoads + f.LocalStores
		if la == 0 {
			return 0
		}
		return 1 - ratio(float64(f.UniqueLocalAddrs), float64(la))
	}},
	{"global_entropy", 1.0, func(f *aiwc.Features) float64 {
		return normEntropy(f.GlobalEntropy, f.UniqueGlobalAddrs)
	}},
	{"local_entropy", 1.0, func(f *aiwc.Features) float64 {
		return normEntropy(f.LocalEntropy, f.UniqueLocalAddrs)
	}},
	{"barrier_rate", 1.0, func(f *aiwc.Features) float64 {
		// Barriers each work-item observes per retired instruction,
		// scaled so one barrier per ~50 instructions reads as ~0.5.
		return squash(50 * ratio(f.BarriersPerGroup, f.MeanItemInstrs))
	}},
	{"branch_divergence", 2.0, func(f *aiwc.Features) float64 {
		return f.BranchDivergence
	}},
	{"item_instr_cv", 2.0, func(f *aiwc.Features) float64 {
		return squash(5 * f.ItemInstrCV)
	}},
	{"bytes_per_access", 0.5, func(f *aiwc.Features) float64 {
		b := ratio(float64(f.LoadBytes+f.StoreBytes), float64(accesses(f)))
		return math.Min(1, b/16)
	}},
	{"private_share", 0.5, func(f *aiwc.Features) float64 {
		return ratio(float64(f.PrivateLoads+f.PrivateStores), float64(accesses(f)))
	}},
}

func accesses(f *aiwc.Features) int64 {
	return f.GlobalLoads + f.GlobalStores + f.LocalLoads + f.LocalStores +
		f.PrivateLoads + f.PrivateStores
}

// normEntropy normalizes Shannon entropy by its maximum for the observed
// address count, yielding "how uniformly spread" in [0, 1].
func normEntropy(bits float64, unique int64) float64 {
	if unique < 2 {
		return 0
	}
	return math.Min(1, bits/math.Log2(float64(unique)))
}

// FeatureNames lists the normalized dimensions in vector order.
func FeatureNames() []string {
	out := make([]string, len(dims))
	for i, d := range dims {
		out[i] = d.Name
	}
	return out
}

// Vector computes the normalized feature vector for one characterization.
func Vector(f *aiwc.Features) []float64 {
	out := make([]float64, len(dims))
	for i, d := range dims {
		out[i] = d.f(f)
	}
	return out
}

// Distance is the weighted Euclidean distance between two normalized
// vectors, scaled by the total weight so it stays in [0, 1].
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		return 1
	}
	var sum, wsum float64
	for i, d := range dims {
		if i >= len(a) {
			break
		}
		diff := a[i] - b[i]
		sum += d.Weight * diff * diff
		wsum += d.Weight
	}
	if wsum == 0 {
		return 1
	}
	return math.Sqrt(sum / wsum)
}

// Hash derives the feature-store identity of a characterization: a
// content address over every raw dynamic count, excluding the kernel's
// name (two identically-behaving kernels are the same workload). Feature
// vectors are backend- and worker-count-invariant, so the hash is too.
func Hash(f *aiwc.Features) string {
	fields := []string{
		"aiwc-v1",
		fmt.Sprintf("%d/%d", f.Groups, f.WorkItems),
		fmt.Sprintf("%d", f.Instructions),
		fmt.Sprintf("%d/%d/%d/%d/%d/%d", f.GlobalLoads, f.GlobalStores,
			f.LocalLoads, f.LocalStores, f.PrivateLoads, f.PrivateStores),
		fmt.Sprintf("%d/%d", f.LoadBytes, f.StoreBytes),
		fmt.Sprintf("%d/%d", f.UniqueGlobalAddrs, f.UniqueLocalAddrs),
		fmt.Sprintf("%.12g/%.12g", f.GlobalEntropy, f.LocalEntropy),
		fmt.Sprintf("%d/%d", f.Barriers, f.DivergentGroups),
		fmt.Sprintf("%d/%d/%.12g", f.MinItemInstrs, f.MaxItemInstrs, f.ItemInstrCV),
	}
	return kcache.Key(fields...)
}

var planOpts = regexp.MustCompile(`\([^)]*\)`)

// PlanShape reduces a canonical plan string to its rule sequence,
// dropping per-step options ("grover(cands=As+Bs),hoist-addr" →
// "grover,hoist-addr"). Options are kernel-specific (candidate names,
// tile sizes), so outcome transfer between kernels happens at shape
// granularity.
func PlanShape(plan string) string {
	s := planOpts.ReplaceAllString(plan, "")
	return strings.TrimSpace(s)
}
