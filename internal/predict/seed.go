package predict

import (
	"encoding/json"
	"fmt"
	"os"

	"grover/internal/telemetry/aiwc"
)

// benchApps is the slice of BENCH_characterize.json this package needs:
// one base feature vector per app.
type benchApps struct {
	Apps []struct {
		App    string         `json:"app"`
		Kernel string         `json:"kernel"`
		Base   *aiwc.Features `json:"base"`
	} `json:"apps"`
}

// benchCases is the shared shape of BENCH_rewrite.json and
// BENCH_profit.json: measured plan sweeps per app × device.
type benchCases struct {
	Cases []struct {
		App    string  `json:"app"`
		Device string  `json:"device"`
		Best   string  `json:"best"`
		BaseMS float64 `json:"base_ms"`
		Plans  []struct {
			Plan    string  `json:"plan"`
			MS      float64 `json:"ms"`
			Applied bool    `json:"applied"`
		} `json:"plans"`
	} `json:"cases"`
}

// SeedFromBench populates the store from committed benchmark sweeps: the
// characterize file supplies each app's feature vector, and each sweep
// file (BENCH_rewrite.json, BENCH_profit.json) supplies measured plan
// outcomes per app × device. Apps without a characterization (or cases
// already seeded by an earlier file) are skipped. Returns the number of
// records written.
func SeedFromBench(store *Store, characterizePath string, sweepPaths ...string) (int, error) {
	charRaw, err := os.ReadFile(characterizePath)
	if err != nil {
		return 0, err
	}
	var apps benchApps
	if err := json.Unmarshal(charRaw, &apps); err != nil {
		return 0, fmt.Errorf("predict: %s: %v", characterizePath, err)
	}
	features := map[string]*aiwc.Features{}
	kernels := map[string]string{}
	for _, a := range apps.Apps {
		if a.Base != nil {
			features[a.App] = a.Base
			kernels[a.App] = a.Kernel
		}
	}

	n := 0
	seeded := map[string]bool{}
	for _, path := range sweepPaths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return n, err
		}
		var sweep benchCases
		if err := json.Unmarshal(raw, &sweep); err != nil {
			return n, fmt.Errorf("predict: %s: %v", path, err)
		}
		for _, c := range sweep.Cases {
			f := features[c.App]
			if f == nil {
				continue
			}
			key := c.App + "/" + c.Device
			if seeded[key] {
				continue
			}
			seeded[key] = true
			rec := &Record{
				Hash:     Hash(f),
				Device:   c.Device,
				Label:    c.App,
				Kernel:   kernels[c.App],
				Vector:   Vector(f),
				BaseMS:   c.BaseMS,
				Best:     c.Best,
				Source:   "seed",
				Features: f,
			}
			for _, p := range c.Plans {
				rec.Plans = append(rec.Plans, PlanOutcome{
					Plan: p.Plan, Shape: PlanShape(p.Plan), MS: p.MS, Applied: p.Applied,
				})
			}
			if err := store.Put(rec); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}
