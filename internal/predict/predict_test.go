package predict

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"grover/internal/kcache"
	"grover/internal/telemetry/aiwc"
)

// synthFeatures builds a plausible feature vector: a tiled kernel with
// heavy local reuse, or (divergent=true) an early-exit search kernel.
func synthFeatures(kernel string, localShare, divergence float64) *aiwc.Features {
	const accesses = 100000
	local := int64(localShare * accesses)
	global := int64(accesses) - local
	f := &aiwc.Features{
		Kernel:            kernel,
		Groups:            64,
		WorkItems:         4096,
		Instructions:      400000,
		GlobalLoads:       global * 3 / 4,
		GlobalStores:      global / 4,
		LocalLoads:        local * 7 / 8,
		LocalStores:       local / 8,
		PrivateLoads:      50000,
		PrivateStores:     20000,
		LoadBytes:         800000,
		StoreBytes:        200000,
		UniqueGlobalAddrs: global / 2,
		UniqueLocalAddrs:  256,
		GlobalEntropy:     14,
		LocalEntropy:      7,
		Barriers:          128,
		BarriersPerGroup:  2,
		BranchDivergence:  divergence,
		DivergentGroups:   int64(divergence * 64),
		MinItemInstrs:     90,
		MaxItemInstrs:     110,
		MeanItemInstrs:    100,
		ItemInstrCV:       divergence / 10,
	}
	if local == 0 {
		// No local memory means no staging barriers and no local address
		// stream — the structural signature of a Grover-rewritten (or
		// never-staged) kernel.
		f.UniqueLocalAddrs = 0
		f.LocalEntropy = 0
		f.Barriers = 0
		f.BarriersPerGroup = 0
	}
	return f
}

func record(label, device string, f *aiwc.Features, baseMS float64, planMS map[string]float64) *Record {
	rec := &Record{
		Hash: Hash(f), Device: device, Label: label, Kernel: f.Kernel,
		Features: f, Vector: Vector(f), BaseMS: baseMS, Source: "seed",
	}
	best, bestMS := "base", baseMS
	rec.Plans = append(rec.Plans, PlanOutcome{Plan: "base", Shape: "base", MS: baseMS, Applied: true})
	for plan, ms := range planMS {
		rec.Plans = append(rec.Plans, PlanOutcome{Plan: plan, Shape: PlanShape(plan), MS: ms, Applied: true})
		if ms < bestMS {
			best, bestMS = plan, ms
		}
	}
	rec.Best = best
	rec.BestShape = PlanShape(best)
	return rec
}

func TestVectorProperties(t *testing.T) {
	f := synthFeatures("k", 0.3, 0.2)
	v := Vector(f)
	if len(v) != len(FeatureNames()) {
		t.Fatalf("vector has %d dims, names %d", len(v), len(FeatureNames()))
	}
	for i, x := range v {
		if x < 0 || x > 1 || math.IsNaN(x) {
			t.Errorf("dim %s = %v out of [0,1]", FeatureNames()[i], x)
		}
	}
	if d := Distance(v, v); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// The hash identifies the workload, not the kernel name.
	g := synthFeatures("renamed", 0.3, 0.2)
	if Hash(f) != Hash(g) {
		t.Error("hash depends on kernel name")
	}
	h := synthFeatures("k", 0.6, 0.2)
	if Hash(f) == Hash(h) {
		t.Error("distinct workloads collide")
	}
	if d := Distance(v, Vector(h)); d <= 0 {
		t.Errorf("distance between distinct workloads = %v", d)
	}
}

func TestPlanShape(t *testing.T) {
	cases := map[string]string{
		"base":                           "base",
		"grover(cands=As+Bs),hoist-addr": "grover,hoist-addr",
		"stage-local(ls=64),hoist-addr":  "stage-local,hoist-addr",
		"grover,opt(passes=cse+dce)":     "grover,opt",
	}
	for in, want := range cases {
		if got := PlanShape(in); got != want {
			t.Errorf("PlanShape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := synthFeatures("mm", 0.4, 0)
	rec := record("MM", "Fermi", f, 2.0, map[string]float64{"grover(cands=As)": 1.5})
	if err := s.Put(rec, "exactkey123"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Lookup(Hash(f), "Fermi")
	if !ok {
		t.Fatal("record lost across restart")
	}
	if got.Label != "MM" || got.Best != "grover(cands=As)" || got.BestShape != "grover" {
		t.Errorf("reopened record = %+v", got)
	}
	if len(got.Vector) != len(FeatureNames()) {
		t.Errorf("vector not persisted: %d dims", len(got.Vector))
	}
	if ali, ok := s2.LookupAlias("exactkey123"); !ok || ali.Label != "MM" {
		t.Errorf("alias lost across restart: %v %v", ali, ok)
	}
	if _, ok := s2.LookupAlias("nope"); ok {
		t.Error("unknown alias resolved")
	}
	if devs := s2.Devices(); len(devs) != 1 || devs[0] != "Fermi" {
		t.Errorf("Devices = %v", devs)
	}
}

func TestStoreVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	ds, err := kcache.OpenDiskStore(path, StoreVersion+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds.Put("rec/x/y", map[string]int{"v": 1})
	ds.Close()
	if _, err := OpenStore(path, 0); !errors.Is(err, kcache.ErrVersionMismatch) {
		t.Fatalf("OpenStore on future-version file = %v, want ErrVersionMismatch", err)
	}
}

func TestStoreEvictionDropsIndexes(t *testing.T) {
	s, err := OpenStore("", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var feats []*aiwc.Features
	for i := 0; i < 3; i++ {
		f := synthFeatures("k", 0.1+0.2*float64(i), 0)
		feats = append(feats, f)
		if err := s.Put(record(fmt.Sprintf("app%d", i), "SNB", f, 1, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after bound-2 eviction", s.Len())
	}
	if _, ok := s.Lookup(Hash(feats[0]), "SNB"); ok {
		t.Error("evicted record still resolvable by hash")
	}
	if n := len(s.Neighborhood("SNB")); n != 2 {
		t.Errorf("neighborhood holds %d records, want 2", n)
	}
	if s.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Stats().Evictions)
	}
}

func TestStoreConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				f := synthFeatures("k", float64(w)/10, float64(i%4)/4)
				rec := record(fmt.Sprintf("w%d", w), "Kepler", f, 1, map[string]float64{"grover": 0.8})
				if err := s.Put(rec, fmt.Sprintf("alias-w%d-%d", w, i)); err != nil {
					t.Error(err)
					return
				}
				s.Lookup(rec.Hash, "Kepler")
				s.LookupAlias(fmt.Sprintf("alias-w%d-%d", w, i))
				s.Neighborhood("Kepler")
				s.Len()
				s.Stats()
			}
		}(w)
	}
	wg.Wait()
}

func TestPredictExactHit(t *testing.T) {
	s, _ := OpenStore("", 0)
	defer s.Close()
	f := synthFeatures("mm", 0.4, 0)
	s.Put(record("MM", "Fermi", f, 2.0, map[string]float64{"grover(cands=As)": 1.0}))

	p := NewPredictor(s, Config{})
	pr := p.Predict(Query{Features: f, Device: "Fermi", Shapes: []string{"grover(cands=As)"}})
	if !pr.Exact || pr.Confidence != 1 {
		t.Fatalf("exact hit: exact=%v confidence=%v", pr.Exact, pr.Confidence)
	}
	if pr.Verdict != "grover" || pr.Plan != "grover(cands=As)" {
		t.Errorf("verdict %q plan %q", pr.Verdict, pr.Plan)
	}
	if math.Abs(pr.Ratio-0.5) > 1e-9 {
		t.Errorf("ratio = %v, want 0.5", pr.Ratio)
	}
	// Same workload, different device: no exact hit there.
	pr2 := p.Predict(Query{Features: f, Device: "SNB"})
	if pr2.Exact {
		t.Error("exact hit leaked across devices")
	}
	if pr2.Confidence != 0 || pr2.Note == "" {
		t.Errorf("empty-neighborhood prediction: confidence=%v note=%q", pr2.Confidence, pr2.Note)
	}
}

func TestPredictKNNTransfer(t *testing.T) {
	s, _ := OpenStore("", 0)
	defer s.Close()
	// A family of similar low-divergence tiled kernels where dropping
	// local memory loses, and one where it wins, on the same device.
	for i, share := range []float64{0.38, 0.40, 0.42} {
		f := synthFeatures(fmt.Sprintf("mm%d", i), share, 0)
		s.Put(record(fmt.Sprintf("MM%d", i), "Fermi", f, 2.0,
			map[string]float64{"grover(cands=X)": 3.0, "stage-local(ls=64)": 2.0}))
	}
	fWin := synthFeatures("ss", 0, 0.05)
	s.Put(record("WIN", "Fermi", fWin, 2.0, map[string]float64{"grover(cands=Y)": 1.0}))

	p := NewPredictor(s, Config{})

	// A new kernel near the MM family must predict "base" confidently.
	q := synthFeatures("new-mm", 0.41, 0)
	pr := p.Predict(Query{Features: q, Device: "Fermi",
		Shapes: []string{"grover(cands=Z)", "stage-local(ls=128)"}})
	if pr.Exact {
		t.Fatal("unexpected exact hit")
	}
	if pr.Verdict != "base" {
		t.Errorf("verdict = %q, want base (ratios %v)", pr.Verdict, pr.Ratios)
	}
	if pr.Confidence < DefaultMinConfidence {
		t.Errorf("confidence = %v, want >= %v for a tight unanimous neighborhood",
			pr.Confidence, DefaultMinConfidence)
	}
	if len(pr.Neighbors) == 0 || pr.Neighbors[0].Label != "MM1" {
		t.Errorf("neighbors = %+v, want MM1 nearest", pr.Neighbors)
	}

	// A new kernel near WIN must predict grover with ratio < 1.
	// Slightly different divergence so this is a near-neighbor of WIN,
	// not a hash-identical exact hit.
	q2 := synthFeatures("new-ss", 0, 0.04)
	pr2 := p.Predict(Query{Features: q2, Device: "Fermi", Shapes: []string{"grover(cands=W)"}})
	if pr2.Verdict != "grover" || pr2.Ratio >= 1 {
		t.Errorf("verdict %q ratio %v, want grover < 1 (ratios %v)", pr2.Verdict, pr2.Ratio, pr2.Ratios)
	}

	// Exclude drops labels from the neighborhood (LOOCV support).
	pr3 := p.Predict(Query{Features: q2, Device: "Fermi", Shapes: []string{"grover(cands=W)"},
		Exclude: map[string]bool{"WIN": true}})
	for _, n := range pr3.Neighbors {
		if n.Label == "WIN" {
			t.Error("excluded label still in neighborhood")
		}
	}
}

func TestPredictPriorBlend(t *testing.T) {
	s, _ := OpenStore("", 0)
	defer s.Close()
	f := synthFeatures("a", 0.4, 0)
	s.Put(record("A", "SNB", f, 2.0, map[string]float64{"grover": 1.6})) // measured ratio 0.8

	p := NewPredictor(s, Config{PriorWeight: 0.5})
	q := synthFeatures("b", 0.39, 0)
	pr := p.Predict(Query{Features: q, Device: "SNB", Shapes: []string{"grover"},
		Prior: map[string]float64{"grover": 1.2}})
	want := 0.5*0.8 + 0.5*1.2
	if math.Abs(pr.Ratios["grover"]-want) > 1e-9 {
		t.Errorf("blended ratio = %v, want %v", pr.Ratios["grover"], want)
	}
	// A shape the neighborhood never measured falls back to the prior.
	pr2 := p.Predict(Query{Features: q, Device: "SNB", Shapes: []string{"hoist-addr"},
		Prior: map[string]float64{"hoist-addr": 0.7}})
	if math.Abs(pr2.Ratios["hoist-addr"]-0.7) > 1e-9 {
		t.Errorf("prior-only ratio = %v, want 0.7", pr2.Ratios["hoist-addr"])
	}
}

func TestPredictDivergenceGuard(t *testing.T) {
	s, _ := OpenStore("", 0)
	defer s.Close()
	// Neighborhood of low-divergence kernels only.
	for i, share := range []float64{0.3, 0.35, 0.4} {
		f := synthFeatures(fmt.Sprintf("k%d", i), share, 0)
		s.Put(record(fmt.Sprintf("K%d", i), "Tahiti", f, 2.0, map[string]float64{"grover": 1.0}))
	}
	p := NewPredictor(s, Config{})

	// A fully divergent early-exit workload: nobody similar has been
	// measured, so confidence must be capped below the default threshold.
	q := synthFeatures("search", 0.3, 1.0)
	pr := p.Predict(Query{Features: q, Device: "Tahiti", Shapes: []string{"grover"}})
	if pr.Confidence > guardCap {
		t.Errorf("divergent workload confidence = %v, want <= %v", pr.Confidence, guardCap)
	}
	if pr.Confidence >= DefaultMinConfidence {
		t.Errorf("divergent workload confidence %v not below fallback threshold %v",
			pr.Confidence, DefaultMinConfidence)
	}
	if pr.Note == "" {
		t.Error("capped prediction carries no note")
	}

	// Once a divergence-similar neighbor vouches for the verdict, the cap
	// lifts.
	fv := synthFeatures("search-twin", 0.3, 0.95)
	s.Put(record("TWIN", "Tahiti", fv, 2.0, map[string]float64{"grover": 1.0}))
	pr2 := p.Predict(Query{Features: q, Device: "Tahiti", Shapes: []string{"grover"}})
	if pr2.Confidence <= guardCap {
		t.Errorf("vouched divergent workload still capped: %v", pr2.Confidence)
	}
}

func TestSeedFromBench(t *testing.T) {
	s, _ := OpenStore("", 0)
	defer s.Close()
	n, err := SeedFromBench(s,
		filepath.Join("..", "..", "BENCH_characterize.json"),
		filepath.Join("..", "..", "BENCH_rewrite.json"),
		filepath.Join("..", "..", "BENCH_profit.json"))
	if err != nil {
		t.Fatal(err)
	}
	// 11 characterized apps × 6 devices, deduped across the two sweeps.
	if n != 66 {
		t.Errorf("seeded %d records, want 66", n)
	}
	// Behavioral twins collapse to one record per device: NVD-MT ≡ AMD-RG
	// and NVD-MM-A ≡ NVD-MM-B ≡ NVD-MM-AB have byte-identical dynamic
	// features (and, reassuringly, identical measured verdicts), leaving
	// 8 distinct workloads × 6 devices.
	if got := s.Len(); got != 48 {
		t.Errorf("store holds %d records, want 48", got)
	}
	devs := s.Devices()
	if len(devs) != 6 {
		t.Errorf("devices = %v, want 6", devs)
	}
	// Spot-check a known verdict: AMD-SS wins with grover on Fermi.
	for _, rec := range s.Neighborhood("Fermi") {
		if rec.Label == "AMD-SS" {
			if rec.BestShape != "grover" {
				t.Errorf("AMD-SS Fermi best shape = %q", rec.BestShape)
			}
			if r, ok := rec.ShapeRatio("grover"); !ok || r >= 1 {
				t.Errorf("AMD-SS Fermi grover ratio = %v, %v", r, ok)
			}
			if len(rec.Vector) != len(FeatureNames()) {
				t.Errorf("seeded vector has %d dims", len(rec.Vector))
			}
		}
	}
}
