package predict

import (
	"os"
	"testing"
)

// The PR-7 profitability-model validation recorded three prune misses —
// cases where the static top-k window dropped every measured-best plan:
// AMD-SS on Fermi and Kepler, and ROD-SC on Tahiti. Both kernels are
// data-dependent early-exit shapes (string search bails on mismatch,
// streamcluster's membership test skips most of its work), the static
// model's documented blind spot. The predictor cannot be expected to
// get these right from feature neighbors either — but it must KNOW it
// doesn't know: held out of the store, each of these cases must come
// back under the default confidence threshold so predict mode routes
// it to measured fallback instead of shipping a guess.

// pruneMisses are the (app, device) cases BENCH_profit.json records
// with prune_hit=false.
var pruneMisses = []struct {
	app    string
	device string
}{
	{"AMD-SS", "Fermi"},
	{"AMD-SS", "Kepler"},
	{"ROD-SC", "Tahiti"},
}

// seededStore builds a store from the committed benchmark sweeps,
// skipping the test when they are absent (fresh checkout without the
// BENCH files).
func seededStore(t *testing.T) *Store {
	t.Helper()
	const char = "../../BENCH_characterize.json"
	if _, err := os.Stat(char); err != nil {
		t.Skipf("committed sweeps missing: %v", err)
	}
	store, err := OpenStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if _, err := SeedFromBench(store, char,
		"../../BENCH_rewrite.json", "../../BENCH_profit.json"); err != nil {
		t.Fatal(err)
	}
	return store
}

// recordFor finds the seeded record for an app on a device.
func recordFor(t *testing.T, store *Store, app, device string) *Record {
	t.Helper()
	for _, r := range store.Neighborhood(device) {
		if r.Label == app {
			return r
		}
	}
	t.Fatalf("no seeded record for %s on %s", app, device)
	return nil
}

// TestPruneMissesFlaggedLowConfidence holds each recorded prune-miss
// case out of the store (by feature hash, so behavioral twins leave
// too) and checks the predictor refuses to answer it confidently.
func TestPruneMissesFlaggedLowConfidence(t *testing.T) {
	store := seededStore(t)
	pred := NewPredictor(store, Config{})
	for _, m := range pruneMisses {
		rec := recordFor(t, store, m.app, m.device)
		var shapes []string
		for _, p := range rec.Plans {
			shapes = append(shapes, p.Plan)
		}
		pr := pred.Predict(Query{
			Features:      rec.Features,
			Device:        m.device,
			Shapes:        shapes,
			ExcludeHashes: map[string]bool{rec.Hash: true},
		})
		if pr.Exact {
			t.Errorf("%s on %s: exclusion failed, predictor answered exactly", m.app, m.device)
		}
		if pr.Confidence >= DefaultMinConfidence {
			t.Errorf("%s on %s: confidence %.2f ≥ %.2f — an early-exit kernel the model misranked would be answered without measuring (verdict %q, best %v)",
				m.app, m.device, pr.Confidence, DefaultMinConfidence, pr.Verdict, rec.BestShapes())
		}
	}
}

// TestPruneMissesDivergent double-checks the fixtures stay what they
// claim to be: both kernels characterize as highly divergent (the
// early-exit signature the confidence guard keys on). If a future
// characterization change flattens this signal, this test fails before
// the guard silently stops covering them.
func TestPruneMissesDivergent(t *testing.T) {
	store := seededStore(t)
	for _, app := range []string{"AMD-SS", "ROD-SC"} {
		rec := recordFor(t, store, app, "Fermi")
		if div := divergenceSignal(rec.Vector); div < divergenceGuard {
			t.Errorf("%s divergence signal %.2f below the %.2f guard threshold — regression fixture no longer exercises the early-exit blind spot",
				app, div, divergenceGuard)
		}
	}
}
