package analysis

import (
	"grover/internal/clc"
	"grover/internal/ir"
)

// Uniformity classifies every value as work-group-uniform or divergent
// and every block as control-uniform or control-divergent. Divergence is
// seeded at the work-item identity queries (get_local_id, get_global_id)
// and propagated to a fixpoint that interleaves the value and control
// dimensions: a branch on a divergent condition makes its influence
// region control-divergent, a store executed in a control-divergent
// block makes later loads of that private variable divergent, and so on.
//
// Loads from shared memory (global parameters and __local buffers) take
// the divergence of their address: a load at a uniform address names one
// shared cell, so every work-item observes the same value regardless of
// which work-item wrote it. Loads from private allocas instead take the
// divergence of their reaching stores.
type Uniformity struct {
	cfg    *CFG
	rd     *ReachingDefs
	divVal map[ir.Value]bool
	divBlk []bool
}

// ComputeUniformity runs the fixpoint over cfg's function.
func ComputeUniformity(cfg *CFG, rd *ReachingDefs) *Uniformity {
	u := &Uniformity{
		cfg:    cfg,
		rd:     rd,
		divVal: map[ir.Value]bool{},
		divBlk: make([]bool, len(cfg.Blocks)),
	}
	callees := map[*ir.Function]bool{}
	for changed := true; changed; {
		changed = false
		for bi, b := range cfg.Blocks {
			for _, in := range b.Instrs {
				if !in.Producing() || u.divVal[in] {
					continue
				}
				if u.instrDivergent(in, callees) {
					u.divVal[in] = true
					changed = true
				}
			}
			term := b.Instrs[len(b.Instrs)-1]
			if term.Op == ir.OpCondBr && u.Divergent(term.Args[0]) {
				for _, r := range cfg.DivergenceRegion(bi) {
					if !u.divBlk[r] {
						u.divBlk[r] = true
						changed = true
					}
				}
			}
		}
	}
	return u
}

// Divergent reports whether v may differ between work-items of one
// work-group.
func (u *Uniformity) Divergent(v ir.Value) bool {
	switch v.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.Param:
		return false
	}
	return u.divVal[v]
}

// DivergentBlock reports whether b executes under divergent control
// flow, i.e. some work-items of the group may not reach it (or may
// iterate it a different number of times).
func (u *Uniformity) DivergentBlock(b *ir.Block) bool {
	i, ok := u.cfg.Index[b]
	return ok && u.divBlk[i]
}

func (u *Uniformity) instrDivergent(in *ir.Instr, callees map[*ir.Function]bool) bool {
	switch in.Op {
	case ir.OpWorkItem:
		return in.Func == "get_local_id" || in.Func == "get_global_id"
	case ir.OpAlloca:
		return false
	case ir.OpLoad:
		if u.Divergent(in.Args[0]) {
			return true
		}
		if base := rootAlloca(in.Args[0]); base != nil && base.Space == clc.ASPrivate {
			for _, st := range u.rd.ReachingStores(in, base) {
				if u.Divergent(st.Args[1]) || u.Divergent(st.Args[0]) ||
					u.DivergentBlock(st.Block) {
					return true
				}
			}
		}
		return false
	case ir.OpCall:
		if calleeReadsIdentity(in.Callee, callees) {
			return true
		}
	}
	for _, a := range in.Args {
		if u.Divergent(a) {
			return true
		}
	}
	return false
}

// calleeReadsIdentity reports whether fn (transitively) queries a
// work-item identity, making any call result potentially divergent even
// with uniform arguments.
func calleeReadsIdentity(fn *ir.Function, memo map[*ir.Function]bool) bool {
	if fn == nil {
		return true
	}
	if v, ok := memo[fn]; ok {
		return v
	}
	memo[fn] = false // break recursion cycles
	res := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpWorkItem:
				if in.Func == "get_local_id" || in.Func == "get_global_id" {
					res = true
				}
			case ir.OpCall:
				if calleeReadsIdentity(in.Callee, memo) {
					res = true
				}
			}
		}
	}
	memo[fn] = res
	return res
}
