package analysis

import (
	"math/big"

	"grover/internal/analysis/intervals"
	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// access is one load or store of a __local buffer.
type access struct {
	instr *ir.Instr
	// chain is the OpIndex path from the alloca, outermost first.
	chain []*ir.Instr
	store bool
	// aff is the access's byte offset from the buffer base as an affine
	// form, nil when some index is not affine.
	aff *linsolve.Affine
}

// localBuffer groups every collected access to one __local alloca.
type localBuffer struct {
	alloca   *ir.Instr
	accesses []*access
}

// collectLocalBuffers gathers all loads and stores rooted at __local
// allocas, in block order. Unlike the Grover candidate matcher it is
// total: escaping uses don't abort collection, they are simply not
// accesses (the legality detector reports escapes separately).
func collectLocalBuffers(fn *ir.Function, tb *exprtree.Builder, reg *exprtree.Registry) []*localBuffer {
	byAlloca := map[*ir.Instr]*localBuffer{}
	var order []*localBuffer
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			base := rootAlloca(in.Args[0])
			if base == nil || base.Space != clc.ASLocal {
				continue
			}
			buf := byAlloca[base]
			if buf == nil {
				buf = &localBuffer{alloca: base}
				byAlloca[base] = buf
				order = append(order, buf)
			}
			acc := &access{instr: in, chain: indexChain(in.Args[0]), store: in.Op == ir.OpStore}
			acc.aff = accessOffset(tb, acc, reg)
			buf.accesses = append(buf.accesses, acc)
		}
	}
	return order
}

// indexChain returns the OpIndex instructions between a pointer value and
// its root alloca, outermost first.
func indexChain(v ir.Value) []*ir.Instr {
	var rev []*ir.Instr
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			break
		}
		if in.Op == ir.OpIndex {
			rev = append(rev, in)
			v = in.Args[0]
			continue
		}
		if in.Op == ir.OpConvert {
			v = in.Args[0]
			continue
		}
		break
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// accessOffset computes the byte offset of the access from the buffer
// base, Σ idx_k · step_k over the index chain, or nil when an index is
// not an affine function of the registry's terms.
func accessOffset(tb *exprtree.Builder, acc *access, reg *exprtree.Registry) *linsolve.Affine {
	total := linsolve.NewAffine()
	for _, idx := range acc.chain {
		step := int64(ir.PointeeSize(idx.Args[0].Type()))
		node, err := tb.Build(idx.Args[1])
		if err != nil {
			return nil
		}
		aff, err := exprtree.ExtractAffine(node, reg)
		if err != nil {
			return nil
		}
		total.AddScaled(aff, big.NewRat(step, 1))
	}
	return total
}

// accessSize is the number of bytes the access reads or writes.
func (a *access) accessSize() int {
	if a.store {
		return a.instr.Args[1].Type().Size()
	}
	return a.instr.Typ.Size()
}

// bufferSize is the allocation size of a __local alloca in bytes.
func bufferSize(alloca *ir.Instr) int {
	pt, ok := alloca.Typ.(*clc.PointerType)
	if !ok {
		return 0
	}
	return pt.Elem.Size()
}

// ratInt64 extracts an int64 from an integral rational, reporting
// whether the extraction is exact.
func ratInt64(r *big.Rat) (int64, bool) { return intervals.RatInt64(r) }

// workItemCoeffs folds the affine's per-work-item coefficients by
// dimension: get_global_id(d) varies with the work-item exactly like
// get_local_id(d) inside one work-group, so both fold into dimension d.
// ok is false when a coefficient is not an integer.
func workItemCoeffs(aff *linsolve.Affine) (c [3]int64, ok bool) {
	for d := 0; d < 3; d++ {
		sum := new(big.Rat)
		sum.Add(sum, aff.Coeff(exprtree.LocalIDKey(d)))
		sum.Add(sum, aff.Coeff(exprtree.WorkItemKey("get_global_id", d)))
		v, exact := ratInt64(sum)
		if !exact {
			return c, false
		}
		c[d] = v
	}
	return c, true
}

// isWorkItemDimKey reports whether key is a get_local_id or
// get_global_id term (a per-work-item-varying dimension).
func isWorkItemDimKey(key string) bool {
	for d := 0; d < 3; d++ {
		if key == exprtree.LocalIDKey(d) || key == exprtree.WorkItemKey("get_global_id", d) {
			return true
		}
	}
	return false
}

// stableTerm reports whether the registry term named key has the same
// value every time one work-item evaluates it during a kernel run; see
// intervals.StableTerm.
func stableTerm(reg *exprtree.Registry, key string) bool {
	return intervals.StableTerm(reg, key)
}
