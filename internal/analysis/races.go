package analysis

import (
	"fmt"
	"math/big"

	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// checkRaces reports pairs of local-memory accesses that can touch the
// same cell from different work-items with no intervening local-fence
// barrier, plus stores whose index provably collides across work-items
// while storing divergent values.
//
// The detector is path-based: from every access it scans forward through
// the CFG, stopping at barriers that fence local memory, and records
// which other accesses of the same buffer it can reach barrier-free. A
// reachable (store, load) or (store, store) pair is a candidate race; it
// is excused when the two byte offsets are provably disjoint across
// work-items (bounded linear feasibility over the work-group extents),
// or when the offsets are identical, identity-stable, and injective in
// the work-item id — then a shared cell implies a shared work-item and
// the accesses are ordered by program order within it.
func checkRaces(cfg *CFG, uni *Uniformity, bufs []*localBuffer, reg *exprtree.Registry, wg [3]int) []Finding {
	var out []Finding
	for _, buf := range bufs {
		out = append(out, checkBufferRaces(cfg, uni, buf, reg, wg)...)
	}
	return out
}

// barrierCuts reports whether in is a barrier that fences local memory
// (flags bit CLK_LOCAL_MEM_FENCE=1; a missing operand defaults to the
// local fence, an unknown non-constant operand is assumed to fence).
func barrierCuts(in *ir.Instr) bool {
	if in.Op != ir.OpBarrier {
		return false
	}
	if len(in.Args) == 1 {
		if c, ok := in.Args[0].(*ir.ConstInt); ok {
			return c.Val&1 != 0
		}
	}
	return true
}

// barrierFreeReach returns, per access, the accesses of the same buffer
// reachable from it along some CFG path with no local-fence barrier.
func barrierFreeReach(cfg *CFG, buf *localBuffer) map[*access][]*access {
	accAt := map[*ir.Instr]*access{}
	for _, a := range buf.accesses {
		accAt[a.instr] = a
	}
	pos := map[*ir.Instr]int{}
	for _, b := range cfg.Blocks {
		for i, in := range b.Instrs {
			pos[in] = i
		}
	}
	reach := map[*access][]*access{}
	for _, a := range buf.accesses {
		seen := map[*access]bool{}
		visited := make([]bool, len(cfg.Blocks))
		// scan walks one block from instruction index `from`; it returns
		// false when a barrier cuts the path before the block's end.
		scan := func(b *ir.Block, from int) bool {
			for _, in := range b.Instrs[from:] {
				if other, ok := accAt[in]; ok && !seen[other] {
					seen[other] = true
					reach[a] = append(reach[a], other)
				}
				if barrierCuts(in) {
					return false
				}
			}
			return true
		}
		var stack []int
		if scan(a.instr.Block, pos[a.instr]+1) {
			stack = append(stack, cfg.Succ[cfg.Index[a.instr.Block]]...)
		}
		for len(stack) > 0 {
			bi := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[bi] {
				continue
			}
			visited[bi] = true
			if scan(cfg.Blocks[bi], 0) {
				stack = append(stack, cfg.Succ[bi]...)
			}
		}
	}
	return reach
}

func checkBufferRaces(cfg *CFG, uni *Uniformity, buf *localBuffer, reg *exprtree.Registry, wg [3]int) []Finding {
	var out []Finding
	reach := barrierFreeReach(cfg, buf)
	type pairKey struct{ a, b *ir.Instr }
	reported := map[pairKey]bool{}
	name := buf.alloca.VarName
	for _, x := range buf.accesses {
		for _, y := range reach[x] {
			if !x.store && !y.store {
				continue
			}
			if reported[pairKey{x.instr, y.instr}] || reported[pairKey{y.instr, x.instr}] {
				continue
			}
			if excusedPair(x, y, reg, wg) {
				continue
			}
			reported[pairKey{x.instr, y.instr}] = true
			anchor, other := x, y
			if !anchor.store {
				anchor, other = y, x
			}
			kind := "load"
			if other.store {
				kind = "store"
			}
			out = append(out, Finding{
				Detector: DetectorLocalRace,
				Severity: SeverityError,
				Kernel:   cfg.Fn.Name,
				Pos:      anchor.instr.Pos,
				Message: fmt.Sprintf("possible race on __local %s: store and %s at %s can touch the "+
					"same element from different work-items with no barrier(CLK_LOCAL_MEM_FENCE) on every path between them",
					name, kind, other.instr.Pos),
				Related: []clc.Pos{other.instr.Pos},
			})
		}
	}
	out = append(out, checkBroadcastStores(cfg, uni, buf, reg, wg)...)
	return out
}

// excusedPair decides that a barrier-free access pair cannot race: the
// byte offsets never collide across distinct work-items.
func excusedPair(x, y *access, reg *exprtree.Registry, wg [3]int) bool {
	if x.aff == nil || y.aff == nil {
		return false
	}
	if provablyDisjoint(x.aff, y.aff, reg, wg) {
		return true
	}
	// Identical, identity-stable, injective offsets: the two dynamic
	// accesses hit the same cell only when executed by the same
	// work-item, which orders them by program order.
	if !x.aff.Equal(y.aff) {
		return false
	}
	for _, key := range x.aff.Terms() {
		if !stableTerm(reg, key) {
			return false
		}
	}
	return injectiveInWorkItem(x.aff, wg)
}

// extent returns the work-group extent of dimension d, or 0 when
// unknown.
func extent(wg [3]int, d int) int64 {
	if d < 0 || d > 2 {
		return 0
	}
	return int64(wg[d])
}

// injectiveInWorkItem reports whether the byte offset maps distinct
// work-items of one group to distinct addresses. A single varying
// dimension with a nonzero coefficient is injective outright; several
// dimensions are injective when the coefficients form a positional
// system over the extents (each coefficient exceeds the total span of
// all smaller ones). Dimensions the offset ignores must have extent 1 —
// two work-items differing only there would collide; unknown extents of
// ignored dimensions are assumed 1 (a 1D launch), a documented
// imprecision when extents are not supplied.
func injectiveInWorkItem(aff *linsolve.Affine, wg [3]int) bool {
	c, ok := workItemCoeffs(aff)
	if !ok {
		return false
	}
	type dim struct{ coeff, span int64 }
	var varying []dim
	for d := 0; d < 3; d++ {
		l := extent(wg, d)
		if c[d] == 0 {
			if l > 1 {
				return false
			}
			continue
		}
		if l == 1 {
			continue // dimension cannot vary
		}
		varying = append(varying, dim{coeff: abs64(c[d]), span: l - 1})
	}
	if len(varying) <= 1 {
		return true
	}
	for _, v := range varying {
		if v.span < 0 { // unknown extent on a varying dimension
			return false
		}
	}
	// Sort ascending by coefficient; require a positional chain.
	for i := 1; i < len(varying); i++ {
		for j := i; j > 0 && varying[j].coeff < varying[j-1].coeff; j-- {
			varying[j], varying[j-1] = varying[j-1], varying[j]
		}
	}
	span := int64(0)
	for _, v := range varying {
		if v.coeff <= span {
			return false
		}
		span += v.coeff * v.span
	}
	return true
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// provablyDisjoint proves that offsets ax (by work-item l) and ay (by
// work-item l') never coincide, by showing the linear Diophantine system
// Σ cx_d·l_d − Σ cy_d·l'_d = Ky − Kx has no solution inside the
// work-group box. All non-work-item terms must cancel between the two
// offsets AND be identity-stable — an unstable term (a loop counter) has
// different values at the two dynamic accesses, so equal coefficients do
// not cancel. Every varying dimension needs a known extent.
func provablyDisjoint(ax, ay *linsolve.Affine, reg *exprtree.Registry, wg [3]int) bool {
	diffConst := new(big.Rat).Sub(ay.Const, ax.Const)
	target, ok := ratInt64(diffConst)
	if !ok {
		return false
	}
	for _, key := range append(append([]string{}, ax.Terms()...), ay.Terms()...) {
		if isWorkItemDimKey(key) {
			continue
		}
		if !stableTerm(reg, key) {
			return false
		}
		if new(big.Rat).Sub(ax.Coeff(key), ay.Coeff(key)).Sign() != 0 {
			return false
		}
	}
	cx, okx := workItemCoeffs(ax)
	cy, oky := workItemCoeffs(ay)
	if !okx || !oky {
		return false
	}
	var vars []varRange
	for d := 0; d < 3; d++ {
		l := extent(wg, d)
		for _, coeff := range [2]int64{cx[d], -cy[d]} {
			if coeff == 0 {
				continue
			}
			if l <= 0 {
				return false // varying dimension with unknown extent
			}
			vars = append(vars, varRange{coeff: coeff, lo: 0, hi: l - 1})
		}
	}
	has, proven := solveLinear(vars, target)
	return proven && !has
}

// varRange is one bounded integer variable of a linear equation.
type varRange struct {
	coeff  int64
	lo, hi int64
}

// solveLinear decides whether Σ coeff_i·v_i = target has an integer
// solution with each v_i in [lo_i, hi_i]. It enumerates candidate values
// level by level, pruning with the exact reachable range of the
// remaining variables; when the enumeration budget is exhausted it
// returns proven=false (the caller must then assume feasibility).
func solveLinear(vars []varRange, target int64) (hasSolution, proven bool) {
	// Sort descending by |coeff| so pruning bites early.
	sorted := append([]varRange{}, vars...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && abs64(sorted[j].coeff) > abs64(sorted[j-1].coeff); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// minReach/maxReach of the suffix starting at i.
	n := len(sorted)
	minReach := make([]int64, n+1)
	maxReach := make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		a := sorted[i].coeff * sorted[i].lo
		b := sorted[i].coeff * sorted[i].hi
		if a > b {
			a, b = b, a
		}
		minReach[i] = minReach[i+1] + a
		maxReach[i] = maxReach[i+1] + b
	}
	budget := 1 << 14
	var rec func(i int, rem int64) bool
	rec = func(i int, rem int64) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if i == n {
			return rem == 0
		}
		v := sorted[i]
		for val := v.lo; val <= v.hi; val++ {
			r := rem - v.coeff*val
			if r < minReach[i+1] || r > maxReach[i+1] {
				continue
			}
			if rec(i+1, r) {
				return true
			}
		}
		return false
	}
	if target < minReach[0] || target > maxReach[0] {
		return false, true
	}
	has := rec(0, target)
	return has, budget > 0 || has
}

// checkBroadcastStores flags stores whose address provably collides
// across work-items while the stored value is divergent: the colliding
// work-items write different data to the same cell with no ordering.
// Uniform-value collisions (a broadcast) are benign and skipped, as is
// everything when the work-group extents are unknown.
func checkBroadcastStores(cfg *CFG, uni *Uniformity, buf *localBuffer, reg *exprtree.Registry, wg [3]int) []Finding {
	if wg[0] <= 0 && wg[1] <= 0 && wg[2] <= 0 {
		return nil
	}
	var out []Finding
	for _, a := range buf.accesses {
		if !a.store || a.aff == nil {
			continue
		}
		if !uni.Divergent(a.instr.Args[1]) {
			continue
		}
		opaque := false
		for _, key := range a.aff.Terms() {
			if !isWorkItemDimKey(key) && stableTerm(reg, key) {
				continue // uniform offset component, same for all colliders
			}
			if !isWorkItemDimKey(key) {
				opaque = true
			}
		}
		if opaque {
			continue
		}
		if d, ok := provenCollision(a.aff, wg); ok {
			out = append(out, Finding{
				Detector: DetectorLocalRace,
				Severity: SeverityError,
				Kernel:   cfg.Fn.Name,
				Pos:      a.instr.Pos,
				Message: fmt.Sprintf("store to __local %s writes divergent values to the same element "+
					"from different work-items (index does not depend injectively on the work-item id; "+
					"work-items differing in dimension %d collide)", buf.alloca.VarName, d),
			})
		}
	}
	return out
}

// provenCollision exhibits two distinct work-items mapped to the same
// byte offset, returning a dimension along which they differ.
func provenCollision(aff *linsolve.Affine, wg [3]int) (int, bool) {
	c, ok := workItemCoeffs(aff)
	if !ok {
		return 0, false
	}
	// A dimension the index ignores collides immediately.
	for d := 0; d < 3; d++ {
		if c[d] == 0 && extent(wg, d) > 1 {
			return d, true
		}
	}
	// Two dimensions whose coefficients satisfy k·|c_d| == |c_e| within
	// the extents collide: move k steps along d, one step back along e.
	for d := 0; d < 3; d++ {
		for e := 0; e < 3; e++ {
			if d == e || c[d] == 0 || c[e] == 0 {
				continue
			}
			ld, le := extent(wg, d), extent(wg, e)
			if ld <= 1 || le <= 1 {
				continue
			}
			for k := int64(1); k < ld; k++ {
				if k*abs64(c[d]) == abs64(c[e]) {
					return d, true
				}
			}
		}
	}
	return 0, false
}
