package analysis

import (
	"fmt"

	"grover/internal/ir"
)

// checkBarrierDivergence reports every barrier that executes under
// divergent control flow. The OpenCL spec requires a barrier to be
// reached by either all work-items of a work-group or none; a barrier in
// the influence region of a divergent branch can deadlock or desync the
// group (undefined behaviour).
func checkBarrierDivergence(cfg *CFG, uni *Uniformity) []Finding {
	var out []Finding
	for _, b := range cfg.Blocks {
		if !uni.DivergentBlock(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op != ir.OpBarrier {
				continue
			}
			out = append(out, Finding{
				Detector: DetectorBarrierDivergence,
				Severity: SeverityError,
				Kernel:   cfg.Fn.Name,
				Pos:      in.Pos,
				Message: fmt.Sprintf("barrier inside divergent control flow: "+
					"work-items of a group may disagree on reaching it (undefined behaviour); "+
					"block %s is guarded by a condition that depends on the work-item id", b.Name),
			})
		}
	}
	return out
}
