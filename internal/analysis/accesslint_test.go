package analysis_test

import (
	"testing"

	"grover/internal/analysis"
	"grover/opencl"
)

// analyzeAccess runs the module analyzers with the opt-in access-pattern
// detectors enabled.
func analyzeAccess(t *testing.T, name, source string, wg [3]int) *analysis.Result {
	t.Helper()
	m, err := opencl.CompileModule(name, source, nil)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return analysis.AnalyzeModule(m, analysis.Options{WorkGroupSize: wg, AccessChecks: true})
}

const stridedGlobalSrc = `__kernel void aos(__global float* out, __global float* in) {
    int gid = get_global_id(0);
    out[gid] = in[gid*8];
}
`

func TestUncoalescedGlobalDetector(t *testing.T) {
	res := analyzeAccess(t, "aos.cl", stridedGlobalSrc, [3]int{64, 1, 1})
	fs := findingsFor(res, "uncoalesced-global")
	if len(fs) != 1 {
		t.Fatalf("uncoalesced-global findings = %d, want 1 (the in[gid*8] load):\n%+v", len(fs), res.Findings)
	}
	f := fs[0]
	if f.Severity != analysis.SeverityWarning {
		t.Errorf("severity = %s, want warning", f.Severity)
	}
	if f.Pos.Line != findLine(t, stridedGlobalSrc, "in[gid*8]") {
		t.Errorf("finding at line %d, want the strided load line", f.Pos.Line)
	}

	// Off by default: the same source with AccessChecks unset is clean.
	def := analyzeSource(t, "aos.cl", stridedGlobalSrc, [3]int{64, 1, 1})
	if n := len(findingsFor(def, "uncoalesced-global")); n != 0 {
		t.Errorf("detector fired without opt-in: %d findings", n)
	}
}

const coalescedGlobalSrc = `__kernel void soa(__global float* out, __global float* in) {
    int gid = get_global_id(0);
    out[gid] = in[gid];
}
`

func TestCoalescedGlobalIsClean(t *testing.T) {
	res := analyzeAccess(t, "soa.cl", coalescedGlobalSrc, [3]int{64, 1, 1})
	if fs := findingsFor(res, "uncoalesced-global"); len(fs) != 0 {
		t.Errorf("unit-stride access flagged: %+v", fs)
	}
}

const bankConflictSrc = `__kernel void bc(__global float* out, __global float* in) {
    __local float tile[2048];
    int lx = get_local_id(0);
    tile[lx*32] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tile[lx*32];
}
`

func TestBankConflictDetector(t *testing.T) {
	res := analyzeAccess(t, "bc.cl", bankConflictSrc, [3]int{64, 1, 1})
	fs := findingsFor(res, "local-bank-conflict")
	if len(fs) == 0 {
		t.Fatalf("no local-bank-conflict finding for 32-element stride:\n%+v", res.Findings)
	}
	for _, f := range fs {
		if f.Severity != analysis.SeverityWarning {
			t.Errorf("severity = %s, want warning", f.Severity)
		}
	}
}

const paddedTileSrc = `__kernel void tr(__global float* out, __global float* in, int w) {
    __local float tile[16][17];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    tile[ly][lx] = in[get_global_id(1)*w + get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)*w + get_global_id(1)] = tile[lx][ly];
}
`

func TestPaddedTransposeIsConflictFree(t *testing.T) {
	res := analyzeAccess(t, "tr.cl", paddedTileSrc, [3]int{16, 16, 1})
	if fs := findingsFor(res, "local-bank-conflict"); len(fs) != 0 {
		t.Errorf("padded (17-wide) transpose tile flagged: %+v", fs)
	}
	// Real cross-item communication: the barrier lint must stay quiet.
	if fs := findingsFor(res, "barrier-no-comm"); len(fs) != 0 {
		t.Errorf("communicating barrier flagged: %+v", fs)
	}
}

const selfCommSrc = `__kernel void selfish(__global float* out, __global float* in) {
    __local float tile[64];
    int lx = get_local_id(0);
    tile[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tile[lx];
}
`

func TestBarrierNoCommDetector(t *testing.T) {
	res := analyzeAccess(t, "selfish.cl", selfCommSrc, [3]int{64, 1, 1})
	fs := findingsFor(res, "barrier-no-comm")
	if len(fs) != 1 {
		t.Fatalf("barrier-no-comm findings = %d, want 1 (each item reads its own slot):\n%+v", len(fs), res.Findings)
	}
	if fs[0].Pos.Line != findLine(t, selfCommSrc, "barrier") {
		t.Errorf("finding at line %d, want the barrier line", fs[0].Pos.Line)
	}
}

const writeOnlyLocalSrc = `__kernel void wo(__global float* out, __global float* in) {
    __local float tile[64];
    int lx = get_local_id(0);
    tile[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = in[get_global_id(0)] * 2.0f;
}
`

func TestBarrierWriteOnlyLocal(t *testing.T) {
	res := analyzeAccess(t, "wo.cl", writeOnlyLocalSrc, [3]int{64, 1, 1})
	if fs := findingsFor(res, "barrier-no-comm"); len(fs) != 1 {
		t.Errorf("write-only local + barrier: findings = %d, want 1:\n%+v", len(fs), res.Findings)
	}
}
