// Package analysis is a dataflow-based static analysis suite over the
// compiler IR: a reusable framework (CFG with dominance and
// post-dominance, a generic bitset dataflow solver, reaching
// definitions, and a GPU uniformity analysis) plus detectors for barrier
// divergence, local-memory races, local-array bounds violations, and
// Grover rewrite legality. It is the correctness gate in front of the
// local-memory-disabling pass: the pass assumes a well-formed staging
// pattern (race-free GL→LS→barrier→LL with uniformly-executed barriers),
// and these detectors check exactly those preconditions.
package analysis

import (
	"sort"

	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/grover"
	"grover/internal/ir"
)

// Severity grades a finding.
type Severity string

const (
	SeverityInfo    Severity = "info"
	SeverityWarning Severity = "warning"
	SeverityError   Severity = "error"
)

// rank orders severities for exit-code and sorting purposes.
func (s Severity) rank() int {
	switch s {
	case SeverityError:
		return 2
	case SeverityWarning:
		return 1
	default:
		return 0
	}
}

// Detector names, one per analysis.
const (
	DetectorBarrierDivergence = "barrier-divergence"
	DetectorLocalRace         = "local-race"
	DetectorLocalBounds       = "local-bounds"
)

// Finding is one diagnostic anchored to a source position.
type Finding struct {
	Detector string   `json:"detector"`
	Severity Severity `json:"severity"`
	Kernel   string   `json:"kernel"`
	Pos      clc.Pos  `json:"pos"`
	Message  string   `json:"message"`
	// Related points at the other half of a pairwise finding (e.g. the
	// second access of a race).
	Related []clc.Pos `json:"related,omitempty"`
}

// Options configure an analysis run.
type Options struct {
	// WorkGroupSize gives the launch's work-group extents when known;
	// zero entries mean unknown. Extents tighten the bounds intervals
	// and enable the injectivity reasoning of the race detector.
	WorkGroupSize [3]int
	// AccessChecks enables the opt-in performance detectors backed by
	// the static access summary: uncoalesced global accesses,
	// bank-conflicted local staging, and barriers that synchronize no
	// cross-item communication. They judge efficiency rather than
	// correctness, so the default detector set leaves them off.
	AccessChecks bool
}

// Result is the full output for a module or kernel.
type Result struct {
	Findings []Finding `json:"findings"`
	// Legality holds one verdict per __local buffer the Grover candidate
	// matcher considered, rewritable or not, with the reject code.
	Legality []grover.BufferLegality `json:"legality"`
}

// MaxSeverity returns the highest severity among the findings, or "" if
// there are none.
func (r *Result) MaxSeverity() Severity {
	var max Severity
	for _, f := range r.Findings {
		if f.Severity.rank() > max.rank() || max == "" {
			if f.Severity.rank() >= max.rank() {
				max = f.Severity
			}
		}
	}
	return max
}

// AnalyzeModule analyzes every kernel of m.
func AnalyzeModule(m *ir.Module, opts Options) *Result {
	res := &Result{}
	for _, fn := range m.Kernels() {
		kr := AnalyzeKernel(fn, opts)
		res.Findings = append(res.Findings, kr.Findings...)
		res.Legality = append(res.Legality, kr.Legality...)
	}
	return res
}

// AnalyzeKernel runs every detector over one kernel.
func AnalyzeKernel(fn *ir.Function, opts Options) *Result {
	cfg := NewCFG(fn)
	rd := ComputeReachingDefs(cfg)
	uni := ComputeUniformity(cfg, rd)
	tb := exprtree.NewBuilder(fn)
	reg := exprtree.NewRegistry()
	bufs := collectLocalBuffers(fn, tb, reg)

	res := &Result{}
	res.Findings = append(res.Findings, checkBarrierDivergence(cfg, uni)...)
	res.Findings = append(res.Findings, checkRaces(cfg, uni, bufs, reg, opts.WorkGroupSize)...)
	res.Findings = append(res.Findings, checkBounds(cfg, bufs, tb, reg, opts.WorkGroupSize)...)
	if opts.AccessChecks {
		res.Findings = append(res.Findings, checkAccessPatterns(fn, opts)...)
	}
	res.Legality = grover.ExplainKernel(fn)
	sortFindings(res.Findings)
	return res
}

// sortFindings orders findings by severity (errors first), then source
// position, then detector, for stable output.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity.rank() != b.Severity.rank() {
			return a.Severity.rank() > b.Severity.rank()
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Detector < b.Detector
	})
}
