// Package intervals is the guard-refined integer-range arithmetic shared
// by the analysis detectors and the memaccess summary pass: a
// possibly-unbounded interval type, base ranges for work-item identity
// terms seeded from the launch's work-group extents, affine-form range
// evaluation, and the translation of dominating-branch comparisons into
// one-sided bounds on single symbolic terms.
//
// It sits below internal/analysis so packages the analysis detectors
// depend on (memaccess) can use the same machinery without a cycle.
package intervals

import (
	"fmt"
	"math/big"

	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// Interval is a possibly-unbounded integer range [Lo, Hi].
type Interval struct {
	Lo, Hi       int64
	LoInf, HiInf bool // true: unbounded on that side
}

// Top is the unconstrained interval (-inf, +inf).
func Top() Interval { return Interval{LoInf: true, HiInf: true} }

// Exact is the single-point interval [v, v].
func Exact(v int64) Interval { return Interval{Lo: v, Hi: v} }

// Range is the bounded interval [lo, hi].
func Range(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// NonNeg is [0, +inf).
func NonNeg() Interval { return Interval{Lo: 0, HiInf: true} }

// Add sums two intervals.
func (a Interval) Add(b Interval) Interval {
	return Interval{
		Lo: a.Lo + b.Lo, LoInf: a.LoInf || b.LoInf,
		Hi: a.Hi + b.Hi, HiInf: a.HiInf || b.HiInf,
	}
}

// Scale multiplies the interval by an integer constant.
func (a Interval) Scale(c int64) Interval {
	if c == 0 {
		return Exact(0)
	}
	if c < 0 {
		a.Lo, a.Hi = a.Hi, a.Lo
		a.LoInf, a.HiInf = a.HiInf, a.LoInf
		a.Lo *= c
		a.Hi *= c
		return a
	}
	a.Lo *= c
	a.Hi *= c
	return a
}

// ClampMax intersects with (-inf, v].
func (a Interval) ClampMax(v int64) Interval {
	if a.HiInf || v < a.Hi {
		a.Hi, a.HiInf = v, false
	}
	return a
}

// ClampMin intersects with [v, +inf).
func (a Interval) ClampMin(v int64) Interval {
	if a.LoInf || v > a.Lo {
		a.Lo, a.LoInf = v, false
	}
	return a
}

// Refine intersects a with the constraint interval g.
func (a Interval) Refine(g Interval) Interval {
	if !g.LoInf {
		a = a.ClampMin(g.Lo)
	}
	if !g.HiInf {
		a = a.ClampMax(g.Hi)
	}
	return a
}

func (a Interval) String() string {
	lo, hi := "-inf", "+inf"
	if !a.LoInf {
		lo = fmt.Sprintf("%d", a.Lo)
	}
	if !a.HiInf {
		hi = fmt.Sprintf("%d", a.Hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// Extent reads one work-group dimension, 0 when unknown.
func Extent(wg [3]int, d int) int64 {
	if d < 0 || d > 2 {
		return 0
	}
	return int64(wg[d])
}

// TermInterval is the base range of one symbolic term, seeded from the
// work-group extents for the work-item identity queries.
func TermInterval(t *exprtree.Term, wg [3]int) Interval {
	if t == nil {
		return Top()
	}
	if t.WorkItemFn == "" {
		return Top() // parameter or opaque subexpression
	}
	d := t.Dim
	switch t.WorkItemFn {
	case "get_local_id":
		if l := Extent(wg, d); l > 0 {
			return Range(0, l-1)
		}
		return NonNeg()
	case "get_local_size":
		if l := Extent(wg, d); l > 0 {
			return Exact(l)
		}
		return Interval{Lo: 1, HiInf: true}
	case "get_work_dim":
		return Range(1, 3)
	default:
		// Global ids, group ids, global sizes, group counts: unbounded
		// above but never negative.
		return NonNeg()
	}
}

// RatInt64 extracts an int64 from an integral rational, reporting
// whether the conversion is exact.
func RatInt64(r *big.Rat) (int64, bool) {
	if r == nil {
		return 0, false
	}
	if !r.IsInt() {
		return 0, false
	}
	n := r.Num()
	if !n.IsInt64() {
		return 0, false
	}
	return n.Int64(), true
}

// StableTerm reports whether the registry term named key has the same
// value every time one work-item evaluates it during a kernel run:
// work-item queries and kernel parameters are stable, loads of mutable
// variables (loop counters) and other opaque subtrees are not.
func StableTerm(reg *exprtree.Registry, key string) bool {
	t := reg.Term(key)
	if t == nil {
		return false
	}
	if t.WorkItemFn != "" {
		return true
	}
	_, isParam := t.Rep.(*ir.Param)
	return isParam
}

// EvalAffine evaluates the affine's value range under the given guard
// constraints. ok is false when a coefficient or the constant is not an
// integer.
func EvalAffine(aff *linsolve.Affine, reg *exprtree.Registry, wg [3]int, guards map[string]Interval) (Interval, bool) {
	k, ok := RatInt64(aff.Const)
	if !ok {
		return Interval{}, false
	}
	total := Exact(k)
	for _, key := range aff.Terms() {
		c, ok := RatInt64(aff.Coeff(key))
		if !ok {
			return Interval{}, false
		}
		iv := TermInterval(reg.Term(key), wg)
		if g, has := guards[key]; has {
			iv = iv.Refine(g)
		}
		total = total.Add(iv.Scale(c))
	}
	return total, true
}

// ConstraintFromCond turns a comparison (negated when the false edge was
// taken) into a one-sided bound on a single term: lhs − rhs must be an
// affine with exactly one term and integer coefficients.
func ConstraintFromCond(cond *ir.Instr, negated bool, tb *exprtree.Builder, reg *exprtree.Registry) (string, Interval, bool) {
	op := cond.Op
	switch op {
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq:
	default:
		return "", Interval{}, false
	}
	if negated {
		switch op {
		case ir.OpLt:
			op = ir.OpGe
		case ir.OpLe:
			op = ir.OpGt
		case ir.OpGt:
			op = ir.OpLe
		case ir.OpGe:
			op = ir.OpLt
		case ir.OpEq:
			return "", Interval{}, false // != gives no interval
		}
	}
	diff, ok := CondDiff(cond, tb, reg)
	if !ok {
		return "", Interval{}, false
	}
	terms := diff.Terms()
	if len(terms) != 1 {
		return "", Interval{}, false
	}
	key := terms[0]
	c, okC := RatInt64(diff.Coeff(key))
	k, okK := RatInt64(diff.Const)
	if !okC || !okK || c == 0 {
		return "", Interval{}, false
	}
	// diff = c·t + k; the comparison bounds diff, giving a bound on t.
	var diffHi, diffLo int64
	var hasHi, hasLo bool
	switch op {
	case ir.OpLt:
		diffHi, hasHi = -1, true
	case ir.OpLe:
		diffHi, hasHi = 0, true
	case ir.OpGt:
		diffLo, hasLo = 1, true
	case ir.OpGe:
		diffLo, hasLo = 0, true
	case ir.OpEq:
		diffHi, hasHi = 0, true
		diffLo, hasLo = 0, true
	}
	iv := Top()
	if hasHi { // c·t ≤ diffHi − k
		if c > 0 {
			iv = iv.ClampMax(FloorDiv(diffHi-k, c))
		} else {
			iv = iv.ClampMin(CeilDiv(diffHi-k, c))
		}
	}
	if hasLo { // c·t ≥ diffLo − k
		if c > 0 {
			iv = iv.ClampMin(CeilDiv(diffLo-k, c))
		} else {
			iv = iv.ClampMax(FloorDiv(diffLo-k, c))
		}
	}
	return key, iv, true
}

// CondDiff builds lhs − rhs of a comparison as an affine form.
func CondDiff(cond *ir.Instr, tb *exprtree.Builder, reg *exprtree.Registry) (*linsolve.Affine, bool) {
	if len(cond.Args) != 2 {
		return nil, false
	}
	ln, err := tb.Build(cond.Args[0])
	if err != nil {
		return nil, false
	}
	la, err := exprtree.ExtractAffine(ln, reg)
	if err != nil {
		return nil, false
	}
	rn, err := tb.Build(cond.Args[1])
	if err != nil {
		return nil, false
	}
	ra, err := exprtree.ExtractAffine(rn, reg)
	if err != nil {
		return nil, false
	}
	diff := la.Clone()
	diff.AddScaled(ra, big.NewRat(-1, 1))
	return diff, true
}

// FloorDiv and CeilDiv are Euclidean-rounding divisions for guard
// arithmetic (Go's / truncates toward zero).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func CeilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
