// Package graph implements the pure graph algorithms underlying the
// dataflow analyses in internal/analysis: reverse postorder and dominator
// trees over plain adjacency lists. It deliberately has no dependency on
// the IR so that internal/ir can use it too (the verifier's
// defs-dominate-uses check) without an import cycle.
package graph

// ReversePostOrder returns the nodes reachable from root in reverse
// postorder of a depth-first traversal of succ.
func ReversePostOrder(n int, succ [][]int, root int) []int {
	seen := make([]bool, n)
	var post []int
	// Iterative DFS with an explicit frame stack so deep CFGs cannot
	// overflow the goroutine stack.
	type frame struct {
		node int
		next int
	}
	stack := []frame{{node: root}}
	seen[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succ[f.node]) {
			s := succ[f.node][f.next]
			f.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Tree is a dominator tree over a rooted graph. Nodes unreachable from the
// root have Idom[v] == -1 and are dominated by nothing (and dominate
// nothing but themselves).
type Tree struct {
	// Idom is the immediate dominator of each node (-1 for the root and
	// for unreachable nodes).
	Idom []int
	// Root is the tree root.
	Root string

	root     int
	reach    []bool
	pre, pst []int // preorder interval numbering for O(1) queries
}

// Dominators computes the dominator tree of the graph rooted at root using
// the Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
func Dominators(n int, succ [][]int, root int) *Tree {
	rpo := ReversePostOrder(n, succ, root)
	order := make([]int, n) // rpo index per node; -1 when unreachable
	for i := range order {
		order[i] = -1
	}
	for i, v := range rpo {
		order[v] = i
	}
	pred := make([][]int, n)
	for u := 0; u < n; u++ {
		if order[u] < 0 {
			continue // edges from unreachable nodes do not count
		}
		for _, v := range succ[u] {
			pred[v] = append(pred[v], u)
		}
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == root {
				continue
			}
			newIdom := -1
			for _, p := range pred[v] {
				if idom[p] < 0 {
					continue // predecessor not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	t := &Tree{Idom: make([]int, n), root: root, reach: make([]bool, n)}
	for i := range t.Idom {
		t.Idom[i] = -1
	}
	for _, v := range rpo {
		t.reach[v] = true
		if v != root {
			t.Idom[v] = idom[v]
		}
	}
	t.number(n)
	return t
}

// number assigns preorder entry/exit intervals over the dominator tree so
// Dominates is an O(1) interval containment test.
func (t *Tree) number(n int) {
	children := make([][]int, n)
	for v, d := range t.Idom {
		if d >= 0 {
			children[d] = append(children[d], v)
		}
	}
	t.pre = make([]int, n)
	t.pst = make([]int, n)
	clock := 0
	type frame struct {
		node int
		next int
	}
	stack := []frame{{node: t.root}}
	t.pre[t.root] = clock
	clock++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(children[f.node]) {
			c := children[f.node][f.next]
			f.next++
			t.pre[c] = clock
			clock++
			stack = append(stack, frame{node: c})
			continue
		}
		t.pst[f.node] = clock
		clock++
		stack = stack[:len(stack)-1]
	}
}

// Reachable reports whether v is reachable from the root.
func (t *Tree) Reachable(v int) bool { return t.reach[v] }

// Dominates reports whether a dominates b (reflexively). Unreachable
// nodes dominate only themselves and are dominated only by themselves.
func (t *Tree) Dominates(a, b int) bool {
	if a == b {
		return true
	}
	if !t.reach[a] || !t.reach[b] {
		return false
	}
	return t.pre[a] <= t.pre[b] && t.pst[b] <= t.pst[a]
}
