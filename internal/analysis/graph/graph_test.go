package graph

import "testing"

// diamond: 0 → {1,2} → 3
func TestDominatorsDiamond(t *testing.T) {
	succ := [][]int{{1, 2}, {3}, {3}, {}}
	d := Dominators(4, succ, 0)
	wantIdom := []int{-1, 0, 0, 0}
	for v, w := range wantIdom {
		if d.Idom[v] != w {
			t.Errorf("idom[%d] = %d, want %d", v, d.Idom[v], w)
		}
	}
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 0, true}, {0, 3, true}, {1, 3, false}, {2, 3, false},
		{0, 1, true}, {3, 1, false}, {1, 1, true},
	}
	for _, c := range cases {
		if got := d.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// loop: 0 → 1 → 2 → 1, 2 → 3
func TestDominatorsLoop(t *testing.T) {
	succ := [][]int{{1}, {2}, {1, 3}, {}}
	d := Dominators(4, succ, 0)
	wantIdom := []int{-1, 0, 1, 2}
	for v, w := range wantIdom {
		if d.Idom[v] != w {
			t.Errorf("idom[%d] = %d, want %d", v, d.Idom[v], w)
		}
	}
	if !d.Dominates(1, 3) || !d.Dominates(2, 3) {
		t.Error("loop header and body must dominate the exit")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	// Node 2 is unreachable; node 3 reachable only through 1.
	succ := [][]int{{1}, {3}, {3}, {}}
	d := Dominators(4, succ, 0)
	if d.Reachable(2) {
		t.Error("node 2 must be unreachable")
	}
	if !d.Dominates(2, 2) {
		t.Error("an unreachable node dominates itself")
	}
	if d.Dominates(2, 3) || d.Dominates(0, 2) {
		t.Error("unreachable nodes neither dominate nor are dominated by others")
	}
	// The edge 2→3 must not influence 3's dominators.
	if d.Idom[3] != 1 {
		t.Errorf("idom[3] = %d, want 1 (edge from unreachable 2 ignored)", d.Idom[3])
	}
}

func TestReversePostOrder(t *testing.T) {
	succ := [][]int{{1, 2}, {3}, {3}, {}}
	rpo := ReversePostOrder(4, succ, 0)
	if len(rpo) != 4 || rpo[0] != 0 || rpo[len(rpo)-1] != 3 {
		t.Errorf("rpo = %v: want entry first, join last", rpo)
	}
	pos := map[int]int{}
	for i, v := range rpo {
		pos[v] = i
	}
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Errorf("rpo = %v violates topological order on the DAG", rpo)
	}
}
