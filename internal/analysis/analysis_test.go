// Tests live in an external package because opencl imports analysis for
// its debug-verify hooks; importing opencl from package analysis would
// form a cycle.
package analysis_test

import (
	"strings"
	"testing"

	"grover/internal/analysis"
	"grover/internal/apps"
	"grover/internal/grover"
	"grover/opencl"
)

// analyzeSource compiles an OpenCL C fixture through the full pipeline
// (parse → lower → optimize, the same IR every other consumer sees) and
// runs the analyzers over it.
func analyzeSource(t *testing.T, name, source string, wg [3]int) *analysis.Result {
	t.Helper()
	m, err := opencl.CompileModule(name, source, nil)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return analysis.AnalyzeModule(m, analysis.Options{WorkGroupSize: wg})
}

// findLine returns the 1-based line of the first occurrence of substr.
func findLine(t *testing.T, source, substr string) int {
	t.Helper()
	for i, l := range strings.Split(source, "\n") {
		if strings.Contains(l, substr) {
			return i + 1
		}
	}
	t.Fatalf("fixture does not contain %q", substr)
	return 0
}

func findingsFor(res *analysis.Result, detector string) []analysis.Finding {
	var out []analysis.Finding
	for _, f := range res.Findings {
		if f.Detector == detector {
			out = append(out, f)
		}
	}
	return out
}

const divergentBarrierSrc = `__kernel void divbar(__global float* in, __global float* out) {
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    __local float tile[16];
    tile[lx] = in[gx];
    if (lx < 8) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[gx] = tile[lx];
}
`

func TestDetectDivergentBarrier(t *testing.T) {
	res := analyzeSource(t, "divbar.cl", divergentBarrierSrc, [3]int{16, 1, 1})
	fs := findingsFor(res, analysis.DetectorBarrierDivergence)
	if len(fs) != 1 {
		t.Fatalf("want 1 barrier-divergence finding, got %d: %+v", len(fs), res.Findings)
	}
	f := fs[0]
	if f.Severity != analysis.SeverityError {
		t.Errorf("severity = %s, want error", f.Severity)
	}
	if f.Kernel != "divbar" {
		t.Errorf("kernel = %q, want divbar", f.Kernel)
	}
	if want := findLine(t, divergentBarrierSrc, "barrier("); f.Pos.Line != want {
		t.Errorf("finding at line %d, want %d (the barrier call)", f.Pos.Line, want)
	}
	// tile[lx] load/store pairs are same-index and injective: no race.
	if rs := findingsFor(res, analysis.DetectorLocalRace); len(rs) != 0 {
		t.Errorf("unexpected race findings: %+v", rs)
	}
}

const missingBarrierSrc = `__kernel void race(__global float* in, __global float* out) {
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    __local float tile[16];
    tile[lx] = in[gx];
    out[gx] = tile[15 - lx];
}
`

func TestDetectMissingBarrierRace(t *testing.T) {
	res := analyzeSource(t, "race.cl", missingBarrierSrc, [3]int{16, 1, 1})
	fs := findingsFor(res, analysis.DetectorLocalRace)
	if len(fs) != 1 {
		t.Fatalf("want 1 local-race finding, got %d: %+v", len(fs), res.Findings)
	}
	f := fs[0]
	if f.Severity != analysis.SeverityError {
		t.Errorf("severity = %s, want error", f.Severity)
	}
	storeLine := findLine(t, missingBarrierSrc, "tile[lx] = in[gx];")
	loadLine := findLine(t, missingBarrierSrc, "tile[15 - lx]")
	if f.Pos.Line != storeLine {
		t.Errorf("race anchored at line %d, want %d (the store)", f.Pos.Line, storeLine)
	}
	if len(f.Related) != 1 || f.Related[0].Line != loadLine {
		t.Errorf("related = %+v, want one position at line %d (the load)", f.Related, loadLine)
	}
	if bs := findingsFor(res, analysis.DetectorBarrierDivergence); len(bs) != 0 {
		t.Errorf("unexpected barrier findings: %+v", bs)
	}
}

func TestBarrierSuppressesRace(t *testing.T) {
	fixed := strings.Replace(missingBarrierSrc,
		"    out[gx] = tile[15 - lx];",
		"    barrier(CLK_LOCAL_MEM_FENCE);\n    out[gx] = tile[15 - lx];", 1)
	res := analyzeSource(t, "race_fixed.cl", fixed, [3]int{16, 1, 1})
	if len(res.Findings) != 0 {
		t.Errorf("barrier-separated staging must be clean, got %+v", res.Findings)
	}
}

const boundsSrc = `__kernel void oob(__global float* in, __global float* out) {
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    __local float lc[16];
    lc[lx + 1] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lc[16];
}
`

func TestDetectLocalBounds(t *testing.T) {
	res := analyzeSource(t, "oob.cl", boundsSrc, [3]int{16, 1, 1})
	fs := findingsFor(res, analysis.DetectorLocalBounds)
	if len(fs) != 2 {
		t.Fatalf("want 2 local-bounds findings, got %d: %+v", len(fs), res.Findings)
	}
	storeLine := findLine(t, boundsSrc, "lc[lx + 1]")
	loadLine := findLine(t, boundsSrc, "= lc[16]")
	var sawStore, sawLoad bool
	for _, f := range fs {
		switch f.Pos.Line {
		case storeLine:
			sawStore = true
			// lx+1 reaches 16 only for the last work-item: a may-overflow.
			if f.Severity != analysis.SeverityWarning {
				t.Errorf("off-by-one store severity = %s, want warning", f.Severity)
			}
		case loadLine:
			sawLoad = true
			// lc[16] is out of bounds for every work-item.
			if f.Severity != analysis.SeverityError {
				t.Errorf("constant overread severity = %s, want error", f.Severity)
			}
		default:
			t.Errorf("finding at unexpected line %d: %+v", f.Pos.Line, f)
		}
	}
	if !sawStore || !sawLoad {
		t.Errorf("missing expected findings (store@%d load@%d): %+v", storeLine, loadLine, fs)
	}
}

func TestBoundsGuardRefinement(t *testing.T) {
	// The same off-by-one store under an `if (lx < 15)` guard is in
	// bounds: the dominating-branch refinement must clamp lx.
	src := `__kernel void guarded(__global float* in, __global float* out) {
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    __local float lc[16];
    if (lx < 15) {
        lc[lx + 1] = in[gx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lc[lx];
}
`
	res := analyzeSource(t, "guarded.cl", src, [3]int{16, 1, 1})
	if fs := findingsFor(res, analysis.DetectorLocalBounds); len(fs) != 0 {
		t.Errorf("guarded store must be in bounds, got %+v", fs)
	}
}

const nonAffineSrc = `__kernel void nonaff(__global float* in, __global float* out) {
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    __local float lc[16];
    lc[(lx * lx) % 16] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lc[lx];
}
`

func TestLegalityNonAffine(t *testing.T) {
	res := analyzeSource(t, "nonaff.cl", nonAffineSrc, [3]int{16, 1, 1})
	if len(res.Legality) != 1 {
		t.Fatalf("want 1 legality verdict, got %+v", res.Legality)
	}
	v := res.Legality[0]
	if v.Rewritable {
		t.Error("quadratic store index must not be rewritable")
	}
	if v.Code != grover.RejectNonAffineIndex {
		t.Errorf("reject code = %q, want %q", v.Code, grover.RejectNonAffineIndex)
	}
	if v.Name != "lc" || v.Kernel != "nonaff" {
		t.Errorf("verdict identifies %s/%s, want nonaff/lc", v.Kernel, v.Name)
	}
	if want := findLine(t, nonAffineSrc, "__local float lc[16];"); v.Pos.Line != want {
		t.Errorf("verdict at line %d, want %d (the declaration)", v.Pos.Line, want)
	}
}

func TestLegalityRewritable(t *testing.T) {
	// The canonical staging pattern from the paper's Fig. 1: this is
	// exactly what the Grover pass rewrites, so the verdict must say so.
	src := `__kernel void stage(__global float* in, __global float* out) {
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    __local float tile[16];
    tile[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = tile[15 - lx];
}
`
	res := analyzeSource(t, "stage.cl", src, [3]int{16, 1, 1})
	if len(res.Legality) != 1 {
		t.Fatalf("want 1 legality verdict, got %+v", res.Legality)
	}
	v := res.Legality[0]
	if !v.Rewritable || v.Code != grover.RejectNone {
		t.Errorf("staging buffer must be rewritable, got %+v", v)
	}
	if v.NumLS != 1 || v.NumLL != 1 {
		t.Errorf("NumLS/NumLL = %d/%d, want 1/1", v.NumLS, v.NumLL)
	}
	if len(res.Findings) != 0 {
		t.Errorf("canonical staging must be clean, got %+v", res.Findings)
	}
}

// TestBenchmarksClean is the golden test: all 11 benchmark kernels,
// analyzed at their default work-group sizes, must produce zero findings
// — they are the well-formed staging patterns the detectors are
// calibrated against.
func TestBenchmarksClean(t *testing.T) {
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.ID, func(t *testing.T) {
			ctx := opencl.NewContext(dev)
			inst, err := app.Setup(ctx, 1)
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			m, err := opencl.CompileModule(app.ID+".cl", app.Source, app.Defines)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res := analysis.AnalyzeModule(m, analysis.Options{WorkGroupSize: inst.ND.Local})
			for _, f := range res.Findings {
				t.Errorf("unexpected finding: %s:%d:%d %s [%s] %s",
					app.ID, f.Pos.Line, f.Pos.Col, f.Severity, f.Detector, f.Message)
			}
			if len(res.Legality) == 0 {
				t.Error("no legality verdicts: every benchmark stages through __local")
			}
			rewritable := 0
			for _, v := range res.Legality {
				if v.Rewritable {
					rewritable++
				}
				if v.Pos.Line == 0 {
					t.Errorf("verdict for %s/%s lacks a source position", v.Kernel, v.Name)
				}
			}
			if rewritable == 0 {
				t.Errorf("no rewritable buffer found; verdicts: %+v", res.Legality)
			}
		})
	}
}
