package analysis

import (
	"fmt"
	"math/big"

	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// interval is a possibly-unbounded integer range [lo, hi].
type interval struct {
	lo, hi       int64
	loInf, hiInf bool // true: unbounded on that side
}

func topInterval() interval               { return interval{loInf: true, hiInf: true} }
func exactInterval(v int64) interval      { return interval{lo: v, hi: v} }
func rangeInterval(lo, hi int64) interval { return interval{lo: lo, hi: hi} }
func nonNegInterval() interval            { return interval{lo: 0, hiInf: true} }

// add sums two intervals.
func (a interval) add(b interval) interval {
	return interval{
		lo: a.lo + b.lo, loInf: a.loInf || b.loInf,
		hi: a.hi + b.hi, hiInf: a.hiInf || b.hiInf,
	}
}

// scale multiplies the interval by an integer constant.
func (a interval) scale(c int64) interval {
	if c == 0 {
		return exactInterval(0)
	}
	if c < 0 {
		a.lo, a.hi = a.hi, a.lo
		a.loInf, a.hiInf = a.hiInf, a.loInf
		a.lo *= c
		a.hi *= c
		return a
	}
	a.lo *= c
	a.hi *= c
	return a
}

// clampMax intersects with (-inf, v].
func (a interval) clampMax(v int64) interval {
	if a.hiInf || v < a.hi {
		a.hi, a.hiInf = v, false
	}
	return a
}

// clampMin intersects with [v, +inf).
func (a interval) clampMin(v int64) interval {
	if a.loInf || v > a.lo {
		a.lo, a.loInf = v, false
	}
	return a
}

func (a interval) String() string {
	lo, hi := "-inf", "+inf"
	if !a.loInf {
		lo = fmt.Sprintf("%d", a.lo)
	}
	if !a.hiInf {
		hi = fmt.Sprintf("%d", a.hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// termInterval is the base range of one symbolic term, seeded from the
// work-group extents for the work-item identity queries.
func termInterval(t *exprtree.Term, wg [3]int) interval {
	if t == nil {
		return topInterval()
	}
	if t.WorkItemFn == "" {
		return topInterval() // parameter or opaque subexpression
	}
	d := t.Dim
	switch t.WorkItemFn {
	case "get_local_id":
		if l := extent(wg, d); l > 0 {
			return rangeInterval(0, l-1)
		}
		return nonNegInterval()
	case "get_local_size":
		if l := extent(wg, d); l > 0 {
			return exactInterval(l)
		}
		return interval{lo: 1, hiInf: true}
	case "get_work_dim":
		return rangeInterval(1, 3)
	default:
		// Global ids, group ids, global sizes, group counts: unbounded
		// above but never negative.
		return nonNegInterval()
	}
}

// checkBounds verifies every local-buffer access's byte offset against
// the allocation: offset ∈ [0, size − accessBytes]. Intervals are seeded
// from the work-group extents and refined by comparisons on dominating
// branches (so a store guarded by `if (lx < N)` is analyzed with lx < N).
// Only finite violations are reported: an access whose range is
// unbounded because it depends on a loop counter or parameter stays
// silent rather than drowning real findings in noise.
func checkBounds(cfg *CFG, bufs []*localBuffer, tb *exprtree.Builder, reg *exprtree.Registry, wg [3]int) []Finding {
	var out []Finding
	guardCache := map[int]map[string]interval{}
	for _, buf := range bufs {
		size := int64(bufferSize(buf.alloca))
		if size <= 0 {
			continue
		}
		for _, a := range buf.accesses {
			if a.aff == nil {
				continue
			}
			bi, ok := cfg.Index[a.instr.Block]
			if !ok {
				continue
			}
			guards, cached := guardCache[bi]
			if !cached {
				guards = guardBounds(cfg, bi, tb, reg)
				guardCache[bi] = guards
			}
			iv, ok := evalAffine(a.aff, reg, wg, guards)
			if !ok {
				continue
			}
			limit := size - int64(a.accessSize())
			out = append(out, boundsFindings(cfg.Fn.Name, buf.alloca.VarName, a, iv, size, limit)...)
		}
	}
	return out
}

// evalAffine evaluates the affine's value range. ok is false when a
// coefficient or the constant is not an integer.
func evalAffine(aff *linsolve.Affine, reg *exprtree.Registry, wg [3]int, guards map[string]interval) (interval, bool) {
	k, ok := ratInt64(aff.Const)
	if !ok {
		return interval{}, false
	}
	total := exactInterval(k)
	for _, key := range aff.Terms() {
		c, ok := ratInt64(aff.Coeff(key))
		if !ok {
			return interval{}, false
		}
		iv := termInterval(reg.Term(key), wg)
		if g, has := guards[key]; has {
			if !g.loInf {
				iv = iv.clampMin(g.lo)
			}
			if !g.hiInf {
				iv = iv.clampMax(g.hi)
			}
		}
		total = total.add(iv.scale(c))
	}
	return total, true
}

func boundsFindings(kernel, name string, a *access, iv interval, size, limit int64) []Finding {
	kind := "load from"
	if a.store {
		kind = "store to"
	}
	mk := func(sev Severity, msg string) Finding {
		return Finding{
			Detector: DetectorLocalBounds,
			Severity: sev,
			Kernel:   kernel,
			Pos:      a.instr.Pos,
			Message: fmt.Sprintf("%s __local %s %s: byte offset range %s vs allocation of %d bytes",
				kind, name, msg, iv, size),
		}
	}
	var out []Finding
	switch {
	case !iv.loInf && iv.lo > limit:
		out = append(out, mk(SeverityError, "is always out of bounds"))
	case !iv.hiInf && iv.hi > limit:
		out = append(out, mk(SeverityWarning, "may run past the end of the buffer"))
	}
	switch {
	case !iv.hiInf && iv.hi < 0:
		out = append(out, mk(SeverityError, "is always before the start of the buffer"))
	case !iv.loInf && iv.lo < 0:
		out = append(out, mk(SeverityWarning, "may precede the start of the buffer"))
	}
	return out
}

// guardBounds collects interval constraints on identity-stable terms
// from the comparisons of conditional branches dominating block bi. A
// branch contributes when one successor both (a) dominates bi and (b)
// has the branch block as its only predecessor, so every path to bi
// crossed that edge with the condition decided.
func guardBounds(cfg *CFG, bi int, tb *exprtree.Builder, reg *exprtree.Registry) map[string]interval {
	out := map[string]interval{}
	for anc := cfg.Dom.Idom[bi]; anc >= 0; anc = cfg.Dom.Idom[anc] {
		b := cfg.Blocks[anc]
		term := b.Instrs[len(b.Instrs)-1]
		if term.Op != ir.OpCondBr {
			continue
		}
		cond, ok := term.Args[0].(*ir.Instr)
		if !ok {
			continue
		}
		for side, target := range term.Targets {
			ti, known := cfg.Index[target]
			if !known || len(cfg.Pred[ti]) != 1 || !cfg.Dom.Dominates(ti, bi) {
				continue
			}
			key, iv, ok := constraintFromCond(cond, side == 1, tb, reg)
			if !ok || !stableTerm(reg, key) {
				continue
			}
			cur, has := out[key]
			if !has {
				cur = topInterval()
			}
			if !iv.loInf {
				cur = cur.clampMin(iv.lo)
			}
			if !iv.hiInf {
				cur = cur.clampMax(iv.hi)
			}
			out[key] = cur
		}
	}
	return out
}

// constraintFromCond turns a comparison (negated when the false edge was
// taken) into a one-sided bound on a single term: lhs − rhs must be an
// affine with exactly one term and integer coefficients.
func constraintFromCond(cond *ir.Instr, negated bool, tb *exprtree.Builder, reg *exprtree.Registry) (string, interval, bool) {
	op := cond.Op
	switch op {
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq:
	default:
		return "", interval{}, false
	}
	if negated {
		switch op {
		case ir.OpLt:
			op = ir.OpGe
		case ir.OpLe:
			op = ir.OpGt
		case ir.OpGt:
			op = ir.OpLe
		case ir.OpGe:
			op = ir.OpLt
		case ir.OpEq:
			return "", interval{}, false // != gives no interval
		}
	}
	diff, ok := condDiff(cond, tb, reg)
	if !ok {
		return "", interval{}, false
	}
	terms := diff.Terms()
	if len(terms) != 1 {
		return "", interval{}, false
	}
	key := terms[0]
	c, okC := ratInt64(diff.Coeff(key))
	k, okK := ratInt64(diff.Const)
	if !okC || !okK || c == 0 {
		return "", interval{}, false
	}
	// diff = c·t + k; the comparison bounds diff, giving a bound on t.
	var diffHi, diffLo int64
	var hasHi, hasLo bool
	switch op {
	case ir.OpLt:
		diffHi, hasHi = -1, true
	case ir.OpLe:
		diffHi, hasHi = 0, true
	case ir.OpGt:
		diffLo, hasLo = 1, true
	case ir.OpGe:
		diffLo, hasLo = 0, true
	case ir.OpEq:
		diffHi, hasHi = 0, true
		diffLo, hasLo = 0, true
	}
	iv := topInterval()
	if hasHi { // c·t ≤ diffHi − k
		if c > 0 {
			iv = iv.clampMax(floorDiv(diffHi-k, c))
		} else {
			iv = iv.clampMin(ceilDiv(diffHi-k, c))
		}
	}
	if hasLo { // c·t ≥ diffLo − k
		if c > 0 {
			iv = iv.clampMin(ceilDiv(diffLo-k, c))
		} else {
			iv = iv.clampMax(floorDiv(diffLo-k, c))
		}
	}
	return key, iv, true
}

// condDiff builds lhs − rhs of a comparison as an affine form.
func condDiff(cond *ir.Instr, tb *exprtree.Builder, reg *exprtree.Registry) (*linsolve.Affine, bool) {
	if len(cond.Args) != 2 {
		return nil, false
	}
	ln, err := tb.Build(cond.Args[0])
	if err != nil {
		return nil, false
	}
	la, err := exprtree.ExtractAffine(ln, reg)
	if err != nil {
		return nil, false
	}
	rn, err := tb.Build(cond.Args[1])
	if err != nil {
		return nil, false
	}
	ra, err := exprtree.ExtractAffine(rn, reg)
	if err != nil {
		return nil, false
	}
	diff := la.Clone()
	diff.AddScaled(ra, big.NewRat(-1, 1))
	return diff, true
}

// floorDiv and ceilDiv are Euclidean-rounding divisions for guard
// arithmetic (Go's / truncates toward zero).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
