package analysis

import (
	"fmt"

	"grover/internal/analysis/intervals"
	"grover/internal/exprtree"
	"grover/internal/ir"
)

// The interval machinery (range arithmetic, work-item term seeding,
// affine evaluation, branch-comparison constraints) lives in the shared
// internal/analysis/intervals package so the memaccess summary pass can
// reuse it; the aliases below keep the detector code reading naturally.
type interval = intervals.Interval

// checkBounds verifies every local-buffer access's byte offset against
// the allocation: offset ∈ [0, size − accessBytes]. Intervals are seeded
// from the work-group extents and refined by comparisons on dominating
// branches (so a store guarded by `if (lx < N)` is analyzed with lx < N).
// Only finite violations are reported: an access whose range is
// unbounded because it depends on a loop counter or parameter stays
// silent rather than drowning real findings in noise.
func checkBounds(cfg *CFG, bufs []*localBuffer, tb *exprtree.Builder, reg *exprtree.Registry, wg [3]int) []Finding {
	var out []Finding
	guardCache := map[int]map[string]interval{}
	for _, buf := range bufs {
		size := int64(bufferSize(buf.alloca))
		if size <= 0 {
			continue
		}
		for _, a := range buf.accesses {
			if a.aff == nil {
				continue
			}
			bi, ok := cfg.Index[a.instr.Block]
			if !ok {
				continue
			}
			guards, cached := guardCache[bi]
			if !cached {
				guards = guardBounds(cfg, bi, tb, reg)
				guardCache[bi] = guards
			}
			iv, ok := intervals.EvalAffine(a.aff, reg, wg, guards)
			if !ok {
				continue
			}
			limit := size - int64(a.accessSize())
			out = append(out, boundsFindings(cfg.Fn.Name, buf.alloca.VarName, a, iv, size, limit)...)
		}
	}
	return out
}

func boundsFindings(kernel, name string, a *access, iv interval, size, limit int64) []Finding {
	kind := "load from"
	if a.store {
		kind = "store to"
	}
	mk := func(sev Severity, msg string) Finding {
		return Finding{
			Detector: DetectorLocalBounds,
			Severity: sev,
			Kernel:   kernel,
			Pos:      a.instr.Pos,
			Message: fmt.Sprintf("%s __local %s %s: byte offset range %s vs allocation of %d bytes",
				kind, name, msg, iv, size),
		}
	}
	var out []Finding
	switch {
	case !iv.LoInf && iv.Lo > limit:
		out = append(out, mk(SeverityError, "is always out of bounds"))
	case !iv.HiInf && iv.Hi > limit:
		out = append(out, mk(SeverityWarning, "may run past the end of the buffer"))
	}
	switch {
	case !iv.HiInf && iv.Hi < 0:
		out = append(out, mk(SeverityError, "is always before the start of the buffer"))
	case !iv.LoInf && iv.Lo < 0:
		out = append(out, mk(SeverityWarning, "may precede the start of the buffer"))
	}
	return out
}

// guardBounds collects interval constraints on identity-stable terms
// from the comparisons of conditional branches dominating block bi. A
// branch contributes when one successor both (a) dominates bi and (b)
// has the branch block as its only predecessor, so every path to bi
// crossed that edge with the condition decided.
func guardBounds(cfg *CFG, bi int, tb *exprtree.Builder, reg *exprtree.Registry) map[string]interval {
	out := map[string]interval{}
	for anc := cfg.Dom.Idom[bi]; anc >= 0; anc = cfg.Dom.Idom[anc] {
		b := cfg.Blocks[anc]
		term := b.Instrs[len(b.Instrs)-1]
		if term.Op != ir.OpCondBr {
			continue
		}
		cond, ok := term.Args[0].(*ir.Instr)
		if !ok {
			continue
		}
		for side, target := range term.Targets {
			ti, known := cfg.Index[target]
			if !known || len(cfg.Pred[ti]) != 1 || !cfg.Dom.Dominates(ti, bi) {
				continue
			}
			key, iv, ok := intervals.ConstraintFromCond(cond, side == 1, tb, reg)
			if !ok || !stableTerm(reg, key) {
				continue
			}
			cur, has := out[key]
			if !has {
				cur = intervals.Top()
			}
			out[key] = cur.Refine(iv)
		}
	}
	return out
}
