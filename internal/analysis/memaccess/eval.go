package memaccess

import (
	"grover/internal/clc"
	"grover/internal/ir"
)

// Synthetic address-space layout for replaying accesses against a cache
// model. Global pointer parameters get widely spaced bases with a
// non-power-of-two stagger (so distinct buffers do not all collide on
// cache set 0 the way power-of-two bases would); local allocas share a
// contiguous arena at LocalBase like the device simulator's per-core
// scratch region.
const (
	GlobalSpacing = uint64(4<<20 + 3*64)
	LocalBase     = uint64(1) << 40
	PrivBase      = uint64(1) << 41
)

// Env is one work-item's evaluation environment: identities, the group
// sample, loop-variable values, and known scalar arguments.
type Env struct {
	WG        [3]int
	NumGroups [3]int64
	Lid       [3]int64
	Group     [3]int64
	// Vars carries current induction-variable values by alloca.
	Vars map[*ir.Instr]int64
	// ArgInts are known scalar argument values by parameter index.
	ArgInts map[int]int64
	// DefaultParam substitutes for unknown scalar integer parameters.
	DefaultParam int64
}

const maxEvalDepth = 256

// Eval computes the integer value of v under env, walking use-def
// chains; ok is false when the value depends on memory contents, float
// math, or other state the static evaluator cannot see.
func (s *Summary) Eval(v ir.Value, env *Env) (int64, bool) {
	return s.eval(v, env, 0)
}

func (s *Summary) eval(v ir.Value, env *Env, depth int) (int64, bool) {
	if depth > maxEvalDepth {
		return 0, false
	}
	switch x := v.(type) {
	case *ir.ConstInt:
		return x.Val, true
	case *ir.ConstFloat:
		if x.Val == float64(int64(x.Val)) {
			return int64(x.Val), true
		}
		return 0, false
	case *ir.Param:
		if _, isPtr := x.Typ.(*clc.PointerType); isPtr {
			return 0, false
		}
		if val, ok := env.ArgInts[x.Index]; ok {
			return val, true
		}
		if env.DefaultParam != 0 {
			return env.DefaultParam, true
		}
		return 0, false
	case *ir.Instr:
		return s.evalInstr(x, env, depth)
	default:
		return 0, false
	}
}

func (s *Summary) evalInstr(in *ir.Instr, env *Env, depth int) (int64, bool) {
	switch in.Op {
	case ir.OpWorkItem:
		return evalWorkItem(in, env)
	case ir.OpLoad:
		src, ok := in.Args[0].(*ir.Instr)
		if !ok || src.Op != ir.OpAlloca || src.Space != clc.ASPrivate {
			return 0, false
		}
		if val, has := env.Vars[src]; has {
			return val, true
		}
		if st := s.TB.SingleStore(src); st != nil {
			return s.eval(st.Args[1], env, depth+1)
		}
		return 0, false
	case ir.OpConvert:
		return s.eval(in.Args[0], env, depth+1)
	case ir.OpNeg:
		a, ok := s.eval(in.Args[0], env, depth+1)
		return -a, ok
	case ir.OpNot:
		a, ok := s.eval(in.Args[0], env, depth+1)
		return ^a, ok
	}
	if len(in.Args) != 2 {
		return 0, false
	}
	a, okA := s.eval(in.Args[0], env, depth+1)
	if !okA {
		return 0, false
	}
	b, okB := s.eval(in.Args[1], env, depth+1)
	if !okB {
		return 0, false
	}
	switch in.Op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a << uint(b), true
	case ir.OpShr:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a >> uint(b), true
	case ir.OpEq:
		return b2i(a == b), true
	case ir.OpNe:
		return b2i(a != b), true
	case ir.OpLt:
		return b2i(a < b), true
	case ir.OpLe:
		return b2i(a <= b), true
	case ir.OpGt:
		return b2i(a > b), true
	case ir.OpGe:
		return b2i(a >= b), true
	default:
		return 0, false
	}
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

func evalWorkItem(in *ir.Instr, env *Env) (int64, bool) {
	d := 0
	if len(in.Args) == 1 {
		c, ok := in.Args[0].(*ir.ConstInt)
		if !ok {
			return 0, false
		}
		d = int(c.Val)
	}
	if d < 0 || d > 2 {
		return 0, false
	}
	switch in.Func {
	case "get_local_id":
		return env.Lid[d], true
	case "get_group_id":
		return env.Group[d], true
	case "get_global_id":
		return env.Group[d]*int64(env.WG[d]) + env.Lid[d], true
	case "get_local_size":
		return int64(env.WG[d]), true
	case "get_num_groups":
		return env.NumGroups[d], true
	case "get_global_size":
		return env.NumGroups[d] * int64(env.WG[d]), true
	case "get_work_dim":
		dims := int64(1)
		if env.WG[2] > 1 || env.NumGroups[2] > 1 {
			dims = 3
		} else if env.WG[1] > 1 || env.NumGroups[1] > 1 {
			dims = 2
		}
		return dims, true
	default:
		return 0, false
	}
}

// ParamBase is the synthetic base address of a global pointer
// parameter's buffer.
func ParamBase(index int) uint64 {
	return uint64(index+1) * GlobalSpacing
}

// Addr computes the access's byte address under env. For local accesses
// the address is arena-relative (the caller adds LocalBase when feeding
// a unified hierarchy); for globals it includes the parameter's
// synthetic base. ok is false when an index is not statically
// evaluable.
func (s *Summary) Addr(a *Access, env *Env) (uint64, bool) {
	var base int64
	switch v := a.Base.(type) {
	case *ir.Param:
		base = int64(ParamBase(v.Index))
	case *ir.Instr:
		if a.Space == clc.ASLocal {
			base = s.LocalOffset[v]
		}
	}
	for _, idx := range a.Chain {
		step := int64(ir.PointeeSize(idx.Args[0].Type()))
		ev, ok := s.Eval(idx.Args[1], env)
		if !ok {
			return 0, false
		}
		base += ev * step
	}
	if base < 0 {
		return 0, false
	}
	return uint64(base), true
}
