package memaccess

import (
	"math/big"
	"sort"

	"grover/internal/analysis/intervals"
	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// findLoops discovers natural loops from dominator back edges, nests
// them, recognizes induction variables, and estimates trip counts.
func (s *Summary) findLoops() {
	byHeader := map[int]*Loop{}
	var headers []int
	for ui := range s.blocks {
		if !s.dom.Reachable(ui) {
			continue
		}
		for _, hi := range s.succ[ui] {
			if !s.dom.Dominates(hi, ui) {
				continue // not a back edge
			}
			l := byHeader[hi]
			if l == nil {
				l = &Loop{Header: s.blocks[hi], Blocks: map[*ir.Block]bool{s.blocks[hi]: true}}
				byHeader[hi] = l
				headers = append(headers, hi)
			}
			s.collectBody(l, ui, hi)
		}
	}
	sort.Ints(headers)
	for _, hi := range headers {
		s.Loops = append(s.Loops, byHeader[hi])
	}
	// Nest: the parent is the smallest strict superset.
	for _, l := range s.Loops {
		for _, outer := range s.Loops {
			if outer == l || len(outer.Blocks) <= len(l.Blocks) || !outer.Blocks[l.Header] {
				continue
			}
			if l.Parent == nil || len(outer.Blocks) < len(l.Parent.Blocks) {
				l.Parent = outer
			}
		}
	}
	for _, l := range s.Loops {
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
	}
	// Innermost loop per block: deeper wins.
	for _, l := range s.Loops {
		for b := range l.Blocks {
			if cur := s.inLoop[b]; cur == nil || l.Depth > cur.Depth {
				s.inLoop[b] = l
			}
		}
	}
	for _, l := range s.Loops {
		s.analyzeLoop(l)
	}
}

// collectBody adds to l every block that reaches the back edge source ui
// without passing the header.
func (s *Summary) collectBody(l *Loop, ui, hi int) {
	stack := []int{ui}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := s.blocks[n]
		if l.Blocks[b] {
			continue
		}
		l.Blocks[b] = true
		for _, p := range s.pred[n] {
			if p != hi || n == hi {
				stack = append(stack, p)
			}
		}
	}
}

// analyzeLoop recognizes the induction variable from the loop's exit
// comparison and estimates the trip count.
func (s *Summary) analyzeLoop(l *Loop) {
	l.Trip = s.Opts.DefaultTrip
	cond, contSide, ok := s.exitBranch(l)
	if !ok {
		return
	}
	diff, ok := intervals.CondDiff(cond, s.TB, s.Reg)
	if !ok {
		return
	}
	// Find the induction term: a diff term keyed to an alloca that is
	// stored inside the loop.
	var indKey string
	var indVar *ir.Instr
	for _, key := range diff.Terms() {
		t := s.Reg.Term(key)
		if t == nil {
			continue
		}
		ld, isInstr := t.Rep.(*ir.Instr)
		if !isInstr || ld.Op != ir.OpLoad {
			continue
		}
		alloca, isAlloca := ld.Args[0].(*ir.Instr)
		if !isAlloca || alloca.Op != ir.OpAlloca || alloca.Space != clc.ASPrivate {
			continue
		}
		if len(s.loopStores(l, alloca)) == 0 {
			continue
		}
		if indVar != nil {
			return // two mutating variables in the exit test: give up
		}
		indKey, indVar = key, alloca
	}
	if indVar == nil {
		return
	}
	l.IndVar, l.Key = indVar, indKey
	s.recurrence(l)
	s.estimateTrip(l, cond, contSide, diff)
}

// exitBranch finds the loop's conditional exit: a block of the loop
// whose CondBr has one target inside and one outside, preferring the
// header. contSide is the Targets index that continues the loop.
func (s *Summary) exitBranch(l *Loop) (cond *ir.Instr, contSide int, ok bool) {
	try := func(b *ir.Block) (*ir.Instr, int, bool) {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr || len(t.Targets) != 2 {
			return nil, 0, false
		}
		in0, in1 := l.Blocks[t.Targets[0]], l.Blocks[t.Targets[1]]
		if in0 == in1 {
			return nil, 0, false
		}
		c, isInstr := t.Args[0].(*ir.Instr)
		if !isInstr {
			return nil, 0, false
		}
		side := 0
		if in1 {
			side = 1
		}
		return c, side, true
	}
	if c, side, found := try(l.Header); found {
		return c, side, true
	}
	var idxs []int
	for b := range l.Blocks {
		idxs = append(idxs, s.index[b])
	}
	sort.Ints(idxs)
	for _, bi := range idxs {
		if c, side, found := try(s.blocks[bi]); found {
			return c, side, true
		}
	}
	return nil, 0, false
}

// recurrence proves the i = Init; i += Step shape: exactly one in-loop
// store whose value is load(i) + Step, and a dominating out-of-loop
// store of a resolvable initial value.
func (s *Summary) recurrence(l *Loop) {
	inStores := s.loopStores(l, l.IndVar)
	if len(inStores) == 1 {
		if aff := s.storeAffine(inStores[0]); aff != nil {
			one := big.NewRat(1, 1)
			if aff.Coeff(l.Key).Cmp(one) == 0 && len(aff.Terms()) == 1 {
				if step, ok := intervals.RatInt64(aff.Const); ok && step != 0 {
					l.Step, l.StepOK = step, true
				}
			}
		}
	}
	// Initial value: the last dominating out-of-loop store.
	hi := s.index[l.Header]
	var init *ir.Instr
	for _, st := range s.TB.Stores(l.IndVar) {
		if l.Blocks[st.Block] {
			continue
		}
		si, ok := s.index[st.Block]
		if !ok || !s.dom.Dominates(si, hi) {
			continue
		}
		init = st // stores are in block order; the last dominating one wins
	}
	if init != nil {
		if aff := s.storeAffine(init); aff != nil {
			if iv, ok := intervals.EvalAffine(aff, s.Reg, s.WG, s.argGuards()); ok && !iv.LoInf && !iv.HiInf && iv.Lo == iv.Hi {
				l.Init, l.InitOK = iv.Lo, true
			}
		}
	}
}

// loopStores returns the direct stores to alloca inside the loop.
func (s *Summary) loopStores(l *Loop, alloca *ir.Instr) []*ir.Instr {
	var out []*ir.Instr
	for _, st := range s.TB.Stores(alloca) {
		if l.Blocks[st.Block] {
			out = append(out, st)
		}
	}
	return out
}

// storeAffine extracts the affine form of a store's value.
func (s *Summary) storeAffine(st *ir.Instr) *linsolve.Affine {
	node, err := s.TB.Build(st.Args[1])
	if err != nil {
		return nil
	}
	aff, err := exprtree.ExtractAffine(node, s.Reg)
	if err != nil {
		return nil
	}
	return aff
}

// estimateTrip bounds the induction variable from the exit comparison:
// the loop continues while c·i + rest OP 0, rest evaluated over
// guard-refined intervals with known argument values substituted.
func (s *Summary) estimateTrip(l *Loop, cond *ir.Instr, contSide int, diff *linsolve.Affine) {
	c, ok := intervals.RatInt64(diff.Coeff(l.Key))
	if !ok || c == 0 {
		return
	}
	rest := diff.Clone()
	rest.AddScaled(linsolve.TermAffine(l.Key), new(big.Rat).Neg(diff.Coeff(l.Key)))
	restIv, ok := intervals.EvalAffine(rest, s.Reg, s.WG, s.argGuards())
	if !ok {
		return
	}
	op := cond.Op
	if contSide == 1 {
		switch op {
		case ir.OpLt:
			op = ir.OpGe
		case ir.OpLe:
			op = ir.OpGt
		case ir.OpGt:
			op = ir.OpLe
		case ir.OpGe:
			op = ir.OpLt
		default:
			return
		}
	}
	// Continue while c·i + rest OP 0 with OP ∈ {<, ≤, >, ≥, ≠}.
	// Normalize to a one-sided bound on c·i, taking the loosest value of
	// rest's range (most iterations) when it is not a single point.
	var bound int64
	var upper bool
	exact := restIv.Lo == restIv.Hi && !restIv.LoInf && !restIv.HiInf
	switch op {
	case ir.OpLt, ir.OpLe: // continue while c·i ≤ -rest (−1 for <)
		if restIv.LoInf {
			return
		}
		bound = -restIv.Lo
		if op == ir.OpLt {
			bound--
		}
		upper = true
	case ir.OpGt, ir.OpGe: // continue while c·i ≥ -rest (+1 for >)
		if restIv.HiInf {
			return
		}
		bound = -restIv.Hi
		if op == ir.OpGt {
			bound++
		}
		upper = false
	case ir.OpNe:
		// i != bound with a recognized step lands exactly on the bound.
		if !exact || !l.StepOK {
			return
		}
		bound = -restIv.Lo
		if l.Step > 0 {
			bound--
			upper = true
		} else {
			bound++
			upper = false
		}
	default:
		return
	}
	// bound is on c·i: translate to i.
	var iMax, iMin int64
	var haveMax, haveMin bool
	if upper {
		if c > 0 {
			iMax, haveMax = intervals.FloorDiv(bound, c), true
		} else {
			iMin, haveMin = intervals.CeilDiv(bound, c), true
		}
	} else {
		if c > 0 {
			iMin, haveMin = intervals.CeilDiv(bound, c), true
		} else {
			iMax, haveMax = intervals.FloorDiv(bound, c), true
		}
	}
	step := l.Step
	if !l.StepOK {
		step = 1
	}
	init := l.Init
	if !l.InitOK {
		init = 0
	}
	var trip int64
	switch {
	case step > 0 && haveMax:
		trip = (iMax-init)/step + 1
	case step < 0 && haveMin:
		trip = (init-iMin)/(-step) + 1
	default:
		return
	}
	if trip < 0 {
		trip = 0
	}
	if trip > MaxTrip {
		trip = MaxTrip
	}
	l.Trip = trip
	l.TripExact = exact && l.StepOK && l.InitOK
}

// argGuards turns known argument values into exact interval guards on
// their parameter terms.
func (s *Summary) argGuards() map[string]intervals.Interval {
	out := map[string]intervals.Interval{}
	if len(s.Opts.ArgInts) == 0 {
		return out
	}
	for key, t := range s.Reg.Terms() {
		p, ok := t.Rep.(*ir.Param)
		if !ok {
			continue
		}
		if v, has := s.Opts.ArgInts[p.Index]; has {
			out[key] = intervals.Exact(v)
		}
	}
	return out
}
