// Package memaccess is a whole-kernel static memory-access summary pass:
// it extends the analysis package's __local-only affine collector to
// every global, local, and private load and store, attaching to each an
// affine access function over work-item identities, group identities,
// and loop induction variables, plus per-dimension lane strides and
// per-loop iteration strides. Loops are discovered as natural loops over
// the dominator tree, induction variables recognized from their in-loop
// update stores, and trip counts estimated from the exit comparison with
// guard-refined interval analysis (the same machinery the bounds
// detector uses, shared via internal/analysis/intervals).
//
// The summary is the substrate for the internal/profit cost model, for
// the groverlint access detectors, and for `groverc -access` dumps. It
// deliberately does not import internal/analysis (which imports this
// package for its detectors); the small CFG it needs is built directly
// on internal/analysis/graph.
package memaccess

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"grover/internal/analysis/graph"
	"grover/internal/analysis/intervals"
	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// DefaultTrip is the iteration estimate for loops whose exit condition
// the analysis cannot bound.
const DefaultTrip = 64

// MaxTrip caps trip-count estimates so a mis-parsed bound cannot make
// the replay cost model spin.
const MaxTrip = 1 << 20

// Options configure a summary run.
type Options struct {
	// WorkGroup gives the launch's work-group extents when known; zero
	// entries default to 64×1×1 for sampling and intervals.
	WorkGroup [3]int
	// ArgInts supplies known scalar argument values by parameter index
	// (e.g. from an autotune request); they sharpen trip counts and guard
	// probabilities.
	ArgInts map[int]int64
	// DefaultTrip overrides the fallback loop trip estimate (0 keeps
	// DefaultTrip).
	DefaultTrip int64
}

// Access is one load or store whose pointer roots at a global pointer
// parameter or a __local/private alloca.
type Access struct {
	Instr *ir.Instr
	Block *ir.Block
	Store bool
	// Space is the address space of the accessed buffer.
	Space clc.AddrSpace
	// Bytes is the access width.
	Bytes int
	// Base is the pointer root: an *ir.Param or an alloca *ir.Instr.
	Base ir.Value
	// BaseName is the parameter or variable name of the base.
	BaseName string
	// Chain is the OpIndex path from the base, outermost first.
	Chain []*ir.Instr
	// Offset is the byte offset from the base as an affine form over the
	// summary registry's terms, nil when some index is non-affine.
	Offset *linsolve.Affine
	// Lane is the per-work-item byte stride per dimension (the
	// get_local_id and get_global_id coefficients folded); LaneOK is
	// false when a coefficient is fractional or the offset non-affine.
	Lane   [3]int64
	LaneOK bool
	// Loop is the innermost enclosing loop, nil at top level.
	Loop *Loop
	// IterStride maps each enclosing loop with a recognized induction
	// variable to the access's byte stride per iteration of that loop.
	IterStride map[*Loop]int64
	// Weight is the estimated execution probability of the access's
	// block within one traversal of its region (guard-refined).
	Weight float64
}

// Barrier is one work-group barrier site.
type Barrier struct {
	Instr  *ir.Instr
	Block  *ir.Block
	Loop   *Loop
	Weight float64
}

// Loop is one natural loop.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	Parent *Loop
	Depth  int
	// IndVar is the recognized induction variable's alloca, nil when the
	// exit condition did not expose one.
	IndVar *ir.Instr
	// Key is the registry term key of the induction variable.
	Key string
	// Init and Step describe the recognized i = Init; i += Step
	// recurrence; StepOK/InitOK report which halves were proven.
	Init   int64
	InitOK bool
	Step   int64
	StepOK bool
	// Trip estimates the iteration count (≥ 1); TripExact reports
	// whether it came from a fully-resolved bound rather than the
	// DefaultTrip fallback.
	Trip      int64
	TripExact bool
}

// Name renders the loop's induction variable (or header) for reports.
func (l *Loop) Name() string {
	if l.IndVar != nil && l.IndVar.VarName != "" {
		return l.IndVar.VarName
	}
	return l.Header.Name
}

// EventKind discriminates schedule events.
type EventKind int

const (
	// EvWork is a straight-line chunk: instruction and private-access
	// counts for issue-cost accounting.
	EvWork EventKind = iota
	// EvAccess is one global/local memory access.
	EvAccess
	// EvBarrier is a work-group barrier.
	EvBarrier
	// EvLoop descends into a nested loop region.
	EvLoop
)

// Event is one entry of a region's ordered schedule.
type Event struct {
	Kind    EventKind
	Access  *Access
	Barrier *Barrier
	Child   *Region
	// Instrs and PrivAccesses are set for EvWork.
	Instrs       int64
	PrivAccesses int64
	// Weight is the execution probability of the event's block within
	// one traversal of the region.
	Weight float64
}

// Region is the schedule of one loop body (or the function body for the
// root): events in reverse-post-order program order, nested loops as
// EvLoop children.
type Region struct {
	Loop   *Loop // nil for the function body
	Events []Event
}

// Summary is the whole-kernel access summary.
type Summary struct {
	Fn   *ir.Function
	Opts Options
	// WG is the effective work-group size (defaults applied).
	WG       [3]int
	Loops    []*Loop
	Accesses []*Access
	Barriers []*Barrier
	Root     *Region
	Reg      *exprtree.Registry
	TB       *exprtree.Builder
	// LocalBytes totals the __local allocations; LocalOffset places each
	// local alloca in a contiguous arena (mirroring the device
	// simulator's per-core local region).
	LocalBytes  int64
	LocalOffset map[*ir.Instr]int64
	// cfg state retained for evaluation.
	blocks  []*ir.Block
	index   map[*ir.Block]int
	succ    [][]int
	pred    [][]int
	dom     *graph.Tree
	inLoop  map[*ir.Block]*Loop // innermost
	weights map[*ir.Block]float64
}

// EffectiveWG applies the 64×1×1 default to unknown work-group extents.
func EffectiveWG(wg [3]int) [3]int {
	if wg[0] <= 0 {
		wg[0] = 64
	}
	if wg[1] <= 0 {
		wg[1] = 1
	}
	if wg[2] <= 0 {
		wg[2] = 1
	}
	return wg
}

// Summarize builds the access summary for one kernel.
func Summarize(fn *ir.Function, opts Options) *Summary {
	if opts.DefaultTrip <= 0 {
		opts.DefaultTrip = DefaultTrip
	}
	s := &Summary{
		Fn:          fn,
		Opts:        opts,
		WG:          EffectiveWG(opts.WorkGroup),
		Reg:         exprtree.NewRegistry(),
		TB:          exprtree.NewBuilder(fn),
		LocalOffset: map[*ir.Instr]int64{},
		inLoop:      map[*ir.Block]*Loop{},
		weights:     map[*ir.Block]float64{},
	}
	s.buildCFG()
	s.findLoops()
	s.computeWeights()
	s.placeLocals()
	s.buildSchedule()
	return s
}

// buildCFG indexes blocks and computes successors, predecessors and the
// dominator tree.
func (s *Summary) buildCFG() {
	s.blocks = s.Fn.Blocks
	s.index = make(map[*ir.Block]int, len(s.blocks))
	for i, b := range s.blocks {
		s.index[b] = i
	}
	s.succ = make([][]int, len(s.blocks))
	s.pred = make([][]int, len(s.blocks))
	for i, b := range s.blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for _, tgt := range t.Targets {
			j, ok := s.index[tgt]
			if !ok {
				continue
			}
			s.succ[i] = append(s.succ[i], j)
			s.pred[j] = append(s.pred[j], i)
		}
	}
	s.dom = graph.Dominators(len(s.blocks), s.succ, 0)
}

// placeLocals lays the __local allocas out in a contiguous arena,
// 16-byte aligned, recording per-alloca offsets and the total.
func (s *Summary) placeLocals() {
	var off int64
	for _, b := range s.blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpAlloca || in.Space != clc.ASLocal {
				continue
			}
			size := allocaBytes(in)
			s.LocalOffset[in] = off
			off += (size + 15) &^ 15
		}
	}
	s.LocalBytes = off
}

// allocaBytes is the allocation size of an alloca in bytes.
func allocaBytes(alloca *ir.Instr) int64 {
	pt, ok := alloca.Typ.(*clc.PointerType)
	if !ok {
		return 0
	}
	return int64(pt.Elem.Size())
}

// buildSchedule walks the blocks in reverse post-order, assigning each
// block's instructions to the region of its innermost loop and linking
// loop regions into their parents at the header's schedule position.
func (s *Summary) buildSchedule() {
	s.Root = &Region{}
	regions := map[*Loop]*Region{nil: s.Root}
	for _, l := range s.Loops {
		regions[l] = &Region{Loop: l}
	}
	linked := map[*Loop]bool{}
	order := graph.ReversePostOrder(len(s.blocks), s.succ, 0)
	for _, bi := range order {
		b := s.blocks[bi]
		l := s.inLoop[b]
		if l != nil && l.Header == b && !linked[l] {
			linked[l] = true
			parent := regions[l.Parent]
			parent.Events = append(parent.Events, Event{
				Kind: EvLoop, Child: regions[l], Weight: s.weights[b],
			})
		}
		s.scheduleBlock(regions[l], b)
	}
}

// scheduleBlock classifies one block's instructions into events.
func (s *Summary) scheduleBlock(r *Region, b *ir.Block) {
	w := s.weights[b]
	var work Event
	work.Kind = EvWork
	work.Weight = w
	flush := func() {
		if work.Instrs > 0 || work.PrivAccesses > 0 {
			r.Events = append(r.Events, work)
			work.Instrs, work.PrivAccesses = 0, 0
		}
	}
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpLoad, ir.OpStore:
			acc := s.collectAccess(in, b, w)
			if acc == nil {
				// Private scalar or unrooted pointer: flat-cost traffic.
				work.Instrs++
				work.PrivAccesses++
				continue
			}
			if acc.Space == clc.ASPrivate {
				work.Instrs++
				work.PrivAccesses++
				s.Accesses = append(s.Accesses, acc)
				continue
			}
			flush()
			s.Accesses = append(s.Accesses, acc)
			r.Events = append(r.Events, Event{Kind: EvAccess, Access: acc, Weight: w})
		case ir.OpBarrier:
			flush()
			bar := &Barrier{Instr: in, Block: b, Loop: s.inLoop[b], Weight: w}
			s.Barriers = append(s.Barriers, bar)
			r.Events = append(r.Events, Event{Kind: EvBarrier, Barrier: bar, Weight: w})
		case ir.OpAlloca:
			// Allocation is free.
		default:
			work.Instrs++
		}
	}
	flush()
}

// collectAccess builds the Access record for one load/store, or nil when
// the pointer does not root at a parameter or alloca.
func (s *Summary) collectAccess(in *ir.Instr, b *ir.Block, w float64) *Access {
	base, chain := pointerRoot(in.Args[0])
	if base == nil {
		return nil
	}
	acc := &Access{
		Instr: in, Block: b, Store: in.Op == ir.OpStore,
		Base: base, Chain: chain, Loop: s.inLoop[b], Weight: w,
		IterStride: map[*Loop]int64{},
	}
	switch v := base.(type) {
	case *ir.Param:
		acc.Space = v.Space
		acc.BaseName = v.Name_
	case *ir.Instr:
		acc.Space = v.Space
		acc.BaseName = v.VarName
	}
	if acc.Store {
		acc.Bytes = in.Args[1].Type().Size()
	} else {
		acc.Bytes = in.Typ.Size()
	}
	if acc.Space == clc.ASPrivate && len(chain) == 0 {
		// Direct scalar variable access: register-like, handled by the
		// caller as private traffic.
		return acc
	}
	acc.Offset = s.accessOffset(acc)
	if acc.Offset != nil {
		acc.Lane, acc.LaneOK = laneStrides(acc.Offset)
		for l := acc.Loop; l != nil; l = l.Parent {
			if l.Key == "" {
				continue
			}
			if c, ok := intervals.RatInt64(acc.Offset.Coeff(l.Key)); ok && c != 0 {
				acc.IterStride[l] = c
			}
		}
	}
	return acc
}

// pointerRoot walks OpIndex/OpConvert chains up to the pointer root,
// returning the root (an *ir.Param or alloca *ir.Instr, nil otherwise)
// and the index chain outermost first.
func pointerRoot(v ir.Value) (ir.Value, []*ir.Instr) {
	var rev []*ir.Instr
	for {
		switch x := v.(type) {
		case *ir.Param:
			if _, ok := x.Typ.(*clc.PointerType); !ok {
				return nil, nil
			}
			reverse(rev)
			return x, rev
		case *ir.Instr:
			switch x.Op {
			case ir.OpIndex:
				rev = append(rev, x)
				v = x.Args[0]
			case ir.OpConvert:
				v = x.Args[0]
			case ir.OpAlloca:
				reverse(rev)
				return x, rev
			default:
				return nil, nil
			}
		default:
			return nil, nil
		}
	}
}

func reverse(s []*ir.Instr) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// accessOffset computes the byte offset of the access from its base,
// Σ idx_k · step_k over the index chain, or nil when an index is not an
// affine function of the registry's terms.
func (s *Summary) accessOffset(acc *Access) *linsolve.Affine {
	total := linsolve.NewAffine()
	for _, idx := range acc.Chain {
		step := int64(ir.PointeeSize(idx.Args[0].Type()))
		node, err := s.TB.Build(idx.Args[1])
		if err != nil {
			return nil
		}
		aff, err := exprtree.ExtractAffine(node, s.Reg)
		if err != nil {
			return nil
		}
		total.AddScaled(aff, big.NewRat(step, 1))
	}
	return total
}

// laneStrides folds the per-work-item coefficients by dimension:
// get_global_id(d) varies with the work-item exactly like
// get_local_id(d) inside one work-group.
func laneStrides(aff *linsolve.Affine) (c [3]int64, ok bool) {
	for d := 0; d < 3; d++ {
		sum := new(big.Rat)
		sum.Add(sum, aff.Coeff(exprtree.LocalIDKey(d)))
		sum.Add(sum, aff.Coeff(exprtree.WorkItemKey("get_global_id", d)))
		v, exact := intervals.RatInt64(sum)
		if !exact {
			return c, false
		}
		c[d] = v
	}
	return c, true
}

// computeWeights estimates each block's execution probability within one
// traversal of its innermost region: a product over dominating guarded
// edges of the guard's probability, with loop-exit tests of enclosing
// loops skipped (iteration counts are the region's job).
func (s *Summary) computeWeights() {
	for bi, b := range s.blocks {
		if !s.dom.Reachable(bi) {
			s.weights[b] = 0
			continue
		}
		s.weights[b] = s.blockWeight(bi)
	}
}

func (s *Summary) blockWeight(bi int) float64 {
	w := 1.0
	target := s.blocks[bi]
	for anc := s.dom.Idom[bi]; anc >= 0; anc = s.dom.Idom[anc] {
		b := s.blocks[anc]
		term := b.Terminator()
		if term == nil || term.Op != ir.OpCondBr {
			continue
		}
		if l := s.exitTestLoop(b); l != nil && l.Blocks[target] {
			continue // trip guard of an enclosing loop
		}
		cond, ok := term.Args[0].(*ir.Instr)
		if !ok {
			continue
		}
		for side, tgt := range term.Targets {
			ti, known := s.index[tgt]
			if !known || len(s.pred[ti]) != 1 || !s.dom.Dominates(ti, bi) {
				continue
			}
			w *= s.guardProb(cond, side == 1)
		}
	}
	return w
}

// exitTestLoop returns the loop whose exit test block b is (a block of
// the loop with a successor outside it), or nil.
func (s *Summary) exitTestLoop(b *ir.Block) *Loop {
	l := s.inLoop[b]
	if l == nil {
		return nil
	}
	bi := s.index[b]
	for _, si := range s.succ[bi] {
		if !l.Blocks[s.blocks[si]] {
			return l
		}
	}
	return nil
}

// guardProb estimates the probability a comparison holds (negated for
// the false edge): for single-term conditions over terms with finite
// base intervals it is the refined range's fraction; parameters with
// known argument values decide exactly; everything else is assumed
// taken.
func (s *Summary) guardProb(cond *ir.Instr, negated bool) float64 {
	key, iv, ok := intervals.ConstraintFromCond(cond, negated, s.TB, s.Reg)
	if !ok {
		return 1
	}
	term := s.Reg.Term(key)
	if term == nil {
		return 1
	}
	if p, ok2 := term.Rep.(*ir.Param); ok2 {
		if v, has := s.Opts.ArgInts[p.Index]; has {
			if (iv.LoInf || v >= iv.Lo) && (iv.HiInf || v <= iv.Hi) {
				return 1
			}
			return 0
		}
		return 1
	}
	base := intervals.TermInterval(term, s.WG)
	if base.LoInf || base.HiInf {
		return 1
	}
	width := base.Hi - base.Lo + 1
	if width <= 0 {
		return 1
	}
	ref := base.Refine(iv)
	if ref.Hi < ref.Lo {
		return 0
	}
	return float64(ref.Hi-ref.Lo+1) / float64(width)
}

// ---------------------------------------------------------- rendering

// String renders the summary as a report: loops with their recurrences
// and trip estimates, then every access with its affine offset, lane
// strides, and loop strides.
func (s *Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s: work-group %dx%dx%d, %d accesses, %d barriers, %d loops, %d B local\n",
		s.Fn.Name, s.WG[0], s.WG[1], s.WG[2], len(s.Accesses), len(s.Barriers), len(s.Loops), s.LocalBytes)
	for _, l := range s.Loops {
		rec := "irregular"
		if l.StepOK {
			rec = fmt.Sprintf("%s = %d; %s += %d", l.Name(), l.Init, l.Name(), l.Step)
		}
		exact := "~"
		if l.TripExact {
			exact = "="
		}
		fmt.Fprintf(&sb, "  loop %s depth %d: %s, trip %s%d\n", l.Name(), l.Depth, rec, exact, l.Trip)
	}
	for _, a := range s.Accesses {
		if a.Space == clc.ASPrivate && len(a.Chain) == 0 {
			continue
		}
		kind := "load "
		if a.Store {
			kind = "store"
		}
		off := "non-affine"
		if a.Offset != nil {
			off = renderAffine(a.Offset, s.Reg)
		}
		fmt.Fprintf(&sb, "  %s %-8s %s[%s] %dB", kind, spaceName(a.Space), a.BaseName, off, a.Bytes)
		if a.LaneOK {
			fmt.Fprintf(&sb, " lane(%d,%d,%d)", a.Lane[0], a.Lane[1], a.Lane[2])
		}
		for l := a.Loop; l != nil; l = l.Parent {
			if st, ok := a.IterStride[l]; ok {
				fmt.Fprintf(&sb, " %s-stride %d", l.Name(), st)
			}
		}
		if a.Weight < 1 {
			fmt.Fprintf(&sb, " p=%.2f", a.Weight)
		}
		if a.Instr.Pos.Line > 0 {
			fmt.Fprintf(&sb, " @%s", a.Instr.Pos)
		}
		sb.WriteByte('\n')
	}
	for _, b := range s.Barriers {
		loop := "top level"
		if b.Loop != nil {
			loop = "loop " + b.Loop.Name()
		}
		fmt.Fprintf(&sb, "  barrier at %s (%s)\n", b.Instr.Pos, loop)
	}
	return sb.String()
}

// OffsetString renders an access's affine offset with the summary's
// display names ("non-affine" when extraction failed).
func (s *Summary) OffsetString(a *Access) string {
	if a.Offset == nil {
		return "non-affine"
	}
	return renderAffine(a.Offset, s.Reg)
}

func spaceName(sp clc.AddrSpace) string {
	switch sp {
	case clc.ASGlobal:
		return "global"
	case clc.ASLocal:
		return "local"
	case clc.ASConstant:
		return "constant"
	default:
		return "private"
	}
}

// renderAffine prints an affine form using the registry's display names,
// terms sorted for stable output.
func renderAffine(aff *linsolve.Affine, reg *exprtree.Registry) string {
	keys := aff.Terms()
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		c := aff.Coeff(k)
		name := k
		if t := reg.Term(k); t != nil && t.Name != "" {
			name = t.Name
		}
		if c.IsInt() && c.Num().IsInt64() && c.Num().Int64() == 1 {
			parts = append(parts, name)
		} else {
			parts = append(parts, c.RatString()+"·"+name)
		}
	}
	if aff.Const.Sign() != 0 || len(parts) == 0 {
		parts = append(parts, aff.Const.RatString())
	}
	return strings.Join(parts, " + ")
}
