// Tests live in an external package so fixtures can be compiled through
// the opencl facade (which transitively imports the analysis packages).
package memaccess_test

import (
	"strings"
	"testing"

	"grover/internal/analysis/memaccess"
	"grover/internal/clc"
	"grover/internal/ir"
	"grover/opencl"
)

func summarize(t *testing.T, source, kernel string, opts memaccess.Options) *memaccess.Summary {
	t.Helper()
	m, err := opencl.CompileModule("t.cl", source, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fn := m.Kernel(kernel)
	if fn == nil {
		t.Fatalf("no kernel %q", kernel)
	}
	return memaccess.Summarize(fn, opts)
}

const winsumSrc = `__kernel void winsum(__global float* out, __global float* a,
                     __global float* b, int n) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int grp = get_group_id(0);
    float acc = 0.0f;
    for (int i = 0; i < n; i++) {
        acc += a[gid*n + i] * b[grp*64 + lid];
    }
    out[gid] = acc;
}
`

func TestLoopTripFromArg(t *testing.T) {
	s := summarize(t, winsumSrc, "winsum", memaccess.Options{
		WorkGroup: [3]int{64, 1, 1},
		ArgInts:   map[int]int64{3: 96},
	})
	if len(s.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(s.Loops))
	}
	l := s.Loops[0]
	if l.IndVar == nil || l.IndVar.VarName != "i" {
		t.Fatalf("induction variable = %v, want i", l.IndVar)
	}
	if !l.StepOK || l.Step != 1 {
		t.Errorf("step = %d (ok=%v), want 1", l.Step, l.StepOK)
	}
	if !l.InitOK || l.Init != 0 {
		t.Errorf("init = %d (ok=%v), want 0", l.Init, l.InitOK)
	}
	if !l.TripExact || l.Trip != 96 {
		t.Errorf("trip = %d (exact=%v), want exact 96", l.Trip, l.TripExact)
	}
}

func TestLoopTripUnknownFallsBack(t *testing.T) {
	s := summarize(t, winsumSrc, "winsum", memaccess.Options{WorkGroup: [3]int{64, 1, 1}})
	if len(s.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(s.Loops))
	}
	l := s.Loops[0]
	if l.TripExact {
		t.Errorf("trip exact with unknown n")
	}
	if l.Trip != memaccess.DefaultTrip {
		t.Errorf("trip = %d, want default %d", l.Trip, memaccess.DefaultTrip)
	}
}

func TestLaneAndIterStrides(t *testing.T) {
	s := summarize(t, winsumSrc, "winsum", memaccess.Options{
		WorkGroup: [3]int{64, 1, 1},
		ArgInts:   map[int]int64{3: 96},
	})
	var bLoad, outStore *memaccess.Access
	for _, a := range s.Accesses {
		if a.Space != clc.ASGlobal {
			continue
		}
		switch {
		case a.BaseName == "b" && !a.Store:
			bLoad = a
		case a.BaseName == "out" && a.Store:
			outStore = a
		}
	}
	if bLoad == nil || outStore == nil {
		t.Fatalf("missing accesses: b=%v out=%v", bLoad, outStore)
	}
	if !bLoad.LaneOK || bLoad.Lane[0] != 4 {
		t.Errorf("b lane stride = %v (ok=%v), want 4", bLoad.Lane, bLoad.LaneOK)
	}
	if bLoad.Loop == nil {
		t.Fatalf("b load not inside the loop")
	}
	if st, ok := bLoad.IterStride[bLoad.Loop]; !ok || st != 0 {
		// b[grp*64+lid] is loop-invariant; a zero stride may be recorded
		// as absent.
		if ok {
			t.Errorf("b iter stride = %d, want 0/absent", st)
		}
	}
	if !outStore.LaneOK || outStore.Lane[0] != 4 {
		t.Errorf("out lane stride = %v (ok=%v), want 4", outStore.Lane, outStore.LaneOK)
	}
	if outStore.Loop != nil {
		t.Errorf("out store inside loop, want top level")
	}
	// a[gid*n+i]: the lowered gid is group*ls+lid, so gid*n multiplies
	// two non-constant terms involving lid — affine extraction must
	// refuse (the numeric evaluator still handles the address).
	var aLoad *memaccess.Access
	for _, a := range s.Accesses {
		if a.BaseName == "a" && !a.Store {
			aLoad = a
		}
	}
	if aLoad == nil {
		t.Fatalf("missing a load")
	}
	if aLoad.Offset != nil {
		t.Errorf("a load offset affine %v, want non-affine (lid inside a product)", aLoad.Offset)
	}
}

const tileSrc = `__kernel void tr(__global float* out, __global float* in, int w) {
    __local float tile[16][17];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    tile[ly][lx] = in[get_global_id(1)*w + get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)*w + get_global_id(1)] = tile[lx][ly];
}
`

func TestLocalArenaAndBarrier(t *testing.T) {
	s := summarize(t, tileSrc, "tr", memaccess.Options{WorkGroup: [3]int{16, 16, 1}})
	if s.LocalBytes < 16*17*4 {
		t.Errorf("local bytes = %d, want >= %d", s.LocalBytes, 16*17*4)
	}
	if len(s.Barriers) != 1 {
		t.Fatalf("barriers = %d, want 1", len(s.Barriers))
	}
	var tileStore, tileLoad *memaccess.Access
	for _, a := range s.Accesses {
		if a.Space != clc.ASLocal {
			continue
		}
		if a.Store {
			tileStore = a
		} else {
			tileLoad = a
		}
	}
	if tileStore == nil || tileLoad == nil {
		t.Fatalf("missing local accesses")
	}
	// tile[ly][lx]: lane strides 4 bytes in x, 17*4 in y.
	if !tileStore.LaneOK || tileStore.Lane[0] != 4 || tileStore.Lane[1] != 17*4 {
		t.Errorf("store lane = %v (ok=%v), want (4,68,0)", tileStore.Lane, tileStore.LaneOK)
	}
	// tile[lx][ly]: transposed.
	if !tileLoad.LaneOK || tileLoad.Lane[0] != 17*4 || tileLoad.Lane[1] != 4 {
		t.Errorf("load lane = %v (ok=%v), want (68,4,0)", tileLoad.Lane, tileLoad.LaneOK)
	}
}

const guardedSrc = `__kernel void g(__global float* out, __global float* in) {
    int lx = get_local_id(0);
    float v = in[get_global_id(0)];
    if (lx < 16) {
        out[get_global_id(0)] = v;
    }
}
`

func TestGuardWeight(t *testing.T) {
	s := summarize(t, guardedSrc, "g", memaccess.Options{WorkGroup: [3]int{64, 1, 1}})
	var store *memaccess.Access
	for _, a := range s.Accesses {
		if a.Store && a.Space == clc.ASGlobal {
			store = a
		}
	}
	if store == nil {
		t.Fatalf("missing guarded store")
	}
	if store.Weight < 0.24 || store.Weight > 0.26 {
		t.Errorf("guarded store weight = %g, want 0.25", store.Weight)
	}
}

func TestEvalAddresses(t *testing.T) {
	s := summarize(t, winsumSrc, "winsum", memaccess.Options{
		WorkGroup: [3]int{64, 1, 1},
		ArgInts:   map[int]int64{3: 96},
	})
	env := &memaccess.Env{
		WG:        s.WG,
		NumGroups: [3]int64{8, 1, 1},
		Lid:       [3]int64{5, 0, 0},
		Group:     [3]int64{0, 0, 0},
		Vars:      map[*ir.Instr]int64{},
		ArgInts:   map[int]int64{3: 96},
	}
	if len(s.Loops) == 1 && s.Loops[0].IndVar != nil {
		env.Vars[s.Loops[0].IndVar] = 2
	}
	var aLoad *memaccess.Access
	for _, a := range s.Accesses {
		if a.BaseName == "a" && !a.Store {
			aLoad = a
		}
	}
	if aLoad == nil {
		t.Fatalf("missing a load")
	}
	addr, ok := s.Addr(aLoad, env)
	if !ok {
		t.Fatalf("a address not evaluable")
	}
	// a[gid*96 + i] with gid=5, i=2 → element 482, byte 1928, plus the
	// parameter base.
	want := memaccess.ParamBase(1) + 482*4
	if addr != want {
		t.Errorf("a addr = %d, want %d", addr, want)
	}
}

func TestSummaryString(t *testing.T) {
	s := summarize(t, winsumSrc, "winsum", memaccess.Options{
		WorkGroup: [3]int{64, 1, 1},
		ArgInts:   map[int]int64{3: 96},
	})
	str := s.String()
	for _, want := range []string{"kernel winsum", "loop i", "trip =96", "global"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary dump missing %q:\n%s", want, str)
		}
	}
}
