package analysis

import (
	"fmt"

	"grover/internal/analysis/memaccess"
	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/memsim"
)

// Access-pattern detectors: opt-in performance lints backed by the
// static access summary (internal/analysis/memaccess). Unlike the
// default detectors these judge efficiency, not correctness, so they
// run only when Options.AccessChecks is set.
//
//   - uncoalesced-global: consecutive work-items touch non-consecutive
//     global addresses, so a GPU warp's access splits into many memory
//     transactions.
//   - local-bank-conflict: a warp's local (scratch-pad) access pattern
//     maps several lanes onto the same bank, serializing the access.
//   - barrier-no-comm: a barrier whose surrounding local-memory traffic
//     shows no cross-item communication — nothing is exchanged, so the
//     barrier (and possibly the staging) is overhead.

// lintBanks/lintBankWidth are the generic scratch-pad geometry the
// bank-conflict lint assumes (32 four-byte banks, the common case across
// the simulated GPU profiles).
const (
	lintBanks     = 32
	lintBankWidth = 4
	lintWarp      = 32
)

func checkAccessPatterns(fn *ir.Function, opts Options) []Finding {
	sum := memaccess.Summarize(fn, memaccess.Options{WorkGroup: opts.WorkGroupSize})
	var out []Finding
	out = append(out, checkCoalescing(sum)...)
	out = append(out, checkBankConflicts(sum)...)
	out = append(out, checkBarrierComm(sum)...)
	return out
}

// laneAddrs expands an access's dimension-0 lane stride over one row of
// work-items (up to lintWarp lanes). The lint deliberately judges only
// the within-row pattern: whether lanes from different rows share a warp
// depends on warp width and group shape, which the profitability model
// simulates exactly; a conventionally padded tile (e.g. 16×17) should
// not be flagged for a wraparound between rows.
func laneAddrs(sum *memaccess.Summary, a *memaccess.Access) []uint64 {
	n := sum.WG[0]
	if n > lintWarp {
		n = lintWarp
	}
	if n < 1 {
		n = 1
	}
	base := uint64(1) << 20
	out := make([]uint64, 0, n)
	for i := int64(0); i < int64(n); i++ {
		off := i * a.Lane[0]
		if off < 0 {
			off = -off
		}
		out = append(out, base+uint64(off))
	}
	return out
}

// checkCoalescing flags global accesses whose work-item stride is
// neither 0 (uniform broadcast) nor the element size (perfectly
// coalesced).
func checkCoalescing(sum *memaccess.Summary) []Finding {
	var out []Finding
	for _, a := range sum.Accesses {
		if a.Space != clc.ASGlobal || !a.LaneOK {
			continue
		}
		stride := a.Lane[0]
		if stride < 0 {
			stride = -stride
		}
		if stride == 0 || stride == int64(a.Bytes) {
			continue
		}
		verb := "reads"
		if a.Store {
			verb = "writes"
		}
		out = append(out, Finding{
			Detector: "uncoalesced-global",
			Severity: SeverityWarning,
			Kernel:   sum.Fn.Name,
			Pos:      a.Instr.Pos,
			Message: fmt.Sprintf(
				"uncoalesced global access: consecutive work-items access %s[%s] %d bytes apart (element size %d); a warp %s up to %d separate segments",
				a.BaseName, sum.OffsetString(a), stride, a.Bytes, verb, warpSegments(stride, a.Bytes)),
		})
	}
	return out
}

// warpSegments estimates how many 128-byte segments a 32-lane warp
// touches at the given stride.
func warpSegments(stride int64, bytes int) int {
	span := stride*(lintWarp-1) + int64(bytes)
	segs := int((span + 127) / 128)
	if segs < 1 {
		segs = 1
	}
	if segs > lintWarp {
		segs = lintWarp
	}
	return segs
}

// checkBankConflicts flags local accesses whose lane pattern maps
// multiple warp lanes onto the same scratch-pad bank.
func checkBankConflicts(sum *memaccess.Summary) []Finding {
	var out []Finding
	for _, a := range sum.Accesses {
		if a.Space != clc.ASLocal || !a.LaneOK {
			continue
		}
		deg := memsim.BankConflictDegree(laneAddrs(sum, a), lintBanks, lintBankWidth)
		if deg < 2 {
			continue
		}
		out = append(out, Finding{
			Detector: "local-bank-conflict",
			Severity: SeverityWarning,
			Kernel:   sum.Fn.Name,
			Pos:      a.Instr.Pos,
			Message: fmt.Sprintf(
				"local access %s[%s] has a %d-way bank conflict (lane stride %d over %d banks of %d bytes); pad the buffer to break the pattern",
				a.BaseName, sum.OffsetString(a), deg, a.Lane[0], lintBanks, lintBankWidth),
		})
	}
	return out
}

// checkBarrierComm flags barriers with no evidence of cross-item
// communication through local memory: no local traffic at all, one-way
// traffic (only stores or only loads), or loads that provably read back
// exactly what the same work-item wrote.
func checkBarrierComm(sum *memaccess.Summary) []Finding {
	if len(sum.Barriers) == 0 {
		return nil
	}
	var stores, loads []*memaccess.Access
	for _, a := range sum.Accesses {
		if a.Space != clc.ASLocal {
			continue
		}
		if a.Store {
			stores = append(stores, a)
		} else {
			loads = append(loads, a)
		}
	}
	reason := ""
	switch {
	case len(stores) == 0 && len(loads) == 0:
		reason = "the kernel never accesses __local memory"
	case len(loads) == 0:
		reason = "local memory is written but never read"
	case len(stores) == 0:
		reason = "local memory is read but never written"
	default:
		if selfCommunicationOnly(sum, stores, loads) {
			reason = "every local load reads the address the same work-item stored (no cross-item exchange)"
		}
	}
	if reason == "" {
		return nil
	}
	var out []Finding
	for _, b := range sum.Barriers {
		out = append(out, Finding{
			Detector: "barrier-no-comm",
			Severity: SeverityWarning,
			Kernel:   sum.Fn.Name,
			Pos:      b.Instr.Pos,
			Message:  "barrier synchronizes no communication: " + reason,
		})
	}
	return out
}

// selfCommunicationOnly reports whether every local load's affine offset
// exactly matches some store's offset — the "software cache of your own
// data" shape, where the barrier protects nothing. Any non-affine offset
// disables the conclusion.
func selfCommunicationOnly(sum *memaccess.Summary, stores, loads []*memaccess.Access) bool {
	written := map[string]bool{}
	for _, st := range stores {
		if st.Offset == nil {
			return false
		}
		written[st.BaseName+"|"+sum.OffsetString(st)] = true
	}
	for _, ld := range loads {
		if ld.Offset == nil {
			return false
		}
		if !written[ld.BaseName+"|"+sum.OffsetString(ld)] {
			return false
		}
	}
	return true
}
