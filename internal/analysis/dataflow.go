package analysis

import "grover/internal/ir"

// BitSet is a fixed-width bit vector, the lattice element of the generic
// dataflow solver.
type BitSet []uint64

// NewBitSet returns an empty set over n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports whether bit i is present.
func (b BitSet) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Clone returns a copy.
func (b BitSet) Clone() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// OrWith unions o into b, reporting whether b changed.
func (b BitSet) OrWith(o BitSet) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// ForwardProblem is a forward may-analysis with union confluence:
//
//	In[b]  = ∪ Out[p] over predecessors p
//	Out[b] = (In[b] \ Kill[b]) ∪ Gen[b]
type ForwardProblem struct {
	Bits      int
	Gen, Kill []BitSet
}

// SolveForward iterates the problem to fixpoint in reverse postorder and
// returns the In and Out sets per block.
func SolveForward(cfg *CFG, p *ForwardProblem) (in, out []BitSet) {
	n := len(cfg.Blocks)
	in = make([]BitSet, n)
	out = make([]BitSet, n)
	for i := 0; i < n; i++ {
		in[i] = NewBitSet(p.Bits)
		out[i] = NewBitSet(p.Bits)
	}
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, i)
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			for _, pr := range cfg.Pred[b] {
				if in[b].OrWith(out[pr]) {
					changed = true
				}
			}
			for i := range out[b] {
				n := in[b][i]&^p.Kill[b][i] | p.Gen[b][i]
				if n != out[b][i] {
					out[b][i] = n
					changed = true
				}
			}
		}
	}
	return in, out
}

// ReachingDefs computes which stores may be the last write to each
// private variable at every program point. Stores directly to an alloca
// (scalar variables) kill earlier stores to the same alloca; stores
// through an index chain (array elements) only generate.
type ReachingDefs struct {
	cfg *CFG
	// Defs are all stores rooted at an alloca, in block order.
	Defs []*ir.Instr
	idx  map[*ir.Instr]int
	// root maps each def to its base alloca.
	root map[*ir.Instr]*ir.Instr
	// byAlloca lists def indices per alloca.
	byAlloca map[*ir.Instr][]int
	in       []BitSet
}

// rootAlloca traces a pointer value through index/convert chains to its
// defining alloca, or nil when the base is a parameter or unknown.
func rootAlloca(v ir.Value) *ir.Instr {
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			return nil
		}
		switch in.Op {
		case ir.OpAlloca:
			return in
		case ir.OpIndex, ir.OpConvert:
			v = in.Args[0]
		default:
			return nil
		}
	}
}

// ComputeReachingDefs builds and solves the reaching-definitions problem
// over all alloca-rooted stores of cfg's function.
func ComputeReachingDefs(cfg *CFG) *ReachingDefs {
	rd := &ReachingDefs{
		cfg:      cfg,
		idx:      map[*ir.Instr]int{},
		root:     map[*ir.Instr]*ir.Instr{},
		byAlloca: map[*ir.Instr][]int{},
	}
	for _, b := range cfg.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpStore {
				continue
			}
			base := rootAlloca(in.Args[0])
			if base == nil {
				continue
			}
			rd.idx[in] = len(rd.Defs)
			rd.root[in] = base
			rd.byAlloca[base] = append(rd.byAlloca[base], len(rd.Defs))
			rd.Defs = append(rd.Defs, in)
		}
	}
	nb := len(cfg.Blocks)
	p := &ForwardProblem{Bits: len(rd.Defs), Gen: make([]BitSet, nb), Kill: make([]BitSet, nb)}
	for bi, b := range cfg.Blocks {
		gen := NewBitSet(len(rd.Defs))
		kill := NewBitSet(len(rd.Defs))
		for _, in := range b.Instrs {
			di, ok := rd.idx[in]
			if !ok {
				continue
			}
			rd.applyDef(in, di, gen, kill)
		}
		p.Gen[bi], p.Kill[bi] = gen, kill
	}
	rd.in, _ = SolveForward(cfg, p)
	return rd
}

// applyDef updates transfer sets for one def: a whole-variable store
// kills every other def of the alloca before generating itself.
func (rd *ReachingDefs) applyDef(in *ir.Instr, di int, gen, kill BitSet) {
	if in.Args[0] == ir.Value(rd.root[in]) {
		for _, other := range rd.byAlloca[rd.root[in]] {
			if other != di {
				gen[other/64] &^= 1 << (uint(other) % 64)
				kill.Set(other)
			}
		}
	}
	gen.Set(di)
	kill[di/64] &^= 1 << (uint(di) % 64)
}

// ReachingStores returns the stores to alloca that may reach the program
// point just before at.
func (rd *ReachingDefs) ReachingStores(at *ir.Instr, alloca *ir.Instr) []*ir.Instr {
	bi, ok := rd.cfg.Index[at.Block]
	if !ok {
		return nil
	}
	live := rd.in[bi].Clone()
	kill := NewBitSet(len(rd.Defs))
	for _, in := range at.Block.Instrs {
		if in == at {
			break
		}
		if di, isDef := rd.idx[in]; isDef {
			rd.applyDef(in, di, live, kill)
		}
	}
	var out []*ir.Instr
	for _, di := range rd.byAlloca[alloca] {
		if live.Get(di) {
			out = append(out, rd.Defs[di])
		}
	}
	return out
}
