package analysis

import (
	"grover/internal/analysis/graph"
	"grover/internal/ir"
)

// CFG is the control-flow graph of one function, indexed by block
// position, with dominator and post-dominator trees attached. It is the
// substrate every analysis in this package runs on.
type CFG struct {
	Fn     *ir.Function
	Blocks []*ir.Block
	// Index maps each block to its position in Blocks.
	Index map[*ir.Block]int
	// Succ and Pred are the adjacency lists by block index.
	Succ [][]int
	Pred [][]int
	// Dom is the dominator tree rooted at the entry block.
	Dom *graph.Tree
	// pdom is the post-dominator tree over len(Blocks)+1 nodes: node
	// len(Blocks) is a virtual exit joined from every return block, so
	// multi-exit functions still have a single post-dominance root.
	pdom *graph.Tree
}

// NewCFG builds the CFG, dominator tree and post-dominator tree of fn.
func NewCFG(fn *ir.Function) *CFG {
	c := &CFG{Fn: fn, Blocks: fn.Blocks, Index: map[*ir.Block]int{}}
	for i, b := range fn.Blocks {
		c.Index[b] = i
	}
	n := len(fn.Blocks)
	c.Succ = make([][]int, n)
	c.Pred = make([][]int, n)
	for i, b := range fn.Blocks {
		for _, s := range b.Succs() {
			j := c.Index[s]
			c.Succ[i] = append(c.Succ[i], j)
			c.Pred[j] = append(c.Pred[j], i)
		}
	}
	c.Dom = graph.Dominators(n, c.Succ, 0)
	rev := make([][]int, n+1)
	for u := 0; u < n; u++ {
		for _, v := range c.Succ[u] {
			rev[v] = append(rev[v], u)
		}
		if len(c.Succ[u]) == 0 {
			rev[n] = append(rev[n], u)
		}
	}
	c.pdom = graph.Dominators(n+1, rev, n)
	return c
}

// IPostDom returns the immediate post-dominator block index of b, or -1
// when the only post-dominator is the (virtual) exit — or none at all,
// as for blocks trapped in an infinite loop.
func (c *CFG) IPostDom(b int) int {
	ip := c.pdom.Idom[b]
	if ip < 0 || ip >= len(c.Blocks) {
		return -1
	}
	return ip
}

// DivergenceRegion returns the blocks whose execution depends on the
// branch terminating block b: everything reachable from b's successors
// without passing through b's immediate post-dominator (the reconvergence
// point, which itself executes regardless of the branch outcome). When b
// has no post-dominator inside the function the region is everything
// reachable from its successors.
func (c *CFG) DivergenceRegion(b int) []int {
	stop := c.IPostDom(b)
	seen := make([]bool, len(c.Blocks))
	var out, stack []int
	for _, s := range c.Succ[b] {
		if s != stop && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, s := range c.Succ[v] {
			if s != stop && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return out
}
