package grover

import (
	"strings"
	"testing"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/lower"
	"grover/internal/vm"
)

func compileModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := clc.Parse("test.cl", src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

// runKernel executes a kernel over float32 input/output buffers and
// returns the output contents.
type runSpec struct {
	kernel     string
	globalSize [3]int
	localSize  [3]int
	// buffers: name → initial float32 contents; outputs read back by name.
	argOrder []vm.Arg
	bufs     map[int][]float32 // arg index → initial data
	outIdx   int
	outLen   int
}

func runIt(t *testing.T, m *ir.Module, spec runSpec) []float32 {
	t.Helper()
	p, err := vm.Prepare(m)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	g := vm.NewGlobalMem(1 << 20)
	args := make([]vm.Arg, len(spec.argOrder))
	var outBuf *vm.Buffer
	for i, a := range spec.argOrder {
		if a.Kind == vm.ArgBuffer {
			data := spec.bufs[i]
			b := g.Alloc(len(data) * 4)
			b.WriteFloat32s(data)
			args[i] = vm.BufArg(b)
			if i == spec.outIdx {
				outBuf = b
			}
		} else {
			args[i] = a
		}
	}
	cfg := vm.Config{GlobalSize: spec.globalSize, LocalSize: spec.localSize, Args: args}
	if err := p.Launch(spec.kernel, cfg, g, nil); err != nil {
		t.Fatalf("launch %s: %v", spec.kernel, err)
	}
	return outBuf.ReadFloat32s(spec.outLen)
}

func seq(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(i%251) + 0.5
	}
	return out
}

// transformAndCompare transforms the kernel, runs both versions on the
// same inputs, and requires identical outputs.
func transformAndCompare(t *testing.T, src string, spec runSpec, opts Options) *Report {
	t.Helper()
	orig := compileModule(t, src)
	transformed := ir.CloneModule(orig)
	rep, err := TransformKernel(transformed, spec.kernel, opts)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if !rep.Transformed() {
		t.Fatalf("nothing transformed: %s", rep)
	}
	want := runIt(t, orig, spec)
	got := runIt(t, transformed, spec)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("output[%d]: transformed %g != original %g\nreport:\n%s", i, got[i], want[i], rep)
		}
	}
	return rep
}

const mtSrc = `
#define S 8
__kernel void transpose(__global float* out, __global float* in, int W, int H) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wy*S+ly)*W + (wx*S+lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];
    out[(wx*S+ly)*H + (wy*S+lx)] = val;
}
`

func TestTransformTranspose(t *testing.T) {
	const W, H = 32, 16
	spec := runSpec{
		kernel:     "transpose",
		globalSize: [3]int{W, H, 1},
		localSize:  [3]int{8, 8, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, vm.IntArg(W), vm.IntArg(H)},
		bufs:       map[int][]float32{0: make([]float32, W*H), 1: seq(W * H)},
		outIdx:     0,
		outLen:     W * H,
	}
	rep := transformAndCompare(t, mtSrc, spec, Options{})
	cr := rep.Candidates[0]
	if cr.Name != "lm" {
		t.Errorf("candidate name = %q", cr.Name)
	}
	// The solution must be the swap (lx := ly, ly := lx).
	if cr.Solution != "lx := ly, ly := lx" {
		t.Errorf("solution = %q", cr.Solution)
	}
	if rep.BarriersRemoved != 1 {
		t.Errorf("barriers removed = %d, want 1", rep.BarriersRemoved)
	}
	// The local alloca must be gone.
	fn := compileModule(t, mtSrc).Kernel("transpose")
	_ = fn
}

func TestTransformedIRHasNoLocal(t *testing.T) {
	m := compileModule(t, mtSrc)
	if _, err := TransformKernel(m, "transpose", Options{}); err != nil {
		t.Fatal(err)
	}
	if usesLocalMemory(m.Kernel("transpose")) {
		t.Error("transformed kernel still uses local memory")
	}
}

const mmSrc = `
#define S 4
__kernel void matmul(__global float* C, __global float* A, __global float* B,
                     int N, int K) {
    __local float As[S][S];
    __local float Bs[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    float acc = 0.0f;
    for (int i = 0; i < K/S; i++) {
        As[ly][lx] = A[gy*K + i*S + lx];
        Bs[ly][lx] = B[(i*S+ly)*N + gx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < S; k++) {
            acc += As[ly][k] * Bs[k][lx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[gy*N + gx] = acc;
}
`

func mmSpec(n, k int) runSpec {
	return runSpec{
		kernel:     "matmul",
		globalSize: [3]int{n, n, 1},
		localSize:  [3]int{4, 4, 1},
		argOrder: []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer},
			vm.IntArg(int64(n)), vm.IntArg(int64(k))},
		bufs:   map[int][]float32{0: make([]float32, n*n), 1: seq(n * k), 2: seq(k * n)},
		outIdx: 0,
		outLen: n * n,
	}
}

func TestTransformMatmulBoth(t *testing.T) {
	rep := transformAndCompare(t, mmSrc, mmSpec(16, 16), Options{})
	if len(rep.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2", len(rep.Candidates))
	}
	for _, c := range rep.Candidates {
		if !c.Transformed {
			t.Errorf("candidate %s not transformed: %s", c.Name, c.Reason)
		}
	}
	if rep.BarriersRemoved == 0 {
		t.Error("expected barrier removal when both tiles are disabled")
	}
}

func TestTransformMatmulOnlyA(t *testing.T) {
	rep := transformAndCompare(t, mmSrc, mmSpec(16, 16), Options{Candidates: []string{"As"}})
	var as, bs *CandidateReport
	for i := range rep.Candidates {
		switch rep.Candidates[i].Name {
		case "As":
			as = &rep.Candidates[i]
		case "Bs":
			bs = &rep.Candidates[i]
		}
	}
	if as == nil || !as.Transformed {
		t.Fatal("As not transformed")
	}
	if bs == nil || bs.Transformed {
		t.Fatal("Bs should not be transformed")
	}
	// Barriers must be preserved while Bs still uses local memory.
	if rep.BarriersRemoved != 0 {
		t.Errorf("barriers removed = %d, want 0 (Bs still staged)", rep.BarriersRemoved)
	}
}

func TestTransformMatmulOnlyB(t *testing.T) {
	transformAndCompare(t, mmSrc, mmSpec(16, 16), Options{Candidates: []string{"Bs"}})
}

// Shared-by-all-work-items staging (the AMD-SS / ROD-SC shape): group
// index does not appear, every work-item loads the same region.
const sharedSrc = `
#define P 16
__kernel void shared_pattern(__global float* out, __global float* pat, __global float* data, int n) {
    __local float lp[P];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    if (lx < P) lp[lx] = pat[lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int j = 0; j < P; j++) {
        acc += data[gx + j] * lp[j];
    }
    out[gx] = acc;
}
`

func TestTransformSharedPattern(t *testing.T) {
	const n = 64
	spec := runSpec{
		kernel:     "shared_pattern",
		globalSize: [3]int{n, 1, 1},
		localSize:  [3]int{16, 1, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, vm.IntArg(n)},
		bufs:       map[int][]float32{0: make([]float32, n), 1: seq(16), 2: seq(n + 16)},
		outIdx:     0,
		outLen:     n,
	}
	rep := transformAndCompare(t, sharedSrc, spec, Options{})
	// Solution must map lx := j (the loop variable term).
	if !strings.Contains(rep.Candidates[0].Solution, "lx := ") {
		t.Errorf("solution = %q", rep.Candidates[0].Solution)
	}
}

// Loop-dependent GL (NBody/AMD-MM shape): the staged region moves with an
// outer loop variable; the cloned load must re-read the loop variable.
const tiledSrc = `
#define S 8
__kernel void tiled(__global float* out, __global float* in, int n) {
    __local float tile[S];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    float acc = 0.0f;
    for (int t = 0; t < n/S; t++) {
        tile[lx] = in[t*S + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int j = 0; j < S; j++) {
            acc += tile[j] * 0.5f;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[gx] = acc;
}
`

func TestTransformLoopDependentGL(t *testing.T) {
	const n = 64
	spec := runSpec{
		kernel:     "tiled",
		globalSize: [3]int{n, 1, 1},
		localSize:  [3]int{8, 1, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, vm.IntArg(n)},
		bufs:       map[int][]float32{0: make([]float32, n), 1: seq(n)},
		outIdx:     0,
		outLen:     n,
	}
	transformAndCompare(t, tiledSrc, spec, Options{})
}

// 1D flattened 2D indexing (the paper's "+→*" pattern, Fig. 7a).
const flatSrc = `
#define S 8
__kernel void flat(__global float* out, __global float* in, int W) {
    __local float lm[S*S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly*S + lx] = in[(wy*S+ly)*W + wx*S + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(wy*S+ly)*W + wx*S + lx] = lm[lx*S + ly] + lm[ly*S + lx];
}
`

func TestTransformFlattened2D(t *testing.T) {
	const W, H = 16, 16
	spec := runSpec{
		kernel:     "flat",
		globalSize: [3]int{W, H, 1},
		localSize:  [3]int{8, 8, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, vm.IntArg(W)},
		bufs:       map[int][]float32{0: make([]float32, W*H), 1: seq(W * H)},
		outIdx:     0,
		outLen:     W * H,
	}
	rep := transformAndCompare(t, flatSrc, spec, Options{})
	if rep.Candidates[0].NumLL != 2 {
		t.Errorf("NumLL = %d, want 2", rep.Candidates[0].NumLL)
	}
}

func TestNotReversibleReduction(t *testing.T) {
	// Local memory as read/write temporal storage (reduction): the staged
	// value reads local memory; Grover must refuse (paper §VI-D).
	src := `
__kernel void reduce(__global float* in, __global float* out) {
    __local float sm[64];
    int lx = get_local_id(0);
    sm[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = 32; s > 0; s >>= 1) {
        if (lx < s) sm[lx] += sm[lx + s];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lx == 0) out[get_group_id(0)] = sm[0];
}
`
	m := compileModule(t, src)
	rep, err := TransformKernel(m, "reduce", Options{})
	if err != nil {
		t.Fatalf("non-strict mode should not fail: %v", err)
	}
	if rep.Transformed() {
		t.Fatal("reduction must not be transformed")
	}
	if rep.Candidates[0].Reason == "" {
		t.Error("missing skip reason")
	}
	// Strict mode surfaces the error.
	m2 := compileModule(t, src)
	if _, err := TransformKernel(m2, "reduce", Options{Strict: true}); err == nil {
		t.Fatal("strict mode should report ErrNotReversible")
	}
}

func TestNotReversibleNonUniqueSystem(t *testing.T) {
	// LS index lx+ly is a singular 1-equation system in two unknowns when
	// the GL depends on both.
	src := `
__kernel void k(__global float* out, __global float* in) {
    __local float lm[16];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    lm[lx + ly] = in[get_global_id(1)*8 + get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(1)*8 + get_global_id(0)] = lm[lx];
}
`
	m := compileModule(t, src)
	rep, err := TransformKernel(m, "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transformed() {
		t.Fatal("singular system must not transform")
	}
}

func TestNoCandidates(t *testing.T) {
	src := `__kernel void k(__global float* a) { a[get_global_id(0)] = 1.0f; }`
	m := compileModule(t, src)
	if _, err := TransformKernel(m, "k", Options{}); err != ErrNoCandidates {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestKeepBarriersOption(t *testing.T) {
	m := compileModule(t, mtSrc)
	rep, err := TransformKernel(m, "transpose", Options{KeepBarriers: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BarriersRemoved != 0 {
		t.Error("KeepBarriers violated")
	}
}

func TestCloneAllAblation(t *testing.T) {
	m1 := compileModule(t, mtSrc)
	rep1, err := TransformKernel(m1, "transpose", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := compileModule(t, mtSrc)
	rep2, err := TransformKernel(m2, "transpose", Options{CloneAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Candidates[0].ClonedInstrs <= rep1.Candidates[0].ClonedInstrs {
		t.Errorf("clone-all should duplicate more instructions: %d vs %d",
			rep2.Candidates[0].ClonedInstrs, rep1.Candidates[0].ClonedInstrs)
	}
}

func TestReportRendering(t *testing.T) {
	m := compileModule(t, mtSrc)
	rep, err := TransformKernel(m, "transpose", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, frag := range []string{"kernel transpose", "__local lm", "GL", "LS", "LL", "nGL", "solution"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
	cr := rep.Candidates[0]
	if cr.LS != "(ly, lx)" {
		t.Errorf("LS = %q, want (ly, lx)", cr.LS)
	}
	if len(cr.LL) != 1 || cr.LL[0] != "(lx, ly)" {
		t.Errorf("LL = %v, want [(lx, ly)]", cr.LL)
	}
}

func TestFindCandidatesRejectsEscape(t *testing.T) {
	src := `
void helper(__local float* p) { p[0] = 1.0f; }
__kernel void k(__global float* out) {
    __local float lm[8];
    helper(lm);
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[0];
}
`
	m := compileModule(t, src)
	cands := FindCandidates(m.Kernel("k"))
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].Reject == "" {
		t.Error("escaping local pointer must be rejected")
	}
}
