package grover

import (
	"math/big"
	"strings"
	"testing"

	"grover/internal/exprtree"
	"grover/internal/linsolve"
	"grover/internal/vm"
)

func aff(terms map[string]int64, c int64) *linsolve.Affine {
	a := linsolve.NewAffine()
	for k, v := range terms {
		a.AddScaled(linsolve.TermAffine(k), big.NewRat(v, 1))
	}
	a.Const.SetInt64(c)
	return a
}

func TestInferStrides(t *testing.T) {
	lx := exprtree.LocalIDKey(0)
	ly := exprtree.LocalIDKey(1)
	cases := []struct {
		name string
		off  *linsolve.Affine
		elem int64
		want []int64
	}{
		{"flattened 2D", aff(map[string]int64{lx: 4, ly: 64}, 0), 4, []int64{64, 4}},
		{"with constant", aff(map[string]int64{lx: 8, ly: 128}, 24), 8, []int64{128, 8}},
		{"single id", aff(map[string]int64{lx: 4}, 0), 4, nil},
		{"non-chain", aff(map[string]int64{lx: 12, ly: 64}, 0), 4, nil}, // 64 % 12 != 0
		{"needs elem append", aff(map[string]int64{lx: 16, ly: 256}, 0), 4, []int64{256, 16, 4}},
	}
	for _, c := range cases {
		got := inferStrides(c.off, c.elem)
		if len(got) != len(c.want) {
			t.Errorf("%s: inferStrides = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: inferStrides = %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}

func TestSystemSquare(t *testing.T) {
	lx := exprtree.LocalIDKey(0)
	ly := exprtree.LocalIDKey(1)
	// (ly, lx): two rows, two unknowns → square.
	if !systemSquare([]*linsolve.Affine{aff(map[string]int64{ly: 1}, 0), aff(map[string]int64{lx: 1}, 0)}) {
		t.Error("2 rows / 2 unknowns should be square")
	}
	// (lx+ly): one row, two unknowns → not square.
	if systemSquare([]*linsolve.Affine{aff(map[string]int64{lx: 1, ly: 1}, 0)}) {
		t.Error("1 row / 2 unknowns should not be square")
	}
	// Constant row + lx row: square (constant rows become constraints).
	if !systemSquare([]*linsolve.Affine{aff(nil, 3), aff(map[string]int64{lx: 1}, 0)}) {
		t.Error("constant rows should not count as equations")
	}
}

func TestRequireIntegral(t *testing.T) {
	ok := aff(map[string]int64{"x": 2}, 3)
	if err := requireIntegral(ok); err != nil {
		t.Errorf("integral affine rejected: %v", err)
	}
	bad := linsolve.NewAffine()
	bad.AddScaled(linsolve.TermAffine("x"), big.NewRat(1, 2))
	if err := requireIntegral(bad); err == nil {
		t.Error("half coefficient accepted")
	}
	bad2 := linsolve.NewAffine()
	bad2.Const.SetFrac64(1, 3)
	if err := requireIntegral(bad2); err == nil {
		t.Error("fractional constant accepted")
	}
}

func TestTransform3DLocalArray(t *testing.T) {
	src := `
__kernel void k(__global float* out, __global float* in, int W) {
    __local float lm[4][4][4];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int lz = get_local_id(2);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gz = get_global_id(2);
    lm[lz][ly][lx] = in[(gz*W + gy)*W + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(gz*W + gy)*W + gx] = lm[lx][lz][ly];
}
`
	m := compileModule(t, src)
	rep, err := TransformKernel(m, "k", Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Transformed() {
		t.Fatal("3D candidate not transformed")
	}
	sol := rep.Candidates[0].Solution
	// lm[lz][ly][lx]=f(l) read as lm[lx][lz][ly]: lz:=lx, ly:=lz, lx:=ly.
	for _, frag := range []string{"lx := ly", "ly := lz", "lz := lx"} {
		if !strings.Contains(sol, frag) {
			t.Errorf("3D solution %q missing %q", sol, frag)
		}
	}
}

func TestPerLLStorePairing(t *testing.T) {
	// Two staging stores at offsets 0 and 1; each LL must pair with the
	// store whose system solves integrally for it (the AMD-MT shape).
	src := `
#define S 8
__kernel void k(__global float* out, __global float* in) {
    __local float lm[2*S];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[2*lx + 0] = in[2*gx + 0];
    lm[2*lx + 1] = in[2*gx + 1];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[2*gx + 0] = lm[2*lx + 1];
    out[2*gx + 1] = lm[2*lx + 0];
}
`
	m := compileModule(t, src)
	fn := m.Kernel("k")
	rep, err := TransformKernel(m, "k", Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Transformed() {
		t.Fatalf("not transformed:\n%s", rep)
	}
	if usesLocalMemory(fn) {
		t.Error("local memory should be fully removed")
	}
	if rep.Candidates[0].NumLS != 2 || rep.Candidates[0].NumLL != 2 {
		t.Errorf("NumLS/NumLL = %d/%d, want 2/2",
			rep.Candidates[0].NumLS, rep.Candidates[0].NumLL)
	}
}

func TestNegativeCoefficientSolution(t *testing.T) {
	// lm[S-1-lx] staging: solution lx := S-1-x_LL with a negative
	// coefficient; the materializer must emit the negation correctly.
	src := `
#define S 16
__kernel void k(__global float* out, __global float* in) {
    __local float lm[S];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[S - 1 - lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[lx];
}
`
	m := compileModule(t, src)
	rep, err := TransformKernel(m, "k", Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Candidates[0].Solution, "lx := ") {
		t.Fatalf("solution missing: %s", rep)
	}
	// Execute and compare: out[gx] must equal in at the mirrored lane.
	transformAndCompare(t, src, runSpec{
		kernel:     "k",
		globalSize: [3]int{32, 1, 1},
		localSize:  [3]int{16, 1, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}},
		bufs:       map[int][]float32{0: make([]float32, 32), 1: seq(32)},
		outIdx:     0,
		outLen:     32,
	}, Options{})
}

func TestGLDependsOnUndeterminedLocalID(t *testing.T) {
	// The staged value depends on ly but the store index only determines
	// lx → not reversible.
	src := `
__kernel void k(__global float* out, __global float* in, int W) {
    __local float lm[16];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    lm[lx] = in[ly*W + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[ly*W + lx] = lm[lx];
}
`
	m := compileModule(t, src)
	rep, err := TransformKernel(m, "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transformed() {
		t.Fatal("undetermined ly in GL must block the transformation")
	}
	if !strings.Contains(rep.Candidates[0].Reason, "get_local_id(1)") {
		t.Errorf("reason %q should name the undetermined dimension", rep.Candidates[0].Reason)
	}
}

func TestScaledIndexIntegralSolution(t *testing.T) {
	// lm[2*lx] staged, lm[2*j] loaded: lx := j — integral, must transform.
	src := `
__kernel void k(__global float* out, __global float* in) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[2*lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int j = 0; j < 32; j++) {
        acc += lm[2*j];
    }
    out[gx] = acc;
}
`
	transformAndCompare(t, src, runSpec{
		kernel:     "k",
		globalSize: [3]int{32, 1, 1},
		localSize:  [3]int{32, 1, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}},
		bufs:       map[int][]float32{0: make([]float32, 32), 1: seq(32)},
		outIdx:     0,
		outLen:     32,
	}, Options{})
}

func TestScaledIndexNonIntegralRejected(t *testing.T) {
	// lm[2*lx] staged but lm[j] loaded: lx := j/2 — non-integral.
	src := `
__kernel void k(__global float* out, __global float* in) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[2*lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int j = 0; j < 64; j++) {
        acc += lm[j];
    }
    out[gx] = acc;
}
`
	m := compileModule(t, src)
	rep, err := TransformKernel(m, "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transformed() {
		t.Fatal("non-integral solution must not transform")
	}
}
