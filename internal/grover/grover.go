package grover

import (
	"fmt"
	"sort"
	"strings"

	"grover/internal/debug"
	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// Options control the pass.
type Options struct {
	// Candidates restricts the transformation to the named __local
	// variables (e.g. only matrix A's tile). Empty means all candidates.
	Candidates []string
	// KeepBarriers disables barrier elision (ablation).
	KeepBarriers bool
	// CloneAll disables shared-subexpression reuse in Algorithm 1
	// (ablation): every node of the GL tree is duplicated.
	CloneAll bool
	// Strict makes the pass fail when any selected candidate is not
	// reversible; otherwise such candidates are skipped and reported.
	Strict bool
}

// CandidateReport describes the analysis and transformation of one
// candidate (one row of the paper's Table III).
type CandidateReport struct {
	Name string
	// GL, LS, LL and NGL are symbolic index expressions.
	GL  string
	LS  string
	LL  []string
	NGL []string
	// Solution renders the solved (lx, ly, lz) correspondence.
	Solution string
	// Pattern classifies the LS index tree (paper Fig. 7).
	Pattern exprtree.PatternKind
	// Transformed reports whether local memory was removed for this
	// candidate; Reason explains a skip and ReasonCode is its
	// machine-readable classification.
	Transformed bool
	Reason      string
	ReasonCode  RejectCode
	// ClonedInstrs counts instructions duplicated by Algorithm 1.
	ClonedInstrs int
	// NumLS and NumLL count the store/load sites.
	NumLS, NumLL int
}

// Report summarizes one kernel transformation.
type Report struct {
	Kernel     string
	Candidates []CandidateReport
	// BarriersRemoved counts elided barriers.
	BarriersRemoved int
	// DeadInstrsRemoved counts instructions removed by the cleanup DCE.
	DeadInstrsRemoved int
}

// Transformed reports whether any candidate was rewritten.
func (r *Report) Transformed() bool {
	for _, c := range r.Candidates {
		if c.Transformed {
			return true
		}
	}
	return false
}

// String renders the report as a small table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s:\n", r.Kernel)
	for _, c := range r.Candidates {
		status := "transformed"
		if !c.Transformed {
			status = "skipped: " + c.Reason
		}
		fmt.Fprintf(&sb, "  __local %s [%s]\n", c.Name, status)
		if c.GL != "" {
			fmt.Fprintf(&sb, "    GL  %s\n", c.GL)
			fmt.Fprintf(&sb, "    LS  %s\n", c.LS)
			for i, ll := range c.LL {
				fmt.Fprintf(&sb, "    LL  %s\n", ll)
				if i < len(c.NGL) {
					fmt.Fprintf(&sb, "    nGL %s\n", c.NGL[i])
				}
			}
			if c.Solution != "" {
				fmt.Fprintf(&sb, "    solution %s\n", c.Solution)
			}
		}
	}
	fmt.Fprintf(&sb, "  barriers removed: %d, dead instructions removed: %d\n",
		r.BarriersRemoved, r.DeadInstrsRemoved)
	return sb.String()
}

// ErrNoCandidates is returned by TransformKernel when the kernel has no
// __local data structures to disable.
var ErrNoCandidates = fmt.Errorf("grover: kernel uses no local memory")

// TransformKernel runs the full pass over one kernel of m, mutating m in
// place. Callers that need the original should transform an ir.CloneModule
// copy (the top-level grover package does this).
func TransformKernel(m *ir.Module, kernel string, opts Options) (*Report, error) {
	fn := m.Kernel(kernel)
	if fn == nil {
		return nil, fmt.Errorf("grover: no kernel %q in module", kernel)
	}
	cands := FindCandidates(fn)
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	selected := func(c *Candidate) bool {
		if len(opts.Candidates) == 0 {
			return true
		}
		for _, n := range opts.Candidates {
			if n == c.Name {
				return true
			}
		}
		return false
	}
	rep := &Report{Kernel: kernel}
	tb := exprtree.NewBuilder(fn)
	anyTransformed := false
	for _, c := range cands {
		cr := CandidateReport{Name: c.Name, NumLS: len(c.Stores), NumLL: len(c.Loads)}
		if !selected(c) {
			cr.Reason = "not selected"
			cr.ReasonCode = RejectNotSelected
			rep.Candidates = append(rep.Candidates, cr)
			continue
		}
		a, err := analyzeCandidate(tb, c)
		if err != nil {
			if opts.Strict {
				return rep, err
			}
			cr.Reason = err.Error()
			cr.ReasonCode = rejectCodeOf(err)
			rep.Candidates = append(rep.Candidates, cr)
			continue
		}
		fillReportAnalysis(&cr, a)
		cloned, err := transformCandidate(fn, a, opts.CloneAll)
		cr.ClonedInstrs = cloned
		if err != nil {
			return rep, fmt.Errorf("grover: transforming %s: %w", c.Name, err)
		}
		cr.Transformed = true
		anyTransformed = true
		rep.Candidates = append(rep.Candidates, cr)
		if debug.Verify {
			fn.AssignIDs()
			if err := ir.VerifyFunc(fn); err != nil {
				return rep, fmt.Errorf("grover: rewriting %s produced invalid IR: %w", c.Name, err)
			}
		}
		// The tree builder caches store analysis; rebuild after mutation.
		tb = exprtree.NewBuilder(fn)
	}
	if anyTransformed {
		rep.DeadInstrsRemoved = eliminateDeadCode(fn)
		if !opts.KeepBarriers && !usesLocalMemory(fn) {
			rep.BarriersRemoved = removeLocalBarriers(fn)
			rep.DeadInstrsRemoved += eliminateDeadCode(fn)
		}
		fn.AssignIDs()
		if err := ir.VerifyFunc(fn); err != nil {
			return rep, fmt.Errorf("grover: transformation produced invalid IR: %w", err)
		}
	}
	return rep, nil
}

// fillReportAnalysis renders the Table III style symbolic indices.
func fillReportAnalysis(cr *CandidateReport, a *analysis) {
	first := a.stores[0]
	cr.GL = exprtree.Render(first.glTree)
	cr.LS = renderNamedDims(first.lsDims, a.reg)
	// Classify the flattened (last) LS index tree against Fig. 7 patterns.
	if n := len(first.st.IndexChain); n > 0 {
		cr.Pattern = exprtree.PatternFlat
		idxVal := first.st.IndexChain[n-1].Args[1]
		tb := exprtree.NewBuilder(first.st.Instr.Block.Fn)
		if node, err := tb.Build(idxVal); err == nil {
			cr.Pattern = exprtree.MatchPattern(node)
		}
	}
	tbLL := exprtree.NewBuilder(a.cand.Alloca.Block.Fn)
	for _, ll := range a.cand.Loads {
		plan := a.plans[ll.Instr]
		llOff, err := offsetAffine(tbLL, ll, a.reg)
		if err == nil {
			if dims, derr := linsolve.DecomposeByStrides(llOff, plan.store.strides); derr == nil {
				cr.LL = append(cr.LL, renderNamedDims(dims, a.reg))
			}
		}
		cr.NGL = append(cr.NGL, renderSubstitutedGL(a, plan))
	}
	// Render the solution of the first LL.
	if len(a.cand.Loads) > 0 {
		sol := a.plans[a.cand.Loads[0].Instr].sol
		var parts []string
		var dims []int
		for d := range sol {
			dims = append(dims, d)
		}
		sort.Ints(dims)
		names := [3]string{"lx", "ly", "lz"}
		for _, d := range dims {
			parts = append(parts, fmt.Sprintf("%s := %s", names[d], renderAffine(sol[d], a.reg)))
		}
		cr.Solution = strings.Join(parts, ", ")
	}
}

func renderDims(dims []*linsolve.Affine) string {
	var parts []string
	for _, d := range dims {
		parts = append(parts, d.String())
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// renderAffine renders an affine form using display names from the
// registry instead of raw term keys.
func renderAffine(a *linsolve.Affine, reg *exprtree.Registry) string {
	s := a.String()
	for key, t := range reg.Terms() {
		s = strings.ReplaceAll(s, key, t.Name)
	}
	return s
}

func renderNamedDims(dims []*linsolve.Affine, reg *exprtree.Registry) string {
	var parts []string
	for _, d := range dims {
		parts = append(parts, renderAffine(d, reg))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// renderSubstitutedGL renders the GL tree with local ids replaced by their
// solutions — the symbolic nGL column of Table III.
func renderSubstitutedGL(a *analysis, plan *llPlan) string {
	s := exprtree.Render(plan.store.glTree)
	names := [3]string{"lx", "ly", "lz"}
	// Two-phase substitution so a solution mentioning another local id
	// (e.g. lx := ly, ly := lx in transpose) is not rewritten twice.
	for d := range plan.sol {
		s = strings.ReplaceAll(s, names[d], fmt.Sprintf("\x00%d\x00", d))
	}
	for d, aff := range plan.sol {
		s = strings.ReplaceAll(s, fmt.Sprintf("\x00%d\x00", d), "("+renderAffine(aff, a.reg)+")")
	}
	return s
}
