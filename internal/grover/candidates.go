// Package grover implements the paper's core contribution: the compiler
// pass that disables local-memory usage in OpenCL kernels. It detects the
// software-cache staging pattern (global load GL → local store LS →
// barrier → local load LL), derives the local↔global index correspondence
// by solving an exact linear system (paper §III-B), duplicates the global
// load's instruction tree in front of every local load (Algorithm 1), and
// removes the now-dead stores, allocations and barriers.
package grover

import (
	"fmt"

	"grover/internal/clc"
	"grover/internal/ir"
)

// Access is one local-memory access (an LS store or LL load) on a
// candidate data structure.
type Access struct {
	// Instr is the load or store instruction.
	Instr *ir.Instr
	// IndexChain are the OpIndex instructions from the alloca (outermost
	// first) forming the access path.
	IndexChain []*ir.Instr
}

// RejectCode is a machine-readable reason a candidate was not rewritable.
// Every bail-out path of the matcher and the correspondence analysis maps
// to exactly one code, so callers (the legality detector, AutoTuneAll
// logs, the lint endpoint) can report *why* the pass did not fire instead
// of silently skipping.
type RejectCode string

// Reject codes. The empty code means the candidate is rewritable.
const (
	RejectNone RejectCode = ""

	// Matcher-stage rejections (FindCandidates).
	RejectEscapeIndexOperand RejectCode = "escape-index-operand"
	RejectEscapeStored       RejectCode = "escape-stored"
	RejectEscapeCall         RejectCode = "escape-call"
	RejectUnsupportedUse     RejectCode = "unsupported-use"
	RejectNoStores           RejectCode = "no-stores"
	RejectNoLoads            RejectCode = "no-loads"

	// Analysis-stage rejections (analyzeCandidate).
	RejectTemporalStorage  RejectCode = "temporal-storage"
	RejectNonAffineIndex   RejectCode = "non-affine-index"
	RejectUnderdetermined  RejectCode = "underdetermined-system"
	RejectNonSquareSystem  RejectCode = "non-square-system"
	RejectGLUndetermined   RejectCode = "gl-local-id-undetermined"
	RejectDimMismatch      RejectCode = "dimension-mismatch"
	RejectNonIntegral      RejectCode = "non-integral-solution"
	RejectNoCorrespondence RejectCode = "no-correspondence"

	// RejectNotSelected marks candidates excluded by Options.Candidates.
	RejectNotSelected RejectCode = "not-selected"
)

// Candidate is one __local data structure eligible for reversal.
type Candidate struct {
	// Alloca is the local array's allocation.
	Alloca *ir.Instr
	// Name is the source variable name.
	Name string
	// Strides are the byte strides of each array dimension, outermost
	// first; the last entry is the element size.
	Strides []int64
	// Extents are the dimension lengths matching Strides.
	Extents []int
	// ElemType is the array element type.
	ElemType clc.Type
	// Stores are the LS operations, Loads the LL operations.
	Stores []*Access
	Loads  []*Access
	// Reject, when non-empty, is the reason code for why the candidate
	// cannot be analyzed (uses escape, no staging stores, ...);
	// RejectDetail carries the human-readable specifics.
	Reject       RejectCode
	RejectDetail string
}

// reject records a bail-out reason on the candidate.
func (c *Candidate) reject(code RejectCode, format string, args ...interface{}) *Candidate {
	c.Reject = code
	c.RejectDetail = fmt.Sprintf(format, args...)
	return c
}

// FindCandidates scans a kernel for __local data structures and collects
// their access sets. Candidates whose pointers escape (address passed to a
// call, stored, or otherwise not a plain index/load/store chain) are
// returned with Reject set.
func FindCandidates(fn *ir.Function) []*Candidate {
	var out []*Candidate
	for _, blk := range fn.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpAlloca && in.Space == clc.ASLocal {
				out = append(out, buildCandidate(fn, in))
			}
		}
	}
	return out
}

// arrayLayout derives strides and extents from the allocated type.
func arrayLayout(t clc.Type) (strides []int64, extents []int, elem clc.Type) {
	for {
		at, ok := t.(*clc.ArrayType)
		if !ok {
			break
		}
		extents = append(extents, at.Len)
		t = at.Elem
	}
	elem = t
	strides = make([]int64, len(extents))
	if len(extents) == 0 {
		// __local scalar: a single element.
		extents = []int{1}
		strides = []int64{int64(elem.Size())}
		return strides, extents, elem
	}
	s := int64(elem.Size())
	for i := len(extents) - 1; i >= 0; i-- {
		strides[i] = s
		s *= int64(extents[i])
	}
	return strides, extents, elem
}

func buildCandidate(fn *ir.Function, alloca *ir.Instr) *Candidate {
	pt := alloca.Typ.(*clc.PointerType)
	strides, extents, elem := arrayLayout(pt.Elem)
	c := &Candidate{
		Alloca:   alloca,
		Name:     alloca.VarName,
		Strides:  strides,
		Extents:  extents,
		ElemType: elem,
	}
	// Walk all uses transitively: alloca → (index | convert)* → load/store.
	type workItem struct {
		val   ir.Value
		chain []*ir.Instr
	}
	queue := []workItem{{val: alloca}}
	seen := map[*ir.Instr]bool{}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		for _, blk := range fn.Blocks {
			for _, in := range blk.Instrs {
				uses := false
				for _, a := range in.Args {
					if a == w.val {
						uses = true
						break
					}
				}
				if !uses || seen[in] {
					continue
				}
				switch in.Op {
				case ir.OpIndex:
					if in.Args[0] != w.val {
						return c.reject(RejectEscapeIndexOperand, "local pointer used as an index operand")
					}
					seen[in] = true
					chain := append(append([]*ir.Instr{}, w.chain...), in)
					queue = append(queue, workItem{val: in, chain: chain})
				case ir.OpConvert:
					seen[in] = true
					queue = append(queue, workItem{val: in, chain: w.chain})
				case ir.OpLoad:
					c.Loads = append(c.Loads, &Access{Instr: in, IndexChain: w.chain})
				case ir.OpStore:
					if in.Args[1] == w.val {
						return c.reject(RejectEscapeStored, "local pointer value is stored to memory (escapes)")
					}
					c.Stores = append(c.Stores, &Access{Instr: in, IndexChain: w.chain})
				case ir.OpCall:
					return c.reject(RejectEscapeCall, "local pointer passed to function %s", in.Callee.Name)
				default:
					return c.reject(RejectUnsupportedUse, "local pointer used by unsupported op %s", in.Op)
				}
			}
		}
	}
	if len(c.Stores) == 0 {
		return c.reject(RejectNoStores, "no stores to local data structure")
	}
	if len(c.Loads) == 0 {
		return c.reject(RejectNoLoads, "no loads from local data structure")
	}
	return c
}
