package grover

import (
	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/ir"
)

// BufferLegality is the machine-readable verdict for one __local buffer
// Grover considered: whether the pass could rewrite it and, if not, the
// reject code and human-readable detail explaining why.
type BufferLegality struct {
	// Kernel is the kernel function name.
	Kernel string `json:"kernel"`
	// Name is the __local variable name; Pos its declaration site.
	Name string  `json:"name"`
	Pos  clc.Pos `json:"pos"`
	// Rewritable reports whether the correspondence analysis succeeded.
	Rewritable bool `json:"rewritable"`
	// Code classifies the rejection (RejectNone when rewritable).
	Code RejectCode `json:"code,omitempty"`
	// Detail is the human-readable rejection reason.
	Detail string `json:"detail,omitempty"`
	// NumLS and NumLL count the staging store and load sites found.
	NumLS int `json:"num_ls"`
	NumLL int `json:"num_ll"`
}

// ExplainKernel runs the candidate matcher and correspondence analysis
// over one kernel without mutating it, returning one verdict per __local
// buffer. This is the Grover-legality detector's backend: it answers "why
// did (or didn't) the pass fire" for every candidate.
func ExplainKernel(fn *ir.Function) []BufferLegality {
	var out []BufferLegality
	tb := exprtree.NewBuilder(fn)
	for _, c := range FindCandidates(fn) {
		v := BufferLegality{
			Kernel: fn.Name,
			Name:   c.Name,
			Pos:    c.Alloca.Pos,
			NumLS:  len(c.Stores),
			NumLL:  len(c.Loads),
		}
		if _, err := analyzeCandidate(tb, c); err != nil {
			v.Code = rejectCodeOf(err)
			v.Detail = err.Error()
		} else {
			v.Rewritable = true
		}
		out = append(out, v)
	}
	return out
}
