package grover

import (
	"errors"
	"fmt"
	"math/big"

	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// ErrNotReversible is returned when Grover cannot build the local↔global
// correspondence for a candidate — the linear system has no unique
// solution, the solution is non-integral, or the staged value depends on a
// local id the system does not determine (paper §III-B: "when the system
// does not have a unique solution, Grover will not be able to cancel the
// use of the local memory").
type ErrNotReversible struct {
	Candidate string
	Code      RejectCode
	Reason    string
}

func (e *ErrNotReversible) Error() string {
	return fmt.Sprintf("grover: candidate %q is not reversible: %s", e.Candidate, e.Reason)
}

// codedErr tags an analysis failure with its machine-readable reject code
// so notReversible can classify without string matching.
type codedErr struct {
	code RejectCode
	err  error
}

func (e *codedErr) Error() string { return e.err.Error() }
func (e *codedErr) Unwrap() error { return e.err }

func coded(code RejectCode, format string, args ...interface{}) error {
	return &codedErr{code: code, err: fmt.Errorf(format, args...)}
}

// rejectCodeOf classifies an analysis error into a RejectCode.
func rejectCodeOf(err error) RejectCode {
	var nr *ErrNotReversible
	if errors.As(err, &nr) && nr.Code != RejectNone {
		return nr.Code
	}
	var ce *codedErr
	if errors.As(err, &ce) {
		return ce.code
	}
	var na *exprtree.ErrNonAffine
	if errors.As(err, &na) {
		return RejectNonAffineIndex
	}
	return RejectNoCorrespondence
}

// notReversible wraps an analysis error as ErrNotReversible for one
// candidate, classifying its reject code.
func notReversible(c *Candidate, err error) error {
	return &ErrNotReversible{Candidate: c.Name, Code: rejectCodeOf(err), Reason: err.Error()}
}

// row is one equation of the linear system: local-id coefficients plus the
// local-id-free remainder of an LS dimension index.
type row struct {
	coeffs map[int]*big.Rat
	rest   *linsolve.Affine
}

// storePlan is the analyzed form of one LS store: its GL expression tree
// and the linear system its index induces (paper Eq. 2).
type storePlan struct {
	st     *Access
	glTree *exprtree.Node
	// strides used for index decomposition (declared shape, or virtual
	// strides inferred for flattened indices per Fig. 7).
	strides []int64
	lsDims  []*linsolve.Affine
	rows    []row
	// sysRowIdx are the indices of rows carrying local-id terms; mat is
	// the square coefficient matrix over unknowns.
	sysRowIdx []int
	mat       [][]*big.Rat
	unknowns  []int
}

// llPlan pairs one LL with the store whose system solved for it.
type llPlan struct {
	store *storePlan
	sol   map[int]*linsolve.Affine
}

// analysis is the per-candidate result of the correspondence derivation.
type analysis struct {
	cand   *Candidate
	reg    *exprtree.Registry
	stores []*storePlan
	plans  map[*ir.Instr]*llPlan
}

// offsetAffine computes the byte-offset affine of an access path from the
// candidate base: Σ idx_k · step_k over the index chain.
func offsetAffine(tb *exprtree.Builder, acc *Access, reg *exprtree.Registry) (*linsolve.Affine, error) {
	total := linsolve.NewAffine()
	for _, idx := range acc.IndexChain {
		step := int64(ir.PointeeSize(idx.Args[0].Type()))
		node, err := tb.Build(idx.Args[1])
		if err != nil {
			return nil, err
		}
		aff, err := exprtree.ExtractAffine(node, reg)
		if err != nil {
			return nil, err
		}
		total.AddScaled(aff, big.NewRat(step, 1))
	}
	return total, nil
}

// localIDCoeffs splits an affine form into get_local_id coefficients per
// dimension plus the local-id-free remainder.
func localIDCoeffs(a *linsolve.Affine) (coeffs map[int]*big.Rat, rest *linsolve.Affine) {
	coeffs = map[int]*big.Rat{}
	rest = a.Clone()
	for d := 0; d < 3; d++ {
		key := exprtree.LocalIDKey(d)
		c := rest.Coeff(key)
		if c.Sign() != 0 {
			coeffs[d] = new(big.Rat).Set(c)
			rest.AddScaled(linsolve.TermAffine(key), new(big.Rat).Neg(c))
		}
	}
	return coeffs, rest
}

// systemSquare reports whether the decomposed LS dimensions give as many
// local-id-bearing equations as distinct local-id unknowns.
func systemSquare(dims []*linsolve.Affine) bool {
	unknowns := map[int]bool{}
	eqs := 0
	for _, d := range dims {
		cf, _ := localIDCoeffs(d)
		if len(cf) > 0 {
			eqs++
		}
		for u := range cf {
			unknowns[u] = true
		}
	}
	return eqs == len(unknowns)
}

// inferStrides derives virtual strides from the distinct local-id
// coefficient magnitudes of a flattened LS offset (descending), requiring
// a divisibility chain ending at the element size. Returns nil when no
// valid chain exists.
func inferStrides(off *linsolve.Affine, elemStride int64) []int64 {
	seen := map[int64]bool{}
	var coeffs []int64
	for d := 0; d < 3; d++ {
		c := off.Coeff(exprtree.LocalIDKey(d))
		if c.Sign() == 0 {
			continue
		}
		if !c.IsInt() {
			return nil
		}
		v := new(big.Int).Abs(c.Num()).Int64()
		if v != 0 && !seen[v] {
			seen[v] = true
			coeffs = append(coeffs, v)
		}
	}
	if len(coeffs) < 2 {
		return nil
	}
	sortDesc(coeffs)
	if coeffs[len(coeffs)-1]%elemStride != 0 {
		return nil
	}
	if coeffs[len(coeffs)-1] != elemStride {
		coeffs = append(coeffs, elemStride)
	}
	for i := 0; i+1 < len(coeffs); i++ {
		if coeffs[i]%coeffs[i+1] != 0 {
			return nil
		}
	}
	return coeffs
}

func sortDesc(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func requireIntegral(a *linsolve.Affine) error {
	if !a.Const.IsInt() {
		return fmt.Errorf("solution %s has a non-integral constant", a)
	}
	for _, k := range a.Terms() {
		if !a.Coeff(k).IsInt() {
			return fmt.Errorf("solution %s has a non-integral coefficient", a)
		}
	}
	return nil
}

// buildStorePlan analyzes one LS store into a solvable system (paper S1).
func buildStorePlan(tb *exprtree.Builder, c *Candidate, st *Access, reg *exprtree.Registry) (*storePlan, error) {
	glTree, err := tb.Build(st.Instr.Args[1])
	if err != nil {
		return nil, err
	}
	lsOff, err := offsetAffine(tb, st, reg)
	if err != nil {
		return nil, err
	}
	strides := c.Strides
	lsDims, err := linsolve.DecomposeByStrides(lsOff, strides)
	if err != nil {
		return nil, err
	}
	if !systemSquare(lsDims) {
		inferred := inferStrides(lsOff, c.Strides[len(c.Strides)-1])
		if inferred == nil {
			return nil, coded(RejectUnderdetermined, "store index %s yields an underdetermined system", lsOff)
		}
		dims2, err2 := linsolve.DecomposeByStrides(lsOff, inferred)
		if err2 != nil || !systemSquare(dims2) {
			return nil, coded(RejectUnderdetermined, "store index %s yields an underdetermined system", lsOff)
		}
		strides, lsDims = inferred, dims2
	}
	sp := &storePlan{st: st, glTree: glTree, strides: strides, lsDims: lsDims}
	dimSet := map[int]bool{}
	for _, dimAff := range lsDims {
		cf, rest := localIDCoeffs(dimAff)
		sp.rows = append(sp.rows, row{coeffs: cf, rest: rest})
		for d := range cf {
			dimSet[d] = true
		}
	}
	for d := 0; d < 3; d++ {
		if dimSet[d] {
			sp.unknowns = append(sp.unknowns, d)
		}
	}
	for i := range sp.rows {
		if len(sp.rows[i].coeffs) != 0 {
			sp.sysRowIdx = append(sp.sysRowIdx, i)
		}
	}
	if len(sp.sysRowIdx) != len(sp.unknowns) {
		return nil, coded(RejectNonSquareSystem, "system is not square: %d equations with local-id terms, %d unknowns",
			len(sp.sysRowIdx), len(sp.unknowns))
	}
	sp.mat = make([][]*big.Rat, len(sp.sysRowIdx))
	for i, ri := range sp.sysRowIdx {
		sp.mat[i] = make([]*big.Rat, len(sp.unknowns))
		for j, d := range sp.unknowns {
			if cf, ok := sp.rows[ri].coeffs[d]; ok {
				sp.mat[i][j] = cf
			} else {
				sp.mat[i][j] = new(big.Rat)
			}
		}
	}
	if err := checkGLLocalIDs(sp, c); err != nil {
		return nil, err
	}
	return sp, nil
}

// solveForLL solves the store's system for one LL (paper S2): the LL index
// dimensions are the constant terms, and the solution must be integral and
// consistent on the constraint rows.
func solveForLL(tb *exprtree.Builder, sp *storePlan, ll *Access, reg *exprtree.Registry) (map[int]*linsolve.Affine, error) {
	llOff, err := offsetAffine(tb, ll, reg)
	if err != nil {
		return nil, err
	}
	llDims, err := linsolve.DecomposeByStrides(llOff, sp.strides)
	if err != nil {
		return nil, err
	}
	// Constraint rows: the store's local-id-free dimensions must match the
	// load's exactly (e.g. lm[0][lx] loaded as lm[0][j]).
	for i, r := range sp.rows {
		if len(r.coeffs) != 0 {
			continue
		}
		if !r.rest.Equal(llDims[i]) {
			return nil, coded(RejectDimMismatch, "dimension %d mismatch: store index %s vs load index %s",
				i, r.rest, llDims[i])
		}
	}
	if len(sp.unknowns) == 0 {
		return map[int]*linsolve.Affine{}, nil
	}
	rhs := make([]*linsolve.Affine, len(sp.sysRowIdx))
	for k, i := range sp.sysRowIdx {
		// a_i·l + rest_i = LL_i  →  a_i·l = LL_i − rest_i
		rhs[k] = llDims[i].Clone().Sub(sp.rows[i].rest)
	}
	sol, err := linsolve.Solve(sp.mat, rhs)
	if err != nil {
		return nil, err
	}
	solved := map[int]*linsolve.Affine{}
	for j, d := range sp.unknowns {
		if err := requireIntegral(sol[j]); err != nil {
			return nil, &codedErr{code: RejectNonIntegral, err: err}
		}
		solved[d] = sol[j]
	}
	return solved, nil
}

// checkGLLocalIDs verifies every get_local_id dimension used by the GL
// expression is determined by the store's system.
func checkGLLocalIDs(sp *storePlan, c *Candidate) error {
	solvedSet := map[int]bool{}
	for _, d := range sp.unknowns {
		solvedSet[d] = true
	}
	var bad []int
	sp.glTree.Walk(func(n *exprtree.Node) {
		in := n.Instr()
		if in == nil || in.Op != ir.OpWorkItem || in.Func != "get_local_id" {
			return
		}
		dim := 0
		if len(in.Args) == 1 {
			if cst, ok := in.Args[0].(*ir.ConstInt); ok {
				dim = int(cst.Val)
			}
		}
		if !solvedSet[dim] {
			bad = append(bad, dim)
		}
	})
	if len(bad) > 0 {
		return coded(RejectGLUndetermined, "global load depends on get_local_id(%d) which the store index does not determine", bad[0])
	}
	return nil
}

// validateGLTree rejects staged values whose computation has side effects
// or reads local memory (the read/write temporal-storage use-case the
// paper excludes, §VI-D).
func validateGLTree(n *exprtree.Node, c *Candidate) error {
	var bad error
	n.Walk(func(node *exprtree.Node) {
		in := node.Instr()
		if in == nil || bad != nil {
			return
		}
		switch in.Op {
		case ir.OpCall:
			bad = coded(RejectTemporalStorage, "staged value calls function %s", in.Callee.Name)
		case ir.OpLoad:
			if ir.PointerSpace(in.Args[0].Type()) == clc.ASLocal {
				bad = coded(RejectTemporalStorage, "staged value reads local memory (temporal-storage pattern)")
			}
		case ir.OpAlloca:
			if in.Space == clc.ASLocal {
				bad = coded(RejectTemporalStorage, "staged value references local memory")
			}
		}
	})
	return bad
}

// analyzeCandidate derives the correspondence for one candidate: one plan
// per LL, pairing it with a compatible LS. The paper picks "any one"
// (GL, LS) pair because in its benchmarks all pairs agree; here each LL is
// matched to the first store whose system solves integrally and
// consistently for it, which also covers vector kernels staging a block
// with several stores.
func analyzeCandidate(tb *exprtree.Builder, c *Candidate) (*analysis, error) {
	if c.Reject != RejectNone {
		return nil, &ErrNotReversible{Candidate: c.Name, Code: c.Reject, Reason: c.RejectDetail}
	}
	reg := exprtree.NewRegistry()
	a := &analysis{cand: c, reg: reg, plans: map[*ir.Instr]*llPlan{}}

	// Purity first: every store must stage a local-memory-free, call-free
	// value, or the whole candidate is the temporal-storage pattern.
	for _, st := range c.Stores {
		tree, err := tb.Build(st.Instr.Args[1])
		if err != nil {
			return nil, err
		}
		if verr := validateGLTree(tree, c); verr != nil {
			return nil, notReversible(c, verr)
		}
	}
	var planErr error
	for _, st := range c.Stores {
		sp, err := buildStorePlan(tb, c, st, reg)
		if err != nil {
			planErr = err
			continue
		}
		a.stores = append(a.stores, sp)
	}
	if len(a.stores) == 0 {
		return nil, notReversible(c, planErr)
	}
	for _, ll := range c.Loads {
		var lastErr error
		for _, sp := range a.stores {
			sol, err := solveForLL(tb, sp, ll, reg)
			if err != nil {
				lastErr = err
				continue
			}
			a.plans[ll.Instr] = &llPlan{store: sp, sol: sol}
			break
		}
		if a.plans[ll.Instr] == nil {
			return nil, notReversible(c, lastErr)
		}
	}
	return a, nil
}
