package grover

import (
	"fmt"

	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
	"grover/internal/opt"
)

// materializer emits the instructions computing an affine solution value in
// front of an LL instruction, reusing already-emitted sub-values.
type materializer struct {
	fn  *ir.Function
	at  *ir.Instr // insertion point (the LL instruction)
	reg *exprtree.Registry
	dom *opt.Dominance
	// termVals caches the long-typed value of each term at the insertion
	// point.
	termVals map[string]ir.Value
}

func newMaterializer(fn *ir.Function, at *ir.Instr, reg *exprtree.Registry, dom *opt.Dominance) *materializer {
	return &materializer{fn: fn, at: at, reg: reg, dom: dom, termVals: map[string]ir.Value{}}
}

func (mz *materializer) insert(in *ir.Instr) *ir.Instr { return ir.InsertBefore(mz.at, in) }

// termValue materializes one term as a long value valid at the insertion
// point.
func (mz *materializer) termValue(key string) (ir.Value, error) {
	if v, ok := mz.termVals[key]; ok {
		return v, nil
	}
	t := mz.reg.Term(key)
	if t == nil {
		return nil, fmt.Errorf("grover: unknown term %q", key)
	}
	var v ir.Value
	switch {
	case t.WorkItemFn != "":
		// Emit a fresh work-item query: always valid anywhere.
		wi := mz.insert(&ir.Instr{
			Op: ir.OpWorkItem, Typ: clc.TypeULong, Func: t.WorkItemFn,
			Args: []ir.Value{ir.IntConst(int64(t.Dim))}, Pos: mz.at.Pos,
		})
		v = wi
	default:
		switch rep := t.Rep.(type) {
		case *ir.Param:
			v = rep
		case *ir.Instr:
			if rep.Op == ir.OpLoad {
				if src, ok := rep.Args[0].(*ir.Instr); ok && src.Op == ir.OpAlloca {
					// Re-load the variable at the LL point: between the
					// staging store and the dependent local load the
					// variable is unchanged (they are separated only by a
					// barrier), so the fresh load observes the same value.
					v = mz.insert(&ir.Instr{Op: ir.OpLoad, Typ: rep.Typ, Args: []ir.Value{src}, Pos: mz.at.Pos})
					break
				}
			}
			// Reference the defining instruction directly; it dominates
			// the LL in the supported staging pattern (GL/LS precede the
			// barrier that precedes LL).
			v = rep
		default:
			v = t.Rep
		}
	}
	lv := mz.toLong(v)
	mz.termVals[key] = lv
	return lv, nil
}

// toLong converts v to a 64-bit signed value.
func (mz *materializer) toLong(v ir.Value) ir.Value {
	st, ok := v.Type().(*clc.ScalarType)
	if ok && st.Kind == clc.KLong {
		return v
	}
	return mz.insert(&ir.Instr{Op: ir.OpConvert, Typ: clc.TypeLong, Args: []ir.Value{v}, Pos: mz.at.Pos})
}

// affineValue materializes an affine form as a long value.
func (mz *materializer) affineValue(a *linsolve.Affine) (ir.Value, error) {
	var acc ir.Value
	add := func(v ir.Value) {
		if acc == nil {
			acc = v
			return
		}
		acc = mz.insert(&ir.Instr{Op: ir.OpAdd, Typ: clc.TypeLong, Args: []ir.Value{acc, v}, Pos: mz.at.Pos})
	}
	for _, key := range a.Terms() {
		coeff := a.Coeff(key)
		tv, err := mz.termValue(key)
		if err != nil {
			return nil, err
		}
		c := coeff.Num().Int64() // integrality checked during analysis
		var term ir.Value = tv
		switch c {
		case 1:
		case -1:
			term = mz.insert(&ir.Instr{Op: ir.OpNeg, Typ: clc.TypeLong, Args: []ir.Value{tv}, Pos: mz.at.Pos})
		default:
			term = mz.insert(&ir.Instr{Op: ir.OpMul, Typ: clc.TypeLong,
				Args: []ir.Value{tv, ir.LongConst(c)}, Pos: mz.at.Pos})
		}
		add(term)
	}
	if !a.Const.IsInt() {
		return nil, fmt.Errorf("grover: non-integral constant in solution %s", a)
	}
	if cv := a.Const.Num().Int64(); cv != 0 || acc == nil {
		add(ir.LongConst(cv))
	}
	return acc, nil
}

// duplicator implements Algorithm 1: clone the marked part of the GL tree
// in front of an LL, substituting solved local-id leaves and reusing
// unmarked subexpressions.
type duplicator struct {
	mz *materializer
	// sol maps local-id dimension to its materialized ULong value.
	sol map[int]ir.Value
	// cloneAll disables subexpression reuse (ablation mode).
	cloneAll bool
	// cloned counts duplicated instructions.
	cloned int
	// dom validates that reused values dominate the insertion point.
	dom *opt.Dominance
}

// reusable reports whether an existing instruction's value may be
// referenced at the insertion point (its block must dominate the LL's).
func (du *duplicator) reusable(in *ir.Instr) bool {
	if du.dom == nil {
		return true
	}
	return du.dom.Dominates(in.Block, du.mz.at.Block)
}

// duplicate returns a value computing node's expression at the insertion
// point (paper Algorithm 1).
func (du *duplicator) duplicate(node *exprtree.Node) (ir.Value, error) {
	in := node.Instr()
	if in == nil {
		return node.Value, nil // constants, parameters
	}
	if !node.State && !du.cloneAll {
		// Reuse the shared subexpression (paper §IV-E: "We reuse the
		// sub-expressions that are shared by the GL instruction and the
		// nGL instruction when it is not required to update the node").
		if !du.reusable(in) {
			return nil, fmt.Errorf("grover: shared subexpression %%%d does not dominate the local load (conditional staging?)", in.ID)
		}
		return in, nil
	}
	// Local-id leaves are replaced by the solution.
	if in.Op == ir.OpWorkItem && in.Func == "get_local_id" {
		dim := 0
		if len(in.Args) == 1 {
			if c, ok := in.Args[0].(*ir.ConstInt); ok {
				dim = int(c.Val)
			}
		}
		v, ok := du.sol[dim]
		if !ok {
			return nil, fmt.Errorf("grover: no solution for get_local_id(%d)", dim)
		}
		return v, nil
	}
	if node.IsLeaf() {
		// Other leaves: clone loads of variables so the value is read at
		// the LL point; reuse everything else.
		if in.Op == ir.OpLoad {
			if src, ok := in.Args[0].(*ir.Instr); ok && src.Op == ir.OpAlloca {
				du.cloned++
				return du.mz.insert(&ir.Instr{Op: ir.OpLoad, Typ: in.Typ, Args: []ir.Value{src}, Pos: du.mz.at.Pos}), nil
			}
		}
		if !du.reusable(in) {
			return nil, fmt.Errorf("grover: leaf value %%%d does not dominate the local load (conditional staging?)", in.ID)
		}
		return in, nil
	}
	// Internal marked node: clone with duplicated children (post-order).
	args := make([]ir.Value, 0, len(in.Args))
	childIdx := 0
	for _, a := range in.Args {
		// Tree children correspond 1:1 with operand positions except for
		// forwarded loads; the tree builder never drops operands of
		// internal nodes, so positions align.
		if childIdx < len(node.Children) && node.Children[childIdx] != nil {
			v, err := du.duplicate(node.Children[childIdx])
			if err != nil {
				return nil, err
			}
			args = append(args, v)
			childIdx++
		} else {
			args = append(args, a)
		}
	}
	clone := &ir.Instr{
		Op: in.Op, Typ: in.Typ, Func: in.Func, Callee: in.Callee,
		Space: in.Space, VarName: in.VarName, Pos: du.mz.at.Pos,
	}
	if len(in.Comps) > 0 {
		clone.Comps = append([]int(nil), in.Comps...)
	}
	clone.Args = args
	du.cloned++
	return du.mz.insert(clone), nil
}

// transformCandidate rewrites every LL of an analyzed candidate (S3–S4 and
// §IV-E/F) and deletes its stores. Returns the number of duplicated
// instructions (for the ablation report).
func transformCandidate(fn *ir.Function, a *analysis, cloneAll bool) (int, error) {
	// Mark every store's GL tree: nodes containing get_local_id must be
	// updated, everything else may be reused.
	for _, sp := range a.stores {
		exprtree.MarkState(sp.glTree, func(n *exprtree.Node) bool {
			in := n.Instr()
			return in != nil && in.Op == ir.OpWorkItem && in.Func == "get_local_id"
		})
	}
	dom := opt.ComputeDominance(fn)
	totalCloned := 0
	for _, ll := range a.cand.Loads {
		plan := a.plans[ll.Instr]
		mz := newMaterializer(fn, ll.Instr, a.reg, dom)
		solVals := map[int]ir.Value{}
		for dim, aff := range plan.sol {
			v, err := mz.affineValue(aff)
			if err != nil {
				return totalCloned, err
			}
			// get_local_id has ULong type; wrap so clone types line up.
			u := mz.insert(&ir.Instr{Op: ir.OpConvert, Typ: clc.TypeULong, Args: []ir.Value{v}, Pos: ll.Instr.Pos})
			solVals[dim] = u
		}
		du := &duplicator{mz: mz, sol: solVals, cloneAll: cloneAll, dom: dom}
		nGL, err := du.duplicate(plan.store.glTree)
		if err != nil {
			return totalCloned, err
		}
		totalCloned += du.cloned
		// The staged element type may differ from the LL result type only
		// via implicit conversion; insert one if needed.
		if !clc.TypesEqual(nGL.Type(), ll.Instr.Typ) {
			nGL = mz.insert(&ir.Instr{Op: ir.OpConvert, Typ: ll.Instr.Typ, Args: []ir.Value{nGL}, Pos: ll.Instr.Pos})
		}
		ir.ReplaceUses(fn, ll.Instr, nGL)
	}
	// Remove the LS stores; the loads, index chains and the alloca die in
	// the DCE pass that follows.
	for _, st := range a.cand.Stores {
		ir.RemoveInstr(st.Instr)
	}
	return totalCloned, nil
}

// eliminateDeadCode removes value-producing instructions with no remaining
// uses (transitively). Stores, calls, barriers and terminators are roots.
func eliminateDeadCode(fn *ir.Function) int {
	removed := 0
	for {
		uses := map[ir.Value]int{}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					uses[a]++
				}
			}
		}
		var dead []*ir.Instr
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if uses[in] > 0 {
					continue
				}
				switch in.Op {
				case ir.OpStore, ir.OpCall, ir.OpBarrier, ir.OpBr, ir.OpCondBr, ir.OpRet:
					continue
				}
				dead = append(dead, in)
			}
		}
		if len(dead) == 0 {
			return removed
		}
		for _, in := range dead {
			ir.RemoveInstr(in)
			removed++
		}
	}
}

// usesLocalMemory reports whether the function still touches __local
// memory (remaining candidates, dynamic local args, local accesses).
func usesLocalMemory(fn *ir.Function) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpAlloca:
				if in.Space == clc.ASLocal {
					return true
				}
			case ir.OpLoad:
				if ir.PointerSpace(in.Args[0].Type()) == clc.ASLocal {
					return true
				}
			case ir.OpStore:
				if ir.PointerSpace(in.Args[0].Type()) == clc.ASLocal {
					return true
				}
			}
		}
	}
	return false
}

// removeLocalBarriers deletes barrier(CLK_LOCAL_MEM_FENCE) instructions.
// Barriers whose fence flags include the global fence are preserved.
func removeLocalBarriers(fn *ir.Function) int {
	removed := 0
	for _, b := range fn.Blocks {
		var keep []*ir.Instr
		for _, in := range b.Instrs {
			if in.Op == ir.OpBarrier {
				flags := int64(1)
				if len(in.Args) == 1 {
					if c, ok := in.Args[0].(*ir.ConstInt); ok {
						flags = c.Val
					}
				}
				if flags&2 == 0 { // no CLK_GLOBAL_MEM_FENCE
					removed++
					continue
				}
			}
			keep = append(keep, in)
		}
		b.Instrs = keep
	}
	return removed
}
