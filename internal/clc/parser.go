package clc

import (
	"context"
	"strconv"
	"strings"

	"grover/internal/telemetry"
)

// Parser builds an AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// Parse preprocesses, lexes, parses and semantically analyzes an OpenCL C
// source string, returning the typed AST. defines are predefined macros
// (may be nil).
func Parse(file, src string, defines map[string]string) (*File, error) {
	return ParseCtx(context.Background(), file, src, defines)
}

// ParseCtx is Parse with per-stage span recording when ctx carries a
// telemetry trace (clc.pre, clc.lex, clc.parse, clc.sema).
func ParseCtx(ctx context.Context, file, src string, defines map[string]string) (*File, error) {
	all := PredefinedMacros()
	for k, v := range defines {
		all[k] = v
	}
	end := telemetry.StartSpan(ctx, "clc.pre")
	pp, err := NewPreprocessor(all)
	if err != nil {
		return nil, err
	}
	expanded, err := pp.Process(file, src)
	end()
	if err != nil {
		return nil, err
	}
	end = telemetry.StartSpan(ctx, "clc.lex")
	toks, err := LexAll(file, expanded)
	end()
	if err != nil {
		return nil, err
	}
	end = telemetry.StartSpan(ctx, "clc.parse")
	p := &Parser{toks: toks, file: file}
	f, err := p.parseFile()
	end()
	if err != nil {
		return nil, err
	}
	end = telemetry.StartSpan(ctx, "clc.sema")
	err = Analyze(f)
	end()
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) peekN(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) accept(text string) bool {
	if p.cur().Is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(text string) (Token, error) {
	t := p.cur()
	if !t.Is(text) {
		return t, errf(t.Pos, "expected %q, found %q", text, t.String())
	}
	p.pos++
	return t, nil
}

// ---------------------------------------------------------------- file

func (p *Parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().Kind != TokEOF {
		// Skip stray semicolons at top level.
		if p.accept(";") {
			continue
		}
		fn, err := p.parseFuncDecl()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	return f, nil
}

func (p *Parser) parseFuncDecl() (*FuncDecl, error) {
	start := p.cur().Pos
	isKernel := false
	// Leading qualifiers: __kernel, kernel, static, inline, attributes.
	for {
		t := p.cur()
		if t.Is("__kernel") || t.Is("kernel") {
			isKernel = true
			p.pos++
			continue
		}
		if t.Is("static") || t.Is("inline") || t.Is("extern") {
			p.pos++
			continue
		}
		if t.Is("__attribute__") {
			p.pos++
			if err := p.skipParens(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	ret, _, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.Kind != TokIdent {
		return nil, errf(nameTok.Pos, "expected function name, found %q", nameTok.String())
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var params []*ParamDecl
	if !p.accept(")") {
		for {
			prm, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			params = append(params, prm)
			if p.accept(",") {
				continue
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	// Trailing attributes (e.g. reqd_work_group_size).
	for p.cur().Is("__attribute__") {
		p.pos++
		if err := p.skipParens(); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Pos: start, Name: nameTok.Text, IsKernel: isKernel, Ret: ret, Params: params, Body: body}, nil
}

func (p *Parser) skipParens() error {
	if _, err := p.expect("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		if t.Kind == TokEOF {
			return errf(t.Pos, "unterminated parenthesized group")
		}
		if t.Is("(") {
			depth++
		}
		if t.Is(")") {
			depth--
		}
	}
	return nil
}

func (p *Parser) parseParam() (*ParamDecl, error) {
	start := p.cur().Pos
	typ, space, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	// Pointer declarators + qualifiers.
	for p.cur().Is("*") {
		p.pos++
		typ = &PointerType{Elem: typ, Space: space}
		for p.cur().Is("const") || p.cur().Is("restrict") || p.cur().Is("volatile") {
			p.pos++
		}
	}
	name := ""
	if p.cur().Kind == TokIdent {
		name = p.next().Text
	}
	// Array parameter "T a[]" decays to pointer.
	for p.cur().Is("[") {
		p.pos++
		if p.cur().Kind == TokIntLit {
			p.pos++
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		typ = &PointerType{Elem: typ, Space: space}
	}
	return &ParamDecl{Pos: start, Name: name, Type: typ, Space: space}, nil
}

// parseTypeSpec parses qualifiers and a type name. It returns the base type
// and the address space given by qualifiers (for the pointee of subsequent
// '*' declarators, or for the variable itself for array declarations).
func (p *Parser) parseTypeSpec() (Type, AddrSpace, error) {
	space := ASPrivate
	sawSpace := false
	var unsigned, signed bool
	for {
		t := p.cur()
		switch {
		case t.Is("__global") || t.Is("global"):
			space, sawSpace = ASGlobal, true
			p.pos++
			continue
		case t.Is("__local") || t.Is("local"):
			space, sawSpace = ASLocal, true
			p.pos++
			continue
		case t.Is("__constant") || t.Is("constant"):
			space, sawSpace = ASConstant, true
			p.pos++
			continue
		case t.Is("__private") || t.Is("private"):
			space, sawSpace = ASPrivate, true
			p.pos++
			continue
		case t.Is("const") || t.Is("volatile") || t.Is("restrict") ||
			t.Is("__read_only") || t.Is("__write_only"):
			p.pos++
			continue
		case t.Is("unsigned"):
			unsigned = true
			p.pos++
			continue
		case t.Is("signed"):
			signed = true
			p.pos++
			continue
		}
		break
	}
	_ = sawSpace
	_ = signed
	t := p.cur()
	var base Type
	switch {
	case t.Kind == TokKeyword || t.Kind == TokIdent:
		name := t.Text
		if lt := LookupNamedType(name); lt != nil {
			base = lt
			p.pos++
			// "long long", "unsigned long" etc.
			if name == "long" && p.cur().Is("long") {
				p.pos++
			}
			if name == "long" && p.cur().Is("int") {
				p.pos++
			}
			if name == "short" && p.cur().Is("int") {
				p.pos++
			}
		} else if unsigned {
			base = TypeUInt
		} else {
			return nil, space, errf(t.Pos, "expected type name, found %q", t.String())
		}
	default:
		if unsigned {
			base = TypeUInt
		} else {
			return nil, space, errf(t.Pos, "expected type name, found %q", t.String())
		}
	}
	if unsigned {
		if s, ok := base.(*ScalarType); ok {
			switch s.Kind {
			case KChar:
				base = TypeUChar
			case KShort:
				base = TypeUShort
			case KInt:
				base = TypeUInt
			case KLong:
				base = TypeULong
			}
		}
	}
	// Trailing qualifiers after the type name: "float const * restrict".
	for p.cur().Is("const") || p.cur().Is("volatile") || p.cur().Is("restrict") {
		p.pos++
	}
	return base, space, nil
}

// startsType reports whether the token sequence at the cursor begins a type
// (used to disambiguate declarations from expressions and casts from
// parenthesized expressions).
func (p *Parser) startsType() bool {
	t := p.cur()
	switch {
	case t.Is("__global") || t.Is("global") || t.Is("__local") || t.Is("local") ||
		t.Is("__constant") || t.Is("constant") || t.Is("__private") || t.Is("private") ||
		t.Is("const") || t.Is("volatile") || t.Is("restrict") ||
		t.Is("unsigned") || t.Is("signed"):
		return true
	case t.Kind == TokKeyword || t.Kind == TokIdent:
		return IsTypeName(t.Text)
	}
	return false
}

// ---------------------------------------------------------------- stmts

func (p *Parser) parseBlock() (*BlockStmt, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: open.Pos}
	for !p.cur().Is("}") {
		if p.cur().Kind == TokEOF {
			return nil, errf(open.Pos, "unterminated block")
		}
		stmts, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, stmts...)
	}
	p.pos++ // consume '}'
	return blk, nil
}

// parseStmt parses one statement. Declarations with multiple declarators
// expand into multiple DeclStmts, hence the slice result.
func (p *Parser) parseStmt() ([]Stmt, error) {
	t := p.cur()
	switch {
	case t.Is("{"):
		blk, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return []Stmt{blk}, nil

	case t.Is(";"):
		p.pos++
		return nil, nil

	case t.Is("if"):
		p.pos++
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		thenS, err := p.parseStmtSingle()
		if err != nil {
			return nil, err
		}
		var elseS Stmt
		if p.accept("else") {
			elseS, err = p.parseStmtSingle()
			if err != nil {
				return nil, err
			}
		}
		return []Stmt{&IfStmt{Pos: t.Pos, Cond: cond, Then: thenS, Else: elseS}}, nil

	case t.Is("for"):
		p.pos++
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var initS Stmt
		if !p.cur().Is(";") {
			if p.startsType() {
				decls, err := p.parseDecl()
				if err != nil {
					return nil, err
				}
				if len(decls) == 1 {
					initS = decls[0]
				} else {
					initS = &BlockStmt{Pos: t.Pos, Stmts: decls}
				}
				// parseDecl consumed the ';'
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				initS = &ExprStmt{Pos: e.NodePos(), X: e}
				if _, err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.pos++
		}
		var cond Expr
		var err error
		if !p.cur().Is(";") {
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		var post Expr
		if !p.cur().Is(")") {
			post, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtSingle()
		if err != nil {
			return nil, err
		}
		return []Stmt{&ForStmt{Pos: t.Pos, Init: initS, Cond: cond, Post: post, Body: body}}, nil

	case t.Is("while"):
		p.pos++
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtSingle()
		if err != nil {
			return nil, err
		}
		return []Stmt{&WhileStmt{Pos: t.Pos, Cond: cond, Body: body}}, nil

	case t.Is("do"):
		p.pos++
		body, err := p.parseStmtSingle()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("while"); err != nil {
			return nil, err
		}
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return []Stmt{&WhileStmt{Pos: t.Pos, Cond: cond, Body: body, DoWhile: true}}, nil

	case t.Is("return"):
		p.pos++
		var x Expr
		var err error
		if !p.cur().Is(";") {
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return []Stmt{&ReturnStmt{Pos: t.Pos, X: x}}, nil

	case t.Is("break"):
		p.pos++
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return []Stmt{&BreakStmt{Pos: t.Pos}}, nil

	case t.Is("continue"):
		p.pos++
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return []Stmt{&ContinueStmt{Pos: t.Pos}}, nil

	case p.startsType():
		return p.parseDecl()
	}

	// Expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return []Stmt{&ExprStmt{Pos: e.NodePos(), X: e}}, nil
}

// parseStmtSingle parses a statement that must be exactly one Stmt (loop or
// if bodies); multi-declarator declarations are wrapped in a block.
func (p *Parser) parseStmtSingle() (Stmt, error) {
	pos := p.cur().Pos
	ss, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	switch len(ss) {
	case 0:
		return &BlockStmt{Pos: pos}, nil
	case 1:
		return ss[0], nil
	default:
		return &BlockStmt{Pos: pos, Stmts: ss}, nil
	}
}

// parseDecl parses a local variable declaration (consuming the trailing
// ';'), expanding multiple declarators into separate DeclStmts.
func (p *Parser) parseDecl() ([]Stmt, error) {
	start := p.cur().Pos
	base, space, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	var out []Stmt
	for {
		typ := base
		for p.cur().Is("*") {
			p.pos++
			typ = &PointerType{Elem: typ, Space: space}
			for p.cur().Is("const") || p.cur().Is("restrict") || p.cur().Is("volatile") {
				p.pos++
			}
		}
		nameTok := p.next()
		if nameTok.Kind != TokIdent {
			return nil, errf(nameTok.Pos, "expected variable name, found %q", nameTok.String())
		}
		// Array dimensions (innermost last); sizes are integer constant
		// expressions such as S*S or (TILE+2).
		var dims []int
		for p.accept("[") {
			szPos := p.cur().Pos
			szExpr, err := p.parseCondExpr()
			if err != nil {
				return nil, err
			}
			n, err := FoldConstInt(szExpr)
			if err != nil {
				return nil, errf(szPos, "array size must be an integer constant expression: %v", err)
			}
			if n <= 0 {
				return nil, errf(szPos, "array size must be positive, got %d", n)
			}
			dims = append(dims, int(n))
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		for i := len(dims) - 1; i >= 0; i-- {
			typ = &ArrayType{Elem: typ, Len: dims[i]}
		}
		var init Expr
		if p.accept("=") {
			init, err = p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
		}
		out = append(out, &DeclStmt{Pos: start, Name: nameTok.Text, Type: typ, Space: space, Init: init})
		if p.accept(",") {
			continue
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// ---------------------------------------------------------------- exprs

// parseExpr parses a full expression including the comma operator? The
// subset does not support the comma operator; parseExpr is assignment-level.
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	l, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.pos++
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		a := &Assign{Op: t.Text, L: l, R: r}
		a.Pos = t.Pos
		return a, nil
	}
	return l, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur().Is("?") {
		qt := p.next()
		tx, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(":"); err != nil {
			return nil, err
		}
		fx, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		e := &Cond{C: c, T: tx, F: fx}
		e.Pos = qt.Pos
		return e, nil
	}
	return c, nil
}

// binary operator precedence (C), higher binds tighter.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseBinaryExpr(minPrec int) (Expr, error) {
	l, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return l, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return l, nil
		}
		p.pos++
		r, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		b := &Binary{Op: t.Text, L: l, R: r}
		b.Pos = t.Pos
		l = b
	}
}

func (p *Parser) parseUnaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.Is("+") || t.Is("-") || t.Is("!") || t.Is("~") || t.Is("*") || t.Is("&"):
		p.pos++
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: t.Text, X: x}
		u.Pos = t.Pos
		return u, nil
	case t.Is("++") || t.Is("--"):
		p.pos++
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: t.Text, X: x}
		u.Pos = t.Pos
		return u, nil
	case t.Is("sizeof"):
		p.pos++
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		typ, _, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		for p.cur().Is("*") {
			p.pos++
			typ = &PointerType{Elem: typ}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		e := &SizeofExpr{Of: typ}
		e.Pos = t.Pos
		return e, nil
	case t.Is("("):
		// Cast or parenthesized expression.
		if p.isCastAhead() {
			p.pos++
			typ, _, err := p.parseTypeSpec()
			if err != nil {
				return nil, err
			}
			for p.cur().Is("*") {
				p.pos++
				typ = &PointerType{Elem: typ}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			// Vector literal: (float4)(a, b, c, d).
			if vt, ok := typ.(*VectorType); ok && p.cur().Is("(") {
				p.pos++
				var elems []Expr
				for {
					e, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					elems = append(elems, e)
					if p.accept(",") {
						continue
					}
					if _, err := p.expect(")"); err != nil {
						return nil, err
					}
					break
				}
				v := &VecLit{To: vt, Elems: elems}
				v.Pos = t.Pos
				return v, nil
			}
			x, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			c := &Cast{To: typ, X: x}
			c.Pos = t.Pos
			return c, nil
		}
	}
	return p.parsePostfixExpr()
}

// isCastAhead reports whether the cursor (at '(') begins a cast expression.
func (p *Parser) isCastAhead() bool {
	if !p.cur().Is("(") {
		return false
	}
	save := p.pos
	defer func() { p.pos = save }()
	p.pos++
	if !p.startsType() {
		return false
	}
	// Consume the type spec tokens tentatively.
	if _, _, err := p.parseTypeSpec(); err != nil {
		return false
	}
	for p.cur().Is("*") {
		p.pos++
	}
	return p.cur().Is(")")
}

func (p *Parser) parsePostfixExpr() (Expr, error) {
	x, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.Is("["):
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e := &Index{X: x, I: idx}
			e.Pos = t.Pos
			x = e
		case t.Is("."):
			p.pos++
			nm := p.next()
			if nm.Kind != TokIdent && nm.Kind != TokKeyword {
				return nil, errf(nm.Pos, "expected member name, found %q", nm.String())
			}
			e := &Member{X: x, Name: nm.Text}
			e.Pos = t.Pos
			x = e
		case t.Is("++") || t.Is("--"):
			p.pos++
			e := &Postfix{Op: t.Text, X: x}
			e.Pos = t.Pos
			x = e
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.pos++
		text := strings.TrimRight(t.Text, "uUlL")
		v, err := strconv.ParseUint(text, 0, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		e := &IntLit{Value: int64(v)}
		e.Pos = t.Pos
		return e, nil
	case TokFloatLit:
		p.pos++
		text := strings.TrimRight(t.Text, "fF")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		e := &FloatLit{Value: v}
		e.Pos = t.Pos
		return e, nil
	case TokCharLit:
		p.pos++
		e := &IntLit{Value: int64(t.Text[0])}
		e.Pos = t.Pos
		return e, nil
	case TokStringLit:
		p.pos++
		e := &StringLit{Value: t.Text}
		e.Pos = t.Pos
		return e, nil
	case TokIdent:
		// Call?
		if p.peekN(1).Is("(") {
			name := t.Text
			p.pos += 2
			var args []Expr
			if !p.accept(")") {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(",") {
						continue
					}
					if _, err := p.expect(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			c := &Call{FuncName: name, Args: args}
			c.Pos = t.Pos
			return c, nil
		}
		p.pos++
		e := &Ident{Name: t.Text}
		e.Pos = t.Pos
		return e, nil
	}
	if t.Is("(") {
		p.pos++
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.Pos, "unexpected token %q in expression", t.String())
}
