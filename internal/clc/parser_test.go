package clc

import (
	"strings"
	"testing"
)

const transposeSrc = `
#define S 16
__kernel void transpose(__global float* out, __global const float* in,
                        int W, int H) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    lm[ly][lx] = in[(wy*S+ly)*W + (wx*S+lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];
    out[gy*H + gx] = val;
}
`

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.cl", src, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseTranspose(t *testing.T) {
	f := mustParse(t, transposeSrc)
	if len(f.Funcs) != 1 {
		t.Fatalf("got %d functions, want 1", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if !fn.IsKernel {
		t.Error("kernel qualifier lost")
	}
	if fn.Name != "transpose" {
		t.Errorf("name = %q", fn.Name)
	}
	if len(fn.Params) != 4 {
		t.Fatalf("got %d params, want 4", len(fn.Params))
	}
	p0, ok := fn.Params[0].Type.(*PointerType)
	if !ok || p0.Space != ASGlobal {
		t.Errorf("param 0 type = %v", fn.Params[0].Type)
	}
	// The __local array decl is the first statement.
	decl, ok := fn.Body.Stmts[0].(*DeclStmt)
	if !ok {
		t.Fatalf("first stmt is %T", fn.Body.Stmts[0])
	}
	if decl.Space != ASLocal {
		t.Errorf("decl space = %v", decl.Space)
	}
	arr, ok := decl.Type.(*ArrayType)
	if !ok || arr.Len != 16 {
		t.Fatalf("decl type = %v", decl.Type)
	}
	inner, ok := arr.Elem.(*ArrayType)
	if !ok || inner.Len != 16 || !TypesEqual(inner.Elem, TypeFloat) {
		t.Fatalf("inner type = %v", arr.Elem)
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll("t", `a+b <<= 0x1F 3.5f "s\n" 'c' // comment
	/* block */ ident_2`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	want := []string{"a", "+", "b", "<<=", "0x1F", "3.5f", "s\n", "c", "ident_2"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{"/* unterminated", `"unterminated`, "'u", "@", "0x"}
	for _, src := range cases {
		if _, err := LexAll("t", src); err == nil {
			t.Errorf("LexAll(%q): expected error", src)
		}
	}
}

func TestPreprocessorObjectMacro(t *testing.T) {
	pp, err := NewPreprocessor(map[string]string{"N": "42"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := pp.Process("t", "int x = N;\n#define M (N+1)\nint y = M;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("output %q lacks 42", out)
	}
	if !strings.Contains(out, "( 42 + 1 )") {
		t.Errorf("output %q lacks expanded M", out)
	}
}

func TestPreprocessorFunctionMacro(t *testing.T) {
	pp, _ := NewPreprocessor(nil)
	out, err := pp.Process("t", "#define IDX(i,j) ((i)*16+(j))\nint k = IDX(a, b+1);")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ReplaceAll(out, " ", ""), "((a)*16+(b+1))") {
		t.Errorf("expansion wrong: %q", out)
	}
}

func TestPreprocessorConditionals(t *testing.T) {
	pp, _ := NewPreprocessor(map[string]string{"USE_A": "1"})
	out, err := pp.Process("t", "#ifdef USE_A\nint a;\n#else\nint b;\n#endif\n#ifndef USE_A\nint c;\n#endif")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int a") || strings.Contains(out, "int b") || strings.Contains(out, "int c") {
		t.Errorf("conditional handling wrong: %q", out)
	}
}

func TestPreprocessorErrors(t *testing.T) {
	pp, _ := NewPreprocessor(nil)
	for _, src := range []string{
		"#include <foo.h>",
		"#endif",
		"#else",
		"#ifdef X\nint a;",
		"#bogusdirective",
	} {
		if _, err := pp.Process("t", src); err == nil {
			t.Errorf("Process(%q): expected error", src)
		}
	}
}

func TestPreprocessorRecursiveMacro(t *testing.T) {
	pp, _ := NewPreprocessor(nil)
	// Self-referential macro must not loop forever.
	out, err := pp.Process("t", "#define X X\nint v = X;")
	if err != nil {
		t.Fatalf("recursive macro: %v", err)
	}
	if !strings.Contains(out, "X") {
		t.Errorf("output %q", out)
	}
}

func TestParseExpressions(t *testing.T) {
	src := `
float helper(float a, float b) { return a > b ? a : b; }
__kernel void k(__global float* buf, __global int* ibuf, int n) {
    int i = get_global_id(0);
    float x = buf[i] * 2.0f + 1.0f;
    x += helper(x, (float)n);
    int mask = (i << 2) | (i & 3) ^ (~i % 7);
    int logical = (i < n) && (x >= 0.0f) || !mask;
    i++;
    --i;
    float4 v = (float4)(x, x+1.0f, x+2.0f, x+3.0f);
    float s = v.x + v.w;
    float2 lo = v.lo;
    buf[i] = s + lo.y + (logical ? 1.0f : 0.0f) + (float)sizeof(int);
    ibuf[i] = mask;
}
`
	f := mustParse(t, src)
	if len(f.Funcs) != 2 {
		t.Fatalf("got %d funcs", len(f.Funcs))
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
__kernel void k(__global int* a, int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        total += i;
        if (total > 100) break;
    }
    int j = 0;
    while (j < n) { j++; }
    do { j--; } while (j > 0);
    a[0] = total + j;
}
`
	mustParse(t, src)
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared": `__kernel void k(__global int* a) { a[0] = bogus; }`,
		"redecl":     `__kernel void k(__global int* a) { int x; int x; }`,
		"badcall":    `__kernel void k(__global int* a) { a[0] = nosuchfn(1); }`,
		"argcount":   `int f(int a) { return a; } __kernel void k(__global int* o) { o[0] = f(1,2); }`,
		"localinit":  `__kernel void k(__global int* a) { __local int x[4] = {0}; }`,
		"deref":      `__kernel void k(__global int* a, int n) { a[0] = *n; }`,
		"badswizzle": `__kernel void k(__global float* a) { float2 v; a[0] = v.z; }`,
		"voidret":    `__kernel void k(__global int* a) { return 3; }`,
		"badindex":   `__kernel void k(__global float* a) { a[1.5f] = 0.0f; }`,
		"assignarr":  `__kernel void k(__global int* a) { __local int lm[4]; lm = 0; }`,
	}
	for name, src := range cases {
		if _, err := Parse("t.cl", src, nil); err == nil {
			t.Errorf("%s: expected a semantic error", name)
		}
	}
}

func TestSwizzleParsing(t *testing.T) {
	cases := []struct {
		name string
		n    int
		want []int
		err  bool
	}{
		{"x", 4, []int{0}, false},
		{"xyzw", 4, []int{0, 1, 2, 3}, false},
		{"wzyx", 4, []int{3, 2, 1, 0}, false},
		{"s0", 4, []int{0}, false},
		{"s13", 4, []int{1, 3}, false},
		{"lo", 4, []int{0, 1}, false},
		{"hi", 4, []int{2, 3}, false},
		{"even", 4, []int{0, 2}, false},
		{"odd", 4, []int{1, 3}, false},
		{"z", 2, nil, true},
		{"q", 4, nil, true},
		{"s9", 4, nil, true},
	}
	for _, c := range cases {
		got, err := parseSwizzle(Pos{}, c.name, c.n)
		if c.err {
			if err == nil {
				t.Errorf("parseSwizzle(%q,%d): expected error", c.name, c.n)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSwizzle(%q,%d): %v", c.name, c.n, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseSwizzle(%q,%d) = %v, want %v", c.name, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseSwizzle(%q,%d) = %v, want %v", c.name, c.n, got, c.want)
				break
			}
		}
	}
}

func TestTypePromotion(t *testing.T) {
	cases := []struct {
		a, b, want Type
	}{
		{TypeInt, TypeInt, TypeInt},
		{TypeInt, TypeFloat, TypeFloat},
		{TypeFloat, TypeDouble, TypeDouble},
		{TypeChar, TypeShort, TypeInt},
		{TypeUInt, TypeInt, TypeUInt},
		{TypeLong, TypeUInt, TypeLong},
		{TypeULong, TypeLong, TypeULong},
		{&VectorType{Elem: TypeFloat, Len: 4}, TypeFloat, &VectorType{Elem: TypeFloat, Len: 4}},
	}
	for _, c := range cases {
		if got := Promote(c.a, c.b); !TypesEqual(got, c.want) {
			t.Errorf("Promote(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	if TypeFloat.Size() != 4 || TypeDouble.Size() != 8 || TypeChar.Size() != 1 {
		t.Error("scalar sizes wrong")
	}
	v3 := &VectorType{Elem: TypeFloat, Len: 3}
	if v3.Size() != 16 {
		t.Errorf("float3 size = %d, want 16 (padded)", v3.Size())
	}
	arr := &ArrayType{Elem: &ArrayType{Elem: TypeFloat, Len: 16}, Len: 16}
	if arr.Size() != 1024 {
		t.Errorf("float[16][16] size = %d", arr.Size())
	}
}

func TestLookupNamedType(t *testing.T) {
	if LookupNamedType("float4") == nil || LookupNamedType("int2") == nil ||
		LookupNamedType("uchar16") == nil {
		t.Error("vector type lookup failed")
	}
	if LookupNamedType("float5") != nil || LookupNamedType("floaty") != nil {
		t.Error("bogus vector type accepted")
	}
	if !TypesEqual(LookupNamedType("size_t"), TypeULong) {
		t.Error("size_t should map to ulong")
	}
}

func TestParseVectorKernel(t *testing.T) {
	src := `
__kernel void vadd(__global float4* a, __global float4* b, __global float4* c) {
    size_t i = get_global_id(0);
    c[i] = a[i] + b[i];
    c[i].xy = a[i].yx;
}
`
	mustParse(t, src)
}

func TestParseAttributes(t *testing.T) {
	src := `
__kernel __attribute__((reqd_work_group_size(16,16,1)))
void k(__global float* a) { a[get_global_id(0)] = 0.0f; }
`
	mustParse(t, src)
}

// TestParserNeverPanics feeds pseudo-random mutations of a valid kernel to
// the full front-end pipeline; every outcome must be a value or an error,
// never a panic.
func TestParserNeverPanics(t *testing.T) {
	base := []byte(transposeSrc)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	junk := []byte("{}[]()#*/+-<>;,.\"'\\\x00&|^%!~?:=0123456789abcXYZ_ \n\t")
	for trial := 0; trial < 300; trial++ {
		src := append([]byte(nil), base...)
		for edit := 0; edit < 1+next(6); edit++ {
			pos := next(len(src))
			switch next(3) {
			case 0: // mutate
				src[pos] = junk[next(len(junk))]
			case 1: // delete
				src = append(src[:pos], src[pos+1:]...)
			case 2: // insert
				src = append(src[:pos], append([]byte{junk[next(len(junk))]}, src[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated input: %v\nsource:\n%s", r, src)
				}
			}()
			_, _ = Parse("fuzz.cl", string(src), nil)
		}()
	}
}
