package clc

import "fmt"

// FoldConstInt evaluates an integer constant expression AST (before
// semantic analysis): literals, unary +/-/~/!, the integer binary
// operators, the conditional operator, and sizeof. Identifiers and calls
// are rejected — macros must already be expanded.
func FoldConstInt(e Expr) (int64, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ex.Value, nil
	case *SizeofExpr:
		return int64(ex.Of.Size()), nil
	case *Unary:
		x, err := FoldConstInt(ex.X)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case "+":
			return x, nil
		case "-":
			return -x, nil
		case "~":
			return ^x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("operator %q is not constant", ex.Op)
	case *Binary:
		l, err := FoldConstInt(ex.L)
		if err != nil {
			return 0, err
		}
		r, err := FoldConstInt(ex.R)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("division by zero in constant expression")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, fmt.Errorf("remainder by zero in constant expression")
			}
			return l % r, nil
		case "<<":
			return l << uint(r&63), nil
		case ">>":
			return l >> uint(r&63), nil
		case "&":
			return l & r, nil
		case "|":
			return l | r, nil
		case "^":
			return l ^ r, nil
		case "&&":
			if l != 0 && r != 0 {
				return 1, nil
			}
			return 0, nil
		case "||":
			if l != 0 || r != 0 {
				return 1, nil
			}
			return 0, nil
		case "==":
			return b2i(l == r), nil
		case "!=":
			return b2i(l != r), nil
		case "<":
			return b2i(l < r), nil
		case "<=":
			return b2i(l <= r), nil
		case ">":
			return b2i(l > r), nil
		case ">=":
			return b2i(l >= r), nil
		}
		return 0, fmt.Errorf("operator %q is not constant", ex.Op)
	case *Cond:
		c, err := FoldConstInt(ex.C)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return FoldConstInt(ex.T)
		}
		return FoldConstInt(ex.F)
	case *Cast:
		x, err := FoldConstInt(ex.X)
		if err != nil {
			return 0, err
		}
		if s, ok := ex.To.(*ScalarType); ok && s.Kind.IsInteger() {
			return x, nil
		}
		return 0, fmt.Errorf("non-integer cast in constant expression")
	case *Ident:
		return 0, fmt.Errorf("identifier %q is not a compile-time constant (missing #define?)", ex.Name)
	}
	return 0, fmt.Errorf("expression is not a compile-time constant")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
