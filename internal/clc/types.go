package clc

import (
	"fmt"
	"strings"
)

// AddrSpace identifies an OpenCL address space.
type AddrSpace int

// Address spaces. Private is the default for automatic variables.
const (
	ASPrivate AddrSpace = iota
	ASGlobal
	ASLocal
	ASConstant
)

func (a AddrSpace) String() string {
	switch a {
	case ASPrivate:
		return "__private"
	case ASGlobal:
		return "__global"
	case ASLocal:
		return "__local"
	case ASConstant:
		return "__constant"
	}
	return "?"
}

// ScalarKind enumerates the scalar base types.
type ScalarKind int

// Scalar kinds, ordered roughly by conversion rank.
const (
	KVoid ScalarKind = iota
	KBool
	KChar
	KUChar
	KShort
	KUShort
	KInt
	KUInt
	KLong
	KULong
	KFloat
	KDouble
)

func (k ScalarKind) String() string {
	switch k {
	case KVoid:
		return "void"
	case KBool:
		return "bool"
	case KChar:
		return "char"
	case KUChar:
		return "uchar"
	case KShort:
		return "short"
	case KUShort:
		return "ushort"
	case KInt:
		return "int"
	case KUInt:
		return "uint"
	case KLong:
		return "long"
	case KULong:
		return "ulong"
	case KFloat:
		return "float"
	case KDouble:
		return "double"
	}
	return "?"
}

// IsInteger reports whether the scalar kind is an integer type.
func (k ScalarKind) IsInteger() bool { return k >= KBool && k <= KULong }

// IsFloat reports whether the scalar kind is a floating-point type.
func (k ScalarKind) IsFloat() bool { return k == KFloat || k == KDouble }

// IsUnsigned reports whether the scalar kind is unsigned.
func (k ScalarKind) IsUnsigned() bool {
	switch k {
	case KBool, KUChar, KUShort, KUInt, KULong:
		return true
	}
	return false
}

// Size returns the size in bytes of the scalar kind.
func (k ScalarKind) Size() int {
	switch k {
	case KVoid:
		return 0
	case KBool, KChar, KUChar:
		return 1
	case KShort, KUShort:
		return 2
	case KInt, KUInt, KFloat:
		return 4
	case KLong, KULong, KDouble:
		return 8
	}
	return 0
}

// Type is the interface implemented by all OpenCL C types in this front-end.
type Type interface {
	String() string
	// Size is the storage size in bytes (0 for void / incomplete types).
	Size() int
	equal(Type) bool
}

// ScalarType is a scalar arithmetic type or void.
type ScalarType struct{ Kind ScalarKind }

func (t *ScalarType) String() string { return t.Kind.String() }

// Size returns the scalar's storage size in bytes.
func (t *ScalarType) Size() int { return t.Kind.Size() }
func (t *ScalarType) equal(o Type) bool {
	s, ok := o.(*ScalarType)
	return ok && s.Kind == t.Kind
}

// VectorType is an OpenCL vector type such as float4.
type VectorType struct {
	Elem *ScalarType
	Len  int // 2, 3, 4, 8, 16
}

func (t *VectorType) String() string { return fmt.Sprintf("%s%d", t.Elem, t.Len) }

// Size returns the vector's storage size (3-element vectors occupy 4 slots,
// per the OpenCL specification).
func (t *VectorType) Size() int {
	n := t.Len
	if n == 3 {
		n = 4
	}
	return t.Elem.Size() * n
}
func (t *VectorType) equal(o Type) bool {
	v, ok := o.(*VectorType)
	return ok && v.Len == t.Len && v.Elem.equal(t.Elem)
}

// PointerType is a pointer with an address space.
type PointerType struct {
	Elem  Type
	Space AddrSpace
}

func (t *PointerType) String() string {
	return fmt.Sprintf("%s %s*", t.Space, t.Elem)
}

// Size returns the pointer representation size (8 bytes in this model).
func (t *PointerType) Size() int { return 8 }
func (t *PointerType) equal(o Type) bool {
	p, ok := o.(*PointerType)
	return ok && p.Space == t.Space && p.Elem.equal(t.Elem)
}

// ArrayType is a fixed-size array type.
type ArrayType struct {
	Elem Type
	Len  int
}

func (t *ArrayType) String() string { return fmt.Sprintf("%s[%d]", t.Elem, t.Len) }

// Size returns the total storage size of the array.
func (t *ArrayType) Size() int { return t.Elem.Size() * t.Len }
func (t *ArrayType) equal(o Type) bool {
	a, ok := o.(*ArrayType)
	return ok && a.Len == t.Len && a.Elem.equal(t.Elem)
}

// Singleton scalar types.
var (
	TypeVoid   = &ScalarType{KVoid}
	TypeBool   = &ScalarType{KBool}
	TypeChar   = &ScalarType{KChar}
	TypeUChar  = &ScalarType{KUChar}
	TypeShort  = &ScalarType{KShort}
	TypeUShort = &ScalarType{KUShort}
	TypeInt    = &ScalarType{KInt}
	TypeUInt   = &ScalarType{KUInt}
	TypeLong   = &ScalarType{KLong}
	TypeULong  = &ScalarType{KULong}
	TypeFloat  = &ScalarType{KFloat}
	TypeDouble = &ScalarType{KDouble}
)

// TypesEqual reports whether two types are structurally identical.
func TypesEqual(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.equal(b)
}

// namedTypes maps OpenCL type names to types. size_t and friends map to
// 64-bit integers in this model.
var namedTypes = map[string]Type{
	"void": TypeVoid, "bool": TypeBool,
	"char": TypeChar, "uchar": TypeUChar, "unsigned char": TypeUChar,
	"short": TypeShort, "ushort": TypeUShort,
	"int": TypeInt, "uint": TypeUInt, "unsigned": TypeUInt,
	"long": TypeLong, "ulong": TypeULong,
	"float": TypeFloat, "double": TypeDouble,
	"size_t": TypeULong, "ptrdiff_t": TypeLong,
	"intptr_t": TypeLong, "uintptr_t": TypeULong,
	"half": TypeFloat, // stored as float in this model
}

// LookupNamedType resolves a type name (including vector names like
// "float4") to a Type, or nil when the name is not a type.
func LookupNamedType(name string) Type {
	if t, ok := namedTypes[name]; ok {
		return t
	}
	// Vector types: base name + length suffix.
	for _, base := range []string{"char", "uchar", "short", "ushort", "int", "uint", "long", "ulong", "float", "double"} {
		if strings.HasPrefix(name, base) {
			suffix := name[len(base):]
			switch suffix {
			case "2", "3", "4", "8", "16":
				n := 0
				fmt.Sscanf(suffix, "%d", &n)
				return &VectorType{Elem: namedTypes[base].(*ScalarType), Len: n}
			}
		}
	}
	return nil
}

// IsTypeName reports whether name names a supported type.
func IsTypeName(name string) bool { return LookupNamedType(name) != nil }

// Promote returns the usual-arithmetic-conversion result type of two scalar
// or vector operands. Vector op scalar yields the vector type.
func Promote(a, b Type) Type {
	av, aIsVec := a.(*VectorType)
	bv, bIsVec := b.(*VectorType)
	switch {
	case aIsVec && bIsVec:
		if av.Len >= bv.Len {
			return av
		}
		return bv
	case aIsVec:
		return av
	case bIsVec:
		return bv
	}
	as, aok := a.(*ScalarType)
	bs, bok := b.(*ScalarType)
	if !aok || !bok {
		return a
	}
	ka, kb := as.Kind, bs.Kind
	if ka == kb {
		return as
	}
	if ka.IsFloat() || kb.IsFloat() {
		if ka == KDouble || kb == KDouble {
			return TypeDouble
		}
		return TypeFloat
	}
	// Integer promotion: anything below int becomes int; then higher rank
	// wins, unsigned wins at equal rank.
	rank := func(k ScalarKind) int {
		switch k {
		case KBool, KChar, KUChar, KShort, KUShort, KInt:
			return 0
		case KUInt:
			return 1
		case KLong:
			return 2
		case KULong:
			return 3
		}
		return 0
	}
	ra, rb := rank(ka), rank(kb)
	m := ra
	if rb > m {
		m = rb
	}
	switch m {
	case 0:
		return TypeInt
	case 1:
		return TypeUInt
	case 2:
		return TypeLong
	default:
		return TypeULong
	}
}
