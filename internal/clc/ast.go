package clc

// This file defines the abstract syntax tree produced by the parser. Types
// on expression nodes are filled in by the semantic analyzer (sema.go).

// Node is implemented by all AST nodes.
type Node interface {
	NodePos() Pos
}

// ---------------------------------------------------------------- program

// File is a parsed translation unit.
type File struct {
	Name  string
	Funcs []*FuncDecl
}

// ParamDecl is a function parameter declaration.
type ParamDecl struct {
	Pos   Pos
	Name  string
	Type  Type
	Space AddrSpace // address space of the pointee for pointer params
}

// NodePos returns the declaration position.
func (d *ParamDecl) NodePos() Pos { return d.Pos }

// FuncDecl is a function definition. Kernel functions carry IsKernel.
type FuncDecl struct {
	Pos      Pos
	Name     string
	IsKernel bool
	Ret      Type
	Params   []*ParamDecl
	Body     *BlockStmt
}

// NodePos returns the declaration position.
func (d *FuncDecl) NodePos() Pos { return d.Pos }

// -------------------------------------------------------------- statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares one local variable (multi-declarator declarations are
// split by the parser). Local arrays in __local address space are the
// local-memory candidates Grover analyzes.
type DeclStmt struct {
	Pos   Pos
	Name  string
	Type  Type
	Space AddrSpace
	Init  Expr // may be nil
	// Sym is resolved by sema.
	Sym *Symbol
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a C for loop; Init/Cond/Post may each be nil. Init is either a
// *DeclStmt or *ExprStmt.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is a while loop; DoWhile marks do { } while(cond);.
type WhileStmt struct {
	Pos     Pos
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ReturnStmt returns from the function; X may be nil.
type ReturnStmt struct {
	Pos Pos
	X   Expr
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (s *BlockStmt) NodePos() Pos    { return s.Pos }
func (s *DeclStmt) NodePos() Pos     { return s.Pos }
func (s *ExprStmt) NodePos() Pos     { return s.Pos }
func (s *IfStmt) NodePos() Pos       { return s.Pos }
func (s *ForStmt) NodePos() Pos      { return s.Pos }
func (s *WhileStmt) NodePos() Pos    { return s.Pos }
func (s *ReturnStmt) NodePos() Pos   { return s.Pos }
func (s *BreakStmt) NodePos() Pos    { return s.Pos }
func (s *ContinueStmt) NodePos() Pos { return s.Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ------------------------------------------------------------- expressions

// Expr is implemented by all expression nodes. ExprType returns the type
// resolved by sema (nil before analysis).
type Expr interface {
	Node
	ExprType() Type
	exprNode()
}

type exprBase struct {
	Pos Pos
	Typ Type
}

// NodePos returns the expression position.
func (e *exprBase) NodePos() Pos { return e.Pos }

// ExprType returns the semantic type of the expression.
func (e *exprBase) ExprType() Type { return e.Typ }
func (e *exprBase) exprNode()      {}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Value float64
}

// StringLit is a string literal (only valid as __constant char* init /
// argument in this subset).
type StringLit struct {
	exprBase
	Value string
}

// Ident is a reference to a declared name; Sym is resolved by sema.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// Unary is a prefix unary expression: -x !x ~x +x *p &x ++x --x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Op string
	X  Expr
}

// Binary is a binary expression (arithmetic, comparison, logical, shifts).
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is an assignment or compound assignment ("=", "+=", ...).
type Assign struct {
	exprBase
	Op   string
	L, R Expr
}

// Cond is the ternary conditional operator.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Index is array/pointer subscripting: X[I].
type Index struct {
	exprBase
	X, I Expr
}

// Member is vector component selection (swizzle): X.s or X.xyz.
type Member struct {
	exprBase
	X    Expr
	Name string
	// Comps is the resolved component index list, filled by sema.
	Comps []int
}

// Call is a function or builtin call.
type Call struct {
	exprBase
	FuncName string
	Args     []Expr
	// Builtin is the resolved builtin descriptor, nil for user functions.
	Builtin *Builtin
	// Callee is the resolved user function, nil for builtins.
	Callee *FuncDecl
}

// Cast is an explicit C-style cast, including vector literal construction
// "(float4)(a,b,c,d)" which the parser represents as a VecLit.
type Cast struct {
	exprBase
	To Type
	X  Expr
}

// VecLit is an OpenCL vector literal: (float4)(x, y, z, w).
type VecLit struct {
	exprBase
	To    *VectorType
	Elems []Expr
}

// SizeofExpr is sizeof(type).
type SizeofExpr struct {
	exprBase
	Of Type
}

// Symbol is a resolved declaration: a parameter or local variable.
type Symbol struct {
	Name  string
	Type  Type
	Space AddrSpace
	Param bool // declared as a function parameter
	Index int  // parameter index when Param
	Pos   Pos
}
