package clc

import (
	"strings"
)

// Lexer converts OpenCL C source text into a token stream. Comments are
// skipped; preprocessor directives are expected to have been handled by the
// Preprocessor before lexing (the lexer itself tolerates none).
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src. The file name is used only in
// positions for diagnostics.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpaceAndComments consumes whitespace and // and /* */ comments.
// It returns an error for an unterminated block comment.
func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case isSpace(c):
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character punctuators, longest first.
var punct3 = []string{"<<=", ">>=", "..."}
var punct2 = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
}

// Next returns the next token. At end of input it returns a TokEOF token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.lexNumber(pos)

	case c == '"':
		return lx.lexString(pos)

	case c == '\'':
		return lx.lexChar(pos)
	}

	// Punctuators.
	rest := lx.src[lx.off:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			for range p {
				lx.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			for range p {
				lx.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
		'(', ')', '[', ']', '{', '}', ',', ';', ':', '?', '.', '#':
		lx.advance()
		return Token{Kind: TokPunct, Text: string(c), Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	isFloat := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		if !isHexDigit(lx.peek()) {
			return Token{}, errf(pos, "malformed hex literal")
		}
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			// Exponent only if followed by digits (possibly signed).
			n := 1
			if lx.peekAt(n) == '+' || lx.peekAt(n) == '-' {
				n++
			}
			if isDigit(lx.peekAt(n)) {
				isFloat = true
				for i := 0; i < n; i++ {
					lx.advance()
				}
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			}
		}
	}
	// Suffixes: f/F for float, u/U/l/L for ints (possibly repeated).
	for {
		c := lx.peek()
		if c == 'f' || c == 'F' {
			isFloat = true
			lx.advance()
			continue
		}
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			lx.advance()
			continue
		}
		break
	}
	text := lx.src[start:lx.off]
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: text, Pos: pos}, nil
}

func (lx *Lexer) lexString(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, errf(pos, "unterminated escape")
			}
			e := lx.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '0':
				sb.WriteByte(0)
			case '\\', '"', '\'':
				sb.WriteByte(e)
			default:
				return Token{}, errf(pos, "unsupported escape \\%c", e)
			}
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: TokStringLit, Text: sb.String(), Pos: pos}, nil
}

func (lx *Lexer) lexChar(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, errf(pos, "unterminated char literal")
	}
	var val byte
	c := lx.advance()
	if c == '\\' {
		e := lx.advance()
		switch e {
		case 'n':
			val = '\n'
		case 't':
			val = '\t'
		case '0':
			val = 0
		case '\\', '\'', '"':
			val = e
		default:
			return Token{}, errf(pos, "unsupported escape \\%c", e)
		}
	} else {
		val = c
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, errf(pos, "unterminated char literal")
	}
	return Token{Kind: TokCharLit, Text: string(val), Pos: pos}, nil
}

// LexAll tokenizes the whole input, returning the token list terminated by
// a TokEOF token.
func LexAll(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
