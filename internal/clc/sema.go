package clc

import (
	"fmt"
)

// Analyze resolves names and types over the whole file, rewriting the AST
// in place. It must be called exactly once (Parse does this).
func Analyze(f *File) error {
	funcs := map[string]*FuncDecl{}
	for _, fn := range f.Funcs {
		if _, dup := funcs[fn.Name]; dup {
			return errf(fn.Pos, "duplicate function %s", fn.Name)
		}
		funcs[fn.Name] = fn
	}
	for _, fn := range f.Funcs {
		a := &analyzer{file: f, funcs: funcs, fn: fn}
		a.pushScope()
		for i, prm := range fn.Params {
			if prm.Name == "" {
				continue
			}
			sym := &Symbol{Name: prm.Name, Type: prm.Type, Space: prm.Space, Param: true, Index: i, Pos: prm.Pos}
			if err := a.declare(sym); err != nil {
				return err
			}
		}
		if err := a.stmt(fn.Body); err != nil {
			return err
		}
		a.popScope()
	}
	return nil
}

type analyzer struct {
	file   *File
	funcs  map[string]*FuncDecl
	fn     *FuncDecl
	scopes []map[string]*Symbol
}

func (a *analyzer) pushScope() { a.scopes = append(a.scopes, map[string]*Symbol{}) }
func (a *analyzer) popScope()  { a.scopes = a.scopes[:len(a.scopes)-1] }

func (a *analyzer) declare(sym *Symbol) error {
	top := a.scopes[len(a.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return errf(sym.Pos, "redeclaration of %s", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (a *analyzer) lookup(name string) *Symbol {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		if s, ok := a.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// ---------------------------------------------------------------- stmts

func (a *analyzer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		a.pushScope()
		defer a.popScope()
		for _, sub := range st.Stmts {
			if err := a.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *DeclStmt:
		if st.Space == ASLocal {
			if _, isArr := st.Type.(*ArrayType); !isArr {
				// __local scalars are legal OpenCL; supported but rare.
				if _, isScalar := st.Type.(*ScalarType); !isScalar {
					if _, isVec := st.Type.(*VectorType); !isVec {
						return errf(st.Pos, "__local variable %s must be an array, scalar or vector", st.Name)
					}
				}
			}
			if st.Init != nil {
				return errf(st.Pos, "__local variable %s cannot have an initializer", st.Name)
			}
		}
		if st.Init != nil {
			if err := a.expr(st.Init); err != nil {
				return err
			}
			if err := a.checkAssignable(st.Pos, st.Type, st.Init.ExprType()); err != nil {
				return err
			}
		}
		sym := &Symbol{Name: st.Name, Type: st.Type, Space: st.Space, Pos: st.Pos}
		st.Sym = sym
		return a.declare(sym)

	case *ExprStmt:
		return a.expr(st.X)

	case *IfStmt:
		if err := a.expr(st.Cond); err != nil {
			return err
		}
		if err := a.requireScalarCond(st.Cond); err != nil {
			return err
		}
		if err := a.stmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return a.stmt(st.Else)
		}
		return nil

	case *ForStmt:
		a.pushScope()
		defer a.popScope()
		if st.Init != nil {
			if err := a.stmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := a.expr(st.Cond); err != nil {
				return err
			}
			if err := a.requireScalarCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := a.expr(st.Post); err != nil {
				return err
			}
		}
		return a.stmt(st.Body)

	case *WhileStmt:
		if err := a.expr(st.Cond); err != nil {
			return err
		}
		if err := a.requireScalarCond(st.Cond); err != nil {
			return err
		}
		return a.stmt(st.Body)

	case *ReturnStmt:
		if st.X != nil {
			if err := a.expr(st.X); err != nil {
				return err
			}
			if TypesEqual(a.fn.Ret, TypeVoid) {
				return errf(st.Pos, "returning a value from void function %s", a.fn.Name)
			}
			return a.checkAssignable(st.Pos, a.fn.Ret, st.X.ExprType())
		}
		if !TypesEqual(a.fn.Ret, TypeVoid) {
			return errf(st.Pos, "missing return value in function %s", a.fn.Name)
		}
		return nil

	case *BreakStmt, *ContinueStmt:
		return nil
	}
	return fmt.Errorf("clc: unhandled statement %T", s)
}

func (a *analyzer) requireScalarCond(e Expr) error {
	switch t := e.ExprType().(type) {
	case *ScalarType:
		if t.Kind == KVoid {
			return errf(e.NodePos(), "void value used as condition")
		}
		return nil
	case *PointerType:
		return nil
	}
	return errf(e.NodePos(), "condition must be scalar, found %s", e.ExprType())
}

// checkAssignable validates an implicit conversion from 'from' to 'to'.
func (a *analyzer) checkAssignable(pos Pos, to, from Type) error {
	if to == nil || from == nil {
		return errf(pos, "internal: untyped operand")
	}
	if TypesEqual(to, from) {
		return nil
	}
	switch tt := to.(type) {
	case *ScalarType:
		if _, ok := from.(*ScalarType); ok {
			return nil // scalar conversions are implicit in C
		}
	case *VectorType:
		if fs, ok := from.(*ScalarType); ok && fs.Kind != KVoid {
			return nil // scalar widens to vector
		}
		if fv, ok := from.(*VectorType); ok && fv.Len == tt.Len {
			return nil
		}
	case *PointerType:
		if fp, ok := from.(*PointerType); ok && fp.Space == tt.Space {
			return nil // pointer conversions within one space allowed
		}
		if fa, ok := from.(*ArrayType); ok && TypesEqual(fa.Elem, tt.Elem) {
			return nil // array decay
		}
	}
	return errf(pos, "cannot assign %s to %s", from, to)
}

// ---------------------------------------------------------------- exprs

func (a *analyzer) expr(e Expr) error {
	switch ex := e.(type) {
	case *IntLit:
		if ex.Typ == nil {
			ex.Typ = TypeInt
		}
		return nil
	case *FloatLit:
		ex.Typ = TypeFloat
		return nil
	case *StringLit:
		ex.Typ = &PointerType{Elem: TypeChar, Space: ASConstant}
		return nil

	case *Ident:
		sym := a.lookup(ex.Name)
		if sym == nil {
			return errf(ex.Pos, "undeclared identifier %q", ex.Name)
		}
		ex.Sym = sym
		ex.Typ = sym.Type
		return nil

	case *Unary:
		if err := a.expr(ex.X); err != nil {
			return err
		}
		xt := ex.X.ExprType()
		switch ex.Op {
		case "+", "-":
			ex.Typ = xt
		case "~":
			ex.Typ = xt
		case "!":
			ex.Typ = TypeInt
		case "*":
			switch pt := xt.(type) {
			case *PointerType:
				ex.Typ = pt.Elem
			case *ArrayType:
				ex.Typ = pt.Elem
			default:
				return errf(ex.Pos, "cannot dereference non-pointer %s", xt)
			}
		case "&":
			space := ASPrivate
			if id, ok := ex.X.(*Ident); ok && id.Sym != nil {
				space = id.Sym.Space
			}
			if ix, ok := ex.X.(*Index); ok {
				space = spaceOf(ix.X)
			}
			ex.Typ = &PointerType{Elem: xt, Space: space}
		case "++", "--":
			if err := a.requireLValue(ex.X); err != nil {
				return err
			}
			ex.Typ = xt
		default:
			return errf(ex.Pos, "unsupported unary operator %q", ex.Op)
		}
		return nil

	case *Postfix:
		if err := a.expr(ex.X); err != nil {
			return err
		}
		if err := a.requireLValue(ex.X); err != nil {
			return err
		}
		ex.Typ = ex.X.ExprType()
		return nil

	case *Binary:
		if err := a.expr(ex.L); err != nil {
			return err
		}
		if err := a.expr(ex.R); err != nil {
			return err
		}
		lt, rt := ex.L.ExprType(), ex.R.ExprType()
		switch ex.Op {
		case "&&", "||", "==", "!=", "<", ">", "<=", ">=":
			ex.Typ = TypeInt
		case "+", "-":
			// pointer arithmetic
			if pt, ok := lt.(*PointerType); ok {
				ex.Typ = pt
				return nil
			}
			if at, ok := lt.(*ArrayType); ok {
				ex.Typ = &PointerType{Elem: at.Elem, Space: spaceOf(ex.L)}
				return nil
			}
			ex.Typ = Promote(lt, rt)
		case "%", "&", "|", "^", "<<", ">>":
			ex.Typ = Promote(lt, rt)
			if s, ok := ex.Typ.(*ScalarType); ok && !s.Kind.IsInteger() {
				return errf(ex.Pos, "operator %q requires integer operands", ex.Op)
			}
		default:
			ex.Typ = Promote(lt, rt)
		}
		return nil

	case *Assign:
		if err := a.expr(ex.L); err != nil {
			return err
		}
		if err := a.expr(ex.R); err != nil {
			return err
		}
		if err := a.requireLValue(ex.L); err != nil {
			return err
		}
		if ex.Op == "=" {
			if err := a.checkAssignable(ex.Pos, ex.L.ExprType(), ex.R.ExprType()); err != nil {
				return err
			}
		}
		ex.Typ = ex.L.ExprType()
		return nil

	case *Cond:
		if err := a.expr(ex.C); err != nil {
			return err
		}
		if err := a.expr(ex.T); err != nil {
			return err
		}
		if err := a.expr(ex.F); err != nil {
			return err
		}
		ex.Typ = Promote(ex.T.ExprType(), ex.F.ExprType())
		return nil

	case *Index:
		if err := a.expr(ex.X); err != nil {
			return err
		}
		if err := a.expr(ex.I); err != nil {
			return err
		}
		switch xt := ex.X.ExprType().(type) {
		case *PointerType:
			ex.Typ = xt.Elem
		case *ArrayType:
			ex.Typ = xt.Elem
		default:
			return errf(ex.Pos, "cannot index non-pointer %s", ex.X.ExprType())
		}
		if it, ok := ex.I.ExprType().(*ScalarType); !ok || !it.Kind.IsInteger() {
			return errf(ex.Pos, "array index must be an integer, found %s", ex.I.ExprType())
		}
		return nil

	case *Member:
		if err := a.expr(ex.X); err != nil {
			return err
		}
		vt, ok := ex.X.ExprType().(*VectorType)
		if !ok {
			return errf(ex.Pos, "member access on non-vector type %s", ex.X.ExprType())
		}
		comps, err := parseSwizzle(ex.Pos, ex.Name, vt.Len)
		if err != nil {
			return err
		}
		ex.Comps = comps
		if len(comps) == 1 {
			ex.Typ = vt.Elem
		} else {
			ex.Typ = &VectorType{Elem: vt.Elem, Len: len(comps)}
		}
		return nil

	case *Call:
		for _, arg := range ex.Args {
			if err := a.expr(arg); err != nil {
				return err
			}
		}
		if b := LookupBuiltin(ex.FuncName); b != nil {
			t, err := b.Check(ex.Pos, ex.Args)
			if err != nil {
				return err
			}
			ex.Builtin = b
			ex.Typ = t
			return nil
		}
		callee := a.funcs[ex.FuncName]
		if callee == nil {
			return errf(ex.Pos, "call to undefined function %q", ex.FuncName)
		}
		if callee.IsKernel {
			return errf(ex.Pos, "calling kernel %q from device code is not supported", ex.FuncName)
		}
		if len(ex.Args) != len(callee.Params) {
			return errf(ex.Pos, "%s expects %d arguments, got %d", ex.FuncName, len(callee.Params), len(ex.Args))
		}
		for i, arg := range ex.Args {
			if err := a.checkAssignable(arg.NodePos(), callee.Params[i].Type, arg.ExprType()); err != nil {
				return err
			}
		}
		ex.Callee = callee
		ex.Typ = callee.Ret
		return nil

	case *Cast:
		if err := a.expr(ex.X); err != nil {
			return err
		}
		ex.Typ = ex.To
		return nil

	case *VecLit:
		n := 0
		for _, el := range ex.Elems {
			if err := a.expr(el); err != nil {
				return err
			}
			if vt, ok := el.ExprType().(*VectorType); ok {
				n += vt.Len
			} else {
				n++
			}
		}
		if n != ex.To.Len && len(ex.Elems) != 1 {
			return errf(ex.Pos, "vector literal for %s has %d components", ex.To, n)
		}
		ex.Typ = ex.To
		return nil

	case *SizeofExpr:
		ex.Typ = TypeULong
		return nil
	}
	return fmt.Errorf("clc: unhandled expression %T", e)
}

// requireLValue checks that e can be assigned to.
func (a *analyzer) requireLValue(e Expr) error {
	switch ex := e.(type) {
	case *Ident:
		if ex.Sym != nil {
			if _, isArr := ex.Sym.Type.(*ArrayType); isArr {
				return errf(ex.Pos, "cannot assign to array %s", ex.Name)
			}
		}
		return nil
	case *Index:
		return nil
	case *Member:
		return a.requireLValue(ex.X)
	case *Unary:
		if ex.Op == "*" {
			return nil
		}
	}
	return errf(e.NodePos(), "expression is not assignable")
}

// spaceOf determines the address space an expression's storage lives in.
func spaceOf(e Expr) AddrSpace {
	switch ex := e.(type) {
	case *Ident:
		if ex.Sym != nil {
			if pt, ok := ex.Sym.Type.(*PointerType); ok {
				return pt.Space
			}
			return ex.Sym.Space
		}
	case *Index:
		return spaceOf(ex.X)
	case *Binary:
		if ex.Op == "+" || ex.Op == "-" {
			return spaceOf(ex.L)
		}
	case *Cast:
		if pt, ok := ex.To.(*PointerType); ok {
			return pt.Space
		}
	case *Unary:
		if ex.Op == "&" || ex.Op == "*" {
			return spaceOf(ex.X)
		}
	}
	return ASPrivate
}

// parseSwizzle resolves a vector component selector name into component
// indices. Supports xyzw, s0..sF, lo, hi, even, odd.
func parseSwizzle(pos Pos, name string, vecLen int) ([]int, error) {
	switch name {
	case "lo":
		half := vecLen / 2
		out := make([]int, half)
		for i := range out {
			out[i] = i
		}
		return out, nil
	case "hi":
		half := vecLen / 2
		out := make([]int, half)
		for i := range out {
			out[i] = vecLen - half + i
		}
		return out, nil
	case "even":
		var out []int
		for i := 0; i < vecLen; i += 2 {
			out = append(out, i)
		}
		return out, nil
	case "odd":
		var out []int
		for i := 1; i < vecLen; i += 2 {
			out = append(out, i)
		}
		return out, nil
	}
	if len(name) >= 2 && (name[0] == 's' || name[0] == 'S') && isSwizzleHex(name[1:]) {
		var out []int
		for _, c := range name[1:] {
			out = append(out, hexVal(byte(c)))
		}
		for _, c := range out {
			if c >= vecLen {
				return nil, errf(pos, "component s%x out of range for %d-vector", c, vecLen)
			}
		}
		return out, nil
	}
	var out []int
	for i := 0; i < len(name); i++ {
		var c int
		switch name[i] {
		case 'x':
			c = 0
		case 'y':
			c = 1
		case 'z':
			c = 2
		case 'w':
			c = 3
		default:
			return nil, errf(pos, "bad vector component %q", name)
		}
		if c >= vecLen {
			return nil, errf(pos, "component %c out of range for %d-vector", name[i], vecLen)
		}
		out = append(out, c)
	}
	if len(out) == 0 || len(out) > 16 {
		return nil, errf(pos, "bad vector swizzle %q", name)
	}
	return out, nil
}

func isSwizzleHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isHexDigit(s[i]) {
			return false
		}
	}
	return true
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return 0
}
